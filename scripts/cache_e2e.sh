#!/usr/bin/env bash
# End-to-end exercise of the content-addressed plan & result cache
# (docs/caching.md):
#
#   1. a cold solo `amp` run populates --cache-dir (plan + result entries);
#   2. a warm run answers from the result cache: amplitude byte-identical,
#      ltns_planner_invocations_total stays 0, the result disk tier
#      records a hit;
#   3. a warm run with --result-cache=0 forces the PLAN tier: the stored
#      plan is rebuilt (plan_disk hit), the contraction re-runs to the
#      same bytes, and the path optimizer is never invoked;
#   4. elastic 2-process runs against the same store are byte-identical
#      too (executor and process count are absent from the keys by
#      design);
#   5. a `serve` daemon sharing the store answers a duplicate submission
#      from cache at submit time ("done (served from cache)") and serves
#      a solo-warmed fingerprint without executing anything — the store
#      is shared across transports.
#
# Usage: scripts/cache_e2e.sh [path-to-ltns_cli] [port]
set -euo pipefail

CLI=${1:-build/ltns_cli}
PORT=${2:-39423}
DIR=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null; rm -rf "$DIR"' EXIT

CACHE="$DIR/cache"
BITS=010101010
BITS2=101010101

# Pull one metric value out of an ltns.metrics.v1 snapshot (optionally a
# specific {tier=...} series); missing series read as 0.
metric() { # <file> <name> [tier]
  python3 - "$@" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
name, tier = sys.argv[2], (sys.argv[3] if len(sys.argv) > 3 else None)
v = sum(m["value"] for m in d["metrics"]
        if m["name"] == name and (tier is None or m.get("labels", {}).get("tier") == tier))
print(int(v))
EOF
}

echo "== cold solo run (populates the store) =="
"$CLI" gen 3 3 8 5 > "$DIR/c.qc"
"$CLI" --target=4 --cache-dir="$CACHE" --metrics-out="$DIR/cold.json" \
  amp "$DIR/c.qc" $BITS | grep '^amplitude' > "$DIR/cold.txt"
cat "$DIR/cold.txt"
test -n "$(ls "$CACHE/plan")" || { echo "no plan entry written"; exit 1; }
test -n "$(ls "$CACHE/result")" || { echo "no result entry written"; exit 1; }
[ "$(metric "$DIR/cold.json" ltns_planner_invocations_total)" -ge 1 ] \
  || { echo "cold run never invoked the planner?"; exit 1; }
echo "store populated: $(ls "$CACHE/plan" | wc -l) plan, $(ls "$CACHE/result" | wc -l) result entries"

echo "== warm run: result-cache hit, no planning, byte-identical =="
"$CLI" --target=4 --cache-dir="$CACHE" --metrics-out="$DIR/warm.json" \
  amp "$DIR/c.qc" $BITS | grep '^amplitude' | diff "$DIR/cold.txt" -
[ "$(metric "$DIR/warm.json" ltns_planner_invocations_total)" -eq 0 ] \
  || { echo "warm run invoked the planner"; exit 1; }
[ "$(metric "$DIR/warm.json" ltns_cache_hits_total result_disk)" -ge 1 ] \
  || { echo "warm run missed the result disk tier"; exit 1; }
echo "warm run OK: zero planner invocations, result_disk hit"

echo "== warm run, result cache disabled: PLAN tier must carry it =="
"$CLI" --target=4 --cache-dir="$CACHE" --result-cache=0 \
  --metrics-out="$DIR/plan.json" \
  amp "$DIR/c.qc" $BITS | grep '^amplitude' | diff "$DIR/cold.txt" -
[ "$(metric "$DIR/plan.json" ltns_planner_invocations_total)" -eq 0 ] \
  || { echo "plan-tier run invoked the planner"; exit 1; }
[ "$(metric "$DIR/plan.json" ltns_cache_hits_total plan_disk)" -ge 1 ] \
  || { echo "plan-tier run missed the plan disk tier"; exit 1; }
echo "plan-tier run OK: stored plan rebuilt, contraction re-ran to the same bytes"

echo "== elastic 2-process runs against the same store =="
"$CLI" --target=4 --cache-dir="$CACHE" --elastic --processes=2 \
  amp "$DIR/c.qc" $BITS | grep '^amplitude' | diff "$DIR/cold.txt" -
"$CLI" --target=4 --cache-dir="$CACHE" --elastic --processes=2 --result-cache=0 \
  amp "$DIR/c.qc" $BITS | grep '^amplitude' | diff "$DIR/cold.txt" -
echo "elastic OK: cached result AND cached-plan re-execution byte-identical"

echo "== serve: duplicate submit served from cache, store shared with solo =="
# Solo baseline for the second bitstring, computed WITHOUT the cache dir so
# the daemon's first submission genuinely executes.
"$CLI" --target=4 amp "$DIR/c.qc" $BITS2 | grep '^amplitude' > "$DIR/solo2.txt"
"$CLI" serve $PORT --cache-dir="$CACHE" --state-dir="$DIR/state" \
  > "$DIR/server.log" 2>&1 &
SRV=$!
sleep 0.5
"$CLI" worker 127.0.0.1 $PORT > "$DIR/w0.log" 2>&1 &
sleep 0.3

"$CLI" submit 127.0.0.1 $PORT "$DIR/c.qc" $BITS2 --target=4 > "$DIR/sub1.txt"
cat "$DIR/sub1.txt"
grep -q 'served from cache' "$DIR/sub1.txt" \
  && { echo "first submission must NOT be served from cache"; exit 1; }
"$CLI" result 127.0.0.1 $PORT 1 --wait > "$DIR/svc1.txt"
grep '^amplitude' "$DIR/svc1.txt" | diff "$DIR/solo2.txt" -

# Same spec again: short-circuited at submit time, no execution, same bytes.
"$CLI" submit 127.0.0.1 $PORT "$DIR/c.qc" $BITS2 --target=4 > "$DIR/sub2.txt"
cat "$DIR/sub2.txt"
grep -q 'served from cache' "$DIR/sub2.txt" \
  || { echo "duplicate submission was not served from cache"; exit 1; }
"$CLI" result 127.0.0.1 $PORT 2 > "$DIR/svc2.txt"
grep '^amplitude' "$DIR/svc2.txt" | diff "$DIR/solo2.txt" -

# The fingerprint the SOLO runs warmed: served from cache on first sight —
# the store is shared across transports.
"$CLI" submit 127.0.0.1 $PORT "$DIR/c.qc" $BITS --target=4 > "$DIR/sub3.txt"
cat "$DIR/sub3.txt"
grep -q 'served from cache' "$DIR/sub3.txt" \
  || { echo "solo-warmed fingerprint was not served from cache"; exit 1; }
"$CLI" result 127.0.0.1 $PORT 3 > "$DIR/svc3.txt"
grep '^amplitude' "$DIR/svc3.txt" | diff "$DIR/cold.txt" -

"$CLI" status 127.0.0.1 $PORT > "$DIR/status.json"
python3 - "$DIR/status.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["served_from_cache_total"] == 2, d["served_from_cache_total"]
assert "cache" in d, "status JSON has no cache section"
jobs = {j["id"]: j for j in d["jobs"]}
assert all(jobs[i]["state"] == "done" for i in (1, 2, 3)), jobs
print("status OK: served_from_cache_total =", d["served_from_cache_total"])
EOF

"$CLI" shutdown 127.0.0.1 $PORT
wait $SRV
echo "cache e2e PASSED"
