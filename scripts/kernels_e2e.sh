#!/usr/bin/env bash
# End-to-end check of the kernel verification contract (docs/kernels.md):
#
#   1. fp32 backends (blocked, simd) must print amplitude lines
#      BYTE-identical to the host backend — solo, across every forced
#      SIMD tier (LTNS_FORCE_ISA clamps to hardware, so the avx512 leg
#      degrades safely on machines without it), under elastic
#      multi-process sharding, and through the job server;
#   2. bf16 mixed precision must be DETERMINISTIC — byte-identical
#      across backends, ISA tiers, process counts, and transports —
#      while differing from fp32 (proof the mode engaged) and staying
#      within the scale-relative ULP bound vs the fp32 reference
#      (scripts/compare_amps.py --compare-mode=ulp:N, the same metric as
#      util::ulp_distance_at_scale and the pinned corpus in
#      tests/test_kernels_parity.cpp).
#
# Usage: scripts/kernels_e2e.sh [path-to-ltns_cli] [port]
set -euo pipefail

CLI=${1:-build/ltns_cli}
PORT=${2:-39427}
CMP="$(dirname "$0")/compare_amps.py"
# Amplitudes are sums over many bf16-rounded contractions, so the bound
# sits well above the single-GEMM corpus pins (~2^15) with slack for
# cancellation between slices: 2^20 spacing units at the fp32 scale.
ULP_BOUND=1048576
DIR=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null; rm -rf "$DIR"' EXIT

BITS=010101010
"$CLI" gen 3 3 8 5 > "$DIR/c.qc"

amp() { # capture-file, then extra flags; --target=4 forces real slicing
  local out=$1; shift
  "$CLI" --no-telemetry --target=4 amp "$DIR/c.qc" $BITS "$@" \
    | grep '^amplitude' > "$out"
}

echo "== registry lists the simd tier =="
"$CLI" --backend=help | tee "$DIR/help.txt" | grep -q '^  simd' \
  || { echo "simd backend missing from --backend=help"; exit 1; }
grep -q 'isa=' "$DIR/help.txt" || { echo "no isa= in backend help"; exit 1; }

echo "== fp32 reference (host) =="
amp "$DIR/host.txt" --backend=host
cat "$DIR/host.txt"

echo "== fp32 backends bitwise vs host (solo) =="
for b in blocked simd; do
  amp "$DIR/fp32_$b.txt" --backend=$b
  python3 "$CMP" --compare-mode=bitwise "$DIR/host.txt" "$DIR/fp32_$b.txt"
done

echo "== fp32 simd bitwise under every forced ISA tier =="
for isa in portable avx2 avx512 neon; do
  LTNS_FORCE_ISA=$isa amp "$DIR/fp32_simd_$isa.txt" --backend=simd
  python3 "$CMP" --compare-mode=bitwise "$DIR/host.txt" "$DIR/fp32_simd_$isa.txt"
done

echo "== fp32 simd bitwise under elastic multi-process sharding =="
amp "$DIR/fp32_elastic.txt" --backend=simd --processes=2 --elastic
python3 "$CMP" --compare-mode=bitwise "$DIR/host.txt" "$DIR/fp32_elastic.txt"

echo "== bf16: deterministic across backends and tiers (solo) =="
for b in host blocked simd; do
  amp "$DIR/bf16_$b.txt" --backend=$b --precision=bf16
done
python3 "$CMP" --compare-mode=bitwise "$DIR/bf16_host.txt" "$DIR/bf16_blocked.txt"
python3 "$CMP" --compare-mode=bitwise "$DIR/bf16_host.txt" "$DIR/bf16_simd.txt"
LTNS_FORCE_ISA=portable amp "$DIR/bf16_portable.txt" --backend=simd+bf16
python3 "$CMP" --compare-mode=bitwise "$DIR/bf16_host.txt" "$DIR/bf16_portable.txt"

echo "== bf16: deterministic under elastic multi-process sharding =="
amp "$DIR/bf16_elastic.txt" --precision=bf16 --processes=2 --elastic
python3 "$CMP" --compare-mode=bitwise "$DIR/bf16_host.txt" "$DIR/bf16_elastic.txt"

echo "== bf16: differs from fp32 but stays ULP-bounded =="
if python3 "$CMP" --compare-mode=bitwise "$DIR/host.txt" "$DIR/bf16_host.txt" \
    > /dev/null 2>&1; then
  echo "bf16 run produced fp32 bits — mixed precision never engaged"; exit 1
fi
python3 "$CMP" --compare-mode=ulp:$ULP_BOUND "$DIR/host.txt" "$DIR/bf16_host.txt"

echo "== serve transport: fp32 bitwise, bf16 deterministic + bounded =="
"$CLI" serve $PORT --processes=2 --backend=simd > "$DIR/server.log" 2>&1 &
SRV=$!
sleep 0.5
"$CLI" worker 127.0.0.1 $PORT > "$DIR/w0.log" 2>&1 &
"$CLI" worker 127.0.0.1 $PORT > "$DIR/w1.log" 2>&1 &
sleep 0.5
"$CLI" submit 127.0.0.1 $PORT "$DIR/c.qc" $BITS --target=4 --job-name=fp32
"$CLI" submit 127.0.0.1 $PORT "$DIR/c.qc" $BITS --target=4 --precision=bf16 --job-name=bf16
"$CLI" result 127.0.0.1 $PORT 1 --wait | grep '^amplitude' > "$DIR/serve_fp32.txt"
"$CLI" result 127.0.0.1 $PORT 2 --wait | grep '^amplitude' > "$DIR/serve_bf16.txt"
python3 "$CMP" --compare-mode=bitwise "$DIR/host.txt" "$DIR/serve_fp32.txt"
python3 "$CMP" --compare-mode=bitwise "$DIR/bf16_host.txt" "$DIR/serve_bf16.txt"
python3 "$CMP" --compare-mode=ulp:$ULP_BOUND "$DIR/host.txt" "$DIR/serve_bf16.txt"
"$CLI" shutdown 127.0.0.1 $PORT
wait $SRV

echo "kernels e2e PASSED"
