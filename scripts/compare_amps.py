#!/usr/bin/env python3
"""Amplitude-output comparator for the kernel verification contract.

Compares two `ltns_cli` output captures (the `amplitude = ...` lines that
scripts/kernels_e2e.sh greps out of amp/coordinate/result runs) under one
of two modes:

  --compare-mode=bitwise   byte equality of the amplitude lines. This is
                           the fp32 contract: every backend and every SIMD
                           tier must reproduce the host kernels' bits, so
                           even the %.10e text must match exactly.
  --compare-mode=ulp:N     scale-relative ULP bound. This is the bf16
                           mixed-precision contract: deterministic bits,
                           but only ULP-close to the fp32 reference.

The ulp metric mirrors util::ulp_distance_at_scale in src/util/ulp.hpp
EXACTLY: |ref - got| measured in units of the float32 spacing at `scale`,
where scale is the max |component| across the reference file's amplitudes.
Raw per-element ULP distance is useless here — catastrophic cancellation
leaves near-zero components whose sign flips under operand rounding,
billions of raw ULPs away at negligible absolute error — so the bound is
stated at the reference's magnitude, the way a backward-error analysis of
the bf16 chain actually predicts. Stdlib only (struct does the float32 bit
walking; math.ulp would give float64 spacing, which is the wrong unit).

Usage:
  compare_amps.py --compare-mode=bitwise ref.txt got.txt
  compare_amps.py --compare-mode=ulp:1048576 fp32.txt bf16.txt

Exit 0 on pass; exit 1 listing every violation.
"""
import argparse
import math
import re
import struct
import sys

AMP_RE = re.compile(r"amplitude = ([+-][0-9.]+e[+-][0-9]+) ([+-][0-9.]+e[+-][0-9]+)i")


def f32(x):
    """Round a python float through float32 (the kernels' element type)."""
    return struct.unpack("<f", struct.pack("<f", x))[0]


def ulp_of_f32(x):
    """Float32 spacing at |x|: gap to the next representable float above.

    Mirrors util::ulp_of — bit-increment on the float32 encoding, so
    denormals and powers of two get the same answer as the C++ side.
    """
    ax = abs(f32(x))
    if math.isinf(ax) or math.isnan(ax):
        return ax
    bits = struct.unpack("<I", struct.pack("<f", ax))[0]
    nxt = struct.unpack("<f", struct.pack("<I", bits + 1))[0]
    return nxt - ax


def ulp_distance_at_scale(a, b, scale):
    """Mirror of util::ulp_distance_at_scale (same rounding, same units)."""
    a, b = f32(a), f32(b)
    if not (math.isfinite(a) and math.isfinite(b)):
        return 0 if struct.pack("<f", a) == struct.pack("<f", b) else float("inf")
    diff = abs(a - b)  # python floats are doubles: matches the C++ double diff
    if diff == 0.0:
        return 0
    unit = ulp_of_f32(scale)
    if unit <= 0.0:
        return float("inf")
    return int(math.ceil(diff / unit))


def parse_amps(path):
    amps = []
    with open(path) as f:
        for line in f:
            m = AMP_RE.search(line)
            if m:
                amps.append((float(m.group(1)), float(m.group(2)), line.rstrip("\n")))
    if not amps:
        sys.exit(f"{path}: no 'amplitude = ...' lines found")
    return amps


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--compare-mode", required=True,
                    help="'bitwise' or 'ulp:N' (N = max scale-relative ULPs)")
    ap.add_argument("ref", help="reference capture (fp32/host side)")
    ap.add_argument("got", help="capture under test")
    args = ap.parse_args()

    ref, got = parse_amps(args.ref), parse_amps(args.got)
    if len(ref) != len(got):
        sys.exit(f"amplitude count mismatch: {args.ref} has {len(ref)}, "
                 f"{args.got} has {len(got)}")

    if args.compare_mode == "bitwise":
        bad = [(r[2], g[2]) for r, g in zip(ref, got) if r[2] != g[2]]
        for r, g in bad:
            print(f"bitwise mismatch:\n  ref: {r}\n  got: {g}", file=sys.stderr)
        if bad:
            sys.exit(1)
        print(f"bitwise OK: {len(ref)} amplitude line(s) byte-identical")
        return

    m = re.fullmatch(r"ulp:(\d+)", args.compare_mode)
    if not m:
        sys.exit(f"unknown --compare-mode '{args.compare_mode}' (bitwise|ulp:N)")
    bound = int(m.group(1))
    # One scale for the whole file, from the REFERENCE side — the corpus
    # pins in tests/test_kernels_parity.cpp use the same convention.
    scale = max(max(abs(re_), abs(im_)) for re_, im_, _ in ref)
    worst = 0
    bad = 0
    for (r_re, r_im, r_line), (g_re, g_im, g_line) in zip(ref, got):
        d = max(ulp_distance_at_scale(r_re, g_re, scale),
                ulp_distance_at_scale(r_im, g_im, scale))
        worst = max(worst, d)
        if d > bound:
            bad += 1
            print(f"ulp violation ({d} > {bound}):\n  ref: {r_line}\n  got: {g_line}",
                  file=sys.stderr)
    if bad:
        sys.exit(1)
    print(f"ulp OK: {len(ref)} amplitude line(s), max {worst} <= {bound} "
          f"ULPs at scale {scale:.6e}")


if __name__ == "__main__":
    main()
