#!/usr/bin/env python3
"""Observability artifact validator (CI `observability` job).

Checks the files a traced + metered run leaves behind:

- a Chrome trace-event JSON (`--trace-out`): must parse, carry the
  `ltns.trace.v1` schema stamp and a build section, and contain events in
  the expected categories. With `--min-pids N` the events must span at
  least N distinct pids — that is what proves a multi-process elastic run
  merged worker trace chunks into one timeline.
- a metrics JSON (`--metrics-out`): must parse, carry the
  `ltns.metrics.v1` schema stamp and a build section, and contain the
  stable series names every run emits.
- the `.prom` twin next to the metrics JSON: Prometheus text exposition —
  every line must be a comment or `name{labels} value`, and each metric
  family needs a `# TYPE` header.

Stdlib only, so the CI job needs nothing but the artifacts and python3.

Usage:
  check_obs.py --trace trace.json [--min-pids 2] [--require-cats slice,lease]
  check_obs.py --metrics metrics.json
  (both may be given at once; exits 1 listing every violation)
"""
import argparse
import json
import os
import re
import sys

# Categories from the src/obs/trace.cpp kind table (the schema promise in
# docs/observability.md): every trace from a real run has at least these.
DEFAULT_TRACE_CATS = "slice,kernel,lease"

# Series every fill_run_metrics() call emits regardless of run mode.
REQUIRED_METRICS = [
    "ltns_tasks_finished_total",
    "ltns_phase_seconds_total",
    "ltns_device_bytes_total",
    "ltns_memory_bytes_total",
    "ltns_leases_completed_total",
    "ltns_run_wall_seconds",
    "ltns_kernel_isa_lanes",
]

PROM_LINE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE.+-]+(nan|inf)?$|^[0-9]"
)


def check_trace(path, min_pids, require_cats, errors):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        errors.append(f"{path}: unreadable or invalid JSON: {e}")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        errors.append(f"{path}: no traceEvents array (or it is empty)")
        return
    other = doc.get("otherData", {})
    if other.get("schema") != "ltns.trace.v1":
        errors.append(f"{path}: otherData.schema != ltns.trace.v1")
    if not isinstance(other.get("build"), dict) or "version" not in other.get("build", {}):
        errors.append(f"{path}: otherData.build missing or lacks a version")

    pids = set()
    cats = set()
    named = 0
    for e in events:
        ph = e.get("ph")
        if ph == "M":
            named += 1
            continue
        if ph not in ("X", "i"):
            errors.append(f"{path}: unexpected event phase {ph!r}")
            continue
        if ph == "X" and "dur" not in e:
            errors.append(f"{path}: complete event without dur: {e.get('name')}")
        if "ts" not in e or "pid" not in e or "tid" not in e:
            errors.append(f"{path}: event missing ts/pid/tid: {e.get('name')}")
            continue
        pids.add(e["pid"])
        if e.get("cat"):
            cats.add(e["cat"])
    if named == 0:
        errors.append(f"{path}: no metadata (process/thread name) events")
    if len(pids) < min_pids:
        errors.append(
            f"{path}: events span {len(pids)} pid(s) {sorted(pids)}, need >= {min_pids}"
        )
    for cat in [c for c in require_cats.split(",") if c]:
        if cat not in cats:
            errors.append(f"{path}: no events in category {cat!r} (have {sorted(cats)})")
    if not errors:
        print(
            f"{path}: {len(events)} events ok — pids {sorted(pids)}, "
            f"categories {sorted(cats)}"
        )


def check_metrics(path, errors):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        errors.append(f"{path}: unreadable or invalid JSON: {e}")
        return
    if doc.get("schema") != "ltns.metrics.v1":
        errors.append(f"{path}: schema != ltns.metrics.v1")
    if not isinstance(doc.get("build"), dict) or "version" not in doc.get("build", {}):
        errors.append(f"{path}: build section missing or lacks a version")
    metrics = doc.get("metrics")
    if not isinstance(metrics, list) or not metrics:
        errors.append(f"{path}: no metrics array (or it is empty)")
        return
    names = {m.get("name") for m in metrics}
    for want in REQUIRED_METRICS:
        if want not in names:
            errors.append(f"{path}: missing required series {want}")
    for m in metrics:
        if m.get("type") not in ("counter", "gauge", "histogram"):
            errors.append(f"{path}: {m.get('name')}: unknown type {m.get('type')!r}")
        if m.get("type") == "histogram":
            if "buckets" not in m or "sum" not in m or "count" not in m:
                errors.append(f"{path}: {m.get('name')}: histogram missing fields")
        elif "value" not in m:
            errors.append(f"{path}: {m.get('name')}: no value")

    prom = path[:-5] + ".prom" if path.endswith(".json") else path + ".prom"
    if not os.path.exists(prom):
        errors.append(f"{prom}: missing (the .prom twin of {path})")
        return
    typed = set()
    with open(prom, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("# TYPE "):
                typed.add(line.split()[2])
                continue
            if line.startswith("#"):
                continue
            if not PROM_LINE_RE.match(line):
                errors.append(f"{prom}:{lineno}: malformed exposition line: {line!r}")
                continue
            family = re.split(r"[{ ]", line, maxsplit=1)[0]
            base = re.sub(r"_(bucket|sum|count)$", "", family)
            if family not in typed and base not in typed:
                errors.append(f"{prom}:{lineno}: sample before its # TYPE header")
    if not errors:
        print(f"{path}: {len(metrics)} series ok (+ valid .prom twin)")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="Chrome trace-event JSON to validate")
    ap.add_argument("--min-pids", type=int, default=1,
                    help="minimum distinct pids the trace must span")
    ap.add_argument("--require-cats", default=DEFAULT_TRACE_CATS,
                    help="comma-separated categories that must appear")
    ap.add_argument("--metrics", help="ltns.metrics.v1 JSON to validate")
    args = ap.parse_args()
    if not args.trace and not args.metrics:
        ap.error("give --trace and/or --metrics")

    errors = []
    if args.trace:
        check_trace(args.trace, args.min_pids, args.require_cats, errors)
    if args.metrics:
        check_metrics(args.metrics, errors)
    if errors:
        print(f"{len(errors)} observability check failure(s):")
        for e in errors:
            print("  " + e)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
