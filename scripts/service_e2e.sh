#!/usr/bin/env bash
# End-to-end exercise of the multi-tenant job server (docs/service.md):
#
#   1. solo `amp` baselines for two circuits;
#   2. one `serve` daemon + a two-worker fleet, where worker 0 SIGKILLs
#      itself mid-run while HOLDING a lease (LTNS_CHAOS_* hooks);
#   3. two concurrent jobs from different tenants (weights 3 and 1) — both
#      must complete and print amplitudes BYTE-identical to the solo runs;
#   4. the server status JSON must report the dead worker, both tenants'
#      fair-share state, and per-job progress;
#   5. the serve-side metrics snapshot must carry the queue/admission and
#      per-tenant series;
#   6. a server restarted from --state-dir must still serve job 1's
#      persisted result byte-identically, and re-run a job queued before
#      the kill to the same bytes.
#
# Usage: scripts/service_e2e.sh [path-to-ltns_cli] [port]
set -euo pipefail

CLI=${1:-build/ltns_cli}
PORT=${2:-39415}
DIR=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null; rm -rf "$DIR"' EXIT

echo "== baselines =="
"$CLI" gen 3 3 8 5 > "$DIR/c1.qc"
"$CLI" gen 3 3 8 6 > "$DIR/c2.qc"
BITS1=010101010
BITS2=101010101
# --target=4 slices each job into 64 tasks, so leases from the two jobs
# really interleave on the fleet (and the chaos kill lands mid-run).
"$CLI" --no-telemetry --target=4 amp "$DIR/c1.qc" $BITS1 | grep '^amplitude' > "$DIR/solo1.txt"
"$CLI" --no-telemetry --target=4 amp "$DIR/c2.qc" $BITS2 | grep '^amplitude' > "$DIR/solo2.txt"
cat "$DIR/solo1.txt" "$DIR/solo2.txt"

echo "== serve + fleet (worker 0 doomed) =="
"$CLI" serve $PORT --processes=2 --state-dir="$DIR/state" \
  --metrics-out="$DIR/server_metrics.json" --metrics-interval=0.2 \
  > "$DIR/server.log" 2>&1 &
SRV=$!
sleep 0.5
# "any": the server hands out worker ids in connect order, so this
# process cannot know which id it will get — but the hook is scoped to
# this one process's environment either way.
LTNS_CHAOS_KILL_SHARD=any LTNS_CHAOS_KILL_AFTER_RANGES=1 \
  "$CLI" worker 127.0.0.1 $PORT > "$DIR/w0.log" 2>&1 &
W0=$!
"$CLI" worker 127.0.0.1 $PORT > "$DIR/w1.log" 2>&1 &
W1=$!
sleep 0.5

echo "== two tenants, concurrent jobs =="
"$CLI" submit 127.0.0.1 $PORT "$DIR/c1.qc" $BITS1 --target=4 --tenant=alice --weight=3 --job-name=alpha
"$CLI" submit 127.0.0.1 $PORT "$DIR/c2.qc" $BITS2 --target=4 --tenant=bob --weight=1 --job-name=beta
"$CLI" result 127.0.0.1 $PORT 1 --wait > "$DIR/svc1.txt"
"$CLI" result 127.0.0.1 $PORT 2 --wait > "$DIR/svc2.txt"

grep '^amplitude' "$DIR/svc1.txt" | diff "$DIR/solo1.txt" -
grep '^amplitude' "$DIR/svc2.txt" | diff "$DIR/solo2.txt" -
echo "both jobs byte-identical to solo runs"

# The doomed worker must be gone (or a not-yet-reaped zombie); a short
# grace poll also gives the server time to notice the EOF.
dead=0
for _ in $(seq 1 100); do
  st=$(ps -o stat= -p $W0 2>/dev/null || true)
  if [ -z "$st" ] || [ "${st#Z}" != "$st" ] || [ "${st#*Z}" != "$st" ]; then dead=1; break; fi
  sleep 0.05
done
if [ "$dead" != 1 ]; then
  echo "chaos worker 0 is still alive — the SIGKILL hook never fired"; exit 1
fi
echo "worker 0 died mid-run as intended; fleet absorbed it"

echo "== status + metrics =="
"$CLI" status 127.0.0.1 $PORT > "$DIR/status.json"
python3 - "$DIR/status.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
tenants = {t["tenant"]: t for t in d["tenants"]}
assert tenants["alice"]["weight"] == 3 and tenants["bob"]["weight"] == 1, tenants
assert any(not w["alive"] for w in d["workers"]), "no dead worker in status"
jobs = {j["id"]: j for j in d["jobs"]}
assert jobs[1]["state"] == "done" and jobs[2]["state"] == "done", jobs
assert jobs[1]["tasks_done"] == jobs[1]["total"] > 1, jobs[1]
assert "admission" in d and d["admission"]["max_queued"] > 0
print("status OK: tenants", sorted(tenants), "| dead workers:",
      sum(not w["alive"] for w in d["workers"]))
EOF
python3 - "$DIR/server_metrics.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
names = {m["name"] for m in d["metrics"]}
need = {"ltns_server_queue_depth", "ltns_server_running_limit",
        "ltns_server_jobs_completed_total", "ltns_tenant_weight",
        "ltns_tenant_virtual_time"}
missing = need - names
assert not missing, f"metrics snapshot missing {missing}"
print("metrics OK:", len(names), "series")
EOF

echo "== queue a job, kill the server, restart from --state-dir =="
"$CLI" submit 127.0.0.1 $PORT "$DIR/c1.qc" $BITS1 --target=4 --tenant=alice --job-name=rerun
kill -9 $SRV; wait $SRV 2>/dev/null || true
"$CLI" serve $PORT --processes=2 --state-dir="$DIR/state" > "$DIR/server2.log" 2>&1 &
SRV2=$!
sleep 0.5
"$CLI" worker 127.0.0.1 $PORT > "$DIR/w2.log" 2>&1 &
# Job 1's result must have survived the kill verbatim; job 3 (queued when
# the server died) must re-run to the same bytes as the solo baseline.
"$CLI" result 127.0.0.1 $PORT 1 | grep '^amplitude' | diff "$DIR/solo1.txt" -
"$CLI" result 127.0.0.1 $PORT 3 --wait | grep '^amplitude' | diff "$DIR/solo1.txt" -
echo "restart OK: persisted result intact, queued job resumed byte-identically"

"$CLI" shutdown 127.0.0.1 $PORT
wait $SRV2
echo "service e2e PASSED"
