#!/usr/bin/env bash
# Restart-on-exit supervisor for a TCP worker (docs/operations.md).
#
# An elastic fleet treats worker death as routine — leases are requeued and
# the run continues — so the operational loop on a worker node is simply
# "keep a worker pointed at the coordinator". This script does that:
#
#   scripts/ltns_worker_supervisor.sh <host> <port> [extra ltns_cli flags...]
#
# Every exit restarts the worker: a clean exit (run drained) reconnects for
# the next run; a crash or lost coordinator retries with exponential backoff
# (doubling from BACKOFF_MIN_S to BACKOFF_MAX_S). A worker that stayed up
# at least BACKOFF_RESET_S counts as healthy and resets the backoff. SIGINT
# or SIGTERM stops the loop and forwards the signal to the worker.
#
# Environment:
#   LTNS_CLI           path to the binary        (default: build/ltns_cli)
#   BACKOFF_MIN_S      first retry delay          (default: 1)
#   BACKOFF_MAX_S      retry delay ceiling        (default: 60)
#   BACKOFF_RESET_S    uptime that resets backoff (default: 30)
#   MAX_RESTARTS       stop after N restarts; 0 = forever (default: 0)
set -u

if [ "$#" -lt 2 ]; then
  echo "usage: $0 <coordinator-host> <port> [extra ltns_cli flags...]" >&2
  exit 64
fi

host=$1
port=$2
shift 2

cli=${LTNS_CLI:-build/ltns_cli}
backoff_min=${BACKOFF_MIN_S:-1}
backoff_max=${BACKOFF_MAX_S:-60}
backoff_reset=${BACKOFF_RESET_S:-30}
max_restarts=${MAX_RESTARTS:-0}

if ! command -v "$cli" >/dev/null 2>&1 && [ ! -x "$cli" ]; then
  echo "supervisor: $cli not found or not executable (set LTNS_CLI)" >&2
  exit 66
fi

stopping=0
child=0
on_signal() {
  stopping=1
  if [ "$child" -ne 0 ]; then
    kill -TERM "$child" 2>/dev/null || true
  fi
}
trap on_signal INT TERM

backoff=$backoff_min
restarts=0
while [ "$stopping" -eq 0 ]; do
  start=$(date +%s)
  echo "supervisor: starting worker -> $host:$port (restart #$restarts)" >&2
  "$cli" "$@" worker "$host" "$port" &
  child=$!
  wait "$child"
  rc=$?
  child=0
  [ "$stopping" -ne 0 ] && break
  uptime=$(( $(date +%s) - start ))

  if [ "$uptime" -ge "$backoff_reset" ]; then
    backoff=$backoff_min
  fi
  restarts=$((restarts + 1))
  if [ "$max_restarts" -gt 0 ] && [ "$restarts" -ge "$max_restarts" ]; then
    echo "supervisor: reached MAX_RESTARTS=$max_restarts, stopping (last rc=$rc)" >&2
    exit "$rc"
  fi

  echo "supervisor: worker exited rc=$rc after ${uptime}s; retrying in ${backoff}s" >&2
  # Interruptible sleep: a signal during the wait still stops the loop.
  sleep "$backoff" &
  child=$!
  wait "$child" 2>/dev/null
  child=0
  backoff=$((backoff * 2))
  [ "$backoff" -gt "$backoff_max" ] && backoff=$backoff_max
done

echo "supervisor: stopped" >&2
exit 0
