#!/usr/bin/env python3
"""Markdown link checker for the docs tree (CI `docs` job).

Walks every .md file in the repo (skipping build trees) and verifies that
each intra-repo link target exists:

- relative file links must resolve to a file or directory in the repo;
- fragment links to another file are checked file-only (anchors inside a
  file are checked when the target is .md: the heading must exist);
- http(s)/mailto links are NOT fetched — this job must stay hermetic.

Exits 1 listing every dead link. Stdlib only, so the CI job needs nothing
but a checkout and python3.
"""
import os
import re
import sys

SKIP_DIRS = {".git", "build", ".ccache", ".claude"}
LINK_RE = re.compile(r"\[([^\]]*)\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def anchor_of(heading: str) -> str:
    """GitHub-style anchor: lowercase, drop non-alnum except spaces/hyphens,
    spaces to hyphens."""
    heading = re.sub(r"[`*_\[\]()]", "", heading)
    heading = heading.strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)  # \w = unicode letters/digits/_
    return heading.replace(" ", "-")


def md_files(root: str):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def anchors_in(path: str):
    out = set()
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m:
                out.add(anchor_of(m.group(1)))
    return out


def links_in(path: str):
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            # Strip inline code spans so `[i·2^l, (i+1)·2^l)` isn't a link.
            stripped = re.sub(r"`[^`]*`", "", line)
            for m in LINK_RE.finditer(stripped):
                yield lineno, m.group(2)


def main() -> int:
    root = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
    anchor_cache = {}
    dead = []
    checked = 0
    for md in md_files(root):
        for lineno, target in links_in(md):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            checked += 1
            frag = ""
            if "#" in target:
                target, frag = target.split("#", 1)
            if target == "":
                dest = md  # same-file fragment
            else:
                dest = os.path.normpath(os.path.join(os.path.dirname(md), target))
            rel = os.path.relpath(md, root)
            if not os.path.exists(dest):
                dead.append(f"{rel}:{lineno}: dead link -> {target or '#' + frag}")
                continue
            if frag and dest.endswith(".md") and os.path.isfile(dest):
                if dest not in anchor_cache:
                    anchor_cache[dest] = anchors_in(dest)
                if frag.lower() not in anchor_cache[dest]:
                    dead.append(
                        f"{rel}:{lineno}: dead anchor -> "
                        f"{os.path.relpath(dest, root)}#{frag}"
                    )
    if dead:
        print(f"{len(dead)} dead link(s) out of {checked} checked:")
        for d in dead:
            print("  " + d)
        return 1
    print(f"all {checked} intra-repo markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
