#!/usr/bin/env bash
# End-to-end exercise of the batched query engine (docs/queries.md):
#
#   1. a mixed query file (64 amp queries over 16 distinct bitstrings +
#      batch/sample/expect) runs solo: every amp answer must be
#      byte-identical to its own standalone `amp` run, and the metrics
#      snapshot must prove the acceptance invariant — MORE queries than
#      contractions (duplicates dedup into closed groups, the open queries
#      share one batch cover);
#   2. a warm solo run against the same --cache-dir answers every group
#      from the result cache: zero contractions, byte-identical output;
#   3. a 3-process elastic run (fresh cache) streams the byte-identical
#      per-query output — the cover and the contraction bytes are
#      transport-invariant;
#   4. a `serve` daemon runs the same file as ONE batched job (submit
#      --queries): per-query output byte-identical to solo; a second query
#      job asking for a SUBSET batch of the first job's cover is answered
#      entirely from the cached covering batch (groups_from_cache in the
#      status JSON, zero group contractions, sliced bytes equal);
#   5. malformed query files are rejected with the offending line, both
#      solo (exit 2) and at submit time.
#
# Usage: scripts/query_e2e.sh [path-to-ltns_cli] [port]
set -euo pipefail

CLI=${1:-build/ltns_cli}
PORT=${2:-39431}
DIR=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null; rm -rf "$DIR"' EXIT

metric() { # <file> <name>
  python3 - "$@" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
print(int(sum(m["value"] for m in d["metrics"] if m["name"] == sys.argv[2])))
EOF
}

# Per-query blocks only: drop run summaries ('# queries', '# plans') and
# telemetry so solo / elastic / serve outputs can be diffed verbatim.
blocks() { grep -Ev '^# (queries|plans)' "$1" | grep -Ev '^(runtime|cache:| |slices|rebalance)'; }

# Same blocks, re-ordered by query id: the solo engine STREAMS results in
# group order while a served job's record is replayed in file order — the
# bytes per block must still match exactly.
canon() { # <file>
  python3 - "$1" <<'EOF'
import re, sys
text = ''.join(l for l in open(sys.argv[1])
               if not re.match(r'^# (queries|plans)|^(runtime|cache:| |slices|rebalance)', l))
blocks = [b for b in re.split(r'(?m)^(?=# query )', text) if b]
for b in sorted(blocks, key=lambda b: int(re.match(r'# query (\d+)', b).group(1))):
    sys.stdout.write(b)
EOF
}

echo "== build the mixed query file (64 amp + batch/sample/expect) =="
"$CLI" gen 3 3 8 5 > "$DIR/c.qc"
python3 - "$DIR/q.txt" <<'EOF'
import sys
lines = []
for i in range(64):                     # 64 amp queries, 16 distinct bitstrings
    v = i % 16
    bits = ['0'] * 9
    for j, q in enumerate((1, 3, 5, 7)):
        bits[q] = '1' if (v >> j) & 1 else '0'
    lines.append('amp ' + ''.join(bits))
lines.append('batch 0?0000?00')         # open {1,6}
lines.append('sample 8 77 0?00000?0')   # open {1,7}
lines.append('expect ZIIIIIIIZ')        # support {0,8} -- one shared cover
open(sys.argv[1], 'w').write('\n'.join(lines) + '\n')
EOF

echo "== solo run: 67 queries, metrics must show fewer contractions =="
CACHE="$DIR/cache"
"$CLI" --target=4 --no-telemetry --cache-dir="$CACHE" --metrics-out="$DIR/solo.json" \
  query "$DIR/c.qc" "$DIR/q.txt" > "$DIR/solo.txt"
blocks "$DIR/solo.txt" > "$DIR/solo_blocks.txt"
queries=$(metric "$DIR/solo.json" ltns_query_queries_total)
contractions=$(metric "$DIR/solo.json" ltns_query_contractions_total)
groups=$(metric "$DIR/solo.json" ltns_query_groups_total)
test "$queries" -eq 67 || { echo "expected 67 queries, got $queries"; exit 1; }
test "$groups" -eq 17 || { echo "expected 17 groups (16 closed + 1 cover), got $groups"; exit 1; }
test "$contractions" -lt "$queries" \
  || { echo "grouping shared no work: $contractions contractions for $queries queries"; exit 1; }
echo "solo OK: $queries queries -> $groups groups, $contractions contractions"

echo "== every amp answer is byte-identical to its standalone amp run =="
python3 - "$DIR" "$CLI" <<'EOF'
import re, subprocess, sys
d, cli = sys.argv[1], sys.argv[2]
text = open(d + '/solo.txt').read()
pairs = re.findall(r'^# query \d+: amp ([01]{9})\namplitude = (.*)$', text, re.M)
assert len(pairs) == 64, f'expected 64 amp answers, got {len(pairs)}'
solo = {}
for bits in sorted({b for b, _ in pairs}):
    out = subprocess.run([cli, '--target=4', '--no-telemetry', 'amp', d + '/c.qc', bits],
                         capture_output=True, text=True, check=True).stdout
    solo[bits] = re.search(r'^amplitude = (.*)$', out, re.M).group(1)
for bits, line in pairs:
    assert line == solo[bits], f'amp {bits}: query gave {line!r}, solo run gave {solo[bits]!r}'
print(f'{len(pairs)} amp answers byte-identical to {len(solo)} standalone runs')
EOF

echo "== warm run: every group answered from the result cache =="
"$CLI" --target=4 --no-telemetry --cache-dir="$CACHE" --metrics-out="$DIR/warm.json" \
  query "$DIR/c.qc" "$DIR/q.txt" > "$DIR/warm.txt"
blocks "$DIR/warm.txt" | diff "$DIR/solo_blocks.txt" -
test "$(metric "$DIR/warm.json" ltns_query_contractions_total)" -eq 0 \
  || { echo "warm run still contracted"; exit 1; }
test "$(metric "$DIR/warm.json" ltns_query_result_reuse_total)" -ge 17 \
  || { echo "warm run reused fewer groups than expected"; exit 1; }
echo "warm OK: zero contractions, byte-identical"

echo "== elastic 3-process run is byte-identical =="
"$CLI" --target=4 --no-telemetry --processes=3 --elastic \
  query "$DIR/c.qc" "$DIR/q.txt" > "$DIR/elastic.txt"
blocks "$DIR/elastic.txt" | diff "$DIR/solo_blocks.txt" -
echo "elastic OK"

echo "== serve: the same file as one batched query job =="
"$CLI" serve $PORT --cache-dir="$DIR/serve_cache" --state-dir="$DIR/state" \
  > "$DIR/server.log" 2>&1 &
SRV=$!
sleep 0.5
"$CLI" worker 127.0.0.1 $PORT > "$DIR/w0.log" 2>&1 &
sleep 0.3

# Hidden per-group child jobs consume ids too: always parse the id back.
JOB1=$("$CLI" submit 127.0.0.1 $PORT "$DIR/c.qc" --queries="$DIR/q.txt" --target=4 \
        --job-name=mixed | awk '{print $2}')
"$CLI" --no-telemetry result 127.0.0.1 $PORT "$JOB1" --wait > "$DIR/served.txt"
canon "$DIR/solo.txt" > "$DIR/solo_canon.txt"
canon "$DIR/served.txt" | diff "$DIR/solo_canon.txt" -
echo "serve OK: per-query output byte-identical to solo"

echo "== a subset batch job is sliced from the cached covering batch =="
printf 'batch 0?0000000\n' > "$DIR/sub.txt"
JOB2=$("$CLI" submit 127.0.0.1 $PORT "$DIR/c.qc" --queries="$DIR/sub.txt" --target=4 \
        --job-name=subset | awk '{print $2}')
"$CLI" --no-telemetry result 127.0.0.1 $PORT "$JOB2" --wait > "$DIR/sub_res.txt"
"$CLI" status 127.0.0.1 $PORT "$JOB2" > "$DIR/sub_status.json"
python3 - "$DIR" <<'EOF'
import json, re, sys
d = sys.argv[1]
s = json.load(open(d + '/sub_status.json'))
assert s["kind"] == "query", s
assert s["groups_from_cache"] == 1, f'subset job was not served from cache: {s}'
assert s["group_contractions"] == 0, f'subset job contracted: {s}'
# The sliced amplitudes are the covering batch's entries, to the byte:
# batch 0?0000?00 indexes (b1, b6), the subset fixes b6 = 0.
big = dict(re.findall(r'^amplitude\[(\d+)\] = (.*)$',
                      open(d + '/served.txt').read(), re.M))
sub = dict(re.findall(r'^amplitude\[(\d+)\] = (.*)$',
                      open(d + '/sub_res.txt').read(), re.M))
assert sub['0'] == big['00'] and sub['1'] == big['10'], (sub, big)
print('subset job OK: served from the covering batch, slices byte-equal')
EOF

echo "== malformed query files are rejected with the offending line =="
printf 'amp 010101010\namp 01x\n' > "$DIR/bad.txt"
rc=0; "$CLI" query "$DIR/c.qc" "$DIR/bad.txt" > /dev/null 2> "$DIR/bad.err" || rc=$?
test "$rc" -eq 2 || { echo "solo query accepted a malformed file (rc=$rc)"; exit 1; }
grep -q 'line 2' "$DIR/bad.err" || { echo "rejection lost the line number"; exit 1; }
rc=0; "$CLI" submit 127.0.0.1 $PORT "$DIR/c.qc" --queries="$DIR/bad.txt" \
  > "$DIR/bad_submit.txt" 2>&1 || rc=$?
test "$rc" -ne 0 || { echo "server accepted a malformed query file"; exit 1; }
grep -q 'line 2' "$DIR/bad_submit.txt" || { echo "server rejection lost the line"; exit 1; }
echo "rejection OK"

"$CLI" shutdown 127.0.0.1 $PORT
wait $SRV
echo "query e2e PASSED"
