// Quickstart: simulate a small random quantum circuit end-to-end and verify
// the tensor-network amplitude against the exact statevector simulator.
//
//   $ ./quickstart
//
// Walks through the whole public API: circuit generation, Simulator
// construction, single-amplitude simulation, and the planning statistics
// (path cost, slicing set, overhead) the paper's optimizers produce.
#include <cstdio>

#include "api/simulator.hpp"
#include "sv/statevector.hpp"

using namespace ltns;

int main() {
  // A 4x4-qubit, 8-cycle Sycamore-style random circuit.
  auto device = circuit::Device::grid(4, 4);
  circuit::RqcOptions rqc;
  rqc.cycles = 8;
  rqc.seed = 2019;
  auto circ = circuit::random_quantum_circuit(device, rqc);
  std::printf("circuit: %d qubits, %zu gates (%d two-qubit)\n", circ.num_qubits,
              circ.ops.size(), circ.num_two_qubit_ops());

  // Configure the simulator: memory target 2^10 elements per intermediate
  // tensor forces slicing; the fused (secondary-slicing) executor is on.
  api::SimulatorOptions opt;
  opt.plan.target_log2size = 10;
  opt.plan.path.greedy_trials = 16;
  opt.plan.path.partition_trials = 4;
  api::Simulator sim(circ, opt);

  std::vector<int> bits(size_t(circ.num_qubits), 0);
  bits[3] = bits[7] = bits[12] = 1;
  auto res = sim.amplitude(bits);

  std::printf("\n--- plan ---\n");
  std::printf("sliced edges:        %d (2^%d subtasks)\n", res.num_slices, res.num_slices);
  std::printf("slicing overhead:    %.4f (Eq. 2)\n", res.slicing.overhead());
  std::printf("total cost:          2^%.2f flops\n", res.slicing.log2_total_cost);
  std::printf("max intermediate:    2^%.1f elements\n", res.slicing.max_log2size);
  std::printf("plan time:           %.3f s, exec time: %.3f s\n", res.plan_seconds,
              res.exec_seconds);

  std::printf("\n--- result ---\n");
  std::printf("TNC amplitude:        %+.8f %+.8fi\n", res.amplitude.real(),
              res.amplitude.imag());

  auto exact = sv::simulate_amplitude(circ, bits);
  std::printf("statevector amplitude:%+.8f %+.8fi\n", exact.real(), exact.imag());
  double err = std::abs(res.amplitude - exact);
  std::printf("|difference| = %.3g  ->  %s\n", err, err < 1e-4 ? "MATCH" : "MISMATCH");
  return err < 1e-4 ? 0 : 1;
}
