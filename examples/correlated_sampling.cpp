// Correlated-sample generation — the paper's "1M correlated samples" output
// mode, demonstrated exactly at verifiable scale.
//
//   $ ./correlated_sampling [num_samples]
//
// Leaves a handful of output qubits open so one sliced contraction yields a
// whole batch of amplitudes; bitstrings are then frequency-sampled from the
// batch distribution. Sampled frequencies are cross-checked against the
// exact probabilities from the statevector simulator.
#include <cstdio>
#include <cstdlib>
#include <map>

#include "api/simulator.hpp"
#include "sv/statevector.hpp"

using namespace ltns;

int main(int argc, char** argv) {
  const int num_samples = argc > 1 ? std::atoi(argv[1]) : 100000;
  auto device = circuit::Device::grid(3, 4);
  circuit::RqcOptions rqc;
  rqc.cycles = 10;
  auto circ = circuit::random_quantum_circuit(device, rqc);

  api::SimulatorOptions opt;
  opt.plan.target_log2size = 10;
  api::Simulator sim(circ, opt);

  // Open four qubits; the rest are pinned to 0: one contraction -> a batch
  // of 16 correlated amplitudes.
  std::vector<int> bits(size_t(circ.num_qubits), 0);
  std::vector<int> open{0, 5, 6, 11};
  auto batch = sim.batch_amplitudes(bits, open);
  std::printf("batch of %zu amplitudes over open qubits {0, 5, 6, 11}\n",
              batch.amplitudes.size());
  std::printf("slicing: 2^%.0f subtasks, overhead %.4f\n",
              batch.slicing.log2_num_subtasks, batch.slicing.overhead());

  auto samples = api::Simulator::sample_from_batch(batch, num_samples, 1234);
  std::map<uint64_t, int> hist;
  for (auto s : samples) hist[s]++;

  // Exact conditional distribution from the statevector.
  sv::Statevector sv(circ.num_qubits);
  sv.run(circ);
  double total = 0;
  std::vector<double> p(batch.amplitudes.size());
  for (size_t k = 0; k < p.size(); ++k) {
    p[k] = std::norm(batch.amplitudes[k]);
    total += p[k];
  }

  std::printf("\n%-8s %12s %12s %12s\n", "bits", "sampled", "batch |a|^2", "exact |a|^2");
  double max_err = 0;
  for (size_t k = 0; k < p.size(); ++k) {
    auto full = bits;
    for (size_t i = 0; i < open.size(); ++i)
      full[size_t(open[i])] = int((k >> (open.size() - 1 - i)) & 1);
    double exact = std::norm(sv.amplitude_bits(full));
    double sampled = double(hist[k]) / num_samples;
    std::printf("%c%c%c%c     %12.5f %12.5f %12.5f\n", '0' + char((k >> 3) & 1),
                '0' + char((k >> 2) & 1), '0' + char((k >> 1) & 1), '0' + char(k & 1), sampled,
                p[k] / total, exact / total);
    max_err = std::max(max_err, std::abs(p[k] - exact));
  }
  std::printf("\nmax |batch - exact| probability error: %.3g -> %s\n", max_err,
              max_err < 1e-6 ? "MATCH" : "MISMATCH");
  return max_err < 1e-6 ? 0 : 1;
}
