// Sycamore-53 planning and full-machine projection — the paper's headline
// use case, at planning scale.
//
//   $ ./sycamore_projection [cycles]
//
// Builds the m-cycle 53-qubit Sycamore-style RQC, plans a contraction with
// the lifetime slicers, and projects end-to-end time / sustained Pflops on
// the modeled new Sunway system (the paper reports 96.1 s at 308.6 Pflops
// for m=20 on 107,520 nodes). Numbers here depend on the quality of the
// found path — the projection methodology is the reproduced artifact.
#include <cstdio>
#include <cstdlib>

#include "circuit/lowering.hpp"
#include "core/planner.hpp"
#include "sunway/cost_model.hpp"

using namespace ltns;

int main(int argc, char** argv) {
  const int cycles = argc > 1 ? std::atoi(argv[1]) : 12;
  auto device = circuit::Device::sycamore53();
  circuit::RqcOptions rqc;
  rqc.cycles = cycles;
  auto circ = circuit::random_quantum_circuit(device, rqc);
  auto ln = circuit::lower(circ);
  circuit::simplify(ln);
  std::printf("Sycamore-style RQC: 53 qubits, m=%d -> %d tensors / %d indices\n", cycles,
              ln.net.num_alive_vertices(), ln.net.num_alive_edges());

  core::PlanOptions po;
  po.path.greedy_trials = 48;
  po.path.partition_trials = 16;
  // Per-CG main-memory budget: 16 GB / 8 B = 2^31 elements; keep headroom.
  po.target_log2size = 30;
  auto plan = core::make_plan(ln.net, po);

  std::printf("path (%s): cost 2^%.2f flops, biggest tensor 2^%.1f\n", plan.path_method.c_str(),
              plan.tree->total_log2cost(), plan.tree->max_log2size());
  std::printf("stem: %d tensors carrying %.1f%% of the flops\n", plan.stem.length(),
              100 * plan.stem.cost_fraction());
  std::printf("slicing: %d edges -> 2^%d subtasks, overhead %.4f\n", plan.num_slices(),
              plan.num_slices(), plan.metrics.overhead());

  // Projection through the machine model: assume the fused executor holds
  // the measured arithmetic intensity of ~30 flop/B (Fig. 13 range) so each
  // subtask is near the roofline ridge.
  auto arch = sunway::ArchSpec::sw26010pro();
  sunway::SubtaskProfile prof;
  prof.flops = std::exp2(plan.metrics.log2_cost_per_subtask);
  prof.dma_bytes = prof.flops / 30.0;
  prof.dma_granularity = 512;

  std::printf("\n%-10s %14s %16s %12s\n", "nodes", "time (s)", "sustained", "efficiency");
  for (int nodes : {1024, 4096, 16384, 65536, arch.nodes_full_machine}) {
    auto pt = sunway::project(arch, prof, std::exp2(plan.metrics.log2_num_subtasks), nodes);
    std::printf("%-10d %14.2f %13.2f Pf %11.1f%%\n", pt.nodes, pt.seconds,
                pt.sustained_flops / 1e15, 100 * pt.parallel_efficiency);
  }
  std::printf("\npaper (m=20, full machine): 96.1 s, 308.6 Pflops sustained\n");
  return 0;
}
