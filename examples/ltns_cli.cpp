// ltns_cli: command-line front end over the public API.
//
//   ltns_cli gen   <rows> <cols> <cycles> [seed]          # emit a circuit file
//   ltns_cli gen-sycamore <cycles> [seed]
//   ltns_cli plan  <circuit-file> [depth]                 # path + lifetime slicing report
//   ltns_cli amp   <circuit-file> <bitstring>             # one amplitude (verified vs sv if <=22q)
//   ltns_cli sample <circuit-file> <n_open> <n_samples>   # correlated samples
//   ltns_cli query <circuit-file> <query-file>            # batched queries, shared contractions
//
//   ltns_cli coordinate <port> <nworkers> <circuit-file> <bitstring>
//   ltns_cli coordinate --status <host> <port>            # live lease state as JSON
//   ltns_cli worker <host> <port>                         # serve one shard job / join a fleet
//
// Multi-tenant service (see docs/service.md):
//   ltns_cli serve <port>                                 # persistent job server
//   ltns_cli submit <host> <port> <circuit-file> <bitstring>
//   ltns_cli status <host> <port> [job-id]                # server or per-job JSON
//   ltns_cli cancel <host> <port> <job-id>
//   ltns_cli result <host> <port> <job-id> [--wait]
//   ltns_cli shutdown <host> <port>
//
// Runtime flags (anywhere on the command line; `--help` prints them grouped
// the way api::SimulatorOptions nests them):
//   --runtime=ws|static|serial   subtask executor (default ws = work stealing)
//   --grain=N                    scheduler chunk size (tasks per deque pop)
//   --processes=N                fork N shard processes (amp/sample; default 1)
//   --workers=N                  scheduler width per process (default: hw/N)
//   --backend=SPEC               device backend (host|blocked|simd|cuda, each
//                                with an optional +fp32|+bf16 precision
//                                suffix; default host; `--backend=help` lists
//                                them with capabilities; fp32 backends are
//                                bitwise identical by contract)
//   --precision=fp32|bf16        GEMM operand precision (default fp32); bf16
//                                keeps fp32 accumulation and is deterministic
//                                but only ULP-close to fp32 (docs/kernels.md)
//   --elastic                    lease-based elastic sharding (straggler steal,
//                                dead-worker requeue; amp/sample/coordinate)
//   --lease=N                    tasks per lease (default: auto)
//   --heartbeat=SECONDS          worker liveness period (default 0.2)
//   --stall-timeout=SECONDS      silent-worker revoke threshold (default 30)
//   --spill-dir=PATH             durable run ledger: journal completed ranges
//                                there (elastic only; see docs/operations.md)
//   --resume                     replay an existing spill journal first, so a
//                                restarted coordinator redoes only unfinished
//                                ranges (output stays bitwise identical)
//   --spill-fsync=SECONDS        journal fsync cadence (default 0 = every record)
//   --cache-dir=PATH             persistent plan/result cache directory, shared
//                                across runs AND transports (amp/sample/serve
//                                hit the same store; see docs/caching.md)
//   --plan-cache=N               in-memory plan-cache entries (0 disables)
//   --result-cache=N             in-memory result-cache entries (0 disables)
//   --cache-readonly             consult but never write the on-disk store
//   --trace-out=PATH             arm the event tracer and write the run's
//                                Chrome trace-event JSON there (load it in
//                                chrome://tracing or ui.perfetto.dev; multi-
//                                process runs render as one timeline)
//   --metrics-out=PATH           write the run's final metrics snapshot there
//                                (ltns.metrics.v1 JSON + a .prom twin)
//   --metrics-interval=SECONDS   ALSO rewrite --metrics-out periodically while
//                                an elastic run is live (scraper cadence)
//   --max-open=N                 query grouper merge bound (default 6)
//   --amp-mode=exact|grouped     query amp answers: byte-exact standalone runs
//                                (default) or sliced from grouped batches
//   --queries=FILE               submit: queue FILE as one batched query job
//   --no-telemetry               suppress the executor/memory stats report
//   --version                    print the build stamp (git describe, compiler,
//                                flags) and exit
//
// Circuits use the ltnsqc v1 text format (see src/circuit/io.hpp); "-" reads
// stdin. This is the fourth runnable example and the scripting entry point.
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "api/simulator.hpp"
#include "circuit/io.hpp"
#include "core/planner.hpp"
#include "device/backend.hpp"
#include "dist/client.hpp"
#include "dist/server.hpp"
#include "dist/service.hpp"
#include "obs/build_info.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "path/optimizer.hpp"
#include "query/engine.hpp"
#include "sv/statevector.hpp"
#include "util/timer.hpp"

using namespace ltns;

namespace {

struct RuntimeFlags {
  exec::SliceExecutor executor = exec::SliceExecutor::kWorkStealing;
  uint64_t grain = 1;
  double target = 16;  // planner slicing target (log2 of max tensor size)
  int processes = 1;
  int workers = 0;
  bool telemetry = true;
  bool elastic = false;
  uint64_t lease = 0;
  double heartbeat = 0.2;
  double stall_timeout = 30;
  std::string spill_dir;
  bool resume = false;
  double spill_fsync = 0;
  // Cache flag group (options.cache). The -1 sentinels mean "not given":
  // cmd_serve needs to tell an explicit --plan-cache apart from the default
  // to refuse a memory-only cache behind a long-lived daemon.
  std::string cache_dir;
  long long plan_cache = -1;
  long long result_cache = -1;
  bool cache_readonly = false;
  std::string backend = "host";
  bool backend_set = false;  // --backend given explicitly (worker override)
  std::string precision = "fp32";
  std::string trace_out;
  std::string metrics_out;
  double metrics_interval = 0;
  // Service verbs (serve / submit / result).
  std::string state_dir;
  uint64_t max_queue = 64;
  int max_running = 4;
  std::string tenant = "default";
  uint32_t weight = 1;
  int priority = 0;
  std::string job_name;
  bool wait = false;
  // Query verbs (query / submit --queries).
  int max_open = 6;
  std::string amp_mode = "exact";
  std::string queries_file;
};

RuntimeFlags g_flags;

const char* executor_name(exec::SliceExecutor e) {
  switch (e) {
    case exec::SliceExecutor::kWorkStealing: return "work-stealing";
    case exec::SliceExecutor::kStaticPool: return "static-pool";
    case exec::SliceExecutor::kInnerPool: return "serial+inner-pool";
  }
  return "?";
}

// --precision folded into the backend spec: the spec string is the one
// precision channel (api::effective_backend_spec does the same fold). Used
// by the verbs that ship a backend string directly (coordinate / serve).
std::string effective_backend() {
  auto spec = device::parse_backend_spec(g_flags.backend);
  if (g_flags.precision == "bf16") spec.precision = exec::Precision::kBf16;
  return spec.spec();
}

api::SimulatorOptions make_sim_options() {
  api::SimulatorOptions opt;
  opt.plan.target_log2size = g_flags.target;
  opt.executor = g_flags.executor;
  opt.grain = g_flags.grain;
  opt.backend = g_flags.backend;
  opt.precision = g_flags.precision;
  opt.sharding.processes = g_flags.processes;
  opt.sharding.workers_per_process = g_flags.workers;
  opt.sharding.elastic = g_flags.elastic;
  opt.sharding.lease_size = g_flags.lease;
  opt.sharding.heartbeat_seconds = g_flags.heartbeat;
  opt.sharding.stall_timeout_seconds = g_flags.stall_timeout;
  opt.durability.spill_dir = g_flags.spill_dir;
  opt.durability.resume = g_flags.resume;
  opt.durability.fsync_seconds = g_flags.spill_fsync;
  opt.cache.cache_dir = g_flags.cache_dir;
  if (g_flags.plan_cache >= 0) opt.cache.plan_cache_entries = size_t(g_flags.plan_cache);
  if (g_flags.result_cache >= 0) opt.cache.result_cache_entries = size_t(g_flags.result_cache);
  opt.cache.read_only = g_flags.cache_readonly;
  opt.observability.metrics_out = g_flags.metrics_out;
  opt.observability.metrics_interval_seconds = g_flags.metrics_interval;
  return opt;
}

// Strips --runtime=/--grain=/--no-telemetry from argv; returns the rest.
std::vector<char*> parse_runtime_flags(int argc, char** argv) {
  std::vector<char*> rest;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--runtime=", 10) == 0) {
      const char* v = argv[i] + 10;
      if (std::strcmp(v, "ws") == 0) g_flags.executor = exec::SliceExecutor::kWorkStealing;
      else if (std::strcmp(v, "static") == 0) g_flags.executor = exec::SliceExecutor::kStaticPool;
      else if (std::strcmp(v, "serial") == 0) g_flags.executor = exec::SliceExecutor::kInnerPool;
      else {
        std::fprintf(stderr, "unknown --runtime '%s' (ws|static|serial)\n", v);
        std::exit(64);
      }
    } else if (std::strncmp(argv[i], "--grain=", 8) == 0) {
      g_flags.grain = uint64_t(std::atoll(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--processes=", 12) == 0) {
      g_flags.processes = std::atoi(argv[i] + 12);
      if (g_flags.processes < 1) {
        std::fprintf(stderr, "--processes must be >= 1\n");
        std::exit(64);
      }
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      g_flags.workers = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      g_flags.backend = argv[i] + 10;
      g_flags.backend_set = true;
      // `--backend=help` (or any unknown name) prints the full backend
      // listing — capabilities, alignment, availability — instead of a
      // bare error from deep inside the run.
      if (g_flags.backend == "help" || g_flags.backend == "list") {
        std::fputs(device::backend_help().c_str(), stdout);
        std::exit(0);
      }
      // Validate the NAME part only: "simd+bf16" is a full spec, and
      // parse_backend_spec rejects a bad precision suffix on its own.
      bool known_and_available = false;
      try {
        const auto spec = device::parse_backend_spec(g_flags.backend);
        for (const auto& b : device::available_backends())
          if (b.name == spec.name) known_and_available = b.caps.available;
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "--backend: %s\n", e.what());
        std::exit(64);
      }
      if (!known_and_available) {
        std::fprintf(stderr, "unknown or unavailable --backend '%s'\n\n%s",
                     g_flags.backend.c_str(), device::backend_help().c_str());
        std::exit(64);
      }
    } else if (std::strncmp(argv[i], "--precision=", 12) == 0) {
      g_flags.precision = argv[i] + 12;
      if (g_flags.precision != "fp32" && g_flags.precision != "bf16") {
        std::fprintf(stderr, "unknown --precision '%s' (fp32|bf16)\n", g_flags.precision.c_str());
        std::exit(64);
      }
    } else if (std::strcmp(argv[i], "--elastic") == 0) {
      g_flags.elastic = true;
    } else if (std::strncmp(argv[i], "--lease=", 8) == 0) {
      g_flags.lease = uint64_t(std::atoll(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--heartbeat=", 12) == 0) {
      g_flags.heartbeat = std::atof(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--stall-timeout=", 16) == 0) {
      g_flags.stall_timeout = std::atof(argv[i] + 16);
    } else if (std::strncmp(argv[i], "--spill-dir=", 12) == 0) {
      g_flags.spill_dir = argv[i] + 12;
      if (g_flags.spill_dir.empty()) {
        std::fprintf(stderr, "--spill-dir needs a path\n");
        std::exit(64);
      }
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      g_flags.resume = true;
    } else if (std::strncmp(argv[i], "--spill-fsync=", 14) == 0) {
      g_flags.spill_fsync = std::atof(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--cache-dir=", 12) == 0) {
      g_flags.cache_dir = argv[i] + 12;
      if (g_flags.cache_dir.empty()) {
        std::fprintf(stderr, "--cache-dir needs a path\n");
        std::exit(64);
      }
    } else if (std::strncmp(argv[i], "--plan-cache=", 13) == 0) {
      g_flags.plan_cache = std::atoll(argv[i] + 13);
      if (g_flags.plan_cache < 0) {
        std::fprintf(stderr, "--plan-cache must be >= 0 (0 disables the plan cache)\n");
        std::exit(64);
      }
    } else if (std::strncmp(argv[i], "--result-cache=", 15) == 0) {
      g_flags.result_cache = std::atoll(argv[i] + 15);
      if (g_flags.result_cache < 0) {
        std::fprintf(stderr, "--result-cache must be >= 0 (0 disables the result cache)\n");
        std::exit(64);
      }
    } else if (std::strcmp(argv[i], "--cache-readonly") == 0) {
      g_flags.cache_readonly = true;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      g_flags.trace_out = argv[i] + 12;
      if (g_flags.trace_out.empty()) {
        std::fprintf(stderr, "--trace-out needs a path\n");
        std::exit(64);
      }
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      g_flags.metrics_out = argv[i] + 14;
      if (g_flags.metrics_out.empty()) {
        std::fprintf(stderr, "--metrics-out needs a path\n");
        std::exit(64);
      }
    } else if (std::strncmp(argv[i], "--metrics-interval=", 19) == 0) {
      g_flags.metrics_interval = std::atof(argv[i] + 19);
    } else if (std::strncmp(argv[i], "--target=", 9) == 0) {
      g_flags.target = std::atof(argv[i] + 9);
      if (g_flags.target < 1) {
        std::fprintf(stderr, "--target must be >= 1 (log2 of the sliced tensor bound)\n");
        std::exit(64);
      }
    } else if (std::strncmp(argv[i], "--state-dir=", 12) == 0) {
      g_flags.state_dir = argv[i] + 12;
      if (g_flags.state_dir.empty()) {
        std::fprintf(stderr, "--state-dir needs a path\n");
        std::exit(64);
      }
    } else if (std::strncmp(argv[i], "--max-queue=", 12) == 0) {
      g_flags.max_queue = uint64_t(std::atoll(argv[i] + 12));
    } else if (std::strncmp(argv[i], "--max-running=", 14) == 0) {
      g_flags.max_running = std::atoi(argv[i] + 14);
      if (g_flags.max_running < 1) {
        std::fprintf(stderr, "--max-running must be >= 1\n");
        std::exit(64);
      }
    } else if (std::strncmp(argv[i], "--tenant=", 9) == 0) {
      g_flags.tenant = argv[i] + 9;
      if (g_flags.tenant.empty()) {
        std::fprintf(stderr, "--tenant needs a name\n");
        std::exit(64);
      }
    } else if (std::strncmp(argv[i], "--weight=", 9) == 0) {
      const int w = std::atoi(argv[i] + 9);
      if (w < 0) {
        std::fprintf(stderr, "--weight must be >= 0 (0 = background-only tenant)\n");
        std::exit(64);
      }
      g_flags.weight = uint32_t(w);
    } else if (std::strncmp(argv[i], "--priority=", 11) == 0) {
      g_flags.priority = std::atoi(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--job-name=", 11) == 0) {
      g_flags.job_name = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--max-open=", 11) == 0) {
      g_flags.max_open = std::atoi(argv[i] + 11);
      if (g_flags.max_open < 0 || g_flags.max_open > query::kMaxOpenQubits) {
        std::fprintf(stderr, "--max-open must be in [0, %d]\n", query::kMaxOpenQubits);
        std::exit(64);
      }
    } else if (std::strncmp(argv[i], "--amp-mode=", 11) == 0) {
      g_flags.amp_mode = argv[i] + 11;
      if (g_flags.amp_mode != "exact" && g_flags.amp_mode != "grouped") {
        std::fprintf(stderr, "unknown --amp-mode '%s' (exact|grouped)\n",
                     g_flags.amp_mode.c_str());
        std::exit(64);
      }
    } else if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      g_flags.queries_file = argv[i] + 10;
      if (g_flags.queries_file.empty()) {
        std::fprintf(stderr, "--queries needs a path\n");
        std::exit(64);
      }
    } else if (std::strcmp(argv[i], "--wait") == 0) {
      g_flags.wait = true;
    } else if (std::strcmp(argv[i], "--version") == 0) {
      const auto& b = obs::build_info();
      std::printf("ltns %s\n  compiler: %s\n  flags: %s\n  build type: %s\n", b.version,
                  b.compiler, b.flags, b.build_type);
      std::exit(0);
    } else if (std::strcmp(argv[i], "--no-telemetry") == 0) {
      g_flags.telemetry = false;
    } else {
      rest.push_back(argv[i]);
    }
  }
  // A silently-ignored flag combination is worse than an error: an
  // operator who types --resume without --spill-dir believes the run
  // resumed AND re-armed the journal when neither happened. The checks
  // live in api::validate_options — the same gate the Simulator runs — so
  // the CLI and the API can never drift apart on what is coherent.
  std::string bad = api::validate_options(make_sim_options());
  if (!bad.empty()) {
    std::fprintf(stderr, "%s\n", bad.c_str());
    std::exit(64);
  }
  return rest;
}

// cache::CacheStats -> the obs mirror struct the metrics registry takes.
// Also where ltns_planner_invocations_total comes from: the CI cache job
// asserts it stays flat across a warm run.
obs::CacheSample to_cache_sample(const cache::CacheStats* c) {
  obs::CacheSample s;
  if (c != nullptr) {
    const std::pair<const char*, const cache::TierStats*> tiers[] = {{"plan", &c->plan},
                                                                     {"result", &c->result}};
    for (const auto& [name, t] : tiers) {
      obs::CacheTierSample ts;
      ts.tier = name;
      ts.memory_hits = t->memory_hits;
      ts.disk_hits = t->disk_hits;
      ts.misses = t->misses;
      ts.evictions = t->evictions;
      ts.insertions = t->insertions;
      ts.corrupt_dropped = t->corrupt_dropped;
      ts.disk_bytes_written = t->disk_bytes_written;
      ts.memory_entries = t->memory_entries;
      ts.memory_bytes = t->memory_bytes;
      s.tiers.push_back(ts);
    }
    s.superset_hits = c->superset_hits;
  }
  s.planner_invocations = path::find_path_invocations();
  return s;
}

// query::EngineStats -> the obs mirror struct (obs stays free of query
// headers, so the copy lives with the caller).
obs::QuerySample to_query_sample(const query::EngineStats& e) {
  obs::QuerySample s;
  s.queries = e.queries;
  s.amp_queries = e.amp_queries;
  s.batch_queries = e.batch_queries;
  s.sample_queries = e.sample_queries;
  s.expect_queries = e.expect_queries;
  s.groups = e.groups;
  s.closed_groups = e.closed_groups;
  s.open_groups = e.open_groups;
  s.contractions = e.contractions;
  s.planner_passes = e.planner_passes;
  s.plan_cache_hits = e.plan_cache_hits;
  s.plan_rebuilds = e.plan_rebuilds;
  s.result_cache_hits = e.result_cache_hits;
  s.superset_hits = e.superset_hits;
  s.amplitudes_returned = e.amplitudes_returned;
  s.samples_drawn = e.samples_drawn;
  s.errors = e.errors;
  s.plan_seconds = e.plan_seconds;
  s.exec_seconds = e.exec_seconds;
  return s;
}

// One query answer. Shared by the solo `query` verb and `result` on a
// query job, so the two transports emit the SAME bytes per query — and an
// amp answer's `amplitude = ` line is the exact line a standalone `amp`
// run prints (scripts/query_e2e.sh byte-diffs all three). Returns 1 when
// the answer carries an error.
int print_query_result(const query::QueryResult& r) {
  std::printf("# query %d: %s\n", r.id, r.text.c_str());
  if (!r.error.empty()) {
    std::printf("error: %s\n", r.error.c_str());
    return 1;
  }
  switch (r.kind) {
    case query::QueryKind::kAmplitude:
      std::printf("amplitude = %+.10e %+.10ei  (|a|^2 = %.3e)\n", r.amplitudes[0].real(),
                  r.amplitudes[0].imag(), std::norm(r.amplitudes[0]));
      break;
    case query::QueryKind::kBatch: {
      // Index bits in open-set order, open_qubits[0] most significant —
      // the layout eval.hpp documents.
      int n_open = 0;
      while ((size_t(1) << n_open) < r.amplitudes.size()) ++n_open;
      for (size_t k = 0; k < r.amplitudes.size(); ++k) {
        std::string pattern(size_t(n_open), '0');
        for (int i = 0; i < n_open; ++i)
          if ((k >> (n_open - 1 - i)) & 1) pattern[size_t(i)] = '1';
        std::printf("amplitude[%s] = %+.10e %+.10ei\n", pattern.c_str(), r.amplitudes[k].real(),
                    r.amplitudes[k].imag());
      }
      break;
    }
    case query::QueryKind::kSample:
      for (const auto& s : r.samples) std::printf("%s\n", s.c_str());
      break;
    case query::QueryKind::kExpectation:
      std::printf("expectation = %+.10f\n", r.expectation);
      break;
  }
  return 0;
}

// Post-run observability flush: the merged Chrome trace (local threads +
// any ingested worker chunks) and the final metrics snapshot. Failures are
// reported but never change the exit code — the amplitude already printed.
void flush_observability(const runtime::ExecutorSnapshot& rt, const runtime::MemoryStats& mem,
                         const dist::RebalanceStats& reb, uint64_t tasks_run,
                         uint64_t reduce_merges, double wall_seconds,
                         const cache::CacheStats* cache = nullptr) {
  if (!g_flags.trace_out.empty()) {
    std::string err;
    if (!obs::Tracer::instance().write_chrome_json(g_flags.trace_out, &err))
      std::fprintf(stderr, "trace-out: %s\n", err.c_str());
  }
  if (!g_flags.metrics_out.empty()) {
    obs::MetricsRegistry reg;
    obs::fill_run_metrics(reg, rt, mem, reb, tasks_run, reduce_merges, wall_seconds);
    obs::fill_cache_metrics(reg, to_cache_sample(cache));
    std::string err;
    if (!reg.write_files(g_flags.metrics_out, &err))
      std::fprintf(stderr, "metrics-out: %s\n", err.c_str());
  }
}

void print_shards(const std::vector<dist::ShardTelemetry>& shards) {
  if (!g_flags.telemetry || shards.empty()) return;
  for (const auto& s : shards) {
    const char* backend = s.backend.empty() ? "host" : s.backend.c_str();
    if (s.count > 0)
      std::printf("  shard %d [%s]: tasks %llu of [%llu, %llu), %llu stolen, wall %.3fs\n",
                  int(s.shard), backend, (unsigned long long)s.tasks_run,
                  (unsigned long long)s.first, (unsigned long long)(s.first + s.count),
                  (unsigned long long)s.executor.stolen, s.wall_seconds);
    else
      std::printf("  shard %d [%s]: tasks %llu over %llu leases, wall %.3fs\n", int(s.shard),
                  backend, (unsigned long long)s.tasks_run, (unsigned long long)s.leases,
                  s.wall_seconds);
  }
}

void print_rebalance(const dist::RebalanceStats& r) {
  if (!g_flags.telemetry || (r.leases_issued == 0 && r.ranges_replayed == 0)) return;
  std::printf("rebalance: %llu leases (%llu completed), %llu stolen, %llu reissued, "
              "%llu requeued, %llu late-dropped, %llu workers lost, straggler wait %.3fs\n",
              (unsigned long long)r.leases_issued, (unsigned long long)r.leases_completed,
              (unsigned long long)r.ranges_stolen, (unsigned long long)r.ranges_reissued,
              (unsigned long long)r.ranges_requeued, (unsigned long long)r.late_results_dropped,
              (unsigned long long)r.workers_lost, r.straggler_wait_seconds);
  if (r.ranges_replayed > 0)
    std::printf("resume: %llu ranges (%llu tasks) replayed from the spill journal\n",
                (unsigned long long)r.ranges_replayed, (unsigned long long)r.tasks_replayed);
}

void print_cache(const cache::CacheStats& c) {
  if (!g_flags.telemetry || c.hits() + c.misses() == 0) return;
  std::printf("cache: plan %llu hits (%llu mem, %llu disk) / %llu misses, "
              "result %llu hits (%llu mem, %llu disk) / %llu misses\n",
              (unsigned long long)c.plan.hits(), (unsigned long long)c.plan.memory_hits,
              (unsigned long long)c.plan.disk_hits, (unsigned long long)c.plan.misses,
              (unsigned long long)c.result.hits(), (unsigned long long)c.result.memory_hits,
              (unsigned long long)c.result.disk_hits, (unsigned long long)c.result.misses);
}

void print_telemetry(const runtime::ExecutorSnapshot& rt, const runtime::MemoryStats& mem) {
  if (!g_flags.telemetry) return;
  std::printf("runtime [%s]: %llu tasks (%llu stolen, %llu cancelled), utilization %.0f%%\n",
              executor_name(g_flags.executor), (unsigned long long)rt.finished,
              (unsigned long long)rt.stolen, (unsigned long long)rt.cancelled,
              100 * rt.ema_utilization);
  std::printf("  phases: gemm %.3fs (%llu), permute %.3fs (%llu), reduce %.3fs (%llu merges)\n",
              rt.gemm.seconds, (unsigned long long)rt.gemm.count, rt.permute.seconds,
              (unsigned long long)rt.permute.count, rt.reduce.seconds,
              (unsigned long long)rt.reduce.count);
  std::printf("  memory: main %.3g B, LDM get/put %.3g/%.3g B, RMA %.3g B, "
              "LDM peak %zu elems, host peak %zu elems\n",
              mem.main_bytes, mem.scratch_bytes_get, mem.scratch_bytes_put, mem.rma_bytes,
              mem.ldm_peak_elems, mem.host_peak_elems);
  const auto& d = rt.device;
  if (d.kernel_calls() > 0 || d.stem_steps > 0)
    std::printf("  device [%s]: gemm %llu, permute %llu, stem steps %llu, "
                "to-device %.3g B / %.3g ms, to-host %.3g B / %.3g ms\n",
                g_flags.backend.c_str(), (unsigned long long)d.gemm_calls,
                (unsigned long long)d.permute_calls, (unsigned long long)d.stem_steps,
                d.bytes_to_device, d.ns_to_device / 1e6, d.bytes_to_host, d.ns_to_host / 1e6);
}

// The submit verb ships the circuit VERBATIM (the server and every fleet
// worker re-plan from the same text — that textual identity is what makes a
// service job byte-identical to a solo run), so it loads raw text, not a
// parsed Circuit.
std::string load_circuit_text(const char* path) {
  std::ostringstream text;
  if (std::strcmp(path, "-") == 0) {
    text << std::cin.rdbuf();
  } else {
    std::ifstream f(path);
    if (!f) {
      std::fprintf(stderr, "cannot open '%s'\n", path);
      std::exit(2);
    }
    text << f.rdbuf();
  }
  return text.str();
}

circuit::Circuit load_circuit(const char* path) {
  if (std::strcmp(path, "-") == 0) return circuit::read_circuit(std::cin);
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot open '%s'\n", path);
    std::exit(2);
  }
  return circuit::read_circuit(f);
}

int cmd_gen(int argc, char** argv, bool sycamore) {
  circuit::RqcOptions rqc;
  circuit::Device dev;
  int base;
  if (sycamore) {
    if (argc < 3) return 64;
    dev = circuit::Device::sycamore53();
    rqc.cycles = std::atoi(argv[2]);
    base = 3;
  } else {
    if (argc < 5) return 64;
    dev = circuit::Device::grid(std::atoi(argv[2]), std::atoi(argv[3]));
    rqc.cycles = std::atoi(argv[4]);
    base = 5;
  }
  if (argc > base) rqc.seed = uint64_t(std::atoll(argv[base]));
  circuit::write_circuit(std::cout, circuit::random_quantum_circuit(dev, rqc));
  return 0;
}

int cmd_plan(int argc, char** argv) {
  if (argc < 3) return 64;
  auto circ = load_circuit(argv[2]);
  const double depth = argc > 3 ? std::atof(argv[3]) : 12;

  auto ln = circuit::lower(circ);
  circuit::simplify(ln);
  std::printf("circuit: %d qubits, %zu gates -> %d tensors / %d indices\n", circ.num_qubits,
              circ.ops.size(), ln.net.num_alive_vertices(), ln.net.num_alive_edges());

  core::PlanOptions po;
  po.path.greedy_trials = 32;
  po.path.partition_trials = 8;
  {
    auto probe = path::find_path(ln.net, po.path);
    po.target_log2size = std::max(4.0, probe.log2size - depth);
  }
  auto plan = core::make_plan(ln.net, po);
  std::printf("path (%s): cost 2^%.2f flops, max tensor 2^%.1f\n", plan.path_method.c_str(),
              plan.tree->total_log2cost(), plan.tree->max_log2size());
  std::printf("stem: %d tensors (%.1f%% of flops)\n", plan.stem.length(),
              100 * plan.stem.cost_fraction());
  std::printf("slicing: %d edges -> %.0f subtasks, overhead %.4f, sliced max 2^%.1f\n",
              plan.num_slices(), plan.num_subtasks(), plan.metrics.overhead(),
              plan.metrics.max_log2size);
  return 0;
}

int cmd_amp(int argc, char** argv) {
  if (argc < 4) return 64;
  auto circ = load_circuit(argv[2]);
  const char* bitstr = argv[3];
  if (int(std::strlen(bitstr)) != circ.num_qubits) {
    std::fprintf(stderr, "bitstring must have %d bits\n", circ.num_qubits);
    return 2;
  }
  std::vector<int> bits(size_t(circ.num_qubits));
  for (int q = 0; q < circ.num_qubits; ++q) bits[size_t(q)] = bitstr[q] == '1';

  api::Simulator sim(circ, make_sim_options());
  auto res = sim.amplitude(bits);
  const auto& tel = res.telemetry;
  if (!tel.error.empty()) {
    std::fprintf(stderr, "sharded run failed: %s\n", tel.error.c_str());
    return 1;
  }
  std::printf("amplitude = %+.10e %+.10ei  (|a|^2 = %.3e)\n", res.amplitude.real(),
              res.amplitude.imag(), std::norm(res.amplitude));
  std::printf("slices %d, overhead %.4f, flops %.3g\n", res.num_slices, res.slicing.overhead(),
              tel.stats.flops);
  const auto cstats = sim.cache_stats();
  print_telemetry(tel.runtime_stats, tel.memory);
  print_shards(tel.shards);
  print_rebalance(tel.rebalance);
  print_cache(cstats);
  flush_observability(tel.runtime_stats, tel.memory, tel.rebalance, tel.runtime_stats.finished,
                      tel.runtime_stats.reduce.count, res.exec_seconds, &cstats);
  if (circ.num_qubits <= 22) {
    auto exact = sv::simulate_amplitude(circ, bits);
    std::printf("statevector check: |diff| = %.3g\n", std::abs(res.amplitude - exact));
  }
  return 0;
}

int cmd_sample(int argc, char** argv) {
  if (argc < 5) return 64;
  auto circ = load_circuit(argv[2]);
  const int n_open = std::atoi(argv[3]);
  const int n_samples = std::atoi(argv[4]);
  if (n_open < 1 || n_open > 20 || n_open > circ.num_qubits) {
    std::fprintf(stderr, "n_open out of range\n");
    return 2;
  }
  std::vector<int> bits(size_t(circ.num_qubits), 0);
  std::vector<int> open;
  for (int i = 0; i < n_open; ++i) open.push_back(i * circ.num_qubits / n_open);

  api::Simulator sim(circ, make_sim_options());
  Timer wall;
  auto batch = sim.batch_amplitudes(bits, open);
  const double wall_seconds = wall.seconds();
  const auto& tel = batch.telemetry;
  if (!tel.error.empty()) {
    std::fprintf(stderr, "sharded run failed: %s\n", tel.error.c_str());
    return 1;
  }
  auto samples = api::Simulator::sample_from_batch(batch, n_samples, 7);
  std::printf("# open qubits:");
  for (int q : open) std::printf(" %d", q);
  std::printf("\n");
  const auto cstats = sim.cache_stats();
  print_telemetry(tel.runtime_stats, tel.memory);
  print_shards(tel.shards);
  print_rebalance(tel.rebalance);
  print_cache(cstats);
  flush_observability(tel.runtime_stats, tel.memory, tel.rebalance,
                      tel.runtime_stats.finished, tel.runtime_stats.reduce.count,
                      wall_seconds, &cstats);
  for (auto s : samples) {
    for (int i = 0; i < n_open; ++i) std::putchar('0' + char((s >> (n_open - 1 - i)) & 1));
    std::putchar('\n');
  }
  return 0;
}

// Batched query engine (docs/queries.md): a whole query file against ONE
// circuit, answered through shared contractions and streamed per query as
// its group completes. All run flags apply — --processes/--elastic shard
// each group's contraction, --cache-dir shares plans and results with
// amp/sample/serve. "-" reads the query file from stdin.
int cmd_query(int argc, char** argv) {
  if (argc < 4) return 64;
  auto circ = load_circuit(argv[2]);
  const auto parsed = query::parse_queries(load_circuit_text(argv[3]), circ.num_qubits);
  if (!parsed.ok()) {
    // parse_queries also rejects an EMPTY file, so parsed.queries is
    // non-empty past this point.
    std::fprintf(stderr, "query file: %s\n", parsed.error.c_str());
    return 2;
  }

  api::Simulator sim(circ, make_sim_options());
  query::EngineOptions eo;
  eo.max_open = g_flags.max_open;
  eo.group_amplitudes = g_flags.amp_mode == "grouped";
  query::Engine engine(sim, eo);

  Timer wall;
  int errors = 0;
  const auto st = engine.run(parsed.queries, [&](const query::QueryResult& r) {
    errors += print_query_result(r);
  });
  const double wall_seconds = wall.seconds();

  // The acceptance invariant is readable straight off this line:
  // contractions < queries whenever grouping shared any work.
  std::printf("# queries %llu -> groups %llu (%llu closed, %llu open), contractions %llu\n",
              (unsigned long long)st.queries, (unsigned long long)st.groups,
              (unsigned long long)st.closed_groups, (unsigned long long)st.open_groups,
              (unsigned long long)st.contractions);
  std::printf("# plans: %llu planned, %llu cached, %llu rebuilt; reuse: %llu exact, "
              "%llu superset; wall %.3fs (plan %.3fs, exec %.3fs)\n",
              (unsigned long long)st.planner_passes, (unsigned long long)st.plan_cache_hits,
              (unsigned long long)st.plan_rebuilds, (unsigned long long)st.result_cache_hits,
              (unsigned long long)st.superset_hits, wall_seconds, st.plan_seconds,
              st.exec_seconds);
  const auto cstats = sim.cache_stats();
  print_cache(cstats);

  if (!g_flags.trace_out.empty()) {
    std::string err;
    if (!obs::Tracer::instance().write_chrome_json(g_flags.trace_out, &err))
      std::fprintf(stderr, "trace-out: %s\n", err.c_str());
  }
  if (!g_flags.metrics_out.empty()) {
    obs::MetricsRegistry reg;
    obs::fill_query_metrics(reg, to_query_sample(st));
    obs::fill_cache_metrics(reg, to_cache_sample(&cstats));
    std::string err;
    if (!reg.write_files(g_flags.metrics_out, &err))
      std::fprintf(stderr, "metrics-out: %s\n", err.c_str());
  }
  return errors > 0 ? 1 : 0;
}

// Multi-host mode: `coordinate` shards one amplitude job across `nworkers`
// TCP workers (started separately with `worker`) and prints the same
// amplitude line as `amp`, so the two paths can be diffed byte-for-byte.
int cmd_coordinate(int argc, char** argv) {
  // Status probe: `coordinate --status <host> <port>` asks a live elastic
  // coordinator for its lease/heartbeat state (debugging hung fleets).
  if (argc >= 3 && std::strcmp(argv[2], "--status") == 0) {
    if (argc < 5) return 64;
    const int port = std::atoi(argv[4]);
    if (port <= 0 || port > 65535) return 64;
    try {
      std::printf("%s\n", dist::query_status(argv[3], uint16_t(port)).c_str());
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }
  if (argc < 6) return 64;
  const int port = std::atoi(argv[2]);
  const int nworkers = std::atoi(argv[3]);
  if (port < 0 || port > 65535 || nworkers < 1) return 64;
  auto circ = load_circuit(argv[4]);
  const char* bitstr = argv[5];
  if (int(std::strlen(bitstr)) != circ.num_qubits) {
    std::fprintf(stderr, "bitstring must have %d bits\n", circ.num_qubits);
    return 2;
  }
  std::vector<int> bits(size_t(circ.num_qubits));
  for (int q = 0; q < circ.num_qubits; ++q) bits[size_t(q)] = bitstr[q] == '1';

  dist::ServiceOptions so;
  so.target_log2size = g_flags.target;
  so.executor = g_flags.executor;
  so.grain = g_flags.grain;
  so.workers_per_process = g_flags.workers;
  so.backend = effective_backend();
  so.elastic = g_flags.elastic;
  so.lease_size = g_flags.lease;
  so.heartbeat_seconds = g_flags.heartbeat;
  so.stall_timeout_seconds = g_flags.stall_timeout;
  so.spill_dir = g_flags.spill_dir;
  so.resume = g_flags.resume;
  so.spill_fsync_seconds = g_flags.spill_fsync;
  so.trace = !g_flags.trace_out.empty();
  so.metrics_out = g_flags.metrics_out;
  so.metrics_interval_seconds = g_flags.metrics_interval;
  dist::CoordinatorServer server{uint16_t(port)};
  std::fprintf(stderr, "coordinator listening on port %u, waiting for %d workers\n",
               unsigned(server.port()), nworkers);
  auto res = server.run_amplitude(nworkers, circ, bits, so);
  if (!res.completed) {
    std::fprintf(stderr, "distributed run failed: %s\n", res.error.c_str());
    return 1;
  }
  std::printf("amplitude = %+.10e %+.10ei  (|a|^2 = %.3e)\n", res.amplitude.real(),
              res.amplitude.imag(), std::norm(res.amplitude));
  std::printf("slices %d, tasks %llu over %d workers\n", res.num_slices,
              (unsigned long long)res.tasks_run, nworkers);
  print_shards(res.shards);
  print_rebalance(res.rebalance);
  runtime::ExecutorSnapshot rt;
  runtime::MemoryStats mem;
  uint64_t reduce_merges = 0;
  for (const auto& s : res.shards) {
    rt.merge(s.executor);
    mem.merge(s.memory);
    reduce_merges += s.reduce_merges;
  }
  flush_observability(rt, mem, res.rebalance, res.tasks_run, reduce_merges, res.wall_seconds);
  if (circ.num_qubits <= 22) {
    auto exact = sv::simulate_amplitude(circ, bits);
    std::printf("statevector check: |diff| = %.3g\n", std::abs(res.amplitude - exact));
  }
  return 0;
}

int cmd_worker(int argc, char** argv) {
  if (argc < 4) return 64;
  const int port = std::atoi(argv[3]);
  if (port <= 0 || port > 65535) return 64;
  // An EXPLICIT --backend on a worker overrides the job's default: each
  // node runs the backend its hardware has (the heterogeneous-fleet knob).
  // Without the flag the worker follows the coordinator's job.
  const int rc = dist::serve_worker(argv[2], uint16_t(port),
                                    g_flags.backend_set ? g_flags.backend : std::string{});
  // A worker given --trace-out also keeps a local copy of its own lane —
  // the coordinator still gets the kTrace chunk for the merged timeline.
  if (!g_flags.trace_out.empty() && obs::Tracer::instance().enabled()) {
    std::string err;
    if (!obs::Tracer::instance().write_chrome_json(g_flags.trace_out, &err))
      std::fprintf(stderr, "trace-out: %s\n", err.c_str());
  }
  return rc;
}

// --- multi-tenant service verbs (dist/server.hpp + dist/client.hpp) --------

int cmd_serve(int argc, char** argv) {
  if (argc < 3) return 64;
  const int port = std::atoi(argv[2]);
  if (port < 0 || port > 65535) return 64;
  dist::ServerOptions so;
  so.state_dir = g_flags.state_dir;
  // --processes picks the notional home-window count of every job's lease
  // ledger (the fleet itself grows and shrinks freely).
  so.home_workers = std::max(2, g_flags.processes);
  so.lease_size = g_flags.lease;
  so.heartbeat_seconds = g_flags.heartbeat;
  so.stall_timeout_seconds = g_flags.stall_timeout;
  so.fsync_seconds = g_flags.spill_fsync;
  so.workers_per_process = g_flags.workers;
  so.executor = uint32_t(g_flags.executor);
  so.grain = g_flags.grain;
  so.backend = effective_backend();
  so.metrics_out = g_flags.metrics_out;
  so.metrics_interval_seconds = g_flags.metrics_interval;
  so.admission.max_queued = size_t(g_flags.max_queue);
  so.admission.max_running = g_flags.max_running;
  // The server only engages the cache with a persistent tier behind it: a
  // memory-only cache inside a long-lived daemon would claim fingerprints
  // that silently vanish on restart. Explicit cache flags without
  // --cache-dir are therefore a refused combination, not a quiet no-op.
  if (g_flags.cache_dir.empty() &&
      (g_flags.plan_cache >= 0 || g_flags.result_cache >= 0 || g_flags.cache_readonly)) {
    std::fprintf(stderr, "serve: cache flags require --cache-dir (a memory-only cache in a "
                         "persistent daemon would vanish on restart)\n");
    return 64;
  }
  so.cache.cache_dir = g_flags.cache_dir;
  if (g_flags.plan_cache >= 0) so.cache.plan_cache_entries = size_t(g_flags.plan_cache);
  if (g_flags.result_cache >= 0) so.cache.result_cache_entries = size_t(g_flags.result_cache);
  so.cache.read_only = g_flags.cache_readonly;
  try {
    dist::JobServer server{uint16_t(port), so};
    std::fprintf(stderr, "job server listening on port %u%s\n", unsigned(server.port()),
                 g_flags.state_dir.empty() ? " (volatile: no --state-dir)" : "");
    const auto err = server.serve();
    if (!err.empty()) {
      std::fprintf(stderr, "job server failed: %s\n", err.c_str());
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}

int cmd_submit(int argc, char** argv) {
  const bool query_job = !g_flags.queries_file.empty();
  if (argc < (query_job ? 5 : 6)) return 64;
  if (query_job && argc > 5) {
    std::fprintf(stderr, "submit --queries=FILE takes no bitstring argument\n");
    return 64;
  }
  const int port = std::atoi(argv[3]);
  if (port <= 0 || port > 65535) return 64;
  dist::JobSpec spec;
  spec.name = g_flags.job_name;
  spec.tenant = g_flags.tenant;
  spec.weight = g_flags.weight;
  spec.priority = g_flags.priority;
  spec.circuit_text = load_circuit_text(argv[4]);
  spec.target_log2size = g_flags.target;
  // --precision and a +bf16 suffix on --backend are the same request; the
  // server folds spec.precision into its own backend choice (wire v7).
  spec.precision =
      exec::precision_name(device::parse_backend_spec(effective_backend()).precision);
  if (query_job) {
    // Kind "query": the whole query file rides in the spec; bits carries
    // the all-zero base string (its length tells the server the qubit
    // count), so the circuit must parse client-side.
    spec.kind = "query";
    spec.query_text = load_circuit_text(g_flags.queries_file.c_str());
    spec.max_open = g_flags.max_open;
    spec.amp_mode = g_flags.amp_mode;
    try {
      std::istringstream in(spec.circuit_text);
      const auto circ = circuit::read_circuit(in);
      spec.bits.assign(size_t(circ.num_qubits), '0');
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot parse circuit: %s\n", e.what());
      return 2;
    }
  } else {
    spec.bits = argv[5];
    for (char c : spec.bits) {
      if (c != '0' && c != '1') {
        std::fprintf(stderr, "bitstring must be 0s and 1s\n");
        return 2;
      }
    }
  }
  try {
    auto rep = dist::submit_job(argv[2], uint16_t(port), spec);
    if (!rep.ok) {
      std::fprintf(stderr, "rejected: %s\n", rep.message.c_str());
      return 1;
    }
    std::printf("job %llu %s (tenant %s, weight %u, priority %d)\n",
                (unsigned long long)rep.job_id, rep.message.c_str(), spec.tenant.c_str(),
                spec.weight, spec.priority);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}

int cmd_status(int argc, char** argv) {
  if (argc < 4) return 64;
  const int port = std::atoi(argv[3]);
  if (port <= 0 || port > 65535) return 64;
  const uint64_t job_id = argc > 4 ? uint64_t(std::atoll(argv[4])) : 0;
  try {
    std::printf("%s\n", dist::job_status_json(argv[2], uint16_t(port), job_id).c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}

int cmd_cancel(int argc, char** argv) {
  if (argc < 5) return 64;
  const int port = std::atoi(argv[3]);
  if (port <= 0 || port > 65535) return 64;
  try {
    auto rep = dist::cancel_job(argv[2], uint16_t(port), uint64_t(std::atoll(argv[4])));
    std::fprintf(rep.ok ? stdout : stderr, "%s\n", rep.message.c_str());
    return rep.ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}

int cmd_result(int argc, char** argv) {
  if (argc < 5) return 64;
  const int port = std::atoi(argv[3]);
  if (port <= 0 || port > 65535) return 64;
  try {
    auto rec =
        dist::fetch_result(argv[2], uint16_t(port), uint64_t(std::atoll(argv[4])), g_flags.wait);
    if (rec.state != dist::JobState::kDone) {
      std::fprintf(stderr, "job %llu %s: %s\n", (unsigned long long)rec.job_id,
                   dist::job_state_name(rec.state), rec.error.c_str());
      return 1;
    }
    if (rec.kind == "query") {
      // Per-query blocks in file order, through the SAME printer the solo
      // `query` verb uses — a served query job's amplitude lines byte-match
      // both the solo query run and standalone `amp` runs.
      int errors = 0;
      for (const auto& q : rec.query_results) errors += print_query_result(q);
      std::printf("# queries %zu, wall %.3fs\n", rec.query_results.size(), rec.wall_seconds);
      print_telemetry(rec.telemetry.runtime_stats, rec.telemetry.memory);
      print_shards(rec.telemetry.shards);
      print_rebalance(rec.telemetry.rebalance);
      return errors > 0 ? 1 : 0;
    }
    const std::complex<double> amp(rec.amplitude_re, rec.amplitude_im);
    // The exact line `amp`/`coordinate` print — the service e2e byte-diffs
    // a job's amplitude against a solo run's.
    std::printf("amplitude = %+.10e %+.10ei  (|a|^2 = %.3e)\n", amp.real(), amp.imag(),
                std::norm(amp));
    std::printf("slices %d, tasks %llu, wall %.3fs\n", rec.num_slices,
                (unsigned long long)rec.tasks_run, rec.wall_seconds);
    print_telemetry(rec.telemetry.runtime_stats, rec.telemetry.memory);
    print_shards(rec.telemetry.shards);
    print_rebalance(rec.telemetry.rebalance);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}

int cmd_shutdown(int argc, char** argv) {
  if (argc < 4) return 64;
  const int port = std::atoi(argv[3]);
  if (port <= 0 || port > 65535) return 64;
  try {
    auto rep = dist::shutdown_server(argv[2], uint16_t(port));
    std::fprintf(rep.ok ? stdout : stderr, "%s\n", rep.message.c_str());
    return rep.ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int raw_argc, char** raw_argv) {
  auto args = parse_runtime_flags(raw_argc, raw_argv);
  int argc = int(args.size());
  char** argv = args.data();
  // Arm the tracer before any run starts: this process records as the
  // coordinator lane (rank -1 -> pid 0); forked shard workers re-home
  // themselves after the fork and a TCP worker takes the rank its job
  // assigns (see src/obs/trace.hpp).
  if (!g_flags.trace_out.empty()) {
    const bool is_worker = argc >= 2 && std::strcmp(argv[1], "worker") == 0;
    obs::Tracer::instance().enable(is_worker ? 0 : -1);
  }
  // Usage sections mirror the api::SimulatorOptions nesting: run-level
  // knobs, then sharding.*, durability.*, observability.*, and the service
  // flags the options structs don't cover.
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 || std::strcmp(argv[1], "help") == 0) {
    std::fprintf(stderr,
                 "usage: ltns_cli <verb> [args] [flags]\n"
                 "\n"
                 "circuits:\n"
                 "  gen <rows> <cols> <cycles> [seed]       emit a random circuit\n"
                 "  gen-sycamore <cycles> [seed]            emit a Sycamore-53 circuit\n"
                 "  plan <circuit|-> [depth]                path + lifetime slicing report\n"
                 "\n"
                 "one-shot runs:\n"
                 "  amp|run <circuit|-> <bitstring>         one amplitude (sv check <= 22q)\n"
                 "  sample <circuit|-> <n_open> <n_samples> correlated samples\n"
                 "  query <circuit|-> <queries|->           batched queries over one planned\n"
                 "                                          circuit (docs/queries.md)\n"
                 "  coordinate <port> <n> <circuit|-> <bits> shard one job over TCP workers\n"
                 "  coordinate --status <host> <port>       live lease state as JSON\n"
                 "  worker <host> <port>                    serve a coordinator OR a fleet\n"
                 "\n"
                 "multi-tenant service (docs/service.md):\n"
                 "  serve <port>                            persistent fair-share job server\n"
                 "  submit <host> <port> <circuit|-> <bits> queue a job, print its id\n"
                 "  status <host> <port> [job-id]           server (or one job) JSON\n"
                 "  cancel <host> <port> <job-id>           cancel a queued/running job\n"
                 "  result <host> <port> <job-id> [--wait]  fetch (or await) a result\n"
                 "  shutdown <host> <port>                  drain the fleet and exit\n"
                 "\n"
                 "run flags:\n"
                 "  --runtime=ws|static|serial --grain=N\n"
                 "  --backend=SPEC  host|blocked|simd|cuda with optional +fp32|+bf16 suffix\n"
                 "                  (help lists capabilities; docs/kernels.md)\n"
                 "  --precision=fp32|bf16   GEMM operand precision (default fp32)\n"
                 "  --target=N   planner slicing bound, log2 elems (default 16)\n"
                 "query (docs/queries.md):\n"
                 "  --max-open=N       batch-group merge bound (default 6)\n"
                 "  --amp-mode=exact|grouped   amp answers byte-match solo runs (exact,\n"
                 "                     default) or may slice from grouped batches\n"
                 "sharding (options.sharding):\n"
                 "  --processes=N --workers=N --elastic --lease=N --heartbeat=S\n"
                 "  --stall-timeout=S\n"
                 "durability (options.durability):\n"
                 "  --spill-dir=PATH --resume --spill-fsync=S\n"
                 "cache (options.cache, docs/caching.md):\n"
                 "  --cache-dir=PATH   persistent plan/result store (amp/sample/serve share it)\n"
                 "  --plan-cache=N --result-cache=N   LRU entries (0 disables that cache)\n"
                 "  --cache-readonly   consult but never write the on-disk store\n"
                 "observability (options.observability):\n"
                 "  --trace-out=PATH --metrics-out=PATH --metrics-interval=S --no-telemetry\n"
                 "service:\n"
                 "  serve:  --state-dir=PATH --max-queue=N --max-running=N\n"
                 "  submit: --tenant=NAME --weight=N --priority=N --job-name=NAME\n"
                 "          --queries=FILE  queue the query file as one batched job\n"
                 "                          (then no <bits> argument; docs/queries.md)\n"
                 "  result: --wait\n"
                 "misc:\n"
                 "  --version --help\n");
    return argc < 2 ? 64 : 0;
  }
  std::string cmd = argv[1];
  int rc = 64;
  if (cmd == "gen") rc = cmd_gen(argc, argv, false);
  else if (cmd == "gen-sycamore") rc = cmd_gen(argc, argv, true);
  else if (cmd == "plan") rc = cmd_plan(argc, argv);
  else if (cmd == "amp" || cmd == "run") rc = cmd_amp(argc, argv);
  else if (cmd == "sample") rc = cmd_sample(argc, argv);
  else if (cmd == "query") rc = cmd_query(argc, argv);
  else if (cmd == "coordinate") rc = cmd_coordinate(argc, argv);
  else if (cmd == "worker") rc = cmd_worker(argc, argv);
  else if (cmd == "serve") rc = cmd_serve(argc, argv);
  else if (cmd == "submit") rc = cmd_submit(argc, argv);
  else if (cmd == "status") rc = cmd_status(argc, argv);
  else if (cmd == "cancel") rc = cmd_cancel(argc, argv);
  else if (cmd == "result") rc = cmd_result(argc, argv);
  else if (cmd == "shutdown") rc = cmd_shutdown(argc, argv);
  if (rc == 64) std::fprintf(stderr, "bad arguments; run `ltns_cli --help` for usage\n");
  return rc;
}
