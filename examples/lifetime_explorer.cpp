// Lifetime explorer: visualize the paper's central concept on a real
// Sycamore-style network.
//
//   $ ./lifetime_explorer [cycles] [target_log2size]
//
// Prints the stem of the best contraction tree, the lifetime interval of
// every stem edge, and compares the three slicers (greedy baseline,
// Algorithm 1, Algorithm 1 + Algorithm 2) on slicing-set size and overhead.
#include <cstdio>
#include <cstdlib>

#include "core/greedy_slicer.hpp"
#include "core/slice_finder.hpp"
#include "core/slice_refiner.hpp"
#include "circuit/lowering.hpp"
#include "path/optimizer.hpp"
#include "tn/stem.hpp"

using namespace ltns;

int main(int argc, char** argv) {
  const int cycles = argc > 1 ? std::atoi(argv[1]) : 12;
  auto device = circuit::Device::grid(5, 5);
  circuit::RqcOptions rqc;
  rqc.cycles = cycles;
  auto ln = circuit::lower(circuit::random_quantum_circuit(device, rqc));
  circuit::simplify(ln);
  std::printf("network: %d tensors, %d indices after simplification\n",
              ln.net.num_alive_vertices(), ln.net.num_alive_edges());

  path::OptimizerOptions po;
  po.greedy_trials = 24;
  po.partition_trials = 8;
  auto pr = path::find_path(ln.net, po);
  auto tree = tn::ContractionTree::build(ln.net, pr.path);
  auto stem = tn::extract_stem(tree);
  std::printf("path (%s): cost 2^%.2f, max tensor 2^%.1f\n", pr.method.c_str(), pr.log2cost,
              pr.log2size);
  std::printf("stem: %d tensors, %.1f%% of total flops\n\n", stem.length(),
              100.0 * stem.cost_fraction());

  // Stem profile: rank per position (the Fig. 6 x-axis).
  std::printf("stem tensor ranks (bottom -> root):\n  ");
  for (int p = 0; p < stem.length(); ++p) std::printf("%.0f ", stem.log2size(p));
  std::printf("\n\n");

  const double target = argc > 2 ? std::atof(argv[2]) : std::max(4.0, pr.log2size - 6);
  std::printf("memory target: 2^%.0f elements per tensor\n\n", target);

  // Lifetimes of the edges of the fattest stem tensor.
  auto lt = core::StemLifetimes::build(stem);
  int fat = 0;
  for (int p = 0; p < stem.length(); ++p)
    if (stem.log2size(p) > stem.log2size(fat)) fat = p;
  std::printf("lifetimes of the indices of the biggest stem tensor (pos %d):\n", fat);
  tree.node(stem.nodes[size_t(fat)]).ixs.for_each([&](int e) {
    auto iv = lt.of(e);
    std::printf("  edge %4d: [%3d, %3d]  len %3d  ", e, iv.begin, iv.end, iv.length());
    for (int p = 0; p < stem.length(); ++p) std::putchar(iv.contains(p) ? '#' : '.');
    std::printf("\n");
  });

  // Slicer comparison (the Fig. 10 measurement, one path).
  core::GreedySlicerOptions go;
  go.target_log2size = target;
  core::SlicedMetrics mg;
  auto Sg = core::greedy_slice(tree, go, &mg);

  core::SliceFinderOptions fo;
  fo.target_log2size = target;
  core::SlicedMetrics mf;
  auto Sf = core::lifetime_slice_finder(stem, fo, &mf);

  core::SliceRefinerOptions ro;
  ro.target_log2size = target;
  auto Sr = core::refine_slices(stem, Sf, ro);
  auto mr = core::evaluate_slicing(tree, Sr);

  std::printf("\n%-28s %8s %14s %12s\n", "slicer", "|S|", "total cost", "overhead");
  std::printf("%-28s %8d %11.2f lg %12.4f\n", "greedy (cotengra-style)", Sg.size(),
              mg.log2_total_cost, mg.overhead());
  std::printf("%-28s %8d %11.2f lg %12.4f\n", "lifetime finder (Alg.1)", Sf.size(),
              mf.log2_total_cost, mf.overhead());
  std::printf("%-28s %8d %11.2f lg %12.4f\n", "  + SA refiner (Alg.2)", Sr.size(),
              mr.log2_total_cost, mr.overhead());
  return 0;
}
