// Text serialization for circuits — a qsim-flavored line format so circuits
// can be stored, diffed and re-run:
//
//   ltnsqc v1
//   qubits 12
//   sqrt_x 0
//   fsim 0 1 1.5707963 0.5235988
//   cz 3 4
//   ...
//
// Gate names match the library (case-insensitive); fsim takes theta phi.
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/circuit.hpp"

namespace ltns::circuit {

void write_circuit(std::ostream& os, const Circuit& c);
// Throws std::runtime_error on malformed input.
Circuit read_circuit(std::istream& is);

std::string circuit_to_string(const Circuit& c);
Circuit circuit_from_string(const std::string& text);

}  // namespace ltns::circuit
