// Gate library for Sycamore-class random quantum circuits.
//
// Matrices are stored row-major in double precision (output index = row,
// input index = column); the lowering casts to complex<float>. The native
// set is the one used by the quantum-advantage experiments: the
// single-qubit layer gates sqrt(X), sqrt(Y), sqrt(W) with W = (X+Y)/sqrt(2),
// and the two-qubit fSim(theta, phi) family (Sycamore: theta ~ pi/2,
// phi ~ pi/6). H, CZ, and the Pauli set are included for examples/tests.
#pragma once

#include <complex>
#include <string>
#include <vector>

namespace ltns::circuit {

using cd = std::complex<double>;

struct GateDef {
  std::string name;
  int arity = 1;                // qubits acted on
  std::vector<cd> matrix;       // (2^arity)^2 entries, row-major
};

GateDef gate_x();
GateDef gate_y();
GateDef gate_z();
GateDef gate_h();
GateDef gate_sqrt_x();
GateDef gate_sqrt_y();
GateDef gate_sqrt_w();
GateDef gate_cz();
GateDef gate_fsim(double theta, double phi);
// The Sycamore two-qubit gate: fSim(pi/2, pi/6).
GateDef gate_sycamore();

// ||U U† − I||_max; 0 for exactly unitary matrices.
double unitarity_defect(const GateDef& g);

}  // namespace ltns::circuit
