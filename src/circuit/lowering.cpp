#include "circuit/lowering.hpp"

#include <cassert>

#include "exec/contract.hpp"

namespace ltns::circuit {

using exec::cfloat;
using exec::Tensor;

namespace {

// Gate matrix (out-major) -> tensor data in [in..., out...] axis order.
std::vector<cfloat> gate_tensor_data(const GateDef& g) {
  const int n = 1 << g.arity;
  std::vector<cfloat> data(size_t(n) * n);
  for (int in = 0; in < n; ++in)
    for (int out = 0; out < n; ++out)
      data[size_t(in) * n + out] = cfloat(g.matrix[size_t(out) * n + in]);
  return data;
}

}  // namespace

LoweredNetwork lower(const Circuit& c, const LoweringOptions& opt) {
  LoweredNetwork ln;
  ln.output_edge.assign(size_t(c.num_qubits), tn::kNone);
  std::vector<int> bits = opt.output_bits;
  if (bits.empty()) bits.assign(size_t(c.num_qubits), 0);
  assert(int(bits.size()) == c.num_qubits);

  auto add_tensor = [&](tn::VertId v, Tensor t) {
    if (int(ln.tensors.size()) <= v) ln.tensors.resize(size_t(v) + 1);
    ln.tensors[size_t(v)] = std::move(t);
  };

  // |0> caps.
  std::vector<int> cur(size_t(c.num_qubits));
  for (int q = 0; q < c.num_qubits; ++q) {
    tn::VertId v = ln.net.add_vertex("ket0_q" + std::to_string(q));
    int e = ln.net.add_edge(v, tn::kNone);
    cur[size_t(q)] = e;
    add_tensor(v, Tensor({e}, {cfloat{1, 0}, cfloat{0, 0}}));
  }

  // Gate tensors.
  for (const auto& op : c.ops) {
    tn::VertId v = ln.net.add_vertex(op.gate.name);
    std::vector<int> ixs;
    for (int q : op.qubits) {
      ln.net.connect_open_edge(cur[size_t(q)], v);
      ixs.push_back(cur[size_t(q)]);
    }
    for (int q : op.qubits) {
      int e = ln.net.add_edge(v, tn::kNone);
      cur[size_t(q)] = e;
      ixs.push_back(e);
    }
    add_tensor(v, Tensor(ixs, gate_tensor_data(op.gate)));
  }

  // Output caps / open edges.
  for (int q = 0; q < c.num_qubits; ++q) {
    bool open = false;
    for (int oq : opt.open_qubits) open = open || (oq == q);
    if (open) {
      ln.output_edge[size_t(q)] = cur[size_t(q)];
      continue;
    }
    tn::VertId v = ln.net.add_vertex("bra_q" + std::to_string(q));
    ln.net.connect_open_edge(cur[size_t(q)], v);
    Tensor t({cur[size_t(q)]}, {cfloat{0, 0}, cfloat{0, 0}});
    t.data()[size_t(bits[size_t(q)])] = cfloat{1, 0};
    add_tensor(v, std::move(t));
  }
  ln.tensors.resize(size_t(ln.net.num_vertices()));
  return ln;
}

SimplifyStats simplify(LoweredNetwork& ln) {
  SimplifyStats st;
  tn::TensorNetwork& net = ln.net;
  bool progress = true;
  while (progress && net.num_alive_vertices() > 2) {
    progress = false;
    for (tn::VertId v = 0; v < net.num_vertices() && net.num_alive_vertices() > 2; ++v) {
      if (!net.vertex(v).alive) continue;
      int rank = net.vertex_rank(v);
      if (rank > 2) continue;
      // Find a neighbor to absorb into.
      tn::VertId u = tn::kNone;
      for (int e : net.vertex(v).edges) {
        tn::VertId other = net.neighbor_via(v, e);
        if (other != tn::kNone) {
          u = other;
          break;
        }
      }
      if (u == tn::kNone) continue;  // only open edges: keep (output cap)
      Tensor merged = exec::contract(ln.tensors[size_t(u)], ln.tensors[size_t(v)]);
      if (merged.rank() == 0) {
        ln.scalar *= std::complex<double>(merged.data()[0]);
        // Both tensors fully contracted away: kill the pair.
        net.contract(u, v);
        net.vertex(u).alive = false;
        net.vertex(u).edges.clear();
        ln.tensors[size_t(u)] = Tensor{};
      } else {
        net.contract(u, v);
        ln.tensors[size_t(u)] = std::move(merged);
      }
      ln.tensors[size_t(v)] = Tensor{};
      (rank <= 1 ? st.absorbed_rank1 : st.absorbed_rank2)++;
      progress = true;
    }
  }
  return st;
}

}  // namespace ltns::circuit
