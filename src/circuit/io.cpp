#include "circuit/io.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace ltns::circuit {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) { return std::tolower(c); });
  return s;
}

// Serialized name for a gate (fsim carries its angles separately).
std::string wire_name(const GateDef& g, double* theta, double* phi) {
  std::string n = lower(g.name);
  if (n == "fsim" || n == "syc") {
    // Recover the angles from the matrix: cos(theta) at |01><01|,
    // exp(-i phi) at |11><11|.
    *theta = std::atan2(-g.matrix[6].imag(), g.matrix[5].real());
    *phi = -std::arg(g.matrix[15]);
    return "fsim";
  }
  return n;
}

}  // namespace

void write_circuit(std::ostream& os, const Circuit& c) {
  os.precision(17);  // round-trip exact doubles for the fsim angles
  os << "ltnsqc v1\n";
  os << "qubits " << c.num_qubits << "\n";
  for (const auto& op : c.ops) {
    double theta = 0, phi = 0;
    std::string name = wire_name(op.gate, &theta, &phi);
    os << name;
    for (int q : op.qubits) os << ' ' << q;
    if (name == "fsim") os << ' ' << theta << ' ' << phi;
    os << "\n";
  }
}

Circuit read_circuit(std::istream& is) {
  std::string header, version;
  is >> header >> version;
  if (header != "ltnsqc" || version != "v1")
    throw std::runtime_error("circuit io: bad header '" + header + " " + version + "'");
  std::string kw;
  Circuit c;
  is >> kw >> c.num_qubits;
  if (kw != "qubits" || c.num_qubits <= 0)
    throw std::runtime_error("circuit io: expected 'qubits N'");

  std::string line;
  std::getline(is, line);  // finish the qubits line
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string name;
    if (!(ls >> name) || name.empty() || name[0] == '#') continue;
    name = lower(name);
    auto read_q = [&](int n) {
      std::vector<int> qs(size_t(n), 0);
      for (int& q : qs) {
        if (!(ls >> q) || q < 0 || q >= c.num_qubits)
          throw std::runtime_error("circuit io: bad qubit in '" + line + "'");
      }
      return qs;
    };
    if (name == "x") c.apply(gate_x(), read_q(1));
    else if (name == "y") c.apply(gate_y(), read_q(1));
    else if (name == "z") c.apply(gate_z(), read_q(1));
    else if (name == "h") c.apply(gate_h(), read_q(1));
    else if (name == "sqrt_x") c.apply(gate_sqrt_x(), read_q(1));
    else if (name == "sqrt_y") c.apply(gate_sqrt_y(), read_q(1));
    else if (name == "sqrt_w") c.apply(gate_sqrt_w(), read_q(1));
    else if (name == "cz") c.apply(gate_cz(), read_q(2));
    else if (name == "fsim") {
      auto qs = read_q(2);
      double theta, phi;
      if (!(ls >> theta >> phi)) throw std::runtime_error("circuit io: fsim needs theta phi");
      c.apply(gate_fsim(theta, phi), qs);
    } else {
      throw std::runtime_error("circuit io: unknown gate '" + name + "'");
    }
  }
  return c;
}

std::string circuit_to_string(const Circuit& c) {
  std::ostringstream os;
  write_circuit(os, c);
  return os.str();
}

Circuit circuit_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_circuit(is);
}

}  // namespace ltns::circuit
