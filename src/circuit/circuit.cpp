#include "circuit/circuit.hpp"

#include <algorithm>
#include <cassert>
#include <map>

#include "util/rng.hpp"

namespace ltns::circuit {

void Circuit::apply(GateDef g, std::vector<int> qubits) {
  assert(int(qubits.size()) == g.arity);
  for (int q : qubits) assert(q >= 0 && q < num_qubits);
  ops.push_back(Op{std::move(g), std::move(qubits)});
}

int Circuit::num_two_qubit_ops() const {
  int c = 0;
  for (const auto& op : ops) c += (op.gate.arity == 2);
  return c;
}

Device Device::grid(int rows, int cols) {
  Device d;
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) d.coords.emplace_back(r, c);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      if (r + 1 < rows) d.couplers.emplace_back(id(r, c), id(r + 1, c));
      if (c + 1 < cols) d.couplers.emplace_back(id(r, c), id(r, c + 1));
    }
  return d;
}

Device Device::sycamore53() {
  // Row spans of the Sycamore diamond (cirq's device map), 54 sites; the
  // experiment's broken qubit — here (0,6) — is dropped, leaving 53.
  static const std::pair<int, std::pair<int, int>> rows[] = {
      {0, {5, 6}}, {1, {4, 7}}, {2, {3, 8}}, {3, {2, 9}}, {4, {1, 9}},
      {5, {0, 8}}, {6, {1, 7}}, {7, {2, 6}}, {8, {3, 5}}, {9, {4, 4}},
  };
  Device d;
  std::map<std::pair<int, int>, int> id;
  for (const auto& [r, span] : rows)
    for (int c = span.first; c <= span.second; ++c) {
      if (r == 0 && c == 6) continue;  // the removed qubit
      id[{r, c}] = int(d.coords.size());
      d.coords.emplace_back(r, c);
    }
  for (const auto& [rc, q] : id) {
    auto [r, c] = rc;
    for (auto [dr, dc] : {std::pair{1, 0}, std::pair{0, 1}}) {
      auto it = id.find({r + dr, c + dc});
      if (it != id.end()) d.couplers.emplace_back(q, it->second);
    }
  }
  assert(d.num_qubits() == 53);
  return d;
}

int pattern_for_cycle(int cycle) {
  static const int seq[8] = {0, 1, 2, 3, 2, 3, 0, 1};  // A B C D C D A B
  return seq[cycle % 8];
}

bool coupler_in_pattern(std::pair<int, int> a, std::pair<int, int> b, int pat) {
  const bool vertical = a.first != b.first;
  const int parity = (a.first + a.second) & 1;  // parity of the lower-id end
  if (vertical) return (pat == 0 && parity == 0) || (pat == 1 && parity == 1);
  return (pat == 2 && parity == 0) || (pat == 3 && parity == 1);
}

Circuit random_quantum_circuit(const Device& dev, const RqcOptions& opt) {
  Rng rng(opt.seed);
  Circuit c;
  c.num_qubits = dev.num_qubits();
  const GateDef singles[3] = {gate_sqrt_x(), gate_sqrt_y(), gate_sqrt_w()};
  std::vector<int> last(size_t(c.num_qubits), -1);

  GateDef fsim = gate_fsim(opt.fsim_theta, opt.fsim_phi);
  for (int cyc = 0; cyc < opt.cycles; ++cyc) {
    for (int q = 0; q < c.num_qubits; ++q) {
      // Non-repeating draw from the 3-gate set.
      int pick;
      do {
        pick = int(rng.next_below(3));
      } while (pick == last[size_t(q)]);
      last[size_t(q)] = pick;
      c.apply(singles[pick], {q});
    }
    const int pat = pattern_for_cycle(cyc);
    for (auto [qa, qb] : dev.couplers) {
      if (coupler_in_pattern(dev.coords[size_t(qa)], dev.coords[size_t(qb)], pat))
        c.apply(fsim, {qa, qb});
    }
  }
  // Final single-qubit layer before measurement, as in the experiments.
  for (int q = 0; q < c.num_qubits; ++q) {
    int pick;
    do {
      pick = int(rng.next_below(3));
    } while (pick == last[size_t(q)]);
    c.apply(singles[pick], {q});
  }
  return c;
}

}  // namespace ltns::circuit
