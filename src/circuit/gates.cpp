#include "circuit/gates.hpp"

#include <cassert>
#include <cmath>

namespace ltns::circuit {

namespace {
const cd I{0, 1};
}

GateDef gate_x() { return {"X", 1, {0, 1, 1, 0}}; }
GateDef gate_y() { return {"Y", 1, {0, -I, I, 0}}; }
GateDef gate_z() { return {"Z", 1, {1, 0, 0, -1}}; }

GateDef gate_h() {
  double s = 1.0 / std::sqrt(2.0);
  return {"H", 1, {s, s, s, -s}};
}

GateDef gate_sqrt_x() {
  // sqrt(X) = 1/2 [[1+i, 1-i], [1-i, 1+i]]
  cd p = cd(0.5, 0.5), m = cd(0.5, -0.5);
  return {"sqrt_X", 1, {p, m, m, p}};
}

GateDef gate_sqrt_y() {
  // sqrt(Y) = 1/2 [[1+i, -1-i], [1+i, 1+i]]
  cd p = cd(0.5, 0.5);
  return {"sqrt_Y", 1, {p, -p, p, p}};
}

GateDef gate_sqrt_w() {
  // W = (X+Y)/sqrt(2); W^2 = I, so sqrt(W) = (1+i)/2 I + (1-i)/2 W:
  //   [[(1+i)/2, -i/sqrt(2)], [1/sqrt(2), (1+i)/2]]
  double s = 1.0 / std::sqrt(2.0);
  cd p = cd(0.5, 0.5);
  return {"sqrt_W", 1, {p, cd(0, -s), cd(s, 0), p}};
}

GateDef gate_cz() {
  GateDef g{"CZ", 2, std::vector<cd>(16, 0)};
  g.matrix[0] = g.matrix[5] = g.matrix[10] = 1;
  g.matrix[15] = -1;
  return g;
}

GateDef gate_fsim(double theta, double phi) {
  // Basis order |00>, |01>, |10>, |11>.
  GateDef g{"fSim", 2, std::vector<cd>(16, 0)};
  g.matrix[0] = 1;
  g.matrix[5] = std::cos(theta);
  g.matrix[6] = -I * std::sin(theta);
  g.matrix[9] = -I * std::sin(theta);
  g.matrix[10] = std::cos(theta);
  g.matrix[15] = std::exp(-I * phi);
  return g;
}

GateDef gate_sycamore() {
  auto g = gate_fsim(M_PI / 2, M_PI / 6);
  g.name = "SYC";
  return g;
}

double unitarity_defect(const GateDef& g) {
  const int n = 1 << g.arity;
  double worst = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      cd acc = 0;
      for (int k = 0; k < n; ++k)
        acc += g.matrix[size_t(i * n + k)] * std::conj(g.matrix[size_t(j * n + k)]);
      cd want = (i == j) ? cd(1, 0) : cd(0, 0);
      worst = std::max(worst, std::abs(acc - want));
    }
  }
  return worst;
}

}  // namespace ltns::circuit
