// Circuit -> tensor network lowering, plus the rank-1/rank-2 preprocessing
// simplification (quimb's pre-process, §2.1.2).
//
// Every qubit worldline starts with a |0> cap (rank-1), threads through its
// gate tensors, and ends either with a <b| cap (computing one amplitude) or
// with an open edge (a batch axis for correlated samples). Simplification
// absorbs every rank-1 and rank-2 tensor into a neighbor — collapsing the
// single-qubit layers into the fSim tensors and leaving the rank-4-dominated
// graph the path optimizers expect.
#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "exec/tensor.hpp"
#include "tn/tensor_network.hpp"

namespace ltns::circuit {

struct LoweredNetwork {
  tn::TensorNetwork net;
  std::vector<exec::Tensor> tensors;  // per vertex id (dead vertices: empty)
  // Global scalar factor collected when simplification fully contracts a
  // connected component (tiny circuits).
  std::complex<double> scalar{1.0, 0.0};
  // Per qubit: the open output edge id, or tn::kNone when closed.
  std::vector<int> output_edge;

  exec::Tensor leaf(tn::VertId v) const { return tensors[size_t(v)]; }
};

struct LoweringOptions {
  // Output bits per qubit (closed qubits). Qubits listed in `open_qubits`
  // ignore their bit and keep an open output edge.
  std::vector<int> output_bits;  // defaults to all-zero
  std::vector<int> open_qubits;
};

LoweredNetwork lower(const Circuit& c, const LoweringOptions& opt = {});

struct SimplifyStats {
  int absorbed_rank1 = 0;
  int absorbed_rank2 = 0;
};

// In-place absorption of rank<=2 tensors; stops when fewer than three
// vertices remain alive.
SimplifyStats simplify(LoweredNetwork& ln);

}  // namespace ltns::circuit
