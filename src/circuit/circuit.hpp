// Circuit IR and the Sycamore-style random-quantum-circuit generator.
//
// The RQC ensemble follows the quantum-advantage experiments the paper
// simulates: per cycle, every qubit gets a random single-qubit gate from
// {sqrt(X), sqrt(Y), sqrt(W)} (never repeating on the same qubit in
// consecutive cycles), then the two-qubit fSim gate fires on the couplers
// of the cycle's pattern, with patterns sequenced A B C D C D A B. Devices
// are 2-D grids: rectangular lattices of any size plus the 53-qubit
// Sycamore diamond layout.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "circuit/gates.hpp"

namespace ltns::circuit {

struct Op {
  GateDef gate;
  std::vector<int> qubits;  // gate.arity entries
};

struct Circuit {
  int num_qubits = 0;
  std::vector<Op> ops;

  void apply(GateDef g, std::vector<int> qubits);
  int num_two_qubit_ops() const;
};

// A device: qubit coordinates plus couplers (pairs of qubit ids).
struct Device {
  std::vector<std::pair<int, int>> coords;  // (row, col) per qubit
  std::vector<std::pair<int, int>> couplers;
  int num_qubits() const { return int(coords.size()); }

  static Device grid(int rows, int cols);
  // The 54-site Sycamore diamond with one site removed (the experiment used
  // 53 working qubits).
  static Device sycamore53();
};

// Coupler pattern id (A=0..D=3) active in the given cycle: A B C D C D A B.
int pattern_for_cycle(int cycle);
// True if the coupler (between coords a and b) belongs to pattern `pat`.
// Vertical couplers split into A/B by (row+col) parity, horizontal into C/D.
bool coupler_in_pattern(std::pair<int, int> a, std::pair<int, int> b, int pat);

struct RqcOptions {
  int cycles = 10;      // the paper's m
  uint64_t seed = 2019;
  double fsim_theta = M_PI / 2;
  double fsim_phi = M_PI / 6;
};

// Random circuit on `dev` in the ensemble described above.
Circuit random_quantum_circuit(const Device& dev, const RqcOptions& opt);

}  // namespace ltns::circuit
