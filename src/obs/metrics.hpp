// Metrics registry: one stable, named schema over the stack's scattered
// counters (runtime::ExecutorSnapshot, device::DeviceStats,
// dist::RebalanceStats, checkpoint spill health), exported as JSON
// (`--metrics-out`) and Prometheus text exposition (same basename, `.prom`).
//
// Schema promise (docs/observability.md): metric names, types and label
// keys are API — additions are fine, renames and removals are breaking.
// Future subsystems (plan/result cache, tenant queues, SIMD roofline)
// register here instead of inventing new ad-hoc structs.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "device/stats.hpp"
#include "runtime/executor_stats.hpp"
#include "runtime/memory_stats.hpp"

namespace ltns::dist {
struct RebalanceStats;
}

namespace ltns::obs {

using Labels = std::vector<std::pair<std::string, std::string>>;

struct Metric {
  enum class Type { kCounter, kGauge, kHistogram };
  std::string name;
  Type type = Type::kCounter;
  Labels labels;
  double value = 0;  // counter / gauge
  // Histogram: cumulative-style buckets with explicit upper bounds; the
  // +Inf bucket is implicit (== count).
  std::vector<double> bounds;
  std::vector<uint64_t> bucket_counts;  // per-bucket (non-cumulative)
  double sum = 0;
  uint64_t count = 0;
};

class MetricsRegistry {
 public:
  void counter(const std::string& name, double value, Labels labels = {});
  void gauge(const std::string& name, double value, Labels labels = {});
  // Observes into the histogram `name` (created with `bounds` on first
  // use); same name + labels accumulates.
  void observe(const std::string& name, const std::vector<double>& bounds, double value,
               Labels labels = {});

  const std::vector<Metric>& metrics() const { return metrics_; }

  // {"schema":"ltns.metrics.v1","build":{...},"metrics":[...]}
  std::string to_json() const;
  // Prometheus text exposition format v0.0.4.
  std::string to_prometheus() const;

  // Writes to_json() to `path` and to_prometheus() next to it (same path
  // with a ".prom" suffix appended to the basename sans ".json"). tmp +
  // rename so a scraper never reads a half-written snapshot.
  bool write_files(const std::string& json_path, std::string* error = nullptr) const;

 private:
  Metric& upsert(const std::string& name, Metric::Type type, const Labels& labels);
  std::vector<Metric> metrics_;
};

// The unified view of one finished run: every ExecutorSnapshot counter,
// the DeviceStats it carries, memory traffic, and (when the run was
// elastic) the rebalance counters — all under the stable ltns_* names.
void fill_run_metrics(MetricsRegistry& reg, const runtime::ExecutorSnapshot& s,
                      const runtime::MemoryStats& mem, const dist::RebalanceStats& reb,
                      uint64_t tasks_run, uint64_t reduce_merges, double wall_seconds);

// One tenant's slice of the job-server scheduling state, sampled live.
struct TenantSample {
  std::string tenant;
  uint32_t weight = 1;
  double virtual_time = 0;       // stride-scheduler clock position
  uint64_t tasks_charged = 0;    // lifetime dispatched work
  uint64_t queued = 0;
  uint64_t running = 0;
};

// The multi-tenant job server's scheduling/admission state, sampled live.
// Kept as a plain struct (like RebalanceStats above) so obs stays free of
// dist headers.
struct ServerSample {
  uint64_t queued = 0;
  uint64_t running = 0;
  uint64_t workers = 0;  // connected fleet workers
  int running_limit = 0;
  uint64_t max_queued = 0;
  double fleet_utilization_ema = 0;
  uint64_t submitted_total = 0;
  uint64_t rejected_total = 0;
  uint64_t cancelled_total = 0;
  uint64_t completed_total = 0;
  uint64_t failed_total = 0;
  std::vector<TenantSample> tenants;
};

// The job server's live scheduling series: queue depth, the adaptive
// admission limit, fleet utilization, lifetime job counters, and one
// {tenant=...} labelled family per tenant.
void fill_server_metrics(MetricsRegistry& reg, const ServerSample& s);

// One tier of the content-addressed plan/result cache (cache::TierStats,
// mirrored as a plain struct so obs stays free of cache headers).
struct CacheTierSample {
  std::string tier;  // "plan" | "result"
  uint64_t memory_hits = 0;
  uint64_t disk_hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t insertions = 0;
  uint64_t corrupt_dropped = 0;
  uint64_t disk_bytes_written = 0;
  uint64_t memory_entries = 0;  // gauge
  uint64_t memory_bytes = 0;    // gauge
};

// The cache's live counters plus the planner-invocation counter the CI
// cache job asserts on ("a warm run performs zero path optimizations").
struct CacheSample {
  std::vector<CacheTierSample> tiers;
  uint64_t planner_invocations = 0;  // path::find_path_invocations()
  uint64_t served_results = 0;       // server submits answered from cache
  uint64_t superset_hits = 0;        // queries sliced out of covering batches
};

// The ltns_cache_* series: hits split {tier=<name>_memory|<name>_disk},
// misses/evictions/insertions/corruption/bytes per {tier=<name>}, entry
// and byte gauges for the LRU fronts, ltns_planner_invocations_total,
// ltns_cache_served_results_total and ltns_cache_superset_hits_total.
void fill_cache_metrics(MetricsRegistry& reg, const CacheSample& s);

// Counters of one batched-query run (query::EngineStats, mirrored as a
// plain struct so obs stays free of query headers).
struct QuerySample {
  uint64_t queries = 0;
  uint64_t amp_queries = 0, batch_queries = 0, sample_queries = 0, expect_queries = 0;
  uint64_t groups = 0, closed_groups = 0, open_groups = 0;
  uint64_t contractions = 0;
  uint64_t planner_passes = 0;
  uint64_t plan_cache_hits = 0;
  uint64_t plan_rebuilds = 0;
  uint64_t result_cache_hits = 0;
  uint64_t superset_hits = 0;
  uint64_t amplitudes_returned = 0;
  uint64_t samples_drawn = 0;
  uint64_t errors = 0;
  double plan_seconds = 0;
  double exec_seconds = 0;
};

// The ltns_query_* series: query counts per {kind=...}, group counts per
// {shape=closed|open}, ltns_query_contractions_total (the acceptance
// invariant "fewer contractions than queries" is assertable from this plus
// ltns_query_queries_total), plan provenance counters
// {source=planner|cache|rebuild}, result reuse counters
// {source=exact|superset}, answer volume and wall-time gauges.
void fill_query_metrics(MetricsRegistry& reg, const QuerySample& s);

}  // namespace ltns::obs
