#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "obs/build_info.hpp"

namespace ltns::obs {

namespace {

constexpr size_t kDefaultCapacity = 65536;

// Chunk framing for the kTrace wire payload. The payload is POD-memcpy'd
// like the rest of the wire (same-arch fleets only, by design).
constexpr uint32_t kChunkMagic = 0x4C54524Bu;  // "LTRK"
constexpr uint16_t kChunkVersion = 1;

const EventKindInfo kKinds[size_t(EventKind::kKindCount)] = {
    {"slice", "slice", "task", nullptr, nullptr},
    {"gemm", "kernel", "mn", "k", nullptr},
    {"permute", "kernel", "elems", nullptr, nullptr},
    {"reduce", "kernel", "elems", nullptr, nullptr},
    {"lease_grant", "lease", "worker", "first", "count"},
    {"lease_steal", "lease", "worker", "first", "count"},
    {"lease_revoke", "lease", "worker", nullptr, nullptr},
    {"lease_requeue", "lease", "first", "count", nullptr},
    {"lease", "lease", "lease", "first", "count"},
    {"range_done", "lease", "worker", "lease", nullptr},
    {"upload", "device", "bytes", nullptr, nullptr},
    {"download", "device", "bytes", nullptr, nullptr},
    {"journal_append", "checkpoint", "bytes", nullptr, nullptr},
    {"journal_fsync", "checkpoint", "journal_bytes", nullptr, nullptr},
    {"wire_send", "wire", "frame", "bytes", nullptr},
    {"wire_recv", "wire", "frame", "bytes", nullptr},
    {"query_group", "query", "group", "open", "members"},
};

thread_local void* tls_buf = nullptr;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (uint8_t(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", unsigned(uint8_t(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

const EventKindInfo& event_kind_info(EventKind k) {
  return kKinds[size_t(k) < size_t(EventKind::kKindCount) ? size_t(k) : 0];
}

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

uint64_t Tracer::now_ns() {
  // steady_clock is CLOCK_MONOTONIC on Linux: one system-wide timebase, so
  // events from forked/local-TCP processes line up on a shared axis.
  return uint64_t(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Tracer::enable(int rank, size_t capacity_per_thread) {
  std::lock_guard<std::mutex> lk(mu_);
  rank_ = rank;
  if (capacity_per_thread == 0) {
    capacity_per_thread = kDefaultCapacity;
    if (const char* env = std::getenv("LTNS_TRACE_CAPACITY")) {
      const long long v = std::atoll(env);
      if (v > 0) capacity_per_thread = size_t(v);
    }
  }
  capacity_ = capacity_per_thread;
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::reset_after_fork(int rank) {
  std::lock_guard<std::mutex> lk(mu_);
  rank_ = rank;
  foreign_.clear();
  // Buffers were copied from the parent; only the forking thread survives.
  // Keep its buffer object (the thread_local pointer stays valid), wipe its
  // contents, drop every other thread's.
  auto* mine = static_cast<ThreadBuf*>(tls_buf);
  std::vector<std::unique_ptr<ThreadBuf>> kept;
  for (auto& tb : threads_) {
    if (tb.get() == mine) {
      tb->head.store(0, std::memory_order_relaxed);
      tb->tid = 0;
      kept.push_back(std::move(tb));
    }
  }
  threads_ = std::move(kept);
  if (mine == nullptr) tls_buf = nullptr;
}

Tracer::ThreadBuf* Tracer::thread_buf() {
  auto* tb = static_cast<ThreadBuf*>(tls_buf);
  if (tb != nullptr) return tb;
  std::lock_guard<std::mutex> lk(mu_);
  auto owned = std::make_unique<ThreadBuf>();
  owned->tid = int(threads_.size());
  owned->capacity = capacity_ != 0 ? capacity_ : kDefaultCapacity;
  owned->ring.resize(owned->capacity);
  tb = owned.get();
  threads_.push_back(std::move(owned));
  tls_buf = tb;
  return tb;
}

void Tracer::record(EventKind kind, uint64_t ts_ns, uint64_t dur_ns, uint64_t a0, uint64_t a1,
                    uint64_t a2) {
  ThreadBuf* tb = thread_buf();
  const uint64_t h = tb->head.load(std::memory_order_relaxed);
  TraceEvent& e = tb->ring[size_t(h % tb->capacity)];
  e.kind = uint16_t(kind);
  e.phase = 0;
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.a0 = a0;
  e.a1 = a1;
  e.a2 = a2;
  tb->head.store(h + 1, std::memory_order_release);
}

void Tracer::instant(EventKind kind, uint64_t a0, uint64_t a1, uint64_t a2) {
  ThreadBuf* tb = thread_buf();
  const uint64_t h = tb->head.load(std::memory_order_relaxed);
  TraceEvent& e = tb->ring[size_t(h % tb->capacity)];
  e.kind = uint16_t(kind);
  e.phase = 1;
  e.ts_ns = now_ns();
  e.dur_ns = 0;
  e.a0 = a0;
  e.a1 = a1;
  e.a2 = a2;
  tb->head.store(h + 1, std::memory_order_release);
}

namespace {

// Snapshot of one ring: oldest-to-newest retained events + drop count.
struct BufView {
  uint64_t dropped = 0;
  std::vector<TraceEvent> events;
};

}  // namespace

std::vector<uint8_t> Tracer::serialize() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<int, BufView>> views;
  for (const auto& tb : threads_) {
    const uint64_t h = tb->head.load(std::memory_order_acquire);
    BufView v;
    const uint64_t n = std::min<uint64_t>(h, tb->capacity);
    v.dropped = h - n;
    v.events.reserve(size_t(n));
    for (uint64_t i = h - n; i < h; ++i) v.events.push_back(tb->ring[size_t(i % tb->capacity)]);
    views.emplace_back(tb->tid, std::move(v));
  }

  std::vector<uint8_t> out;
  auto put = [&out](const void* p, size_t n) {
    const size_t old = out.size();
    out.resize(old + n);
    std::memcpy(out.data() + old, p, n);
  };
  auto put_u32 = [&](uint32_t v) { put(&v, sizeof v); };
  auto put_u64 = [&](uint64_t v) { put(&v, sizeof v); };
  put_u32(kChunkMagic);
  const uint32_t ver = kChunkVersion;
  put_u32(ver);
  const int32_t rank = int32_t(rank_);
  put(&rank, sizeof rank);
  put_u32(uint32_t(views.size()));
  for (const auto& [tid, v] : views) {
    const int32_t t = int32_t(tid);
    put(&t, sizeof t);
    put_u64(v.dropped);
    put_u64(uint64_t(v.events.size()));
    if (!v.events.empty()) put(v.events.data(), v.events.size() * sizeof(TraceEvent));
  }
  return out;
}

void Tracer::ingest(const uint8_t* data, size_t size) {
  const uint8_t* p = data;
  const uint8_t* end = data + size;
  auto get = [&p, end](void* out, size_t n) {
    if (size_t(end - p) < n) throw std::runtime_error("obs trace: truncated chunk");
    std::memcpy(out, p, n);
    p += n;
  };
  uint32_t magic = 0, ver = 0;
  get(&magic, sizeof magic);
  get(&ver, sizeof ver);
  if (magic != kChunkMagic || ver != kChunkVersion)
    throw std::runtime_error("obs trace: unrecognized chunk header");
  int32_t rank = 0;
  get(&rank, sizeof rank);
  uint32_t nthreads = 0;
  get(&nthreads, sizeof nthreads);
  if (nthreads > 4096) throw std::runtime_error("obs trace: implausible thread count");
  std::vector<ForeignThread> parsed;
  for (uint32_t i = 0; i < nthreads; ++i) {
    ForeignThread ft;
    ft.rank = int(rank);
    int32_t tid = 0;
    get(&tid, sizeof tid);
    ft.tid = int(tid);
    get(&ft.dropped, sizeof ft.dropped);
    uint64_t n = 0;
    get(&n, sizeof n);
    if (n > uint64_t(end - p) / sizeof(TraceEvent))
      throw std::runtime_error("obs trace: chunk event count exceeds payload");
    ft.events.resize(size_t(n));
    if (n > 0) get(ft.events.data(), size_t(n) * sizeof(TraceEvent));
    parsed.push_back(std::move(ft));
  }
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& ft : parsed) foreign_.push_back(std::move(ft));
}

std::string Tracer::chrome_json() const {
  // Everything — local threads + ingested worker chunks — on one timeline.
  // pid = rank + 1 so the coordinator (rank -1) renders as pid 0.
  std::vector<ForeignThread> all;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& tb : threads_) {
      const uint64_t h = tb->head.load(std::memory_order_acquire);
      ForeignThread ft;
      ft.rank = rank_;
      ft.tid = tb->tid;
      const uint64_t n = std::min<uint64_t>(h, tb->capacity);
      ft.dropped = h - n;
      ft.events.reserve(size_t(n));
      for (uint64_t i = h - n; i < h; ++i)
        ft.events.push_back(tb->ring[size_t(i % tb->capacity)]);
      all.push_back(std::move(ft));
    }
    for (const auto& ft : foreign_) all.push_back(ft);
  }

  uint64_t t0 = UINT64_MAX;
  for (const auto& ft : all)
    for (const auto& e : ft.events) t0 = std::min(t0, e.ts_ns);
  if (t0 == UINT64_MAX) t0 = 0;

  std::ostringstream o;
  o << "{\"traceEvents\":[";
  bool first = true;
  auto emit_meta = [&](int pid, const char* what, const std::string& name, int tid) {
    o << (first ? "" : ",") << "{\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":" << pid
      << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
    first = false;
  };
  std::vector<int> named_pids;
  uint64_t total_dropped = 0;
  for (const auto& ft : all) {
    const int pid = ft.rank + 1;
    if (std::find(named_pids.begin(), named_pids.end(), pid) == named_pids.end()) {
      named_pids.push_back(pid);
      emit_meta(pid, "process_name",
                ft.rank < 0 ? "coordinator" : "worker-" + std::to_string(ft.rank), 0);
    }
    emit_meta(pid, "thread_name", "thread-" + std::to_string(ft.tid), ft.tid);
    total_dropped += ft.dropped;
    for (const auto& e : ft.events) {
      const auto& info = event_kind_info(EventKind(e.kind));
      const double ts_us = double(e.ts_ns - t0) / 1e3;
      o << (first ? "" : ",") << "{\"name\":\"" << info.name << "\",\"cat\":\"" << info.category
        << "\",\"ph\":\"" << (e.phase == 1 ? "i" : "X") << "\",\"pid\":" << pid
        << ",\"tid\":" << ft.tid << ",\"ts\":" << ts_us;
      if (e.phase == 1)
        o << ",\"s\":\"t\"";
      else
        o << ",\"dur\":" << double(e.dur_ns) / 1e3;
      o << ",\"args\":{";
      bool afirst = true;
      const char* names[3] = {info.arg0, info.arg1, info.arg2};
      const uint64_t vals[3] = {e.a0, e.a1, e.a2};
      for (int i = 0; i < 3; ++i) {
        if (names[i] == nullptr) continue;
        o << (afirst ? "" : ",") << "\"" << names[i] << "\":" << vals[i];
        afirst = false;
      }
      o << "}}";
      first = false;
    }
  }
  o << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"schema\":\"ltns.trace.v1\","
    << "\"events_dropped\":" << total_dropped << ",\"build\":" << build_info_json() << "}}";
  return o.str();
}

bool Tracer::write_chrome_json(const std::string& path, std::string* error) const {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    if (error) *error = "cannot open " + tmp;
    return false;
  }
  const std::string body = chrome_json();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error) *error = "cannot write " + path;
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

uint64_t Tracer::events_recorded() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t n = 0;
  for (const auto& tb : threads_) n += tb->head.load(std::memory_order_acquire);
  for (const auto& ft : foreign_) n += uint64_t(ft.events.size()) + ft.dropped;
  return n;
}

uint64_t Tracer::events_dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t n = 0;
  for (const auto& tb : threads_) {
    const uint64_t h = tb->head.load(std::memory_order_acquire);
    n += h > tb->capacity ? h - tb->capacity : 0;
  }
  for (const auto& ft : foreign_) n += ft.dropped;
  return n;
}

}  // namespace ltns::obs
