// Build-info stamp, captured at configure time (CMake configure_file over
// build_info.cpp.in). Printed by `ltns_cli --version` and embedded in every
// trace/metrics/status JSON so an artifact found on disk is attributable to
// an exact build.
#pragma once

#include <string>

namespace ltns::obs {

struct BuildInfo {
  const char* version;     // git describe --tags --always --dirty (or "unknown")
  const char* compiler;    // e.g. "GNU 12.2.0"
  const char* flags;       // CMAKE_CXX_FLAGS + build-type flags
  const char* build_type;  // Release / Debug / ...
};

const BuildInfo& build_info();

// {"version":...,"compiler":...,"flags":...,"build_type":...}
std::string build_info_json();

}  // namespace ltns::obs
