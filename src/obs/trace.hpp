// Low-overhead event tracer for the whole stack (src/obs/).
//
// Always compiled in, enabled per-process by flag. Every instrumented site
// is a TraceScope (or an instant) that loads ONE relaxed atomic when
// tracing is off — no clock read, no allocation, nothing on the
// bitwise-critical path. When on, events land in per-thread ring buffers
// (fixed capacity, newest-wins on wrap) and are flushed after the run as
// Chrome trace-event JSON (chrome://tracing, ui.perfetto.dev).
//
// Multi-process runs render as ONE timeline: each process records under its
// own rank (pid = rank + 1; the coordinator is rank -1 -> pid 0), worker
// processes serialize their buffers into a kTrace wire frame before their
// final telemetry, and the coordinator ingests those chunks next to its own
// events. Timestamps are raw CLOCK_MONOTONIC nanoseconds, which is
// system-wide on Linux — fork- and local-TCP-fleet events align exactly;
// cross-host fleets carry each host's own clock (document the skew, don't
// hide it).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ltns::obs {

// Fixed vocabulary keeps the event record POD (48 bytes) and the hot-path
// record() a couple of stores. Names/categories live in one table in
// trace.cpp; docs/observability.md mirrors it as the schema promise.
enum class EventKind : uint16_t {
  kSlice = 0,         // one slicing subtask               args: task
  kGemm,              // contract() GEMM phase             args: m*n, k
  kPermute,           // contract() permutation phase      args: elems
  kReduce,            // tournament pairwise merge         args: elems
  kLeaseGrant,        // coordinator issued a lease        args: worker, first, count
  kLeaseSteal,        // ...the lease was stolen work      args: worker, first, count
  kLeaseRevoke,       // worker's leases revoked           args: worker
  kLeaseRequeue,      // one range requeued for reissue    args: first, count
  kLeaseWork,         // worker computing one leased range args: lease, first, count
  kRangeDone,         // coordinator retired a range       args: worker, lease
  kDeviceUpload,      // host -> device transfer           args: bytes
  kDeviceDownload,    // device -> host transfer           args: bytes
  kCheckpointAppend,  // journal record appended           args: bytes
  kCheckpointFsync,   // journal fsync                     args: journal_bytes
  kWireSend,          // one frame written                 args: frame_type, bytes
  kWireRecv,          // one frame read (includes waiting) args: frame_type, bytes
  kQueryGroup,        // one query-engine group answered   args: group, open, members
  kKindCount,
};

struct TraceEvent {
  uint16_t kind = 0;
  uint16_t phase = 0;  // 0 = complete ("X"), 1 = instant ("i")
  uint32_t pad = 0;
  uint64_t ts_ns = 0;
  uint64_t dur_ns = 0;
  uint64_t a0 = 0, a1 = 0, a2 = 0;
};
static_assert(sizeof(TraceEvent) == 48, "trace event layout is the chunk ABI");

struct EventKindInfo {
  const char* name;
  const char* category;  // slice | kernel | lease | device | checkpoint | wire | query
  const char* arg0;      // nullptr = unused
  const char* arg1;
  const char* arg2;
};
const EventKindInfo& event_kind_info(EventKind k);

class Tracer {
 public:
  static Tracer& instance();

  // Arms tracing for this process. `rank` maps to the Chrome pid
  // (coordinator = -1). Capacity is events PER THREAD; 0 keeps the default
  // (LTNS_TRACE_CAPACITY env, else 65536). Not hot-path safe: call before
  // the run starts.
  void enable(int rank, size_t capacity_per_thread = 0);
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  int rank() const { return rank_; }

  // A forked worker inherits the parent's armed tracer and buffers; it must
  // drop everything the parent recorded and re-home itself under its own
  // rank before recording. Keeps (and clears) the calling thread's buffer.
  void reset_after_fork(int rank);

  static uint64_t now_ns();

  // Hot path: append one event to the calling thread's ring. Caller has
  // already checked enabled().
  void record(EventKind kind, uint64_t ts_ns, uint64_t dur_ns, uint64_t a0 = 0, uint64_t a1 = 0,
              uint64_t a2 = 0);
  void instant(EventKind kind, uint64_t a0 = 0, uint64_t a1 = 0, uint64_t a2 = 0);

  // Collection (post-run; racing writers only tear diagnostics, never the
  // run). serialize() packs this process's buffers (with its rank) into a
  // kTrace-frame payload; ingest() stores a worker's chunk for the merged
  // flush; write_chrome_json() renders local + ingested events.
  std::vector<uint8_t> serialize() const;
  void ingest(const uint8_t* data, size_t size);
  void ingest(const std::vector<uint8_t>& chunk) { ingest(chunk.data(), chunk.size()); }
  std::string chrome_json() const;
  // Writes chrome_json() to `path` (tmp + rename). Returns false + fills
  // `error` on I/O failure.
  bool write_chrome_json(const std::string& path, std::string* error = nullptr) const;

  uint64_t events_recorded() const;
  uint64_t events_dropped() const;

 private:
  struct ThreadBuf {
    int tid = 0;
    size_t capacity = 0;
    std::atomic<uint64_t> head{0};  // monotone event count; slot = head % capacity
    std::vector<TraceEvent> ring;
  };

  ThreadBuf* thread_buf();

  std::atomic<bool> enabled_{false};
  int rank_ = -1;
  size_t capacity_ = 0;
  mutable std::mutex mu_;  // registry + chunks; never taken on the hot path
  std::vector<std::unique_ptr<ThreadBuf>> threads_;
  struct ForeignThread {
    int rank = 0;
    int tid = 0;
    uint64_t dropped = 0;
    std::vector<TraceEvent> events;
  };
  std::vector<ForeignThread> foreign_;
};

// RAII complete-event: one relaxed load when tracing is off (no clock).
class TraceScope {
 public:
  explicit TraceScope(EventKind kind, uint64_t a0 = 0, uint64_t a1 = 0, uint64_t a2 = 0)
      : kind_(kind), a0_(a0), a1_(a1), a2_(a2) {
    Tracer& t = Tracer::instance();
    if (t.enabled()) start_ = Tracer::now_ns();
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope() {
    if (start_ == 0) return;
    Tracer& t = Tracer::instance();
    if (t.enabled()) t.record(kind_, start_, Tracer::now_ns() - start_, a0_, a1_, a2_);
  }
  // Late-bound args for values only known at scope exit (e.g. bytes read).
  void set_args(uint64_t a0, uint64_t a1 = 0, uint64_t a2 = 0) {
    a0_ = a0;
    a1_ = a1;
    a2_ = a2;
  }
  bool armed() const { return start_ != 0; }

 private:
  EventKind kind_;
  uint64_t start_ = 0;
  uint64_t a0_, a1_, a2_;
};

inline void trace_instant(EventKind kind, uint64_t a0 = 0, uint64_t a1 = 0, uint64_t a2 = 0) {
  Tracer& t = Tracer::instance();
  if (t.enabled()) t.instant(kind, a0, a1, a2);
}

}  // namespace ltns::obs
