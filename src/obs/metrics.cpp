#include "obs/metrics.hpp"

#include <cstdio>
#include <sstream>

#include "device/cpu_probe.hpp"
#include "dist/lease.hpp"
#include "exec/simd_kernels.hpp"
#include "obs/build_info.hpp"

namespace ltns::obs {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// %.17g round-trips doubles; trims "1.0000000000000000e+03"-style noise for
// integral values, which most counters are.
std::string num(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v)) && v > -1e15 && v < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const char* type_name(Metric::Type t) {
  switch (t) {
    case Metric::Type::kCounter:
      return "counter";
    case Metric::Type::kGauge:
      return "gauge";
    case Metric::Type::kHistogram:
      return "histogram";
  }
  return "counter";
}

std::string prom_labels(const Labels& labels, const char* extra_key = nullptr,
                        const std::string& extra_val = "") {
  if (labels.empty() && !extra_key) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + json_escape(v) + "\"";
  }
  if (extra_key) {
    if (!first) out += ",";
    out += std::string(extra_key) + "=\"" + extra_val + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

Metric& MetricsRegistry::upsert(const std::string& name, Metric::Type type, const Labels& labels) {
  for (auto& m : metrics_)
    if (m.name == name && m.labels == labels) return m;
  Metric m;
  m.name = name;
  m.type = type;
  m.labels = labels;
  metrics_.push_back(std::move(m));
  return metrics_.back();
}

void MetricsRegistry::counter(const std::string& name, double value, Labels labels) {
  upsert(name, Metric::Type::kCounter, labels).value += value;
}

void MetricsRegistry::gauge(const std::string& name, double value, Labels labels) {
  upsert(name, Metric::Type::kGauge, labels).value = value;
}

void MetricsRegistry::observe(const std::string& name, const std::vector<double>& bounds,
                              double value, Labels labels) {
  Metric& m = upsert(name, Metric::Type::kHistogram, labels);
  if (m.bounds.empty()) {
    m.bounds = bounds;
    m.bucket_counts.assign(bounds.size(), 0);
  }
  for (size_t i = 0; i < m.bounds.size(); ++i) {
    if (value <= m.bounds[i]) {
      ++m.bucket_counts[i];
      break;
    }
  }
  m.sum += value;
  ++m.count;
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  os << "{\"schema\":\"ltns.metrics.v1\",\"build\":" << build_info_json() << ",\"metrics\":[";
  bool first = true;
  for (const auto& m : metrics_) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << json_escape(m.name) << "\",\"type\":\"" << type_name(m.type) << "\"";
    if (!m.labels.empty()) {
      os << ",\"labels\":{";
      bool lf = true;
      for (const auto& [k, v] : m.labels) {
        if (!lf) os << ",";
        lf = false;
        os << "\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
      }
      os << "}";
    }
    if (m.type == Metric::Type::kHistogram) {
      os << ",\"sum\":" << num(m.sum) << ",\"count\":" << m.count << ",\"buckets\":[";
      uint64_t cum = 0;
      for (size_t i = 0; i < m.bounds.size(); ++i) {
        cum += m.bucket_counts[i];
        if (i) os << ",";
        os << "{\"le\":" << num(m.bounds[i]) << ",\"count\":" << cum << "}";
      }
      os << "]";
    } else {
      os << ",\"value\":" << num(m.value);
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

std::string MetricsRegistry::to_prometheus() const {
  std::ostringstream os;
  std::string last_name;
  for (const auto& m : metrics_) {
    if (m.name != last_name) {
      os << "# TYPE " << m.name << " " << type_name(m.type) << "\n";
      last_name = m.name;
    }
    if (m.type == Metric::Type::kHistogram) {
      uint64_t cum = 0;
      for (size_t i = 0; i < m.bounds.size(); ++i) {
        cum += m.bucket_counts[i];
        os << m.name << "_bucket" << prom_labels(m.labels, "le", num(m.bounds[i])) << " " << cum
           << "\n";
      }
      os << m.name << "_bucket" << prom_labels(m.labels, "le", "+Inf") << " " << m.count << "\n";
      os << m.name << "_sum" << prom_labels(m.labels) << " " << num(m.sum) << "\n";
      os << m.name << "_count" << prom_labels(m.labels) << " " << m.count << "\n";
    } else {
      os << m.name << prom_labels(m.labels) << " " << num(m.value) << "\n";
    }
  }
  return os.str();
}

bool MetricsRegistry::write_files(const std::string& json_path, std::string* error) const {
  auto write_one = [&](const std::string& path, const std::string& body) {
    std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
      if (error) *error = "cannot open " + tmp;
      return false;
    }
    bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    ok = std::fclose(f) == 0 && ok;
    if (ok) ok = std::rename(tmp.c_str(), path.c_str()) == 0;
    if (!ok) {
      if (error) *error = "write failed for " + path;
      std::remove(tmp.c_str());
    }
    return ok;
  };
  if (!write_one(json_path, to_json())) return false;
  std::string prom = json_path;
  if (prom.size() > 5 && prom.compare(prom.size() - 5, 5, ".json") == 0)
    prom.resize(prom.size() - 5);
  prom += ".prom";
  return write_one(prom, to_prometheus());
}

void fill_run_metrics(MetricsRegistry& reg, const runtime::ExecutorSnapshot& s,
                      const runtime::MemoryStats& mem, const dist::RebalanceStats& reb,
                      uint64_t tasks_run, uint64_t reduce_merges, double wall_seconds) {
  // Slice runtime.
  reg.counter("ltns_tasks_scheduled_total", double(s.scheduled));
  reg.counter("ltns_tasks_finished_total", double(s.finished));
  reg.counter("ltns_tasks_stolen_total", double(s.stolen));
  reg.counter("ltns_tasks_cancelled_total", double(s.cancelled));
  reg.counter("ltns_tasks_run_total", double(tasks_run));
  reg.gauge("ltns_worker_utilization_ema", s.ema_utilization);
  reg.gauge("ltns_run_wall_seconds", wall_seconds);

  // Per-phase timers (the paper's permute/GEMM/reduce decomposition).
  reg.counter("ltns_phase_seconds_total", s.permute.seconds, {{"phase", "permute"}});
  reg.counter("ltns_phase_seconds_total", s.gemm.seconds, {{"phase", "gemm"}});
  reg.counter("ltns_phase_seconds_total", s.reduce.seconds, {{"phase", "reduce"}});
  reg.counter("ltns_phase_seconds_total", s.memory.seconds, {{"phase", "memory"}});
  reg.counter("ltns_phase_events_total", double(s.permute.count), {{"phase", "permute"}});
  reg.counter("ltns_phase_events_total", double(s.gemm.count), {{"phase", "gemm"}});
  reg.counter("ltns_phase_events_total", double(s.reduce.count), {{"phase", "reduce"}});
  reg.counter("ltns_phase_events_total", double(s.memory.count), {{"phase", "memory"}});
  reg.counter("ltns_reduce_merges_total", double(reduce_merges));

  // Device backend.
  reg.counter("ltns_device_bytes_total", s.device.bytes_to_device, {{"dir", "to_device"}});
  reg.counter("ltns_device_bytes_total", s.device.bytes_to_host, {{"dir", "to_host"}});
  reg.counter("ltns_device_transfer_ns_total", s.device.ns_to_device, {{"dir", "to_device"}});
  reg.counter("ltns_device_transfer_ns_total", s.device.ns_to_host, {{"dir", "to_host"}});
  reg.counter("ltns_device_transfers_total", double(s.device.uploads), {{"dir", "to_device"}});
  reg.counter("ltns_device_transfers_total", double(s.device.downloads), {{"dir", "to_host"}});
  reg.counter("ltns_device_kernel_calls_total", double(s.device.gemm_calls), {{"kind", "gemm"}});
  reg.counter("ltns_device_kernel_calls_total", double(s.device.permute_calls),
              {{"kind", "permute"}});
  reg.counter("ltns_device_stem_steps_total", double(s.device.stem_steps));

  // SIMD dispatch tier (docs/kernels.md): the runtime probe's active ISA
  // is process-global, so the kernel series carry it as a label — a
  // dashboard overlaying runs from a heterogeneous fleet (or a forced
  // LTNS_FORCE_ISA CI leg) can split per-tier throughput without a new
  // schema. Lane count doubles as the roofline's vector-width axis.
  const auto& probe = device::cpu_probe();
  const std::string isa = exec::isa_name(probe.active);
  reg.gauge("ltns_kernel_isa_lanes", double(exec::isa_lanes(probe.active)), {{"isa", isa}});
  reg.gauge("ltns_kernel_isa_forced", probe.forced ? 1.0 : 0.0, {{"isa", isa}});
  reg.counter("ltns_kernel_seconds_total", s.gemm.seconds, {{"kind", "gemm"}, {"isa", isa}});
  reg.counter("ltns_kernel_seconds_total", s.permute.seconds,
              {{"kind", "permute"}, {"isa", isa}});
  reg.counter("ltns_kernel_calls_total", double(s.gemm.count), {{"kind", "gemm"}, {"isa", isa}});
  reg.counter("ltns_kernel_calls_total", double(s.permute.count),
              {{"kind", "permute"}, {"isa", isa}});

  // Memory hierarchy traffic.
  reg.counter("ltns_memory_bytes_total", mem.main_bytes, {{"tier", "main"}});
  reg.counter("ltns_memory_bytes_total", mem.scratch_bytes_get, {{"tier", "ldm_get"}});
  reg.counter("ltns_memory_bytes_total", mem.scratch_bytes_put, {{"tier", "ldm_put"}});
  reg.counter("ltns_memory_bytes_total", mem.rma_bytes, {{"tier", "rma"}});
  reg.counter("ltns_ldm_subtasks_total", double(mem.ldm_subtasks));
  reg.gauge("ltns_peak_elems", double(mem.ldm_peak_elems), {{"tier", "ldm"}});
  reg.gauge("ltns_peak_elems", double(mem.host_peak_elems), {{"tier", "host"}});

  // Elastic rebalance (all-zero for in-process / static runs).
  reg.counter("ltns_leases_issued_total", double(reb.leases_issued));
  reg.counter("ltns_leases_completed_total", double(reb.leases_completed));
  reg.counter("ltns_ranges_stolen_total", double(reb.ranges_stolen));
  reg.counter("ltns_ranges_reissued_total", double(reb.ranges_reissued));
  reg.counter("ltns_ranges_requeued_total", double(reb.ranges_requeued));
  reg.counter("ltns_ranges_replayed_total", double(reb.ranges_replayed));
  reg.counter("ltns_late_results_dropped_total", double(reb.late_results_dropped));
  reg.counter("ltns_workers_lost_total", double(reb.workers_lost));
  reg.counter("ltns_straggler_wait_seconds_total", reb.straggler_wait_seconds);
}

void fill_server_metrics(MetricsRegistry& reg, const ServerSample& s) {
  // Queue + admission state.
  reg.gauge("ltns_server_queue_depth", double(s.queued));
  reg.gauge("ltns_server_running_jobs", double(s.running));
  reg.gauge("ltns_server_running_limit", double(s.running_limit));
  reg.gauge("ltns_server_max_queued", double(s.max_queued));
  reg.gauge("ltns_server_workers", double(s.workers));
  reg.gauge("ltns_server_fleet_utilization_ema", s.fleet_utilization_ema);

  // Lifetime job counters.
  reg.counter("ltns_server_jobs_submitted_total", double(s.submitted_total));
  reg.counter("ltns_server_jobs_rejected_total", double(s.rejected_total));
  reg.counter("ltns_server_jobs_cancelled_total", double(s.cancelled_total));
  reg.counter("ltns_server_jobs_completed_total", double(s.completed_total));
  reg.counter("ltns_server_jobs_failed_total", double(s.failed_total));

  // Per-tenant fair-share state.
  for (const auto& t : s.tenants) {
    const Labels labels = {{"tenant", t.tenant}};
    reg.gauge("ltns_tenant_weight", double(t.weight), labels);
    reg.gauge("ltns_tenant_virtual_time", t.virtual_time, labels);
    reg.gauge("ltns_tenant_queued_jobs", double(t.queued), labels);
    reg.gauge("ltns_tenant_running_jobs", double(t.running), labels);
    reg.counter("ltns_tenant_tasks_charged_total", double(t.tasks_charged), labels);
  }
}

void fill_cache_metrics(MetricsRegistry& reg, const CacheSample& s) {
  for (const auto& t : s.tiers) {
    const Labels tier = {{"tier", t.tier}};
    reg.counter("ltns_cache_hits_total", double(t.memory_hits),
                {{"tier", t.tier + "_memory"}});
    reg.counter("ltns_cache_hits_total", double(t.disk_hits), {{"tier", t.tier + "_disk"}});
    reg.counter("ltns_cache_misses_total", double(t.misses), tier);
    reg.counter("ltns_cache_evictions_total", double(t.evictions), tier);
    reg.counter("ltns_cache_insertions_total", double(t.insertions), tier);
    reg.counter("ltns_cache_corrupt_dropped_total", double(t.corrupt_dropped), tier);
    reg.counter("ltns_cache_bytes_total", double(t.disk_bytes_written), tier);
    reg.gauge("ltns_cache_entries", double(t.memory_entries), tier);
    reg.gauge("ltns_cache_memory_bytes", double(t.memory_bytes), tier);
  }
  reg.counter("ltns_planner_invocations_total", double(s.planner_invocations));
  reg.counter("ltns_cache_served_results_total", double(s.served_results));
  reg.counter("ltns_cache_superset_hits_total", double(s.superset_hits));
}

void fill_query_metrics(MetricsRegistry& reg, const QuerySample& s) {
  reg.counter("ltns_query_queries_total", double(s.queries));
  reg.counter("ltns_query_queries_by_kind_total", double(s.amp_queries), {{"kind", "amp"}});
  reg.counter("ltns_query_queries_by_kind_total", double(s.batch_queries), {{"kind", "batch"}});
  reg.counter("ltns_query_queries_by_kind_total", double(s.sample_queries), {{"kind", "sample"}});
  reg.counter("ltns_query_queries_by_kind_total", double(s.expect_queries), {{"kind", "expect"}});
  reg.counter("ltns_query_groups_total", double(s.groups));
  reg.counter("ltns_query_groups_by_shape_total", double(s.closed_groups), {{"shape", "closed"}});
  reg.counter("ltns_query_groups_by_shape_total", double(s.open_groups), {{"shape", "open"}});
  reg.counter("ltns_query_contractions_total", double(s.contractions));
  reg.counter("ltns_query_plans_total", double(s.planner_passes), {{"source", "planner"}});
  reg.counter("ltns_query_plans_total", double(s.plan_cache_hits), {{"source", "cache"}});
  reg.counter("ltns_query_plans_total", double(s.plan_rebuilds), {{"source", "rebuild"}});
  reg.counter("ltns_query_result_reuse_total", double(s.result_cache_hits),
              {{"source", "exact"}});
  reg.counter("ltns_query_result_reuse_total", double(s.superset_hits), {{"source", "superset"}});
  reg.counter("ltns_query_amplitudes_returned_total", double(s.amplitudes_returned));
  reg.counter("ltns_query_samples_drawn_total", double(s.samples_drawn));
  reg.counter("ltns_query_errors_total", double(s.errors));
  reg.gauge("ltns_query_plan_seconds", s.plan_seconds);
  reg.gauge("ltns_query_exec_seconds", s.exec_seconds);
}

}  // namespace ltns::obs
