#include "dist/shard_stream.hpp"

#include <stdexcept>
#include <utility>

#include "dist/shard_plan.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace ltns::dist {

exec::Tensor reduce_block(const AlignedBlock& block, const tn::ContractionTree& tree,
                          const exec::LeafProvider& leaves, const core::SliceSet& slices,
                          const ShardStreamOptions& opt, ShardTelemetry* tel) {
  exec::SliceRunOptions ro;
  ro.first_task = block.first();
  ro.num_tasks = block.count();
  ro.executor = opt.executor;
  ro.pool = opt.pool;
  ro.scheduler = opt.scheduler;
  ro.grain = opt.grain;
  ro.fused = opt.fused;
  ro.backend = opt.backend;
  auto r = exec::run_sliced(tree, leaves, slices, ro);
  if (!r.completed) throw std::runtime_error("block run did not complete");
  tel->tasks_run += r.tasks_run;
  tel->reduce_merges += r.reduce_merges;
  tel->executor.merge(r.executor_stats);
  tel->memory.merge(r.memory);
  tel->exec.merge(r.stats);
  return std::move(r.accumulated);
}

void stream_shard_window(int fd, int shard_id, uint64_t first, uint64_t count,
                         const tn::ContractionTree& tree, const exec::LeafProvider& leaves,
                         const core::SliceSet& slices, const ShardStreamOptions& opt) {
  ShardTelemetry tel;
  tel.shard = shard_id;
  tel.first = first;
  tel.count = count;
  tel.backend = opt.backend_name;
  Timer wall;
  for (const auto& block : aligned_blocks(first, count)) {
    auto partial = reduce_block(block, tree, leaves, slices, opt, &tel);
    ByteWriter w;
    w.put<int32_t>(int32_t(block.level));
    w.put<uint64_t>(block.index);
    put_tensor(w, partial);
    write_frame(fd, FrameType::kBlock, w);
  }
  tel.wall_seconds = wall.seconds();
  auto& tracer = obs::Tracer::instance();
  if (tracer.enabled()) {
    const auto chunk = tracer.serialize();
    write_frame(fd, FrameType::kTrace, chunk.data(), chunk.size());
  }
  ByteWriter w;
  put_telemetry(w, tel);
  write_frame(fd, FrameType::kTelemetry, w);
  write_frame(fd, FrameType::kDone, nullptr, 0);
}

std::string drain_shard_stream(int fd, ShardMerger* merger, ShardTelemetry* telemetry) {
  try {
    Frame f;
    while (read_frame(fd, &f)) {
      ByteReader r(f.payload);
      switch (f.type) {
        case FrameType::kBlock: {
          const int level = int(r.get<int32_t>());
          const auto index = r.get<uint64_t>();
          merger->add(level, index, get_tensor(r));
          break;
        }
        case FrameType::kTelemetry:
          *telemetry = get_telemetry(r);
          break;
        case FrameType::kTrace:
          obs::Tracer::instance().ingest(f.payload);
          break;
        case FrameType::kDone:
          return {};
        case FrameType::kError:
          return r.get_string();
        default:
          return "unexpected frame type";
      }
    }
    return "peer exited before finishing its window";
  } catch (const std::exception& e) {
    return e.what();
  }
}

}  // namespace ltns::dist
