#include "dist/client.hpp"

#include <stdexcept>

#include <unistd.h>

namespace ltns::dist {

namespace {

// One connected socket that always closes, whatever the reply path throws.
struct Conn {
  int fd = -1;
  Conn(const std::string& host, uint16_t port) {
    fd = connect_to(host, port, /*attempts=*/1);
    if (fd < 0)
      throw std::runtime_error("cannot reach job server at " + host + ":" +
                               std::to_string(port));
  }
  ~Conn() { close_fd(&fd); }
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;
};

Frame read_reply(int fd) {
  Frame f;
  if (!read_frame(fd, &f))
    throw std::runtime_error("job server closed the connection without replying");
  if (f.type == FrameType::kError) {
    ByteReader r(f.payload);
    throw std::runtime_error(r.get_string());
  }
  return f;
}

ServerReply read_server_reply(int fd) {
  Frame f = read_reply(fd);
  if (f.type != FrameType::kServerReply)
    throw std::runtime_error("unexpected reply frame from job server");
  ByteReader r(f.payload);
  ServerReply rep;
  rep.ok = r.get<uint32_t>() != 0;
  rep.message = r.get_string();
  return rep;
}

}  // namespace

SubmitReply submit_job(const std::string& host, uint16_t port, const JobSpec& spec) {
  Conn c(host, port);
  ByteWriter w;
  put_job_spec(w, spec);
  write_frame(c.fd, FrameType::kSubmit, w);
  Frame f = read_reply(c.fd);
  if (f.type != FrameType::kSubmitReply)
    throw std::runtime_error("unexpected reply frame from job server");
  ByteReader r(f.payload);
  SubmitReply rep;
  rep.ok = r.get<uint32_t>() != 0;
  rep.job_id = r.get<uint64_t>();
  rep.message = r.get_string();
  return rep;
}

std::string job_status_json(const std::string& host, uint16_t port, uint64_t job_id) {
  Conn c(host, port);
  ByteWriter w;
  w.put<uint64_t>(job_id);
  write_frame(c.fd, FrameType::kJobStatus, w);
  Frame f = read_reply(c.fd);
  if (f.type != FrameType::kStatus)
    throw std::runtime_error("unexpected reply frame from job server");
  ByteReader r(f.payload);
  return r.get_string();
}

ServerReply cancel_job(const std::string& host, uint16_t port, uint64_t job_id) {
  Conn c(host, port);
  ByteWriter w;
  w.put<uint64_t>(job_id);
  write_frame(c.fd, FrameType::kCancel, w);
  return read_server_reply(c.fd);
}

JobResultRecord fetch_result(const std::string& host, uint16_t port, uint64_t job_id,
                             bool wait) {
  Conn c(host, port);
  ByteWriter w;
  w.put<uint64_t>(job_id);
  w.put<uint32_t>(wait ? 1 : 0);
  write_frame(c.fd, FrameType::kFetchResult, w);
  Frame f = read_reply(c.fd);
  if (f.type != FrameType::kResult)
    throw std::runtime_error("unexpected reply frame from job server");
  ByteReader r(f.payload);
  return get_result_record(r);
}

ServerReply shutdown_server(const std::string& host, uint16_t port) {
  Conn c(host, port);
  write_frame(c.fd, FrameType::kShutdown, nullptr, 0);
  return read_server_reply(c.fd);
}

}  // namespace ltns::dist
