// Elastic shard scheduling: the lease-based coordinator/worker halves.
//
// Where the static driver (shard_stream.hpp) fixes one window per process
// up front, the elastic protocol runs a long-lived scheduling loop:
//
//   worker                         coordinator
//   ------                         -----------
//   kLeaseRequest ->               LeaseLedger::acquire (own home window,
//                  <- kLease        then steal from the most-loaded home)
//   kLeaseBlock* ->                buffered under the lease id
//   kRangeDone ->                  buffered blocks fed to the ShardMerger
//   kLeaseRequest -> ...           (repeat until the ledger drains)
//                  <- kDrain
//   kTelemetry, kDone ->           final per-worker telemetry
//
// A background thread on the worker writes kHeartbeat frames while the
// compute thread is busy, so the coordinator can tell "slow" from "dead":
// a silent worker past the stall timeout (or an EOF) has its leases
// revoked and requeued for idle peers, and any frame it later sends for a
// revoked lease is dropped — never double-merged. Because every range is
// reduced as tournament-aligned blocks and merged once in fixed tournament
// order, the accumulated tensor is bitwise identical to a single-process
// run regardless of which worker computed which range or how many times a
// range was re-issued.
//
// The coordinator's poll loop also accepts mid-run connections on an
// optional listen fd: new workers join the fleet (elastic width), and a
// kStatusRequest probe gets a JSON snapshot of live lease/heartbeat state
// (`ltns_cli coordinate --status`) without disturbing the run.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "dist/lease.hpp"
#include "dist/shard_merge.hpp"
#include "dist/shard_stream.hpp"
#include "dist/wire.hpp"
#include "util/timer.hpp"

namespace ltns::dist {

struct ElasticOptions {
  uint64_t lease_size = 0;         // tasks per lease; 0 = auto (see LeaseLedger)
  // Worker kHeartbeat period; <= 0 disables heartbeats AND stall
  // revocation with them (no way to tell slow from dead; worker death
  // still surfaces as EOF).
  double heartbeat_seconds = 0.2;
  // Quarantine a worker silent this long: revoke + requeue its leases.
  // 0 disables; values under 4 heartbeat periods are clamped up so a
  // healthy-but-busy worker can never be revoked into a livelock.
  double stall_timeout_seconds = 30;
  int accept_timeout_seconds = 300;  // max wait with zero live workers
};

class ElasticCoordinator {
 public:
  ElasticCoordinator(uint64_t total, int home_workers, const ElasticOptions& opt);

  // Registers a pre-connected worker (the fork driver's socketpairs); such
  // peers skip the hello/job handshake and start with kLeaseRequest.
  void add_worker(int fd, int worker_id);

  // Listener mode (TCP service): accept connections mid-run. A connecting
  // worker says kHello and `send_job` must answer with its kJob frame
  // (throwing on failure rejects the peer); status probes are answered
  // internally. Worker ids continue from the highest registered id.
  using JobSender = std::function<void(int fd, int worker_id)>;
  void set_listener(int listen_fd, JobSender send_job);

  // Durable run ledger (dist/checkpoint.hpp): every completed range is
  // offered to `journal` BEFORE it reaches the merger, and the journal's
  // spill health rides the --status JSON. Pair with mutable_ledger() +
  // replay_checkpoint to resume: replayed ranges are already retired, so
  // the loop re-offers only unfinished work. Caller keeps ownership.
  void set_journal(RangeJournal* journal) { journal_ = journal; }

  // Periodic metrics snapshot for scrapers (`--metrics-interval`): every
  // `interval_seconds` of run() the live coordinator state (per-worker
  // pulses, rebalance counters, journal lag) is written to `path` as
  // ltns.metrics.v1 JSON plus the Prometheus twin (tmp + rename, so a
  // scraper never reads a torn file). interval <= 0 disables.
  void set_metrics_snapshot(std::string path, double interval_seconds);

  // Runs the event loop until every task is merged (returns "") or no path
  // to completion remains (returns why). Owns the registered/accepted
  // worker fds from here on — they are closed before returning; the listen
  // fd stays open (its lifetime belongs to the caller).
  std::string run(ShardMerger* merger);

  const LeaseLedger& ledger() const { return ledger_; }
  // Pre-run checkpoint replay seeds the ledger through this (and ONLY
  // this) mutable view; once run() starts, the loop owns the ledger.
  LeaseLedger& mutable_ledger() { return ledger_; }
  // One record per worker that reported final telemetry, in worker order.
  const std::vector<ShardTelemetry>& telemetry() const { return telemetry_; }
  std::string status_json() const;

 private:
  struct Peer {
    int fd = -1;
    int id = -1;          // -1 until the hello/job handshake finishes
    bool draining = false;  // kDrain sent, waiting for kTelemetry/kDone
    bool finished = false;  // kDone received (or peer gone)
    bool stalled = false;   // quarantined by the stall timeout
    std::string backend;    // device backend advertised in heartbeats
    uint64_t leases_completed = 0;
    WorkerPulse pulse;      // latest heartbeat metrics sample (v4+ peers)
    bool has_pulse = false;
    Timer last_seen;
    Timer parked;       // set when a lease request is parked on an empty queue
    Timer drain_since;  // set when kDrain goes out; bounds the goodbye wait
    bool is_parked = false;
  };

  void handle_frame(Peer& p, const Frame& f, ShardMerger* merger);
  double goodbye_timeout() const;
  void drop_peer(Peer& p, ShardMerger* merger);
  void serve_parked(ShardMerger* merger);
  void send_lease_or_park(Peer& p);
  void unpark(Peer& p);  // folds the parked wait into straggler telemetry
  void accept_peer();
  void maybe_write_metrics(bool force = false);

  uint64_t total_ = 0;
  ElasticOptions opt_;
  LeaseLedger ledger_;
  std::vector<Peer> peers_;
  std::vector<ShardTelemetry> telemetry_;
  int listen_fd_ = -1;
  JobSender send_job_;
  RangeJournal* journal_ = nullptr;
  int next_worker_id_ = 0;
  std::string error_;
  std::string metrics_path_;
  double metrics_interval_ = 0;
  Timer metrics_last_;
};

struct ElasticWorkerOptions {
  ShardStreamOptions stream;
  int worker_id = 0;
  double heartbeat_seconds = 0.2;
};

// Worker half: lease/compute/report loop over `fd` until kDrain (clean
// return) or a dead coordinator / protocol violation (throws). Reads the
// chaos-injection env hooks (LTNS_CHAOS_*, see chaos_from_env) used by the
// fault tests and the chaos CI job.
void serve_elastic_shard(int fd, const tn::ContractionTree& tree,
                         const exec::LeafProvider& leaves, const core::SliceSet& slices,
                         const ElasticWorkerOptions& opt);

// Chaos hooks for the fault tests and the chaos-distributed CI job; all
// no-ops unless the env selects THIS worker id (`any` selects every id —
// only sane when the env is scoped to a single worker process):
//   LTNS_CHAOS_KILL_SHARD=<id|any>  worker to SIGKILL itself mid-run
//   LTNS_CHAOS_KILL_AFTER_RANGES=<n>  ...on receiving its (n+1)-th lease,
//                                     while holding it (default 1), so the
//                                     death always leaves work to requeue
//   LTNS_CHAOS_SLEEP_SHARD=<id>     worker to run as an artificial straggler
//   LTNS_CHAOS_SLEEP_MS=<ms>        ...sleeping ms per task (default 20)
struct ChaosHooks {
  int kill_after_ranges = -1;  // -1 = off
  double sleep_ms_per_task = 0;
};
ChaosHooks chaos_from_env(int worker_id);

}  // namespace ltns::dist
