// Shard planning for the multi-process driver.
//
// The 2^|S| slicing subtasks are split into one contiguous window per
// process — the same shard shape the SliceScheduler seeds per worker and
// the paper assigns per node — and each window is further decomposed into
// *tournament-aligned* blocks: maximal ranges [idx·2^level, (idx+1)·2^level)
// that coincide with complete subtrees of the global ReductionTree over
// [0, total). A worker reduces each aligned block locally (bitwise equal to
// the corresponding subtree of a single-process run, because the tournament
// structure depends only on relative positions) and ships one partial per
// block; the coordinator then finishes the tournament from those partials.
// This is what makes the cross-process sum bitwise identical to the
// single-process run for ANY process count, even when shard boundaries do
// not align with subtree boundaries.
#pragma once

#include <cstdint>
#include <vector>

namespace ltns::dist {

// One process's contiguous task window.
struct Shard {
  uint64_t first = 0;
  uint64_t count = 0;
};

// Partitions [0, total) into `processes` contiguous windows with the
// balanced boundaries total·p/P — identical to ThreadPool::parallel_for's
// static split, so a 1-process plan is the whole range. Processes beyond
// `total` receive empty shards.
std::vector<Shard> make_shard_plan(uint64_t total, int processes);

// A complete subtree of the global tournament: tasks
// [index << level, (index + 1) << level).
struct AlignedBlock {
  int level = 0;
  uint64_t index = 0;

  uint64_t first() const { return index << level; }
  uint64_t count() const { return uint64_t(1) << level; }
};

// Canonical decomposition of [first, first + count) into maximal aligned
// blocks, in ascending task order. O(log count) blocks (at most 2·64).
std::vector<AlignedBlock> aligned_blocks(uint64_t first, uint64_t count);

}  // namespace ltns::dist
