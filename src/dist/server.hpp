// Multi-tenant simulation service: one persistent `ltns_cli serve` daemon
// multiplexing a NAMED JOB QUEUE over a single elastic worker fleet.
//
// Where `ltns_cli coordinate` runs exactly one amplitude job and exits, the
// JobServer accepts kSubmit frames (circuit + plan knobs + tenant identity),
// queues them, and drives every admitted job through its own LeaseLedger +
// ShardMerger over the SAME long-lived workers — leases from different jobs
// interleave freely on one fleet. Scheduling is two-level:
//
//   1. FairShare picks the next TENANT by stride scheduling: each tenant
//      accrues virtual time at rate work/weight, the runnable tenant with
//      the least virtual time dispatches next. Zero-weight tenants are
//      background: they only run when no weighted tenant has work.
//   2. Within the tenant, jobs order by priority (desc) then id (asc).
//
// AdmissionControl bounds the queue (submits beyond max_queued are
// REJECTED, not buffered) and adapts the concurrent-job limit between
// min/max_running off the fleet's mean worker-utilization EMA — the same
// WorkerPulse samples PR 6's heartbeats already carry: a saturated fleet
// shrinks the limit toward min_running, an idle one grows it.
//
// Determinism: each job owns a private LeaseLedger over its own task range
// with a DISJOINT lease-id base (job id in the high 32 bits), so a lease id
// alone routes every worker frame to its job, and each job's tournament
// merges in the exact tree order a solo run uses — a job's amplitude is
// byte-identical to `ltns_cli amp` on the same spec no matter what else
// shares the fleet, or which workers die mid-run (revoked leases requeue
// per job, exactly like the one-shot elastic driver).
//
// Durability: with --state-dir, specs, terminal results and per-job spill
// journals live under <state_dir>/jobs/<id>/; a restarted server re-queues
// unfinished jobs and resumes their journals (PR 5 semantics, per job).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cache/options.hpp"
#include "dist/job.hpp"

namespace ltns::dist {

// Weighted fair share across tenants via stride scheduling. Standalone and
// deterministic so the scheduling policy is unit-testable without sockets.
class FairShare {
 public:
  // Declares (or re-weights) a tenant. Weight 0 = background-only.
  void set_weight(const std::string& tenant, uint32_t weight);

  // Picks from `runnable` the weighted tenant with the least virtual time
  // (ties break lexicographically, for determinism); zero-weight tenants
  // are chosen only when no weighted tenant is runnable. A tenant idle
  // since its last dispatch is clamped up to the scheduler clock first, so
  // sleeping never banks credit. Returns "" when `runnable` is empty.
  // Unknown names are treated as weight-1 tenants (first pick declares).
  std::string pick(const std::vector<std::string>& runnable);

  // Charges `tasks` units of dispatched work to `tenant`: its virtual time
  // advances by tasks/weight.
  void charge(const std::string& tenant, uint64_t tasks);

  double virtual_time(const std::string& tenant) const;

  struct TenantShare {
    std::string tenant;
    uint32_t weight = 1;
    double virtual_time = 0;
    uint64_t tasks_charged = 0;
  };
  std::vector<TenantShare> shares() const;

 private:
  struct State {
    uint32_t weight = 1;
    double vt = 0;
    uint64_t charged = 0;
  };
  State& ensure(const std::string& tenant);
  std::map<std::string, State> tenants_;
  double clock_ = 0;  // virtual time of the last dispatched tenant
};

struct AdmissionOptions {
  size_t max_queued = 64;  // kSubmit beyond this is rejected
  int min_running = 1;     // adaptive concurrent-job limit floor...
  int max_running = 4;     // ...and ceiling
  // Fleet mean utilization EMA watermarks: above high the limit steps
  // down, below low it steps up. In between the limit holds.
  double high_watermark = 0.85;
  double low_watermark = 0.5;
};

// Queue bound + adaptive concurrent-job limit. Standalone for unit tests.
class AdmissionControl {
 public:
  explicit AdmissionControl(AdmissionOptions opt);

  // Admission decision for one new submit given the current queue depth.
  bool admit(size_t queued) const { return queued < opt_.max_queued; }

  // Feeds the latest fleet-mean worker-utilization EMA; nudges the running
  // limit one step per call toward the watermark band.
  void observe_utilization(double mean_ema);

  int running_limit() const { return limit_; }
  const AdmissionOptions& options() const { return opt_; }

 private:
  AdmissionOptions opt_;
  int limit_;
};

struct ServerOptions {
  // "" = volatile server: queue and results live only in this process.
  std::string state_dir;
  // Notional home-window count for every job's lease ledger (the fleet may
  // be larger or smaller at any moment; extra workers steal).
  int home_workers = 2;
  uint64_t lease_size = 0;  // 0 = auto (~8 leases per home window)
  double heartbeat_seconds = 0.2;
  double stall_timeout_seconds = 30;
  double fsync_seconds = 0;  // per-job journal fsync cadence (0 = every record)
  // Execution defaults stamped into every job's kJob payload.
  int workers_per_process = 0;  // 0 = worker hardware decides
  uint32_t executor = 0;        // exec::SliceExecutor
  uint64_t grain = 1;
  std::string backend = "host";
  std::string metrics_out;  // ltns_server_*/ltns_tenant_* snapshot target
  double metrics_interval_seconds = 0;
  AdmissionOptions admission;
  // Content-addressed plan & result cache. The server only engages it when
  // cache_dir is set: a memory-only cache behind a long-lived daemon would
  // silently serve results that vanish on restart while claiming the same
  // fingerprints — the CLI refuses that combination up front.
  cache::CacheOptions cache;
};

// The daemon behind `ltns_cli serve`. Single-threaded poll loop over one
// listening socket: fleet workers (kHello -> kWelcome handshake) and
// control clients (kSubmit/kJobStatus/kCancel/kFetchResult/kShutdown) share
// the port. serve() runs until a kShutdown frame arrives, finishes the
// running jobs, drains the fleet, and returns "" (or a fatal error).
class JobServer {
 public:
  JobServer(uint16_t port, ServerOptions opt);  // binds; throws on failure
  ~JobServer();
  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  uint16_t port() const { return port_; }
  std::string serve();

 private:
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  ServerOptions opt_;
};

// Fleet-worker protocol loop, entered by serve_worker() when the peer's
// first frame is kWelcome instead of kJob: request leases forever, plan
// each previously-unseen job id from its kJob frame, compute kJobLease
// ranges block-by-block, and exit on kDrain. `worker_id` and
// `heartbeat_seconds` come from the kWelcome payload. Returns a process
// exit code.
int serve_fleet_worker(int fd, int worker_id, double heartbeat_seconds,
                       const std::string& backend_override);

}  // namespace ltns::dist
