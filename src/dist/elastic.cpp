#include "dist/elastic.hpp"

#include "dist/checkpoint.hpp"
#include "obs/build_info.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <mutex>
#include <sstream>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace ltns::dist {

namespace {

// Minimal JSON string escaping for worker-supplied text (backend names
// arrive verbatim from heartbeat payloads; a quote or control byte must
// not make the --status snapshot unparseable).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (uint8_t(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", unsigned(uint8_t(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

// Guards a blocking read_frame against a peer that wedges MID-frame (poll
// only proves the first byte arrived): the read times out, surfaces as an
// error, and the peer is treated as dead instead of freezing the loop.
void set_rcv_timeout(int fd, double seconds) {
  if (seconds <= 0) return;
  timeval tv{};
  tv.tv_sec = long(seconds);
  tv.tv_usec = long((seconds - double(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

ElasticCoordinator::ElasticCoordinator(uint64_t total, int home_workers,
                                       const ElasticOptions& opt)
    : total_(total), opt_(opt), ledger_(total, home_workers, opt.lease_size) {
  // Stall detection only works when heartbeats outpace the timeout. With
  // heartbeats disabled there is no way to tell slow from dead, so stall
  // revocation must be off too (death still surfaces as EOF) — otherwise
  // every long lease would be revoked, its result dropped as late, and
  // the same range re-issued forever: a livelock, not a safety net. With
  // heartbeats on, keep the timeout a few periods wide for the same
  // reason.
  if (opt_.heartbeat_seconds <= 0) {
    opt_.stall_timeout_seconds = 0;
  } else if (opt_.stall_timeout_seconds > 0) {
    opt_.stall_timeout_seconds =
        std::max(opt_.stall_timeout_seconds, 4 * opt_.heartbeat_seconds);
  }
}

// Bounds the waits that are NOT heartbeat-driven (mid-frame reads, the
// post-drain goodbye, an unfinished handshake) even when stall detection
// is disabled.
double ElasticCoordinator::goodbye_timeout() const {
  return opt_.stall_timeout_seconds > 0 ? std::max(1.0, opt_.stall_timeout_seconds) : 30.0;
}

void ElasticCoordinator::add_worker(int fd, int worker_id) {
  set_rcv_timeout(fd, goodbye_timeout());
  Peer p;
  p.fd = fd;
  p.id = worker_id;
  peers_.push_back(std::move(p));
  next_worker_id_ = std::max(next_worker_id_, worker_id + 1);
}

void ElasticCoordinator::set_listener(int listen_fd, JobSender send_job) {
  listen_fd_ = listen_fd;
  send_job_ = std::move(send_job);
}

void ElasticCoordinator::set_metrics_snapshot(std::string path, double interval_seconds) {
  metrics_path_ = std::move(path);
  metrics_interval_ = interval_seconds;
}

void ElasticCoordinator::maybe_write_metrics(bool force) {
  if (metrics_interval_ <= 0 || metrics_path_.empty()) return;
  if (!force && metrics_last_.seconds() < metrics_interval_) return;
  metrics_last_.reset();
  obs::MetricsRegistry reg;
  const auto& s = ledger_.stats();
  reg.gauge("ltns_coordinator_tasks_done", double(ledger_.tasks_done()));
  reg.gauge("ltns_coordinator_tasks_total", double(ledger_.total()));
  reg.gauge("ltns_coordinator_pending_ranges", double(ledger_.pending_ranges()));
  reg.gauge("ltns_coordinator_active_leases", double(ledger_.active_leases()));
  reg.counter("ltns_leases_issued_total", double(s.leases_issued));
  reg.counter("ltns_leases_completed_total", double(s.leases_completed));
  reg.counter("ltns_ranges_stolen_total", double(s.ranges_stolen));
  reg.counter("ltns_ranges_reissued_total", double(s.ranges_reissued));
  reg.counter("ltns_ranges_requeued_total", double(s.ranges_requeued));
  reg.counter("ltns_workers_lost_total", double(s.workers_lost));
  reg.counter("ltns_straggler_wait_seconds_total", s.straggler_wait_seconds);
  if (journal_ != nullptr && journal_->lag_seconds() >= 0)
    reg.gauge("ltns_journal_lag_seconds", journal_->lag_seconds());
  for (const auto& p : peers_) {
    if (p.id < 0) continue;
    const obs::Labels worker{{"worker", std::to_string(p.id)}};
    reg.gauge("ltns_worker_alive", p.fd >= 0 && !p.finished ? 1 : 0, worker);
    reg.gauge("ltns_worker_leases_completed", double(p.leases_completed), worker);
    if (p.has_pulse) {
      reg.gauge("ltns_worker_utilization_ema", p.pulse.ema_utilization, worker);
      reg.gauge("ltns_worker_tasks_run", double(p.pulse.tasks_run), worker);
      reg.gauge("ltns_worker_device_bytes", p.pulse.device_bytes, worker);
      reg.gauge("ltns_worker_device_ns", p.pulse.device_ns, worker);
      reg.gauge("ltns_worker_wall_seconds", p.pulse.wall_seconds, worker);
    }
  }
  // Best effort: a snapshot that cannot be written must not fail the run.
  reg.write_files(metrics_path_);
}

void ElasticCoordinator::send_lease_or_park(Peer& p) {
  if (ledger_.done()) {
    // Exactly ONE kDrain per peer: a duplicate would sit unread in the
    // worker's receive buffer when it exits, turning its close into a TCP
    // RST that can destroy the telemetry/done frames still in flight.
    if (!p.draining) {
      write_frame(p.fd, FrameType::kDrain, nullptr, 0);
      p.draining = true;
      p.drain_since.reset();
    }
    return;
  }
  Lease l;
  if (ledger_.acquire(p.id, &l)) {
    ByteWriter w;
    w.put<uint64_t>(l.id);
    w.put<uint64_t>(l.first);
    w.put<uint64_t>(l.count);
    write_frame(p.fd, FrameType::kLease, w);
  } else {
    // Every outstanding range is leased to someone else: park the request
    // and answer when a revoke requeues work or the run drains. The time
    // spent here is the straggler wait the telemetry reports.
    p.is_parked = true;
    p.parked.reset();
  }
}

void ElasticCoordinator::unpark(Peer& p) {
  if (!p.is_parked) return;
  ledger_.stats().straggler_wait_seconds += p.parked.seconds();
  p.is_parked = false;
}

void ElasticCoordinator::serve_parked(ShardMerger* merger) {
  for (auto& p : peers_) {
    if (p.fd < 0 || p.finished || !p.is_parked) continue;
    if (!ledger_.done() && ledger_.pending_ranges() == 0) continue;
    unpark(p);
    try {
      send_lease_or_park(p);
    } catch (...) {
      drop_peer(p, merger);
    }
  }
}

void ElasticCoordinator::drop_peer(Peer& p, ShardMerger* merger) {
  if (p.fd >= 0) {
    ::close(p.fd);
    p.fd = -1;
  }
  const bool was_finished = p.finished;
  p.finished = true;
  unpark(p);
  if (p.id >= 0 && !was_finished) {
    // A draining peer already finished every lease — losing only its
    // goodbye frames is not a lost worker, and must not trip the chaos
    // job's `0 workers lost` assertion on an otherwise clean run.
    ledger_.revoke_worker(p.id, /*lost=*/!p.draining);
    serve_parked(merger);  // its requeued ranges may unblock idle peers
  }
}

void ElasticCoordinator::accept_peer() {
  int fd = ::accept(listen_fd_, nullptr, nullptr);
  if (fd < 0) return;
  set_rcv_timeout(fd, goodbye_timeout());
  Peer p;
  p.fd = fd;
  p.id = -1;  // worker vs status probe decided by its first frame
  peers_.push_back(std::move(p));
}

void ElasticCoordinator::handle_frame(Peer& p, const Frame& f, ShardMerger* merger) {
  if (p.id < 0) {
    // Handshake: a worker says hello (and gets a job from the transport
    // layer), a status probe gets the JSON snapshot and is closed.
    if (f.type == FrameType::kStatusRequest) {
      ByteWriter w;
      w.put_string(status_json());
      try {
        write_frame(p.fd, FrameType::kStatus, w);
      } catch (...) {
      }
      ::close(p.fd);
      p.fd = -1;
      p.finished = true;
      return;
    }
    if (f.type != FrameType::kHello) throw std::runtime_error("peer did not say hello");
    const int id = next_worker_id_++;
    send_job_(p.fd, id);  // throws to reject the peer
    p.id = id;
    return;
  }
  switch (f.type) {
    case FrameType::kLeaseRequest: {
      // The payload's worker id must match the connection it arrived on —
      // a mismatch means a confused or buggy peer, not a scheduling race.
      if (!f.payload.empty()) {
        ByteReader r(f.payload);
        if (int(r.get<int32_t>()) != p.id)
          throw std::runtime_error("lease request carries a mismatched worker id");
      }
      send_lease_or_park(p);
      break;
    }
    case FrameType::kLeaseBlock: {
      ByteReader r(f.payload);
      const auto lease = r.get<uint64_t>();
      const int level = int(r.get<int32_t>());
      const auto index = r.get<uint64_t>();
      ledger_.add_block(p.id, lease, level, index, get_tensor(r));
      break;
    }
    case FrameType::kRangeDone: {
      ByteReader r(f.payload);
      // Write-ahead spill: the journal (when configured) records the range
      // before the merge inside complete() — see dist/checkpoint.hpp.
      if (ledger_.complete(p.id, r.get<uint64_t>(), merger, journal_)) ++p.leases_completed;
      break;
    }
    case FrameType::kHeartbeat: {
      // last_seen was already reset by the caller; the payload (optional)
      // advertises the worker's device backend plus a WorkerPulse metrics
      // sample for status probes and the periodic metrics snapshot.
      if (!f.payload.empty()) {
        ByteReader r(f.payload);
        p.backend = r.get_string();
        if (!r.exhausted()) {
          p.pulse = get_pulse(r);
          p.has_pulse = true;
        }
      }
      break;
    }
    case FrameType::kTrace:
      // The worker's serialized trace buffers, shipped right before its
      // final telemetry; merged into this process's flush under the
      // worker's own rank/pid.
      obs::Tracer::instance().ingest(f.payload);
      break;
    case FrameType::kTelemetry: {
      ByteReader r(f.payload);
      auto tel = get_telemetry(r);
      tel.shard = p.id;
      telemetry_.push_back(tel);
      break;
    }
    case FrameType::kDone:
      ::close(p.fd);
      p.fd = -1;
      p.finished = true;
      break;
    case FrameType::kError: {
      ByteReader r(f.payload);
      throw std::runtime_error("worker reported: " + r.get_string());
    }
    default:
      throw std::runtime_error("unexpected frame type from worker");
  }
}

std::string ElasticCoordinator::run(ShardMerger* merger) {
  std::signal(SIGPIPE, SIG_IGN);
  Timer no_worker_timer;
  std::string peer_errors;
  std::string fatal;

  for (;;) {
    // Announce the drain as soon as the ledger finishes: parked workers
    // get it now, computing workers with their next lease request (the
    // unsolicited frame waits in their socket buffer).
    if (ledger_.done()) {
      for (auto& p : peers_) {
        if (p.fd < 0 || p.finished || p.draining || p.id < 0) continue;
        unpark(p);
        try {
          send_lease_or_park(p);  // done() -> sends kDrain exactly once
        } catch (...) {
          drop_peer(p, merger);
        }
      }
    }

    bool peers_settled = true;
    for (const auto& p : peers_)
      if (p.fd >= 0 && !p.finished) peers_settled = false;
    if (ledger_.done() && peers_settled) break;  // success

    // Prune spent status probes: a dashboard polling --status every second
    // for hours would otherwise grow peers_ (and every poll round's scan)
    // without bound. Worker entries stay — they are bounded by fleet size
    // and status_json reports them even after they finish.
    peers_.erase(std::remove_if(peers_.begin(), peers_.end(),
                                [](const Peer& p) {
                                  return p.id < 0 && p.fd < 0 && p.finished;
                                }),
                 peers_.end());

    // Stall quarantine + drain-phase timeout. A worker is quarantined for
    // silence alone, whether or not it holds leases: revoking a lease-less
    // worker is a no-op, but marking it stalled is what lets the dead-end
    // timeout below fire instead of waiting on a frozen fleet forever.
    const double stall = opt_.stall_timeout_seconds;
    for (auto& p : peers_) {
      if (p.fd < 0 || p.finished) continue;
      if (stall > 0 && !p.stalled && p.id >= 0 && !p.is_parked &&
          p.last_seen.seconds() > stall) {
        // Heartbeats stopped but the socket is still open: revoke its
        // leases for idle peers. If it recovers, its late results are
        // dropped and it can lease fresh work.
        p.stalled = true;
        ledger_.revoke_worker(p.id, /*lost=*/false);
        serve_parked(merger);
      }
      if (p.draining && p.drain_since.seconds() > goodbye_timeout())
        drop_peer(p, merger);  // never said kDone; give up on its telemetry
      if (p.id < 0 && p.last_seen.seconds() > goodbye_timeout())
        drop_peer(p, merger);  // connected but never completed the handshake
    }

    // Dead-end detection: can anything still make progress?
    int live = 0, productive = 0;
    for (const auto& p : peers_) {
      if (p.fd >= 0 && !p.finished && p.id >= 0) {
        ++live;
        if (!p.stalled) ++productive;
      }
    }
    if (!ledger_.done()) {
      if (productive > 0) no_worker_timer.reset();
      const bool can_join = listen_fd_ >= 0;
      if (productive == 0) {
        const uint64_t left = ledger_.total() - ledger_.tasks_done();
        if (live == 0 && !can_join) {
          fatal = "all workers died with " + std::to_string(left) + " of " +
                  std::to_string(ledger_.total()) + " tasks outstanding";
        } else if (opt_.accept_timeout_seconds > 0 &&
                   no_worker_timer.seconds() > double(opt_.accept_timeout_seconds)) {
          fatal = "timed out waiting for a live worker with " + std::to_string(left) +
                  " tasks outstanding";
        }
      }
      if (!fatal.empty()) break;
    }

    maybe_write_metrics();

    // One poll round over the listener + every open peer.
    std::vector<pollfd> pfds;
    std::vector<size_t> owner;  // pfds index -> peers_ index; listener = SIZE_MAX
    if (listen_fd_ >= 0) {
      pfds.push_back({listen_fd_, POLLIN, 0});
      owner.push_back(size_t(-1));
    }
    for (size_t i = 0; i < peers_.size(); ++i) {
      if (peers_[i].fd < 0) continue;
      pfds.push_back({peers_[i].fd, POLLIN, 0});
      owner.push_back(i);
    }
    ::poll(pfds.data(), nfds_t(pfds.size()), 25);
    for (size_t k = 0; k < pfds.size(); ++k) {
      if ((pfds[k].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      if (owner[k] == size_t(-1)) {
        accept_peer();  // may push_back: take peer refs fresh below
        continue;
      }
      Peer& p = peers_[owner[k]];
      if (p.fd < 0) continue;  // dropped earlier in this round
      try {
        Frame f;
        if (!read_frame(p.fd, &f)) {
          drop_peer(p, merger);
          continue;
        }
        p.last_seen.reset();
        p.stalled = false;
        handle_frame(p, f, merger);
      } catch (const CheckpointIoError& e) {
        // The JOURNAL failed (ENOSPC, EIO), not the worker whose frame
        // triggered the write: fail the run. Blaming the peer would drop
        // healthy workers one by one — each recomputing the range, hitting
        // the same disk error — while silently losing the durability
        // guarantee the spill dir was asked for.
        fatal = e.what();
        break;
      } catch (const std::exception& e) {
        if (p.id >= 0) {
          if (!peer_errors.empty()) peer_errors += "; ";
          peer_errors += "worker " + std::to_string(p.id) + ": " + e.what();
        }
        drop_peer(p, merger);
      }
    }
    if (!fatal.empty()) break;
  }

  maybe_write_metrics(/*force=*/true);  // terminal state for scrapers
  for (auto& p : peers_) {
    if (p.fd >= 0) ::close(p.fd);
    p.fd = -1;
  }
  std::sort(telemetry_.begin(), telemetry_.end(),
            [](const ShardTelemetry& a, const ShardTelemetry& b) { return a.shard < b.shard; });
  if (!fatal.empty() && !peer_errors.empty()) fatal += " (" + peer_errors + ")";
  error_ = fatal;
  return fatal;
}

std::string ElasticCoordinator::status_json() const {
  std::ostringstream o;
  o.setf(std::ios::fixed);
  o << std::setprecision(3);
  o << "{\"build\":" << obs::build_info_json() << ",\"total\":" << total_
    << ",\"tasks_done\":" << ledger_.tasks_done()
    << ",\"pending_ranges\":" << ledger_.pending_ranges()
    << ",\"lease_size\":" << ledger_.lease_size() << ",\"active_leases\":[";
  bool first = true;
  for (const auto& l : ledger_.active()) {
    o << (first ? "" : ",") << "{\"lease\":" << l.id << ",\"worker\":" << l.worker
      << ",\"first\":" << l.first << ",\"count\":" << l.count << "}";
    first = false;
  }
  o << "],\"workers\":[";
  first = true;
  for (const auto& p : peers_) {
    if (p.id < 0) continue;
    o << (first ? "" : ",") << "{\"id\":" << p.id << ",\"backend\":\""
      << (p.backend.empty() ? "?" : json_escape(p.backend)) << "\",\"alive\":"
      << (p.fd >= 0 ? "true" : "false") << ",\"stalled\":" << (p.stalled ? "true" : "false")
      << ",\"parked\":" << (p.is_parked ? "true" : "false")
      << ",\"draining\":" << (p.draining ? "true" : "false")
      << ",\"last_seen_seconds\":" << p.last_seen.seconds()
      << ",\"leases_completed\":" << p.leases_completed << "}";
    first = false;
  }
  const auto& s = ledger_.stats();
  o << "],\"rebalance\":{\"leases_issued\":" << s.leases_issued
    << ",\"leases_completed\":" << s.leases_completed
    << ",\"ranges_stolen\":" << s.ranges_stolen
    << ",\"ranges_reissued\":" << s.ranges_reissued
    << ",\"ranges_requeued\":" << s.ranges_requeued
    << ",\"late_results_dropped\":" << s.late_results_dropped
    << ",\"workers_lost\":" << s.workers_lost
    << ",\"ranges_replayed\":" << s.ranges_replayed
    << ",\"tasks_replayed\":" << s.tasks_replayed
    << ",\"straggler_wait_seconds\":" << s.straggler_wait_seconds << "}";
  // Live metrics section: the latest heartbeat pulse per worker plus
  // fleet-level rates — what `coordinate --status` dashboards key on.
  o << ",\"metrics\":{\"workers\":[";
  first = true;
  for (const auto& p : peers_) {
    if (p.id < 0 || !p.has_pulse) continue;
    const double db = p.pulse.device_ns > 0 ? p.pulse.device_bytes / p.pulse.device_ns : 0;
    o << (first ? "" : ",") << "{\"id\":" << p.id
      << ",\"utilization_ema\":" << p.pulse.ema_utilization
      << ",\"tasks_run\":" << p.pulse.tasks_run
      << ",\"leases_completed\":" << p.pulse.leases_completed
      << ",\"device_bytes\":" << p.pulse.device_bytes
      << ",\"device_ns\":" << p.pulse.device_ns << ",\"device_bytes_per_ns\":" << db
      << ",\"wall_seconds\":" << p.pulse.wall_seconds << "}";
    first = false;
  }
  const double issued = double(std::max<uint64_t>(1, s.leases_issued));
  o << "],\"steal_rate\":" << double(s.ranges_stolen) / issued
    << ",\"requeue_rate\":" << double(s.ranges_requeued) / issued;
  if (journal_ != nullptr && journal_->lag_seconds() >= 0)
    o << ",\"journal_lag_seconds\":" << journal_->lag_seconds();
  o << "}";
  // Spill-dir health (journal size, fsync age) when the durable run ledger
  // is on — the `coordinate --status` view of checkpoint lag.
  if (journal_ != nullptr) {
    const auto health = journal_->health_json();
    if (!health.empty()) o << ",\"spill\":" << health;
  }
  o << "}";
  return o.str();
}

// --- worker half ----------------------------------------------------------

ChaosHooks chaos_from_env(int worker_id) {
  auto selects_me = [worker_id](const char* s) {
    return s != nullptr && (std::strcmp(s, "any") == 0 || std::atoi(s) == worker_id);
  };
  ChaosHooks h;
  if (selects_me(std::getenv("LTNS_CHAOS_KILL_SHARD"))) {
    h.kill_after_ranges = 1;
    if (const char* a = std::getenv("LTNS_CHAOS_KILL_AFTER_RANGES")) h.kill_after_ranges = std::atoi(a);
  }
  if (selects_me(std::getenv("LTNS_CHAOS_SLEEP_SHARD"))) {
    h.sleep_ms_per_task = 20;
    if (const char* m = std::getenv("LTNS_CHAOS_SLEEP_MS")) h.sleep_ms_per_task = std::atof(m);
  }
  return h;
}

void serve_elastic_shard(int fd, const tn::ContractionTree& tree,
                         const exec::LeafProvider& leaves, const core::SliceSet& slices,
                         const ElasticWorkerOptions& opt) {
  const ChaosHooks chaos = chaos_from_env(opt.worker_id);
  ShardTelemetry tel;
  tel.shard = opt.worker_id;
  tel.backend = opt.stream.backend_name;
  Timer wall;

  // The compute thread and the heartbeat thread share the socket: one
  // mutex keeps frames from interleaving mid-write.
  std::mutex write_mu;
  auto send = [fd, &write_mu](FrameType t, const ByteWriter& w) {
    std::lock_guard<std::mutex> lock(write_mu);
    write_frame(fd, t, w);
  };
  // Live metrics sample shared between the compute thread (writes after
  // each finished block) and the heartbeat thread (reads + serializes).
  std::mutex pulse_mu;
  WorkerPulse pulse;
  std::atomic<bool> stop{false};
  std::thread heartbeat([&] {
    if (opt.heartbeat_seconds <= 0) return;  // disabled (stall-test hook)
    Timer since;
    while (!stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      if (since.seconds() < opt.heartbeat_seconds) continue;
      since.reset();
      try {
        // Heartbeats advertise the device backend this worker runs on plus
        // the latest WorkerPulse, so a status probe sees the fleet's device
        // mix AND per-worker utilization live.
        ByteWriter hb;
        hb.put_string(opt.stream.backend_name);
        {
          std::lock_guard<std::mutex> lock(pulse_mu);
          put_pulse(hb, pulse);
        }
        send(FrameType::kHeartbeat, hb);
      } catch (...) {
        return;  // coordinator gone; the compute thread will notice too
      }
    }
  });
  struct JoinGuard {
    std::atomic<bool>& stop;
    std::thread& t;
    ~JoinGuard() {
      stop.store(true);
      if (t.joinable()) t.join();
    }
  } guard{stop, heartbeat};

  uint64_t ranges_done = 0;
  for (;;) {
    {
      ByteWriter w;
      w.put<int32_t>(int32_t(opt.worker_id));
      send(FrameType::kLeaseRequest, w);
    }
    Frame f;
    if (!read_frame(fd, &f)) throw std::runtime_error("coordinator closed mid-run");
    if (f.type == FrameType::kDrain) break;
    if (f.type == FrameType::kError) {
      ByteReader r(f.payload);
      throw std::runtime_error("coordinator error: " + r.get_string());
    }
    if (f.type != FrameType::kLease)
      throw std::runtime_error("unexpected frame while awaiting a lease");
    ByteReader r(f.payload);
    const auto lease = r.get<uint64_t>();
    const auto first = r.get<uint64_t>();
    const auto count = r.get<uint64_t>();
    if (chaos.kill_after_ranges >= 0 && ranges_done >= uint64_t(chaos.kill_after_ranges)) {
      // Die exactly like a SIGKILLed node — no goodbye frame, no cleanup —
      // and die HOLDING this lease, so the kill exercises the revoke +
      // requeue path, not just the loss of an idle worker.
      ::raise(SIGKILL);
    }

    obs::TraceScope lease_tr(obs::EventKind::kLeaseWork, lease, first, count);
    for (const auto& block : aligned_blocks(first, count)) {
      auto partial = reduce_block(block, tree, leaves, slices, opt.stream, &tel);
      {
        // Refresh the heartbeat's metrics sample with the post-block view.
        std::lock_guard<std::mutex> lock(pulse_mu);
        pulse.ema_utilization = tel.executor.ema_utilization;
        pulse.tasks_run = tel.tasks_run;
        pulse.leases_completed = tel.leases;
        pulse.device_bytes = tel.executor.device.total_transfer_bytes();
        pulse.device_ns = tel.executor.device.ns_to_device + tel.executor.device.ns_to_host;
        pulse.wall_seconds = wall.seconds();
      }
      if (chaos.sleep_ms_per_task > 0) {
        // Artificial straggler: the block still completes (heartbeats keep
        // this worker alive), it is just slow — the rest of the fleet must
        // absorb its home window via steals.
        std::this_thread::sleep_for(std::chrono::microseconds(
            int64_t(chaos.sleep_ms_per_task * 1000 * double(block.count()))));
      }
      ByteWriter w;
      w.put<uint64_t>(lease);
      w.put<int32_t>(int32_t(block.level));
      w.put<uint64_t>(block.index);
      put_tensor(w, partial);
      send(FrameType::kLeaseBlock, w);
    }
    {
      ByteWriter w;
      w.put<uint64_t>(lease);
      send(FrameType::kRangeDone, w);
    }
    ++ranges_done;
    ++tel.leases;
  }

  tel.wall_seconds = wall.seconds();
  // Quiesce the heartbeat thread BEFORE serializing trace buffers: it
  // records wire_send events of its own, and serialize() must not race a
  // live writer. The JoinGuard's later join is a no-op (joinable() check).
  stop.store(true);
  if (heartbeat.joinable()) heartbeat.join();
  auto& tracer = obs::Tracer::instance();
  if (tracer.enabled()) {
    const auto chunk = tracer.serialize();
    std::lock_guard<std::mutex> lock(write_mu);
    write_frame(fd, FrameType::kTrace, chunk.data(), chunk.size());
  }
  {
    ByteWriter w;
    put_telemetry(w, tel);
    send(FrameType::kTelemetry, w);
  }
  send(FrameType::kDone, ByteWriter{});
  // Linger until the coordinator closes its end: exiting with anything
  // unread in our receive buffer would RST the connection and could tear
  // the telemetry/done frames out from under the coordinator.
  try {
    Frame f;
    while (read_frame(fd, &f)) {
    }
  } catch (...) {
  }
}

}  // namespace ltns::dist
