#include "dist/job.hpp"

#include <netdb.h>
#include <unistd.h>

#include "circuit/io.hpp"

namespace ltns::dist {

void put_job(ByteWriter& w, const Job& j) {
  w.put<uint64_t>(j.job_id);
  w.put_string(j.circuit_text);
  w.put_string(j.bits);
  w.put<double>(j.target_log2size);
  w.put<uint64_t>(j.plan_seed);
  w.put<uint32_t>(j.executor);
  w.put<uint64_t>(j.grain);
  w.put<int32_t>(j.workers);
  w.put<int32_t>(j.num_slices);
  w.put<int32_t>(j.shard_id);
  w.put<uint64_t>(j.first);
  w.put<uint64_t>(j.count);
  w.put<uint32_t>(j.fused);
  w.put<uint64_t>(j.ldm_elems);
  w.put<uint32_t>(j.elastic);
  w.put<double>(j.heartbeat_seconds);
  w.put_string(j.backend);
  w.put<uint32_t>(j.trace);
  w.put<uint64_t>(j.open_qubits.size());  // v6
  for (int q : j.open_qubits) w.put<int32_t>(int32_t(q));
}

Job get_job(ByteReader& r) {
  Job j;
  j.job_id = r.get<uint64_t>();
  j.circuit_text = r.get_string();
  j.bits = r.get_string();
  j.target_log2size = r.get<double>();
  j.plan_seed = r.get<uint64_t>();
  j.executor = r.get<uint32_t>();
  j.grain = r.get<uint64_t>();
  j.workers = r.get<int32_t>();
  j.num_slices = r.get<int32_t>();
  j.shard_id = r.get<int32_t>();
  j.first = r.get<uint64_t>();
  j.count = r.get<uint64_t>();
  j.fused = r.get<uint32_t>();
  j.ldm_elems = r.get<uint64_t>();
  j.elastic = r.get<uint32_t>();
  j.heartbeat_seconds = r.get<double>();
  j.backend = r.get_string();
  j.trace = r.get<uint32_t>();
  const auto nq = r.get<uint64_t>();  // v6
  j.open_qubits.reserve(size_t(nq));
  for (uint64_t i = 0; i < nq; ++i) j.open_qubits.push_back(r.get<int32_t>());
  return j;
}

void put_job_spec(ByteWriter& w, const JobSpec& s) {
  w.put_string(s.name);
  w.put_string(s.tenant);
  w.put<uint32_t>(s.weight);
  w.put<int32_t>(s.priority);
  w.put_string(s.circuit_text);
  w.put_string(s.bits);
  w.put<double>(s.target_log2size);
  w.put<uint64_t>(s.plan_seed);
  w.put<uint32_t>(s.fused);
  w.put<uint64_t>(s.ldm_elems);
  w.put_string(s.kind);  // v6
  w.put_string(s.query_text);
  w.put<int32_t>(s.max_open);
  w.put_string(s.amp_mode);
  w.put_string(s.precision);  // v7
}

JobSpec get_job_spec(ByteReader& r) {
  JobSpec s;
  s.name = r.get_string();
  s.tenant = r.get_string();
  s.weight = r.get<uint32_t>();
  s.priority = r.get<int32_t>();
  s.circuit_text = r.get_string();
  s.bits = r.get_string();
  s.target_log2size = r.get<double>();
  s.plan_seed = r.get<uint64_t>();
  s.fused = r.get<uint32_t>();
  s.ldm_elems = r.get<uint64_t>();
  s.kind = r.get_string();  // v6
  s.query_text = r.get_string();
  s.max_open = r.get<int32_t>();
  s.amp_mode = r.get_string();
  s.precision = r.get_string();  // v7
  return s;
}

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

void put_rebalance(ByteWriter& w, const RebalanceStats& s) {
  w.put<uint64_t>(s.leases_issued);
  w.put<uint64_t>(s.leases_completed);
  w.put<uint64_t>(s.ranges_stolen);
  w.put<uint64_t>(s.ranges_reissued);
  w.put<uint64_t>(s.ranges_requeued);
  w.put<uint64_t>(s.late_results_dropped);
  w.put<uint64_t>(s.workers_lost);
  w.put<uint64_t>(s.ranges_replayed);
  w.put<uint64_t>(s.tasks_replayed);
  w.put<double>(s.straggler_wait_seconds);
}

RebalanceStats get_rebalance(ByteReader& r) {
  RebalanceStats s;
  s.leases_issued = r.get<uint64_t>();
  s.leases_completed = r.get<uint64_t>();
  s.ranges_stolen = r.get<uint64_t>();
  s.ranges_reissued = r.get<uint64_t>();
  s.ranges_requeued = r.get<uint64_t>();
  s.late_results_dropped = r.get<uint64_t>();
  s.workers_lost = r.get<uint64_t>();
  s.ranges_replayed = r.get<uint64_t>();
  s.tasks_replayed = r.get<uint64_t>();
  s.straggler_wait_seconds = r.get<double>();
  return s;
}

void put_run_telemetry(ByteWriter& w, const api::RunTelemetry& t) {
  put_exec_stats(w, t.stats);
  put_snapshot(w, t.runtime_stats);
  put_memory_stats(w, t.memory);
  w.put<uint64_t>(t.shards.size());
  for (const auto& s : t.shards) put_telemetry(w, s);
  put_rebalance(w, t.rebalance);
  w.put_string(t.error);
}

api::RunTelemetry get_run_telemetry(ByteReader& r) {
  api::RunTelemetry t;
  t.stats = get_exec_stats(r);
  t.runtime_stats = get_snapshot(r);
  t.memory = get_memory_stats(r);
  auto n = r.get<uint64_t>();
  t.shards.reserve(size_t(n));
  for (uint64_t i = 0; i < n; ++i) t.shards.push_back(get_telemetry(r));
  t.rebalance = get_rebalance(r);
  t.error = r.get_string();
  return t;
}

void put_query_result(ByteWriter& w, const query::QueryResult& q) {
  w.put<uint32_t>(uint32_t(q.kind));
  w.put<uint64_t>(q.id);
  w.put_string(q.text);
  w.put_string(q.error);
  w.put<uint64_t>(q.amplitudes.size());
  for (const auto& a : q.amplitudes) {
    w.put<double>(a.real());
    w.put<double>(a.imag());
  }
  w.put<uint64_t>(q.samples.size());
  for (const auto& s : q.samples) w.put_string(s);
  w.put<double>(q.expectation);
}

query::QueryResult get_query_result(ByteReader& r) {
  query::QueryResult q;
  q.kind = query::QueryKind(r.get<uint32_t>());
  q.id = r.get<uint64_t>();
  q.text = r.get_string();
  q.error = r.get_string();
  const auto na = r.get<uint64_t>();
  q.amplitudes.reserve(size_t(na));
  for (uint64_t i = 0; i < na; ++i) {
    const double re = r.get<double>();
    const double im = r.get<double>();
    q.amplitudes.emplace_back(re, im);
  }
  const auto ns = r.get<uint64_t>();
  q.samples.reserve(size_t(ns));
  for (uint64_t i = 0; i < ns; ++i) q.samples.push_back(r.get_string());
  q.expectation = r.get<double>();
  return q;
}

void put_result_record(ByteWriter& w, const JobResultRecord& rec) {
  w.put<uint64_t>(rec.job_id);
  w.put<uint32_t>(uint32_t(rec.state));
  w.put_string(rec.name);
  w.put_string(rec.tenant);
  w.put_string(rec.error);
  w.put<double>(rec.amplitude_re);
  w.put<double>(rec.amplitude_im);
  w.put<int32_t>(rec.num_slices);
  w.put<double>(rec.wall_seconds);
  w.put<uint64_t>(rec.tasks_run);
  put_run_telemetry(w, rec.telemetry);
  w.put_string(rec.kind);  // v6
  w.put<uint64_t>(rec.query_results.size());
  for (const auto& q : rec.query_results) put_query_result(w, q);
}

JobResultRecord get_result_record(ByteReader& r) {
  JobResultRecord rec;
  rec.job_id = r.get<uint64_t>();
  rec.state = JobState(r.get<uint32_t>());
  rec.name = r.get_string();
  rec.tenant = r.get_string();
  rec.error = r.get_string();
  rec.amplitude_re = r.get<double>();
  rec.amplitude_im = r.get<double>();
  rec.num_slices = r.get<int32_t>();
  rec.wall_seconds = r.get<double>();
  rec.tasks_run = r.get<uint64_t>();
  rec.telemetry = get_run_telemetry(r);
  rec.kind = r.get_string();  // v6
  const auto nq = r.get<uint64_t>();
  rec.query_results.reserve(size_t(nq));
  for (uint64_t i = 0; i < nq; ++i) rec.query_results.push_back(get_query_result(r));
  return rec;
}

std::unique_ptr<Prepared> prepare_job(const circuit::Circuit& c, const std::vector<int>& bits,
                                      double target, uint64_t seed,
                                      const std::vector<int>& open_qubits) {
  return prepare_job(c, /*circuit_text=*/"", bits, target, seed, /*plan_cache=*/nullptr,
                     /*from_cache=*/nullptr, open_qubits);
}

std::unique_ptr<Prepared> prepare_job(const circuit::Circuit& c, const std::string& circuit_text,
                                      const std::vector<int>& bits, double target, uint64_t seed,
                                      cache::PlanCache* plan_cache, bool* from_cache,
                                      const std::vector<int>& open_qubits) {
  if (from_cache != nullptr) *from_cache = false;
  circuit::LoweringOptions lo;
  lo.output_bits = bits;
  lo.open_qubits = open_qubits;
  // The network must reach its FINAL address before make_plan runs: the
  // contraction tree keeps a raw pointer to it, and a later move of the
  // Prepared would leave that pointer dangling.
  auto p = std::make_unique<Prepared>();
  p->lowered = circuit::lower(c, lo);
  circuit::simplify(p->lowered);
  core::PlanOptions po;
  po.target_log2size = target;
  po.seed = seed;
  if (plan_cache != nullptr && plan_cache->enabled()) {
    std::string bit_text;
    bit_text.reserve(bits.size());
    for (int b : bits) bit_text += b != 0 ? '1' : '0';
    std::string open_text;
    for (int q : open_qubits) open_text += std::to_string(q) + ",";
    const auto key = cache::plan_key(circuit_text, bit_text, open_text, po);
    if (plan_cache->lookup(key, p->lowered.net, &p->plan)) {
      if (from_cache != nullptr) *from_cache = true;
      return p;
    }
    p->plan = core::make_plan(p->lowered.net, po);
    plan_cache->insert(key, p->plan);
    return p;
  }
  p->plan = core::make_plan(p->lowered.net, po);
  return p;
}

void close_fd(int* fd) {
  if (*fd >= 0) ::close(*fd);
  *fd = -1;
}

void send_error(int fd, const std::string& msg) {
  try {
    ByteWriter w;
    w.put_string(msg);
    write_frame(fd, FrameType::kError, w);
  } catch (...) {
  }
}

int connect_to(const std::string& host, uint16_t port, int attempts) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* ai = nullptr;
  if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &ai) != 0 ||
      ai == nullptr)
    return -1;
  int fd = -1;
  for (int attempt = 0; attempt < attempts && fd < 0; ++attempt) {
    if (attempt > 0) ::usleep(500 * 1000);
    for (const addrinfo* a = ai; a != nullptr && fd < 0; a = a->ai_next) {
      fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
      if (fd >= 0 && ::connect(fd, a->ai_addr, a->ai_addrlen) == 0) break;
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
  }
  ::freeaddrinfo(ai);
  return fd;
}

}  // namespace ltns::dist
