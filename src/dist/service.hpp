// TCP coordinator/worker service: the multi-host face of the shard driver.
//
// The fork-based exec::run_sharded() covers one host; this service runs the
// same protocol over TCP so shards can live on different nodes. The
// coordinator listens, hands each connecting worker a self-contained job
// (circuit text + plan options + its shard window), and finishes the
// tournament from the returned block partials — the merge order and wire
// format are shared with the local driver, so the accumulated amplitude is
// bitwise identical to a single-process run.
//
// Each worker re-plans from the circuit text with the job's options; the
// planner is deterministic, so every process derives the same contraction
// tree and slice set (the coordinator cross-checks |S| and rejects
// mismatches). Peers must run the same binary on the same architecture —
// the wire format ships raw IEEE bit patterns (see wire.hpp).
#pragma once

#include <complex>
#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "dist/lease.hpp"
#include "dist/wire.hpp"
#include "exec/slice_runner.hpp"

namespace ltns::dist {

struct ServiceOptions {
  double target_log2size = 16;  // planner slicing bound (must match CLI amp)
  exec::SliceExecutor executor = exec::SliceExecutor::kWorkStealing;
  uint64_t grain = 1;
  int workers_per_process = 0;  // scheduler width per worker; 0 = hardware
  // Fused (secondary-slicing) stem executor, as the Simulator defaults to —
  // keeping it on makes a `coordinate` amplitude bitwise comparable to an
  // `amp` run of the same circuit.
  bool fused = true;
  uint64_t ldm_elems = 32768;
  // Bound on waiting for workers to connect; a worker that dies before
  // connecting then yields an error instead of a hang. 0 = wait forever.
  int accept_timeout_seconds = 300;
  // Elastic mode (dist/elastic.hpp): workers lease bounded task ranges
  // instead of one fixed window; stragglers are stolen from, dead workers'
  // leases are requeued, new workers may join mid-run, and a
  // kStatusRequest probe (ltns_cli coordinate --status) gets live
  // lease/heartbeat state. The result stays bitwise identical to a
  // 1-process run either way.
  bool elastic = false;
  uint64_t lease_size = 0;            // tasks per lease; 0 = auto
  double heartbeat_seconds = 0.2;     // worker liveness period
  double stall_timeout_seconds = 30;  // silent-with-leases -> revoke + requeue
  // Durable run ledger (dist/checkpoint.hpp; elastic mode only): journal
  // completed ranges to `<spill_dir>/ledger.journal` and, with `resume`,
  // replay a previous coordinator's journal so a restarted coordinator
  // re-offers only unfinished ranges to (re)connecting workers — the
  // amplitude stays bitwise identical to an uninterrupted run. The journal
  // is fingerprinted with the job (circuit + bits + plan target); resuming
  // a different job is refused. `coordinate --status` reports the spill
  // health (journal size, last fsync age) while the run is live.
  std::string spill_dir;
  bool resume = false;
  double spill_fsync_seconds = 0;  // <= 0 = fsync after every record
  // Default device backend the job asks workers to run on; each worker may
  // override it for its own hardware (`ltns_cli worker --backend=...`) —
  // conforming backends are bitwise identical, so a mixed fleet still
  // produces the byte-exact amplitude.
  std::string backend = "host";
  // Observability (src/obs): with `trace`, the job asks every worker to arm
  // its event tracer and ship the recorded chunk back over kTrace at drain
  // time, so the coordinator's --trace-out timeline carries one lane per
  // remote process. `metrics_out`/`metrics_interval_seconds` plumb the
  // coordinator's periodic live-metrics snapshot (elastic mode only; see
  // ElasticCoordinator::set_metrics_snapshot).
  bool trace = false;
  std::string metrics_out;
  double metrics_interval_seconds = 0;
};

struct CoordinatorResult {
  std::complex<double> amplitude{0, 0};
  bool completed = false;
  std::string error;
  int num_slices = 0;
  uint64_t tasks_run = 0;
  double wall_seconds = 0;
  std::vector<ShardTelemetry> shards;  // one record per worker
  RebalanceStats rebalance;            // elastic-mode lease telemetry
};

class CoordinatorServer {
 public:
  // Binds and listens on `port` (0 picks an ephemeral port, readable via
  // port()); throws std::runtime_error on failure.
  explicit CoordinatorServer(uint16_t port);
  ~CoordinatorServer();
  CoordinatorServer(const CoordinatorServer&) = delete;
  CoordinatorServer& operator=(const CoordinatorServer&) = delete;

  uint16_t port() const { return port_; }

  // Accepts `num_workers` connections, shards [0, 2^|S|) across them in
  // arrival order, merges their partials, and returns the amplitude
  // <bits|C|0...0>. Blocks until every worker reported or died.
  CoordinatorResult run_amplitude(int num_workers, const circuit::Circuit& c,
                                  const std::vector<int>& bits, const ServiceOptions& opt = {});

 private:
  int listen_fd_ = -1;
  uint16_t port_ = 0;
};

// Connects to a coordinator, executes the job it is handed (one fixed
// window, or the elastic lease loop when the job says so), streams the
// partials back, and returns 0 on success (non-zero on any failure).
// `backend_override` (optional) picks this worker's device backend instead
// of the job's default — the heterogeneous-fleet knob.
int serve_worker(const std::string& host, uint16_t port,
                 const std::string& backend_override = "");

// Status probe: connects to a running *elastic* coordinator and returns
// its live lease/heartbeat state as a JSON string (`ltns_cli coordinate
// --status`). Throws std::runtime_error when nothing answers.
std::string query_status(const std::string& host, uint16_t port);

}  // namespace ltns::dist
