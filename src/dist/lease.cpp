#include "dist/lease.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "dist/shard_plan.hpp"
#include "obs/trace.hpp"

namespace ltns::dist {

LeaseLedger::LeaseLedger(uint64_t total, int home_workers, uint64_t lease_size,
                         uint64_t first_lease_id)
    : total_(total) {
  next_id_ = first_lease_id;
  const int homes = std::max(1, home_workers);
  if (lease_size == 0) {
    // ~8 leases per home window: fine enough that a straggler's tail is a
    // small fraction of its window, coarse enough to keep framing cheap.
    lease_size = std::max<uint64_t>(1, total / (uint64_t(homes) * 8));
  }
  lease_size_ = lease_size;
  by_home_.resize(size_t(homes));
  home_load_.assign(size_t(homes), 0);
  home_first_.resize(size_t(homes));
  const auto plan = make_shard_plan(total, homes);
  for (int h = 0; h < homes; ++h) home_first_[size_t(h)] = plan[size_t(h)].first;
  for (int h = 0; h < homes; ++h) {
    const auto& shard = plan[size_t(h)];
    for (uint64_t lo = shard.first; lo < shard.first + shard.count; lo += lease_size_) {
      const uint64_t n = std::min(lease_size_, shard.first + shard.count - lo);
      by_home_[size_t(h)].push_back({lo, n, h});
      home_load_[size_t(h)] += n;
      ++pending_count_;
    }
  }
}

bool LeaseLedger::acquire(int worker, Lease* out) {
  if (pending_count_ == 0) return false;
  PendingRange r;
  bool stolen = false;
  bool reissued = false;
  if (!reissue_.empty()) {
    // Requeued ranges first, whoever's home they are: they have already
    // been delayed by a revoke once and are the likeliest to gate the
    // tournament tail.
    r = reissue_.front();
    reissue_.pop_front();
    reissued = true;
  } else if (worker >= 0 && size_t(worker) < by_home_.size() &&
             !by_home_[size_t(worker)].empty()) {
    // Own home window, front-to-back — the worker walks its window in
    // task order exactly like a static shard would.
    r = by_home_[size_t(worker)].front();
    by_home_[size_t(worker)].pop_front();
    home_load_[size_t(worker)] -= r.count;
  } else {
    // Steal: the TAIL range of the home with the most pending work, like
    // the in-process thief taking from the victim deque's far end.
    int victim = -1;
    uint64_t best_load = 0;
    for (size_t h = 0; h < home_load_.size(); ++h) {
      if (home_load_[h] > best_load) {
        best_load = home_load_[h];
        victim = int(h);
      }
    }
    if (victim < 0) return false;  // unreachable while pending_count_ > 0
    r = by_home_[size_t(victim)].back();
    by_home_[size_t(victim)].pop_back();
    home_load_[size_t(victim)] -= r.count;
    stolen = true;
  }
  --pending_count_;

  out->id = next_id_++;
  out->first = r.first;
  out->count = r.count;
  active_.emplace(out->id, ActiveState{worker, r.first, r.count, r.home, {}});
  ++stats_.leases_issued;
  if (stolen) ++stats_.ranges_stolen;
  if (reissued) ++stats_.ranges_reissued;
  obs::trace_instant(stolen ? obs::EventKind::kLeaseSteal : obs::EventKind::kLeaseGrant,
                     uint64_t(worker), r.first, r.count);
  return true;
}

bool LeaseLedger::add_block(int worker, uint64_t lease_id, int level, uint64_t index,
                            exec::Tensor partial) {
  auto it = active_.find(lease_id);
  if (it == active_.end() || it->second.worker != worker) {
    ++stats_.late_results_dropped;
    return false;
  }
  // Wire-supplied coordinates: validate against the leased range rather
  // than trusting the sender (the merger re-validates against [0, total)).
  if (level < 0 || level >= 64) throw std::runtime_error("dist lease: block level out of range");
  const AlignedBlock b{level, index};
  if (b.first() < it->second.first ||
      b.first() + b.count() > it->second.first + it->second.count)
    throw std::runtime_error("dist lease: block outside its leased range");
  it->second.blocks.push_back({level, index, std::move(partial)});
  return true;
}

bool LeaseLedger::complete(int worker, uint64_t lease_id, ShardMerger* merger,
                           RangeJournal* journal) {
  auto it = active_.find(lease_id);
  if (it == active_.end() || it->second.worker != worker) {
    // The lease was revoked (and possibly re-issued to a peer) while this
    // result was in flight: drop it, the range is accounted elsewhere.
    ++stats_.late_results_dropped;
    return false;
  }
  uint64_t shipped = 0;
  for (const auto& b : it->second.blocks) shipped += AlignedBlock{b.level, b.index}.count();
  if (shipped != it->second.count)
    throw std::runtime_error("dist lease: range finished without tiling its blocks");
  // Write-ahead: the journal record lands before the merge, so a restarted
  // coordinator either replays this range or recomputes it — it can never
  // see a half-merged copy.
  if (journal != nullptr)
    journal->on_range_complete(it->second.first, it->second.count, it->second.blocks);
  for (auto& b : it->second.blocks) merger->add(b.level, b.index, std::move(b.partial));
  tasks_done_ += it->second.count;
  ++stats_.leases_completed;
  obs::trace_instant(obs::EventKind::kRangeDone, uint64_t(worker), lease_id);
  active_.erase(it);
  return true;
}

bool LeaseLedger::mark_range_done(uint64_t first, uint64_t count) {
  // Replay-time only: the range must be one of the constructor's pending
  // lease ranges (same tiling => same first/count), still unleased. At
  // replay time nothing has been acquired or requeued, so the range lives
  // in its home's queue, which is sorted by `first` — the home is the last
  // window starting at or before `first` (empty windows share a start with
  // their successor and hold nothing), and the range binary-searches.
  auto home_it = std::upper_bound(home_first_.begin(), home_first_.end(), first);
  if (home_it == home_first_.begin()) return false;
  auto& q = by_home_[size_t(home_it - home_first_.begin()) - 1];
  auto it = std::lower_bound(q.begin(), q.end(), first,
                             [](const PendingRange& r, uint64_t f) { return r.first < f; });
  if (it == q.end() || it->first != first) return false;
  if (it->count != count) return false;  // journal from a different tiling
  home_load_[size_t(home_it - home_first_.begin()) - 1] -= it->count;
  q.erase(it);
  --pending_count_;
  tasks_done_ += count;
  ++stats_.ranges_replayed;
  stats_.tasks_replayed += count;
  return true;
}

bool LeaseLedger::mark_span_done(uint64_t first, uint64_t count) {
  if (count == 0) return false;
  if (first + count > total_) return false;
  // Validate pass: walk the span range-by-range without mutating. Each
  // lookup repeats mark_range_done's home binary search — replay-time
  // queues are still the constructor's sorted tiling.
  uint64_t cur = first;
  const uint64_t end = first + count;
  while (cur < end) {
    auto home_it = std::upper_bound(home_first_.begin(), home_first_.end(), cur);
    if (home_it == home_first_.begin()) return false;
    const auto& q = by_home_[size_t(home_it - home_first_.begin()) - 1];
    auto it = std::lower_bound(q.begin(), q.end(), cur,
                               [](const PendingRange& r, uint64_t f) { return r.first < f; });
    if (it == q.end() || it->first != cur) return false;
    if (cur + it->count > end) return false;  // span splits a lease: foreign tiling
    cur += it->count;
  }
  // Commit pass: every boundary checked out, retire for real. Stats count
  // the original lease ranges, not the span, so "ranges_replayed" means
  // the same thing for compacted and uncompacted journals.
  cur = first;
  while (cur < end) {
    auto home_it = std::upper_bound(home_first_.begin(), home_first_.end(), cur);
    const size_t h = size_t(home_it - home_first_.begin()) - 1;
    auto& q = by_home_[h];
    auto it = std::lower_bound(q.begin(), q.end(), cur,
                               [](const PendingRange& r, uint64_t f) { return r.first < f; });
    const uint64_t c = it->count;
    home_load_[h] -= c;
    q.erase(it);
    --pending_count_;
    tasks_done_ += c;
    ++stats_.ranges_replayed;
    stats_.tasks_replayed += c;
    cur += c;
  }
  return true;
}

void LeaseLedger::revoke_worker(int worker, bool lost) {
  if (lost) ++stats_.workers_lost;
  obs::trace_instant(obs::EventKind::kLeaseRevoke, uint64_t(worker));
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->second.worker == worker) {
      // Front of the requeue line: a revoked range gates the tournament
      // root, so it must not sit behind every untouched range.
      reissue_.push_front({it->second.first, it->second.count, it->second.home});
      ++pending_count_;
      ++stats_.ranges_requeued;
      obs::trace_instant(obs::EventKind::kLeaseRequeue, it->second.first, it->second.count);
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<LeaseLedger::ActiveLease> LeaseLedger::active() const {
  std::vector<ActiveLease> out;
  out.reserve(active_.size());
  for (const auto& [id, a] : active_) out.push_back({id, a.worker, a.first, a.count});
  std::sort(out.begin(), out.end(),
            [](const ActiveLease& x, const ActiveLease& y) { return x.id < y.id; });
  return out;
}

}  // namespace ltns::dist
