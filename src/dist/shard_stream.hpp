// The shard-side and coordinator-side halves of the block-partial protocol,
// shared by BOTH transports (exec::run_sharded's fork/socketpair driver and
// the TCP coordinator/worker service). Keeping this logic in one place is
// load-bearing: the bitwise-identity guarantee requires every transport to
// decompose windows, reduce blocks, and frame results the exact same way.
#pragma once

#include <cstdint>
#include <string>

#include "dist/shard_merge.hpp"
#include "dist/shard_plan.hpp"
#include "dist/wire.hpp"
#include "exec/slice_runner.hpp"

namespace ltns::dist {

struct ShardStreamOptions {
  exec::SliceExecutor executor = exec::SliceExecutor::kWorkStealing;
  uint64_t grain = 1;
  ThreadPool* pool = nullptr;                    // required
  runtime::SliceScheduler* scheduler = nullptr;  // required
  const exec::FusedPlan* fused = nullptr;
  // Device backend this worker's kernels run through (worker-local
  // instance; backends never cross process boundaries) and the name it
  // advertises in telemetry and heartbeats. Null backend = raw host path.
  device::DeviceBackend* backend = nullptr;
  std::string backend_name = "host";
};

// Reduces one tournament-aligned block with run_sliced and folds the run's
// counters into `tel`. Shared by the static window streamer and the
// elastic lease loop — the bitwise-identity guarantee requires every path
// to compute a block partial the exact same way.
exec::Tensor reduce_block(const AlignedBlock& block, const tn::ContractionTree& tree,
                          const exec::LeafProvider& leaves, const core::SliceSet& slices,
                          const ShardStreamOptions& opt, ShardTelemetry* tel);

// Worker side: reduces every tournament-aligned block of
// [first, first + count) with run_sliced and streams one kBlock frame per
// block, then one kTelemetry record and kDone, to `fd`. Throws
// std::runtime_error on any failure (the caller reports it as kError).
void stream_shard_window(int fd, int shard_id, uint64_t first, uint64_t count,
                         const tn::ContractionTree& tree, const exec::LeafProvider& leaves,
                         const core::SliceSet& slices, const ShardStreamOptions& opt);

// Coordinator side: drains one shard's frame stream, feeding block partials
// into `merger` and the telemetry record into `telemetry`. Returns the
// empty string on a clean kDone, a failure description otherwise (worker
// kError text, EOF before kDone, protocol violations). Never throws.
std::string drain_shard_stream(int fd, ShardMerger* merger, ShardTelemetry* telemetry);

}  // namespace ltns::dist
