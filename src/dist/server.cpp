#include "dist/server.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iomanip>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include "cache/cache.hpp"
#include "circuit/io.hpp"
#include "core/planner.hpp"
#include "device/backend.hpp"
#include "dist/checkpoint.hpp"
#include "dist/elastic.hpp"
#include "dist/shard_plan.hpp"
#include "dist/shard_stream.hpp"
#include "obs/build_info.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "query/eval.hpp"
#include "query/grouper.hpp"
#include "runtime/slice_scheduler.hpp"
#include "util/timer.hpp"

namespace ltns::dist {

namespace {

// On-disk header of spec.job / result.bin under <state_dir>/jobs/<id>/.
// Versioned separately from the wire: a protocol bump that leaves the
// JobSpec/JobResultRecord layouts alone must not orphan a state dir.
// v2: specs carry the v6 query-job tail (kind/query_text/max_open/
// amp_mode) and result records the kind + per-query result list.
// v3: specs carry the v7 precision tail.
constexpr uint32_t kStateMagic = 0x4C544A53u;  // "LTJS"
constexpr uint16_t kStateVersion = 3;

// The backend spec stamped into a job's kJob payload: the server's
// configured backend NAME with the submission's precision folded in. An
// explicit +suffix on the server's --backend pins precision server-wide
// and wins over the spec (mirrors device::merge_backend_override).
std::string job_backend_spec(const std::string& server_backend, const JobSpec& spec) {
  const std::string base = server_backend.empty() ? "host" : server_backend;
  if (spec.precision == "bf16" && base.find('+') == std::string::npos) return base + "+bf16";
  return base;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (uint8_t(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", unsigned(uint8_t(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

void set_rcv_timeout(int fd, double seconds) {
  if (seconds <= 0) return;
  timeval tv{};
  tv.tv_sec = long(seconds);
  tv.tv_usec = long((seconds - double(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

bool ensure_dir(const std::string& path) {
  return ::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST;
}

// tmp + rename, like every other snapshot writer in the tree: a reader (or
// a crashed writer) never sees a half-written spec or result.
bool write_file_atomic(const std::string& path, const std::vector<uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = std::fclose(f) == 0 && ok;
  if (ok) ok = std::rename(tmp.c_str(), path.c_str()) == 0;
  if (!ok) std::remove(tmp.c_str());
  return ok;
}

bool read_file(const std::string& path, std::vector<uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  uint8_t buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->insert(out->end(), buf, buf + n);
  std::fclose(f);
  return true;
}

std::vector<uint8_t> with_state_header(const ByteWriter& payload) {
  ByteWriter w;
  w.put<uint32_t>(kStateMagic);
  w.put<uint16_t>(kStateVersion);
  w.put<uint8_t>(host_endian());
  w.put_bytes(payload.buffer().data(), payload.buffer().size());
  return w.buffer();
}

// Validates the header and positions the reader at the payload. Throws on
// mismatch — loading a foreign or skewed state file must die loudly.
ByteReader open_state_payload(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.get<uint32_t>() != kStateMagic) throw std::runtime_error("bad state-file magic");
  if (r.get<uint16_t>() != kStateVersion)
    throw std::runtime_error("state-file version mismatch");
  if (r.get<uint8_t>() != host_endian())
    throw std::runtime_error("state-file endianness mismatch");
  return r;
}

}  // namespace

// --- FairShare -------------------------------------------------------------

FairShare::State& FairShare::ensure(const std::string& tenant) { return tenants_[tenant]; }

void FairShare::set_weight(const std::string& tenant, uint32_t weight) {
  ensure(tenant).weight = weight;
}

std::string FairShare::pick(const std::vector<std::string>& runnable) {
  const std::string* best_name = nullptr;
  State* best = nullptr;
  auto consider = [&](const std::string& name, bool background) {
    State& s = ensure(name);
    if (background != (s.weight == 0)) return;
    // An idle tenant re-enters at the scheduler clock: sleeping must not
    // bank virtual time it can later spend starving active tenants.
    if (s.vt < clock_) s.vt = clock_;
    if (best == nullptr || s.vt < best->vt || (s.vt == best->vt && name < *best_name)) {
      best = &s;
      best_name = &name;
    }
  };
  for (const auto& name : runnable) consider(name, /*background=*/false);
  if (best == nullptr)
    for (const auto& name : runnable) consider(name, /*background=*/true);
  if (best_name == nullptr) return "";
  clock_ = best->vt;
  return *best_name;
}

void FairShare::charge(const std::string& tenant, uint64_t tasks) {
  State& s = ensure(tenant);
  // Zero-weight (background) tenants are charged at weight 1 so several of
  // them still round-robin against each other.
  const double w = s.weight > 0 ? double(s.weight) : 1.0;
  s.vt += double(tasks) / w;
  s.charged += tasks;
}

double FairShare::virtual_time(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.vt;
}

std::vector<FairShare::TenantShare> FairShare::shares() const {
  std::vector<TenantShare> out;
  out.reserve(tenants_.size());
  for (const auto& [name, s] : tenants_) out.push_back({name, s.weight, s.vt, s.charged});
  return out;
}

// --- AdmissionControl ------------------------------------------------------

AdmissionControl::AdmissionControl(AdmissionOptions opt) : opt_(opt) {
  opt_.min_running = std::max(1, opt_.min_running);
  opt_.max_running = std::max(opt_.min_running, opt_.max_running);
  if (opt_.low_watermark > opt_.high_watermark) std::swap(opt_.low_watermark, opt_.high_watermark);
  limit_ = opt_.max_running;  // optimistic until the fleet says otherwise
}

void AdmissionControl::observe_utilization(double mean_ema) {
  if (mean_ema > opt_.high_watermark)
    limit_ = std::max(opt_.min_running, limit_ - 1);
  else if (mean_ema < opt_.low_watermark)
    limit_ = std::min(opt_.max_running, limit_ + 1);
}

// --- JobServer -------------------------------------------------------------

JobServer::JobServer(uint16_t port, ServerOptions opt) : opt_(std::move(opt)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("job server: socket failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    close_fd(&listen_fd_);
    throw std::runtime_error("job server: bind/listen failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

JobServer::~JobServer() { close_fd(&listen_fd_); }

namespace {

struct ServerImpl {
  int listen_fd;
  const ServerOptions& opt;

  struct Peer {
    int fd = -1;
    enum class Kind { kUnknown, kWorker, kWaiter } kind = Kind::kUnknown;
    int worker_id = -1;
    bool parked = false;
    bool draining = false;
    bool finished = false;
    bool stalled = false;
    std::string backend;
    WorkerPulse pulse;
    bool has_pulse = false;
    std::set<uint64_t> jobs_sent;  // job ids whose kJob frame this worker holds
    uint64_t waiting_job = 0;      // kind == kWaiter
    Timer last_seen;
  };
  std::vector<Peer> peers;
  int next_worker_id = 0;

  struct ServerJob {
    uint64_t id = 0;
    JobSpec spec;
    JobState state = JobState::kQueued;
    Job base;           // kJob template (shard_id stamped per worker)
    uint64_t total = 0;
    std::unique_ptr<Prepared> prepared;
    std::unique_ptr<LeaseLedger> ledger;
    std::unique_ptr<ShardMerger> merger;
    std::unique_ptr<CheckpointWriter> journal;
    std::map<int, ShardTelemetry> worker_tel;  // latest cumulative per worker
    JobResultRecord result;                    // valid once terminal
    Timer run_wall;

    // v6 query jobs (spec.kind == "query"). The PARENT job holds the
    // parsed queries and the grouper's cover; each group that needs a
    // contraction runs as a hidden internal CHILD job (fresh id, `parent`
    // set) through the very same ledger/merger/lease machinery as a
    // classic amp job — workers cannot tell the difference. Children are
    // never persisted and never appear in status or admission counts; the
    // parent evaluates every member query once the last group lands.
    uint64_t parent = 0;  // != 0: internal child of that query job
    uint64_t child = 0;   // parent: id of the currently running child (0 = none)
    circuit::Circuit qcircuit;
    query::ParsedQueries queries;
    std::vector<query::GroupSpec> groups;
    size_t next_group = 0;
    uint64_t query_groups = 0;       // |groups| at start (survives cleanup)
    uint64_t query_contractions = 0; // groups actually contracted
    uint64_t query_cache_groups = 0; // groups answered from the result cache
    std::vector<ShardTelemetry> query_tel;  // accumulated across children
    std::vector<std::vector<std::complex<double>>> group_amps;

    bool internal() const { return parent != 0; }
  };
  std::map<uint64_t, ServerJob> jobs;
  uint64_t next_job_id = 1;

  FairShare shares;
  AdmissionControl admission;
  bool shutting_down = false;
  std::string fatal;
  uint64_t submitted = 0, rejected = 0, cancelled = 0, completed = 0, failed = 0;
  uint64_t late_frames_dropped = 0;
  uint64_t served_from_cache = 0;
  Timer metrics_last, admission_last;

  // Shared content-addressed cache (disk-backed only — see ServerOptions).
  std::unique_ptr<cache::PlanCache> plan_cache;
  std::unique_ptr<cache::ResultCache> result_cache;

  ServerImpl(int fd, const ServerOptions& o) : listen_fd(fd), opt(o), admission(o.admission) {
    if (!opt.cache.cache_dir.empty()) {
      if (opt.cache.plan_enabled()) plan_cache = std::make_unique<cache::PlanCache>(opt.cache);
      if (opt.cache.result_enabled())
        result_cache = std::make_unique<cache::ResultCache>(opt.cache);
    }
  }

  // The exact PlanOptions prepare_job derives from a spec — the cache keys
  // must hash the same preimage a solo `amp` run with these knobs hashes,
  // or the two transports would stop sharing entries.
  static core::PlanOptions spec_plan_options(const JobSpec& s) {
    core::PlanOptions po;
    po.target_log2size = s.target_log2size;
    po.seed = s.plan_seed;
    return po;
  }
  static std::string spec_result_key(const JobSpec& s) {
    return cache::result_key(s.circuit_text, s.bits, /*open_qubits=*/"", spec_plan_options(s),
                             s.fused != 0, s.ldm_elems);
  }
  // The canonical key preimage forms the Simulator hashes ('0'/'1' bit
  // text, "q0,q1," open text) — a batch the server computes must be
  // addressable by a solo run pointed at the same --cache-dir.
  static std::string bit_text(const std::vector<int>& bits) {
    std::string t;
    t.reserve(bits.size());
    for (int b : bits) t += b != 0 ? '1' : '0';
    return t;
  }
  static std::string open_text(const std::vector<int>& open_qubits) {
    std::string t;
    for (int q : open_qubits) t += std::to_string(q) + ",";
    return t;
  }
  // Everything the result key hashes besides bits/open — the scope the
  // covering-batch index partitions on (mirrors api::Simulator).
  static std::string spec_scope(const JobSpec& s) {
    return cache::result_key(s.circuit_text, "", "", spec_plan_options(s), s.fused != 0,
                             s.ldm_elems);
  }
  static std::string group_result_key(const JobSpec& s, const query::GroupSpec& g) {
    return cache::result_key(s.circuit_text, bit_text(g.base_bits), open_text(g.open_qubits),
                             spec_plan_options(s), s.fused != 0, s.ldm_elems);
  }

  static bool terminal(JobState s) {
    return s == JobState::kDone || s == JobState::kFailed || s == JobState::kCancelled;
  }
  // Internal children ride their parent's admission slot: only the parent
  // counts, or a query job would consume two running slots.
  int running_count() const {
    int n = 0;
    for (const auto& [id, j] : jobs)
      if (j.state == JobState::kRunning && !j.internal()) ++n;
    return n;
  }
  size_t queued_count() const {
    size_t n = 0;
    for (const auto& [id, j] : jobs)
      if (j.state == JobState::kQueued && !j.internal()) ++n;
    return n;
  }

  // --- persistence ---------------------------------------------------------

  std::string jobs_dir() const { return opt.state_dir + "/jobs"; }
  std::string job_dir(uint64_t id) const { return jobs_dir() + "/" + std::to_string(id); }

  void persist_spec(const ServerJob& j) {
    if (opt.state_dir.empty()) return;
    ensure_dir(opt.state_dir);
    ensure_dir(jobs_dir());
    ensure_dir(job_dir(j.id));
    ByteWriter w;
    put_job_spec(w, j.spec);
    write_file_atomic(job_dir(j.id) + "/spec.job", with_state_header(w));
  }

  void persist_result(const ServerJob& j) {
    if (opt.state_dir.empty()) return;
    ensure_dir(job_dir(j.id));
    ByteWriter w;
    put_result_record(w, j.result);
    write_file_atomic(job_dir(j.id) + "/result.bin", with_state_header(w));
  }

  // Rebuilds the queue and the terminal-result index from the state dir: a
  // job with a result.bin is terminal; anything else (queued OR mid-run at
  // the crash) re-queues, and its spill journal — when one exists — will
  // replay at start so only unfinished ranges recompute.
  void resume_scan() {
    if (opt.state_dir.empty()) return;
    DIR* d = ::opendir(jobs_dir().c_str());
    if (d == nullptr) return;
    while (dirent* e = ::readdir(d)) {
      char* end = nullptr;
      const uint64_t id = std::strtoull(e->d_name, &end, 10);
      if (id == 0 || end == e->d_name || *end != '\0') continue;
      std::vector<uint8_t> bytes;
      if (!read_file(job_dir(id) + "/spec.job", &bytes)) continue;
      ServerJob j;
      j.id = id;
      try {
        auto r = open_state_payload(bytes);
        j.spec = get_job_spec(r);
        if (read_file(job_dir(id) + "/result.bin", &bytes)) {
          auto rr = open_state_payload(bytes);
          j.result = get_result_record(rr);
          j.state = j.result.state;
        }
      } catch (const std::exception&) {
        continue;  // damaged entry: leave it on disk, don't load it
      }
      shares.set_weight(j.spec.tenant, j.spec.weight);
      next_job_id = std::max(next_job_id, id + 1);
      // Re-seed the shared result cache from results persisted before the
      // cache existed (or under a different cache dir), so a restarted
      // server short-circuits duplicates of everything it ever finished.
      if (result_cache != nullptr && j.state == JobState::kDone && j.result.error.empty() &&
          j.spec.kind == "amp") {
        cache::AmplitudeEntry e;
        e.amplitude = {j.result.amplitude_re, j.result.amplitude_im};
        e.num_slices = j.result.num_slices;
        e.tasks_run = j.result.tasks_run;
        e.wall_seconds = j.result.wall_seconds;
        e.telemetry = j.result.telemetry;
        result_cache->insert_amplitude(spec_result_key(j.spec), e);
      }
      jobs.emplace(id, std::move(j));
    }
    ::closedir(d);
  }

  // --- scheduling ----------------------------------------------------------

  ServerJob* pick_by_fair_share(JobState wanted) {
    std::map<std::string, std::vector<ServerJob*>> by_tenant;
    for (auto& [id, j] : jobs) {
      if (j.state != wanted) continue;
      if (wanted == JobState::kRunning &&
          (j.ledger == nullptr || j.ledger->pending_ranges() == 0))
        continue;
      by_tenant[j.spec.tenant].push_back(&j);
    }
    if (by_tenant.empty()) return nullptr;
    std::vector<std::string> runnable;
    runnable.reserve(by_tenant.size());
    for (const auto& [tenant, js] : by_tenant) runnable.push_back(tenant);
    const auto tenant = shares.pick(runnable);
    if (tenant.empty()) return nullptr;
    ServerJob* best = nullptr;
    for (ServerJob* j : by_tenant[tenant]) {
      if (best == nullptr || j->spec.priority > best->spec.priority ||
          (j->spec.priority == best->spec.priority && j->id < best->id))
        best = j;
    }
    return best;
  }

  void maybe_start_jobs() {
    if (shutting_down) return;
    while (running_count() < admission.running_limit()) {
      ServerJob* j = pick_by_fair_share(JobState::kQueued);
      if (j == nullptr) return;
      start_job(*j);
    }
  }

  void start_job(ServerJob& j) {
    if (j.spec.kind == "query") {
      start_query_job(j);
      return;
    }
    try {
      auto circ = circuit::circuit_from_string(j.spec.circuit_text);
      std::vector<int> bits;
      bits.reserve(j.spec.bits.size());
      for (char ch : j.spec.bits) bits.push_back(ch == '1');
      // Plan-cache aware: a repeated circuit (same knobs) skips the path
      // optimizer and the slicers entirely; the rebuilt plan is identical,
      // so the job's amplitude stays byte-identical either way.
      j.prepared = prepare_job(circ, j.spec.circuit_text, bits, j.spec.target_log2size,
                               j.spec.plan_seed, plan_cache.get());
    } catch (const std::exception& e) {
      fail_job(j, std::string("planning failed: ") + e.what());
      return;
    }
    const int ns = j.prepared->plan.num_slices();
    if (ns >= 57) {  // same bound run_sharded enforces
      fail_job(j, "too many sliced edges");
      return;
    }
    j.total = uint64_t(1) << ns;

    j.base = Job{};
    j.base.job_id = j.id;
    j.base.circuit_text = j.spec.circuit_text;
    j.base.bits = j.spec.bits;
    j.base.target_log2size = j.spec.target_log2size;
    j.base.plan_seed = j.spec.plan_seed;
    j.base.executor = opt.executor;
    j.base.grain = opt.grain;
    j.base.workers = opt.workers_per_process;
    j.base.num_slices = int32_t(ns);
    j.base.fused = j.spec.fused;
    j.base.ldm_elems = j.spec.ldm_elems;
    j.base.elastic = 1;
    j.base.heartbeat_seconds = opt.heartbeat_seconds;
    j.base.backend = job_backend_spec(opt.backend, j.spec);

    // Disjoint lease-id base: the job id rides the high 32 bits of every
    // lease this ledger issues, so worker frames route by lease id alone.
    j.ledger = std::make_unique<LeaseLedger>(j.total, std::max(1, opt.home_workers),
                                             opt.lease_size, (j.id << 32) | 1);
    j.merger = std::make_unique<ShardMerger>(j.total);
    if (!opt.state_dir.empty()) {
      try {
        ensure_dir(job_dir(j.id));
        CheckpointMeta meta;
        meta.total = j.total;
        meta.home_workers = int32_t(std::max(1, opt.home_workers));
        meta.lease_size = j.ledger->lease_size();
        meta.run_id = run_fingerprint(j.spec.circuit_text, j.spec.bits, /*open_qubits=*/"",
                                      j.spec.fused != 0, j.spec.ldm_elems,
                                      j.prepared->plan.path,
                                      j.prepared->plan.slices.to_vector());
        // Always resume-if-present: a re-queued job that was mid-run when
        // the server died replays its journal and recomputes only the tail.
        j.journal = open_or_resume_journal(job_dir(j.id) + "/spill", meta, /*resume=*/true,
                                           opt.fsync_seconds, j.ledger.get(), j.merger.get());
      } catch (const std::exception& e) {
        fail_job(j, std::string("spill journal: ") + e.what());
        return;
      }
    }
    j.state = JobState::kRunning;
    j.run_wall.reset();
    if (j.ledger->done()) finish_job(j);  // journal already covered the run
  }

  // --- query jobs (v6) -----------------------------------------------------

  void start_query_job(ServerJob& j) {
    try {
      j.qcircuit = circuit::circuit_from_string(j.spec.circuit_text);
      j.queries = query::parse_queries(j.spec.query_text, j.qcircuit.num_qubits);
    } catch (const std::exception& e) {
      fail_job(j, std::string("bad circuit: ") + e.what());
      return;
    }
    // Submit-time validation already rejected malformed files; a parse
    // failure here means the persisted spec was edited — fail loudly.
    if (!j.queries.ok()) {
      fail_job(j, "line " + std::to_string(j.queries.error_line) + ": " + j.queries.error);
      return;
    }
    query::GrouperOptions go;
    go.max_open = std::max(0, int(j.spec.max_open));
    go.group_amplitudes = j.spec.amp_mode == "grouped";
    j.groups = query::group_queries(j.queries.queries, go);
    j.query_groups = j.groups.size();
    j.group_amps.assign(j.groups.size(), {});
    j.next_group = 0;
    j.state = JobState::kRunning;
    j.run_wall.reset();
    start_next_group(j);
  }

  // Advances the parent: serves groups from the result cache until one
  // needs a contraction (spawn a child, return) or none are left (emit the
  // parent's record). Called at start and after every child retires.
  void start_next_group(ServerJob& j) {
    while (j.next_group < j.groups.size()) {
      const auto& g = j.groups[j.next_group];
      std::vector<std::complex<double>> amps;
      if (probe_group_cache(j, g, &amps)) {
        j.group_amps[j.next_group] = std::move(amps);
        ++j.query_cache_groups;
        ++served_from_cache;
        ++j.next_group;
        continue;
      }
      start_child(j, g);  // on failure the parent is already terminal
      return;
    }
    finish_query_job(j);
  }

  // The engine's reuse rule: closed groups in exact amp mode may only take
  // an EXACT single-amplitude hit (byte contract with solo `amp`); open
  // groups — and closed ones under grouped mode — also slice their answer
  // out of any cached batch whose open set covers them.
  bool probe_group_cache(const ServerJob& j, const query::GroupSpec& g,
                         std::vector<std::complex<double>>* out) {
    if (result_cache == nullptr) return false;
    const bool closed = g.open_qubits.empty();
    if (closed) {
      cache::AmplitudeEntry e;
      if (result_cache->lookup_amplitude(group_result_key(j.spec, g), &e)) {
        *out = {e.amplitude};
        return true;
      }
      if (j.spec.amp_mode != "grouped") return false;
    }
    cache::BatchEntry e;
    if (!result_cache->find_covering_batch(spec_scope(j.spec), g.base_bits, g.open_qubits, &e))
      return false;
    *out = query::restrict_amplitudes(e.amplitudes, e.open_qubits, g.open_qubits, g.base_bits);
    return true;
  }

  void start_child(ServerJob& parent, const query::GroupSpec& g) {
    const uint64_t id = next_job_id++;
    ServerJob c;
    c.id = id;
    c.parent = parent.id;
    c.spec = parent.spec;
    c.spec.kind = "amp";
    c.spec.query_text.clear();
    c.spec.name = parent.spec.name + "#g" + std::to_string(parent.next_group);
    try {
      c.prepared = prepare_job(parent.qcircuit, parent.spec.circuit_text, g.base_bits,
                               parent.spec.target_log2size, parent.spec.plan_seed,
                               plan_cache.get(), nullptr, g.open_qubits);
    } catch (const std::exception& e) {
      fail_job(parent,
               "group " + std::to_string(parent.next_group) + " planning failed: " + e.what());
      return;
    }
    const int ns = c.prepared->plan.num_slices();
    if (ns >= 57) {
      fail_job(parent, "group " + std::to_string(parent.next_group) + ": too many sliced edges");
      return;
    }
    c.total = uint64_t(1) << ns;

    c.base = Job{};
    c.base.job_id = id;
    c.base.circuit_text = parent.spec.circuit_text;
    c.base.bits = bit_text(g.base_bits);
    c.base.open_qubits = g.open_qubits;
    c.base.target_log2size = parent.spec.target_log2size;
    c.base.plan_seed = parent.spec.plan_seed;
    c.base.executor = opt.executor;
    c.base.grain = opt.grain;
    c.base.workers = opt.workers_per_process;
    c.base.num_slices = int32_t(ns);
    c.base.fused = parent.spec.fused;
    c.base.ldm_elems = parent.spec.ldm_elems;
    c.base.elastic = 1;
    c.base.heartbeat_seconds = opt.heartbeat_seconds;
    c.base.backend = job_backend_spec(opt.backend, parent.spec);

    c.ledger = std::make_unique<LeaseLedger>(c.total, std::max(1, opt.home_workers),
                                             opt.lease_size, (id << 32) | 1);
    c.merger = std::make_unique<ShardMerger>(c.total);
    // No spill journal: a crashed server re-queues the PARENT (its spec is
    // persisted, its result is not) and replans every group — the plan
    // cache makes that cheap, and children stay entirely in memory.
    c.state = JobState::kRunning;
    c.run_wall.reset();
    parent.child = id;
    jobs.emplace(id, std::move(c));
  }

  // A child's merger drained: convert its root into the parent's group
  // amplitudes, retire the child in place (no record, no persistence) and
  // move the parent forward.
  void finish_child_job(ServerJob& c) {
    std::string err;
    std::vector<std::complex<double>> amps;
    exec::Tensor root;
    if (!c.merger->complete()) {
      err = "reduction incomplete despite a drained ledger";
    } else {
      root = c.merger->take_root();
    }
    auto pit = jobs.find(c.parent);
    std::vector<ShardTelemetry> tel;
    for (const auto& [wid, t] : c.worker_tel) tel.push_back(t);
    const double child_wall = c.run_wall.seconds();
    c.state = JobState::kDone;
    c.ledger.reset();
    c.merger.reset();
    c.worker_tel.clear();
    if (pit == jobs.end() || terminal(pit->second.state)) {
      c.prepared.reset();  // parent gone (cancelled): drop the work
      return;
    }
    ServerJob& p = pit->second;
    p.child = 0;
    for (auto& t : tel) p.query_tel.push_back(std::move(t));
    const auto& g = p.groups[p.next_group];
    if (err.empty()) {
      if (g.open_qubits.empty()) {
        if (root.rank() != 0 || root.size() != 1) {
          err = "closed group produced a non-scalar root";
        } else {
          amps = {std::complex<double>(root.data()[0]) * c.prepared->lowered.scalar};
        }
      } else {
        amps = query::amplitudes_from_tensor(root, c.prepared->lowered, g.open_qubits);
        if (amps.empty()) err = "open group produced a mis-shaped root";
      }
    }
    if (!err.empty()) {
      c.prepared.reset();
      fail_job(p, "group " + std::to_string(p.next_group) + ": " + err);
      return;
    }
    if (result_cache != nullptr) {
      if (g.open_qubits.empty()) {
        // Same entry a solo `amp` run (or an amp-kind submit) would write.
        cache::AmplitudeEntry e;
        e.amplitude = amps[0];
        e.num_slices = c.base.num_slices;
        e.slicing = c.prepared->plan.metrics;
        e.wall_seconds = child_wall;
        result_cache->insert_amplitude(group_result_key(p.spec, g), e);
      } else {
        cache::BatchEntry e;
        e.amplitudes = amps;
        e.open_qubits = g.open_qubits;
        e.base_bits = g.base_bits;  // grouper emits canonical (open zeroed) form
        e.slicing = c.prepared->plan.metrics;
        result_cache->insert_batch(group_result_key(p.spec, g), e, spec_scope(p.spec));
      }
    }
    c.prepared.reset();
    p.group_amps[p.next_group] = std::move(amps);
    ++p.query_contractions;
    ++p.next_group;
    start_next_group(p);
  }

  // Every group answered: evaluate each member query against its group's
  // amplitudes and emit the parent's terminal record, results in file
  // order.
  void finish_query_job(ServerJob& j) {
    JobResultRecord rec;
    rec.job_id = j.id;
    rec.name = j.spec.name;
    rec.tenant = j.spec.tenant;
    rec.kind = "query";
    rec.wall_seconds = j.run_wall.seconds();
    rec.telemetry.shards = j.query_tel;
    auto agg = aggregate_telemetry(rec.telemetry.shards);
    rec.telemetry.stats = agg.stats;
    rec.telemetry.runtime_stats = agg.executor;
    rec.telemetry.memory = agg.memory;
    rec.tasks_run = agg.tasks_run;
    std::vector<query::QueryResult> results(j.queries.queries.size());
    for (size_t gi = 0; gi < j.groups.size(); ++gi) {
      const auto& g = j.groups[gi];
      for (int member : g.members) {
        results[size_t(member)] = query::evaluate_query(j.queries.queries[size_t(member)],
                                                        g.open_qubits, j.group_amps[gi]);
      }
    }
    rec.query_results = std::move(results);
    rec.state = JobState::kDone;
    finalize_job(j, std::move(rec));
  }

  void dispatch(Peer& w) {
    if (shutting_down && running_count() == 0) {
      if (!w.draining) {
        write_frame(w.fd, FrameType::kDrain, nullptr, 0);
        w.draining = true;
      }
      return;
    }
    ServerJob* j = pick_by_fair_share(JobState::kRunning);
    if (j == nullptr) {
      w.parked = true;
      return;
    }
    Lease l;
    if (!j->ledger->acquire(w.worker_id, &l)) {
      w.parked = true;
      return;
    }
    if (w.jobs_sent.find(j->id) == w.jobs_sent.end()) {
      Job job = j->base;
      job.shard_id = w.worker_id;
      ByteWriter jw;
      put_job(jw, job);
      write_frame(w.fd, FrameType::kJob, jw);
      w.jobs_sent.insert(j->id);
    }
    ByteWriter lw;
    lw.put<uint64_t>(j->id);
    lw.put<uint64_t>(l.id);
    lw.put<uint64_t>(l.first);
    lw.put<uint64_t>(l.count);
    write_frame(w.fd, FrameType::kJobLease, lw);
    shares.charge(j->spec.tenant, l.count);
  }

  void serve_parked() {
    for (auto& p : peers) {
      if (p.kind != Peer::Kind::kWorker || p.fd < 0 || p.finished || !p.parked) continue;
      p.parked = false;
      try {
        dispatch(p);  // re-parks when still nothing to hand out
      } catch (...) {
        drop_peer(p);
      }
    }
  }

  void drop_peer(Peer& p) {
    if (p.fd >= 0) ::close(p.fd);
    p.fd = -1;
    const bool was_finished = p.finished;
    p.finished = true;
    if (p.kind == Peer::Kind::kWorker && p.worker_id >= 0 && !was_finished && !p.draining) {
      // Revoke across every running job: each ledger requeues the ranges
      // this worker held, exactly like the one-shot elastic driver.
      for (auto& [id, j] : jobs)
        if (j.state == JobState::kRunning && j.ledger != nullptr)
          j.ledger->revoke_worker(p.worker_id, /*lost=*/true);
    }
  }

  // --- job completion ------------------------------------------------------

  void finish_job(ServerJob& j) {
    if (j.internal()) {
      finish_child_job(j);
      return;
    }
    JobResultRecord rec;
    rec.job_id = j.id;
    rec.name = j.spec.name;
    rec.tenant = j.spec.tenant;
    rec.num_slices = j.base.num_slices;
    rec.wall_seconds = j.run_wall.seconds();
    for (const auto& [wid, tel] : j.worker_tel) rec.telemetry.shards.push_back(tel);
    auto agg = aggregate_telemetry(rec.telemetry.shards);
    rec.telemetry.stats = agg.stats;
    rec.telemetry.runtime_stats = agg.executor;
    rec.telemetry.memory = agg.memory;
    rec.tasks_run = agg.tasks_run;
    rec.telemetry.rebalance = j.ledger->stats();
    rec.telemetry.runtime_stats.ranges_stolen += rec.telemetry.rebalance.ranges_stolen;
    rec.telemetry.runtime_stats.ranges_reissued += rec.telemetry.rebalance.ranges_reissued;
    rec.telemetry.runtime_stats.straggler_wait_seconds +=
        rec.telemetry.rebalance.straggler_wait_seconds;
    if (!j.merger->complete()) {
      rec.state = JobState::kFailed;
      rec.error = "reduction incomplete despite a drained ledger";
    } else {
      auto root = j.merger->take_root();
      if (root.rank() != 0 || root.size() != 1) {
        rec.state = JobState::kFailed;
        rec.error = "amplitude job produced a non-scalar root";
      } else {
        const auto amp = std::complex<double>(root.data()[0]) * j.prepared->lowered.scalar;
        rec.amplitude_re = amp.real();
        rec.amplitude_im = amp.imag();
        rec.state = JobState::kDone;
        if (result_cache != nullptr) {
          // Populate the shared cache: the next identical submit — here or
          // in a solo run pointed at the same --cache-dir — short-circuits.
          cache::AmplitudeEntry e;
          e.amplitude = amp;
          e.num_slices = rec.num_slices;
          e.slicing = j.prepared->plan.metrics;
          e.tasks_run = rec.tasks_run;
          e.wall_seconds = rec.wall_seconds;
          e.telemetry = rec.telemetry;
          result_cache->insert_amplitude(spec_result_key(j.spec), e);
        }
      }
    }
    finalize_job(j, std::move(rec));
  }

  void fail_job(ServerJob& j, const std::string& error) {
    if (j.internal()) {
      // A child's failure is its parent's failure: retire the child in
      // place (no record of its own) and surface the error on the parent.
      j.state = JobState::kFailed;
      j.ledger.reset();
      j.merger.reset();
      j.journal.reset();
      j.prepared.reset();
      j.worker_tel.clear();
      auto pit = jobs.find(j.parent);
      if (pit != jobs.end() && !terminal(pit->second.state)) {
        pit->second.child = 0;
        fail_job(pit->second,
                 "group " + std::to_string(pit->second.next_group) + ": " + error);
      }
      return;
    }
    JobResultRecord rec;
    rec.job_id = j.id;
    rec.name = j.spec.name;
    rec.tenant = j.spec.tenant;
    rec.state = JobState::kFailed;
    rec.error = error;
    rec.telemetry.error = error;
    if (j.state == JobState::kRunning) rec.wall_seconds = j.run_wall.seconds();
    finalize_job(j, std::move(rec));
  }

  void cancel_job_record(ServerJob& j) {
    JobResultRecord rec;
    rec.job_id = j.id;
    rec.name = j.spec.name;
    rec.tenant = j.spec.tenant;
    rec.state = JobState::kCancelled;
    rec.error = "cancelled by client";
    if (j.state == JobState::kRunning) rec.wall_seconds = j.run_wall.seconds();
    finalize_job(j, std::move(rec));
  }

  void finalize_job(ServerJob& j, JobResultRecord rec) {
    j.result = std::move(rec);
    j.state = j.result.state;
    switch (j.state) {
      case JobState::kDone: ++completed; break;
      case JobState::kFailed: ++failed; break;
      case JobState::kCancelled: ++cancelled; break;
      default: break;
    }
    persist_result(j);
    // Release the run machinery: in-flight worker frames for this job's
    // leases now route nowhere and are counted as late drops.
    j.ledger.reset();
    j.merger.reset();
    j.journal.reset();
    // With the writer closed, shrink a finished job's spill journal to its
    // single-span form (PR 5 carry-over: long-lived state dirs must not
    // accumulate one record per lease forever).
    if (!opt.state_dir.empty() && j.state == JobState::kDone) {
      try {
        compact_checkpoint(job_dir(j.id) + "/spill");
      } catch (const std::exception&) {
        // Compaction is an optimization; the full journal still resumes.
      }
    }
    j.prepared.reset();
    j.worker_tel.clear();
    // A terminal query parent takes its running child down with it: the
    // child's machinery drops so in-flight worker frames become clean late
    // drops, exactly like a cancelled classic job.
    if (j.child != 0) {
      auto cit = jobs.find(j.child);
      if (cit != jobs.end() && !terminal(cit->second.state)) {
        cit->second.state = JobState::kCancelled;
        cit->second.ledger.reset();
        cit->second.merger.reset();
        cit->second.prepared.reset();
        cit->second.worker_tel.clear();
      }
      j.child = 0;
    }
    j.queries = {};
    j.groups.clear();
    j.group_amps.clear();
    j.query_tel.clear();
    for (auto& p : peers) {
      if (p.kind != Peer::Kind::kWaiter || p.fd < 0 || p.waiting_job != j.id) continue;
      try {
        ByteWriter w;
        put_result_record(w, j.result);
        write_frame(p.fd, FrameType::kResult, w);
      } catch (...) {
      }
      ::close(p.fd);
      p.fd = -1;
      p.finished = true;
    }
  }

  // --- control plane -------------------------------------------------------

  void reply_submit(int fd, bool ok, uint64_t id, const std::string& msg) {
    ByteWriter w;
    w.put<uint32_t>(ok ? 1 : 0);
    w.put<uint64_t>(id);
    w.put_string(msg);
    write_frame(fd, FrameType::kSubmitReply, w);
  }

  void reply_server(int fd, bool ok, const std::string& msg) {
    ByteWriter w;
    w.put<uint32_t>(ok ? 1 : 0);
    w.put_string(msg);
    write_frame(fd, FrameType::kServerReply, w);
  }

  void handle_submit(Peer& p, const Frame& f) {
    ByteReader r(f.payload);
    auto spec = get_job_spec(r);
    std::string reason;
    if (shutting_down) {
      reason = "server is shutting down";
    } else if (!admission.admit(queued_count())) {
      reason = "queue full (" + std::to_string(queued_count()) + " of " +
               std::to_string(admission.options().max_queued) + " jobs queued)";
    } else if (spec.kind != "amp" && spec.kind != "query") {
      reason = "unknown job kind \"" + spec.kind + "\" (expected \"amp\" or \"query\")";
    } else if (spec.kind == "query" && spec.amp_mode != "exact" && spec.amp_mode != "grouped") {
      reason = "unknown amp mode \"" + spec.amp_mode + "\" (expected \"exact\" or \"grouped\")";
    } else if (!spec.precision.empty() && spec.precision != "fp32" && spec.precision != "bf16") {
      reason = "unknown precision \"" + spec.precision + "\" (expected \"fp32\" or \"bf16\")";
    } else {
      try {
        auto circ = circuit::circuit_from_string(spec.circuit_text);
        if (size_t(circ.num_qubits) != spec.bits.size()) {
          reason = "bitstring length " + std::to_string(spec.bits.size()) +
                   " does not match the circuit's " + std::to_string(circ.num_qubits) +
                   " qubits";
        } else if (spec.kind == "query") {
          // Malformed query files are rejected AT SUBMIT, with the parser's
          // line-tagged message — never queued to fail later.
          auto parsed = query::parse_queries(spec.query_text, circ.num_qubits);
          if (!parsed.ok())
            reason = "line " + std::to_string(parsed.error_line) + ": " + parsed.error;
          else if (parsed.queries.empty())
            reason = "query file contains no queries";
        }
      } catch (const std::exception& e) {
        reason = std::string("bad circuit: ") + e.what();
      }
    }
    if (!reason.empty()) {
      ++rejected;
      reply_submit(p.fd, false, 0, reason);
      return;
    }
    const uint64_t id = next_job_id++;
    ServerJob j;
    j.id = id;
    j.spec = std::move(spec);
    if (j.spec.name.empty()) j.spec.name = "job-" + std::to_string(id);
    shares.set_weight(j.spec.tenant, j.spec.weight);  // latest submit wins
    ++submitted;
    // Duplicate-submit short-circuit: a spec whose result fingerprint is
    // already cached turns terminal AT SUBMIT TIME — it never queues, never
    // plans, never touches the fleet. The new job id gets its own spec.job
    // and result.bin (identity rewritten) so fetch/status work as usual.
    cache::AmplitudeEntry hit;
    if (result_cache != nullptr && j.spec.kind == "amp" &&
        result_cache->lookup_amplitude(spec_result_key(j.spec), &hit)) {
      JobResultRecord rec;
      rec.job_id = id;
      rec.name = j.spec.name;
      rec.tenant = j.spec.tenant;
      rec.state = JobState::kDone;
      rec.amplitude_re = hit.amplitude.real();
      rec.amplitude_im = hit.amplitude.imag();
      rec.num_slices = hit.num_slices;
      rec.wall_seconds = hit.wall_seconds;  // the run that earned the entry
      rec.tasks_run = hit.tasks_run;
      rec.telemetry = hit.telemetry;
      j.result = std::move(rec);
      j.state = JobState::kDone;
      j.total = uint64_t(1) << uint32_t(std::max<int32_t>(0, j.result.num_slices));
      persist_spec(j);
      persist_result(j);
      jobs.emplace(id, std::move(j));
      ++completed;
      ++served_from_cache;
      reply_submit(p.fd, true, id, "done (served from cache)");
      return;
    }
    persist_spec(j);
    jobs.emplace(id, std::move(j));
    reply_submit(p.fd, true, id, "queued");
  }

  void handle_cancel(Peer& p, const Frame& f) {
    ByteReader r(f.payload);
    const uint64_t id = r.get<uint64_t>();
    auto it = jobs.find(id);
    if (it == jobs.end() || it->second.internal()) {
      reply_server(p.fd, false, "unknown job id " + std::to_string(id));
      return;
    }
    if (terminal(it->second.state)) {
      reply_server(p.fd, false,
                   "job " + std::to_string(id) + " already " +
                       job_state_name(it->second.state));
      return;
    }
    cancel_job_record(it->second);
    reply_server(p.fd, true, "cancelled");
  }

  void handle_fetch(Peer& p, const Frame& f) {
    ByteReader r(f.payload);
    const uint64_t id = r.get<uint64_t>();
    const bool wait = r.get<uint32_t>() != 0;
    auto it = jobs.find(id);
    if (it == jobs.end() || it->second.internal()) {
      send_error(p.fd, "unknown job id " + std::to_string(id));
      ::close(p.fd);
      p.fd = -1;
      p.finished = true;
      return;
    }
    if (terminal(it->second.state)) {
      ByteWriter w;
      put_result_record(w, it->second.result);
      write_frame(p.fd, FrameType::kResult, w);
      ::close(p.fd);
      p.fd = -1;
      p.finished = true;
      return;
    }
    if (wait) {
      // Long poll: the fd stays open until the job turns terminal.
      p.kind = Peer::Kind::kWaiter;
      p.waiting_job = id;
      return;
    }
    send_error(p.fd, "job " + std::to_string(id) + " is " +
                         job_state_name(it->second.state) + " (use --wait to block)");
    ::close(p.fd);
    p.fd = -1;
    p.finished = true;
  }

  void handle_shutdown(Peer& p) {
    shutting_down = true;
    // Waiters on jobs that will never start now get a clean refusal
    // instead of a hang (queued jobs persist for the next server).
    for (auto& w : peers) {
      if (w.kind != Peer::Kind::kWaiter || w.fd < 0) continue;
      auto it = jobs.find(w.waiting_job);
      if (it != jobs.end() && terminal(it->second.state)) continue;
      send_error(w.fd, "server shutting down; job " + std::to_string(w.waiting_job) +
                           " is still " +
                           (it == jobs.end() ? "unknown"
                                             : job_state_name(it->second.state)));
      ::close(w.fd);
      w.fd = -1;
      w.finished = true;
    }
    reply_server(p.fd, true, "draining: finishing running jobs, then exiting");
  }

  // --- frame handling ------------------------------------------------------

  void handle_frame(Peer& p, const Frame& f) {
    if (p.kind == Peer::Kind::kUnknown) {
      switch (f.type) {
        case FrameType::kHello: {
          const int id = next_worker_id++;
          ByteWriter w;
          w.put<int32_t>(int32_t(id));
          w.put<double>(opt.heartbeat_seconds);
          write_frame(p.fd, FrameType::kWelcome, w);
          p.kind = Peer::Kind::kWorker;
          p.worker_id = id;
          return;
        }
        case FrameType::kStatusRequest:
        case FrameType::kJobStatus: {
          uint64_t id = 0;
          if (f.type == FrameType::kJobStatus && !f.payload.empty()) {
            ByteReader r(f.payload);
            id = r.get<uint64_t>();
          }
          std::string json;
          if (id == 0) {
            json = server_status_json();
          } else {
            auto it = jobs.find(id);
            if (it == jobs.end() || it->second.internal()) {
              send_error(p.fd, "unknown job id " + std::to_string(id));
              ::close(p.fd);
              p.fd = -1;
              p.finished = true;
              return;
            }
            json = job_status_json(it->second);
          }
          ByteWriter w;
          w.put_string(json);
          try {
            write_frame(p.fd, FrameType::kStatus, w);
          } catch (...) {
          }
          ::close(p.fd);
          p.fd = -1;
          p.finished = true;
          return;
        }
        case FrameType::kSubmit:
          handle_submit(p, f);
          ::close(p.fd);
          p.fd = -1;
          p.finished = true;
          return;
        case FrameType::kCancel:
          handle_cancel(p, f);
          ::close(p.fd);
          p.fd = -1;
          p.finished = true;
          return;
        case FrameType::kFetchResult:
          handle_fetch(p, f);
          return;
        case FrameType::kShutdown:
          handle_shutdown(p);
          ::close(p.fd);
          p.fd = -1;
          p.finished = true;
          return;
        default:
          throw std::runtime_error("peer opened with an unexpected frame");
      }
    }
    if (p.kind != Peer::Kind::kWorker) {
      // A waiter has nothing more to say; any further frame is a protocol
      // error and costs it the connection.
      throw std::runtime_error("unexpected frame from a result waiter");
    }
    switch (f.type) {
      case FrameType::kLeaseRequest: {
        if (!f.payload.empty()) {
          ByteReader r(f.payload);
          if (int(r.get<int32_t>()) != p.worker_id)
            throw std::runtime_error("lease request carries a mismatched worker id");
        }
        p.parked = false;
        dispatch(p);
        break;
      }
      case FrameType::kLeaseBlock: {
        ByteReader r(f.payload);
        const auto lease = r.get<uint64_t>();
        const int level = int(r.get<int32_t>());
        const auto index = r.get<uint64_t>();
        auto it = jobs.find(lease >> 32);
        if (it == jobs.end() || it->second.state != JobState::kRunning) {
          ++late_frames_dropped;  // job finished/cancelled while in flight
          break;
        }
        it->second.ledger->add_block(p.worker_id, lease, level, index, get_tensor(r));
        break;
      }
      case FrameType::kRangeDone: {
        ByteReader r(f.payload);
        const auto lease = r.get<uint64_t>();
        auto it = jobs.find(lease >> 32);
        if (it == jobs.end() || it->second.state != JobState::kRunning) {
          ++late_frames_dropped;
          break;
        }
        ServerJob& j = it->second;
        bool merged = false;
        try {
          merged = j.ledger->complete(p.worker_id, lease, j.merger.get(), j.journal.get());
        } catch (const CheckpointIoError& e) {
          // The JOB's journal failed, not the worker or the server: fail
          // this job, keep serving the rest of the queue.
          fail_job(j, e.what());
          break;
        }
        if (merged && !r.exhausted()) {
          auto tel = get_telemetry(r);
          tel.shard = p.worker_id;
          j.worker_tel[p.worker_id] = tel;
        }
        if (merged && j.ledger->done()) finish_job(j);
        break;
      }
      case FrameType::kHeartbeat: {
        if (!f.payload.empty()) {
          ByteReader r(f.payload);
          p.backend = r.get_string();
          if (!r.exhausted()) {
            p.pulse = get_pulse(r);
            p.has_pulse = true;
          }
        }
        break;
      }
      case FrameType::kDone:
        ::close(p.fd);
        p.fd = -1;
        p.finished = true;
        break;
      case FrameType::kError: {
        ByteReader r(f.payload);
        throw std::runtime_error("worker reported: " + r.get_string());
      }
      default:
        throw std::runtime_error("unexpected frame type from fleet worker");
    }
  }

  // --- observability -------------------------------------------------------

  double fleet_mean_utilization() const {
    double sum = 0;
    int n = 0;
    for (const auto& p : peers) {
      if (p.kind != Peer::Kind::kWorker || p.fd < 0 || p.finished || !p.has_pulse) continue;
      sum += p.pulse.ema_utilization;
      ++n;
    }
    return n > 0 ? sum / n : -1;
  }

  void observe_fleet() {
    if (admission_last.seconds() < 1.0) return;
    admission_last.reset();
    const double mean = fleet_mean_utilization();
    if (mean >= 0) admission.observe_utilization(mean);
  }

  obs::ServerSample metrics_sample() const {
    obs::ServerSample s;
    s.queued = queued_count();
    s.running = uint64_t(running_count());
    for (const auto& p : peers)
      if (p.kind == Peer::Kind::kWorker && p.fd >= 0 && !p.finished) ++s.workers;
    s.running_limit = admission.running_limit();
    s.max_queued = admission.options().max_queued;
    const double mean = fleet_mean_utilization();
    s.fleet_utilization_ema = mean >= 0 ? mean : 0;
    s.submitted_total = submitted;
    s.rejected_total = rejected;
    s.cancelled_total = cancelled;
    s.completed_total = completed;
    s.failed_total = failed;
    for (const auto& t : shares.shares()) {
      obs::TenantSample ts;
      ts.tenant = t.tenant;
      ts.weight = t.weight;
      ts.virtual_time = t.virtual_time;
      ts.tasks_charged = t.tasks_charged;
      for (const auto& [id, j] : jobs) {
        if (j.spec.tenant != t.tenant || j.internal()) continue;
        if (j.state == JobState::kQueued) ++ts.queued;
        if (j.state == JobState::kRunning) ++ts.running;
      }
      s.tenants.push_back(std::move(ts));
    }
    return s;
  }

  obs::CacheSample cache_sample() const {
    obs::CacheSample s;
    auto tier = [](const char* name, const cache::TierStats& t) {
      obs::CacheTierSample o;
      o.tier = name;
      o.memory_hits = t.memory_hits;
      o.disk_hits = t.disk_hits;
      o.misses = t.misses;
      o.evictions = t.evictions;
      o.insertions = t.insertions;
      o.corrupt_dropped = t.corrupt_dropped;
      o.disk_bytes_written = t.disk_bytes_written;
      o.memory_entries = t.memory_entries;
      o.memory_bytes = t.memory_bytes;
      return o;
    };
    if (plan_cache != nullptr) s.tiers.push_back(tier("plan", plan_cache->stats()));
    if (result_cache != nullptr) {
      s.tiers.push_back(tier("result", result_cache->stats()));
      s.superset_hits = result_cache->superset_hits();
    }
    s.planner_invocations = path::find_path_invocations();
    s.served_results = served_from_cache;
    return s;
  }

  void maybe_write_metrics(bool force = false) {
    if (opt.metrics_interval_seconds <= 0 || opt.metrics_out.empty()) return;
    if (!force && metrics_last.seconds() < opt.metrics_interval_seconds) return;
    metrics_last.reset();
    obs::MetricsRegistry reg;
    obs::fill_server_metrics(reg, metrics_sample());
    obs::fill_cache_metrics(reg, cache_sample());
    reg.write_files(opt.metrics_out);  // best effort
  }

  std::string job_status_json(const ServerJob& j) const {
    std::ostringstream o;
    o.setf(std::ios::fixed);
    o << std::setprecision(3);
    const uint64_t done_tasks =
        j.ledger != nullptr ? j.ledger->tasks_done()
                            : (j.state == JobState::kDone ? j.total : 0);
    o << "{\"id\":" << j.id << ",\"name\":\"" << json_escape(j.spec.name) << "\",\"tenant\":\""
      << json_escape(j.spec.tenant) << "\",\"weight\":" << j.spec.weight
      << ",\"priority\":" << j.spec.priority << ",\"state\":\"" << job_state_name(j.state)
      << "\",\"total\":" << j.total << ",\"tasks_done\":" << done_tasks << ",\"progress\":"
      << (j.total > 0 ? double(done_tasks) / double(j.total)
                      : (j.state == JobState::kDone ? 1.0 : 0.0));
    if (j.spec.kind == "query") {
      // Query parents progress group by group; per-lease progress lives on
      // the (hidden) child actually holding the ledger.
      o << ",\"kind\":\"query\",\"groups\":" << j.query_groups
        << ",\"groups_done\":" << j.next_group
        << ",\"groups_from_cache\":" << j.query_cache_groups
        << ",\"group_contractions\":" << j.query_contractions;
    }
    if (j.ledger != nullptr) {
      o << ",\"pending_ranges\":" << j.ledger->pending_ranges()
        << ",\"active_leases\":" << j.ledger->active_leases();
      // Per-job progress straight from the live pulses: which workers have
      // contributed, and how much, as of their latest kRangeDone.
      o << ",\"workers\":[";
      bool first = true;
      for (const auto& [wid, tel] : j.worker_tel) {
        o << (first ? "" : ",") << "{\"id\":" << wid << ",\"tasks_run\":" << tel.tasks_run
          << ",\"leases\":" << tel.leases << ",\"backend\":\"" << json_escape(tel.backend)
          << "\"}";
        first = false;
      }
      o << "]";
    }
    if (j.state == JobState::kRunning)
      o << ",\"wall_seconds\":" << j.run_wall.seconds();
    else if (terminal(j.state))
      o << ",\"wall_seconds\":" << j.result.wall_seconds;
    if (terminal(j.state) && !j.result.error.empty())
      o << ",\"error\":\"" << json_escape(j.result.error) << "\"";
    o << "}";
    return o.str();
  }

  std::string server_status_json() const {
    std::ostringstream o;
    o.setf(std::ios::fixed);
    o << std::setprecision(3);
    o << "{\"build\":" << obs::build_info_json() << ",\"service\":\"ltns-jobserver\""
      << ",\"shutting_down\":" << (shutting_down ? "true" : "false")
      << ",\"queued\":" << queued_count() << ",\"running\":" << running_count()
      << ",\"submitted_total\":" << submitted << ",\"rejected_total\":" << rejected
      << ",\"completed_total\":" << completed << ",\"failed_total\":" << failed
      << ",\"cancelled_total\":" << cancelled
      << ",\"late_frames_dropped\":" << late_frames_dropped
      << ",\"served_from_cache_total\":" << served_from_cache;
    if (plan_cache != nullptr || result_cache != nullptr) {
      auto tier_json = [&o](const char* name, const cache::TierStats& t, bool lead_comma) {
        o << (lead_comma ? "," : "") << "\"" << name << "\":{\"memory_hits\":" << t.memory_hits
          << ",\"disk_hits\":" << t.disk_hits << ",\"misses\":" << t.misses
          << ",\"evictions\":" << t.evictions << ",\"insertions\":" << t.insertions
          << ",\"corrupt_dropped\":" << t.corrupt_dropped << ",\"memory_entries\":"
          << t.memory_entries << "}";
      };
      o << ",\"cache\":{\"dir\":\"" << json_escape(opt.cache.cache_dir) << "\"";
      if (plan_cache != nullptr) tier_json("plan", plan_cache->stats(), true);
      if (result_cache != nullptr) tier_json("result", result_cache->stats(), true);
      o << "}";
    }
    const double mean = fleet_mean_utilization();
    o << ",\"admission\":{\"running_limit\":" << admission.running_limit()
      << ",\"min_running\":" << admission.options().min_running
      << ",\"max_running\":" << admission.options().max_running
      << ",\"max_queued\":" << admission.options().max_queued
      << ",\"fleet_utilization_ema\":" << (mean >= 0 ? mean : 0) << "}";
    o << ",\"tenants\":[";
    bool first = true;
    for (const auto& t : shares.shares()) {
      o << (first ? "" : ",") << "{\"tenant\":\"" << json_escape(t.tenant)
        << "\",\"weight\":" << t.weight << ",\"virtual_time\":" << t.virtual_time
        << ",\"tasks_charged\":" << t.tasks_charged << "}";
      first = false;
    }
    o << "],\"workers\":[";
    first = true;
    for (const auto& p : peers) {
      if (p.kind != Peer::Kind::kWorker) continue;
      o << (first ? "" : ",") << "{\"id\":" << p.worker_id << ",\"backend\":\""
        << (p.backend.empty() ? "?" : json_escape(p.backend))
        << "\",\"alive\":" << (p.fd >= 0 && !p.finished ? "true" : "false")
        << ",\"parked\":" << (p.parked ? "true" : "false")
        << ",\"draining\":" << (p.draining ? "true" : "false")
        << ",\"stalled\":" << (p.stalled ? "true" : "false")
        << ",\"last_seen_seconds\":" << p.last_seen.seconds();
      if (p.has_pulse)
        o << ",\"utilization_ema\":" << p.pulse.ema_utilization
          << ",\"tasks_run\":" << p.pulse.tasks_run;
      o << "}";
      first = false;
    }
    o << "],\"jobs\":[";
    first = true;
    for (const auto& [id, j] : jobs) {
      if (j.internal()) continue;  // children are an implementation detail
      o << (first ? "" : ",") << job_status_json(j);
      first = false;
    }
    o << "]}";
    return o.str();
  }

  // --- main loop -----------------------------------------------------------

  void accept_peer() {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;
    set_rcv_timeout(fd, std::max(1.0, opt.stall_timeout_seconds));
    Peer p;
    p.fd = fd;
    peers.push_back(std::move(p));
  }

  std::string run() {
    std::signal(SIGPIPE, SIG_IGN);
    resume_scan();
    for (;;) {
      maybe_start_jobs();
      serve_parked();

      if (shutting_down && running_count() == 0) {
        for (auto& p : peers) {
          if (p.kind != Peer::Kind::kWorker || p.fd < 0 || p.finished || p.draining) continue;
          if (!p.parked) continue;  // computing workers get kDrain on next request
          p.parked = false;
          try {
            dispatch(p);  // done + shutting down -> sends kDrain
          } catch (...) {
            drop_peer(p);
          }
        }
        bool settled = true;
        for (const auto& p : peers)
          if (p.fd >= 0 && !p.finished) settled = false;
        if (settled) break;
      }

      // Prune spent control connections (a dashboard polling status every
      // second must not grow the peer table without bound).
      peers.erase(std::remove_if(peers.begin(), peers.end(),
                                 [](const Peer& p) {
                                   return p.fd < 0 && p.finished &&
                                          p.kind != Peer::Kind::kWorker;
                                 }),
                  peers.end());

      // Stall quarantine: a silent worker has its leases revoked across
      // every running job; if it recovers, its late results drop cleanly.
      const double stall = opt.stall_timeout_seconds;
      for (auto& p : peers) {
        if (p.kind != Peer::Kind::kWorker || p.fd < 0 || p.finished) continue;
        if (stall > 0 && !p.stalled && !p.parked && p.last_seen.seconds() > stall) {
          p.stalled = true;
          for (auto& [id, j] : jobs)
            if (j.state == JobState::kRunning && j.ledger != nullptr)
              j.ledger->revoke_worker(p.worker_id, /*lost=*/false);
        }
      }

      observe_fleet();
      maybe_write_metrics();

      std::vector<pollfd> pfds;
      std::vector<size_t> owner;
      pfds.push_back({listen_fd, POLLIN, 0});
      owner.push_back(size_t(-1));
      for (size_t i = 0; i < peers.size(); ++i) {
        if (peers[i].fd < 0) continue;
        pfds.push_back({peers[i].fd, POLLIN, 0});
        owner.push_back(i);
      }
      ::poll(pfds.data(), nfds_t(pfds.size()), 25);
      for (size_t k = 0; k < pfds.size(); ++k) {
        if ((pfds[k].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
        if (owner[k] == size_t(-1)) {
          accept_peer();
          continue;
        }
        Peer& p = peers[owner[k]];
        if (p.fd < 0) continue;
        try {
          Frame f;
          if (!read_frame(p.fd, &f)) {
            drop_peer(p);
            continue;
          }
          p.last_seen.reset();
          p.stalled = false;
          handle_frame(p, f);
        } catch (const std::exception& e) {
          (void)e;
          drop_peer(p);
        }
      }
    }
    maybe_write_metrics(/*force=*/true);
    for (auto& p : peers) {
      if (p.fd >= 0) ::close(p.fd);
      p.fd = -1;
    }
    return fatal;
  }
};

}  // namespace

std::string JobServer::serve() {
  ServerImpl impl(listen_fd_, opt_);
  return impl.run();
}

// --- fleet worker ----------------------------------------------------------

namespace {

// Everything a fleet worker caches per job id: the replanned contraction,
// the fused plan, a worker-local backend instance, and the cumulative
// telemetry it ships with every kRangeDone.
struct WorkerJobCtx {
  std::unique_ptr<Prepared> p;
  exec::FusedPlan fused_plan;
  bool has_fused = false;
  std::unique_ptr<device::DeviceBackend> backend;
  std::string backend_name;
  uint32_t executor = 0;
  uint64_t grain = 1;
  ShardTelemetry tel;
};

}  // namespace

int serve_fleet_worker(int fd, int worker_id, double heartbeat_seconds,
                       const std::string& backend_override) {
  const ChaosHooks chaos = chaos_from_env(worker_id);
  Timer wall;

  std::mutex write_mu;
  auto send = [fd, &write_mu](FrameType t, const ByteWriter& w) {
    std::lock_guard<std::mutex> lock(write_mu);
    write_frame(fd, t, w);
  };
  std::mutex pulse_mu;
  WorkerPulse pulse;
  std::string pulse_backend = backend_override.empty() ? "host" : backend_override;
  std::atomic<bool> stop{false};
  std::thread heartbeat([&] {
    if (heartbeat_seconds <= 0) return;
    Timer since;
    while (!stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      if (since.seconds() < heartbeat_seconds) continue;
      since.reset();
      try {
        ByteWriter hb;
        {
          std::lock_guard<std::mutex> lock(pulse_mu);
          hb.put_string(pulse_backend);
          put_pulse(hb, pulse);
        }
        send(FrameType::kHeartbeat, hb);
      } catch (...) {
        return;  // server gone; the compute loop will notice too
      }
    }
  });
  struct JoinGuard {
    std::atomic<bool>& stop;
    std::thread& t;
    ~JoinGuard() {
      stop.store(true);
      if (t.joinable()) t.join();
    }
  } guard{stop, heartbeat};

  int rc = 0;
  try {
    std::map<uint64_t, std::unique_ptr<WorkerJobCtx>> ctxs;
    std::unique_ptr<ThreadPool> pool;
    std::unique_ptr<runtime::SliceScheduler> sched;
    uint64_t ranges_done = 0;

    for (;;) {
      {
        ByteWriter w;
        w.put<int32_t>(int32_t(worker_id));
        send(FrameType::kLeaseRequest, w);
      }
      // Between the request and its lease, kJob frames describe jobs this
      // worker has not planned yet.
      Frame f;
      bool drained = false;
      for (;;) {
        if (!read_frame(fd, &f)) throw std::runtime_error("server closed mid-run");
        if (f.type == FrameType::kDrain) {
          drained = true;
          break;
        }
        if (f.type == FrameType::kError) {
          ByteReader r(f.payload);
          throw std::runtime_error("server error: " + r.get_string());
        }
        if (f.type == FrameType::kJob) {
          ByteReader jr(f.payload);
          Job job = get_job(jr);
          auto ctx = std::make_unique<WorkerJobCtx>();
          auto circ = circuit::circuit_from_string(job.circuit_text);
          std::vector<int> bits;
          bits.reserve(job.bits.size());
          for (char ch : job.bits) bits.push_back(ch == '1');
          ctx->p = prepare_job(circ, bits, job.target_log2size, job.plan_seed, job.open_qubits);
          if (ctx->p->plan.num_slices() != int(job.num_slices))
            throw std::runtime_error(
                "plan mismatch for job " + std::to_string(job.job_id) + ": local |S| = " +
                std::to_string(ctx->p->plan.num_slices()) + ", server expected " +
                std::to_string(job.num_slices));
          // Override keeps the job's precision unless it pins its own.
          ctx->backend_name = device::merge_backend_override(job.backend, backend_override);
          ctx->backend = device::make_backend(ctx->backend_name);
          if (job.fused != 0) {
            ctx->fused_plan = exec::plan_fused(ctx->p->plan.stem, ctx->p->plan.slices.to_vector(),
                                               size_t(job.ldm_elems));
            ctx->has_fused = true;
          }
          ctx->executor = job.executor;
          ctx->grain = job.grain;
          ctx->tel.shard = worker_id;
          ctx->tel.backend = ctx->backend_name;
          if (pool == nullptr) {
            const int workers = job.workers > 0 ? job.workers : 0;  // 0 = hardware
            pool = std::make_unique<ThreadPool>(workers);
            sched = std::make_unique<runtime::SliceScheduler>(workers);
          }
          ctxs[job.job_id] = std::move(ctx);
          continue;
        }
        if (f.type == FrameType::kJobLease) break;
        throw std::runtime_error("unexpected frame while awaiting a job lease");
      }
      if (drained) break;

      ByteReader r(f.payload);
      const auto job_id = r.get<uint64_t>();
      const auto lease = r.get<uint64_t>();
      const auto first = r.get<uint64_t>();
      const auto count = r.get<uint64_t>();
      auto it = ctxs.find(job_id);
      if (it == ctxs.end())
        throw std::runtime_error("lease for job " + std::to_string(job_id) +
                                 " arrived before its job frame");
      WorkerJobCtx& ctx = *it->second;
      if (chaos.kill_after_ranges >= 0 && ranges_done >= uint64_t(chaos.kill_after_ranges)) {
        // Die exactly like a SIGKILLed node — no goodbye, holding a lease —
        // so the kill exercises the per-job revoke + requeue path.
        ::raise(SIGKILL);
      }

      ShardStreamOptions so;
      so.executor = exec::SliceExecutor(ctx.executor);
      so.grain = ctx.grain;
      so.pool = pool.get();
      so.scheduler = sched.get();
      so.fused = ctx.has_fused ? &ctx.fused_plan : nullptr;
      so.backend = ctx.backend.get();
      so.backend_name = ctx.backend_name;
      auto leaves = [&ln = ctx.p->lowered](tn::VertId v) -> const exec::Tensor& {
        return ln.tensors[size_t(v)];
      };

      obs::TraceScope lease_tr(obs::EventKind::kLeaseWork, lease, first, count);
      for (const auto& block : aligned_blocks(first, count)) {
        auto partial = reduce_block(block, *ctx.p->plan.tree, leaves, ctx.p->plan.slices, so,
                                    &ctx.tel);
        {
          // Refresh the heartbeat sample with fleet-wide cumulative counts
          // (sums over every job this worker has touched).
          std::lock_guard<std::mutex> lock(pulse_mu);
          pulse.ema_utilization = ctx.tel.executor.ema_utilization;
          uint64_t tasks = 0, leases = 0;
          double bytes = 0, ns = 0;
          for (const auto& [id, c] : ctxs) {
            tasks += c->tel.tasks_run;
            leases += c->tel.leases;
            bytes += c->tel.executor.device.total_transfer_bytes();
            ns += c->tel.executor.device.ns_to_device + c->tel.executor.device.ns_to_host;
          }
          pulse.tasks_run = tasks;
          pulse.leases_completed = leases;
          pulse.device_bytes = bytes;
          pulse.device_ns = ns;
          pulse.wall_seconds = wall.seconds();
          pulse_backend = ctx.backend_name;
        }
        if (chaos.sleep_ms_per_task > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(
              int64_t(chaos.sleep_ms_per_task * 1000 * double(block.count()))));
        }
        ByteWriter w;
        w.put<uint64_t>(lease);
        w.put<int32_t>(int32_t(block.level));
        w.put<uint64_t>(block.index);
        put_tensor(w, partial);
        send(FrameType::kLeaseBlock, w);
      }
      ++ranges_done;
      ++ctx.tel.leases;
      ctx.tel.wall_seconds = wall.seconds();
      {
        // kRangeDone doubles as the per-job telemetry carrier in fleet
        // mode: the server keeps the latest cumulative snapshot per
        // (job, worker) and folds them into the job's result record.
        ByteWriter w;
        w.put<uint64_t>(lease);
        put_telemetry(w, ctx.tel);
        send(FrameType::kRangeDone, w);
      }
    }

    stop.store(true);
    if (heartbeat.joinable()) heartbeat.join();
    send(FrameType::kDone, ByteWriter{});
    // Linger until the server closes its end: exiting with unread bytes in
    // our receive buffer would RST the connection under the kDone frame.
    try {
      Frame f;
      while (read_frame(fd, &f)) {
      }
    } catch (...) {
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet worker %d: %s\n", worker_id, e.what());
    send_error(fd, e.what());
    rc = 1;
  }
  return rc;
}

}  // namespace ltns::dist
