#include "dist/shard_merge.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace ltns::dist {

namespace {

// Same key scheme as ReductionTree: (level, idx) with idx in the low bits.
uint64_t node_key(int level, uint64_t idx) { return (uint64_t(level) << 57) | idx; }

void merge_into(exec::Tensor& left, const exec::Tensor& right) {
  if (left.ixs() != right.ixs() || left.size() != right.size())
    throw std::runtime_error("dist merge: shard partials disagree on tensor layout");
  exec::cfloat* a = left.raw();
  const exec::cfloat* b = right.raw();
  for (size_t i = 0; i < left.size(); ++i) a[i] += b[i];
}

}  // namespace

ShardMerger::ShardMerger(uint64_t total) : total_(total) {
  assert(total < (uint64_t(1) << 57));
  root_set_ = total == 0;  // empty range: root is the empty tensor
}

bool ShardMerger::subtree_nonempty(int level, uint64_t idx) const {
  return level < 64 && (idx << level) < total_;
}

void ShardMerger::add(int level, uint64_t index, exec::Tensor partial) {
  // (level, index) comes off the wire: validate (overflow-safely) that the
  // block lies inside [0, total) rather than assert, so a corrupt or
  // version-skewed frame is a clean protocol error in release builds too.
  if (level < 0 || level >= 64 || total_ == 0 || index > ((total_ - 1) >> level))
    throw std::runtime_error("dist merge: block outside the task range");
  int l = level;
  uint64_t idx = index;
  exec::Tensor r = std::move(partial);
  for (;;) {
    if (idx == 0 && (l >= 64 || (uint64_t(1) << l) >= total_)) {
      // This node covers the whole range: it is the root.
      if (root_set_) throw std::runtime_error("dist merge: duplicate root contribution");
      root_ = std::move(r);
      root_set_ = true;
      root_level_ = l;
      return;
    }
    if (!subtree_nonempty(l, idx ^ 1)) {
      // Sibling range is empty (ragged right edge): promote unchanged.
      ++l;
      idx >>= 1;
      continue;
    }
    auto it = pending_.find(node_key(l, idx ^ 1));
    if (it == pending_.end()) {
      if (!pending_.emplace(node_key(l, idx), std::move(r)).second)
        throw std::runtime_error("dist merge: duplicate block contribution");
      return;
    }
    exec::Tensor sibling = std::move(it->second);
    pending_.erase(it);
    // The even-index node is always the left operand — the same fixed
    // float-addition order the in-process ReductionTree uses.
    if (idx & 1) {
      merge_into(sibling, r);
      r = std::move(sibling);
    } else {
      merge_into(r, sibling);
    }
    ++merges_;
    ++l;
    idx >>= 1;
  }
}

bool ShardMerger::complete() const { return root_set_ && pending_.empty(); }

std::vector<MergedBlock> ShardMerger::drain_blocks() {
  std::vector<MergedBlock> out;
  out.reserve(pending_.size() + 1);
  for (auto& [key, t] : pending_)
    out.push_back({int(key >> 57), key & ((uint64_t(1) << 57) - 1), std::move(t)});
  pending_.clear();
  if (root_set_ && total_ > 0) {
    out.push_back({root_level_, 0, std::move(root_)});
    root_set_ = false;
  }
  std::sort(out.begin(), out.end(), [](const MergedBlock& a, const MergedBlock& b) {
    return (a.index << a.level) < (b.index << b.level);
  });
  return out;
}

exec::Tensor ShardMerger::take_root() {
  assert(complete() && "shard merge incomplete");
  root_set_ = false;
  return std::move(root_);
}

}  // namespace ltns::dist
