// Length-prefixed wire protocol for the multi-process shard driver.
//
// Every message is one frame: a fixed header {magic, version, endianness,
// type, payload_len} followed by payload_len bytes. Payloads are built with
// ByteWriter/ByteReader, which memcpy PODs field by field — floats and
// doubles travel as their raw bit patterns, so a tensor or telemetry block
// round-trips BIT-EXACTLY (the property the cross-process reduction relies
// on). That makes the format arch-specific by design; the header's
// endianness byte turns a heterogeneous-fleet mistake into a clean
// "endianness mismatch" error instead of silently garbled floats, and the
// version field rejects skewed binaries.
//
// Reader behaviour on a dead peer: read_frame returns false on a clean EOF
// at a frame boundary and throws std::runtime_error on a truncated frame or
// corrupt header — so a killed worker surfaces as an error, never a hang
// (the socket closes with the process).
//
// These serializers are also ON-DISK ABI: the durable run ledger
// (dist/checkpoint.hpp) journals completed ranges with put_tensor /
// ByteWriter framing, so a checkpoint written by one build replays
// bit-exactly under the same rules the sockets enforce (same-arch,
// same-endian — the journal header carries the same endianness marker).
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "exec/tensor.hpp"
#include "exec/tree_executor.hpp"
#include "runtime/executor_stats.hpp"
#include "runtime/memory_stats.hpp"

namespace ltns::dist {

inline constexpr uint32_t kWireMagic = 0x4C544E53u;  // "LTNS"
// v2: endian-tagged header + the elastic lease/heartbeat frame vocabulary.
// v3: DeviceStats in exec-stats/snapshot payloads, backend name in
//     telemetry and heartbeat frames (heterogeneous device fleets).
// v4: WorkerPulse after the backend name in heartbeat payloads (live
//     per-worker metrics), trace flag in Job, kTrace frame (trace-buffer
//     chunks shipped before the final telemetry).
// v5: the multi-tenant job service (dist/server.hpp). Job grew a job_id
//     head field; new control frames kSubmit/kSubmitReply/kJobStatus/
//     kCancel/kFetchResult/kResult/kServerReply/kShutdown (client API) and
//     kWelcome/kJobLease (fleet workers multiplexing leases across
//     concurrent jobs).
// v6: the batched query engine (src/query/). Job grew an open-qubit list
//     (workers contract rank-|open| batch shards); JobSpec grew
//     kind/query_text/max_open/amp_mode (kind "query" submits a whole
//     query file as one job); JobResultRecord grew kind + the per-query
//     result list. All appended at the end of their payloads.
// v7: mixed precision. JobSpec grew a `precision` tail field ("fp32" |
//     "bf16"); the server folds it into the backend SPEC it hands workers
//     (Job.backend already carries "name[+precision]" strings, so Job
//     itself is unchanged). Worker --backend overrides preserve the job's
//     precision unless they pin one explicitly
//     (device::merge_backend_override).
inline constexpr uint16_t kWireVersion = 7;

// Header endianness markers; read_frame rejects a frame whose marker does
// not match the host's.
inline constexpr uint8_t kWireEndianLittle = 1;
inline constexpr uint8_t kWireEndianBig = 2;

inline uint8_t host_endian() {
  const uint32_t probe = 1;
  uint8_t low = 0;
  std::memcpy(&low, &probe, 1);
  return low == 1 ? kWireEndianLittle : kWireEndianBig;
}

enum class FrameType : uint8_t {
  kHello = 1,      // worker -> coordinator: protocol version
  kJob = 2,        // coordinator -> worker: circuit + plan options + window
  kBlock = 3,      // worker -> coordinator: one aligned-block partial tensor
  kTelemetry = 4,  // worker -> coordinator: per-shard telemetry
  kDone = 5,       // worker -> coordinator: shard finished cleanly
  kError = 6,      // either direction: human-readable failure
  // Elastic mode (see dist/elastic.hpp): workers lease bounded task ranges
  // instead of receiving one fixed window.
  kLeaseRequest = 7,   // worker -> coordinator: idle, wants a range
  kLease = 8,          // coordinator -> worker: {lease id, first, count}
  kLeaseBlock = 9,     // worker -> coordinator: kBlock + the lease id tag
  kRangeDone = 10,     // worker -> coordinator: lease's blocks all shipped
  kHeartbeat = 11,     // worker -> coordinator: liveness while computing
  kDrain = 12,         // coordinator -> worker: no work left; report + exit
  kStatusRequest = 13, // status probe -> coordinator: dump live state
  kStatus = 14,        // coordinator -> status probe: JSON snapshot
  kTrace = 15,         // worker -> coordinator: serialized trace-buffer chunk
  // Multi-tenant job service (v5, dist/server.hpp). Client control plane:
  kSubmit = 16,       // client -> server: JobSpec (queue a named job)
  kSubmitReply = 17,  // server -> client: {ok, job_id, message}
  kJobStatus = 18,    // client -> server: job id (0 = whole-server view);
                      //   the server answers with a kStatus JSON frame
  kCancel = 19,       // client -> server: job id to cancel
  kFetchResult = 20,  // client -> server: {job id, wait flag}
  kResult = 21,       // server -> client: terminal JobResultRecord
  kServerReply = 22,  // server -> client: {ok, message} (cancel/shutdown)
  kShutdown = 23,     // client -> server: finish running jobs, drain, exit
  // Fleet workers (one long-lived fleet multiplexed across jobs):
  kWelcome = 24,   // server -> worker: {worker_id}; marks a fleet server
  kJobLease = 25,  // server -> worker: {job_id} + the kLease triple; the
                   //   worker plans unseen job ids from the matching kJob
};

// --- payload (de)serialization -------------------------------------------

class ByteWriter {
 public:
  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable<T>::value, "POD only");
    put_bytes(&v, sizeof(T));
  }
  void put_bytes(const void* p, size_t n) {
    if (n == 0) return;  // empty payload: nothing to copy (and p may be null)
    const size_t old = buf_.size();
    buf_.resize(old + n);
    std::memcpy(buf_.data() + old, p, n);
  }
  void put_string(const std::string& s) {
    put<uint64_t>(s.size());
    put_bytes(s.data(), s.size());
  }
  const std::vector<uint8_t>& buffer() const { return buf_; }

 private:
  std::vector<uint8_t> buf_;
};

class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : p_(data), end_(data + size) {}
  explicit ByteReader(const std::vector<uint8_t>& v) : ByteReader(v.data(), v.size()) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable<T>::value, "POD only");
    T v;
    get_bytes(&v, sizeof(T));
    return v;
  }
  void get_bytes(void* out, size_t n) {
    if (size_t(end_ - p_) < n) throw std::runtime_error("dist wire: truncated payload");
    std::memcpy(out, p_, n);
    p_ += n;
  }
  std::string get_string() {
    auto n = get<uint64_t>();
    if (size_t(end_ - p_) < n) throw std::runtime_error("dist wire: truncated string");
    std::string s(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return s;
  }
  bool exhausted() const { return p_ == end_; }
  size_t remaining() const { return size_t(end_ - p_); }

 private:
  const uint8_t* p_;
  const uint8_t* end_;
};

// Per-shard telemetry shipped back to the coordinator and aggregated into
// the sharded run result — the cross-process counterpart of the fields a
// SliceRunResult carries.
struct ShardTelemetry {
  int32_t shard = 0;
  uint64_t first = 0;
  uint64_t count = 0;  // static window size; 0 under the elastic driver
  uint64_t tasks_run = 0;
  uint64_t leases = 0;         // ranges this worker completed (elastic mode)
  uint64_t reduce_merges = 0;  // worker-local tournament merges
  double wall_seconds = 0;
  std::string backend;         // device backend the worker ran on ("host", ...)
  runtime::ExecutorSnapshot executor;
  runtime::MemoryStats memory;
  exec::ExecStats exec;
};

// Live per-worker metrics sample, carried by every kHeartbeat frame (v4+):
// the worker's compute thread refreshes a shared copy after each finished
// block; the heartbeat thread serializes whatever is current. The
// coordinator keeps the latest sample per peer and surfaces it through the
// status probe's `metrics` section and the periodic --metrics-interval
// snapshot.
struct WorkerPulse {
  double ema_utilization = 0;   // in-process scheduler busy-fraction EMA
  uint64_t tasks_run = 0;       // slice subtasks finished so far
  uint64_t leases_completed = 0;
  double device_bytes = 0;      // total transfer bytes (both directions)
  double device_ns = 0;         // total transfer wall-ns
  double wall_seconds = 0;      // time since the worker started computing
};

void put_tensor(ByteWriter& w, const exec::Tensor& t);
exec::Tensor get_tensor(ByteReader& r);

void put_pulse(ByteWriter& w, const WorkerPulse& p);
WorkerPulse get_pulse(ByteReader& r);

void put_exec_stats(ByteWriter& w, const exec::ExecStats& s);
exec::ExecStats get_exec_stats(ByteReader& r);

void put_snapshot(ByteWriter& w, const runtime::ExecutorSnapshot& s);
runtime::ExecutorSnapshot get_snapshot(ByteReader& r);

void put_memory_stats(ByteWriter& w, const runtime::MemoryStats& m);
runtime::MemoryStats get_memory_stats(ByteReader& r);

void put_telemetry(ByteWriter& w, const ShardTelemetry& t);
ShardTelemetry get_telemetry(ByteReader& r);

// The one way per-shard telemetry folds into run-level aggregates, shared
// by exec::run_sharded, the TCP coordinator and the job server (each used
// to hand-roll the same merge loop, which is how aggregation bugs drift).
struct AggregatedTelemetry {
  exec::ExecStats stats;                    // merged over shards
  runtime::ExecutorSnapshot executor;       // merged over shards
  runtime::MemoryStats memory;
  uint64_t tasks_run = 0;
  uint64_t reduce_merges = 0;               // worker-local merges only
};
AggregatedTelemetry aggregate_telemetry(const std::vector<ShardTelemetry>& shards);

// --- framing over a file descriptor (socketpair or TCP socket) -----------

struct Frame {
  FrameType type = FrameType::kError;
  std::vector<uint8_t> payload;
};

// Writes one frame; throws std::runtime_error on a write error (EPIPE when
// the peer died — callers ignore SIGPIPE).
void write_frame(int fd, FrameType type, const void* payload, size_t size);
inline void write_frame(int fd, FrameType type, const ByteWriter& w) {
  write_frame(fd, type, w.buffer().data(), w.buffer().size());
}

// Reads one frame. Returns false on clean EOF before a header (peer closed
// between frames); throws on truncation, bad magic/version, or oversized
// payloads.
bool read_frame(int fd, Frame* out);

}  // namespace ltns::dist
