// Coordinator-side finish of the global reduction tournament.
//
// Workers ship one partial tensor per tournament-aligned block of their
// shard window; each partial is bitwise identical to the corresponding
// internal node of the single-process ReductionTree over [0, total)
// (see shard_plan.hpp). The ShardMerger completes the upper levels of that
// same tree: a node merges with its sibling as `left += right` (even index
// on the left), and a node whose sibling range falls outside [0, total)
// promotes unchanged — exactly ReductionTree's rules, so the root is
// bitwise identical to the single-process run no matter how many shards
// contributed or in which order their frames arrived.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "exec/tensor.hpp"

namespace ltns::dist {

// One maximally-merged block as drained from a ShardMerger — the journal
// compactor's unit of storage (checkpoint.cpp).
struct MergedBlock {
  int level = 0;
  uint64_t index = 0;
  exec::Tensor partial;
};

class ShardMerger {
 public:
  // Merges aligned-block partials of the task range [0, total).
  explicit ShardMerger(uint64_t total);

  // Contributes the partial of block (level, index); performs every merge
  // that becomes ready. Each block of the tiling must be added exactly once.
  void add(int level, uint64_t index, exec::Tensor partial);

  // True once every task's contribution is folded into the root.
  bool complete() const;
  uint64_t merges() const { return merges_; }

  // The accumulated tensor; only valid when complete().
  exec::Tensor take_root();

  // Journal-compaction support: drains every held partial — the pending
  // interior nodes plus the root when set — ordered by task range. Because
  // add() greedily performs every ready merge, re-adding the drained
  // blocks to a fresh merger reproduces this merger's state (and
  // ultimately the same root) bit for bit; the drained set is the
  // maximally-merged representation of everything contributed so far.
  // Leaves this merger empty.
  std::vector<MergedBlock> drain_blocks();

 private:
  bool subtree_nonempty(int level, uint64_t idx) const;

  uint64_t total_ = 0;
  std::unordered_map<uint64_t, exec::Tensor> pending_;  // key: (level, idx)
  exec::Tensor root_;
  bool root_set_ = false;
  int root_level_ = 0;  // level the root was formed at (drain_blocks)
  uint64_t merges_ = 0;
};

}  // namespace ltns::dist
