// Coordinator-side finish of the global reduction tournament.
//
// Workers ship one partial tensor per tournament-aligned block of their
// shard window; each partial is bitwise identical to the corresponding
// internal node of the single-process ReductionTree over [0, total)
// (see shard_plan.hpp). The ShardMerger completes the upper levels of that
// same tree: a node merges with its sibling as `left += right` (even index
// on the left), and a node whose sibling range falls outside [0, total)
// promotes unchanged — exactly ReductionTree's rules, so the root is
// bitwise identical to the single-process run no matter how many shards
// contributed or in which order their frames arrived.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "exec/tensor.hpp"

namespace ltns::dist {

class ShardMerger {
 public:
  // Merges aligned-block partials of the task range [0, total).
  explicit ShardMerger(uint64_t total);

  // Contributes the partial of block (level, index); performs every merge
  // that becomes ready. Each block of the tiling must be added exactly once.
  void add(int level, uint64_t index, exec::Tensor partial);

  // True once every task's contribution is folded into the root.
  bool complete() const;
  uint64_t merges() const { return merges_; }

  // The accumulated tensor; only valid when complete().
  exec::Tensor take_root();

 private:
  bool subtree_nonempty(int level, uint64_t idx) const;

  uint64_t total_ = 0;
  std::unordered_map<uint64_t, exec::Tensor> pending_;  // key: (level, idx)
  exec::Tensor root_;
  bool root_set_ = false;
  uint64_t merges_ = 0;
};

}  // namespace ltns::dist
