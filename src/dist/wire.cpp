#include "dist/wire.hpp"

#include <cerrno>
#include <cstring>
#include <unistd.h>

#include "obs/trace.hpp"

namespace ltns::dist {

namespace {

// 1 TiB payload cap: far above any slice tensor, small enough to catch a
// corrupt length before it turns into an allocation bomb.
constexpr uint64_t kMaxPayload = uint64_t(1) << 40;

struct FrameHeader {
  uint32_t magic;
  uint16_t version;
  uint8_t endian;  // kWireEndianLittle/Big; must equal the reader's host
  uint8_t type;
  uint64_t payload_len;
};
static_assert(sizeof(FrameHeader) == 16, "frame header layout is wire ABI");

[[noreturn]] void fail_errno(const char* what) {
  throw std::runtime_error(std::string("dist wire: ") + what + ": " + std::strerror(errno));
}

void write_exact(int fd, const void* buf, size_t n) {
  const auto* p = static_cast<const uint8_t*>(buf);
  while (n > 0) {
    ssize_t k = ::write(fd, p, n);
    if (k < 0) {
      if (errno == EINTR) continue;
      fail_errno("write");
    }
    p += k;
    n -= size_t(k);
  }
}

// Returns false only when EOF hits before the first byte and `eof_ok` is
// set; EOF mid-buffer always throws (a peer died inside a frame).
bool read_exact(int fd, void* buf, size_t n, bool eof_ok) {
  auto* p = static_cast<uint8_t*>(buf);
  size_t got = 0;
  while (got < n) {
    ssize_t k = ::read(fd, p + got, n - got);
    if (k < 0) {
      if (errno == EINTR) continue;
      fail_errno("read");
    }
    if (k == 0) {
      if (got == 0 && eof_ok) return false;
      throw std::runtime_error("dist wire: peer closed mid-frame");
    }
    got += size_t(k);
  }
  return true;
}

}  // namespace

void write_frame(int fd, FrameType type, const void* payload, size_t size) {
  obs::TraceScope tr(obs::EventKind::kWireSend, uint64_t(type), sizeof(FrameHeader) + size);
  FrameHeader h{kWireMagic, kWireVersion, host_endian(), uint8_t(type), uint64_t(size)};
  write_exact(fd, &h, sizeof(h));
  if (size > 0) write_exact(fd, payload, size);
}

bool read_frame(int fd, Frame* out) {
  // The recv scope covers the blocking wait for the header too — on a
  // timeline, a long wire_recv IS the idle time between frames.
  obs::TraceScope tr(obs::EventKind::kWireRecv);
  FrameHeader h;
  if (!read_exact(fd, &h, sizeof(h), /*eof_ok=*/true)) return false;
  // A genuinely foreign-endian peer swaps EVERY multi-byte field, magic
  // included — so a byte-reversed magic IS the endianness mismatch, and it
  // must be recognized before being written off as garbage.
  if (h.magic != kWireMagic) {
    if (h.magic == __builtin_bswap32(kWireMagic))
      throw std::runtime_error(
          "dist wire: endianness mismatch (magic arrived byte-swapped; peer and host "
          "disagree and the raw IEEE payloads cannot interoperate)");
    throw std::runtime_error("dist wire: bad magic");
  }
  // Version next: a same-endian v1 peer's old header parses to version 1
  // here, so it gets the precise version error rather than a misreading
  // of its (differently laid out) remaining bytes.
  if (h.version != kWireVersion)
    throw std::runtime_error("dist wire: protocol version mismatch (peer v" +
                             std::to_string(h.version) + ", expected v" +
                             std::to_string(kWireVersion) + ")");
  // Defense in depth: same-order magic and version but a wrong endian tag
  // (hand-built or corrupt header) still must not slip through.
  if (h.endian != host_endian())
    throw std::runtime_error(
        "dist wire: endianness mismatch (peer tagged " +
        std::string(h.endian == kWireEndianBig
                        ? "big"
                        : h.endian == kWireEndianLittle ? "little" : "unknown") +
        "-endian, host is " +
        std::string(host_endian() == kWireEndianBig ? "big" : "little") + "-endian)");
  if (h.payload_len > kMaxPayload) throw std::runtime_error("dist wire: oversized payload");
  out->type = FrameType(h.type);
  out->payload.resize(size_t(h.payload_len));
  if (h.payload_len > 0) read_exact(fd, out->payload.data(), out->payload.size(), false);
  tr.set_args(uint64_t(h.type), sizeof(FrameHeader) + h.payload_len);
  return true;
}

void put_tensor(ByteWriter& w, const exec::Tensor& t) {
  w.put<uint32_t>(uint32_t(t.rank()));
  for (int ix : t.ixs()) w.put<int32_t>(int32_t(ix));
  w.put<uint64_t>(t.size());
  w.put_bytes(t.raw(), t.size() * sizeof(exec::cfloat));
}

exec::Tensor get_tensor(ByteReader& r) {
  const auto rank = r.get<uint32_t>();
  if (size_t(rank) > r.remaining() / sizeof(int32_t))
    throw std::runtime_error("dist wire: tensor rank exceeds payload");
  // Tensor's own bound (and a shift-safety bound): a corrupt rank must be
  // rejected BEFORE the 2^rank allocation in Tensor's constructor, not by
  // a debug-only assert inside it.
  if (rank >= 48) throw std::runtime_error("dist wire: tensor rank out of range");
  std::vector<int> ixs(rank);
  for (auto& ix : ixs) ix = int(r.get<int32_t>());
  const auto n = size_t(r.get<uint64_t>());
  // Validate the claimed element count against the rank and the bytes
  // actually present BEFORE allocating — a corrupt length must not become
  // an OOM.
  if (n != size_t(1) << rank)
    throw std::runtime_error("dist wire: tensor size disagrees with its rank");
  if (n > r.remaining() / sizeof(exec::cfloat))
    throw std::runtime_error("dist wire: tensor size exceeds payload");
  exec::Tensor t(std::move(ixs));
  r.get_bytes(t.raw(), n * sizeof(exec::cfloat));  // straight into aligned storage
  return t;
}

namespace {

void put_device_stats(ByteWriter& w, const device::DeviceStats& d) {
  w.put<double>(d.bytes_to_device);
  w.put<double>(d.bytes_to_host);
  w.put<double>(d.ns_to_device);
  w.put<double>(d.ns_to_host);
  w.put<uint64_t>(d.uploads);
  w.put<uint64_t>(d.downloads);
  w.put<uint64_t>(d.gemm_calls);
  w.put<uint64_t>(d.permute_calls);
  w.put<uint64_t>(d.stem_steps);
}

device::DeviceStats get_device_stats(ByteReader& r) {
  device::DeviceStats d;
  d.bytes_to_device = r.get<double>();
  d.bytes_to_host = r.get<double>();
  d.ns_to_device = r.get<double>();
  d.ns_to_host = r.get<double>();
  d.uploads = r.get<uint64_t>();
  d.downloads = r.get<uint64_t>();
  d.gemm_calls = r.get<uint64_t>();
  d.permute_calls = r.get<uint64_t>();
  d.stem_steps = r.get<uint64_t>();
  return d;
}

}  // namespace

void put_exec_stats(ByteWriter& w, const exec::ExecStats& s) {
  w.put<double>(s.flops);
  w.put<double>(s.bytes_main);
  w.put<double>(s.permute_elems);
  w.put<double>(s.gemm_seconds);
  w.put<double>(s.permute_seconds);
  w.put<double>(s.memory_seconds);
  w.put<uint64_t>(uint64_t(s.peak_live_elems));
  put_device_stats(w, s.device);
}

exec::ExecStats get_exec_stats(ByteReader& r) {
  exec::ExecStats s;
  s.flops = r.get<double>();
  s.bytes_main = r.get<double>();
  s.permute_elems = r.get<double>();
  s.gemm_seconds = r.get<double>();
  s.permute_seconds = r.get<double>();
  s.memory_seconds = r.get<double>();
  s.peak_live_elems = size_t(r.get<uint64_t>());
  s.device = get_device_stats(r);
  return s;
}

namespace {

void put_perf(ByteWriter& w, const runtime::PerfSnapshot& p) {
  w.put<uint64_t>(p.count);
  w.put<double>(p.seconds);
}

runtime::PerfSnapshot get_perf(ByteReader& r) {
  runtime::PerfSnapshot p;
  p.count = r.get<uint64_t>();
  p.seconds = r.get<double>();
  return p;
}

}  // namespace

void put_snapshot(ByteWriter& w, const runtime::ExecutorSnapshot& s) {
  w.put<uint64_t>(s.scheduled);
  w.put<uint64_t>(s.stolen);
  w.put<uint64_t>(s.finished);
  w.put<uint64_t>(s.cancelled);
  w.put<int32_t>(s.running);
  w.put<int32_t>(s.waiting);
  w.put<double>(s.ema_utilization);
  w.put<uint64_t>(s.ranges_stolen);
  w.put<uint64_t>(s.ranges_reissued);
  w.put<double>(s.straggler_wait_seconds);
  put_device_stats(w, s.device);
  put_perf(w, s.permute);
  put_perf(w, s.gemm);
  put_perf(w, s.reduce);
  put_perf(w, s.memory);
}

runtime::ExecutorSnapshot get_snapshot(ByteReader& r) {
  runtime::ExecutorSnapshot s;
  s.scheduled = r.get<uint64_t>();
  s.stolen = r.get<uint64_t>();
  s.finished = r.get<uint64_t>();
  s.cancelled = r.get<uint64_t>();
  s.running = int(r.get<int32_t>());
  s.waiting = int(r.get<int32_t>());
  s.ema_utilization = r.get<double>();
  s.ranges_stolen = r.get<uint64_t>();
  s.ranges_reissued = r.get<uint64_t>();
  s.straggler_wait_seconds = r.get<double>();
  s.device = get_device_stats(r);
  s.permute = get_perf(r);
  s.gemm = get_perf(r);
  s.reduce = get_perf(r);
  s.memory = get_perf(r);
  return s;
}

void put_memory_stats(ByteWriter& w, const runtime::MemoryStats& m) {
  w.put<double>(m.main_bytes);
  w.put<double>(m.scratch_bytes_get);
  w.put<double>(m.scratch_bytes_put);
  w.put<double>(m.rma_bytes);
  w.put<uint64_t>(m.ldm_subtasks);
  w.put<uint64_t>(uint64_t(m.ldm_peak_elems));
  w.put<uint64_t>(uint64_t(m.host_peak_elems));
}

runtime::MemoryStats get_memory_stats(ByteReader& r) {
  runtime::MemoryStats m;
  m.main_bytes = r.get<double>();
  m.scratch_bytes_get = r.get<double>();
  m.scratch_bytes_put = r.get<double>();
  m.rma_bytes = r.get<double>();
  m.ldm_subtasks = r.get<uint64_t>();
  m.ldm_peak_elems = size_t(r.get<uint64_t>());
  m.host_peak_elems = size_t(r.get<uint64_t>());
  return m;
}

void put_pulse(ByteWriter& w, const WorkerPulse& p) {
  w.put<double>(p.ema_utilization);
  w.put<uint64_t>(p.tasks_run);
  w.put<uint64_t>(p.leases_completed);
  w.put<double>(p.device_bytes);
  w.put<double>(p.device_ns);
  w.put<double>(p.wall_seconds);
}

WorkerPulse get_pulse(ByteReader& r) {
  WorkerPulse p;
  p.ema_utilization = r.get<double>();
  p.tasks_run = r.get<uint64_t>();
  p.leases_completed = r.get<uint64_t>();
  p.device_bytes = r.get<double>();
  p.device_ns = r.get<double>();
  p.wall_seconds = r.get<double>();
  return p;
}

void put_telemetry(ByteWriter& w, const ShardTelemetry& t) {
  w.put<int32_t>(t.shard);
  w.put<uint64_t>(t.first);
  w.put<uint64_t>(t.count);
  w.put<uint64_t>(t.tasks_run);
  w.put<uint64_t>(t.leases);
  w.put<uint64_t>(t.reduce_merges);
  w.put<double>(t.wall_seconds);
  w.put_string(t.backend);
  put_snapshot(w, t.executor);
  put_memory_stats(w, t.memory);
  put_exec_stats(w, t.exec);
}

ShardTelemetry get_telemetry(ByteReader& r) {
  ShardTelemetry t;
  t.shard = int32_t(r.get<int32_t>());
  t.first = r.get<uint64_t>();
  t.count = r.get<uint64_t>();
  t.tasks_run = r.get<uint64_t>();
  t.leases = r.get<uint64_t>();
  t.reduce_merges = r.get<uint64_t>();
  t.wall_seconds = r.get<double>();
  t.backend = r.get_string();
  t.executor = get_snapshot(r);
  t.memory = get_memory_stats(r);
  t.exec = get_exec_stats(r);
  return t;
}

AggregatedTelemetry aggregate_telemetry(const std::vector<ShardTelemetry>& shards) {
  AggregatedTelemetry agg;
  for (const auto& t : shards) {
    agg.tasks_run += t.tasks_run;
    agg.reduce_merges += t.reduce_merges;
    agg.stats.merge(t.exec);
    agg.memory.merge(t.memory);
    agg.executor.merge(t.executor);
  }
  return agg;
}

}  // namespace ltns::dist
