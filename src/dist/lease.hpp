// Coordinator-side bookkeeping for the elastic shard protocol.
//
// The 2^|S| task range is chopped into bounded lease-sized ranges, seeded
// across the workers' *notional home windows* (the same balanced partition
// the static ShardPlan uses). Workers lease ranges one at a time: a worker
// drains its own home window front-to-back, and once that is empty it
// STEALS the tail range of the most-loaded home — the process-level
// analogue of the in-process deque thief. When a worker dies or stalls,
// every lease it holds is revoked and its ranges are requeued for idle
// peers, so one lost process costs one lease of recomputation instead of
// the whole run.
//
// Double-merge safety: block partials arriving for a lease are BUFFERED in
// the ledger, not fed to the ShardMerger, until the lease's kRangeDone
// lands while the lease is still active under the sender. A revoked
// lease's buffer is dropped with the lease, and a late kRangeDone (or
// stray block) from the original holder is counted and discarded — so each
// task range reaches the merger exactly once no matter how many times it
// was re-issued, and the tournament stays bitwise identical to a
// single-process run.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "dist/shard_merge.hpp"
#include "exec/tensor.hpp"

namespace ltns::dist {

// Rebalance telemetry for one elastic run; surfaced through
// ShardRunResult/CoordinatorResult and folded into the aggregated
// ExecutorSnapshot (ranges_stolen / ranges_reissued / straggler wait).
struct RebalanceStats {
  uint64_t leases_issued = 0;
  uint64_t leases_completed = 0;
  uint64_t ranges_stolen = 0;         // issued off another worker's home window
  uint64_t ranges_reissued = 0;       // issued again after a revoke
  uint64_t ranges_requeued = 0;       // put back by revoke_worker
  uint64_t late_results_dropped = 0;  // frames for revoked/stale leases
  uint64_t workers_lost = 0;
  uint64_t ranges_replayed = 0;       // restored from a checkpoint journal
  uint64_t tasks_replayed = 0;        // tasks inside those replayed ranges
  double straggler_wait_seconds = 0;  // idle-worker time parked on an empty queue
};

struct Lease {
  uint64_t id = 0;
  uint64_t first = 0;
  uint64_t count = 0;
};

// One buffered tournament-aligned block partial, as the ledger holds it and
// as the checkpoint journal records it.
struct LedgerBlock {
  int level = 0;
  uint64_t index = 0;
  exec::Tensor partial;
};

// Write-ahead hook for the durable run ledger (dist/checkpoint.hpp): when a
// lease's range completes, its blocks are offered to the journal BEFORE
// they are fed to the ShardMerger, so a range is either durably recorded or
// will be recomputed after a coordinator restart — never half-merged.
class RangeJournal {
 public:
  virtual ~RangeJournal() = default;
  virtual void on_range_complete(uint64_t first, uint64_t count,
                                 const std::vector<LedgerBlock>& blocks) = 0;
  // Spill-dir health for the coordinator's --status JSON ("" = no report).
  virtual std::string health_json() const { return ""; }
  // Journal lag for the live metrics section: seconds since the last
  // durable fsync (-1 = not reported).
  virtual double lag_seconds() const { return -1; }
};

class LeaseLedger {
 public:
  // Bounded leases over [0, total) seeded across `home_workers` notional
  // windows; lease_size = 0 auto-sizes to ~8 leases per home window.
  // `first_lease_id` seeds the id counter: the job server gives each job's
  // ledger a disjoint id base so a lease id alone routes a worker frame to
  // the right job (and a stale id from another job can never collide).
  LeaseLedger(uint64_t total, int home_workers, uint64_t lease_size,
              uint64_t first_lease_id = 1);

  // Issues the next range to `worker` (own home first, then steal from the
  // most-loaded home). False when nothing is pending — the run is either
  // finished or every outstanding range is leased to someone.
  bool acquire(int worker, Lease* out);

  // Buffers one tournament-aligned block partial under (worker, lease).
  // A block for a lease the worker no longer holds is dropped (returns
  // false); a block outside the leased range is a protocol error (throws).
  bool add_block(int worker, uint64_t lease_id, int level, uint64_t index, exec::Tensor partial);

  // The lease's range finished: offers its buffered blocks to `journal`
  // (when given), feeds them into `merger`, and retires the range (returns
  // true). A revoked/stale lease's result is dropped instead (returns
  // false) — never double-merged.
  bool complete(int worker, uint64_t lease_id, ShardMerger* merger,
                RangeJournal* journal = nullptr);

  // Checkpoint replay: retires a pending range restored from the journal
  // WITHOUT leasing it (its blocks were already fed to the merger by the
  // replayer). The range must exactly match one pending range of this
  // ledger's tiling — i.e. the journal was written under the same (total,
  // home_workers, lease_size) — or false is returned and the ledger is
  // unchanged.
  bool mark_range_done(uint64_t first, uint64_t count);

  // Like mark_range_done, but for a COMPACTED journal record: retires every
  // pending range inside [first, first+count). Compaction coalesces
  // contiguous completed ranges into one span, so a span must cover a whole
  // number of consecutive pending lease ranges; boundaries are validated
  // against the whole span BEFORE anything is retired, so a false return
  // (different tiling) leaves the ledger unchanged. A single-lease span
  // degenerates to mark_range_done.
  bool mark_span_done(uint64_t first, uint64_t count);

  // Revokes every lease `worker` holds and requeues the ranges at the
  // front of the queue (they block the tournament root, so they go first).
  // `lost` marks a dead worker rather than a stall quarantine.
  void revoke_worker(int worker, bool lost);

  bool done() const { return tasks_done_ == total_; }
  uint64_t total() const { return total_; }
  uint64_t tasks_done() const { return tasks_done_; }
  uint64_t lease_size() const { return lease_size_; }
  size_t pending_ranges() const { return pending_count_; }
  size_t active_leases() const { return active_.size(); }

  RebalanceStats& stats() { return stats_; }
  const RebalanceStats& stats() const { return stats_; }

  // Live-lease view for the status probe.
  struct ActiveLease {
    uint64_t id = 0;
    int worker = 0;
    uint64_t first = 0;
    uint64_t count = 0;
  };
  std::vector<ActiveLease> active() const;

 private:
  struct PendingRange {
    uint64_t first = 0;
    uint64_t count = 0;
    int home = 0;
  };
  struct ActiveState {
    int worker = 0;
    uint64_t first = 0;
    uint64_t count = 0;
    int home = 0;
    std::vector<LedgerBlock> blocks;
  };

  uint64_t total_ = 0;
  uint64_t lease_size_ = 1;
  uint64_t tasks_done_ = 0;
  uint64_t next_id_ = 1;
  size_t pending_count_ = 0;
  // One queue per notional home window plus an incrementally maintained
  // pending-task load per home, so acquire() is O(#homes), not O(#leases)
  // — at --lease=1 on 2^20 subtasks a single scan-the-deque queue would
  // make the coordinator quadratic. Requeued ranges live in their own
  // front-priority queue (they gate the tournament tail).
  std::deque<PendingRange> reissue_;
  std::vector<std::deque<PendingRange>> by_home_;
  std::vector<uint64_t> home_load_;
  // Window start per home (the shard-plan boundaries): lets replay-time
  // mark_range_done locate a range's home queue in O(log homes) instead of
  // scanning every queue — at --lease=1 on 2^20 tasks a full scan per
  // journal record would make coordinator restart quadratic.
  std::vector<uint64_t> home_first_;
  std::unordered_map<uint64_t, ActiveState> active_;
  RebalanceStats stats_;
};

}  // namespace ltns::dist
