#include "dist/shard_plan.hpp"

#include <cassert>
#include <cstddef>

namespace ltns::dist {

std::vector<Shard> make_shard_plan(uint64_t total, int processes) {
  assert(processes >= 1);
  std::vector<Shard> plan;
  plan.reserve(std::size_t(processes));
  const auto p = uint64_t(processes);
  // __int128 keeps total·(w+1) exact for totals up to 2^57 (the ReductionTree
  // cap) at any process count.
  for (uint64_t w = 0; w < p; ++w) {
    const auto lo = uint64_t((unsigned __int128)(total)*w / p);
    const auto hi = uint64_t((unsigned __int128)(total) * (w + 1) / p);
    plan.push_back({lo, hi - lo});
  }
  return plan;
}

std::vector<AlignedBlock> aligned_blocks(uint64_t first, uint64_t count) {
  std::vector<AlignedBlock> blocks;
  uint64_t lo = first;
  const uint64_t hi = first + count;
  while (lo < hi) {
    // Largest power-of-two block starting at lo: limited by lo's alignment
    // (lowest set bit) and by the remaining span.
    int level = lo == 0 ? 63 : __builtin_ctzll(lo);
    while ((uint64_t(1) << level) > hi - lo) --level;
    blocks.push_back({level, lo >> level});
    lo += uint64_t(1) << level;
  }
  return blocks;
}

}  // namespace ltns::dist
