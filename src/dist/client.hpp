// Control-plane client for the multi-tenant job server (dist/server.hpp):
// one short-lived TCP connection per verb, speaking the v5 control frames
// (kSubmit/kJobStatus/kCancel/kFetchResult/kShutdown). Backs the
// `ltns_cli submit|status|cancel|result|shutdown` verbs and the service
// tests; every call throws std::runtime_error when the server is
// unreachable or answers with a protocol violation.
#pragma once

#include <cstdint>
#include <string>

#include "dist/job.hpp"

namespace ltns::dist {

struct SubmitReply {
  bool ok = false;
  uint64_t job_id = 0;   // valid when ok
  std::string message;   // "queued", or the rejection reason
};

struct ServerReply {
  bool ok = false;
  std::string message;
};

// Submits one job spec. ok=false means the server REJECTED it (queue full,
// bad circuit, draining) — the reason is in `message`, not an exception.
SubmitReply submit_job(const std::string& host, uint16_t port, const JobSpec& spec);

// Status JSON: job_id 0 = the whole-server snapshot (queue, admission,
// tenants, workers, every job), otherwise the one job's record. Throws on
// an unknown job id.
std::string job_status_json(const std::string& host, uint16_t port, uint64_t job_id);

ServerReply cancel_job(const std::string& host, uint16_t port, uint64_t job_id);

// Fetches a terminal job's result record. With `wait` the connection long
// polls until the job turns terminal; without it a non-terminal job throws
// ("use --wait to block"). The record's own `state`/`error` distinguish
// done from failed/cancelled.
JobResultRecord fetch_result(const std::string& host, uint16_t port, uint64_t job_id,
                             bool wait);

// Asks the server to drain: finish running jobs, refuse new ones, release
// the fleet, exit. Queued jobs persist when the server has a state dir.
ServerReply shutdown_server(const std::string& host, uint16_t port);

}  // namespace ltns::dist
