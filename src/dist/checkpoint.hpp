// Durable run ledger: coordinator checkpoint/restart for elastic runs.
//
// The elastic driver (dist/elastic.hpp) survives worker deaths, but the
// coordinator itself was a single point of failure: its LeaseLedger and the
// ShardMerger's partial tournament lived only in memory. This file adds the
// write-ahead spill that closes that gap.
//
// Model: an append-only journal (`<spill-dir>/ledger.journal`) of
// CRC-framed records. The head record (kRunMeta) pins the run's identity —
// total task count, notional home-window count, the RESOLVED lease size,
// and a caller-supplied run fingerprint — so a journal can never be
// replayed into a differently-tiled ledger. Every time a lease's range
// completes, the coordinator appends one kRangeDone record carrying the
// range AND its tournament-aligned block payloads (serialized with the
// same wire v3 ByteWriter/put_tensor the sockets use, so the tensors
// round-trip BIT-exactly), then fsyncs on a configurable cadence, and only
// then feeds the blocks to the merger.
//
// Restart: replay_checkpoint() walks the journal, re-feeds every recorded
// block into a fresh ShardMerger and retires the matching pending range in
// a freshly-built LeaseLedger (mark_span_done — a compacted record's span
// covers several consecutive leases). Because the merger's
// tournament is order-independent and the payloads are raw bit patterns,
// the resumed run's accumulated tensor is bitwise identical to an
// uninterrupted run: replayed ranges contribute the exact bytes they
// contributed before the crash, and only unfinished ranges are re-offered
// to (re)connecting workers. A torn tail — the header or payload the
// coordinator was writing when it died — fails its CRC/length check and is
// simply truncated: that range (journaled but not durable) is recomputed,
// which is always safe because the crash also destroyed the old merger.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "dist/lease.hpp"
#include "dist/shard_merge.hpp"
#include "tn/contraction_tree.hpp"
#include "util/timer.hpp"

namespace ltns::dist {

inline constexpr uint32_t kCheckpointMagic = 0x4C544E4Au;  // "LTNJ"
inline constexpr uint16_t kCheckpointVersion = 1;

// Journal I/O failure (ENOSPC, EIO, ...). Distinct from plain
// runtime_error so the coordinator can tell "the spill failed" from "a
// worker failed": the former is fatal for the RUN — continuing without
// the journal would silently drop the durability guarantee, and blaming
// the worker whose frame triggered the write would drop healthy workers
// one by one instead.
class CheckpointIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// FNV-1a 64 as a 16-char hex string — the run_id fingerprint hash.
std::string fnv1a_hex(const void* data, size_t n);
inline std::string fnv1a_hex(const std::string& s) { return fnv1a_hex(s.data(), s.size()); }

// CRC-32 (IEEE, reflected) over a byte range — the journal's record
// checksum, shared with the cache entry headers (src/cache/).
uint32_t crc32_ieee(const void* data, size_t n);

// THE canonical job fingerprint, shared by every driver (fork runner via
// the Simulator, TCP service): hashes the job inputs AND the resolved
// plan — the full SSA contraction path plus the sliced edge set — so (a)
// any planner-option change that alters the plan changes the fingerprint,
// and (b) a journal spilled by one transport can resume under the other
// (both derive the same plan from the same inputs). `bits` is the
// '0'/'1' output bitstring; `open_qubits` a textual open-qubit list
// ("" when closed).
std::string run_fingerprint(const std::string& circuit_text, const std::string& bits,
                            const std::string& open_qubits, bool fused, uint64_t ldm_elems,
                            const tn::SsaPath& path, const std::vector<int>& sliced_edges);

// Identity of the run a journal belongs to. total/home_workers/lease_size
// pin the LeaseLedger tiling (lease_size must be the RESOLVED size — ask
// the constructed ledger, not the 0-means-auto option); run_id is a caller
// fingerprint of the job (circuit + bits + plan knobs). Replay refuses a
// journal whose meta disagrees — resuming someone else's run would merge
// foreign tensors into the tournament.
struct CheckpointMeta {
  uint64_t total = 0;
  int32_t home_workers = 0;
  uint64_t lease_size = 0;
  std::string run_id;  // "" = caller opted out of fingerprint checking
};

// Read-only walk of a journal; never throws on a damaged file — damage
// past the last valid record is the EXPECTED crash artifact.
struct CheckpointScan {
  bool has_meta = false;
  CheckpointMeta meta;
  uint64_t ranges = 0;       // valid kRangeDone records
  uint64_t tasks = 0;        // tasks covered by those ranges
  uint64_t valid_bytes = 0;  // journal prefix that parsed + CRC-checked clean
  bool torn_tail = false;    // bytes beyond valid_bytes existed and were invalid
};

// Scans `<dir>/ledger.journal`. A missing directory or journal is a clean
// empty scan (fresh start), not an error.
CheckpointScan scan_checkpoint(const std::string& dir);

// Replays the journal into `ledger` + `merger`: every valid kRangeDone
// record's blocks go to the merger and its range is retired in the ledger.
// Throws std::runtime_error when the journal's meta contradicts `expect`
// (or a record does not match the ledger tiling) — a config-skew resume
// must die loudly, not double-merge. Returns the scan (use valid_bytes to
// open the appending CheckpointWriter). An absent journal returns an empty
// scan: resume-if-present semantics, so crash-loop supervisors can always
// pass --resume.
CheckpointScan replay_checkpoint(const std::string& dir, const CheckpointMeta& expect,
                                 LeaseLedger* ledger, ShardMerger* merger);

// Journal compaction outcome (numbers refer to the journal file).
struct CompactionStats {
  bool compacted = false;  // file was rewritten
  uint64_t bytes_before = 0;
  uint64_t bytes_after = 0;
  uint64_t ranges_before = 0;  // kRangeDone records before/after
  uint64_t ranges_after = 0;
};

// Rewrites `<dir>/ledger.journal` into its minimal equivalent: contiguous
// completed ranges coalesce into one span record whose block payloads are
// tournament-merged to their maximal aligned blocks (a fully-journaled run
// shrinks to a single root record), and any torn tail is dropped. Replay
// of the compacted journal reproduces the exact merger state — the
// tournament performs the same `left += right` additions in the same tree
// positions whether they happen at compaction time or at merge time, so
// the resumed output stays byte-identical. Runs at resume (before replay)
// and after successful completion, so long elastic runs do not grow their
// spill dir unboundedly. The rewrite is tmp+rename; a missing, empty or
// already-minimal journal is a no-op. Throws CheckpointIoError on I/O
// failure; structural damage is not an error (the valid prefix compacts,
// the tail drops — the same contract as replay).
CompactionStats compact_checkpoint(const std::string& dir);

// One-stop journal setup shared by every driver (fork runner, TCP
// service): with `resume`, first compacts the existing journal, then
// replays it into ledger + merger and reopens it for appending; otherwise
// — or when no journal exists yet — starts a fresh journal for `meta`.
// Throws like replay_checkpoint / the CheckpointWriter constructors
// (compaction failure is non-fatal: the uncompacted journal replays).
std::unique_ptr<class CheckpointWriter> open_or_resume_journal(
    const std::string& dir, const CheckpointMeta& meta, bool resume,
    double fsync_interval_seconds, LeaseLedger* ledger, ShardMerger* merger);

// The write half, plugged into ElasticCoordinator::set_journal. Owns the
// journal fd; all methods throw std::runtime_error on I/O failure (a
// coordinator that cannot spill must fail the run, not silently lose its
// durability guarantee).
class CheckpointWriter : public RangeJournal {
 public:
  // Fresh journal: creates `dir` if needed, truncates any previous
  // journal, writes + fsyncs the kRunMeta record (and the directory entry).
  CheckpointWriter(const std::string& dir, const CheckpointMeta& meta,
                   double fsync_interval_seconds);
  // Resumed journal: reopens after replay_checkpoint, truncating the torn
  // tail at `valid_bytes` and appending from there.
  CheckpointWriter(const std::string& dir, uint64_t valid_bytes,
                   double fsync_interval_seconds);
  ~CheckpointWriter() override;
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  // RangeJournal: appends one kRangeDone record; fsyncs when the cadence
  // says so (interval <= 0 = every record, the durable default).
  void on_range_complete(uint64_t first, uint64_t count,
                         const std::vector<LedgerBlock>& blocks) override;
  void sync();  // fsync now, regardless of cadence

  // Spill health for `coordinate --status`.
  std::string health_json() const override;
  double lag_seconds() const override { return last_sync_.seconds(); }
  uint64_t journal_bytes() const { return bytes_; }
  uint64_t ranges_journaled() const { return ranges_; }
  double last_sync_age_seconds() const { return last_sync_.seconds(); }

 private:
  void append_record(uint8_t type, const std::vector<uint8_t>& payload);

  std::string dir_;
  int fd_ = -1;
  double fsync_interval_ = 0;
  uint64_t bytes_ = 0;
  uint64_t ranges_ = 0;
  uint64_t syncs_ = 0;
  bool dirty_ = false;  // records appended since the last fsync
  Timer last_sync_;
};

}  // namespace ltns::dist
