#include "dist/checkpoint.hpp"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "dist/shard_plan.hpp"
#include "dist/wire.hpp"
#include "obs/trace.hpp"

namespace ltns::dist {

namespace {

// Record framing mirrors the socket wire's header discipline (magic +
// version + endianness up front, typed rejection of skew) and adds a CRC:
// a socket peer is trusted to be a same-build process, but a journal may
// have been half-written by a dying coordinator or damaged at rest.
enum class RecordType : uint8_t {
  kRunMeta = 1,    // journal head: CheckpointMeta
  kRangeDone = 2,  // one completed lease range + its block payloads
};

struct RecordHeader {
  uint32_t magic;
  uint16_t version;
  uint8_t endian;  // same marker scheme as the socket wire (raw IEEE payloads)
  uint8_t type;
  uint64_t payload_len;
  uint32_t crc;  // CRC-32 of the payload bytes
  uint32_t reserved;
};
static_assert(sizeof(RecordHeader) == 24, "journal header layout is on-disk ABI");

// 1 TiB payload cap, like the socket wire: a corrupt length must be caught
// before it becomes an allocation bomb.
constexpr uint64_t kMaxRecordPayload = uint64_t(1) << 40;

uint32_t crc32(const uint8_t* p, size_t n) { return crc32_ieee(p, n); }

std::string journal_path(const std::string& dir) { return dir + "/ledger.journal"; }

[[noreturn]] void fail_errno(const std::string& what) {
  throw CheckpointIoError("dist checkpoint: " + what + ": " + std::strerror(errno));
}

void write_exact(int fd, const void* buf, size_t n) {
  const auto* p = static_cast<const uint8_t*>(buf);
  while (n > 0) {
    ssize_t k = ::write(fd, p, n);
    if (k < 0) {
      if (errno == EINTR) continue;
      fail_errno("write");
    }
    p += k;
    n -= size_t(k);
  }
}

// Best-effort full read at an offset; returns bytes actually read (short at
// EOF). Scan-side only — the scanner treats a short read as the torn tail.
size_t read_upto(int fd, void* buf, size_t n) {
  auto* p = static_cast<uint8_t*>(buf);
  size_t got = 0;
  while (got < n) {
    ssize_t k = ::read(fd, p + got, n - got);
    if (k < 0) {
      if (errno == EINTR) continue;
      fail_errno("read");
    }
    if (k == 0) break;
    got += size_t(k);
  }
  return got;
}

void put_meta(ByteWriter& w, const CheckpointMeta& m) {
  w.put<uint64_t>(m.total);
  w.put<int32_t>(m.home_workers);
  w.put<uint64_t>(m.lease_size);
  w.put_string(m.run_id);
}

CheckpointMeta get_meta(ByteReader& r) {
  CheckpointMeta m;
  m.total = r.get<uint64_t>();
  m.home_workers = r.get<int32_t>();
  m.lease_size = r.get<uint64_t>();
  m.run_id = r.get_string();
  return m;
}

struct RangeRecord {
  uint64_t first = 0;
  uint64_t count = 0;
  std::vector<LedgerBlock> blocks;
};

RangeRecord get_range(ByteReader& r) {
  RangeRecord rec;
  rec.first = r.get<uint64_t>();
  rec.count = r.get<uint64_t>();
  const auto nblocks = r.get<uint32_t>();
  // A range is tiled by at most 2·64 maximal aligned blocks; anything
  // larger is corruption that slipped past the CRC (or a hand-edited file).
  if (nblocks > 128) throw std::runtime_error("dist checkpoint: implausible block count");
  rec.blocks.reserve(nblocks);
  for (uint32_t i = 0; i < nblocks; ++i) {
    LedgerBlock b;
    b.level = int(r.get<int32_t>());
    b.index = r.get<uint64_t>();
    b.partial = get_tensor(r);
    rec.blocks.push_back(std::move(b));
  }
  return rec;
}

// One parsed record, or "stop here" (torn/invalid tail) — never throws for
// damage, only for I/O errors.
struct ScannedRecord {
  bool ok = false;
  RecordType type = RecordType::kRunMeta;
  std::vector<uint8_t> payload;
};

ScannedRecord read_record(int fd) {
  ScannedRecord rec;
  RecordHeader h;
  if (read_upto(fd, &h, sizeof(h)) != sizeof(h)) return rec;  // EOF / torn header
  if (h.magic != kCheckpointMagic || h.version != kCheckpointVersion ||
      h.endian != host_endian() || h.payload_len > kMaxRecordPayload)
    return rec;
  rec.payload.resize(size_t(h.payload_len));
  if (read_upto(fd, rec.payload.data(), rec.payload.size()) != rec.payload.size())
    return rec;  // torn payload
  if (crc32(rec.payload.data(), rec.payload.size()) != h.crc) return rec;
  rec.type = RecordType(h.type);
  rec.ok = true;
  return rec;
}

}  // namespace

// Table computed once. Standard polynomial so an external tool can verify
// a journal or cache entry.
uint32_t crc32_ieee(const void* data, size_t n) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::string fnv1a_hex(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx", (unsigned long long)h);
  return std::string(buf);
}

std::string run_fingerprint(const std::string& circuit_text, const std::string& bits,
                            const std::string& open_qubits, bool fused, uint64_t ldm_elems,
                            const tn::SsaPath& path, const std::vector<int>& sliced_edges) {
  std::string id = circuit_text;
  id += '|' + bits + '|' + open_qubits + '|' + std::to_string(int(fused)) + '|' +
        std::to_string(ldm_elems);
  id += "|path:";
  for (auto v : path.leaf_vertices) id += std::to_string(int(v)) + ",";
  for (const auto& [l, r] : path.steps) id += std::to_string(l) + "+" + std::to_string(r) + ";";
  id += "|slices:";
  for (int e : sliced_edges) id += std::to_string(e) + ",";
  return fnv1a_hex(id.data(), id.size());
}

std::unique_ptr<CheckpointWriter> open_or_resume_journal(
    const std::string& dir, const CheckpointMeta& meta, bool resume,
    double fsync_interval_seconds, LeaseLedger* ledger, ShardMerger* merger) {
  if (resume) {
    try {
      compact_checkpoint(dir);
    } catch (const CheckpointIoError&) {
      // Compaction is an optimization: when the rewrite cannot land
      // (ENOSPC, read-only spill), the uncompacted journal replays fine.
    }
    auto scan = replay_checkpoint(dir, meta, ledger, merger);
    if (scan.has_meta)
      return std::make_unique<CheckpointWriter>(dir, scan.valid_bytes, fsync_interval_seconds);
    // Resume-if-present: nothing to replay, start fresh.
  }
  return std::make_unique<CheckpointWriter>(dir, meta, fsync_interval_seconds);
}

CheckpointScan scan_checkpoint(const std::string& dir) {
  CheckpointScan scan;
  int fd = ::open(journal_path(dir).c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return scan;  // no journal yet: clean fresh start
  try {
    for (;;) {
      auto rec = read_record(fd);
      if (!rec.ok) break;
      ByteReader r(rec.payload);
      // A record that parses structurally wrong despite a good CRC is a
      // foreign or hand-damaged file: stop at the previous record.
      try {
        if (rec.type == RecordType::kRunMeta && !scan.has_meta) {
          scan.meta = get_meta(r);
          scan.has_meta = true;
        } else if (rec.type == RecordType::kRangeDone && scan.has_meta) {
          auto range = get_range(r);
          scan.ranges += 1;
          scan.tasks += range.count;
        } else {
          break;  // meta not first, duplicated, or unknown type
        }
      } catch (const std::exception&) {
        break;
      }
      scan.valid_bytes += sizeof(RecordHeader) + rec.payload.size();
    }
    const off_t end = ::lseek(fd, 0, SEEK_END);
    scan.torn_tail = end > 0 && uint64_t(end) > scan.valid_bytes;
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return scan;
}

CheckpointScan replay_checkpoint(const std::string& dir, const CheckpointMeta& expect,
                                 LeaseLedger* ledger, ShardMerger* merger) {
  CheckpointScan scan;
  int fd = ::open(journal_path(dir).c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return scan;  // nothing to resume: fresh start
  try {
    for (;;) {
      auto rec = read_record(fd);
      if (!rec.ok) break;
      ByteReader r(rec.payload);
      if (rec.type == RecordType::kRunMeta && !scan.has_meta) {
        scan.meta = get_meta(r);
        scan.has_meta = true;
        // Refuse a foreign journal BEFORE merging anything from it.
        if (scan.meta.total != expect.total || scan.meta.home_workers != expect.home_workers ||
            scan.meta.lease_size != expect.lease_size)
          throw std::runtime_error(
              "dist checkpoint: journal tiling mismatch (journal total=" +
              std::to_string(scan.meta.total) + " homes=" + std::to_string(scan.meta.home_workers) +
              " lease=" + std::to_string(scan.meta.lease_size) + ", run expects total=" +
              std::to_string(expect.total) + " homes=" + std::to_string(expect.home_workers) +
              " lease=" + std::to_string(expect.lease_size) + ")");
        if (!expect.run_id.empty() && !scan.meta.run_id.empty() &&
            scan.meta.run_id != expect.run_id)
          throw std::runtime_error(
              "dist checkpoint: journal belongs to a different run (fingerprint '" +
              scan.meta.run_id + "' != '" + expect.run_id + "')");
      } else if (rec.type == RecordType::kRangeDone && scan.has_meta) {
        RangeRecord range;
        try {
          range = get_range(r);
        } catch (const std::exception&) {
          break;  // structurally damaged despite CRC: stop, recompute the rest
        }
        // Retire the range FIRST: if it does not match the ledger tiling,
        // nothing may reach the merger. mark_span_done accepts both a raw
        // lease record and a compacted span covering several leases.
        if (!ledger->mark_span_done(range.first, range.count))
          throw std::runtime_error(
              "dist checkpoint: journal range [" + std::to_string(range.first) + ", " +
              std::to_string(range.first + range.count) +
              ") does not tile pending ledger ranges (duplicate record or config skew)");
        for (auto& b : range.blocks) merger->add(b.level, b.index, std::move(b.partial));
        scan.ranges += 1;
        scan.tasks += range.count;
      } else {
        break;
      }
      scan.valid_bytes += sizeof(RecordHeader) + rec.payload.size();
    }
    const off_t end = ::lseek(fd, 0, SEEK_END);
    scan.torn_tail = end > 0 && uint64_t(end) > scan.valid_bytes;
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return scan;
}

CompactionStats compact_checkpoint(const std::string& dir) {
  CompactionStats st;
  const std::string path = journal_path(dir);
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return st;  // no journal: nothing to compact

  // Phase 1: scan the valid prefix, keeping every record in memory (the
  // journal is bounded by the run's slice count, and completion-time
  // compaction runs when the coordinator's merger just held the same
  // tensors anyway).
  CheckpointMeta meta;
  bool has_meta = false;
  std::vector<RangeRecord> records;
  uint64_t valid_bytes = 0;
  bool torn_tail = false;
  try {
    for (;;) {
      auto rec = read_record(fd);
      if (!rec.ok) break;
      ByteReader r(rec.payload);
      try {
        if (rec.type == RecordType::kRunMeta && !has_meta) {
          meta = get_meta(r);
          has_meta = true;
        } else if (rec.type == RecordType::kRangeDone && has_meta) {
          records.push_back(get_range(r));
        } else {
          break;
        }
      } catch (const std::exception&) {
        break;  // structurally damaged despite CRC: compact the prefix
      }
      valid_bytes += sizeof(RecordHeader) + rec.payload.size();
    }
    const off_t end = ::lseek(fd, 0, SEEK_END);
    st.bytes_before = end > 0 ? uint64_t(end) : 0;
    torn_tail = st.bytes_before > valid_bytes;
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  st.ranges_before = records.size();
  st.bytes_after = st.bytes_before;
  st.ranges_after = records.size();
  if (!has_meta) return st;  // fresh or foreign file: leave it to replay

  // Phase 2: coalesce contiguous completed ranges into spans. Records are
  // disjoint (the ledger retires each range exactly once) but land in
  // completion order, so sort by task range first.
  std::sort(records.begin(), records.end(),
            [](const RangeRecord& a, const RangeRecord& b) { return a.first < b.first; });
  struct Span {
    uint64_t first = 0;
    uint64_t count = 0;
  };
  std::vector<Span> spans;
  for (const auto& rec : records) {
    if (!spans.empty() && spans.back().first + spans.back().count == rec.first)
      spans.back().count += rec.count;
    else
      spans.push_back({rec.first, rec.count});
  }
  st.ranges_after = spans.size();
  if (spans.size() == records.size() && !torn_tail) return st;  // already minimal

  // Phase 3: tournament-merge every recorded block. The drained result is
  // the maximally-merged decomposition of everything journaled so far; a
  // merged node is by construction fully covered, so each drained block
  // lies inside exactly one span. Re-adding these blocks at replay performs
  // the remaining merges in the same tree positions an uninterrupted run
  // would, keeping the root bit-identical.
  std::vector<MergedBlock> blocks;
  try {
    ShardMerger merger(meta.total);
    for (auto& rec : records)
      for (auto& b : rec.blocks) merger.add(b.level, b.index, std::move(b.partial));
    blocks = merger.drain_blocks();
  } catch (const std::exception&) {
    return st;  // overlapping/out-of-range blocks: let replay reject it loudly
  }

  // Partition the drained blocks into spans and insist each span is tiled
  // exactly (block nominal sizes clip at `total` for promoted ragged-edge
  // nodes). A mismatch means the journal violates the ledger's invariants —
  // leave the file alone so replay reports it against the original bytes.
  std::vector<std::pair<size_t, size_t>> span_blocks;
  {
    size_t bi = 0;
    for (const auto& s : spans) {
      const size_t begin = bi;
      uint64_t covered = 0;
      while (bi < blocks.size() && (blocks[bi].index << blocks[bi].level) < s.first + s.count) {
        const uint64_t f = blocks[bi].index << blocks[bi].level;
        covered += std::min(meta.total - f, uint64_t(1) << blocks[bi].level);
        ++bi;
      }
      if (covered != s.count || bi - begin > 128) return st;
      span_blocks.emplace_back(begin, bi);
    }
    if (bi != blocks.size()) return st;
  }

  // Phase 4: tmp + rename, same record framing the writer uses. The
  // original journal stays valid until the atomic rename lands.
  const std::string tmp = path + ".compact.tmp";
  int wfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0666);
  if (wfd < 0) fail_errno("open " + tmp);
  uint64_t written = 0;
  try {
    auto append = [&](RecordType type, const std::vector<uint8_t>& payload) {
      RecordHeader h{kCheckpointMagic, kCheckpointVersion, host_endian(), uint8_t(type),
                     uint64_t(payload.size()), crc32(payload.data(), payload.size()), 0};
      write_exact(wfd, &h, sizeof(h));
      if (!payload.empty()) write_exact(wfd, payload.data(), payload.size());
      written += sizeof(h) + payload.size();
    };
    ByteWriter mw;
    put_meta(mw, meta);
    append(RecordType::kRunMeta, mw.buffer());
    for (size_t si = 0; si < spans.size(); ++si) {
      ByteWriter w;
      w.put<uint64_t>(spans[si].first);
      w.put<uint64_t>(spans[si].count);
      w.put<uint32_t>(uint32_t(span_blocks[si].second - span_blocks[si].first));
      for (size_t i = span_blocks[si].first; i < span_blocks[si].second; ++i) {
        w.put<int32_t>(int32_t(blocks[i].level));
        w.put<uint64_t>(blocks[i].index);
        put_tensor(w, blocks[i].partial);
      }
      append(RecordType::kRangeDone, w.buffer());
    }
    if (::fsync(wfd) != 0) fail_errno("fsync " + tmp);
  } catch (...) {
    ::close(wfd);
    ::unlink(tmp.c_str());
    throw;
  }
  if (::close(wfd) != 0) {
    ::unlink(tmp.c_str());
    fail_errno("close " + tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail_errno("rename " + tmp);
  }
  // Make the replacement durable: a crash after compaction must find the
  // compacted file, not a unlinked original.
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  st.bytes_after = written;
  st.compacted = true;
  obs::trace_instant(obs::EventKind::kCheckpointAppend, st.bytes_before, st.bytes_after);
  return st;
}

CheckpointWriter::CheckpointWriter(const std::string& dir, const CheckpointMeta& meta,
                                   double fsync_interval_seconds)
    : dir_(dir), fsync_interval_(fsync_interval_seconds) {
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) fail_errno("mkdir " + dir);
  fd_ = ::open(journal_path(dir).c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0666);
  if (fd_ < 0) fail_errno("open " + journal_path(dir));
  ByteWriter w;
  put_meta(w, meta);
  append_record(uint8_t(RecordType::kRunMeta), w.buffer());
  sync();
  // Make the journal's directory entry durable too: a crash right after
  // creation must still find the file on restart.
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

CheckpointWriter::CheckpointWriter(const std::string& dir, uint64_t valid_bytes,
                                   double fsync_interval_seconds)
    : dir_(dir), fsync_interval_(fsync_interval_seconds) {
  fd_ = ::open(journal_path(dir).c_str(), O_WRONLY | O_CLOEXEC);
  if (fd_ < 0) fail_errno("open " + journal_path(dir));
  // Drop the torn tail the replay stopped at, then append. Truncating
  // before the first append keeps the invariant "every byte in the file is
  // a valid record prefix" — garbage mid-file would end a future replay
  // early and silently discard the records behind it.
  if (::ftruncate(fd_, off_t(valid_bytes)) != 0) fail_errno("ftruncate");
  if (::lseek(fd_, 0, SEEK_END) < 0) fail_errno("lseek");
  bytes_ = valid_bytes;
  sync();
}

CheckpointWriter::~CheckpointWriter() {
  if (fd_ >= 0) {
    if (dirty_) ::fsync(fd_);  // best effort; destructors must not throw
    ::close(fd_);
  }
}

void CheckpointWriter::append_record(uint8_t type, const std::vector<uint8_t>& payload) {
  obs::TraceScope tr(obs::EventKind::kCheckpointAppend, sizeof(RecordHeader) + payload.size());
  RecordHeader h{kCheckpointMagic, kCheckpointVersion, host_endian(), type,
                 uint64_t(payload.size()), crc32(payload.data(), payload.size()), 0};
  write_exact(fd_, &h, sizeof(h));
  if (!payload.empty()) write_exact(fd_, payload.data(), payload.size());
  bytes_ += sizeof(h) + payload.size();
  dirty_ = true;
}

void CheckpointWriter::on_range_complete(uint64_t first, uint64_t count,
                                         const std::vector<LedgerBlock>& blocks) {
  ByteWriter w;
  w.put<uint64_t>(first);
  w.put<uint64_t>(count);
  w.put<uint32_t>(uint32_t(blocks.size()));
  for (const auto& b : blocks) {
    w.put<int32_t>(int32_t(b.level));
    w.put<uint64_t>(b.index);
    put_tensor(w, b.partial);
  }
  append_record(uint8_t(RecordType::kRangeDone), w.buffer());
  ++ranges_;
  if (fsync_interval_ <= 0 || last_sync_.seconds() >= fsync_interval_) sync();
}

void CheckpointWriter::sync() {
  obs::TraceScope tr(obs::EventKind::kCheckpointFsync, bytes_);
  if (::fsync(fd_) != 0) fail_errno("fsync");
  dirty_ = false;
  ++syncs_;
  last_sync_.reset();
}

std::string CheckpointWriter::health_json() const {
  // Minimal escaping for the directory path (it is operator-supplied text
  // inside a JSON string).
  std::string dir;
  for (char c : dir_) {
    if (c == '"' || c == '\\') dir += '\\';
    if (uint8_t(c) >= 0x20) dir += c;
  }
  std::ostringstream o;
  o.setf(std::ios::fixed);
  o << std::setprecision(3);
  o << "{\"dir\":\"" << dir << "\",\"journal_bytes\":" << bytes_
    << ",\"ranges_journaled\":" << ranges_ << ",\"fsyncs\":" << syncs_
    << ",\"last_fsync_age_seconds\":" << last_sync_.seconds()
    << ",\"dirty\":" << (dirty_ ? "true" : "false") << "}";
  return o.str();
}

}  // namespace ltns::dist
