// The shared job vocabulary of the TCP drivers: the kJob payload every
// worker replans from, the client-facing JobSpec/JobResultRecord payloads
// of the multi-tenant job server (dist/server.hpp), and the socket/plan
// helpers all of service.cpp, server.cpp and client.cpp need. Factored out
// of service.cpp's anonymous namespace when the job server arrived — there
// must be exactly ONE definition of "what a job is on the wire".
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/telemetry.hpp"
#include "cache/cache.hpp"
#include "circuit/circuit.hpp"
#include "circuit/lowering.hpp"
#include "core/planner.hpp"
#include "dist/wire.hpp"
#include "query/query.hpp"

namespace ltns::dist {

// One job = everything a worker needs to reproduce the coordinator's plan
// and run its shard window.
struct Job {
  uint64_t job_id = 0;  // v5: job-server routing key; 0 for one-shot runs
  std::string circuit_text;
  std::string bits;  // '0'/'1' per qubit
  double target_log2size = 16;
  uint64_t plan_seed = 0;
  uint32_t executor = 0;
  uint64_t grain = 1;
  int32_t workers = 0;
  int32_t num_slices = 0;  // coordinator's |S|; worker must agree
  int32_t shard_id = 0;
  uint64_t first = 0;
  uint64_t count = 0;  // ignored when elastic
  uint32_t fused = 1;
  uint64_t ldm_elems = 32768;
  uint32_t elastic = 0;
  double heartbeat_seconds = 0.2;
  std::string backend = "host";  // default device backend; workers may override
  uint32_t trace = 0;  // arm the worker's event tracer; chunk ships via kTrace
  // v6: open output qubits (sorted ascending; empty = closed amplitude
  // job). Workers lower with these open and accumulate a rank-|open| shard
  // instead of a scalar — the query engine's batch groups run through the
  // same lease protocol as classic jobs.
  std::vector<int> open_qubits;
};

void put_job(ByteWriter& w, const Job& j);
Job get_job(ByteReader& r);

// What a client submits: the circuit + plan knobs plus the scheduling
// identity (tenant, weight, priority) the server's fair-share queue keys
// on. Everything execution-related lands in the Job the server derives.
struct JobSpec {
  std::string name;              // human label; "" = server assigns job-<id>
  std::string tenant = "default";
  uint32_t weight = 1;           // fair-share weight; 0 = background-only
  int32_t priority = 0;          // within-tenant tiebreak, higher first
  std::string circuit_text;
  std::string bits;              // '0'/'1' per qubit
  double target_log2size = 16;
  // Default matches the solo path's PlanOptions seed so a submitted spec
  // derives the same plan/result cache keys a solo `amp` run would — the
  // store is shared across transports (docs/caching.md).
  uint64_t plan_seed = core::PlanOptions{}.seed;
  uint32_t fused = 1;
  uint64_t ldm_elems = 32768;
  // v6: job kind. "amp" (default) is the classic single-amplitude job;
  // "query" submits a whole query file (`query_text`, the format
  // query::parse_queries reads) answered through shared batch contractions.
  // `bits` then carries the all-zero base string (its length = num qubits).
  std::string kind = "amp";
  std::string query_text;
  int32_t max_open = 6;           // query grouper merge bound
  std::string amp_mode = "exact"; // "exact" | "grouped" (docs/queries.md)
  // v7: GEMM operand precision, "fp32" (bitwise contract) or "bf16" (mixed
  // precision, deterministic + ULP-bounded). The server folds this into the
  // backend spec of every Job it derives for this submission.
  std::string precision = "fp32";
};

void put_job_spec(ByteWriter& w, const JobSpec& s);
JobSpec get_job_spec(ByteReader& r);

// Job lifecycle as the server reports it. Values are wire ABI (v5).
enum class JobState : uint32_t {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,
  kFailed = 3,
  kCancelled = 4,
};
const char* job_state_name(JobState s);

// Terminal record of one job, served by kFetchResult and persisted under
// the server's state dir so results survive a server restart.
struct JobResultRecord {
  uint64_t job_id = 0;
  JobState state = JobState::kQueued;
  std::string name;
  std::string tenant;
  std::string error;
  double amplitude_re = 0;
  double amplitude_im = 0;
  int32_t num_slices = 0;
  double wall_seconds = 0;
  uint64_t tasks_run = 0;
  api::RunTelemetry telemetry;
  // v6: "amp" records answer with amplitude_re/im as before; "query"
  // records carry one QueryResult per query in file order.
  std::string kind = "amp";
  std::vector<query::QueryResult> query_results;
};

void put_result_record(ByteWriter& w, const JobResultRecord& r);
JobResultRecord get_result_record(ByteReader& r);

// One query answer on the wire (shared by result records and tests).
void put_query_result(ByteWriter& w, const query::QueryResult& q);
query::QueryResult get_query_result(ByteReader& r);

// RunTelemetry (and its RebalanceStats leg) on the wire — the result frame
// carries the same telemetry tail a solo api::Simulator run returns.
void put_rebalance(ByteWriter& w, const RebalanceStats& s);
RebalanceStats get_rebalance(ByteReader& r);
void put_run_telemetry(ByteWriter& w, const api::RunTelemetry& t);
api::RunTelemetry get_run_telemetry(ByteReader& r);

// The deterministic plan both sides derive independently from the job spec.
// This MUST mirror api::Simulator's prepare pipeline (lower -> simplify ->
// make_plan with default options beyond target/seed) — the documented
// bitwise comparability of `coordinate` vs `amp` depends on it, and the CI
// distributed job diffs the two amplitude lines on every push to catch
// drift.
struct Prepared {
  circuit::LoweredNetwork lowered;
  core::Plan plan;
};
// Heap-allocated on purpose: the plan's ContractionTree stores a raw
// pointer to `lowered.net`, so a Prepared must never move after planning.
// Returning unique_ptr keeps the pointee at one address for its lifetime.
std::unique_ptr<Prepared> prepare_job(const circuit::Circuit& c, const std::vector<int>& bits,
                                      double target, uint64_t seed,
                                      const std::vector<int>& open_qubits = {});

// Cache-aware variant: consults `plan_cache` (content-addressed over the
// job inputs and the exact PlanOptions this function derives) before
// invoking the path optimizer, and inserts a freshly computed plan on a
// miss. `circuit_text` must be the text `c` was parsed from — the key
// hashes the text, not the parsed form. `plan_cache` may be null (plain
// prepare). `from_cache` (optional) reports whether planning was skipped.
// `open_qubits` (v6) leaves those qubits open: the plan contracts to a
// rank-|open| batch tensor instead of a scalar.
std::unique_ptr<Prepared> prepare_job(const circuit::Circuit& c, const std::string& circuit_text,
                                      const std::vector<int>& bits, double target, uint64_t seed,
                                      cache::PlanCache* plan_cache, bool* from_cache = nullptr,
                                      const std::vector<int>& open_qubits = {});

// --- small socket helpers shared by every TCP driver ----------------------

void close_fd(int* fd);

// Best-effort kError frame; never throws (the peer may already be gone).
void send_error(int fd, const std::string& msg);

// Resolves `host` and connects, walking EVERY resolved address per
// attempt (a stale first A record must not mask a working one) and
// retrying every 500 ms up to `attempts` times so callers may start
// before their peer. Returns -1 when nothing answered.
int connect_to(const std::string& host, uint16_t port, int attempts);

}  // namespace ltns::dist
