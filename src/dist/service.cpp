#include "dist/service.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <memory>
#include <stdexcept>

#include <sys/time.h>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "circuit/io.hpp"
#include "circuit/lowering.hpp"
#include "core/planner.hpp"
#include "device/backend.hpp"
#include "dist/checkpoint.hpp"
#include "dist/elastic.hpp"
#include "dist/job.hpp"
#include "dist/server.hpp"
#include "dist/shard_merge.hpp"
#include "dist/shard_plan.hpp"
#include "dist/shard_stream.hpp"
#include "obs/trace.hpp"
#include "runtime/slice_scheduler.hpp"
#include "util/timer.hpp"

// The job/spec/result wire payloads, the deterministic prepare_job pipeline
// and the socket helpers live in dist/job.hpp — shared with the multi-tenant
// job server (dist/server.hpp) and its client (dist/client.hpp).

namespace ltns::dist {

CoordinatorServer::CoordinatorServer(uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("dist service: socket failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    close_fd(&listen_fd_);
    throw std::runtime_error("dist service: bind/listen failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

CoordinatorServer::~CoordinatorServer() { close_fd(&listen_fd_); }

CoordinatorResult CoordinatorServer::run_amplitude(int num_workers, const circuit::Circuit& c,
                                                   const std::vector<int>& bits,
                                                   const ServiceOptions& opt) {
  std::signal(SIGPIPE, SIG_IGN);
  CoordinatorResult res;
  Timer wall;
  auto prep = prepare_job(c, bits, opt.target_log2size, core::PlanOptions{}.seed);
  Prepared& p = *prep;
  res.num_slices = p.plan.num_slices();
  if (p.plan.num_slices() >= 57) {  // same bound run_sharded enforces
    res.error = "too many sliced edges";
    return res;
  }
  const uint64_t total = uint64_t(1) << p.plan.num_slices();
  const auto shards = make_shard_plan(total, std::max(1, num_workers));

  Job base;
  base.circuit_text = circuit::circuit_to_string(c);
  base.bits.reserve(bits.size());
  for (int b : bits) base.bits.push_back(b != 0 ? '1' : '0');
  base.target_log2size = opt.target_log2size;
  base.plan_seed = core::PlanOptions{}.seed;
  base.executor = uint32_t(opt.executor);
  base.grain = opt.grain;
  base.workers = opt.workers_per_process;
  base.num_slices = int32_t(p.plan.num_slices());
  base.fused = opt.fused ? 1 : 0;
  base.ldm_elems = opt.ldm_elems;
  base.backend = opt.backend.empty() ? "host" : opt.backend;
  base.trace = opt.trace ? 1 : 0;

  // Shared tail of both drivers: fold the merged root into the amplitude.
  auto finish_amplitude = [&p, &res](ShardMerger& merger) {
    if (!res.error.empty()) return;
    if (!merger.complete()) {
      res.error = "reduction incomplete despite clean workers";
      return;
    }
    auto root = merger.take_root();
    if (root.rank() != 0 || root.size() != 1) {
      res.error = "amplitude job produced a non-scalar root";
      return;
    }
    res.amplitude = std::complex<double>(root.data()[0]) * p.lowered.scalar;
    res.completed = true;
  };

  if (opt.elastic) {
    // Elastic: the coordinator's poll loop owns the listener — workers
    // join whenever they connect (even mid-run, `num_workers` is only the
    // notional home-window count for the lease queue), status probes are
    // answered in-line, and dead or stalled workers have their leases
    // requeued instead of failing the run.
    ElasticOptions eo;
    eo.lease_size = opt.lease_size;
    eo.heartbeat_seconds = opt.heartbeat_seconds;
    eo.stall_timeout_seconds = opt.stall_timeout_seconds;
    eo.accept_timeout_seconds = opt.accept_timeout_seconds;
    ElasticCoordinator coord(total, std::max(1, num_workers), eo);
    if (!opt.metrics_out.empty() && opt.metrics_interval_seconds > 0)
      coord.set_metrics_snapshot(opt.metrics_out, opt.metrics_interval_seconds);
    coord.set_listener(listen_fd_, [&](int fd, int worker_id) {
      Job j = base;
      j.elastic = 1;
      j.heartbeat_seconds = opt.heartbeat_seconds;
      j.shard_id = worker_id;
      ByteWriter w;
      put_job(w, j);
      write_frame(fd, FrameType::kJob, w);
    });
    ShardMerger merger(total);
    // Durable run ledger: replay a crashed coordinator's journal into the
    // fresh ledger + merger, then spill every completed range write-ahead.
    std::unique_ptr<CheckpointWriter> journal;
    if (!opt.spill_dir.empty()) {
      try {
        CheckpointMeta meta;
        meta.total = total;
        meta.home_workers = std::max(1, num_workers);
        meta.lease_size = coord.ledger().lease_size();
        // Canonical fingerprint over the job inputs + the resolved plan:
        // matches what the Simulator writes for the same job, so a journal
        // spilled by the fork driver can resume here and vice versa.
        meta.run_id = run_fingerprint(base.circuit_text, base.bits, /*open_qubits=*/"",
                                      opt.fused, opt.ldm_elems, p.plan.path,
                                      p.plan.slices.to_vector());
        journal = open_or_resume_journal(opt.spill_dir, meta, opt.resume,
                                         opt.spill_fsync_seconds, &coord.mutable_ledger(),
                                         &merger);
        coord.set_journal(journal.get());
      } catch (const std::exception& e) {
        res.error = e.what();
        res.rebalance = coord.ledger().stats();
        res.wall_seconds = wall.seconds();
        return res;
      }
    }
    res.error = coord.run(&merger);
    if (journal && res.error.empty()) {
      // Clean finish: close the writer, then shrink the journal to its
      // single-span form so an unconditional --resume replays one record.
      coord.set_journal(nullptr);
      journal.reset();
      try {
        compact_checkpoint(opt.spill_dir);
      } catch (const std::exception&) {
        // Compaction is an optimization; the full journal still resumes.
      }
    }
    res.shards = coord.telemetry();
    res.rebalance = coord.ledger().stats();
    for (const auto& t : res.shards) res.tasks_run += t.tasks_run;
    res.wall_seconds = wall.seconds();
    finish_amplitude(merger);
    return res;
  }

  // Accept every worker and hand out all the jobs BEFORE draining any
  // result stream, so the shards run concurrently. The accept wait is
  // bounded: a worker that dies before connecting must produce an error,
  // not an indefinite hang (socket EOF only covers connected workers).
  if (opt.accept_timeout_seconds > 0) {
    timeval tv{};
    tv.tv_sec = opt.accept_timeout_seconds;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  std::vector<int> fds(size_t(num_workers), -1);
  for (int i = 0; i < num_workers && res.error.empty(); ++i) {
    for (;;) {  // re-accept this slot when a non-worker connection shows up
      fds[size_t(i)] = ::accept(listen_fd_, nullptr, nullptr);
      if (fds[size_t(i)] < 0) {
        res.error = (errno == EAGAIN || errno == EWOULDBLOCK)
                        ? "timed out waiting for worker " + std::to_string(i) + " to connect"
                        : "accept failed";
        break;
      }
      // Accepted sockets inherit the listener's SO_RCVTIMEO on Linux; clear
      // it so a long-running shard (first block slower than the accept
      // timeout) doesn't turn into a spurious read error mid-drain.
      timeval no_timeout{};
      ::setsockopt(fds[size_t(i)], SOL_SOCKET, SO_RCVTIMEO, &no_timeout, sizeof(no_timeout));
      try {
        Frame hello;
        if (!read_frame(fds[size_t(i)], &hello) || hello.type != FrameType::kHello) {
          // A stray status probe (or any non-worker) must not consume a
          // worker slot and abort a whole fleet's run: answer and keep
          // waiting for the real worker.
          if (hello.type == FrameType::kStatusRequest) {
            send_error(fds[size_t(i)],
                       "this coordinator runs the static driver; live lease state "
                       "exists only under --elastic");
            close_fd(&fds[size_t(i)]);
            continue;
          }
          throw std::runtime_error("worker did not say hello");
        }
        Job j = base;
        j.shard_id = i;
        j.first = shards[size_t(i)].first;
        j.count = shards[size_t(i)].count;
        ByteWriter w;
        put_job(w, j);
        write_frame(fds[size_t(i)], FrameType::kJob, w);
      } catch (const std::exception& e) {
        res.error = "worker " + std::to_string(i) + ": " + e.what();
      }
      break;
    }
  }

  ShardMerger merger(total);
  res.shards.assign(size_t(num_workers), {});
  if (res.error.empty()) {
    for (int i = 0; i < num_workers; ++i) {
      auto err = drain_shard_stream(fds[size_t(i)], &merger, &res.shards[size_t(i)]);
      if (!err.empty()) {
        if (!res.error.empty()) res.error += "; ";
        res.error += "worker " + std::to_string(i) + ": " + err;
      }
    }
  }
  for (int& fd : fds) close_fd(&fd);

  for (const auto& t : res.shards) res.tasks_run += t.tasks_run;
  res.wall_seconds = wall.seconds();
  finish_amplitude(merger);
  return res;
}

int serve_worker(const std::string& host, uint16_t port, const std::string& backend_override) {
  std::signal(SIGPIPE, SIG_IGN);
  // ~10s of connect retries: workers may be launched before (or alongside)
  // the coordinator.
  int fd = connect_to(host, port, 20);
  if (fd < 0) return 2;

  int rc = 0;
  try {
    write_frame(fd, FrameType::kHello, nullptr, 0);
    Frame f;
    if (!read_frame(fd, &f)) throw std::runtime_error("expected a job frame");
    if (f.type == FrameType::kWelcome) {
      // A kWelcome instead of a kJob means the peer is the multi-tenant job
      // server: same `ltns_cli worker` binary joins either kind of
      // coordinator, the first frame decides which protocol it speaks.
      ByteReader wr(f.payload);
      const int worker_id = int(wr.get<int32_t>());
      const double heartbeat_seconds = wr.get<double>();
      rc = serve_fleet_worker(fd, worker_id, heartbeat_seconds, backend_override);
      ::close(fd);
      return rc;
    }
    if (f.type != FrameType::kJob) throw std::runtime_error("expected a job frame");
    ByteReader jr(f.payload);
    Job job = get_job(jr);

    // A traced job arms this process's tracer under its assigned worker id;
    // the chunk ships back over kTrace at drain time, so the coordinator's
    // timeline renders one lane per remote process.
    if (job.trace != 0) obs::Tracer::instance().enable(int(job.shard_id));

    auto circ = circuit::circuit_from_string(job.circuit_text);
    std::vector<int> bits;
    bits.reserve(job.bits.size());
    for (char ch : job.bits) bits.push_back(ch == '1');
    auto prep = prepare_job(circ, bits, job.target_log2size, job.plan_seed, job.open_qubits);
    Prepared& p = *prep;
    if (p.plan.num_slices() != int(job.num_slices))
      throw std::runtime_error("plan mismatch: local |S| = " +
                               std::to_string(p.plan.num_slices()) + ", coordinator expected " +
                               std::to_string(job.num_slices));
    const uint64_t totalv = uint64_t(1) << p.plan.num_slices();
    if (job.first + job.count > totalv)
      throw std::runtime_error("shard window outside the task range");

    const int workers = job.workers > 0 ? job.workers : 0;  // 0 = hardware
    ThreadPool pool(workers);
    runtime::SliceScheduler sched(workers);
    // This worker's hardware decides the backend NAME: the CLI override
    // wins, then the job's default. The job's precision sticks to the
    // override unless it pins its own (+fp32/+bf16) — bitwise identity
    // across conforming backends at one precision is what lets a
    // heterogeneous fleet share one reduction.
    const std::string backend_name = device::merge_backend_override(job.backend, backend_override);
    auto backend = device::make_backend(backend_name);
    auto leaves = [&ln = p.lowered](tn::VertId v) -> const exec::Tensor& {
      return ln.tensors[size_t(v)];
    };
    exec::FusedPlan fused_plan;
    const exec::FusedPlan* fused = nullptr;
    if (job.fused != 0) {
      fused_plan =
          exec::plan_fused(p.plan.stem, p.plan.slices.to_vector(), size_t(job.ldm_elems));
      fused = &fused_plan;
    }

    ShardStreamOptions so;
    so.executor = exec::SliceExecutor(job.executor);
    so.grain = job.grain;
    so.pool = &pool;
    so.scheduler = &sched;
    so.fused = fused;
    so.backend = backend.get();
    so.backend_name = backend_name;
    if (job.elastic != 0) {
      ElasticWorkerOptions eo;
      eo.stream = so;
      eo.worker_id = int(job.shard_id);
      eo.heartbeat_seconds = job.heartbeat_seconds;
      serve_elastic_shard(fd, *p.plan.tree, leaves, p.plan.slices, eo);
    } else {
      stream_shard_window(fd, int(job.shard_id), job.first, job.count, *p.plan.tree, leaves,
                          p.plan.slices, so);
    }
  } catch (const std::exception& e) {
    send_error(fd, e.what());
    rc = 1;
  }
  ::close(fd);
  return rc;
}

std::string query_status(const std::string& host, uint16_t port) {
  std::signal(SIGPIPE, SIG_IGN);
  // One attempt: a probe should fail fast when nothing is listening.
  int fd = connect_to(host, port, 1);
  if (fd < 0)
    throw std::runtime_error("status: no coordinator listening on " + host + ":" +
                             std::to_string(port));
  try {
    write_frame(fd, FrameType::kStatusRequest, nullptr, 0);
    Frame f;
    if (!read_frame(fd, &f)) throw std::runtime_error("status: coordinator did not answer");
    ByteReader r(f.payload);
    if (f.type == FrameType::kError) throw std::runtime_error("status: " + r.get_string());
    if (f.type != FrameType::kStatus)
      throw std::runtime_error("status: unexpected reply frame");
    auto json = r.get_string();
    ::close(fd);
    return json;
  } catch (...) {
    ::close(fd);
    throw;
  }
}

}  // namespace ltns::dist
