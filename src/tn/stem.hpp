// Stem extraction (§4.2).
//
// The *stem* is the most computationally intensive root-to-leaf path of the
// contraction tree: a chain of nested subtrees in which a big tensor
// sequentially absorbs the (pre-contracted) *branches*. About 99% of the
// flops of Sycamore-class contractions happen on the stem, so the slicing
// optimizers (core/) operate on it.
//
// Because the stem subtrees are nested, every edge's lifetime restricted to
// the stem is a contiguous interval of stem positions — the interval
// arithmetic the paper's Algorithm 1/2 rely on.
#pragma once

#include <vector>

#include "tn/contraction_tree.hpp"

namespace ltns::tn {

struct Stem {
  const ContractionTree* tree = nullptr;
  // Tree node ids from the bottom of the stem to the root, inclusive.
  // nodes[i+1] is the contraction of nodes[i] with branches[i].
  std::vector<int> nodes;
  std::vector<int> branches;  // size nodes.size() - 1

  int length() const { return int(nodes.size()); }
  // log2 size of the i-th stem tensor.
  double log2size(int i) const { return tree->node(nodes[size_t(i)]).log2size; }
  // log2 flops of step i (producing nodes[i+1]).
  double step_log2cost(int i) const { return tree->node(nodes[size_t(i) + 1]).log2cost; }
  // Total log2 flops spent on stem steps.
  double total_log2cost() const;
  // Fraction of the whole tree's flops spent on the stem (linear domain).
  double cost_fraction() const;
};

// Walks from the root into the child with the larger total subtree cost
// until reaching a leaf.
Stem extract_stem(const ContractionTree& tree);

// Subtree total log2 cost for every node (used by stem extraction and the
// path local-tuning pass).
std::vector<double> subtree_log2costs(const ContractionTree& tree);

}  // namespace ltns::tn
