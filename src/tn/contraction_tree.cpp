#include "tn/contraction_tree.hpp"

#include <cassert>

namespace ltns::tn {

double log2w_of(const TensorNetwork& net, const IndexSet& set) {
  double w = 0;
  set.for_each([&](int e) { w += net.edge(e).log2w; });
  return w;
}

ContractionTree ContractionTree::build(const TensorNetwork& net, const SsaPath& path) {
  ContractionTree t;
  t.net_ = &net;
  const int L = int(path.leaf_vertices.size());
  assert(L >= 1);
  assert(int(path.steps.size()) == L - 1 && "path must contract to a single tensor");
  t.num_leaves_ = L;
  t.nodes_.reserve(size_t(2 * L - 1));

  for (VertId v : path.leaf_vertices) {
    Node n;
    n.leaf_vertex = v;
    n.ixs = net.vertex_index_set(v);
    n.log2size = net.vertex_log2size(v);
    t.max_log2size_ = std::max(t.max_log2size_, n.log2size);
    t.nodes_.push_back(std::move(n));
  }

  Log2Accumulator cost;
  for (auto [a, b] : path.steps) {
    assert(a >= 0 && b >= 0 && a != b && a < int(t.nodes_.size()) && b < int(t.nodes_.size()));
    assert(t.nodes_[size_t(a)].parent == -1 && t.nodes_[size_t(b)].parent == -1 &&
           "path reuses an already-contracted id");
    Node n;
    n.left = a;
    n.right = b;
    n.union_ixs = t.nodes_[size_t(a)].ixs | t.nodes_[size_t(b)].ixs;
    n.ixs = t.nodes_[size_t(a)].ixs ^ t.nodes_[size_t(b)].ixs;
    n.log2size = log2w_of(net, n.ixs);
    n.log2cost = log2w_of(net, n.union_ixs);
    cost.add(n.log2cost);
    t.max_log2size_ = std::max(t.max_log2size_, n.log2size);
    t.max_union_log2size_ = std::max(t.max_union_log2size_, n.log2cost);
    int id = int(t.nodes_.size());
    t.nodes_[size_t(a)].parent = id;
    t.nodes_[size_t(b)].parent = id;
    t.nodes_.push_back(std::move(n));
  }
  t.root_ = int(t.nodes_.size()) - 1;
  t.total_log2cost_ = cost.value();
  return t;
}

std::vector<int> ContractionTree::postorder() const {
  // Nodes are created children-first by build(), so identity order is a
  // valid postorder.
  std::vector<int> order(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) order[i] = int(i);
  return order;
}

SsaPath to_ssa_path(const ContractionTree& tree) {
  SsaPath p;
  const int n = tree.num_nodes();
  std::vector<int> ssa(size_t(n), -1);
  // Iterative postorder from the root.
  std::vector<std::pair<int, int>> stack{{tree.root(), 0}};
  int next_internal = tree.num_leaves();
  while (!stack.empty()) {
    auto& [id, phase] = stack.back();
    const auto& nd = tree.node(id);
    if (nd.is_leaf()) {
      ssa[size_t(id)] = int(p.leaf_vertices.size());
      p.leaf_vertices.push_back(nd.leaf_vertex);
      stack.pop_back();
    } else if (phase == 0) {
      phase = 1;
      stack.push_back({nd.left, 0});
    } else if (phase == 1) {
      phase = 2;
      stack.push_back({nd.right, 0});
    } else {
      p.steps.emplace_back(ssa[size_t(nd.left)], ssa[size_t(nd.right)]);
      ssa[size_t(id)] = next_internal++;
      stack.pop_back();
    }
  }
  return p;
}

bool ContractionTree::validate(std::string* why) const {
  auto fail = [&](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };
  if (root_ < 0) return fail("no root");
  std::vector<int> leaf_seen(size_t(net_->num_vertices()), 0);
  for (int i = 0; i < num_nodes(); ++i) {
    const Node& n = nodes_[size_t(i)];
    if (n.is_leaf()) {
      if (n.leaf_vertex == kNone) return fail("leaf without vertex");
      leaf_seen[size_t(n.leaf_vertex)]++;
      if (n.ixs != net_->vertex_index_set(n.leaf_vertex))
        return fail("leaf index set does not match vertex");
    } else {
      if (n.right < 0) return fail("internal node with one child");
      const Node& l = nodes_[size_t(n.left)];
      const Node& r = nodes_[size_t(n.right)];
      if (l.parent != i || r.parent != i) return fail("parent pointers disagree");
      if (n.ixs != (l.ixs ^ r.ixs)) return fail("XOR rule violated");
      if (n.union_ixs != (l.ixs | r.ixs)) return fail("union set stale");
    }
    if (i != root_ && n.parent < 0) return fail("disconnected node");
    if (i == root_ && n.parent != -1) return fail("root has parent");
  }
  for (VertId v : net_->alive_vertices())
    if (leaf_seen[size_t(v)] != 1) return fail("alive vertex not covered exactly once");
  // Root must carry exactly the open edges.
  IndexSet open(net_->num_edges());
  for (EdgeId e : net_->open_edges()) open.insert(e);
  if (nodes_[size_t(root_)].ixs != open) return fail("root does not carry exactly the open edges");
  return true;
}

}  // namespace ltns::tn
