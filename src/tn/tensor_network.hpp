// TensorNetwork: the undirected-graph view of a tensor network (§2.1.1).
//
// Vertices are tensors, edges are shared indices (dimensions). Every edge
// carries a log2 weight: w(e) = 2^log2w is the extent of that dimension; in
// quantum-circuit networks log2w == 1 for every edge. Edges may be *open*
// (one endpoint, endpoint b == kNone): these are uncontracted output indices
// used for correlated-sample batches.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "util/index_set.hpp"

namespace ltns::tn {

using VertId = int;
using EdgeId = int;
inline constexpr int kNone = -1;

class TensorNetwork {
 public:
  struct Vertex {
    std::vector<EdgeId> edges;  // incidence list, in tensor index order
    bool alive = true;
    std::string tag;  // provenance (gate name, grid position, ...)
  };
  struct Edge {
    VertId a = kNone;
    VertId b = kNone;  // kNone for open edges
    double log2w = 1.0;
    bool alive = true;
  };

  VertId add_vertex(std::string tag = {});
  // Adds an edge between a and b (b == kNone makes an open edge) and appends
  // it to the incidence lists.
  EdgeId add_edge(VertId a, VertId b, double log2w = 1.0);

  int num_vertices() const { return int(verts_.size()); }
  int num_edges() const { return int(edges_.size()); }
  int num_alive_vertices() const;
  int num_alive_edges() const;

  const Vertex& vertex(VertId v) const { return verts_[size_t(v)]; }
  const Edge& edge(EdgeId e) const { return edges_[size_t(e)]; }
  Vertex& vertex(VertId v) { return verts_[size_t(v)]; }
  Edge& edge(EdgeId e) { return edges_[size_t(e)]; }

  // The incidence set s_v as a bitset over edge ids.
  IndexSet vertex_index_set(VertId v) const;
  // log2 of the number of elements of tensor v.
  double vertex_log2size(VertId v) const;
  // Rank counted as number of incident alive edges.
  int vertex_rank(VertId v) const { return int(verts_[size_t(v)].edges.size()); }

  // The other endpoint of e seen from v (kNone if open).
  VertId neighbor_via(VertId v, EdgeId e) const;
  std::vector<VertId> neighbors(VertId v) const;
  std::vector<VertId> alive_vertices() const;
  std::vector<EdgeId> alive_edges() const;
  std::vector<EdgeId> open_edges() const;

  // Graph-level vertex contraction (§2.1.1): merges b into a. Shared edges
  // are killed; surviving edges of b are re-pointed at a. Returns a. Used by
  // the circuit simplifier; path finders work on snapshots instead.
  VertId contract(VertId a, VertId b);

  // Attaches the dangling end of an open edge to vertex v (circuit
  // lowering builds qubit worldlines this way).
  void connect_open_edge(EdgeId e, VertId v);

  // Drops an open edge (used when fixing an output index).
  void close_open_edge(EdgeId e);

  // Structural sanity: incidence lists and endpoints agree, no dead refs.
  bool validate(std::string* why = nullptr) const;

  // Total log2 cost of contracting a-b pairwise: product of weights over
  // s_a ∪ s_b (matches a single term of Eq. 1).
  double pair_contraction_log2cost(VertId a, VertId b) const;

 private:
  std::vector<Vertex> verts_;
  std::vector<Edge> edges_;
};

// Builds a random connected network with `nv` vertices and average degree
// `deg` (unit edge weights). Used by property tests and optimizer fuzzing.
TensorNetwork random_network(int nv, double deg, uint64_t seed);

}  // namespace ltns::tn
