#include "tn/tensor_network.hpp"

#include <algorithm>
#include <cassert>

#include "util/rng.hpp"

namespace ltns::tn {

VertId TensorNetwork::add_vertex(std::string tag) {
  verts_.push_back(Vertex{{}, true, std::move(tag)});
  return VertId(verts_.size() - 1);
}

EdgeId TensorNetwork::add_edge(VertId a, VertId b, double log2w) {
  assert(a >= 0 && a < num_vertices());
  assert(b == kNone || (b >= 0 && b < num_vertices()));
  EdgeId e = EdgeId(edges_.size());
  edges_.push_back(Edge{a, b, log2w, true});
  verts_[size_t(a)].edges.push_back(e);
  if (b != kNone) verts_[size_t(b)].edges.push_back(e);
  return e;
}

int TensorNetwork::num_alive_vertices() const {
  int c = 0;
  for (const auto& v : verts_) c += v.alive;
  return c;
}

int TensorNetwork::num_alive_edges() const {
  int c = 0;
  for (const auto& e : edges_) c += e.alive;
  return c;
}

IndexSet TensorNetwork::vertex_index_set(VertId v) const {
  IndexSet s(num_edges());
  for (EdgeId e : verts_[size_t(v)].edges) s.insert(e);
  return s;
}

double TensorNetwork::vertex_log2size(VertId v) const {
  double sz = 0;
  for (EdgeId e : verts_[size_t(v)].edges) sz += edges_[size_t(e)].log2w;
  return sz;
}

VertId TensorNetwork::neighbor_via(VertId v, EdgeId e) const {
  const Edge& ed = edges_[size_t(e)];
  assert(ed.a == v || ed.b == v);
  return ed.a == v ? ed.b : ed.a;
}

std::vector<VertId> TensorNetwork::neighbors(VertId v) const {
  std::vector<VertId> out;
  for (EdgeId e : verts_[size_t(v)].edges) {
    if (!edges_[size_t(e)].alive) continue;
    VertId u = neighbor_via(v, e);
    if (u != kNone && std::find(out.begin(), out.end(), u) == out.end()) out.push_back(u);
  }
  return out;
}

std::vector<VertId> TensorNetwork::alive_vertices() const {
  std::vector<VertId> out;
  for (VertId v = 0; v < num_vertices(); ++v)
    if (verts_[size_t(v)].alive) out.push_back(v);
  return out;
}

std::vector<EdgeId> TensorNetwork::alive_edges() const {
  std::vector<EdgeId> out;
  for (EdgeId e = 0; e < num_edges(); ++e)
    if (edges_[size_t(e)].alive) out.push_back(e);
  return out;
}

std::vector<EdgeId> TensorNetwork::open_edges() const {
  std::vector<EdgeId> out;
  for (EdgeId e = 0; e < num_edges(); ++e)
    if (edges_[size_t(e)].alive && edges_[size_t(e)].b == kNone) out.push_back(e);
  return out;
}

VertId TensorNetwork::contract(VertId a, VertId b) {
  assert(a != b);
  Vertex& va = verts_[size_t(a)];
  Vertex& vb = verts_[size_t(b)];
  assert(va.alive && vb.alive);

  // Kill edges shared by a and b; re-point b's survivors at a.
  std::vector<EdgeId> merged;
  merged.reserve(va.edges.size() + vb.edges.size());
  for (EdgeId e : va.edges) {
    Edge& ed = edges_[size_t(e)];
    if (!ed.alive) continue;
    VertId other = ed.a == a ? ed.b : ed.a;
    if (other == b) {
      ed.alive = false;
    } else {
      merged.push_back(e);
    }
  }
  for (EdgeId e : vb.edges) {
    Edge& ed = edges_[size_t(e)];
    if (!ed.alive) continue;
    if (ed.a == b) ed.a = a;
    if (ed.b == b) ed.b = a;
    merged.push_back(e);
  }
  va.edges = std::move(merged);
  vb.alive = false;
  vb.edges.clear();
  return a;
}

void TensorNetwork::connect_open_edge(EdgeId e, VertId v) {
  Edge& ed = edges_[size_t(e)];
  assert(ed.alive && ed.b == kNone && v != kNone);
  ed.b = v;
  verts_[size_t(v)].edges.push_back(e);
}

void TensorNetwork::close_open_edge(EdgeId e) {
  Edge& ed = edges_[size_t(e)];
  assert(ed.alive && ed.b == kNone);
  ed.alive = false;
  auto& inc = verts_[size_t(ed.a)].edges;
  inc.erase(std::remove(inc.begin(), inc.end(), e), inc.end());
}

bool TensorNetwork::validate(std::string* why) const {
  auto fail = [&](const char* msg) {
    if (why) *why = msg;
    return false;
  };
  for (EdgeId e = 0; e < num_edges(); ++e) {
    const Edge& ed = edges_[size_t(e)];
    if (!ed.alive) continue;
    if (ed.a == kNone) return fail("edge with no primary endpoint");
    for (VertId v : {ed.a, ed.b}) {
      if (v == kNone) continue;
      if (!verts_[size_t(v)].alive) return fail("edge points at dead vertex");
      const auto& inc = verts_[size_t(v)].edges;
      if (std::count(inc.begin(), inc.end(), e) != 1)
        return fail("endpoint incidence list does not contain edge exactly once");
    }
  }
  for (VertId v = 0; v < num_vertices(); ++v) {
    const Vertex& vx = verts_[size_t(v)];
    if (!vx.alive) continue;
    for (EdgeId e : vx.edges) {
      const Edge& ed = edges_[size_t(e)];
      if (!ed.alive) return fail("vertex lists dead edge");
      if (ed.a != v && ed.b != v) return fail("vertex lists edge it is not an endpoint of");
    }
  }
  return true;
}

double TensorNetwork::pair_contraction_log2cost(VertId a, VertId b) const {
  double cost = 0;
  IndexSet seen(num_edges());
  for (VertId v : {a, b}) {
    for (EdgeId e : verts_[size_t(v)].edges) {
      if (!edges_[size_t(e)].alive || seen.contains(e)) continue;
      seen.insert(e);
      cost += edges_[size_t(e)].log2w;
    }
  }
  return cost;
}

TensorNetwork random_network(int nv, double deg, uint64_t seed) {
  Rng rng(seed);
  TensorNetwork net;
  for (int i = 0; i < nv; ++i) net.add_vertex("v" + std::to_string(i));
  // Spanning tree first so the network is connected.
  for (int i = 1; i < nv; ++i) net.add_edge(VertId(rng.next_below(uint64_t(i))), i);
  int extra = std::max(0, int(deg * nv / 2.0) - (nv - 1));
  for (int k = 0; k < extra; ++k) {
    VertId a = VertId(rng.next_below(uint64_t(nv)));
    VertId b = VertId(rng.next_below(uint64_t(nv)));
    if (a == b) continue;
    net.add_edge(a, b);
  }
  return net;
}

}  // namespace ltns::tn
