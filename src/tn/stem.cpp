#include "tn/stem.hpp"

#include <algorithm>
#include <cassert>

namespace ltns::tn {

double Stem::total_log2cost() const {
  Log2Accumulator acc;
  for (int i = 0; i + 1 < length(); ++i) acc.add(step_log2cost(i));
  return acc.value();
}

double Stem::cost_fraction() const {
  double whole = tree->total_log2cost();
  if (whole == kLog2Zero) return 1.0;
  return std::exp2(total_log2cost() - whole);
}

std::vector<double> subtree_log2costs(const ContractionTree& tree) {
  std::vector<double> acc(size_t(tree.num_nodes()), kLog2Zero);
  for (int i : tree.postorder()) {
    const auto& n = tree.node(i);
    if (n.is_leaf()) continue;
    double c = log2_add(acc[size_t(n.left)], acc[size_t(n.right)]);
    acc[size_t(i)] = log2_add(c, n.log2cost);
  }
  return acc;
}

Stem extract_stem(const ContractionTree& tree) {
  auto sub = subtree_log2costs(tree);
  Stem s;
  s.tree = &tree;
  int cur = tree.root();
  std::vector<int> down, branch_down;
  for (;;) {
    down.push_back(cur);
    const auto& n = tree.node(cur);
    if (n.is_leaf()) break;
    // Prefer the heavier child; break ties toward the bigger tensor so the
    // stem follows the high-rank region.
    double cl = sub[size_t(n.left)], cr = sub[size_t(n.right)];
    int next, branch;
    if (cl > cr || (cl == cr && tree.node(n.left).log2size >= tree.node(n.right).log2size)) {
      next = n.left;
      branch = n.right;
    } else {
      next = n.right;
      branch = n.left;
    }
    branch_down.push_back(branch);
    cur = next;
  }
  s.nodes.assign(down.rbegin(), down.rend());
  s.branches.assign(branch_down.rbegin(), branch_down.rend());
  assert(s.nodes.size() == s.branches.size() + 1);
  return s;
}

}  // namespace ltns::tn
