// ContractionTree: the rooted binary tree describing an equivalence class of
// contraction paths (§2.1.1, Fig. 1).
//
// Leaves correspond to network vertices; every internal node is a pairwise
// contraction. Output index sets follow the XOR rule: an edge appears in the
// output of a contraction iff it appears in exactly one child (every edge has
// at most two endpoints; open edges have one and thus survive to the root).
//
// Eq. 1 cost: each internal node contributes 2^{Σ log2w over (s_l ∪ s_r)};
// totals are accumulated in the log2 domain.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "tn/tensor_network.hpp"
#include "util/index_set.hpp"
#include "util/log2math.hpp"

namespace ltns::tn {

// A pairwise contraction path in SSA form: leaves get ids 0..L-1 (in the
// order of `leaf_vertices`), each step contracts two prior ids and the
// result gets the next id.
struct SsaPath {
  std::vector<VertId> leaf_vertices;
  std::vector<std::pair<int, int>> steps;
};

class ContractionTree {
 public:
  struct Node {
    int left = -1, right = -1, parent = -1;
    VertId leaf_vertex = kNone;  // valid iff leaf
    IndexSet ixs;                // output index set of this (intermediate) tensor
    IndexSet union_ixs;          // s_l ∪ s_r (internal nodes only); drives Eq. 1
    double log2size = 0;         // Σ log2w over ixs
    double log2cost = kLog2Zero; // log2 flop count of this contraction (leaves: -inf)
    bool is_leaf() const { return left < 0; }
  };

  // Builds the tree for `path` over `net` and computes all index sets,
  // per-node sizes and costs. Aborts (assert) on malformed paths.
  static ContractionTree build(const TensorNetwork& net, const SsaPath& path);

  const TensorNetwork* network() const { return net_; }
  int num_nodes() const { return int(nodes_.size()); }
  int num_leaves() const { return num_leaves_; }
  int root() const { return root_; }
  const Node& node(int i) const { return nodes_[size_t(i)]; }
  const std::vector<Node>& nodes() const { return nodes_; }

  // Total contraction cost, log2 flops (Eq. 1).
  double total_log2cost() const { return total_log2cost_; }
  // Space cost: max over nodes of log2 tensor size (§2.1.1).
  double max_log2size() const { return max_log2size_; }
  // Largest contraction rank: max over internal nodes of |s_l ∪ s_r| weights.
  double max_union_log2size() const { return max_union_log2size_; }

  // Node ids in postorder (children before parents) — execution order.
  std::vector<int> postorder() const;

  // Internal consistency: XOR rule holds, parents/children agree, every
  // alive vertex appears exactly once as a leaf, the root carries exactly
  // the open edges.
  bool validate(std::string* why = nullptr) const;

 private:
  const TensorNetwork* net_ = nullptr;
  std::vector<Node> nodes_;
  int root_ = -1;
  int num_leaves_ = 0;
  double total_log2cost_ = kLog2Zero;
  double max_log2size_ = 0;
  double max_union_log2size_ = 0;
};

// Converts a tree back to an SSA path (postorder). build(net, to_ssa_path(t))
// reproduces an equivalent tree; used by the local-tuning pass.
SsaPath to_ssa_path(const ContractionTree& tree);

// Weighted size of (set ∩ ixs): Σ log2w(e) for e in both.
double log2w_of(const TensorNetwork& net, const IndexSet& set);

// Σ log2w over (a ∩ b), allocation-free; this is the hot operation of the
// slicing optimizers.
inline double log2w_intersection(const TensorNetwork& net, const IndexSet& a,
                                 const IndexSet& b) {
  double w = 0;
  a.for_each_intersection(b, [&](int e) { w += net.edge(e).log2w; });
  return w;
}

}  // namespace ltns::tn
