#include "core/greedy_slicer.hpp"

#include <algorithm>
#include <cassert>

namespace ltns::core {
namespace {

// Collects the unsliced indices of every node whose sliced size still
// exceeds the bound. These are the only edges whose slicing can reduce the
// maximum — exactly cotengra's candidate pool.
std::vector<EdgeId> oversized_candidates(const ContractionTree& tree, const SliceSet& S,
                                         double target) {
  IndexSet cand(tree.network()->num_edges());
  for (int i = 0; i < tree.num_nodes(); ++i) {
    if (sliced_node_log2size(tree, i, S.edges()) <= target + 1e-9) continue;
    cand |= tree.node(i).ixs;
  }
  cand -= S.edges();
  // Open edges carry the batch output and must survive to the root un-sliced
  // (the runners merge subtask results by addition over closed edges only).
  std::vector<EdgeId> out;
  cand.for_each([&](int e) {
    if (tree.network()->edge(EdgeId(e)).b != tn::kNone) out.push_back(EdgeId(e));
  });
  return out;
}

}  // namespace

SliceSet greedy_slice(const ContractionTree& tree, const GreedySlicerOptions& opt,
                      SlicedMetrics* metrics_out) {
  SliceSet S(*tree.network());
  while (!satisfies_memory_bound(tree, S, opt.target_log2size)) {
    assert(S.size() < opt.max_slices && "greedy slicer exceeded max_slices");
    auto cands = oversized_candidates(tree, S, opt.target_log2size);
    assert(!cands.empty());
    EdgeId best = tn::kNone;
    double best_cost = 0;
    for (EdgeId e : cands) {
      S.add(e);
      double c = evaluate_slicing(tree, S).log2_total_cost;
      S.remove(e);
      if (best == tn::kNone || c < best_cost) {
        best = e;
        best_cost = c;
      }
    }
    S.add(best);
  }
  if (metrics_out) *metrics_out = evaluate_slicing(tree, S);
  return S;
}

}  // namespace ltns::core
