#include "core/slicing.hpp"

#include <cassert>
#include <cmath>

namespace ltns::core {

void SliceSet::add(EdgeId e) {
  assert(!set_.contains(e));
  set_.insert(e);
  log2w_ += net_->edge(e).log2w;
}

void SliceSet::remove(EdgeId e) {
  assert(set_.contains(e));
  set_.erase(e);
  log2w_ -= net_->edge(e).log2w;
}

SlicedMetrics evaluate_slicing(const ContractionTree& tree, const SliceSet& slices) {
  const TensorNetwork& net = *tree.network();
  const IndexSet& S = slices.edges();
  SlicedMetrics m;
  m.log2_num_subtasks = slices.log2_num_subtasks();

  Log2Accumulator per_subtask;
  for (const auto& n : tree.nodes()) {
    double sz = n.log2size - tn::log2w_intersection(net, n.ixs, S);
    m.max_log2size = std::max(m.max_log2size, sz);
    if (n.is_leaf()) continue;
    // Sliced indices inside s_l ∪ s_r are fixed within a subtask: the
    // contraction loses exactly their weight (Eq. 4 term).
    double c = n.log2cost - tn::log2w_intersection(net, n.union_ixs, S);
    per_subtask.add(c);
    m.max_union_log2size = std::max(m.max_union_log2size, c);
  }
  m.log2_cost_per_subtask = per_subtask.value();
  m.log2_total_cost = m.log2_cost_per_subtask + m.log2_num_subtasks;
  m.log2_overhead = m.log2_total_cost - tree.total_log2cost();
  return m;
}

double sliced_node_log2size(const ContractionTree& tree, int node, const IndexSet& slices) {
  const auto& n = tree.node(node);
  return n.log2size - tn::log2w_intersection(*tree.network(), n.ixs, slices);
}

bool satisfies_memory_bound(const ContractionTree& tree, const SliceSet& slices,
                            double target_log2size) {
  for (int i = 0; i < tree.num_nodes(); ++i)
    if (sliced_node_log2size(tree, i, slices.edges()) > target_log2size + 1e-9) return false;
  return true;
}

double brute_force_sliced_log2cost(const ContractionTree& tree, const SliceSet& slices) {
  const TensorNetwork& net = *tree.network();
  auto sliced = slices.to_vector();
  for (EdgeId e : sliced) {
    (void)e;
    assert(std::abs(net.edge(e).log2w - 1.0) < 1e-12 && "reference assumes unit weights");
  }
  const size_t n_tasks = size_t(1) << sliced.size();
  Log2Accumulator total;
  for (size_t task = 0; task < n_tasks; ++task) {
    // Every subtask runs the identical shrunken tree, so the assignment does
    // not change the cost — but we still loop to mirror the execution
    // structure the definition describes.
    Log2Accumulator sub;
    for (const auto& nd : tree.nodes()) {
      if (nd.is_leaf()) continue;
      sub.add(nd.log2cost - tn::log2w_intersection(net, nd.union_ixs, slices.edges()));
    }
    total.add(sub.value());
  }
  return total.value();
}

}  // namespace ltns::core
