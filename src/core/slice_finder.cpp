#include "core/slice_finder.hpp"

#include <algorithm>
#include <cassert>

#include "core/greedy_slicer.hpp"

namespace ltns::core {
namespace {

// Lifetime length counted over the positions still in M ("Update lf" step).
int remaining_length(const LifetimeInterval& iv, const std::vector<char>& alive) {
  if (!iv.alive()) return 0;
  int len = 0;
  for (int p = iv.begin; p <= iv.end; ++p) len += alive[size_t(p)];
  return len;
}

}  // namespace

SliceSet lifetime_slice_finder(const tn::Stem& stem, const SliceFinderOptions& opt,
                               SlicedMetrics* metrics_out) {
  const tn::ContractionTree& tree = *stem.tree;
  const TensorNetwork& net = *tree.network();
  const double t = opt.target_log2size;
  const int N = stem.length();

  auto lifetimes = StemLifetimes::build(stem);
  SliceSet S(net);

  // Current (post-slicing) log2 size of each stem tensor.
  std::vector<double> dims(static_cast<size_t>(N), 0.0);
  for (int p = 0; p < N; ++p) dims[size_t(p)] = stem.log2size(p);

  // M = positions whose tensor still exceeds the target.
  std::vector<char> alive(size_t(N), 0);
  int n_alive = 0;
  for (int p = 0; p < N; ++p)
    if (dims[size_t(p)] > t + 1e-9) {
      alive[size_t(p)] = 1;
      ++n_alive;
    }

  auto slice_edge = [&](EdgeId e) {
    S.add(e);
    const auto& iv = lifetimes.of(e);
    for (int p = iv.begin; p <= iv.end; ++p) dims[size_t(p)] -= net.edge(e).log2w;
  };

  while (n_alive > 0) {
    // Ends of the remaining region.
    int front = 0, back = N - 1;
    while (!alive[size_t(front)]) ++front;
    while (!alive[size_t(back)]) --back;
    const int sT = dims[size_t(front)] < dims[size_t(back)] ? front : back;

    // Slice sT down to the target: its unsliced indices, longest remaining
    // lifetime first.
    while (dims[size_t(sT)] > t + 1e-9) {
      EdgeId best = tn::kNone;
      int best_len = -1;
      LifetimeInterval best_iv;
      tree.node(stem.nodes[size_t(sT)]).ixs.for_each([&](int e) {
        // Open edges carry the batch output — slicing one would make the
        // runners' additive merge scramble the result (see make_plan, which
        // clamps the target so a non-open candidate always exists here).
        if (S.contains(e) || net.edge(EdgeId(e)).b == tn::kNone) return;
        const auto& iv = lifetimes.of(e);
        int len = remaining_length(iv, alive);
        // Tie-break on the raw interval, then the id, for determinism.
        if (len > best_len ||
            (len == best_len && iv.length() > best_iv.length()) ||
            (len == best_len && iv.length() == best_iv.length() && e < best)) {
          best = e;
          best_len = len;
          best_iv = iv;
        }
      });
      assert(best != tn::kNone && "oversized stem tensor with no unsliced index");
      slice_edge(best);
    }

    // Drop everything that now fits.
    for (int p = 0; p < N; ++p) {
      if (alive[size_t(p)] && dims[size_t(p)] <= t + 1e-9) {
        alive[size_t(p)] = 0;
        --n_alive;
      }
    }
  }

  if (opt.fixup_whole_tree && !satisfies_memory_bound(tree, S, t)) {
    // Branches are normally below the bound; when one is not, extend the set
    // with the greedy rule restricted to the still-oversized nodes.
    while (!satisfies_memory_bound(tree, S, t)) {
      IndexSet cand(net.num_edges());
      for (int i = 0; i < tree.num_nodes(); ++i)
        if (sliced_node_log2size(tree, i, S.edges()) > t + 1e-9) cand |= tree.node(i).ixs;
      cand -= S.edges();
      EdgeId best = tn::kNone;
      double best_cost = 0;
      cand.for_each([&](int e) {
        if (net.edge(EdgeId(e)).b == tn::kNone) return;  // open: never sliced
        S.add(e);
        double c = evaluate_slicing(tree, S).log2_total_cost;
        S.remove(e);
        if (best == tn::kNone || c < best_cost) {
          best = e;
          best_cost = c;
        }
      });
      assert(best != tn::kNone);
      S.add(best);
    }
  }

  if (metrics_out) *metrics_out = evaluate_slicing(tree, S);
  return S;
}

}  // namespace ltns::core
