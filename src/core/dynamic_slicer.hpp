// Dynamic slicing — the Alibaba strategy (§2.1.2, ref [16]) the paper
// compares against and that cotengra adopted.
//
// Instead of slicing a frozen contraction tree, the dynamic design
// interleaves the two: pick one edge greedily (minimum Eq. 4 growth), then
// *re-tune the tree locally* so the remaining contractions adapt to the
// slice, and repeat until the memory bound holds. This erases much of the
// inherent slicing overhead of a fixed tree, but — as the paper notes — it
// can fail to find the optimal set when the local-tuning condition is not
// met; the lifetime finder + SA refiner is the paper's answer.
//
// Implemented here as the third slicer so the ablation bench can compare
// greedy / dynamic / lifetime(+SA) under identical conditions.
#pragma once

#include "core/slicing.hpp"
#include "path/local_tune.hpp"

namespace ltns::core {

struct DynamicSlicerOptions {
  double target_log2size = 30;
  int max_slices = 256;
  // Local-tuning effort between slice picks.
  int tune_max_leaves = 6;
  int tune_sweeps = 1;
};

struct DynamicSlicerResult {
  SliceSet slices;
  tn::SsaPath path;       // the re-tuned path (may differ from the input tree)
  SlicedMetrics metrics;  // evaluated on the re-tuned tree
  int retunes = 0;        // how many local-tuning passes changed the tree
};

DynamicSlicerResult dynamic_slice(const tn::ContractionTree& tree,
                                  const DynamicSlicerOptions& opt);

}  // namespace ltns::core
