// Stacking and the slice-vs-stack discriminant (§3.3, Fig. 7).
//
// Stacking is the inverse of slicing: keep the full tensor on the *lower*
// (bigger, slower) storage level and move one slice at a time up for
// computation, putting results back. It eliminates the redundant-compute
// overhead of a sliced edge at the price of data movement across the level
// boundary. Whether slicing (redundant flops) or stacking (extra bytes)
// wins on a given storage-level pair depends on the bandwidth of that pair:
// translate the moved bytes into "equivalent flops" through the machine
// balance (peak flops / bandwidth) and compare with the slicing overhead.
// The paper's conclusion: slice across IO -> DRAM (slow link, small
// overhead), stack across DRAM -> LDM (fast link — this is exactly the
// fused design of §5).
#pragma once

#include <string>
#include <vector>

#include "core/slicing.hpp"
#include "tn/stem.hpp"

namespace ltns::core {

// One manually-controllable storage-level boundary.
struct StorageLevel {
  std::string name;         // "disk->dram", "dram->ldm", ...
  double capacity_bytes;    // capacity of the *upper* (faster) level
  double bandwidth;         // bytes/s across the boundary
  double peak_flops;        // compute rate fed by the upper level
  // Machine balance: flops that could have been done while moving a byte.
  double flops_per_byte() const { return peak_flops / bandwidth; }
};

struct StackingCost {
  double log2_bytes_moved = 0;       // total traffic for stack+unstack
  double log2_equivalent_flops = 0;  // translated through machine balance
  // Overhead expressed like Eq. 2: equivalent flops / original flops.
  double log2_equivalent_overhead = 0;
};

// Cost of *stacking* the edges of `S` at level `lvl` instead of slicing
// them: every tensor in the lifetime of a stacked edge crosses the boundary
// once down and once up per step it participates in (bytes counted from
// sliced tensor sizes; `bytes_per_element` is 8 for complex<float>).
StackingCost stacking_cost(const tn::Stem& stem, const SliceSet& S, const StorageLevel& lvl,
                           double bytes_per_element = 8.0);

enum class Strategy { kSlice, kStack };

struct Discriminant {
  Strategy choice;
  double log2_slice_overhead_flops;  // redundant flops if slicing
  double log2_stack_overhead_flops;  // equivalent flops if stacking
};

// The §3.3 decision rule for one level boundary: pick whichever equivalent
// overhead is smaller.
Discriminant choose_strategy(const tn::Stem& stem, const SliceSet& S, const StorageLevel& lvl,
                             double bytes_per_element = 8.0);

}  // namespace ltns::core
