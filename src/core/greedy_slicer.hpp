// Greedy slicing baseline (the cotengra strategy, §2.1.2).
//
// "It repeatedly chooses a dimension that leads to the most minor overhead
// to slice, until the memory demand is satisfied." Candidates are the
// indices of the currently-largest sliced intermediates; the pick minimizes
// the resulting Eq. 4 total cost. This is the comparison target of Fig. 10.
#pragma once

#include "core/slicing.hpp"

namespace ltns::core {

struct GreedySlicerOptions {
  // Stop when every sliced intermediate is ≤ 2^target_log2size.
  double target_log2size = 30;
  // Safety valve against degenerate trees.
  int max_slices = 256;
};

// Returns the slicing set; `metrics_out` (optional) receives the final
// Eq. 2/4 evaluation.
SliceSet greedy_slice(const ContractionTree& tree, const GreedySlicerOptions& opt,
                      SlicedMetrics* metrics_out = nullptr);

}  // namespace ltns::core
