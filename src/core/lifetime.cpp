#include "core/lifetime.hpp"

#include <cassert>

namespace ltns::core {

StemLifetimes StemLifetimes::build(const tn::Stem& stem) {
  StemLifetimes lt;
  lt.stem_ = &stem;
  const auto& tree = *stem.tree;
  lt.intervals_.assign(size_t(tree.network()->num_edges()), LifetimeInterval{});
  for (int pos = 0; pos < stem.length(); ++pos) {
    const IndexSet& ixs = tree.node(stem.nodes[size_t(pos)]).ixs;
    ixs.for_each([&](int e) {
      auto& iv = lt.intervals_[size_t(e)];
      if (!iv.alive()) {
        iv.begin = pos;
        iv.end = pos;
      } else {
        assert(iv.end == pos - 1 && "stem lifetimes must be contiguous");
        iv.end = pos;
      }
    });
  }
  return lt;
}

std::vector<EdgeId> StemLifetimes::edges_at(int pos) const {
  std::vector<EdgeId> out;
  for (EdgeId e = 0; e < num_edges(); ++e)
    if (intervals_[size_t(e)].contains(pos)) out.push_back(e);
  return out;
}

std::vector<std::vector<int>> tree_lifetimes(const tn::ContractionTree& tree) {
  std::vector<std::vector<int>> lt(size_t(tree.network()->num_edges()));
  for (int i = 0; i < tree.num_nodes(); ++i) {
    tree.node(i).ixs.for_each([&](int e) { lt[size_t(e)].push_back(i); });
  }
  return lt;
}

}  // namespace ltns::core
