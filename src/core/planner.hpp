// Planner: the end-to-end planning pipeline of the paper.
//
//   network --(path optimizer)--> contraction tree
//           --(stem extraction)--> stem
//           --(Algorithm 1 slice finder)--> small slicing set
//           --(Algorithm 2 SA refiner)--> low-overhead slicing set
//
// Optionally plans with the greedy baseline slicer instead (for the Fig. 10
// comparison) and picks whichever satisfies the bound with lower overhead.
#pragma once

#include <memory>
#include <string>

#include "core/slice_finder.hpp"
#include "core/slice_refiner.hpp"
#include "core/slicing.hpp"
#include "path/optimizer.hpp"
#include "tn/stem.hpp"

namespace ltns::core {

enum class SlicerKind { kLifetime, kLifetimeRefined, kGreedyBaseline };

struct PlanOptions {
  path::OptimizerOptions path;
  double target_log2size = 30;
  SlicerKind slicer = SlicerKind::kLifetimeRefined;
  SliceRefinerOptions refiner;
  uint64_t seed = 99;
};

struct Plan {
  tn::SsaPath path;
  // Held behind a stable pointer: `stem` (and any fused plans built on it)
  // reference the tree by address, so Plan stays safely movable/copyable.
  std::shared_ptr<tn::ContractionTree> tree;
  tn::Stem stem;
  SliceSet slices;
  SlicedMetrics metrics;
  std::string path_method;

  int num_slices() const { return slices.size(); }
  double num_subtasks() const { return std::exp2(metrics.log2_num_subtasks); }
};

Plan make_plan(const tn::TensorNetwork& net, const PlanOptions& opt);

// Canonical text of EVERY plan knob (including the nested optimizer and
// refiner options), for content-addressed fingerprinting: two PlanOptions
// with equal text produce identical plans (make_plan is deterministic),
// and any knob change — which may change the resolved plan — changes the
// text. New fields MUST be appended here or the cache would serve stale
// plans across the change.
std::string plan_options_text(const PlanOptions& opt);

}  // namespace ltns::core
