// Slicing cost model: Eq. 2 (overhead) and Eq. 4 (sliced total cost).
//
// Slicing a set S of edges fixes those indices, splitting the contraction
// into Π_{e∈S} 2^{log2w(e)} independent subtasks. Inside one subtask, a
// contraction whose union index set meets S gets cheaper by the weight of
// the met indices; contractions untouched by S are recomputed identically in
// every subtask — that recomputation is the *slicing overhead*.
#pragma once

#include <string>
#include <vector>

#include "tn/contraction_tree.hpp"
#include "util/index_set.hpp"
#include "util/log2math.hpp"

namespace ltns::core {

using tn::ContractionTree;
using tn::EdgeId;
using tn::TensorNetwork;

struct SlicedMetrics {
  double log2_num_subtasks = 0;      // Σ log2w over S
  double log2_cost_per_subtask = 0;  // C_slice(B) of Eq. 2, log2
  double log2_total_cost = 0;        // per-subtask × subtasks, log2
  double log2_overhead = 0;          // Eq. 2, log2 (0 ⇒ no overhead)
  double max_log2size = 0;           // biggest sliced intermediate
  double max_union_log2size = 0;     // biggest sliced contraction scope
  double overhead() const { return std::exp2(log2_overhead); }
};

class SliceSet {
 public:
  SliceSet() = default;  // empty shell; assign a real one before use
  explicit SliceSet(const TensorNetwork& net) : net_(&net), set_(net.num_edges()) {}

  const IndexSet& edges() const { return set_; }
  int size() const { return set_.count(); }
  bool contains(EdgeId e) const { return set_.contains(e); }
  void add(EdgeId e);
  void remove(EdgeId e);
  std::vector<EdgeId> to_vector() const { return set_.to_vector(); }
  // Σ log2w over the sliced edges == log2 of the subtask count.
  double log2_num_subtasks() const { return log2w_; }

 private:
  const TensorNetwork* net_ = nullptr;
  IndexSet set_;
  double log2w_ = 0;
};

// Evaluates Eq. 2 / Eq. 4 for `slices` over the whole tree.
SlicedMetrics evaluate_slicing(const ContractionTree& tree, const SliceSet& slices);

// Sliced log2 size of one tree node's output tensor.
double sliced_node_log2size(const ContractionTree& tree, int node, const IndexSet& slices);

// True iff every intermediate tensor fits 2^target_log2size after slicing.
bool satisfies_memory_bound(const ContractionTree& tree, const SliceSet& slices,
                            double target_log2size);

// Brute-force reference used by tests: enumerates all subtask assignments of
// the (unit-weight) sliced edges and sums per-subtask costs directly.
// Exponential in |S|; keep |S| small.
double brute_force_sliced_log2cost(const ContractionTree& tree, const SliceSet& slices);

}  // namespace ltns::core
