#include "core/slice_refiner.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace ltns::core {
namespace {

// Stem positions in the lifetime of `e` whose sliced tensor is exactly at
// the target rank — the paper's find_critical_tensors.
std::vector<int> find_critical_tensors(const tn::Stem& stem, const StemLifetimes& lt,
                                       const IndexSet& S, double target, EdgeId e) {
  std::vector<int> crit;
  const auto& iv = lt.of(e);
  for (int p = iv.begin; p <= iv.end; ++p) {
    double sz = sliced_node_log2size(*stem.tree, stem.nodes[size_t(p)], S);
    if (std::abs(sz - target) < 1e-9) crit.push_back(p);
  }
  return crit;
}

// Unsliced stem edges whose lifetime covers every critical position — the
// paper's find_candidate_indices.
std::vector<EdgeId> find_candidate_indices(const tn::Stem& stem, const StemLifetimes& lt,
                                           const IndexSet& S, const std::vector<int>& crit,
                                           EdgeId skip) {
  std::vector<EdgeId> out;
  if (crit.empty()) return out;
  // Any covering edge must be an index of the first critical tensor; scan
  // those instead of the whole edge universe.
  const auto& first_ixs = stem.tree->node(stem.nodes[size_t(crit.front())]).ixs;
  const auto& net = *stem.tree->network();
  first_ixs.for_each([&](int e) {
    // Never swap an open (output) edge in: the runners only merge additively
    // over closed edges, so open edges must survive to the root un-sliced.
    if (e == skip || S.contains(e) || net.edge(EdgeId(e)).b == tn::kNone) return;
    const auto& iv = lt.of(e);
    bool covers = true;
    for (int p : crit)
      if (!iv.contains(p)) {
        covers = false;
        break;
      }
    if (covers) out.push_back(EdgeId(e));
  });
  return out;
}

}  // namespace

SliceSet refine_slices(const tn::Stem& stem, SliceSet S, const SliceRefinerOptions& opt,
                       RefineStats* stats_out) {
  const tn::ContractionTree& tree = *stem.tree;
  auto lt = StemLifetimes::build(stem);
  Rng rng(opt.seed);
  RefineStats stats;

  double cur_cost = evaluate_slicing(tree, S).log2_total_cost;
  stats.initial_log2cost = cur_cost;
  SliceSet best = S;
  double best_cost = cur_cost;

  for (double T = opt.initial_temperature; T > opt.final_temperature; T *= opt.alpha) {
    for (int k = 0; k < opt.moves_per_temperature; ++k) {
      auto sliced = S.to_vector();
      if (sliced.empty()) break;
      EdgeId a = sliced[rng.next_below(sliced.size())];

      auto crit = find_critical_tensors(stem, lt, S.edges(), opt.target_log2size, a);
      if (crit.empty()) {
        // `a` shields no critical tensor; if the whole tree stays within
        // bound without it, it is pure overhead — drop it.
        S.remove(a);
        if (satisfies_memory_bound(tree, S, opt.target_log2size)) {
          ++stats.dropped_useless;
          cur_cost = evaluate_slicing(tree, S).log2_total_cost;
          if (cur_cost < best_cost) {
            best = S;
            best_cost = cur_cost;
          }
        } else {
          S.add(a);  // needed by a branch tensor after all
        }
        continue;
      }

      for (EdgeId b : find_candidate_indices(stem, lt, S.edges(), crit, a)) {
        ++stats.proposed;
        S.remove(a);
        S.add(b);
        auto m = evaluate_slicing(tree, S);
        bool in_bound = m.max_log2size <= opt.target_log2size + 1e-9;
        bool take = false;
        if (in_bound) {
          if (m.log2_total_cost < cur_cost) {
            take = true;
          } else {
            // exp((C_ori − C_new)/C_ori / T) with huge C handled via the
            // linear-domain ratio 2^(Δlog2).
            double ratio = std::exp2(m.log2_total_cost - cur_cost);
            double p = std::exp((1.0 - ratio) / T);
            if (rng.next_double() < p) {
              take = true;
              ++stats.uphill_accepted;
            }
          }
        }
        if (take) {
          ++stats.accepted;
          cur_cost = m.log2_total_cost;
          if (cur_cost < best_cost) {
            best = S;
            best_cost = cur_cost;
          }
          a = b;  // the sliced edge under consideration is now b
        } else {
          S.remove(b);
          S.add(a);
        }
      }
    }
  }

  stats.final_log2cost = best_cost;
  if (stats_out) *stats_out = stats;
  return best;
}

}  // namespace ltns::core
