#include "core/dynamic_slicer.hpp"

#include <cassert>

namespace ltns::core {

namespace {

// One greedy pick: the candidate edge (from the still-oversized nodes) that
// minimizes the sliced total cost. Returns kNone when already under bound.
tn::EdgeId pick_edge(const tn::ContractionTree& tree, const SliceSet& S, double target) {
  if (satisfies_memory_bound(tree, S, target)) return tn::kNone;
  IndexSet cand(tree.network()->num_edges());
  for (int i = 0; i < tree.num_nodes(); ++i) {
    if (sliced_node_log2size(tree, i, S.edges()) <= target + 1e-9) continue;
    cand |= tree.node(i).ixs;
  }
  cand -= S.edges();
  tn::EdgeId best = tn::kNone;
  double best_cost = 0;
  SliceSet probe = S;
  cand.for_each([&](int e) {
    probe.add(e);
    double c = evaluate_slicing(tree, probe).log2_total_cost;
    probe.remove(e);
    if (best == tn::kNone || c < best_cost) {
      best = e;
      best_cost = c;
    }
  });
  return best;
}

}  // namespace

DynamicSlicerResult dynamic_slice(const tn::ContractionTree& tree,
                                  const DynamicSlicerOptions& opt) {
  const tn::TensorNetwork& net = *tree.network();
  DynamicSlicerResult out{SliceSet(net), tn::to_ssa_path(tree), {}, 0};
  tn::ContractionTree cur = tn::ContractionTree::build(net, out.path);

  while (!satisfies_memory_bound(cur, out.slices, opt.target_log2size)) {
    assert(out.slices.size() < opt.max_slices);
    tn::EdgeId e = pick_edge(cur, out.slices, opt.target_log2size);
    if (e == tn::kNone) break;
    out.slices.add(e);

    // Local tuning between slice picks: re-optimize small subtrees so the
    // path adapts to the shrunken index. (Tuning works on unsliced Eq. 1
    // costs — a tree optimal for the unsliced network stays near-optimal
    // per subtask, since slicing only removes fixed indices.)
    path::LocalTuneOptions lt;
    lt.max_leaves = opt.tune_max_leaves;
    lt.sweeps = opt.tune_sweeps;
    auto tuned = path::local_tune(cur, lt);
    if (tuned.improved_subtrees > 0) {
      ++out.retunes;
      out.path = std::move(tuned.path);
      cur = tn::ContractionTree::build(net, out.path);
    }
  }
  out.metrics = evaluate_slicing(cur, out.slices);
  return out;
}

}  // namespace ltns::core
