// Lifetime (Definition 1 of the paper).
//
// The lifetime of an edge k, given a contraction tree B, is the set of
// intermediate tensors whose index set contains k. Slicing k halves exactly
// the tensors in its lifetime and leaves the time complexity of their
// contractions unchanged — every other contraction is redundantly repeated
// across subtasks. On a *stem* the nested-subtree structure makes every
// lifetime a contiguous interval of stem positions, which is what the slice
// finder (Algorithm 1) and refiner (Algorithm 2) exploit.
#pragma once

#include <vector>

#include "tn/stem.hpp"
#include "util/index_set.hpp"

namespace ltns::core {

using tn::EdgeId;

// Inclusive interval of stem positions; empty (begin > end) if the edge
// never appears on the stem.
struct LifetimeInterval {
  int begin = 0;
  int end = -1;
  bool alive() const { return begin <= end; }
  int length() const { return alive() ? end - begin + 1 : 0; }
  bool contains(int pos) const { return begin <= pos && pos <= end; }
  bool contains(const LifetimeInterval& o) const {
    return o.alive() && begin <= o.begin && o.end <= end;
  }
};

// Per-edge lifetimes over a stem.
class StemLifetimes {
 public:
  static StemLifetimes build(const tn::Stem& stem);

  const LifetimeInterval& of(EdgeId e) const { return intervals_[size_t(e)]; }
  int num_edges() const { return int(intervals_.size()); }
  // Edges alive at stem position `pos`, i.e. indices of that stem tensor.
  std::vector<EdgeId> edges_at(int pos) const;

 private:
  std::vector<LifetimeInterval> intervals_;
  const tn::Stem* stem_ = nullptr;
};

// Whole-tree lifetime of Definition 1: node ids whose output index set
// contains e, for every edge. Used by tests to cross-check the interval
// representation and by the Fig. 6 bench.
std::vector<std::vector<int>> tree_lifetimes(const tn::ContractionTree& tree);

}  // namespace ltns::core
