// Algorithm 1: the lifetime-guided, in-place slice finder.
//
// Works on the stem. Walk in from whichever end of the still-oversized
// region has the smaller tensor; slice that tensor down to the target rank
// by picking its indices with the *longest remaining lifetime* (so each
// sliced index also shrinks as much of the rest of the stem as possible);
// drop every tensor that now fits; repeat until nothing is oversized.
// Theorem 1 motivates the goal: a smaller valid slicing set implies (via an
// exchange argument) the existence of an equally small set with lower
// overhead, which the SA refiner (Algorithm 2) then looks for.
#pragma once

#include "core/lifetime.hpp"
#include "core/slicing.hpp"
#include "tn/stem.hpp"

namespace ltns::core {

struct SliceFinderOptions {
  double target_log2size = 30;
  // If true, greedily add slices afterwards until the *whole tree* (branches
  // included) meets the bound; the stem-only result is what Algorithm 1
  // itself guarantees.
  bool fixup_whole_tree = true;
};

SliceSet lifetime_slice_finder(const tn::Stem& stem, const SliceFinderOptions& opt,
                               SlicedMetrics* metrics_out = nullptr);

}  // namespace ltns::core
