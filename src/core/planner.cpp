#include "core/planner.hpp"

#include <algorithm>
#include <sstream>

#include "core/greedy_slicer.hpp"

namespace ltns::core {

std::string plan_options_text(const PlanOptions& opt) {
  std::ostringstream o;
  o.precision(17);  // doubles round-trip exactly
  o << "path:" << opt.path.greedy_trials << ',' << opt.path.partition_trials << ','
    << opt.path.community_trials << ',' << opt.path.temperature << ','
    << int(opt.path.tune) << ',' << opt.path.tune_max_leaves << ',' << opt.path.tune_sweeps
    << ',' << opt.path.seed;
  o << "|target:" << opt.target_log2size;
  o << "|slicer:" << int(opt.slicer);
  o << "|refiner:" << opt.refiner.target_log2size << ',' << opt.refiner.initial_temperature
    << ',' << opt.refiner.final_temperature << ',' << opt.refiner.alpha << ','
    << opt.refiner.moves_per_temperature << ',' << opt.refiner.seed;
  o << "|seed:" << opt.seed;
  return o.str();
}

Plan make_plan(const tn::TensorNetwork& net, const PlanOptions& opt) {
  auto pr = path::find_path(net, opt.path);

  // Open (output) edges survive to the root, so no slicing set can push the
  // root below their combined width — and the sliced runners merge subtask
  // results by addition, which is only sound over CLOSED edges. Clamp the
  // bound to the open width (the slicers themselves never pick open edges):
  // a batch with more open qubits than the target still plans, it just
  // holds a root of exactly 2^|open| elements.
  double open_log2 = 0;
  for (tn::EdgeId e : net.open_edges()) open_log2 += net.edge(e).log2w;
  const double target = std::max(opt.target_log2size, open_log2);

  Plan plan{std::move(pr.path),
            nullptr,
            tn::Stem{},
            SliceSet(net),
            SlicedMetrics{},
            pr.method};
  plan.tree = std::make_shared<tn::ContractionTree>(tn::ContractionTree::build(net, plan.path));
  plan.stem = tn::extract_stem(*plan.tree);

  switch (opt.slicer) {
    case SlicerKind::kGreedyBaseline: {
      GreedySlicerOptions g;
      g.target_log2size = target;
      plan.slices = greedy_slice(*plan.tree, g, &plan.metrics);
      break;
    }
    case SlicerKind::kLifetime: {
      SliceFinderOptions f;
      f.target_log2size = target;
      plan.slices = lifetime_slice_finder(plan.stem, f, &plan.metrics);
      break;
    }
    case SlicerKind::kLifetimeRefined: {
      SliceFinderOptions f;
      f.target_log2size = target;
      SliceSet s = lifetime_slice_finder(plan.stem, f);
      SliceRefinerOptions r = opt.refiner;
      r.target_log2size = target;
      r.seed = opt.seed;
      plan.slices = refine_slices(plan.stem, std::move(s), r);
      plan.metrics = evaluate_slicing(*plan.tree, plan.slices);
      break;
    }
  }
  return plan;
}

}  // namespace ltns::core
