#include "core/stacking.hpp"

#include <cmath>

namespace ltns::core {

StackingCost stacking_cost(const tn::Stem& stem, const SliceSet& S, const StorageLevel& lvl,
                           double bytes_per_element) {
  const tn::ContractionTree& tree = *stem.tree;
  const TensorNetwork& net = *tree.network();
  StackingCost out;

  // Stacking keeps the *full* tensors resident on the lower level. Each
  // stem step reads its input stem tensor and writes its output stem
  // tensor across the boundary (slice-by-slice DMA/IO), so the traffic is
  // the sum of full stem-tensor sizes along the steps, twice (get + put).
  Log2Accumulator bytes;
  for (int p = 0; p < stem.length(); ++p) {
    const auto& n = tree.node(stem.nodes[size_t(p)]);
    (void)net;
    bytes.add(n.log2size + std::log2(bytes_per_element) + 1.0 /* get+put */);
  }
  out.log2_bytes_moved = bytes.value();
  out.log2_equivalent_flops = out.log2_bytes_moved + std::log2(lvl.flops_per_byte());
  out.log2_equivalent_overhead = out.log2_equivalent_flops - tree.total_log2cost();
  (void)S;
  return out;
}

Discriminant choose_strategy(const tn::Stem& stem, const SliceSet& S, const StorageLevel& lvl,
                             double bytes_per_element) {
  const tn::ContractionTree& tree = *stem.tree;
  auto m = evaluate_slicing(tree, S);
  auto sc = stacking_cost(stem, S, lvl, bytes_per_element);

  Discriminant d;
  // Redundant flops of slicing = total_sliced - original (linear-domain
  // difference), expressed in log2.
  d.log2_slice_overhead_flops = log2_sub(m.log2_total_cost, tree.total_log2cost());
  d.log2_stack_overhead_flops = sc.log2_equivalent_flops;
  d.choice = d.log2_slice_overhead_flops <= d.log2_stack_overhead_flops ? Strategy::kSlice
                                                                        : Strategy::kStack;
  return d;
}

}  // namespace ltns::core
