#include "sv/statevector.hpp"

#include <cassert>

namespace ltns::sv {

Statevector::Statevector(int num_qubits) : n_(num_qubits) {
  assert(num_qubits >= 1 && num_qubits <= 28);
  amps_.assign(size_t(1) << num_qubits, cd{0, 0});
  amps_[0] = cd{1, 0};
}

void Statevector::apply(const circuit::GateDef& g, const std::vector<int>& qubits) {
  assert(int(qubits.size()) == g.arity);
  if (g.arity == 1) {
    apply1(g, qubits[0]);
  } else {
    assert(g.arity == 2);
    apply2(g, qubits[0], qubits[1]);
  }
}

void Statevector::apply1(const circuit::GateDef& g, int q) {
  const int pos = n_ - 1 - q;
  const size_t mask = size_t(1) << pos;
  const cd m00 = g.matrix[0], m01 = g.matrix[1], m10 = g.matrix[2], m11 = g.matrix[3];
  const size_t dim = amps_.size();
  for (size_t i = 0; i < dim; ++i) {
    if (i & mask) continue;
    cd a0 = amps_[i], a1 = amps_[i | mask];
    amps_[i] = m00 * a0 + m01 * a1;
    amps_[i | mask] = m10 * a0 + m11 * a1;
  }
}

void Statevector::apply2(const circuit::GateDef& g, int qa, int qb) {
  const size_t ma = size_t(1) << (n_ - 1 - qa);
  const size_t mb = size_t(1) << (n_ - 1 - qb);
  const size_t dim = amps_.size();
  for (size_t i = 0; i < dim; ++i) {
    if (i & (ma | mb)) continue;
    // Basis order within the block: |qa qb> = 00, 01, 10, 11.
    cd a[4] = {amps_[i], amps_[i | mb], amps_[i | ma], amps_[i | ma | mb]};
    cd r[4];
    for (int o = 0; o < 4; ++o)
      r[o] = g.matrix[size_t(o) * 4 + 0] * a[0] + g.matrix[size_t(o) * 4 + 1] * a[1] +
             g.matrix[size_t(o) * 4 + 2] * a[2] + g.matrix[size_t(o) * 4 + 3] * a[3];
    amps_[i] = r[0];
    amps_[i | mb] = r[1];
    amps_[i | ma] = r[2];
    amps_[i | ma | mb] = r[3];
  }
}

void Statevector::run(const circuit::Circuit& c) {
  assert(c.num_qubits == n_);
  for (const auto& op : c.ops) apply(op.gate, op.qubits);
}

cd Statevector::amplitude_bits(const std::vector<int>& bits) const {
  assert(int(bits.size()) == n_);
  uint64_t idx = 0;
  for (int q = 0; q < n_; ++q) idx |= uint64_t(bits[size_t(q)]) << (n_ - 1 - q);
  return amps_[idx];
}

double Statevector::norm() const {
  double s = 0;
  for (const cd& a : amps_) s += std::norm(a);
  return s;
}

cd simulate_amplitude(const circuit::Circuit& c, const std::vector<int>& bits) {
  Statevector sv(c.num_qubits);
  sv.run(c);
  return sv.amplitude_bits(bits);
}

}  // namespace ltns::sv
