// Statevector simulator — the exact baseline (§1: the "traditional state
// vector method", feasible below ~50 qubits; here used up to ~24 for
// verification of the TNC pipeline).
//
// Amplitude convention matches the lowering: qubit q occupies bit
// (n-1-q) of the basis-state index, i.e. bitstring b_0 b_1 ... b_{n-1}
// (qubit 0 first) maps to index Σ b_q << (n-1-q).
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"

namespace ltns::sv {

using cd = std::complex<double>;

class Statevector {
 public:
  explicit Statevector(int num_qubits);

  int num_qubits() const { return n_; }
  size_t dim() const { return amps_.size(); }
  const std::vector<cd>& amplitudes() const { return amps_; }

  void apply(const circuit::GateDef& g, const std::vector<int>& qubits);
  void run(const circuit::Circuit& c);

  cd amplitude(uint64_t basis_state) const { return amps_[basis_state]; }
  // Amplitude of a bitstring given per-qubit bits (qubit 0 first).
  cd amplitude_bits(const std::vector<int>& bits) const;
  double norm() const;

 private:
  void apply1(const circuit::GateDef& g, int q);
  void apply2(const circuit::GateDef& g, int qa, int qb);

  int n_;
  std::vector<cd> amps_;
};

// Convenience: run circuit from |0...0> and return one amplitude.
cd simulate_amplitude(const circuit::Circuit& c, const std::vector<int>& bits);

}  // namespace ltns::sv
