#include "query/engine.hpp"

#include <map>

#include "cache/cache.hpp"
#include "obs/trace.hpp"
#include "query/eval.hpp"
#include "util/timer.hpp"

namespace ltns::query {

namespace {

std::string open_signature(const std::vector<int>& open) {
  std::string s;
  for (int q : open) s += std::to_string(q) + ",";
  return s;
}

}  // namespace

EngineStats Engine::run(const std::vector<Query>& queries, const ResultSink& sink) {
  EngineStats st;
  st.queries = queries.size();
  for (const Query& q : queries) {
    switch (q.kind) {
      case QueryKind::kAmplitude: ++st.amp_queries; break;
      case QueryKind::kBatch: ++st.batch_queries; break;
      case QueryKind::kSample: ++st.sample_queries; break;
      case QueryKind::kExpectation: ++st.expect_queries; break;
    }
  }

  GrouperOptions go;
  go.max_open = opt_.max_open;
  go.group_amplitudes = opt_.group_amplitudes;
  const auto groups = group_queries(queries, go);
  st.groups = groups.size();

  // One resolved plan per open-set SIGNATURE: the planner is value-blind
  // (the lowered structure is identical across output bit values at the
  // same positions), so every later group with the same signature rebuilds
  // the representative's plan over its own network instead of re-planning.
  std::map<std::string, api::PreparedPlan> reps;

  for (size_t gi = 0; gi < groups.size(); ++gi) {
    const GroupSpec& g = groups[gi];
    const bool closed = g.open_qubits.empty();
    closed ? ++st.closed_groups : ++st.open_groups;
    obs::TraceScope span(obs::EventKind::kQueryGroup, gi, g.open_qubits.size(),
                         g.members.size());

    std::vector<std::complex<double>> amps;
    std::string err;
    bool served = false;

    // Covering-batch probe: a cached batch whose open set is a superset of
    // this group's answers it with zero contractions. Closed groups only
    // probe in grouped amp mode — in exact mode a sliced-out amplitude
    // would break the standalone-`amp` byte contract.
    if (!closed || opt_.group_amplitudes) {
      cache::BatchEntry e;
      if (sim_.find_covering_batch(g.base_bits, g.open_qubits, &e)) {
        amps = restrict_amplitudes(e.amplitudes, e.open_qubits, g.open_qubits, g.base_bits);
        e.open_qubits == g.open_qubits ? ++st.result_cache_hits : ++st.superset_hits;
        served = true;
      }
    }

    if (!served) {
      const std::string sig = open_signature(g.open_qubits);
      api::PreparedPlan plan;
      auto it = reps.find(sig);
      if (it == reps.end()) {
        plan = sim_.prepare(g.base_bits, g.open_qubits);
        plan.plan_from_cache() ? ++st.plan_cache_hits : ++st.planner_passes;
        reps.emplace(sig, plan);
      } else {
        plan = sim_.prepare_like(it->second, g.base_bits, g.open_qubits);
        if (plan.valid()) {
          ++st.plan_rebuilds;
        } else {
          plan = sim_.prepare(g.base_bits, g.open_qubits);
          plan.plan_from_cache() ? ++st.plan_cache_hits : ++st.planner_passes;
        }
      }
      st.plan_seconds += plan.plan_seconds();

      Timer t;
      if (closed) {
        auto ar = sim_.amplitude(plan);
        err = ar.telemetry.error;
        if (err.empty() && !ar.completed) err = "run cancelled";
        ar.from_cache ? ++st.result_cache_hits : ++st.contractions;
        amps.assign(1, ar.amplitude);
      } else {
        auto br = sim_.batch_amplitudes(plan);
        err = br.telemetry.error;
        if (err.empty() && !br.completed) err = "run cancelled";
        br.from_cache ? ++st.result_cache_hits : ++st.contractions;
        amps = std::move(br.amplitudes);
      }
      st.exec_seconds += t.seconds();
    }

    for (int m : g.members) {
      const Query& q = queries[size_t(m)];
      QueryResult r;
      if (err.empty()) {
        r = evaluate_query(q, g.open_qubits, amps);
      } else {
        r.kind = q.kind;
        r.id = q.id;
        r.text = q.text;
        r.error = err;
      }
      if (!r.error.empty()) ++st.errors;
      st.amplitudes_returned += r.amplitudes.size();
      st.samples_drawn += r.samples.size();
      sink(r);
    }
  }
  return st;
}

}  // namespace ltns::query
