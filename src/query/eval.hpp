// Deterministic evaluators on top of batch-contraction results — shared
// verbatim by the solo engine (query/engine.hpp), api::Simulator's batch
// path, and the job server's query jobs, so every transport derives the
// identical bytes from the identical group tensor.
#pragma once

#include <complex>
#include <cstdint>
#include <string>
#include <vector>

#include "circuit/lowering.hpp"
#include "exec/tensor.hpp"
#include "query/query.hpp"

namespace ltns::query {

// Re-indexes a finished open-qubit contraction's accumulated tensor into
// the canonical amplitude vector: amplitudes[k]'s open-qubit bits are the
// binary digits of k, open_qubits[0] most significant. This IS the mapping
// api::Simulator::batch_amplitudes applies (factored here so the server's
// query jobs produce the same bytes); `lowered.scalar` is folded in.
std::vector<std::complex<double>> amplitudes_from_tensor(const exec::Tensor& t,
                                                         const circuit::LoweredNetwork& lowered,
                                                         const std::vector<int>& open_qubits);

// Draws `n` indices from |amplitudes[k]|^2 (renormalized) with the
// platform-stable xoshiro256** generator (util/rng.hpp). The CDF is a
// fixed-order prefix sum, so the sample stream is byte-reproducible across
// runs, hosts and process counts — the regression-tested contract
// Simulator::sample_from_batch now delegates to.
std::vector<uint64_t> sample_from_amplitudes(const std::vector<std::complex<double>>& amplitudes,
                                             int n, uint64_t seed);

// Extracts the sub-vector over `target_open` (subset of `group_open`, both
// sorted) from a group amplitude vector, fixing every other open qubit to
// its value in `bits`.
std::vector<std::complex<double>> restrict_amplitudes(
    const std::vector<std::complex<double>>& amplitudes, const std::vector<int>& group_open,
    const std::vector<int>& target_open, const std::vector<int>& bits);

// Answers one query from the amplitude vector of a group that covers it
// (the query's open set is a subset of `group_open` and its bits agree
// with the group base outside it). Pure and deterministic.
QueryResult evaluate_query(const Query& q, const std::vector<int>& group_open,
                           const std::vector<std::complex<double>>& amplitudes);

}  // namespace ltns::query
