#include "query/eval.hpp"

#include <algorithm>
#include <cassert>

#include "util/rng.hpp"

namespace ltns::query {

std::vector<std::complex<double>> amplitudes_from_tensor(const exec::Tensor& t,
                                                         const circuit::LoweredNetwork& lowered,
                                                         const std::vector<int>& open_qubits) {
  // The result tensor's axes are the open output edges in some order;
  // re-index so open_qubits[0] is the most significant bit.
  assert(t.rank() == int(open_qubits.size()));
  std::vector<int> axis_for_qubit(open_qubits.size());
  for (size_t i = 0; i < open_qubits.size(); ++i) {
    int edge = lowered.output_edge[size_t(open_qubits[i])];
    int ax = t.axis_of(edge);
    assert(ax >= 0);
    axis_for_qubit[i] = ax;
  }
  const size_t n = size_t(1) << open_qubits.size();
  std::vector<std::complex<double>> amps(n);
  const int r = t.rank();
  for (size_t k = 0; k < n; ++k) {
    size_t off = 0;
    for (size_t i = 0; i < open_qubits.size(); ++i) {
      size_t bit = (k >> (open_qubits.size() - 1 - i)) & 1;
      off |= bit << (r - 1 - axis_for_qubit[i]);
    }
    amps[k] = std::complex<double>(t.data()[off]) * lowered.scalar;
  }
  return amps;
}

std::vector<uint64_t> sample_from_amplitudes(const std::vector<std::complex<double>>& amplitudes,
                                             int n, uint64_t seed) {
  // Fixed-order prefix-sum CDF: cdf[k] carries the exact partial sums a
  // left-to-right accumulation produces, so binary search picks the same
  // index a linear scan would — in O(log) per sample.
  std::vector<double> cdf(amplitudes.size());
  double acc = 0;
  for (size_t k = 0; k < amplitudes.size(); ++k) {
    acc += std::norm(amplitudes[k]);
    cdf[k] = acc;
  }
  Rng rng(seed);
  std::vector<uint64_t> out;
  out.reserve(size_t(n));
  for (int i = 0; i < n; ++i) {
    const double u = rng.next_double() * acc;
    // Smallest k with u <= cdf[k]; rounding can leave u above the final
    // partial sum, in which case the last index is the honest pick.
    auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    out.push_back(it == cdf.end() ? uint64_t(cdf.size() - 1) : uint64_t(it - cdf.begin()));
  }
  return out;
}

namespace {

// Index of `bits` within a group amplitude vector (group_open[0] = MSB).
size_t index_in_group(const std::vector<int>& group_open, const std::vector<int>& bits) {
  size_t k = 0;
  for (size_t i = 0; i < group_open.size(); ++i)
    k = (k << 1) | size_t(bits[size_t(group_open[i])] & 1);
  return k;
}

}  // namespace

std::vector<std::complex<double>> restrict_amplitudes(
    const std::vector<std::complex<double>>& amplitudes, const std::vector<int>& group_open,
    const std::vector<int>& target_open, const std::vector<int>& bits) {
  std::vector<int> work = bits;
  const size_t n = size_t(1) << target_open.size();
  std::vector<std::complex<double>> out(n);
  for (size_t j = 0; j < n; ++j) {
    for (size_t i = 0; i < target_open.size(); ++i)
      work[size_t(target_open[i])] = int((j >> (target_open.size() - 1 - i)) & 1);
    out[j] = amplitudes[index_in_group(group_open, work)];
  }
  return out;
}

QueryResult evaluate_query(const Query& q, const std::vector<int>& group_open,
                           const std::vector<std::complex<double>>& amplitudes) {
  QueryResult res;
  res.kind = q.kind;
  res.id = q.id;
  res.text = q.text;
  switch (q.kind) {
    case QueryKind::kAmplitude:
      res.amplitudes.push_back(amplitudes[index_in_group(group_open, q.bits)]);
      break;
    case QueryKind::kBatch:
      res.amplitudes = restrict_amplitudes(amplitudes, group_open, q.open_qubits, q.bits);
      break;
    case QueryKind::kSample: {
      auto sub = restrict_amplitudes(amplitudes, group_open, q.open_qubits, q.bits);
      auto picks = sample_from_amplitudes(sub, q.num_samples, q.seed);
      res.samples.reserve(picks.size());
      std::string full(q.bits.size(), '0');
      for (size_t i = 0; i < q.bits.size(); ++i) full[i] = q.bits[i] != 0 ? '1' : '0';
      for (uint64_t pick : picks) {
        for (size_t i = 0; i < q.open_qubits.size(); ++i) {
          const uint64_t bit = (pick >> (q.open_qubits.size() - 1 - i)) & 1;
          full[size_t(q.open_qubits[i])] = bit != 0 ? '1' : '0';
        }
        res.samples.push_back(full);
      }
      break;
    }
    case QueryKind::kExpectation: {
      // <P> on the conditional state v of the support qubits: the other
      // qubits are fixed to the query's base bits, v(x_S) = amplitude of
      // the assignment, <P> = v'Pv / v'v (P is Hermitian, the value real).
      const auto v = restrict_amplitudes(amplitudes, group_open, q.open_qubits, q.bits);
      std::vector<std::complex<double>> w = v;
      const size_t ns = q.open_qubits.size();
      for (size_t i = 0; i < ns; ++i) {
        const char op = q.paulis[size_t(q.open_qubits[i])];
        const size_t m = size_t(1) << (ns - 1 - i);
        std::vector<std::complex<double>> next(w.size());
        for (size_t j = 0; j < w.size(); ++j) {
          switch (op) {
            case 'X': next[j] = w[j ^ m]; break;
            // Y|0> = i|1>, Y|1> = -i|0>  =>  (Yw)[j] = ±i * w[j^m]
            case 'Y':
              next[j] = ((j & m) != 0 ? std::complex<double>(0, 1)
                                      : std::complex<double>(0, -1)) *
                        w[j ^ m];
              break;
            case 'Z': next[j] = ((j & m) != 0 ? -1.0 : 1.0) * w[j]; break;
            default: next[j] = w[j]; break;
          }
        }
        w = std::move(next);
      }
      double denom = 0;
      std::complex<double> numer{0, 0};
      for (size_t j = 0; j < v.size(); ++j) {
        denom += std::norm(v[j]);
        numer += std::conj(v[j]) * w[j];
      }
      if (denom == 0) {
        res.error = "zero-norm conditional state (every base-bit amplitude is 0)";
      } else {
        res.expectation = numer.real() / denom;
      }
      break;
    }
  }
  return res;
}

}  // namespace ltns::query
