#include "query/query.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace ltns::query {

const char* query_kind_name(QueryKind k) {
  switch (k) {
    case QueryKind::kAmplitude: return "amp";
    case QueryKind::kBatch: return "batch";
    case QueryKind::kSample: return "sample";
    case QueryKind::kExpectation: return "expect";
  }
  return "unknown";
}

namespace {

bool parse_u64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    if (v > (UINT64_MAX - uint64_t(c - '0')) / 10) return false;
    v = v * 10 + uint64_t(c - '0');
  }
  *out = v;
  return true;
}

// Splits a pattern of {0,1,?} into base bits + the sorted '?' positions.
// Returns the error text ("" on success).
std::string parse_pattern(const std::string& pat, int num_qubits, bool allow_open,
                          std::vector<int>* bits, std::vector<int>* open) {
  if (int(pat.size()) != num_qubits)
    return "pattern has " + std::to_string(pat.size()) + " chars, circuit has " +
           std::to_string(num_qubits) + " qubits";
  bits->assign(size_t(num_qubits), 0);
  open->clear();
  for (int q = 0; q < num_qubits; ++q) {
    const char c = pat[size_t(q)];
    if (c == '0' || c == '1') {
      (*bits)[size_t(q)] = c - '0';
    } else if (c == '?' && allow_open) {
      open->push_back(q);
    } else {
      return std::string("bad pattern char '") + c + "' (want 0/1" +
             (allow_open ? "/?" : "") + ")";
    }
  }
  if (int(open->size()) > kMaxOpenQubits)
    return "pattern opens " + std::to_string(open->size()) + " qubits (max " +
           std::to_string(kMaxOpenQubits) + ")";
  return {};
}

std::string canonical_pattern(const std::vector<int>& bits, const std::vector<int>& open) {
  std::string p;
  p.reserve(bits.size());
  size_t oi = 0;
  for (int q = 0; q < int(bits.size()); ++q) {
    if (oi < open.size() && open[oi] == q) {
      p += '?';
      ++oi;
    } else {
      p += bits[size_t(q)] != 0 ? '1' : '0';
    }
  }
  return p;
}

// Minimal flat-object JSON line: {"kind":"sample","n":4,"seed":7,
// "pattern":"0??0"}. String and unsigned-integer values only — anything
// fancier is a parse error, by design (the line format is the primary one).
std::string parse_json_fields(const std::string& line,
                              std::vector<std::pair<std::string, std::string>>* fields) {
  size_t i = 0;
  auto skip_ws = [&] {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
  };
  auto get_string = [&](std::string* out) -> bool {
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    out->clear();
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\') return false;  // escapes unsupported, keep it flat
      *out += line[i++];
    }
    if (i >= line.size()) return false;
    ++i;  // closing quote
    return true;
  };
  skip_ws();
  if (i >= line.size() || line[i] != '{') return "JSON line must start with '{'";
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    while (true) {
      skip_ws();
      std::string key;
      if (!get_string(&key)) return "expected a quoted key";
      skip_ws();
      if (i >= line.size() || line[i] != ':') return "expected ':' after \"" + key + "\"";
      ++i;
      skip_ws();
      std::string value;
      if (i < line.size() && line[i] == '"') {
        if (!get_string(&value)) return "unterminated string value for \"" + key + "\"";
      } else {
        while (i < line.size() && (std::isdigit(static_cast<unsigned char>(line[i])))) {
          value += line[i++];
        }
        if (value.empty()) return "expected a string or unsigned integer for \"" + key + "\"";
      }
      fields->emplace_back(key, value);
      skip_ws();
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      if (i < line.size() && line[i] == '}') {
        ++i;
        break;
      }
      return "expected ',' or '}'";
    }
  }
  skip_ws();
  if (i != line.size()) return "trailing characters after '}'";
  return {};
}

// Turns one JSON line into the equivalent token list so both syntaxes walk
// the exact same validation path below.
std::string json_to_tokens(const std::string& line, std::vector<std::string>* tokens) {
  std::vector<std::pair<std::string, std::string>> fields;
  std::string err = parse_json_fields(line, &fields);
  if (!err.empty()) return err;
  std::string kind, pattern, paulis, bits, n, seed;
  for (const auto& [k, v] : fields) {
    if (k == "kind") kind = v;
    else if (k == "pattern" || k == "bits") pattern = v;
    else if (k == "paulis") paulis = v;
    else if (k == "base") bits = v;
    else if (k == "n") n = v;
    else if (k == "seed") seed = v;
    else return "unknown key \"" + k + "\"";
  }
  if (kind.empty()) return "missing \"kind\"";
  tokens->push_back(kind);
  if (kind == "sample") {
    if (n.empty() || seed.empty()) return "sample needs \"n\" and \"seed\"";
    tokens->push_back(n);
    tokens->push_back(seed);
  }
  if (kind == "expect") {
    if (paulis.empty()) return "expect needs \"paulis\"";
    tokens->push_back(paulis);
    if (!bits.empty()) tokens->push_back(bits);
    return {};
  }
  if (pattern.empty()) return kind + " needs \"pattern\"";
  tokens->push_back(pattern);
  return {};
}

}  // namespace

ParsedQueries parse_queries(const std::string& text, int num_qubits) {
  ParsedQueries out;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& why) {
    out.queries.clear();
    out.error = "line " + std::to_string(lineno) + ": " + why;
    out.error_line = lineno;
    return out;
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;

    std::vector<std::string> tokens;
    if (line[first] == '{') {
      std::string err = json_to_tokens(line.substr(first), &tokens);
      if (!err.empty()) return fail(err);
    } else {
      std::istringstream ls(line);
      std::string tok;
      while (ls >> tok) tokens.push_back(tok);
    }

    Query q;
    q.id = int(out.queries.size()) + 1;
    const std::string& verb = tokens[0];
    if (verb == "amp") {
      q.kind = QueryKind::kAmplitude;
      if (tokens.size() != 2) return fail("amp wants exactly one bitstring");
      std::string err = parse_pattern(tokens[1], num_qubits, /*allow_open=*/false, &q.bits,
                                      &q.open_qubits);
      if (!err.empty()) return fail(err);
      q.text = "amp " + tokens[1];
    } else if (verb == "batch") {
      q.kind = QueryKind::kBatch;
      if (tokens.size() != 2) return fail("batch wants exactly one pattern");
      std::string err =
          parse_pattern(tokens[1], num_qubits, /*allow_open=*/true, &q.bits, &q.open_qubits);
      if (!err.empty()) return fail(err);
      if (q.open_qubits.empty()) return fail("batch pattern has no '?' (use amp)");
      q.text = "batch " + canonical_pattern(q.bits, q.open_qubits);
    } else if (verb == "sample") {
      q.kind = QueryKind::kSample;
      if (tokens.size() != 4) return fail("sample wants <n> <seed> <pattern>");
      uint64_t n = 0;
      if (!parse_u64(tokens[1], &n) || n == 0 || n > 1000000)
        return fail("bad sample count '" + tokens[1] + "' (want 1..1000000)");
      if (!parse_u64(tokens[2], &q.seed)) return fail("bad sample seed '" + tokens[2] + "'");
      q.num_samples = int(n);
      std::string err =
          parse_pattern(tokens[3], num_qubits, /*allow_open=*/true, &q.bits, &q.open_qubits);
      if (!err.empty()) return fail(err);
      if (q.open_qubits.empty()) return fail("sample pattern has no '?' qubits to sample");
      q.text = "sample " + std::to_string(n) + " " + std::to_string(q.seed) + " " +
               canonical_pattern(q.bits, q.open_qubits);
    } else if (verb == "expect") {
      q.kind = QueryKind::kExpectation;
      if (tokens.size() != 2 && tokens.size() != 3)
        return fail("expect wants <paulis> [<bits>]");
      const std::string& paulis = tokens[1];
      if (int(paulis.size()) != num_qubits)
        return fail("pauli string has " + std::to_string(paulis.size()) + " chars, circuit has " +
                    std::to_string(num_qubits) + " qubits");
      q.paulis = paulis;
      for (int i = 0; i < num_qubits; ++i) {
        const char c = paulis[size_t(i)];
        if (c == 'X' || c == 'Y' || c == 'Z') {
          q.open_qubits.push_back(i);
        } else if (c != 'I') {
          return fail(std::string("bad pauli char '") + c + "' (want I/X/Y/Z)");
        }
      }
      if (q.open_qubits.empty()) return fail("pauli string is all-I (expectation is 1)");
      if (int(q.open_qubits.size()) > kMaxOpenQubits)
        return fail("pauli support has " + std::to_string(q.open_qubits.size()) +
                    " qubits (max " + std::to_string(kMaxOpenQubits) + ")");
      q.bits.assign(size_t(num_qubits), 0);
      if (tokens.size() == 3) {
        std::vector<int> base_open;
        std::string err =
            parse_pattern(tokens[2], num_qubits, /*allow_open=*/false, &q.bits, &base_open);
        if (!err.empty()) return fail(err);
        // Support positions have no base value; keep them zero in `bits`.
        for (int s : q.open_qubits) q.bits[size_t(s)] = 0;
        q.text = "expect " + paulis + " " + tokens[2];
      } else {
        q.text = "expect " + paulis;
      }
    } else {
      return fail("unknown query verb '" + verb + "' (want amp/batch/sample/expect)");
    }
    out.queries.push_back(std::move(q));
  }
  if (out.queries.empty() && out.error.empty()) {
    out.error = "query file has no queries";
    out.error_line = lineno;
  }
  return out;
}

}  // namespace ltns::query
