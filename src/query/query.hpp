// Query model of the batched query engine (src/query/): the parsed form of
// one line of a query file, plus the per-query answer record.
//
// This header is a LEAF on purpose — plain data, no api/dist/cache
// includes — so both the engine (solo execution over api::Simulator) and
// the job server (wire v6 query jobs, dist/job.hpp serializes QueryResult
// into the JobResultRecord) can share one vocabulary without a cycle.
//
// Query-file format (docs/queries.md): one query per line, '#' comments
// and blank lines ignored. A line starting with '{' is a flat JSON object
// with the same fields. Patterns are one char per qubit, qubit 0 first:
//
//   amp    <bits>                  bits in {0,1}            one amplitude
//   batch  <pattern>               pattern in {0,1,?}       2^|?| amplitudes
//   sample <n> <seed> <pattern>    pattern in {0,1,?}       n correlated samples
//   expect <paulis> [<bits>]       paulis in {I,X,Y,Z}      <P> on the
//                                  conditional state of the non-I qubits
#pragma once

#include <complex>
#include <cstdint>
#include <string>
#include <vector>

namespace ltns::query {

// Hard cap on any open-qubit set (2^24 amplitudes = 256 MiB of doubles),
// matching the result cache's batch-entry bound.
inline constexpr int kMaxOpenQubits = 24;

enum class QueryKind : uint32_t {
  kAmplitude = 0,
  kBatch = 1,
  kSample = 2,
  kExpectation = 3,
};
const char* query_kind_name(QueryKind k);

struct Query {
  QueryKind kind = QueryKind::kAmplitude;
  int id = 0;         // 1-based position in the query file
  std::string text;   // canonical echo of the parsed line
  // Full-length base bits: the fixed value of every qubit outside the
  // query's own open set (all kinds; open positions are 0 here).
  std::vector<int> bits;
  // The query's own open qubits, sorted ascending. Empty for kAmplitude;
  // the '?' positions for kBatch/kSample; the non-I support for
  // kExpectation.
  std::vector<int> open_qubits;
  int num_samples = 0;  // kSample
  uint64_t seed = 0;    // kSample
  std::string paulis;   // kExpectation: one of I/X/Y/Z per qubit
};

// Outcome of parse_queries: either a query list or the first error with
// its 1-based line number (malformed files are rejected, not skipped).
struct ParsedQueries {
  std::vector<Query> queries;
  std::string error;
  int error_line = 0;

  bool ok() const { return error.empty(); }
};

ParsedQueries parse_queries(const std::string& text, int num_qubits);

// One query's answer. Amplitudes are indexed by the query's OWN open set
// (open_qubits[0] = most significant bit): one entry for kAmplitude,
// 2^|open| for kBatch. Samples are full-length bitstrings ('0'/'1' text).
struct QueryResult {
  QueryKind kind = QueryKind::kAmplitude;
  int id = 0;
  std::string text;
  std::string error;
  std::vector<std::complex<double>> amplitudes;
  std::vector<std::string> samples;
  double expectation = 0;
};

}  // namespace ltns::query
