// The batched query engine: answers a heterogeneous query set against ONE
// circuit through shared contractions.
//
//   parse (query.hpp) -> group (grouper.hpp) -> per group: resolve a plan
//   (first open-set signature plans once — possibly via the plan cache —
//   every later group with the same signature REBUILDS that plan over its
//   own lowered network, planner never re-invoked) -> contract through
//   api::Simulator (solo, multi-process or elastic, per its options) ->
//   evaluate members (eval.hpp) -> stream results in deterministic order.
//
// Determinism contract (docs/queries.md): closed groups answer amplitude
// queries with the byte-exact result of a standalone `amp` run; open-group
// amplitudes are byte-stable across process counts and transports but
// carry batch-contraction rounding ("grouped" amp mode is opt-in).
#pragma once

#include <functional>

#include "api/simulator.hpp"
#include "query/grouper.hpp"
#include "query/query.hpp"

namespace ltns::query {

struct EngineOptions {
  int max_open = 6;              // grouper merge bound
  bool group_amplitudes = false; // opt-in "grouped" amp mode (see grouper.hpp)
};

// Counters of one engine run, exported as the ltns_query_* metric series
// (obs::fill_query_metrics). The acceptance invariant "a grouped query
// file executes in fewer contractions than queries" is provable from
// `contractions` vs `queries` alone.
struct EngineStats {
  uint64_t queries = 0;
  uint64_t amp_queries = 0, batch_queries = 0, sample_queries = 0, expect_queries = 0;
  uint64_t groups = 0, closed_groups = 0, open_groups = 0;
  uint64_t contractions = 0;       // contractions actually executed
  uint64_t planner_passes = 0;     // plans resolved by running src/path/
  uint64_t plan_cache_hits = 0;    // plans served by the persistent cache
  uint64_t plan_rebuilds = 0;      // plans rebuilt from a same-signature rep
  uint64_t result_cache_hits = 0;  // groups answered by exact result entries
  uint64_t superset_hits = 0;      // groups sliced out of covering batches
  uint64_t amplitudes_returned = 0;
  uint64_t samples_drawn = 0;
  uint64_t errors = 0;             // member results carrying an error
  double plan_seconds = 0;
  double exec_seconds = 0;
};

using ResultSink = std::function<void(const QueryResult&)>;

class Engine {
 public:
  Engine(const api::Simulator& sim, EngineOptions opt) : sim_(sim), opt_(opt) {}

  // Executes every query, streaming each answer to `sink` as its group
  // completes (groups in first-member order, members ascending — the
  // output order is a pure function of the query file).
  EngineStats run(const std::vector<Query>& queries, const ResultSink& sink);

 private:
  const api::Simulator& sim_;
  EngineOptions opt_;
};

}  // namespace ltns::query
