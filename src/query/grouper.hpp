// BatchGrouper: packs a query set into a minimal cover of shared
// contractions. Bitstrings (and open-set requests) that agree outside a
// small varying qubit set share ONE batch_amplitudes contraction; the
// greedy cover is bounded by `max_open` open qubits per group.
//
// Determinism: the cover is a pure function of the query list and the
// options — groups come out in first-member order, open sets sorted — so
// every transport (solo, elastic, serve) derives the identical cover and
// therefore the identical contraction sequence.
#pragma once

#include <vector>

#include "query/query.hpp"

namespace ltns::query {

// One shared contraction: all member queries agree with `base_bits`
// outside `open_qubits` and their own open sets are subsets of it.
// An empty open set is a CLOSED group — one exact single-amplitude
// contraction (the byte-identity mode for amp queries).
struct GroupSpec {
  std::vector<int> base_bits;    // full length; open positions forced to 0
  std::vector<int> open_qubits;  // sorted ascending; empty = closed
  std::vector<int> members;      // indices into the query list
};

struct GrouperOptions {
  // Upper bound on a group's open set when MERGING queries. A single
  // batch/sample/expect query whose own open set exceeds this still gets
  // its (sealed) group — an explicit request is honored, never split.
  int max_open = 6;
  // false ("exact" amp mode): amplitude queries are deduplicated into
  // closed groups only, so each answer comes from the same closed
  // contraction a standalone `amp` run performs — bitwise identity by
  // construction. true ("grouped" mode): amplitude queries also pack into
  // open covers (documented float-rounding contract, docs/queries.md).
  bool group_amplitudes = false;
};

// The packing core, exposed for property tests: items are (base bits,
// required open set) pairs; returns the greedy cover.
struct PackItem {
  std::vector<int> bits;
  std::vector<int> open_qubits;  // sorted ascending
};
std::vector<GroupSpec> pack_items(const std::vector<PackItem>& items, int max_open);

// The full grouping policy over a parsed query list (see GrouperOptions).
std::vector<GroupSpec> group_queries(const std::vector<Query>& queries,
                                     const GrouperOptions& opt);

}  // namespace ltns::query
