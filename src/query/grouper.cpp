#include "query/grouper.hpp"

#include <algorithm>
#include <map>

namespace ltns::query {

namespace {

// Sorted-set union helper: inserts q keeping `open` sorted, no duplicates.
void add_open(std::vector<int>* open, int q) {
  auto it = std::lower_bound(open->begin(), open->end(), q);
  if (it == open->end() || *it != q) open->insert(it, q);
}

bool contains(const std::vector<int>& open, int q) {
  return std::binary_search(open.begin(), open.end(), q);
}

}  // namespace

std::vector<GroupSpec> pack_items(const std::vector<PackItem>& items, int max_open) {
  std::vector<GroupSpec> groups;
  std::vector<char> covered(items.size(), 0);
  for (size_t i = 0; i < items.size(); ++i) {
    if (covered[i]) continue;
    GroupSpec g;
    g.base_bits = items[i].bits;
    g.open_qubits = items[i].open_qubits;
    g.members.push_back(int(i));
    covered[i] = 1;
    for (size_t j = i + 1; j < items.size(); ++j) {
      if (covered[j]) continue;
      // The union open set the merge would need: both open sets plus every
      // position where the base bits disagree outside them.
      std::vector<int> union_open = g.open_qubits;
      for (int q : items[j].open_qubits) add_open(&union_open, q);
      for (size_t q = 0; q < g.base_bits.size(); ++q) {
        if (g.base_bits[q] != items[j].bits[q] && !contains(union_open, int(q)))
          add_open(&union_open, int(q));
      }
      // Accept when the union respects the merge bound — or grows nothing
      // at all (duplicates join even a sealed oversized group for free).
      const bool no_growth = union_open.size() == g.open_qubits.size();
      if (!no_growth && int(union_open.size()) > max_open) continue;
      g.open_qubits = std::move(union_open);
      g.members.push_back(int(j));
      covered[j] = 1;
    }
    for (int q : g.open_qubits) g.base_bits[size_t(q)] = 0;
    groups.push_back(std::move(g));
  }
  return groups;
}

std::vector<GroupSpec> group_queries(const std::vector<Query>& queries,
                                     const GrouperOptions& opt) {
  // Exact amp mode: amplitude queries never enter an open cover — each
  // distinct bitstring becomes one CLOSED group (deduplicated), answered
  // by the same closed contraction a standalone `amp` run performs.
  std::vector<GroupSpec> groups;
  std::vector<PackItem> items;
  std::vector<int> item_query;  // item index -> query index
  std::map<std::vector<int>, size_t> closed_by_bits;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const Query& q = queries[qi];
    if (q.kind == QueryKind::kAmplitude && !opt.group_amplitudes) {
      auto [it, fresh] = closed_by_bits.emplace(q.bits, groups.size());
      if (fresh) {
        GroupSpec g;
        g.base_bits = q.bits;
        groups.push_back(std::move(g));
      }
      groups[it->second].members.push_back(int(qi));
      continue;
    }
    PackItem item;
    item.bits = q.bits;
    item.open_qubits = q.open_qubits;
    items.push_back(std::move(item));
    item_query.push_back(int(qi));
  }
  auto packed = pack_items(items, opt.max_open);
  for (auto& g : packed) {
    for (int& m : g.members) m = item_query[size_t(m)];
    groups.push_back(std::move(g));
  }
  // One deterministic group order for every transport: by first member.
  std::sort(groups.begin(), groups.end(),
            [](const GroupSpec& a, const GroupSpec& b) { return a.members[0] < b.members[0]; });
  return groups;
}

}  // namespace ltns::query
