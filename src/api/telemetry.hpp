// RunTelemetry: the shared telemetry tail every run result carries.
//
// AmplitudeResult, BatchResult and the service's per-job result frames all
// end in the same block of observability state — executor stats, scheduler
// snapshot, memory recorder, per-shard telemetry, elastic rebalance
// counters and the failure string. Factoring it into one struct keeps the
// three result types from drifting apart and lets the server serialize a
// job's telemetry with one helper instead of six parallel fields.
#pragma once

#include <string>
#include <vector>

#include "dist/lease.hpp"
#include "dist/wire.hpp"
#include "exec/tree_executor.hpp"
#include "runtime/executor_stats.hpp"
#include "runtime/memory_stats.hpp"

namespace ltns::api {

struct RunTelemetry {
  exec::ExecStats stats;                     // kernel-level flop/byte counters
  runtime::ExecutorSnapshot runtime_stats;   // per-run scheduler telemetry
                                             // (aggregated over processes)
  runtime::MemoryStats memory;               // main/LDM/RMA traffic recorder
  std::vector<dist::ShardTelemetry> shards;  // per-process telemetry
                                             // (empty for in-process runs)
  dist::RebalanceStats rebalance;            // elastic-mode lease telemetry
  std::string error;                         // sharded-run failure, if any
};

}  // namespace ltns::api
