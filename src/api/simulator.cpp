#include "api/simulator.hpp"

#include <cassert>

#include "cache/cache.hpp"
#include "circuit/io.hpp"
#include "device/backend.hpp"
#include "dist/checkpoint.hpp"
#include "query/eval.hpp"
#include "util/timer.hpp"

namespace ltns::api {

// The pinned planning state behind a PreparedPlan handle. Allocated once,
// never moved: `plan.tree` holds a raw pointer to `lowered.net`, so the
// network must reach its final address before make_plan (or a cache
// rebuild) runs against it.
struct PreparedPlan::State {
  std::vector<int> bits;
  std::vector<int> open_qubits;
  circuit::LoweredNetwork lowered;
  core::Plan plan;
  double plan_seconds = 0;
  bool plan_from_cache = false;
  std::string plan_cache_key;
  std::string result_cache_key;
};

bool PreparedPlan::plan_from_cache() const { return state_ != nullptr && state_->plan_from_cache; }
double PreparedPlan::plan_seconds() const { return state_ != nullptr ? state_->plan_seconds : 0; }
int PreparedPlan::num_slices() const { return state_ != nullptr ? state_->plan.num_slices() : 0; }

const std::vector<int>& PreparedPlan::bits() const {
  static const std::vector<int> empty;
  return state_ != nullptr ? state_->bits : empty;
}

const std::vector<int>& PreparedPlan::open_qubits() const {
  static const std::vector<int> empty;
  return state_ != nullptr ? state_->open_qubits : empty;
}

const core::SlicedMetrics& PreparedPlan::slicing() const {
  static const core::SlicedMetrics empty;
  return state_ != nullptr ? state_->plan.metrics : empty;
}

const std::string& PreparedPlan::plan_cache_key() const {
  static const std::string empty;
  return state_ != nullptr ? state_->plan_cache_key : empty;
}

Simulator::Simulator(circuit::Circuit c, SimulatorOptions opt)
    : circuit_(std::move(c)), opt_(std::move(opt)) {
  if (opt_.cache.plan_enabled()) plan_cache_ = std::make_shared<cache::PlanCache>(opt_.cache);
  if (opt_.cache.result_enabled()) {
    result_cache_ = std::make_shared<cache::ResultCache>(opt_.cache);
    // The covering-batch index scope: a result key with bits/open blanked,
    // i.e. the circuit + every knob that selects WHICH numbers come out.
    result_scope_ = cache::result_key(circuit::circuit_to_string(circuit_), "", "", opt_.plan,
                                      opt_.fused, opt_.ldm_elems);
  }
}

namespace {

// Canonical key preimage forms, shared with dist::run_fingerprint: '0'/'1'
// text for the output bits, "q0,q1," text for the open-qubit list.
std::string bit_text(const std::vector<int>& bits) {
  std::string t;
  t.reserve(bits.size());
  for (int b : bits) t += b != 0 ? '1' : '0';
  return t;
}

std::string open_text(const std::vector<int>& open_qubits) {
  std::string t;
  for (int q : open_qubits) t += std::to_string(q) + ",";
  return t;
}

struct RunOutput {
  exec::SliceRunResult r;
  std::vector<dist::ShardTelemetry> shards;
  dist::RebalanceStats rebalance;
  std::string error;
};

// Moves one run's output into the result's shared telemetry tail.
void fill_telemetry(RunTelemetry& t, RunOutput& out) {
  t.stats = out.r.stats;
  t.runtime_stats = out.r.executor_stats;
  t.memory = out.r.memory;
  t.shards = std::move(out.shards);
  t.rebalance = out.rebalance;
  t.error = std::move(out.error);
}

// Checkpoint-journal fingerprint of this exact job: a --resume against a
// journal from a different job must be refused, not merged. Delegates to
// the canonical dist::run_fingerprint (inputs + the RESOLVED plan, so any
// PlanOptions change that alters the plan changes the fingerprint, and a
// journal spilled here can resume under the TCP service and vice versa).
std::string run_fingerprint(const circuit::Circuit& c, const SimulatorOptions& opt,
                            const std::vector<int>& bits, const std::vector<int>& open_qubits,
                            const core::Plan& plan) {
  return dist::run_fingerprint(circuit::circuit_to_string(c), bit_text(bits),
                               open_text(open_qubits), opt.fused, opt.ldm_elems, plan.path,
                               plan.slices.to_vector());
}

RunOutput run(const circuit::LoweredNetwork& lowered, const core::Plan& plan,
              const SimulatorOptions& opt, exec::FusedPlan* fused_storage,
              const std::string& spill_run_id) {
  const exec::FusedPlan* fused = nullptr;
  if (opt.fused) {
    *fused_storage = exec::plan_fused(plan.stem, plan.slices.to_vector(), opt.ldm_elems);
    fused = fused_storage;
  }
  auto leaves = [&ln = lowered](tn::VertId v) -> const exec::Tensor& {
    return ln.tensors[size_t(v)];
  };

  RunOutput out;
  // The shared coherence gate: refuse silently-ignored flag combinations
  // (spill without elastic, resume without a spill dir, ...) in one place.
  out.error = validate_options(opt);
  if (!out.error.empty()) return out;
  // Elastic implies the shard driver even at one process — `--elastic`
  // must never silently degrade to the in-process path (a 1-process
  // elastic run still exercises the lease protocol and its telemetry).
  if (opt.sharding.processes > 1 || opt.sharding.elastic) {
    exec::ShardRunOptions so;
    so.processes = opt.sharding.processes;
    so.workers_per_process = opt.sharding.workers_per_process;
    so.executor = opt.executor;
    so.grain = opt.grain;
    so.fused = fused;
    so.elastic = opt.sharding.elastic;
    so.lease_size = opt.sharding.lease_size;
    so.heartbeat_seconds = opt.sharding.heartbeat_seconds;
    so.stall_timeout_seconds = opt.sharding.stall_timeout_seconds;
    so.spill_dir = opt.durability.spill_dir;
    so.resume = opt.durability.resume;
    so.spill_fsync_seconds = opt.durability.fsync_seconds;
    so.spill_run_id = spill_run_id;
    so.backend = effective_backend_spec(opt);  // each worker constructs it after the fork
    so.metrics_out = opt.observability.metrics_out;
    so.metrics_interval_seconds = opt.observability.metrics_interval_seconds;
    auto sr = exec::run_sharded(*plan.tree, leaves, plan.slices, so);
    out.r.accumulated = std::move(sr.accumulated);
    out.r.completed = sr.completed;
    out.r.tasks_run = sr.tasks_run;
    out.r.stats = sr.stats;
    out.r.wall_seconds = sr.wall_seconds;
    out.r.executor_stats = sr.executor_stats;
    out.r.memory = sr.memory;
    out.r.reduce_merges = sr.reduce_merges;
    out.shards = std::move(sr.shards);
    out.rebalance = sr.rebalance;
    out.error = std::move(sr.error);
    return out;
  }

  // In-process run: the Simulator owns one backend instance for the run.
  auto backend = device::make_backend(effective_backend_spec(opt));
  exec::SliceRunOptions ro;
  ro.executor = opt.executor;
  ro.scheduler = opt.scheduler;
  ro.grain = opt.grain;
  ro.pool = opt.pool != nullptr ? opt.pool : &ThreadPool::global();
  ro.fused = fused;
  ro.backend = backend.get();
  out.r = exec::run_sliced(*plan.tree, leaves, plan.slices, ro);
  return out;
}

}  // namespace

std::string effective_backend_spec(const SimulatorOptions& opt) {
  auto spec = device::parse_backend_spec(opt.backend);
  if (opt.precision == "bf16") spec.precision = exec::Precision::kBf16;
  return spec.spec();
}

std::string validate_options(const SimulatorOptions& opt) {
  if (!opt.precision.empty() && opt.precision != "fp32" && opt.precision != "bf16")
    return "unknown precision '" + opt.precision + "'; use fp32 or bf16";
  if (opt.precision == "bf16" && opt.backend.find("+fp32") != std::string::npos)
    return "precision bf16 conflicts with explicit fp32 backend spec '" + opt.backend + "'";
  try {
    device::parse_backend_spec(opt.backend);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  if (!opt.durability.spill_dir.empty() && !opt.sharding.elastic)
    return "checkpoint spill requires the elastic driver (--elastic)";
  if (opt.durability.spill_dir.empty() &&
      (opt.durability.resume || opt.durability.fsync_seconds != 0))
    return "--resume/--spill-fsync require --spill-dir";
  if (opt.observability.metrics_out.empty() &&
      opt.observability.metrics_interval_seconds != 0)
    return "--metrics-interval requires --metrics-out";
  return cache::validate_cache_options(opt.cache);
}

std::string Simulator::plan_key_for(const std::vector<int>& bits,
                                    const std::vector<int>& open_qubits) const {
  return cache::plan_key(circuit::circuit_to_string(circuit_), bit_text(bits),
                         open_text(open_qubits), opt_.plan);
}

std::string Simulator::result_key_for(const std::vector<int>& bits,
                                      const std::vector<int>& open_qubits) const {
  return cache::result_key(circuit::circuit_to_string(circuit_), bit_text(bits),
                           open_text(open_qubits), opt_.plan, opt_.fused, opt_.ldm_elems);
}

PreparedPlan Simulator::prepare(const std::vector<int>& bits,
                                const std::vector<int>& open_qubits) const {
  Timer t;
  auto st = std::make_shared<PreparedPlan::State>();
  st->bits = bits;
  st->open_qubits = open_qubits;
  st->plan_cache_key = plan_key_for(bits, open_qubits);
  st->result_cache_key = result_key_for(bits, open_qubits);
  circuit::LoweringOptions lo;
  lo.output_bits = bits;
  lo.open_qubits = open_qubits;
  // The network lands at its FINAL heap address before any plan (cached or
  // fresh) is built over it — the tree keeps a raw pointer into it.
  st->lowered = circuit::lower(circuit_, lo);
  circuit::simplify(st->lowered);
  if (plan_cache_ != nullptr &&
      plan_cache_->lookup(st->plan_cache_key, st->lowered.net, &st->plan)) {
    st->plan_from_cache = true;
  } else {
    st->plan = core::make_plan(st->lowered.net, opt_.plan);
    if (plan_cache_ != nullptr) plan_cache_->insert(st->plan_cache_key, st->plan);
  }
  st->plan_seconds = t.seconds();
  PreparedPlan p;
  p.state_ = std::move(st);
  return p;
}

PreparedPlan Simulator::prepare_like(const PreparedPlan& rep, const std::vector<int>& bits,
                                     const std::vector<int>& open_qubits) const {
  if (!rep.valid() || rep.state_->open_qubits != open_qubits) return {};
  Timer t;
  auto st = std::make_shared<PreparedPlan::State>();
  st->bits = bits;
  st->open_qubits = open_qubits;
  st->plan_cache_key = plan_key_for(bits, open_qubits);
  st->result_cache_key = result_key_for(bits, open_qubits);
  circuit::LoweringOptions lo;
  lo.output_bits = bits;
  lo.open_qubits = open_qubits;
  st->lowered = circuit::lower(circuit_, lo);
  circuit::simplify(st->lowered);
  // Re-target the representative's resolved plan at this network. Lowering
  // is value-blind, so the rebuild is expected to fit; if it ever does not
  // (e.g. simplify folded differently), return invalid and let the caller
  // fall back to a full prepare().
  if (!cache::decode_plan(cache::encode_plan(rep.state_->plan), st->lowered.net, &st->plan))
    return {};
  st->plan_from_cache = true;  // the planner never ran
  if (plan_cache_ != nullptr) plan_cache_->insert(st->plan_cache_key, st->plan);
  st->plan_seconds = t.seconds();
  PreparedPlan p;
  p.state_ = std::move(st);
  return p;
}

bool Simulator::amplitude_from_cache(const std::string& key, double plan_seconds,
                                     AmplitudeResult* out) const {
  if (result_cache_ == nullptr) return false;
  cache::AmplitudeEntry e;
  if (!result_cache_->lookup_amplitude(key, &e)) return false;
  out->amplitude = e.amplitude;
  out->completed = true;
  out->slicing = e.slicing;
  out->num_slices = e.num_slices;
  out->from_cache = true;
  out->telemetry = std::move(e.telemetry);
  out->plan_seconds = plan_seconds;
  out->exec_seconds = 0;
  return true;
}

AmplitudeResult Simulator::amplitude(const std::vector<int>& bits) const {
  // A cached completed result answers before ANY planning work — but only
  // when the options would validate, so a misconfigured run still reports
  // its configuration error instead of silently serving stale bytes.
  if (result_cache_ != nullptr && validate_options(opt_).empty()) {
    AmplitudeResult res;
    if (amplitude_from_cache(result_key_for(bits, {}), /*plan_seconds=*/0, &res)) return res;
  }
  return amplitude(prepare(bits));
}

AmplitudeResult Simulator::amplitude(const PreparedPlan& plan) const {
  AmplitudeResult res;
  if (!plan.valid()) {
    res.telemetry.error = "amplitude() called with an invalid (default) PreparedPlan";
    return res;
  }
  const auto& st = *plan.state_;
  if (!st.open_qubits.empty()) {
    res.telemetry.error =
        "amplitude() needs a plan prepared without open qubits (use batch_amplitudes)";
    return res;
  }
  res.slicing = st.plan.metrics;
  res.num_slices = st.plan.num_slices();
  res.plan_seconds = st.plan_seconds;
  if (amplitude_from_cache(st.result_cache_key, st.plan_seconds, &res)) return res;

  Timer t;
  exec::FusedPlan fused;
  auto out = run(st.lowered, st.plan, opt_, &fused,
                 opt_.durability.spill_dir.empty()
                     ? std::string{}
                     : run_fingerprint(circuit_, opt_, st.bits, {}, st.plan));
  const auto& rr = out.r;
  res.exec_seconds = t.seconds();
  res.completed = rr.completed;
  fill_telemetry(res.telemetry, out);
  // A cancelled or failed run yields an empty tensor; report a zero
  // amplitude rather than reading a scalar that was never accumulated.
  if (!rr.completed || rr.accumulated.size() == 0) return res;
  assert(rr.accumulated.rank() == 0);
  res.amplitude = std::complex<double>(rr.accumulated.data()[0]) * st.lowered.scalar;
  if (result_cache_ != nullptr && res.telemetry.error.empty()) {
    cache::AmplitudeEntry e;
    e.amplitude = res.amplitude;
    e.num_slices = res.num_slices;
    e.slicing = res.slicing;
    e.tasks_run = rr.tasks_run;
    e.wall_seconds = rr.wall_seconds;
    e.telemetry = res.telemetry;
    result_cache_->insert_amplitude(st.result_cache_key, e);
  }
  return res;
}

BatchResult Simulator::batch_amplitudes(const std::vector<int>& bits,
                                        const std::vector<int>& open_qubits) const {
  assert(!open_qubits.empty() && open_qubits.size() <= 24);
  if (result_cache_ != nullptr && validate_options(opt_).empty()) {
    cache::BatchEntry e;
    if (result_cache_->lookup_batch(result_key_for(bits, open_qubits), &e, result_scope_)) {
      BatchResult res;
      res.amplitudes = std::move(e.amplitudes);
      res.completed = true;
      res.open_qubits = std::move(e.open_qubits);
      res.slicing = e.slicing;
      res.from_cache = true;
      res.telemetry = std::move(e.telemetry);
      return res;
    }
  }
  return batch_amplitudes(prepare(bits, open_qubits));
}

BatchResult Simulator::batch_amplitudes(const PreparedPlan& plan) const {
  BatchResult res;
  if (!plan.valid()) {
    res.telemetry.error = "batch_amplitudes() called with an invalid (default) PreparedPlan";
    return res;
  }
  const auto& st = *plan.state_;
  if (st.open_qubits.empty()) {
    res.telemetry.error =
        "batch_amplitudes() needs a plan prepared with open qubits (use amplitude)";
    return res;
  }
  res.open_qubits = st.open_qubits;
  res.slicing = st.plan.metrics;
  if (result_cache_ != nullptr) {
    cache::BatchEntry e;
    if (result_cache_->lookup_batch(st.result_cache_key, &e, result_scope_)) {
      res.amplitudes = std::move(e.amplitudes);
      res.completed = true;
      res.from_cache = true;
      res.telemetry = std::move(e.telemetry);
      return res;
    }
  }

  exec::FusedPlan fused;
  auto out = run(st.lowered, st.plan, opt_, &fused,
                 opt_.durability.spill_dir.empty()
                     ? std::string{}
                     : run_fingerprint(circuit_, opt_, st.bits, st.open_qubits, st.plan));
  const auto& rr = out.r;
  res.completed = rr.completed;
  fill_telemetry(res.telemetry, out);

  const exec::Tensor& t = rr.accumulated;
  if (!rr.completed || t.size() == 0) return res;  // cancelled: no amplitudes
  // Canonical re-index (open_qubits[0] = MSB) lives in query::eval so the
  // server's query jobs derive the identical bytes from the same tensor.
  res.amplitudes = query::amplitudes_from_tensor(t, st.lowered, st.open_qubits);
  if (result_cache_ != nullptr && res.telemetry.error.empty()) {
    cache::BatchEntry e;
    e.amplitudes = res.amplitudes;
    e.open_qubits = res.open_qubits;
    e.base_bits = st.bits;
    for (int q : e.open_qubits) e.base_bits[size_t(q)] = 0;  // canonical form
    e.slicing = res.slicing;
    e.telemetry = res.telemetry;
    result_cache_->insert_batch(st.result_cache_key, e, result_scope_);
  }
  return res;
}

cache::CacheStats Simulator::cache_stats() const {
  cache::CacheStats s;
  if (plan_cache_ != nullptr) s.plan = plan_cache_->stats();
  if (result_cache_ != nullptr) {
    s.result = result_cache_->stats();
    s.superset_hits = result_cache_->superset_hits();
  }
  return s;
}

bool Simulator::find_covering_batch(const std::vector<int>& bits,
                                    const std::vector<int>& open_qubits,
                                    cache::BatchEntry* out) const {
  if (result_cache_ == nullptr || !validate_options(opt_).empty()) return false;
  return result_cache_->find_covering_batch(result_scope_, bits, open_qubits, out);
}

std::vector<uint64_t> Simulator::sample_from_batch(const BatchResult& batch, int n,
                                                   uint64_t seed) {
  return query::sample_from_amplitudes(batch.amplitudes, n, seed);
}

}  // namespace ltns::api
