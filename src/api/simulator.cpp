#include "api/simulator.hpp"

#include <cassert>

#include "circuit/io.hpp"
#include "device/backend.hpp"
#include "dist/checkpoint.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace ltns::api {

Simulator::Simulator(circuit::Circuit c, SimulatorOptions opt)
    : circuit_(std::move(c)), opt_(std::move(opt)) {}

namespace {

struct Prepared {
  circuit::LoweredNetwork lowered;
  core::Plan plan;
  double plan_seconds = 0;
};

Prepared prepare(const circuit::Circuit& c, const SimulatorOptions& opt,
                 const std::vector<int>& bits, const std::vector<int>& open_qubits) {
  Timer t;
  circuit::LoweringOptions lo;
  lo.output_bits = bits;
  lo.open_qubits = open_qubits;
  Prepared p{circuit::lower(c, lo), core::Plan{}, 0};
  circuit::simplify(p.lowered);
  p.plan = core::make_plan(p.lowered.net, opt.plan);
  p.plan_seconds = t.seconds();
  return p;
}

struct RunOutput {
  exec::SliceRunResult r;
  std::vector<dist::ShardTelemetry> shards;
  dist::RebalanceStats rebalance;
  std::string error;
};

// Moves one run's output into the result's shared telemetry tail.
void fill_telemetry(RunTelemetry& t, RunOutput& out) {
  t.stats = out.r.stats;
  t.runtime_stats = out.r.executor_stats;
  t.memory = out.r.memory;
  t.shards = std::move(out.shards);
  t.rebalance = out.rebalance;
  t.error = std::move(out.error);
}

// Checkpoint-journal fingerprint of this exact job: a --resume against a
// journal from a different job must be refused, not merged. Delegates to
// the canonical dist::run_fingerprint (inputs + the RESOLVED plan, so any
// PlanOptions change that alters the plan changes the fingerprint, and a
// journal spilled here can resume under the TCP service and vice versa).
std::string run_fingerprint(const circuit::Circuit& c, const SimulatorOptions& opt,
                            const std::vector<int>& bits, const std::vector<int>& open_qubits,
                            const core::Plan& plan) {
  std::string bit_text;
  bit_text.reserve(bits.size());
  for (int b : bits) bit_text += b != 0 ? '1' : '0';
  std::string open_text;
  for (int q : open_qubits) open_text += std::to_string(q) + ",";
  return dist::run_fingerprint(circuit::circuit_to_string(c), bit_text, open_text, opt.fused,
                               opt.ldm_elems, plan.path, plan.slices.to_vector());
}

RunOutput run(const Prepared& p, const SimulatorOptions& opt, exec::FusedPlan* fused_storage,
              const std::string& spill_run_id) {
  const exec::FusedPlan* fused = nullptr;
  if (opt.fused) {
    *fused_storage = exec::plan_fused(p.plan.stem, p.plan.slices.to_vector(), opt.ldm_elems);
    fused = fused_storage;
  }
  auto leaves = [&ln = p.lowered](tn::VertId v) -> const exec::Tensor& {
    return ln.tensors[size_t(v)];
  };

  RunOutput out;
  // The shared coherence gate: refuse silently-ignored flag combinations
  // (spill without elastic, resume without a spill dir, ...) in one place.
  out.error = validate_options(opt);
  if (!out.error.empty()) return out;
  // Elastic implies the shard driver even at one process — `--elastic`
  // must never silently degrade to the in-process path (a 1-process
  // elastic run still exercises the lease protocol and its telemetry).
  if (opt.sharding.processes > 1 || opt.sharding.elastic) {
    exec::ShardRunOptions so;
    so.processes = opt.sharding.processes;
    so.workers_per_process = opt.sharding.workers_per_process;
    so.executor = opt.executor;
    so.grain = opt.grain;
    so.fused = fused;
    so.elastic = opt.sharding.elastic;
    so.lease_size = opt.sharding.lease_size;
    so.heartbeat_seconds = opt.sharding.heartbeat_seconds;
    so.stall_timeout_seconds = opt.sharding.stall_timeout_seconds;
    so.spill_dir = opt.durability.spill_dir;
    so.resume = opt.durability.resume;
    so.spill_fsync_seconds = opt.durability.fsync_seconds;
    so.spill_run_id = spill_run_id;
    so.backend = opt.backend;  // each worker constructs it after the fork
    so.metrics_out = opt.observability.metrics_out;
    so.metrics_interval_seconds = opt.observability.metrics_interval_seconds;
    auto sr = exec::run_sharded(*p.plan.tree, leaves, p.plan.slices, so);
    out.r.accumulated = std::move(sr.accumulated);
    out.r.completed = sr.completed;
    out.r.tasks_run = sr.tasks_run;
    out.r.stats = sr.stats;
    out.r.wall_seconds = sr.wall_seconds;
    out.r.executor_stats = sr.executor_stats;
    out.r.memory = sr.memory;
    out.r.reduce_merges = sr.reduce_merges;
    out.shards = std::move(sr.shards);
    out.rebalance = sr.rebalance;
    out.error = std::move(sr.error);
    return out;
  }

  // In-process run: the Simulator owns one backend instance for the run.
  auto backend = device::make_backend(opt.backend.empty() ? "host" : opt.backend);
  exec::SliceRunOptions ro;
  ro.executor = opt.executor;
  ro.scheduler = opt.scheduler;
  ro.grain = opt.grain;
  ro.pool = opt.pool != nullptr ? opt.pool : &ThreadPool::global();
  ro.fused = fused;
  ro.backend = backend.get();
  out.r = exec::run_sliced(*p.plan.tree, leaves, p.plan.slices, ro);
  return out;
}

}  // namespace

std::string validate_options(const SimulatorOptions& opt) {
  if (!opt.durability.spill_dir.empty() && !opt.sharding.elastic)
    return "checkpoint spill requires the elastic driver (--elastic)";
  if (opt.durability.spill_dir.empty() &&
      (opt.durability.resume || opt.durability.fsync_seconds != 0))
    return "--resume/--spill-fsync require --spill-dir";
  if (opt.observability.metrics_out.empty() &&
      opt.observability.metrics_interval_seconds != 0)
    return "--metrics-interval requires --metrics-out";
  return {};
}

AmplitudeResult Simulator::amplitude(const std::vector<int>& bits) const {
  auto p = prepare(circuit_, opt_, bits, {});
  AmplitudeResult res;
  res.slicing = p.plan.metrics;
  res.num_slices = p.plan.num_slices();
  res.plan_seconds = p.plan_seconds;

  Timer t;
  exec::FusedPlan fused;
  auto out = run(p, opt_, &fused,
                 opt_.durability.spill_dir.empty()
                     ? std::string{}
                     : run_fingerprint(circuit_, opt_, bits, {}, p.plan));
  const auto& rr = out.r;
  res.exec_seconds = t.seconds();
  res.completed = rr.completed;
  fill_telemetry(res.telemetry, out);
  // A cancelled or failed run yields an empty tensor; report a zero
  // amplitude rather than reading a scalar that was never accumulated.
  if (!rr.completed || rr.accumulated.size() == 0) return res;
  assert(rr.accumulated.rank() == 0);
  res.amplitude = std::complex<double>(rr.accumulated.data()[0]) * p.lowered.scalar;
  return res;
}

BatchResult Simulator::batch_amplitudes(const std::vector<int>& bits,
                                        const std::vector<int>& open_qubits) const {
  assert(!open_qubits.empty() && open_qubits.size() <= 24);
  auto p = prepare(circuit_, opt_, bits, open_qubits);
  BatchResult res;
  res.open_qubits = open_qubits;
  res.slicing = p.plan.metrics;

  exec::FusedPlan fused;
  auto out =
      run(p, opt_, &fused,
          opt_.durability.spill_dir.empty()
              ? std::string{}
              : run_fingerprint(circuit_, opt_, bits, open_qubits, p.plan));
  const auto& rr = out.r;
  res.completed = rr.completed;
  fill_telemetry(res.telemetry, out);

  // The result tensor's axes are the open output edges in some order;
  // re-index so open_qubits[0] is the most significant bit.
  const exec::Tensor& t = rr.accumulated;
  if (!rr.completed || t.size() == 0) return res;  // cancelled: no amplitudes
  assert(t.rank() == int(open_qubits.size()));
  std::vector<int> axis_for_qubit(open_qubits.size());
  for (size_t i = 0; i < open_qubits.size(); ++i) {
    int edge = p.lowered.output_edge[size_t(open_qubits[i])];
    int ax = t.axis_of(edge);
    assert(ax >= 0);
    axis_for_qubit[i] = ax;
  }
  const size_t n = size_t(1) << open_qubits.size();
  res.amplitudes.resize(n);
  const int r = t.rank();
  for (size_t k = 0; k < n; ++k) {
    size_t off = 0;
    for (size_t i = 0; i < open_qubits.size(); ++i) {
      size_t bit = (k >> (open_qubits.size() - 1 - i)) & 1;
      off |= bit << (r - 1 - axis_for_qubit[i]);
    }
    res.amplitudes[k] = std::complex<double>(t.data()[off]) * p.lowered.scalar;
  }
  return res;
}

std::vector<uint64_t> Simulator::sample_from_batch(const BatchResult& batch, int n,
                                                   uint64_t seed) {
  Rng rng(seed);
  double total = 0;
  for (const auto& a : batch.amplitudes) total += std::norm(a);
  std::vector<uint64_t> out;
  out.reserve(size_t(n));
  for (int i = 0; i < n; ++i) {
    double u = rng.next_double() * total;
    double acc = 0;
    uint64_t pick = 0;
    for (size_t k = 0; k < batch.amplitudes.size(); ++k) {
      acc += std::norm(batch.amplitudes[k]);
      if (u <= acc) {
        pick = k;
        break;
      }
    }
    out.push_back(pick);
  }
  return out;
}

}  // namespace ltns::api
