// Simulator: the public facade tying the whole pipeline together.
//
//   circuit -> lower -> simplify -> plan (path + lifetime slicing)
//           -> execute (step-by-step or fused/secondary-slicing)
//           -> amplitude / correlated-sample batch
//
// This is the API the examples use; everything underneath is reachable for
// users who need the pieces (e.g. to swap the slicer, as the benches do).
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/telemetry.hpp"
#include "circuit/lowering.hpp"
#include "core/planner.hpp"
#include "exec/shard_runner.hpp"
#include "exec/slice_runner.hpp"

namespace ltns::api {

// Multi-process sharding knobs. processes > 1 forks one worker process per
// shard of the 2^|S| subtasks (exec::run_sharded) and merges the partials
// in fixed tournament order, so the result is bitwise identical to an
// in-process run. `elastic` forces the shard driver even at one process:
// workers lease bounded task ranges from a coordinator queue instead of
// owning one fixed window — idle workers steal a straggler's untouched
// ranges and a dead worker's leases are requeued, still bitwise identical.
struct ShardingOptions {
  int processes = 1;
  int workers_per_process = 0;        // scheduler width per worker; 0 = hw/processes
  bool elastic = false;
  uint64_t lease_size = 0;            // tasks per lease; 0 = auto
  double heartbeat_seconds = 0.2;     // worker liveness period
  double stall_timeout_seconds = 30;  // silent-with-leases -> revoke + requeue
};

// Durable run ledger (requires sharding.elastic): journal every completed
// lease range to `<spill_dir>/ledger.journal` (fsync'd every
// `fsync_seconds`; <= 0 = after every record). With `resume`, an existing
// journal for the SAME job (circuit + bits + plan knobs are fingerprinted)
// is replayed first, so a run whose coordinator crashed continues where
// the journal ends and still produces output bitwise identical to an
// uninterrupted run. See docs/operations.md.
struct DurabilityOptions {
  std::string spill_dir;
  bool resume = false;
  double fsync_seconds = 0;
};

// Live-metrics snapshot (requires sharding.elastic): the coordinator
// writes `metrics_out` (ltns.metrics.v1 JSON + a .prom twin for scrapers)
// every `metrics_interval_seconds` while the run is live, and once more at
// the end. <= 0 disables. Event tracing needs no option here — arming
// obs::Tracer before the run is process-global, and forked workers re-home
// themselves automatically (see src/obs/trace.hpp).
struct ObservabilityOptions {
  std::string metrics_out;
  double metrics_interval_seconds = 0;
};

struct SimulatorOptions {
  core::PlanOptions plan;
  bool fused = true;              // secondary-slicing executor on the stem
  size_t ldm_elems = 32768;       // LDM model capacity: 256 KB / 8 B
  // Slice-subtask runtime: work stealing by default; the static ThreadPool
  // partition and the legacy inner-pool mode remain selectable fallbacks.
  exec::SliceExecutor executor = exec::SliceExecutor::kWorkStealing;
  ThreadPool* pool = nullptr;     // kInnerPool/kStaticPool; defaults to global
  runtime::SliceScheduler* scheduler = nullptr;  // kWorkStealing; defaults to global
  uint64_t grain = 1;             // scheduler chunk size (tasks per pop)
  // Device backend the kernels run on: "host" (reference), "blocked"
  // (cache-blocked/SIMD host device) or "cuda" (compile-gated). Every
  // conforming backend is bitwise identical, so results never depend on
  // this choice; device::make_backend throws std::invalid_argument for
  // unknown or compiled-out names. In sharded runs each worker process
  // constructs its own instance of this backend after the fork.
  std::string backend = "host";
  ShardingOptions sharding;
  DurabilityOptions durability;
  ObservabilityOptions observability;
};

// One shared gate for the flag combinations that would otherwise be
// silently ignored (spill without the elastic driver, resume without a
// spill dir, a metrics cadence with nowhere to write). Returns the error
// text, empty when the options are coherent. Both the CLI (at parse time,
// exit 64) and Simulator::amplitude/batch_amplitudes (as the result's
// `telemetry.error`) call this, so the two layers can never drift.
std::string validate_options(const SimulatorOptions& opt);

struct AmplitudeResult {
  std::complex<double> amplitude{0, 0};
  // False when the run was cancelled mid-flight; `amplitude` is then 0 and
  // must not be read as the answer.
  bool completed = false;
  core::SlicedMetrics slicing;
  int num_slices = 0;
  RunTelemetry telemetry;  // shared tail; `telemetry.error` on failure
  double plan_seconds = 0;
  double exec_seconds = 0;
};

struct BatchResult {
  // amplitudes[k] is the amplitude whose open-qubit bits are the binary
  // digits of k (open_qubits[0] = most significant).
  std::vector<std::complex<double>> amplitudes;
  bool completed = false;  // false: cancelled mid-flight, amplitudes empty
  std::vector<int> open_qubits;
  core::SlicedMetrics slicing;
  RunTelemetry telemetry;  // shared tail; `telemetry.error` on failure
};

class Simulator {
 public:
  explicit Simulator(circuit::Circuit c, SimulatorOptions opt = {});

  const circuit::Circuit& circuit() const { return circuit_; }
  const SimulatorOptions& options() const { return opt_; }

  // Single closed amplitude <bits|C|0...0>.
  AmplitudeResult amplitude(const std::vector<int>& bits) const;

  // Correlated batch: qubits in `open_qubits` are left open, the rest fixed
  // to `bits`; one contraction yields all 2^|open| amplitudes (§6.2's "1M
  // correlated samples" method).
  BatchResult batch_amplitudes(const std::vector<int>& bits,
                               const std::vector<int>& open_qubits) const;

  // Draws `n` samples of the open qubits from the batch distribution
  // |amplitude|^2 (renormalized over the batch).
  static std::vector<uint64_t> sample_from_batch(const BatchResult& batch, int n, uint64_t seed);

 private:
  circuit::Circuit circuit_;
  SimulatorOptions opt_;
};

}  // namespace ltns::api
