// Simulator: the public facade tying the whole pipeline together.
//
//   circuit -> lower -> simplify -> plan (path + lifetime slicing)
//           -> execute (step-by-step or fused/secondary-slicing)
//           -> amplitude / correlated-sample batch
//
// This is the API the examples use; everything underneath is reachable for
// users who need the pieces (e.g. to swap the slicer, as the benches do).
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/telemetry.hpp"
#include "cache/options.hpp"
#include "circuit/lowering.hpp"
#include "core/planner.hpp"
#include "exec/shard_runner.hpp"
#include "exec/slice_runner.hpp"

namespace ltns::cache {
class PlanCache;
class ResultCache;
struct BatchEntry;
}  // namespace ltns::cache

namespace ltns::api {

// Multi-process sharding knobs. processes > 1 forks one worker process per
// shard of the 2^|S| subtasks (exec::run_sharded) and merges the partials
// in fixed tournament order, so the result is bitwise identical to an
// in-process run. `elastic` forces the shard driver even at one process:
// workers lease bounded task ranges from a coordinator queue instead of
// owning one fixed window — idle workers steal a straggler's untouched
// ranges and a dead worker's leases are requeued, still bitwise identical.
struct ShardingOptions {
  int processes = 1;
  int workers_per_process = 0;        // scheduler width per worker; 0 = hw/processes
  bool elastic = false;
  uint64_t lease_size = 0;            // tasks per lease; 0 = auto
  double heartbeat_seconds = 0.2;     // worker liveness period
  double stall_timeout_seconds = 30;  // silent-with-leases -> revoke + requeue
};

// Durable run ledger (requires sharding.elastic): journal every completed
// lease range to `<spill_dir>/ledger.journal` (fsync'd every
// `fsync_seconds`; <= 0 = after every record). With `resume`, an existing
// journal for the SAME job (circuit + bits + plan knobs are fingerprinted)
// is replayed first, so a run whose coordinator crashed continues where
// the journal ends and still produces output bitwise identical to an
// uninterrupted run. See docs/operations.md.
struct DurabilityOptions {
  std::string spill_dir;
  bool resume = false;
  double fsync_seconds = 0;
};

// Live-metrics snapshot (requires sharding.elastic): the coordinator
// writes `metrics_out` (ltns.metrics.v1 JSON + a .prom twin for scrapers)
// every `metrics_interval_seconds` while the run is live, and once more at
// the end. <= 0 disables. Event tracing needs no option here — arming
// obs::Tracer before the run is process-global, and forked workers re-home
// themselves automatically (see src/obs/trace.hpp).
struct ObservabilityOptions {
  std::string metrics_out;
  double metrics_interval_seconds = 0;
};

struct SimulatorOptions {
  core::PlanOptions plan;
  bool fused = true;              // secondary-slicing executor on the stem
  size_t ldm_elems = 32768;       // LDM model capacity: 256 KB / 8 B
  // Slice-subtask runtime: work stealing by default; the static ThreadPool
  // partition and the legacy inner-pool mode remain selectable fallbacks.
  exec::SliceExecutor executor = exec::SliceExecutor::kWorkStealing;
  ThreadPool* pool = nullptr;     // kInnerPool/kStaticPool; defaults to global
  runtime::SliceScheduler* scheduler = nullptr;  // kWorkStealing; defaults to global
  uint64_t grain = 1;             // scheduler chunk size (tasks per pop)
  // Device backend the kernels run on: "host" (reference), "blocked"
  // (cache-blocked host device), "simd" (runtime-dispatched vector tiers)
  // or "cuda" (compile-gated), optionally with a "+fp32"/"+bf16" precision
  // suffix. Every conforming backend is bitwise identical at a given
  // precision, so results never depend on this choice;
  // device::make_backend throws std::invalid_argument for unknown or
  // compiled-out names. In sharded runs each worker process constructs its
  // own instance of this backend after the fork.
  std::string backend = "host";
  // GEMM operand precision: "fp32" (default; bitwise contract) or "bf16"
  // (mixed precision: bf16 operands, fp32 accumulation — deterministic,
  // ULP-bounded vs fp32; see docs/kernels.md). Folded into the backend
  // spec; an explicit "+fp32" suffix on `backend` conflicts with "bf16"
  // here and is rejected by validate_options.
  std::string precision = "fp32";
  ShardingOptions sharding;
  DurabilityOptions durability;
  ObservabilityOptions observability;
  // Content-addressed plan & result cache (src/cache/): in-memory LRU
  // tiers by default, persistent across processes with `cache_dir` set.
  cache::CacheOptions cache;
};

// One shared gate for the flag combinations that would otherwise be
// silently ignored (spill without the elastic driver, resume without a
// spill dir, a metrics cadence with nowhere to write). Returns the error
// text, empty when the options are coherent. Both the CLI (at parse time,
// exit 64) and Simulator::amplitude/batch_amplitudes (as the result's
// `telemetry.error`) call this, so the two layers can never drift.
std::string validate_options(const SimulatorOptions& opt);

// The backend spec a run actually constructs: `opt.backend` with
// `opt.precision` folded in ("simd" + "bf16" -> "simd+bf16"). This is the
// string that travels to forked shard workers and remote jobs.
std::string effective_backend_spec(const SimulatorOptions& opt);

struct AmplitudeResult {
  std::complex<double> amplitude{0, 0};
  // False when the run was cancelled mid-flight; `amplitude` is then 0 and
  // must not be read as the answer.
  bool completed = false;
  core::SlicedMetrics slicing;
  int num_slices = 0;
  // True when the answer came out of the result cache (no contraction ran).
  bool from_cache = false;
  RunTelemetry telemetry;  // shared tail; `telemetry.error` on failure
  double plan_seconds = 0;
  double exec_seconds = 0;
};

struct BatchResult {
  // amplitudes[k] is the amplitude whose open-qubit bits are the binary
  // digits of k (open_qubits[0] = most significant).
  std::vector<std::complex<double>> amplitudes;
  bool completed = false;  // false: cancelled mid-flight, amplitudes empty
  std::vector<int> open_qubits;
  core::SlicedMetrics slicing;
  // True when the answer came out of the result cache (no contraction ran).
  bool from_cache = false;
  RunTelemetry telemetry;  // shared tail; `telemetry.error` on failure
};

// A resolved, reusable plan: the output of Simulator::prepare(), accepted
// by amplitude()/batch_amplitudes() so many queries share one planning
// pass. The underlying state (lowered network + plan) is heap-allocated
// and pinned — the plan's ContractionTree stores a raw pointer into the
// lowered network, so the state must never move after planning (the same
// rule dist::prepare_job documents). The handle itself is a shared_ptr
// wrapper: cheap to copy, safe to move, shareable across queries.
class PreparedPlan {
 public:
  PreparedPlan() = default;  // invalid until assigned from prepare()

  bool valid() const { return state_ != nullptr; }
  const std::vector<int>& bits() const;
  const std::vector<int>& open_qubits() const;
  int num_slices() const;
  const core::SlicedMetrics& slicing() const;
  double plan_seconds() const;
  // True when the plan came out of the cache (src/path/ never ran).
  bool plan_from_cache() const;
  // The content-addressed key (input fingerprint) this plan is filed under.
  const std::string& plan_cache_key() const;

 private:
  friend class Simulator;
  struct State;
  std::shared_ptr<const State> state_;
};

class Simulator {
 public:
  explicit Simulator(circuit::Circuit c, SimulatorOptions opt = {});

  const circuit::Circuit& circuit() const { return circuit_; }
  const SimulatorOptions& options() const { return opt_; }

  // Resolves the plan for one output configuration: lower -> simplify ->
  // plan cache lookup, falling back to make_plan (and populating the
  // cache). The returned handle can be passed to amplitude() /
  // batch_amplitudes() any number of times.
  PreparedPlan prepare(const std::vector<int>& bits,
                       const std::vector<int>& open_qubits = {}) const;

  // Re-targets an already-resolved plan at a DIFFERENT output bitstring
  // with the SAME open-qubit set: lowers the new network and rebuilds
  // `rep`'s encoded plan over it (cache::decode_plan) — the planner never
  // runs, because lowering is value-blind across output bit values. The
  // query engine resolves each open-set signature once and re-targets it
  // for every later group. Returns an invalid handle when `rep` is invalid,
  // its open set differs, or the rebuild does not fit (caller falls back
  // to prepare()).
  PreparedPlan prepare_like(const PreparedPlan& rep, const std::vector<int>& bits,
                            const std::vector<int>& open_qubits) const;

  // Single closed amplitude <bits|C|0...0>. Prepares internally (through
  // the plan cache); a cached completed result returns without planning or
  // contraction.
  AmplitudeResult amplitude(const std::vector<int>& bits) const;
  // Same query against an already-prepared plan (must have been prepared
  // with empty open_qubits).
  AmplitudeResult amplitude(const PreparedPlan& plan) const;

  // Correlated batch: qubits in `open_qubits` are left open, the rest fixed
  // to `bits`; one contraction yields all 2^|open| amplitudes (§6.2's "1M
  // correlated samples" method).
  BatchResult batch_amplitudes(const std::vector<int>& bits,
                               const std::vector<int>& open_qubits) const;
  BatchResult batch_amplitudes(const PreparedPlan& plan) const;

  // Draws `n` samples of the open qubits from the batch distribution
  // |amplitude|^2 (renormalized over the batch). Delegates to
  // query::sample_from_amplitudes — platform-stable xoshiro256** RNG over
  // a fixed-order prefix-sum CDF, so the sample stream is byte-reproducible
  // across runs, hosts and process counts (regression-tested).
  static std::vector<uint64_t> sample_from_batch(const BatchResult& batch, int n, uint64_t seed);

  // Probes the result cache for a batch whose open-qubit set covers
  // `open_qubits` and whose base bits agree with `bits` outside it — the
  // caller slices its answer out without any contraction (the query
  // engine's superset probe; proper supersets count as
  // ltns_cache_superset_hits_total). False when the cache is disabled or
  // holds no covering batch.
  bool find_covering_batch(const std::vector<int>& bits, const std::vector<int>& open_qubits,
                           cache::BatchEntry* out) const;

  // Live counters of this Simulator's plan/result caches (zeros when the
  // caches are disabled). Exported as the ltns_cache_* metric series.
  cache::CacheStats cache_stats() const;

 private:
  bool amplitude_from_cache(const std::string& key, double plan_seconds,
                            AmplitudeResult* out) const;
  std::string plan_key_for(const std::vector<int>& bits,
                           const std::vector<int>& open_qubits) const;
  std::string result_key_for(const std::vector<int>& bits,
                             const std::vector<int>& open_qubits) const;

  circuit::Circuit circuit_;
  SimulatorOptions opt_;
  // Everything the result key hashes besides bits/open qubits — the scope
  // the covering-batch index partitions on (see ResultCache).
  std::string result_scope_;
  // Query methods are const; the caches are deliberately shared mutable
  // state (internally locked), created once at construction.
  std::shared_ptr<cache::PlanCache> plan_cache_;
  std::shared_ptr<cache::ResultCache> result_cache_;
};

}  // namespace ltns::api
