#include "path/local_tune.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

namespace ltns::path {

std::vector<std::pair<int, int>> optimal_order(const tn::TensorNetwork& net,
                                               const std::vector<IndexSet>& leaf_sets,
                                               double* log2cost_out) {
  const int k = int(leaf_sets.size());
  assert(k >= 1 && k <= 20);
  const uint32_t full = (k == 32 ? ~0u : (1u << k) - 1);

  // Index set and cost of every subset; split[m] remembers the best
  // partition of m into two contraction operands.
  std::vector<IndexSet> sets(size_t(full) + 1, IndexSet(net.num_edges()));
  std::vector<double> cost(size_t(full) + 1, 1e300);
  std::vector<uint32_t> split(size_t(full) + 1, 0);
  for (int i = 0; i < k; ++i) {
    sets[size_t(1u << i)] = leaf_sets[size_t(i)];
    cost[size_t(1u << i)] = kLog2Zero;
  }
  for (uint32_t m = 1; m <= full; ++m) {
    if (__builtin_popcount(m) < 2) continue;
    // XOR over members gives the output set (edges interior to m cancel).
    IndexSet sm(net.num_edges());
    for (int i = 0; i < k; ++i)
      if (m & (1u << i)) sm ^= leaf_sets[size_t(i)];
    sets[size_t(m)] = sm;
    // Enumerate bipartitions: the operand holding the lowest bit takes any
    // proper subset of the remaining bits (sub0 == rest would leave the
    // other operand empty; sub0 == 0 is the valid "lowest bit alone" split).
    uint32_t lowbit = m & (~m + 1);
    uint32_t rest = m ^ lowbit;
    for (uint32_t sub0 = (rest - 1) & rest;; sub0 = (sub0 - 1) & rest) {
      uint32_t a = sub0 | lowbit, b = m ^ a;
      double step = tn::log2w_of(net, sets[size_t(a)] | sets[size_t(b)]);
      double c = log2_add(step, log2_add(cost[size_t(a)], cost[size_t(b)]));
      if (c < cost[size_t(m)]) {
        cost[size_t(m)] = c;
        split[size_t(m)] = a;
      }
      if (sub0 == 0) break;
    }
  }
  if (log2cost_out) *log2cost_out = (k == 1 ? kLog2Zero : cost[size_t(full)]);

  // Emit steps bottom-up in local SSA ids.
  std::vector<std::pair<int, int>> steps;
  if (k == 1) return steps;
  std::vector<int> ssa_of_mask;  // parallel arrays: mask -> assigned ssa id
  std::vector<uint32_t> masks;
  int next_id = k;
  // Recursive lambda via explicit stack (postorder over the split tree).
  struct Frame {
    uint32_t mask;
    int phase;
    int a_id = -1, b_id = -1;
  };
  std::vector<Frame> st{{full, 0}};
  std::vector<int> result_id(size_t(full) + 1, -1);
  for (int i = 0; i < k; ++i) result_id[size_t(1u << i)] = i;
  while (!st.empty()) {
    Frame& f = st.back();
    if (__builtin_popcount(f.mask) == 1) {
      st.pop_back();
      continue;
    }
    uint32_t a = split[size_t(f.mask)], b = f.mask ^ a;
    if (f.phase == 0) {
      f.phase = 1;
      if (result_id[size_t(a)] < 0) st.push_back({a, 0});
    } else if (f.phase == 1) {
      f.phase = 2;
      if (result_id[size_t(b)] < 0) st.push_back({b, 0});
    } else {
      steps.emplace_back(result_id[size_t(a)], result_id[size_t(b)]);
      result_id[size_t(f.mask)] = next_id++;
      st.pop_back();
    }
  }
  return steps;
}

namespace {

// Emits an SSA path equivalent to `cur` except that the subtree rooted at
// `spliced` is contracted in the order given by `steps` over `leaves`
// (tree leaf node ids, matching the local SSA ids used by `steps`).
tn::SsaPath rebuild_with_subtree(const tn::ContractionTree& cur, int spliced,
                                 const std::vector<int>& leaves,
                                 const std::vector<std::pair<int, int>>& steps) {
  tn::SsaPath p;
  const int L = cur.num_leaves();
  std::vector<int> ssa(size_t(cur.num_nodes()), -1);
  int next_internal = L;

  // Iterative postorder with the splice special-case.
  std::vector<std::pair<int, int>> stack{{cur.root(), 0}};
  while (!stack.empty()) {
    auto& [id, phase] = stack.back();
    if (id == spliced) {
      std::vector<int> local(leaves.size() + steps.size(), -1);
      for (size_t j = 0; j < leaves.size(); ++j) {
        local[j] = int(p.leaf_vertices.size());
        p.leaf_vertices.push_back(cur.node(leaves[j]).leaf_vertex);
      }
      int next_local = int(leaves.size());
      for (auto [a, b] : steps) {
        p.steps.emplace_back(local[size_t(a)], local[size_t(b)]);
        local[size_t(next_local++)] = next_internal++;
      }
      ssa[size_t(id)] = next_internal - 1;
      stack.pop_back();
      continue;
    }
    const auto& nd = cur.node(id);
    if (nd.is_leaf()) {
      ssa[size_t(id)] = int(p.leaf_vertices.size());
      p.leaf_vertices.push_back(nd.leaf_vertex);
      stack.pop_back();
    } else if (phase == 0) {
      phase = 1;
      stack.push_back({nd.left, 0});
    } else if (phase == 1) {
      phase = 2;
      stack.push_back({nd.right, 0});
    } else {
      p.steps.emplace_back(ssa[size_t(nd.left)], ssa[size_t(nd.right)]);
      ssa[size_t(id)] = next_internal++;
      stack.pop_back();
    }
  }
  return p;
}

}  // namespace

LocalTuneResult local_tune(const tn::ContractionTree& tree, const LocalTuneOptions& opt) {
  const tn::TensorNetwork& net = *tree.network();
  LocalTuneResult out;
  out.log2cost_before = tree.total_log2cost();

  // Work on a mutable copy of the path; rebuild the tree between sweeps.
  tn::SsaPath path = to_ssa_path(tree);
  tn::ContractionTree cur = tn::ContractionTree::build(net, path);

  for (int sweep = 0; sweep < opt.sweeps; ++sweep) {
    bool changed = false;
    // Leaf counts per node.
    std::vector<int> leaf_count(size_t(cur.num_nodes()), 0);
    for (int i : cur.postorder()) {
      const auto& n = cur.node(i);
      leaf_count[size_t(i)] =
          n.is_leaf() ? 1 : leaf_count[size_t(n.left)] + leaf_count[size_t(n.right)];
    }
    // Maximal qualifying subtrees: parent exceeds the limit, node does not.
    for (int i = 0; i < cur.num_nodes(); ++i) {
      const auto& n = cur.node(i);
      if (n.is_leaf() || leaf_count[size_t(i)] > opt.max_leaves) continue;
      if (n.parent >= 0 && leaf_count[size_t(n.parent)] <= opt.max_leaves) continue;

      // Collect the subtree's leaves (tree node ids).
      std::vector<int> leaves;
      std::vector<int> stck{i};
      while (!stck.empty()) {
        int id = stck.back();
        stck.pop_back();
        const auto& nd = cur.node(id);
        if (nd.is_leaf()) {
          leaves.push_back(id);
        } else {
          stck.push_back(nd.left);
          stck.push_back(nd.right);
        }
      }
      // Current subtree cost.
      double cur_cost = kLog2Zero;
      stck.assign(1, i);
      while (!stck.empty()) {
        int id = stck.back();
        stck.pop_back();
        const auto& nd = cur.node(id);
        if (nd.is_leaf()) continue;
        cur_cost = log2_add(cur_cost, nd.log2cost);
        stck.push_back(nd.left);
        stck.push_back(nd.right);
      }
      std::vector<IndexSet> leaf_sets;
      for (int id : leaves) leaf_sets.push_back(cur.node(id).ixs);
      double best_cost;
      auto steps = optimal_order(net, leaf_sets, &best_cost);
      if (best_cost < cur_cost - 1e-9) {
        // Rebuild the whole path with the subtree replaced: emit postorder
        // of `cur`, but when visiting node i, splice the DP order instead.
        ++out.improved_subtrees;
        changed = true;
        tn::SsaPath np = rebuild_with_subtree(cur, i, leaves, steps);
        cur = tn::ContractionTree::build(net, np);
        path = std::move(np);
        break;  // leaf_count is stale; restart the sweep
      }
    }
    if (!changed) break;
  }
  out.log2cost_after = cur.total_log2cost();
  out.path = std::move(path);
  return out;
}

}  // namespace ltns::path
