#include "path/partition.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <numeric>

#include "path/greedy.hpp"
#include "util/rng.hpp"

namespace ltns::path {
namespace {

using tn::EdgeId;
using tn::TensorNetwork;
using tn::VertId;

// Bisects `verts` into side 0 / side 1 (returned as flags parallel to
// `verts`), minimizing the total log2 weight of cut edges.
std::vector<char> bisect(const TensorNetwork& net, const std::vector<VertId>& verts,
                         const PartitionOptions& opt, Rng& rng) {
  const int n = int(verts.size());
  std::vector<int> local(size_t(net.num_vertices()), -1);
  for (int i = 0; i < n; ++i) local[size_t(verts[size_t(i)])] = i;

  // Pseudo-peripheral seed (double BFS): on planar-ish circuit graphs this
  // makes the BFS half-claim behave like a geometric sweep, which is what
  // gives recursive bisection its small cuts.
  auto bfs_farthest = [&](int start) {
    std::vector<char> vis(size_t(n), 0);
    std::deque<int> bq{start};
    vis[size_t(start)] = 1;
    int last = start;
    while (!bq.empty()) {
      int i = bq.front();
      bq.pop_front();
      last = i;
      for (VertId u : net.neighbors(verts[size_t(i)])) {
        int j = u == tn::kNone ? -1 : local[size_t(u)];
        if (j >= 0 && !vis[size_t(j)]) {
          vis[size_t(j)] = 1;
          bq.push_back(j);
        }
      }
    }
    return last;
  };
  int seed0 = int(rng.next_below(uint64_t(n)));
  int seed = bfs_farthest(bfs_farthest(seed0));

  // BFS from the peripheral seed claims half the vertices for side 0.
  std::vector<char> side(size_t(n), 1);
  std::deque<int> q{seed};
  std::vector<char> seen(size_t(n), 0);
  seen[size_t(q.front())] = 1;
  int claimed = 0, want = n / 2;
  while (!q.empty() && claimed < want) {
    int i = q.front();
    q.pop_front();
    side[size_t(i)] = 0;
    ++claimed;
    for (VertId u : net.neighbors(verts[size_t(i)])) {
      int j = u == tn::kNone ? -1 : local[size_t(u)];
      if (j >= 0 && !seen[size_t(j)]) {
        seen[size_t(j)] = 1;
        q.push_back(j);
      }
    }
  }

  // FM-style sweeps: greedily move the best-gain vertex subject to balance.
  const int lo = std::max(1, int(n / 2.0 * (1.0 - opt.imbalance)));
  const int hi = std::min(n - 1, int(n / 2.0 * (1.0 + opt.imbalance)) + 1);
  auto gain = [&](int i) {
    // Reduction in cut weight if vertex i switches sides.
    double g = 0;
    for (EdgeId e : net.vertex(verts[size_t(i)]).edges) {
      if (!net.edge(e).alive) continue;
      VertId u = net.neighbor_via(verts[size_t(i)], e);
      int j = u == tn::kNone ? -1 : local[size_t(u)];
      if (j < 0) continue;  // neighbor outside this subproblem (or open edge)
      g += (side[size_t(j)] != side[size_t(i)] ? 1.0 : -1.0) * net.edge(e).log2w;
    }
    return g;
  };
  int count0 = 0;
  for (char s : side) count0 += (s == 0);
  for (int pass = 0; pass < opt.fm_passes; ++pass) {
    bool moved = false;
    for (int i = 0; i < n; ++i) {
      int new_count0 = count0 + (side[size_t(i)] ? 1 : -1);
      if (new_count0 < lo || new_count0 > hi) continue;
      if (gain(i) > 0) {
        side[size_t(i)] ^= 1;
        count0 = new_count0;
        moved = true;
      }
    }
    if (!moved) break;
  }
  // Guarantee both sides non-empty.
  if (count0 == 0) side[0] = 0;
  if (count0 == n) side[0] = 1;
  return side;
}

// Total log2 weight of edges crossing the bisection.
double cut_weight(const TensorNetwork& net, const std::vector<VertId>& verts,
                  const std::vector<char>& side) {
  std::vector<int> local(size_t(net.num_vertices()), -1);
  for (size_t i = 0; i < verts.size(); ++i) local[size_t(verts[i])] = int(i);
  double w = 0;
  for (size_t i = 0; i < verts.size(); ++i) {
    for (EdgeId e : net.vertex(verts[i]).edges) {
      const auto& ed = net.edge(e);
      if (!ed.alive) continue;
      VertId u = ed.a == verts[i] ? ed.b : ed.a;
      int j = u == tn::kNone ? -1 : local[size_t(u)];
      if (j >= 0 && size_t(j) > i && side[size_t(j)] != side[i]) w += ed.log2w;
    }
  }
  return w;
}

struct Builder {
  const TensorNetwork& net;
  const PartitionOptions& opt;
  Rng rng;
  tn::SsaPath path;
  std::vector<int> leaf_ssa;  // vertex id -> ssa leaf id
  int next_id;

  // Contracts `verts` into one tensor; returns its ssa id.
  int build(std::vector<VertId> verts) {
    if (verts.size() == 1) return leaf_ssa[size_t(verts[0])];
    if (int(verts.size()) <= opt.greedy_below) return greedy_tail(verts);
    // Best cut over independent restarts (KaHyPar-style V-cycling lite).
    auto side = bisect(net, verts, opt, rng);
    double best_cut = cut_weight(net, verts, side);
    for (int r = 1; r < opt.restarts; ++r) {
      auto cand = bisect(net, verts, opt, rng);
      double c = cut_weight(net, verts, cand);
      if (c < best_cut) {
        best_cut = c;
        side = std::move(cand);
      }
    }
    std::vector<VertId> v0, v1;
    for (size_t i = 0; i < verts.size(); ++i) (side[i] ? v1 : v0).push_back(verts[i]);
    if (v0.empty() || v1.empty()) return greedy_tail(verts);
    int a = build(std::move(v0));
    int b = build(std::move(v1));
    path.steps.emplace_back(a, b);
    return next_id++;
  }

  // Greedy contraction of a small group, emitted into the global path.
  int greedy_tail(const std::vector<VertId>& verts) {
    // Pairwise min-output greedy over the group.
    std::vector<int> ids;
    std::vector<IndexSet> sets;
    for (VertId v : verts) {
      ids.push_back(leaf_ssa[size_t(v)]);
      sets.push_back(net.vertex_index_set(v));
    }
    while (ids.size() > 1) {
      size_t bi = 0, bj = 1;
      double best = 1e300;
      bool found_adj = false;
      for (size_t i = 0; i < ids.size(); ++i)
        for (size_t j = i + 1; j < ids.size(); ++j) {
          bool adj = sets[i].intersects(sets[j]);
          double so = tn::log2w_of(net, sets[i] ^ sets[j]);
          // Strongly prefer adjacent pairs; among them, smallest output.
          double score = so + (adj ? 0.0 : 1e6);
          if ((adj && !found_adj) || score < best) {
            best = score;
            bi = i;
            bj = j;
            found_adj = found_adj || adj;
          }
        }
      path.steps.emplace_back(ids[bi], ids[bj]);
      sets[bi] = sets[bi] ^ sets[bj];
      ids[bi] = next_id++;
      sets.erase(sets.begin() + long(bj));
      ids.erase(ids.begin() + long(bj));
    }
    return ids[0];
  }
};

}  // namespace

tn::SsaPath partition_path(const tn::TensorNetwork& net, const PartitionOptions& opt) {
  auto verts = net.alive_vertices();
  Builder b{net, opt, Rng(opt.seed), {}, std::vector<int>(size_t(net.num_vertices()), -1),
            int(verts.size())};
  b.path.leaf_vertices = verts;
  for (int i = 0; i < int(verts.size()); ++i) b.leaf_ssa[size_t(verts[size_t(i)])] = i;
  b.build(verts);
  assert(b.path.steps.size() + 1 == verts.size());
  return std::move(b.path);
}

}  // namespace ltns::path
