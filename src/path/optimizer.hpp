// Multi-trial path optimization driver (the cotengra "anytime" loop).
//
// Runs a budget of randomized greedy / partition / community trials, keeps
// the best tree by Eq. 1 cost, then applies subtree local tuning. This is
// the front half of the planning pipeline; the back half (slicing) lives in
// core/.
#pragma once

#include <cstdint>
#include <string>

#include "tn/contraction_tree.hpp"

namespace ltns::path {

struct OptimizerOptions {
  int greedy_trials = 24;
  int partition_trials = 8;
  int community_trials = 0;   // O(V^3); enable only for small networks
  double temperature = 0.6;   // greedy-noise scale after the first trial
  bool tune = true;
  int tune_max_leaves = 8;
  int tune_sweeps = 2;
  uint64_t seed = 7;
};

struct PathResult {
  tn::SsaPath path;
  double log2cost = 0;     // Eq. 1 total, log2 flops
  double log2size = 0;     // biggest intermediate, log2 elements
  std::string method;      // which trial family won
  int trials_run = 0;
};

PathResult find_path(const tn::TensorNetwork& net, const OptimizerOptions& opt = {});

// Monotone process-wide count of find_path calls. The plan cache's "a warm
// run performs zero path-optimization work" guarantee is asserted against
// this counter (exported as ltns_planner_invocations_total): tests and the
// CI cache job read it before and after a cached run.
uint64_t find_path_invocations();

}  // namespace ltns::path
