// Subtree local tuning — the "dynamic design" ingredient (§2.1.2, Alibaba
// ref [16]) that cotengra adopted and that this paper's planner combines
// with the lifetime slicers.
//
// Picks internal nodes whose subtree has at most `max_leaves` leaves and
// replaces the subtree with the *optimal* contraction order of those leaf
// tensors, found by Steiner-style subset DP (exact, O(3^k)). Costs never
// increase; repeated sweeps converge to a locally optimal tree.
#pragma once

#include <cstdint>

#include "tn/contraction_tree.hpp"

namespace ltns::path {

struct LocalTuneOptions {
  int max_leaves = 8;
  int sweeps = 2;  // passes over all qualifying subtrees
};

struct LocalTuneResult {
  tn::SsaPath path;
  int improved_subtrees = 0;
  double log2cost_before = 0;
  double log2cost_after = 0;
};

LocalTuneResult local_tune(const tn::ContractionTree& tree, const LocalTuneOptions& opt = {});

// Exact optimal contraction order of ≤ ~12 tensors by subset DP; returns
// steps in local SSA ids (leaves 0..k-1). Exposed for tests.
std::vector<std::pair<int, int>> optimal_order(const tn::TensorNetwork& net,
                                               const std::vector<IndexSet>& leaf_sets,
                                               double* log2cost_out = nullptr);

}  // namespace ltns::path
