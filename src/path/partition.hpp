// Recursive-bisection path finder — the KaHyPar-style "graph partition"
// driver cotengra uses (§2.1.2, ref [14]).
//
// The contraction tree is built top-down: split the vertex set into two
// balanced halves with a small cut (BFS seeding + Fiduccia–Mattheyses-style
// refinement sweeps), recurse into each half, and contract the two halves
// last. Small subproblems fall back to the greedy finder.
#pragma once

#include <cstdint>

#include "tn/contraction_tree.hpp"

namespace ltns::path {

struct PartitionOptions {
  double imbalance = 0.12;  // allowed deviation from a perfect split
  int fm_passes = 6;        // refinement sweeps per bisection
  int restarts = 4;         // independent bisection seeds, best cut wins
  int greedy_below = 12;    // subproblem size handed to greedy
  uint64_t seed = 1;
};

tn::SsaPath partition_path(const tn::TensorNetwork& net, const PartitionOptions& opt = {});

}  // namespace ltns::path
