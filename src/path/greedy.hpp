// Randomized greedy contraction-path finder (the cotengra 'random-greedy'
// substitute, §2.1.2).
//
// Repeatedly contracts the adjacent pair with the best score
//     score(a, b) = log2size(a XOR b) − log2(2^{size a} + 2^{size b})
// (grow as little as possible relative to what is consumed), perturbed by
// Gumbel noise scaled by `temperature` so repeated trials explore the
// neighborhood of the greedy path. temperature == 0 is deterministic.
#pragma once

#include <cstdint>

#include "tn/contraction_tree.hpp"

namespace ltns::path {

struct GreedyOptions {
  double temperature = 0.0;
  uint64_t seed = 1;
};

tn::SsaPath greedy_path(const tn::TensorNetwork& net, const GreedyOptions& opt = {});

}  // namespace ltns::path
