// Community-based path finder (§2.1.2, ref [13]).
//
// Girvan–Newman betweenness is far too slow for per-trial use, so the
// community stage is weighted label propagation (the standard fast
// substitute): vertices repeatedly adopt the label carrying the largest
// incident edge weight. Tensors inside one community are contracted first
// (greedy), then the community tensors are contracted across (greedy).
#pragma once

#include <cstdint>
#include <vector>

#include "tn/contraction_tree.hpp"

namespace ltns::path {

struct CommunityOptions {
  int max_sweeps = 32;
  uint64_t seed = 1;
};

// Exposed separately for tests: the label of every vertex (kNone for dead).
std::vector<int> label_propagation_communities(const tn::TensorNetwork& net,
                                               const CommunityOptions& opt = {});

tn::SsaPath community_path(const tn::TensorNetwork& net, const CommunityOptions& opt = {});

}  // namespace ltns::path
