#include "path/community.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <numeric>

#include "util/rng.hpp"

namespace ltns::path {

using tn::EdgeId;
using tn::VertId;

std::vector<int> label_propagation_communities(const tn::TensorNetwork& net,
                                               const CommunityOptions& opt) {
  Rng rng(opt.seed);
  std::vector<int> label(size_t(net.num_vertices()), tn::kNone);
  auto verts = net.alive_vertices();
  for (VertId v : verts) label[size_t(v)] = v;

  std::vector<VertId> order = verts;
  for (int sweep = 0; sweep < opt.max_sweeps; ++sweep) {
    // Shuffle to avoid label-propagation cycling.
    for (size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.next_below(i)]);
    bool changed = false;
    for (VertId v : order) {
      std::map<int, double> weight;
      for (EdgeId e : net.vertex(v).edges) {
        if (!net.edge(e).alive) continue;
        VertId u = net.neighbor_via(v, e);
        if (u == tn::kNone) continue;
        weight[label[size_t(u)]] += net.edge(e).log2w;
      }
      if (weight.empty()) continue;
      auto best = std::max_element(weight.begin(), weight.end(),
                                   [](auto& a, auto& b) { return a.second < b.second; });
      if (best->first != label[size_t(v)]) {
        label[size_t(v)] = best->first;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return label;
}

tn::SsaPath community_path(const tn::TensorNetwork& net, const CommunityOptions& opt) {
  auto label = label_propagation_communities(net, opt);
  tn::SsaPath path;
  path.leaf_vertices = net.alive_vertices();
  const int L = int(path.leaf_vertices.size());
  if (L <= 1) return path;

  std::vector<IndexSet> sets;
  std::vector<int> ids, grp;
  sets.reserve(size_t(L));
  for (int i = 0; i < L; ++i) {
    VertId v = path.leaf_vertices[size_t(i)];
    sets.push_back(net.vertex_index_set(v));
    ids.push_back(i);
    grp.push_back(label[size_t(v)]);
  }
  int next_id = L;

  // Two phases: intra-community pairs first, then everything.
  for (int phase = 0; phase < 2; ++phase) {
    for (;;) {
      size_t bi = 0, bj = 0;
      double best = 1e300;
      for (size_t i = 0; i < ids.size(); ++i)
        for (size_t j = i + 1; j < ids.size(); ++j) {
          if (phase == 0 && grp[i] != grp[j]) continue;
          if (!sets[i].intersects(sets[j])) continue;
          double so = tn::log2w_of(net, sets[i] ^ sets[j]) -
                      log2_add(tn::log2w_of(net, sets[i]), tn::log2w_of(net, sets[j]));
          if (so < best) {
            best = so;
            bi = i;
            bj = j;
          }
        }
      if (bi == bj) break;
      path.steps.emplace_back(ids[bi], ids[bj]);
      sets[bi] ^= sets[bj];
      grp[bi] = std::min(grp[bi], grp[bj]);
      ids[bi] = next_id++;
      sets.erase(sets.begin() + long(bj));
      ids.erase(ids.begin() + long(bj));
      grp.erase(grp.begin() + long(bj));
    }
  }
  // Disconnected leftovers: outer products.
  while (ids.size() > 1) {
    path.steps.emplace_back(ids[0], ids[1]);
    sets[0] ^= sets[1];
    ids[0] = next_id++;
    sets.erase(sets.begin() + 1);
    ids.erase(ids.begin() + 1);
    grp.erase(grp.begin() + 1);
  }
  assert(int(path.steps.size()) == L - 1);
  return path;
}

}  // namespace ltns::path
