#include "path/greedy.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <queue>

#include "util/rng.hpp"

namespace ltns::path {
namespace {

struct Candidate {
  double score;
  int a, b;            // ssa ids
  uint32_t va, vb;     // version stamps for lazy invalidation
  bool operator>(const Candidate& o) const { return score > o.score; }
};

}  // namespace

tn::SsaPath greedy_path(const tn::TensorNetwork& net, const GreedyOptions& opt) {
  Rng rng(opt.seed);
  tn::SsaPath path;
  path.leaf_vertices = net.alive_vertices();
  const int L = int(path.leaf_vertices.size());
  assert(L >= 1);
  if (L == 1) return path;

  // Active tensors in SSA id space.
  std::vector<IndexSet> ixs;
  std::vector<double> size_log2;
  std::vector<uint32_t> version;
  std::vector<char> alive;
  ixs.reserve(size_t(2 * L));
  for (tn::VertId v : path.leaf_vertices) {
    ixs.push_back(net.vertex_index_set(v));
    size_log2.push_back(net.vertex_log2size(v));
    version.push_back(0);
    alive.push_back(1);
  }

  // Edge -> the (up to two) active ssa ids holding it.
  std::vector<std::array<int, 2>> owner(size_t(net.num_edges()), {tn::kNone, tn::kNone});
  for (int s = 0; s < L; ++s) {
    ixs[size_t(s)].for_each([&](int e) {
      auto& o = owner[size_t(e)];
      (o[0] == tn::kNone ? o[0] : o[1]) = s;
    });
  }

  std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>> pq;
  auto gumbel = [&]() {
    double u = rng.next_double();
    if (u < 1e-300) u = 1e-300;
    return -std::log(-std::log(u));
  };
  auto push_pair = [&](int a, int b) {
    if (a == b || a == tn::kNone || b == tn::kNone) return;
    if (!alive[size_t(a)] || !alive[size_t(b)]) return;
    double so = tn::log2w_of(net, ixs[size_t(a)] ^ ixs[size_t(b)]);
    double score = so - log2_add(size_log2[size_t(a)], size_log2[size_t(b)]);
    if (opt.temperature > 0) score -= opt.temperature * gumbel();
    pq.push(Candidate{score, a, b, version[size_t(a)], version[size_t(b)]});
  };

  for (int e = 0; e < net.num_edges(); ++e) {
    if (!net.edge(e).alive) continue;
    push_pair(owner[size_t(e)][0], owner[size_t(e)][1]);
  }

  int remaining = L;
  while (remaining > 1) {
    int a = -1, b = -1;
    while (!pq.empty()) {
      Candidate c = pq.top();
      pq.pop();
      if (alive[size_t(c.a)] && alive[size_t(c.b)] && version[size_t(c.a)] == c.va &&
          version[size_t(c.b)] == c.vb) {
        a = c.a;
        b = c.b;
        break;
      }
    }
    if (a < 0) {
      // Disconnected remainder: contract the two lowest-id survivors
      // (outer product), matching what any path finder must do.
      for (int i = 0; i < int(alive.size()) && b < 0; ++i) {
        if (!alive[size_t(i)]) continue;
        if (a < 0) {
          a = i;
        } else {
          b = i;
        }
      }
    }
    int id = int(ixs.size());
    path.steps.emplace_back(a, b);
    ixs.push_back(ixs[size_t(a)] ^ ixs[size_t(b)]);
    size_log2.push_back(tn::log2w_of(net, ixs.back()));
    version.push_back(0);
    alive.push_back(1);
    alive[size_t(a)] = alive[size_t(b)] = 0;
    --remaining;

    // Re-point edge owners and collect the merged node's neighbors.
    std::vector<int> nbrs;
    ixs[size_t(id)].for_each([&](int e) {
      auto& o = owner[size_t(e)];
      for (int& x : o)
        if (x == a || x == b) x = id;
      for (int x : o)
        if (x != id && x != tn::kNone && alive[size_t(x)]) nbrs.push_back(x);
    });
    // Also clear owners of edges contracted away (inside a ∩ b).
    (ixs[size_t(a)] & ixs[size_t(b)]).for_each([&](int e) {
      owner[size_t(e)] = {tn::kNone, tn::kNone};
    });
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    for (int nb : nbrs) push_pair(id, nb);
  }
  assert(int(path.steps.size()) == L - 1);
  return path;
}

}  // namespace ltns::path
