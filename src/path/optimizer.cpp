#include "path/optimizer.hpp"

#include "path/community.hpp"
#include "path/greedy.hpp"
#include "path/local_tune.hpp"
#include "path/partition.hpp"

#include <atomic>

namespace ltns::path {

namespace {
std::atomic<uint64_t> g_find_path_calls{0};
}

uint64_t find_path_invocations() { return g_find_path_calls.load(std::memory_order_relaxed); }

PathResult find_path(const tn::TensorNetwork& net, const OptimizerOptions& opt) {
  g_find_path_calls.fetch_add(1, std::memory_order_relaxed);
  PathResult best;
  bool have = false;
  auto consider = [&](tn::SsaPath p, const char* method) {
    auto tree = tn::ContractionTree::build(net, p);
    // Rank paths by cost; tie-break toward the smaller biggest tensor.
    bool better = !have || tree.total_log2cost() < best.log2cost - 1e-12 ||
                  (std::abs(tree.total_log2cost() - best.log2cost) <= 1e-12 &&
                   tree.max_log2size() < best.log2size);
    if (better) {
      best.path = std::move(p);
      best.log2cost = tree.total_log2cost();
      best.log2size = tree.max_log2size();
      best.method = method;
      have = true;
    }
    ++best.trials_run;
  };

  for (int i = 0; i < opt.greedy_trials; ++i) {
    GreedyOptions g;
    g.temperature = (i == 0 ? 0.0 : opt.temperature);
    g.seed = opt.seed + uint64_t(i) * 0x9e37;
    consider(greedy_path(net, g), "greedy");
  }
  for (int i = 0; i < opt.partition_trials; ++i) {
    PartitionOptions p;
    p.seed = opt.seed + 0x1234 + uint64_t(i) * 0x51ed;
    consider(partition_path(net, p), "partition");
  }
  for (int i = 0; i < opt.community_trials; ++i) {
    CommunityOptions c;
    c.seed = opt.seed + 0x777 + uint64_t(i) * 0xabcd;
    consider(community_path(net, c), "community");
  }

  if (opt.tune && have) {
    auto tree = tn::ContractionTree::build(net, best.path);
    LocalTuneOptions lt{opt.tune_max_leaves, opt.tune_sweeps};
    auto tuned = local_tune(tree, lt);
    if (tuned.log2cost_after < best.log2cost) {
      best.path = std::move(tuned.path);
      best.log2cost = tuned.log2cost_after;
      best.log2size = tn::ContractionTree::build(net, best.path).max_log2size();
      best.method += "+tune";
    }
  }
  return best;
}

}  // namespace ltns::path
