#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>

namespace ltns {

ThreadPool::ThreadPool(int workers) {
  if (workers <= 0) workers = int(std::max(1u, std::thread::hardware_concurrency()));
  // The caller thread acts as worker 0; spawn the rest.
  threads_.reserve(size_t(workers - 1));
  for (int i = 1; i < workers; ++i) threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop(int id) {
  uint64_t seen = 0;
  for (;;) {
    std::function<void(int)> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      task = task_;
    }
    task(id);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(size_t n, const std::function<void(int, size_t, size_t)>& body) {
  if (n == 0) return;
  const int nw = size();
  if (nw == 1 || n == 1) {
    body(0, 0, n);
    return;
  }
  // Static partition into nw contiguous chunks; chunk w may be empty.
  auto chunk = [n, nw](int w, size_t& b, size_t& e) {
    size_t per = n / size_t(nw), rem = n % size_t(nw);
    b = size_t(w) * per + std::min(size_t(w), rem);
    e = b + per + (size_t(w) < rem ? 1 : 0);
  };
  {
    std::lock_guard<std::mutex> lk(mu_);
    task_ = [&body, chunk](int w) {
      size_t b, e;
      chunk(w, b, e);
      if (b < e) body(w, b, e);
    };
    pending_ = int(threads_.size());
    ++epoch_;
  }
  cv_work_.notify_all();
  // Caller participates as worker 0.
  {
    size_t b, e;
    chunk(0, b, e);
    if (b < e) body(0, b, e);
  }
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] { return pending_ == 0; });
  task_ = nullptr;
}

void ThreadPool::parallel_for_each(size_t n, const std::function<void(size_t)>& body) {
  parallel_for(n, [&body](int, size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) body(i);
  });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(size_t n, const std::function<void(int, size_t, size_t)>& body) {
  ThreadPool::global().parallel_for(n, body);
}

void parallel_for_each(size_t n, const std::function<void(size_t)>& body) {
  ThreadPool::global().parallel_for_each(n, body);
}

}  // namespace ltns
