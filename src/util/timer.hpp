// Wall-clock timing helpers used by benchmarks and instrumented executors.
#pragma once

#include <chrono>
#include <cstdint>

namespace ltns {

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Accumulates time across scopes; used for the Fig. 12 time breakdown
// (memory access / permutation / GEMM).
class Stopwatch {
 public:
  void start() { t_.reset(); running_ = true; }
  void stop() {
    if (running_) total_ += t_.seconds();
    running_ = false;
  }
  double total_seconds() const { return total_; }
  void clear() { total_ = 0; running_ = false; }

 private:
  Timer t_;
  double total_ = 0;
  bool running_ = false;
};

}  // namespace ltns
