// Wall-clock timing helpers used by benchmarks and instrumented executors.
#pragma once

#include <chrono>
#include <cstdint>

namespace ltns {

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// RAII accumulation into a plain double: adds the scope's elapsed seconds
// to *sink on destruction (or close()). The exception-safe replacement for
// the `Timer t; ...; acc += t.seconds()` pattern in the exec executors —
// an executor throwing mid-phase still books the partial phase time.
class ScopedSeconds {
 public:
  explicit ScopedSeconds(double* sink) : sink_(sink) {}
  ScopedSeconds(const ScopedSeconds&) = delete;
  ScopedSeconds& operator=(const ScopedSeconds&) = delete;
  ~ScopedSeconds() { close(); }
  // Ends the scope early (idempotent); lets one guard time phase N and a
  // fresh guard time phase N+1 without nesting blocks.
  void close() {
    if (sink_ != nullptr) *sink_ += t_.seconds();
    sink_ = nullptr;
  }

 private:
  double* sink_;
  Timer t_;
};

// Accumulates time across scopes; used for the Fig. 12 time breakdown
// (memory access / permutation / GEMM).
class Stopwatch {
 public:
  void start() { t_.reset(); running_ = true; }
  void stop() {
    if (running_) total_ += t_.seconds();
    running_ = false;
  }
  double total_seconds() const { return total_; }
  void clear() { total_ = 0; running_ = false; }

 private:
  Timer t_;
  double total_ = 0;
  bool running_ = false;
};

}  // namespace ltns
