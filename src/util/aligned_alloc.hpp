// Over-aligned STL allocator for kernel-facing buffers.
//
// Tensor payloads (and device scratch) are allocated on cache-line/SIMD
// boundaries so blocked kernels and device uploads never hit the unaligned
// path: a 64-byte boundary covers AVX-512 loads, the common cache line, and
// the DMA granularity the Sunway model assumes. C++17 aligned operator new
// does the heavy lifting; the allocator only pins the alignment into the
// type so every std::vector using it inherits the guarantee.
#pragma once

#include <cstddef>
#include <new>

namespace ltns::util {

template <typename T, std::size_t Align>
struct AlignedAllocator {
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of two");
  static_assert(Align >= alignof(T), "alignment may not weaken the type's own");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Align));
  }
};

template <typename T, typename U, std::size_t A>
bool operator==(const AlignedAllocator<T, A>&, const AlignedAllocator<U, A>&) noexcept {
  return true;
}
template <typename T, typename U, std::size_t A>
bool operator!=(const AlignedAllocator<T, A>&, const AlignedAllocator<U, A>&) noexcept {
  return false;
}

}  // namespace ltns::util
