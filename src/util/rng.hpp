// Deterministic, fast PRNG (xoshiro256**) used across generators and the
// simulated-annealing refiner. std::mt19937 distributions differ across
// standard libraries; this keeps benchmark corpora reproducible everywhere.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace ltns {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    uint64_t z = seed;
    for (auto& si : s_) {
      z += 0x9e3779b97f4a7c15ull;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      si = x ^ (x >> 31);
    }
  }

  uint64_t next_u64() {
    auto rotl = [](uint64_t x, int k) { return (x << k) | (x >> (64 - k)); };
    uint64_t result = rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, n).
  uint64_t next_below(uint64_t n) {
    // Lemire's multiply-shift rejection-free-enough reduction; bias is
    // negligible for the n (< 2^20) used here.
    return (__uint128_t(next_u64()) * n) >> 64;
  }

  int next_int(int lo, int hi_inclusive) {
    return lo + int(next_below(uint64_t(hi_inclusive - lo + 1)));
  }

  // Uniform in [0, 1).
  double next_double() { return double(next_u64() >> 11) * 0x1.0p-53; }

  // Standard normal via Box-Muller (one value per call; fine for our use).
  double next_normal() {
    double u1 = next_double(), u2 = next_double();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

 private:
  uint64_t s_[4];
};

}  // namespace ltns
