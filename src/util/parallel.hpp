// A persistent thread pool with a static-partition parallel_for.
//
// This pool doubles as the "CPE grid" of the Sunway model (src/sunway/):
// each worker has a stable worker id so it can own a capacity-enforced LDM
// scratch buffer. All parallelism in the library is explicit and goes
// through this pool — no OpenMP dependency.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ltns {

class ThreadPool {
 public:
  // `workers` = 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(int workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return int(threads_.size()) + 1; }  // +1: caller participates

  // Runs body(worker_id, begin, end) on contiguous chunks of [0, n).
  // worker_id is in [0, size()). Blocks until every chunk completes.
  void parallel_for(size_t n, const std::function<void(int, size_t, size_t)>& body);

  // Convenience: body(index) over [0, n).
  void parallel_for_each(size_t n, const std::function<void(size_t)>& body);

  // Process-wide default pool (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop(int id);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  // Epoch-based dispatch: the caller publishes one task per epoch; workers
  // run it once and report completion.
  std::function<void(int)> task_;
  uint64_t epoch_ = 0;
  int pending_ = 0;
  bool stop_ = false;
};

// Shorthand over the global pool.
void parallel_for(size_t n, const std::function<void(int, size_t, size_t)>& body);
void parallel_for_each(size_t n, const std::function<void(size_t)>& body);

}  // namespace ltns
