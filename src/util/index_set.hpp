// IndexSet: a small dynamic bitset over edge ids.
//
// Tensor networks in this project have at most a few thousand edges, and the
// hot loops of the slicing optimizers (Algorithm 1 / Algorithm 2 of the
// paper) evaluate unions, intersections and popcounts of per-tensor index
// sets millions of times. A word-parallel bitset keeps those loops cheap and
// allocation-free once sized.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <vector>

namespace ltns {

class IndexSet {
 public:
  IndexSet() = default;

  // Constructs an empty set able to hold ids in [0, universe).
  explicit IndexSet(int universe) : nbits_(universe), words_((universe + 63) / 64, 0) {}

  static IndexSet of(int universe, std::initializer_list<int> ids) {
    IndexSet s(universe);
    for (int id : ids) s.insert(id);
    return s;
  }

  int universe() const { return nbits_; }
  bool empty() const {
    for (uint64_t w : words_)
      if (w != 0) return false;
    return true;
  }

  bool contains(int id) const {
    assert(id >= 0 && id < nbits_);
    return (words_[id >> 6] >> (id & 63)) & 1u;
  }

  void insert(int id) {
    assert(id >= 0 && id < nbits_);
    words_[id >> 6] |= uint64_t(1) << (id & 63);
  }

  void erase(int id) {
    assert(id >= 0 && id < nbits_);
    words_[id >> 6] &= ~(uint64_t(1) << (id & 63));
  }

  void clear() {
    for (auto& w : words_) w = 0;
  }

  int count() const {
    int c = 0;
    for (uint64_t w : words_) c += __builtin_popcountll(w);
    return c;
  }

  IndexSet& operator|=(const IndexSet& o) {
    assert(nbits_ == o.nbits_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }
  IndexSet& operator&=(const IndexSet& o) {
    assert(nbits_ == o.nbits_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }
  IndexSet& operator^=(const IndexSet& o) {
    assert(nbits_ == o.nbits_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
    return *this;
  }
  // Set difference: removes every element of `o` from this set.
  IndexSet& operator-=(const IndexSet& o) {
    assert(nbits_ == o.nbits_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
    return *this;
  }

  friend IndexSet operator|(IndexSet a, const IndexSet& b) { return a |= b; }
  friend IndexSet operator&(IndexSet a, const IndexSet& b) { return a &= b; }
  friend IndexSet operator^(IndexSet a, const IndexSet& b) { return a ^= b; }
  friend IndexSet operator-(IndexSet a, const IndexSet& b) { return a -= b; }

  bool operator==(const IndexSet& o) const { return nbits_ == o.nbits_ && words_ == o.words_; }
  bool operator!=(const IndexSet& o) const { return !(*this == o); }

  // True iff this set is a subset of `o`.
  bool subset_of(const IndexSet& o) const {
    assert(nbits_ == o.nbits_);
    for (size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & ~o.words_[i]) return false;
    return true;
  }

  bool intersects(const IndexSet& o) const {
    assert(nbits_ == o.nbits_);
    for (size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & o.words_[i]) return true;
    return false;
  }

  int intersection_count(const IndexSet& o) const {
    assert(nbits_ == o.nbits_);
    int c = 0;
    for (size_t i = 0; i < words_.size(); ++i)
      c += __builtin_popcountll(words_[i] & o.words_[i]);
    return c;
  }

  // Calls f(id) for every member of (this ∩ o), allocation-free.
  template <typename F>
  void for_each_intersection(const IndexSet& o, F&& f) const {
    assert(nbits_ == o.nbits_);
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi] & o.words_[wi];
      while (w) {
        int bit = __builtin_ctzll(w);
        f(int(wi * 64 + bit));
        w &= w - 1;
      }
    }
  }

  // Calls f(id) for every member, in increasing order.
  template <typename F>
  void for_each(F&& f) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w) {
        int bit = __builtin_ctzll(w);
        f(int(wi * 64 + bit));
        w &= w - 1;
      }
    }
  }

  std::vector<int> to_vector() const {
    std::vector<int> out;
    out.reserve(size_t(count()));
    for_each([&](int id) { out.push_back(id); });
    return out;
  }

 private:
  int nbits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace ltns
