// Bounded-ULP float comparison for the mixed-precision tolerance contract.
//
// fp32 SIMD tiers are compared BITWISE (memcmp); there is no tolerance to
// define. Mixed precision (bf16 operands) is deterministic but lands on
// different bits than the fp32 reference, so its contract is a distance
// bound measured in float32 ULPs: the number of representable floats
// between the two values. The pinned regression corpus in
// tests/test_kernels_parity.cpp and the e2e --compare-mode=ulp:<N> jobs
// (scripts/compare_amps.py mirrors this definition in python) are both
// stated in these units.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>

namespace ltns::util {

// Monotone integer ladder over the floats: negative values map below zero,
// positive above, so ulp distance is plain integer subtraction across the
// whole axis (including across 0 and between denormals).
inline int64_t float_ladder(float x) {
  int32_t bits;
  static_assert(sizeof(bits) == sizeof(x));
  std::memcpy(&bits, &x, sizeof(bits));
  return bits >= 0 ? int64_t(bits) : -int64_t(bits & 0x7fffffff);
}

// ULP distance between two finite floats; NaN/Inf on either side compares
// infinitely far (except bitwise-equal values, which are distance 0 — so
// identical Infs pass).
inline int64_t ulp_distance(float a, float b) {
  uint32_t ab, bb;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  if (ab == bb) return 0;
  if (!std::isfinite(a) || !std::isfinite(b)) return INT64_MAX;
  const int64_t d = float_ladder(a) - float_ladder(b);
  return d < 0 ? -d : d;
}

// Float spacing at magnitude |x| (the size of one ULP there): the gap to
// the next representable float above |x|. Bit arithmetic, no libm.
inline float ulp_of(float x) {
  float ax = std::fabs(x);
  if (!std::isfinite(ax)) return ax;
  uint32_t bits;
  std::memcpy(&bits, &ax, sizeof(bits));
  bits += 1;
  float next;
  std::memcpy(&next, &bits, sizeof(next));
  return next - ax;
}

// Scale-relative ULP distance: |a - b| measured in units of the float
// spacing at `scale` (use the max |component| of the reference tensor).
// This is the comparator the mixed-precision contract is stated in: raw
// per-element ULP distance explodes on catastrophic cancellation (a tiny
// element with a flipped sign is billions of ULPs from its reference while
// being a negligible absolute error), whereas spacing-at-scale units bound
// the absolute error the way a backward-error analysis of the bf16 chain
// actually predicts. Deterministic: float subtraction, one double divide.
inline int64_t ulp_distance_at_scale(float a, float b, float scale) {
  if (!std::isfinite(a) || !std::isfinite(b)) {
    uint32_t ab, bb;
    std::memcpy(&ab, &a, sizeof(ab));
    std::memcpy(&bb, &b, sizeof(bb));
    return ab == bb ? 0 : INT64_MAX;
  }
  const double diff = double(a) >= double(b) ? double(a) - double(b) : double(b) - double(a);
  if (diff == 0.0) return 0;
  const double unit = double(ulp_of(scale));
  if (unit <= 0.0) return INT64_MAX;
  return int64_t(std::ceil(diff / unit));
}

}  // namespace ltns::util
