// Log2-domain arithmetic for contraction-cost accounting.
//
// Contraction costs in Sycamore-class tensor networks reach 2^60 and bad
// candidate paths explored by the optimizers reach far beyond 2^300, so all
// cost bookkeeping (Eq. 1, Eq. 2 and Eq. 4 of the paper) is carried as
// log2(flops) in doubles, with stable log-sum-exp accumulation.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace ltns {

// Identity element for log2-domain addition: log2(0).
inline constexpr double kLog2Zero = -std::numeric_limits<double>::infinity();

// Returns log2(2^a + 2^b) without overflow.
inline double log2_add(double a, double b) {
  if (a == kLog2Zero) return b;
  if (b == kLog2Zero) return a;
  double hi = std::max(a, b), lo = std::min(a, b);
  return hi + std::log2(1.0 + std::exp2(lo - hi));
}

// Returns log2(2^a - 2^b); clamps to log2(0) when a <= b (fp-safe).
inline double log2_sub(double a, double b) {
  if (b == kLog2Zero) return a;
  if (a <= b) return kLog2Zero;
  return a + std::log2(1.0 - std::exp2(b - a));
}

// Stable log2(sum_i 2^{v_i}).
inline double log2_sum_exp(const std::vector<double>& vals) {
  double acc = kLog2Zero;
  for (double v : vals) acc = log2_add(acc, v);
  return acc;
}

// Streaming accumulator for log2-domain sums.
class Log2Accumulator {
 public:
  void add(double log2v) { acc_ = log2_add(acc_, log2v); }
  double value() const { return acc_; }
  void reset() { acc_ = kLog2Zero; }

 private:
  double acc_ = kLog2Zero;
};

}  // namespace ltns
