#include "device/backend.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "obs/trace.hpp"
#include "util/aligned_alloc.hpp"
#include "util/timer.hpp"

namespace ltns::device {

namespace {

constexpr double kBytesPerElem = sizeof(exec::cfloat);

}  // namespace

exec::cfloat* DeviceBackend::alloc_elems(size_t n) {
  util::AlignedAllocator<exec::cfloat, exec::kTensorAlignment> a;
  return a.allocate(n);
}

void DeviceBackend::free_elems(exec::cfloat* p, size_t n) {
  util::AlignedAllocator<exec::cfloat, exec::kTensorAlignment> a;
  a.deallocate(p, n);
}

void DeviceBackend::upload(exec::cfloat* dst, const exec::cfloat* src, size_t n,
                           DeviceStats* stats) {
  obs::TraceScope tr(obs::EventKind::kDeviceUpload, uint64_t(double(n) * kBytesPerElem));
  Timer t;
  std::copy(src, src + n, dst);
  if (stats) {
    stats->bytes_to_device += double(n) * kBytesPerElem;
    stats->ns_to_device += t.seconds() * 1e9;
    stats->uploads += 1;
  }
}

void DeviceBackend::download(exec::cfloat* dst, const exec::cfloat* src, size_t n,
                             DeviceStats* stats) {
  obs::TraceScope tr(obs::EventKind::kDeviceDownload, uint64_t(double(n) * kBytesPerElem));
  Timer t;
  std::copy(src, src + n, dst);
  if (stats) {
    stats->bytes_to_host += double(n) * kBytesPerElem;
    stats->ns_to_host += t.seconds() * 1e9;
    stats->downloads += 1;
  }
}

exec::Tensor DeviceBackend::contract(const exec::Tensor& a, const exec::Tensor& b,
                                     ThreadPool* pool, exec::ContractStats* cs,
                                     DeviceStats* stats) {
  return exec::contract(a, b, pool, cs, this, stats);
}

namespace {

// Staging copy for host-class non-unified backends: a single timed
// copy-construction (fresh aligned storage) IS the transfer — no separate
// zero-fill + memcpy round trip on the hot path.
exec::Tensor staged_copy(const exec::Tensor& t, double* bytes, double* ns, uint64_t* ops,
                         obs::EventKind kind) {
  obs::TraceScope tr(kind, uint64_t(double(t.size()) * kBytesPerElem));
  Timer timer;
  exec::Tensor out = t;
  *ns += timer.seconds() * 1e9;
  *bytes += double(t.size()) * kBytesPerElem;
  *ops += 1;
  return out;
}

}  // namespace

exec::Tensor DeviceBackend::run_stem_window(exec::Tensor w, const exec::Tensor* branches,
                                            int n_steps, exec::ContractStats* cs,
                                            DeviceStats* stats, size_t* peak_elems) {
  // Host-class staging only: the aligned Tensor doubles as the device
  // buffer, so each transfer is one copy. A discrete device (real CUDA)
  // must override run_stem_window outright — its kernels consume device
  // pointers, not host Tensors — and route its copies through
  // upload/download for the same accounting.
  const bool staged = !capabilities().unified_memory;
  DeviceStats local;  // transfer accounting when the caller passed none
  DeviceStats* st = stats != nullptr ? stats : &local;
  if (staged && w.size() > 0)
    w = staged_copy(w, &st->bytes_to_device, &st->ns_to_device, &st->uploads,
                    obs::EventKind::kDeviceUpload);
  size_t peak = w.size();
  for (int k = 0; k < n_steps; ++k) {
    const exec::Tensor* b = &branches[k];
    exec::Tensor staged_b;
    if (staged) {
      staged_b = staged_copy(*b, &st->bytes_to_device, &st->ns_to_device, &st->uploads,
                             obs::EventKind::kDeviceUpload);
      b = &staged_b;
    }
    exec::Tensor wn = contract(w, *b, /*pool=*/nullptr, cs, stats);  // serial: one CPE/SM
    peak = std::max(peak, w.size() + b->size() + wn.size());
    w = std::move(wn);
    st->stem_steps += 1;
  }
  if (staged && w.size() > 0)
    w = staged_copy(w, &st->bytes_to_host, &st->ns_to_host, &st->downloads,
                    obs::EventKind::kDeviceDownload);
  if (peak_elems) *peak_elems = peak;
  return w;
}

// --- registry --------------------------------------------------------------

// Factories live in their backend's translation unit; the explicit list
// (rather than static self-registration) keeps construction order trivial.
std::unique_ptr<DeviceBackend> make_host_backend();
std::unique_ptr<DeviceBackend> make_blocked_backend();
std::unique_ptr<DeviceBackend> make_cuda_backend();  // throws when compiled out
DeviceCaps cuda_backend_caps();

std::vector<BackendInfo> available_backends() {
  std::vector<BackendInfo> out;
  out.push_back({"host", make_host_backend()->capabilities()});
  out.push_back({"blocked", make_blocked_backend()->capabilities()});
  out.push_back({"cuda", cuda_backend_caps()});
  return out;
}

std::unique_ptr<DeviceBackend> make_backend(const std::string& name) {
  if (name.empty() || name == "host") return make_host_backend();
  if (name == "blocked") return make_blocked_backend();
  if (name == "cuda") return make_cuda_backend();
  std::ostringstream msg;
  msg << "unknown device backend '" << name << "'; known backends:";
  for (const auto& b : available_backends())
    msg << " " << b.name << (b.caps.available ? "" : " (unavailable)");
  throw std::invalid_argument(msg.str());
}

std::string backend_help() {
  std::ostringstream o;
  o << "device backends:\n";
  for (const auto& b : available_backends()) {
    o << "  " << b.name << (b.caps.available ? "" : "  [unavailable in this build]") << "\n"
      << "      " << b.caps.description << "\n"
      << "      unified_memory=" << (b.caps.unified_memory ? "yes" : "no")
      << " alignment=" << b.caps.alignment << "B simd_lanes=" << b.caps.simd_lanes << "\n";
  }
  return o.str();
}

}  // namespace ltns::device
