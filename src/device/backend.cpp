#include "device/backend.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "obs/trace.hpp"
#include "util/aligned_alloc.hpp"
#include "util/timer.hpp"

namespace ltns::device {

namespace {

constexpr double kBytesPerElem = sizeof(exec::cfloat);

}  // namespace

exec::cfloat* DeviceBackend::alloc_elems(size_t n) {
  util::AlignedAllocator<exec::cfloat, exec::kTensorAlignment> a;
  return a.allocate(n);
}

void DeviceBackend::free_elems(exec::cfloat* p, size_t n) {
  util::AlignedAllocator<exec::cfloat, exec::kTensorAlignment> a;
  a.deallocate(p, n);
}

void DeviceBackend::upload(exec::cfloat* dst, const exec::cfloat* src, size_t n,
                           DeviceStats* stats) {
  obs::TraceScope tr(obs::EventKind::kDeviceUpload, uint64_t(double(n) * kBytesPerElem));
  Timer t;
  std::copy(src, src + n, dst);
  if (stats) {
    stats->bytes_to_device += double(n) * kBytesPerElem;
    stats->ns_to_device += t.seconds() * 1e9;
    stats->uploads += 1;
  }
}

void DeviceBackend::download(exec::cfloat* dst, const exec::cfloat* src, size_t n,
                             DeviceStats* stats) {
  obs::TraceScope tr(obs::EventKind::kDeviceDownload, uint64_t(double(n) * kBytesPerElem));
  Timer t;
  std::copy(src, src + n, dst);
  if (stats) {
    stats->bytes_to_host += double(n) * kBytesPerElem;
    stats->ns_to_host += t.seconds() * 1e9;
    stats->downloads += 1;
  }
}

exec::Tensor DeviceBackend::contract(const exec::Tensor& a, const exec::Tensor& b,
                                     ThreadPool* pool, exec::ContractStats* cs,
                                     DeviceStats* stats) {
  return exec::contract(a, b, pool, cs, this, stats);
}

namespace {

// Staging copy for host-class non-unified backends: a single timed
// copy-construction (fresh aligned storage) IS the transfer — no separate
// zero-fill + memcpy round trip on the hot path.
exec::Tensor staged_copy(const exec::Tensor& t, double* bytes, double* ns, uint64_t* ops,
                         obs::EventKind kind) {
  obs::TraceScope tr(kind, uint64_t(double(t.size()) * kBytesPerElem));
  Timer timer;
  exec::Tensor out = t;
  *ns += timer.seconds() * 1e9;
  *bytes += double(t.size()) * kBytesPerElem;
  *ops += 1;
  return out;
}

}  // namespace

exec::Tensor DeviceBackend::run_stem_window(exec::Tensor w, const exec::Tensor* branches,
                                            int n_steps, exec::ContractStats* cs,
                                            DeviceStats* stats, size_t* peak_elems) {
  // Host-class staging only: the aligned Tensor doubles as the device
  // buffer, so each transfer is one copy. A discrete device (real CUDA)
  // must override run_stem_window outright — its kernels consume device
  // pointers, not host Tensors — and route its copies through
  // upload/download for the same accounting.
  const bool staged = !capabilities().unified_memory;
  DeviceStats local;  // transfer accounting when the caller passed none
  DeviceStats* st = stats != nullptr ? stats : &local;
  if (staged && w.size() > 0)
    w = staged_copy(w, &st->bytes_to_device, &st->ns_to_device, &st->uploads,
                    obs::EventKind::kDeviceUpload);
  size_t peak = w.size();
  for (int k = 0; k < n_steps; ++k) {
    const exec::Tensor* b = &branches[k];
    exec::Tensor staged_b;
    if (staged) {
      staged_b = staged_copy(*b, &st->bytes_to_device, &st->ns_to_device, &st->uploads,
                             obs::EventKind::kDeviceUpload);
      b = &staged_b;
    }
    exec::Tensor wn = contract(w, *b, /*pool=*/nullptr, cs, stats);  // serial: one CPE/SM
    peak = std::max(peak, w.size() + b->size() + wn.size());
    w = std::move(wn);
    st->stem_steps += 1;
  }
  if (staged && w.size() > 0)
    w = staged_copy(w, &st->bytes_to_host, &st->ns_to_host, &st->downloads,
                    obs::EventKind::kDeviceDownload);
  if (peak_elems) *peak_elems = peak;
  return w;
}

// --- registry --------------------------------------------------------------

// Factories live in their backend's translation unit; the explicit list
// (rather than static self-registration) keeps construction order trivial.
std::unique_ptr<DeviceBackend> make_host_backend(exec::Precision prec);
std::unique_ptr<DeviceBackend> make_blocked_backend(exec::Precision prec);
std::unique_ptr<DeviceBackend> make_simd_backend(exec::Precision prec);
std::unique_ptr<DeviceBackend> make_cuda_backend(exec::Precision prec);  // throws when compiled out
DeviceCaps cuda_backend_caps();

std::string BackendSpec::spec() const {
  if (precision == exec::Precision::kFp32) return name;
  return name + "+" + exec::precision_name(precision);
}

BackendSpec parse_backend_spec(const std::string& spec) {
  BackendSpec out;
  if (spec.empty()) return out;
  const size_t plus = spec.find('+');
  if (plus == std::string::npos) {
    out.name = spec;
    return out;
  }
  out.name = spec.substr(0, plus);
  const std::string prec = spec.substr(plus + 1);
  if (prec == "fp32")
    out.precision = exec::Precision::kFp32;
  else if (prec == "bf16")
    out.precision = exec::Precision::kBf16;
  else
    throw std::invalid_argument("unknown backend precision '" + prec + "' in spec '" + spec +
                                "'; use fp32 or bf16");
  if (out.name.empty()) out.name = "host";
  return out;
}

std::string merge_backend_override(const std::string& job_spec,
                                   const std::string& override_spec) {
  if (override_spec.empty()) return job_spec.empty() ? "host" : job_spec;
  BackendSpec merged = parse_backend_spec(override_spec);
  if (override_spec.find('+') == std::string::npos)
    merged.precision = parse_backend_spec(job_spec).precision;
  return merged.spec();
}

std::vector<BackendInfo> available_backends() {
  const exec::Precision fp32 = exec::Precision::kFp32;
  std::vector<BackendInfo> out;
  out.push_back({"host", make_host_backend(fp32)->capabilities()});
  out.push_back({"blocked", make_blocked_backend(fp32)->capabilities()});
  out.push_back({"simd", make_simd_backend(fp32)->capabilities()});
  out.push_back({"cuda", cuda_backend_caps()});
  return out;
}

std::unique_ptr<DeviceBackend> make_backend(const std::string& spec) {
  const BackendSpec s = parse_backend_spec(spec);
  if (s.name == "host") return make_host_backend(s.precision);
  if (s.name == "blocked") return make_blocked_backend(s.precision);
  if (s.name == "simd") return make_simd_backend(s.precision);
  if (s.name == "cuda") return make_cuda_backend(s.precision);
  std::ostringstream msg;
  msg << "unknown device backend '" << s.name << "'; known backends:";
  for (const auto& b : available_backends())
    msg << " " << b.name << (b.caps.available ? "" : " (unavailable)");
  msg << " (each accepts a +fp32 or +bf16 precision suffix)";
  throw std::invalid_argument(msg.str());
}

std::string backend_help() {
  std::ostringstream o;
  o << "device backends (spec: name[+fp32|+bf16], default fp32):\n";
  for (const auto& b : available_backends()) {
    o << "  " << b.name << (b.caps.available ? "" : "  [unavailable in this build]") << "\n"
      << "      " << b.caps.description << "\n"
      << "      unified_memory=" << (b.caps.unified_memory ? "yes" : "no")
      << " alignment=" << b.caps.alignment << "B simd_lanes=" << b.caps.simd_lanes
      << " isa=" << b.caps.isa << "\n";
  }
  return o.str();
}

}  // namespace ltns::device
