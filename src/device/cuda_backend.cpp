// "cuda" backend: compile-gated scaffolding for a real GPU.
//
// The interface is fully implemented behind LTNS_ENABLE_CUDA so a CUDA
// runtime integration is a drop-in: replace the staged-host kernel bodies
// below with cudaMalloc/cudaMemcpy + cuBLAS/cuTENSOR launches and the rest
// of the system — executors, shard drivers, telemetry, the CI byte-diff
// jobs — already speaks the seam. Until then the gated build runs the host
// kernels through the staged (non-unified) path, which exercises the
// upload/download accounting a discrete device produces.
//
// Without LTNS_ENABLE_CUDA the backend is registered as unavailable:
// make_backend("cuda") fails with a message naming the gate, and the CLI's
// `--backend=help` lists it as such.
#include <memory>
#include <stdexcept>

#include "device/backend.hpp"
#include "device/cpu_probe.hpp"
#include "exec/gemm.hpp"
#include "exec/mixed_gemm.hpp"
#include "exec/permute.hpp"

namespace ltns::device {

namespace {

DeviceCaps cuda_caps(bool available) {
  DeviceCaps c;
  c.available = available;
  c.unified_memory = false;
  c.alignment = 256;  // cudaMalloc guarantees 256-byte alignment
  // Until a real device launch lands, the scaffolding runs the host CPU
  // kernels — so the honest lanes/isa are the CPU probe's, not the warp
  // width of hypothetical hardware.
  c.simd_lanes = probe_simd_lanes();
  c.isa = exec::isa_name(cpu_probe().active);
  c.description = available
                      ? "CUDA scaffolding (staged host kernels; hardware launch TODO)"
                      : "compiled out — configure with -DLTNS_ENABLE_CUDA=ON";
  return c;
}

#ifdef LTNS_ENABLE_CUDA

class CudaBackend final : public DeviceBackend {
 public:
  explicit CudaBackend(exec::Precision prec) : DeviceBackend(prec) {}
  const char* name() const override { return "cuda"; }
  DeviceCaps capabilities() const override { return cuda_caps(true); }

  void gemm(int m, int n, int k, const exec::cfloat* a, const exec::cfloat* b, exec::cfloat* c,
            ThreadPool* pool, DeviceStats* stats) override {
    // TODO(hardware): device buffers + cublasCgemm. The host kernel keeps
    // the staged path runnable (and bitwise identical) until then.
    if (precision() == exec::Precision::kBf16)
      exec::cgemm_mixed(m, n, k, a, b, c, pool);
    else
      exec::cgemm(m, n, k, a, b, c, pool);
    if (stats) stats->gemm_calls += 1;
  }

  exec::Tensor permute(const exec::Tensor& t, const std::vector<int>& new_ixs,
                       DeviceStats* stats) override {
    if (stats) stats->permute_calls += 1;
    return exec::permute(t, new_ixs);
  }
};

#endif  // LTNS_ENABLE_CUDA

}  // namespace

DeviceCaps cuda_backend_caps() {
#ifdef LTNS_ENABLE_CUDA
  return cuda_caps(true);
#else
  return cuda_caps(false);
#endif
}

std::unique_ptr<DeviceBackend> make_cuda_backend(exec::Precision prec) {
#ifdef LTNS_ENABLE_CUDA
  return std::make_unique<CudaBackend>(prec);
#else
  (void)prec;
  throw std::invalid_argument(
      "device backend 'cuda' is compiled out of this build (configure with "
      "-DLTNS_ENABLE_CUDA=ON); available backends: host, blocked, simd");
#endif
}

}  // namespace ltns::device
