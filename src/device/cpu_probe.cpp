#include "device/cpu_probe.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace ltns::device {

namespace {

using exec::IsaTier;

IsaTier detect_isa() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f")) return IsaTier::kAvx512;
  if (__builtin_cpu_supports("avx2")) return IsaTier::kAvx2;
  return IsaTier::kPortable;
#elif defined(__aarch64__)
  return IsaTier::kNeon;  // NEON is architectural on aarch64
#else
  return IsaTier::kPortable;
#endif
}

// Clamp a requested tier to what this build + hardware can actually run:
// x86 tiers degrade avx512 -> avx2 -> portable, neon degrades to portable
// off-arm. Forcing DOWN from the detected tier is always honored (that is
// the point of the override).
IsaTier clamp_to_hardware(IsaTier want, IsaTier detected) {
  if (want == IsaTier::kPortable) return IsaTier::kPortable;
  if (want == IsaTier::kNeon) return detected == IsaTier::kNeon ? want : IsaTier::kPortable;
  if (detected == IsaTier::kNeon) return IsaTier::kPortable;  // x86 tier on arm
  // avx512 > avx2 > portable on the x86 chain.
  return int(want) <= int(detected) ? want : detected;
}

CpuProbe resolve_probe() {
  CpuProbe p;
  p.detected = detect_isa();
  p.active = p.detected;
  const char* env = std::getenv("LTNS_FORCE_ISA");
  if (env == nullptr || *env == '\0') return p;
  const std::string v(env);
  if (v == "off" || v == "auto") return p;
  IsaTier want;
  if (v == "portable")
    want = IsaTier::kPortable;
  else if (v == "avx2")
    want = IsaTier::kAvx2;
  else if (v == "avx512")
    want = IsaTier::kAvx512;
  else if (v == "neon")
    want = IsaTier::kNeon;
  else
    throw std::invalid_argument("LTNS_FORCE_ISA='" + v +
                                "' is not a tier; use portable, avx2, avx512 or neon");
  p.active = clamp_to_hardware(want, p.detected);
  p.forced = true;
  return p;
}

}  // namespace

const CpuProbe& cpu_probe() {
  static const CpuProbe probe = resolve_probe();
  return probe;
}

size_t probe_simd_lanes() { return exec::isa_lanes(cpu_probe().active); }

std::string probe_isa_label() {
  const CpuProbe& p = cpu_probe();
  std::string label = exec::isa_name(p.active);
  if (p.forced) label += " (LTNS_FORCE_ISA)";
  return label;
}

}  // namespace ltns::device
