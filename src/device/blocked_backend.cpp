// "blocked" backend: cache-blocked, alignment-aware host kernels.
//
// A host-class device that treats the CPU like an accelerator: GEMM packs
// B into 64-byte-aligned column-tile panels (counted as to-device traffic —
// the staging copy a discrete device would make explicit), blocks columns
// so a panel stays hot in L2, and runs a contiguous-panel micro-kernel the
// compiler can vectorize without gather addressing. Fused stem windows run
// staged (unified_memory = false): the working tensor is uploaded into
// device scratch once per window and the result downloaded once, which is
// both the transfer-accounting model and the memory-locality discipline a
// real device needs.
//
// BIT-EXACTNESS CONTRACT: the output must be bitwise identical to the
// "host" backend (exec::cgemm). That pins three things:
//   * the K panel width (kKc) must equal exec::cgemm's — every C element
//     accumulates one float-precision partial per K panel, in ascending
//     panel order;
//   * the micro-kernel's per-element expressions must be the host 4x4
//     kernel's expressions (split-complex cr += ar*br - ai*bi, p ascending
//     within the panel) — packing only relocates the operands;
//   * the tile grid must classify each (i, j) into the same kernel (4x4
//     vs edge) as the host: i tiles from the row-chunk start, j tiles on
//     global multiples of 4 (kNc is a multiple of 4 so column blocking
//     never shifts the grid).
// Blocking order (columns outside K panels) is free: each element still
// sees its K panels in ascending order. tests/test_device fuzzes this
// against the host backend across shapes and pool widths.
#include <cstring>
#include <memory>
#include <vector>

#include "device/backend.hpp"
#include "device/cpu_probe.hpp"
#include "exec/gemm.hpp"
#include "exec/mixed_gemm.hpp"
#include "exec/permute.hpp"
#include "obs/trace.hpp"
#include "util/aligned_alloc.hpp"
#include "util/timer.hpp"

namespace ltns::device {

namespace {

using exec::cfloat;

constexpr int kKc = 256;  // MUST match exec::cgemm's K panel (reduction order)
constexpr int kNc = 256;  // column block held hot in L2; multiple of 4

// Same per-element float sequence as exec::cgemm's micro_4x4; B comes from
// the packed panel (tile-major, 4 columns contiguous per K row), so the
// inner loads are unit-stride from an aligned buffer.
inline void micro_4x4_packed(int k, const cfloat* __restrict__ a, int lda,
                             const cfloat* __restrict__ bp, cfloat* __restrict__ c, int ldc) {
  float cr[4][4] = {}, ci[4][4] = {};
  for (int p = 0; p < k; ++p) {
    float br[4], bi[4];
    for (int j = 0; j < 4; ++j) {
      br[j] = bp[size_t(p) * 4 + j].real();
      bi[j] = bp[size_t(p) * 4 + j].imag();
    }
    for (int i = 0; i < 4; ++i) {
      const cfloat av = a[size_t(i) * lda + p];
      const float ar = av.real(), ai = av.imag();
      for (int j = 0; j < 4; ++j) {
        cr[i][j] += ar * br[j] - ai * bi[j];
        ci[i][j] += ar * bi[j] + ai * br[j];
      }
    }
  }
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) c[size_t(i) * ldc + j] += cfloat(cr[i][j], ci[i][j]);
}

// Edge tile — the exact expression shape of exec::cgemm's micro_edge, so an
// element on the ragged rim computes the same bits on either backend.
inline void micro_edge(int mm, int nn, int k, const cfloat* a, int lda, const cfloat* b, int ldb,
                       cfloat* c, int ldc) {
  for (int i = 0; i < mm; ++i)
    for (int j = 0; j < nn; ++j) {
      cfloat acc{0, 0};
      for (int p = 0; p < k; ++p) acc += a[size_t(i) * lda + p] * b[size_t(p) * ldb + j];
      c[size_t(i) * ldc + j] += acc;
    }
}

// Per-worker transfer accounting, merged after the parallel region so
// workers never contend on the shared DeviceStats.
struct PackAccum {
  double bytes = 0;
  double ns = 0;
  uint64_t packs = 0;
};

// Reusable aligned pack buffer, one per row-chunk invocation.
struct PanelBuf {
  cfloat* p = nullptr;
  size_t cap = 0;
  cfloat* get(size_t need) {
    if (need > cap) {
      release();
      util::AlignedAllocator<cfloat, exec::kTensorAlignment> a;
      p = a.allocate(need);
      cap = need;
    }
    return p;
  }
  void release() {
    if (p != nullptr) {
      util::AlignedAllocator<cfloat, exec::kTensorAlignment> a;
      a.deallocate(p, cap);
    }
    p = nullptr;
    cap = 0;
  }
  ~PanelBuf() { release(); }
};

void blocked_rows(int m0, int m1, int n, int k, const cfloat* a, const cfloat* b, cfloat* c,
                  PackAccum* acc) {
  for (int i = m0; i < m1; ++i) std::memset(c + size_t(i) * n, 0, size_t(n) * sizeof(cfloat));
  PanelBuf buf;
  for (int jc = 0; jc < n; jc += kNc) {
    const int nc = std::min(kNc, n - jc);
    const int ncf = nc - nc % 4;  // full 4-column tiles in this block
    for (int kp = 0; kp < k; kp += kKc) {
      const int kc = std::min(kKc, k - kp);
      cfloat* bp = nullptr;
      if (ncf > 0) {
        bp = buf.get(size_t(ncf) * size_t(kc));
        Timer t;
        for (int jt = 0; jt < ncf; jt += 4) {
          cfloat* tile = bp + size_t(jt / 4) * (size_t(kc) * 4);
          for (int p = 0; p < kc; ++p)
            for (int q = 0; q < 4; ++q)
              tile[size_t(p) * 4 + q] = b[size_t(kp + p) * n + size_t(jc + jt + q)];
        }
        acc->ns += t.seconds() * 1e9;
        acc->bytes += double(ncf) * double(kc) * sizeof(cfloat);
        acc->packs += 1;
      }
      int i = m0;
      for (; i + 4 <= m1; i += 4) {
        for (int jt = 0; jt < ncf; jt += 4)
          micro_4x4_packed(kc, a + size_t(i) * k + kp, k, bp + size_t(jt / 4) * (size_t(kc) * 4),
                           c + size_t(i) * n + jc + jt, n);
        if (ncf < nc)
          micro_edge(4, nc - ncf, kc, a + size_t(i) * k + kp, k,
                     b + size_t(kp) * n + jc + ncf, n, c + size_t(i) * n + jc + ncf, n);
      }
      if (i < m1)
        micro_edge(m1 - i, nc, kc, a + size_t(i) * k + kp, k, b + size_t(kp) * n + jc, n,
                   c + size_t(i) * n + jc, n);
    }
  }
}

class BlockedBackend final : public DeviceBackend {
 public:
  explicit BlockedBackend(exec::Precision prec) : DeviceBackend(prec) {}

  const char* name() const override { return "blocked"; }

  DeviceCaps capabilities() const override {
    DeviceCaps c;
    c.available = true;
    c.unified_memory = false;  // stem windows stage through device scratch
    c.alignment = exec::kTensorAlignment;
    c.simd_lanes = probe_simd_lanes();  // from the runtime dispatch probe
    c.isa = exec::isa_name(cpu_probe().active);
    c.description = "cache-blocked host kernels: packed aligned B panels, L2 column "
                    "blocking, staged stem windows; bitwise identical to 'host'";
    return c;
  }

  void gemm(int m, int n, int k, const cfloat* a, const cfloat* b, cfloat* c, ThreadPool* pool,
            DeviceStats* stats) override {
    if (stats) stats->gemm_calls += 1;
    if (precision() == exec::Precision::kBf16) {
      // Mixed mode runs the canonical bf16 chain; the packed-panel path is
      // an fp32-operand optimization and would need round-at-pack plumbing
      // to match it — not worth a second bf16 code path here.
      exec::cgemm_mixed(m, n, k, a, b, c, pool);
      return;
    }
    if (m == 0 || n == 0) return;
    if (k == 0) {
      std::memset(c, 0, size_t(m) * n * sizeof(cfloat));
      return;
    }
    // Same parallel split (and threshold) as exec::cgemm, so a given pool
    // yields the same row chunks — and therefore the same tile grid.
    const double work = double(m) * n * k;
    std::vector<PackAccum> acc;
    if (pool != nullptr && pool->size() > 1 && work > 1 << 16) {
      acc.resize(size_t(pool->size()));
      pool->parallel_for(size_t(m), [&](int w, size_t b0, size_t e0) {
        blocked_rows(int(b0), int(e0), n, k, a, b, c, &acc[size_t(w)]);
      });
    } else {
      acc.resize(1);
      blocked_rows(0, m, n, k, a, b, c, &acc[0]);
    }
    double packed_bytes = 0;
    for (const auto& x : acc) packed_bytes += x.bytes;
    obs::trace_instant(obs::EventKind::kDeviceUpload, uint64_t(packed_bytes));
    if (stats) {
      for (const auto& x : acc) {
        stats->bytes_to_device += x.bytes;  // panel packing IS the staging copy
        stats->ns_to_device += x.ns;
        stats->uploads += x.packs;
      }
    }
  }

  exec::Tensor permute(const exec::Tensor& t, const std::vector<int>& new_ixs,
                       DeviceStats* stats) override {
    // Pure data movement: the reduced-map permute already moves contiguous
    // aligned blocks, and any reordering is bitwise-neutral by definition.
    if (stats) stats->permute_calls += 1;
    return exec::permute(t, new_ixs);
  }
};

}  // namespace

std::unique_ptr<DeviceBackend> make_blocked_backend(exec::Precision prec) {
  return std::make_unique<BlockedBackend>(prec);
}

}  // namespace ltns::device
