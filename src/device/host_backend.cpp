// "host" backend: the reference device.
//
// Delegates straight to exec::cgemm / exec::permute, so its output is the
// host path's output by definition — this is the backend every other
// implementation is byte-compared against, and the default the Simulator
// and CLI run on.
#include <memory>

#include "device/backend.hpp"
#include "exec/gemm.hpp"
#include "exec/permute.hpp"

namespace ltns::device {

namespace {

class HostBackend final : public DeviceBackend {
 public:
  const char* name() const override { return "host"; }

  DeviceCaps capabilities() const override {
    DeviceCaps c;
    c.available = true;
    c.unified_memory = true;
    c.alignment = exec::kTensorAlignment;
    c.simd_lanes = 4;  // whatever the 4x4 micro-kernel auto-vectorizes to
    c.description = "reference host kernels (exec::cgemm 4x4 micro-kernel, "
                    "exec::permute reduced map)";
    return c;
  }

  void gemm(int m, int n, int k, const exec::cfloat* a, const exec::cfloat* b, exec::cfloat* c,
            ThreadPool* pool, DeviceStats* stats) override {
    exec::cgemm(m, n, k, a, b, c, pool);
    if (stats) stats->gemm_calls += 1;
  }

  exec::Tensor permute(const exec::Tensor& t, const std::vector<int>& new_ixs,
                       DeviceStats* stats) override {
    if (stats) stats->permute_calls += 1;
    return exec::permute(t, new_ixs);
  }
};

}  // namespace

std::unique_ptr<DeviceBackend> make_host_backend() { return std::make_unique<HostBackend>(); }

}  // namespace ltns::device
