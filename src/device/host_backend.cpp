// "host" backend: the reference device.
//
// Delegates straight to exec::cgemm / exec::permute, so its output is the
// host path's output by definition — this is the backend every other
// implementation is byte-compared against, and the default the Simulator
// and CLI run on. Under a +bf16 spec the GEMM runs exec::cgemm_mixed (the
// portable-tier bf16 chain), which every other bf16 backend matches
// bitwise the same way the fp32 backends match exec::cgemm.
#include <memory>

#include "device/backend.hpp"
#include "device/cpu_probe.hpp"
#include "exec/gemm.hpp"
#include "exec/mixed_gemm.hpp"
#include "exec/permute.hpp"

namespace ltns::device {

namespace {

class HostBackend final : public DeviceBackend {
 public:
  explicit HostBackend(exec::Precision prec) : DeviceBackend(prec) {}

  const char* name() const override { return "host"; }

  DeviceCaps capabilities() const override {
    DeviceCaps c;
    c.available = true;
    c.unified_memory = true;
    c.alignment = exec::kTensorAlignment;
    // Lanes from the runtime probe: what the compiler's auto-vectorizer can
    // actually use on this machine, not a hard-coded guess.
    c.simd_lanes = probe_simd_lanes();
    c.isa = exec::isa_name(cpu_probe().active);
    c.description = "reference host kernels (exec::cgemm 4x4 micro-kernel, "
                    "exec::permute reduced map)";
    return c;
  }

  void gemm(int m, int n, int k, const exec::cfloat* a, const exec::cfloat* b, exec::cfloat* c,
            ThreadPool* pool, DeviceStats* stats) override {
    if (precision() == exec::Precision::kBf16)
      exec::cgemm_mixed(m, n, k, a, b, c, pool);
    else
      exec::cgemm(m, n, k, a, b, c, pool);
    if (stats) stats->gemm_calls += 1;
  }

  exec::Tensor permute(const exec::Tensor& t, const std::vector<int>& new_ixs,
                       DeviceStats* stats) override {
    if (stats) stats->permute_calls += 1;
    return exec::permute(t, new_ixs);
  }
};

}  // namespace

std::unique_ptr<DeviceBackend> make_host_backend(exec::Precision prec) {
  return std::make_unique<HostBackend>(prec);
}

}  // namespace ltns::device
