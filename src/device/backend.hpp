// Pluggable device backends: the accelerator seam of the contraction engine.
//
// A DeviceBackend owns the three kernels every executor needs — permute,
// GEMM, and the fused stem step — plus aligned scratch management and
// explicit upload/download with DeviceStats accounting. The executors
// (execute_tree / execute_fused / run_sliced) take a backend pointer and
// route every kernel through it; a null backend means the raw host path
// (identical to the "host" backend by construction).
//
// The contract every implementation must honor: for the same inputs the
// output is BITWISE identical to the host kernels. Backends are free to
// block, pack, vectorize and stage however they like, but the per-element
// floating-point reduction order is part of the interface — the
// distributed drivers merge partials from heterogeneous fleets, and the
// bitwise-stability guarantee of the whole system (tests/test_device,
// tests/test_dist, the CI byte-diff jobs) rests on this.
//
// Registry: make_backend("host" | "blocked" | "simd" | "cuda"). "host"
// delegates to exec::cgemm / exec::permute unchanged; "blocked" runs
// cache-blocked, alignment-aware, compiler-vectorizable kernels with the
// identical reduction order; "simd" runs the explicit-intrinsic vector
// tiers (runtime avx2/avx512/neon dispatch, src/device/cpu_probe.*) with
// the same bits; "cuda" is compile-gated behind LTNS_ENABLE_CUDA (listed
// as unavailable otherwise) so real hardware is a drop-in later.
//
// Backend SPECS: every name accepts an optional precision suffix,
// "name+fp32" (the default) or "name+bf16" (the mixed-precision mode:
// bf16 operands, fp32 accumulation). A bf16 backend is still deterministic
// — all conforming backends produce identical bf16 bits — but it is only
// ULP-close to the fp32 reference, so the byte-diff jobs compare bf16 runs
// against each other bitwise and against fp32 under --compare-mode=ulp:<N>
// (docs/kernels.md). The spec string is what travels through every
// existing backend-name channel (SimulatorOptions, shard options, job
// records, worker overrides), so precision needs no parallel plumbing.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "device/stats.hpp"
#include "exec/contract.hpp"
#include "exec/simd_kernels.hpp"
#include "exec/tensor.hpp"
#include "util/parallel.hpp"

namespace ltns::device {

struct DeviceCaps {
  bool available = true;       // constructible in this build
  bool unified_memory = true;  // kernels read host tensors in place
  size_t alignment = exec::kTensorAlignment;  // required/guaranteed buffer alignment
  size_t simd_lanes = 8;  // float lanes the kernels target (cpu_probe's active tier)
  std::string isa;        // active ISA tier label ("avx2", "portable", ...)
  std::string description;
};

class DeviceBackend {
 public:
  explicit DeviceBackend(exec::Precision precision = exec::Precision::kFp32)
      : precision_(precision) {}
  virtual ~DeviceBackend() = default;

  // Operand precision of this instance's GEMM kernels (from the backend
  // spec). Permute and transfers are precision-blind data movement.
  exec::Precision precision() const { return precision_; }

  virtual const char* name() const = 0;
  virtual DeviceCaps capabilities() const = 0;

  // --- aligned scratch + transfers ---------------------------------------
  // Host-class backends hand out host pointers (unified memory); transfers
  // are still real copies with bytes/ns accounting, so the upload/download
  // seam behaves identically when a discrete device replaces them.
  virtual exec::cfloat* alloc_elems(size_t n);
  virtual void free_elems(exec::cfloat* p, size_t n);
  virtual void upload(exec::cfloat* dst, const exec::cfloat* src, size_t n, DeviceStats* stats);
  virtual void download(exec::cfloat* dst, const exec::cfloat* src, size_t n,
                        DeviceStats* stats);

  // --- kernels ------------------------------------------------------------
  // C = A · B, row-major complex float, C overwritten (exec::cgemm shape).
  virtual void gemm(int m, int n, int k, const exec::cfloat* a, const exec::cfloat* b,
                    exec::cfloat* c, ThreadPool* pool, DeviceStats* stats) = 0;
  virtual exec::Tensor permute(const exec::Tensor& t, const std::vector<int>& new_ixs,
                               DeviceStats* stats) = 0;

  // One TTGT pairwise contraction through this backend's kernels (the
  // canonical implementation lives in exec::contract, which dispatches back
  // into gemm/permute above).
  exec::Tensor contract(const exec::Tensor& a, const exec::Tensor& b, ThreadPool* pool,
                        exec::ContractStats* cs, DeviceStats* stats);

  // Batched stem-step execution: the whole fused window of one secondary
  // subtask — n_steps contractions of the working tensor against
  // consecutive branches, serial (one subtask IS one CPE/SM). Staged
  // (non-unified) backends upload the working tensor once, run the steps in
  // device scratch, and download the result once; `peak_elems` (optional)
  // receives the max live elements across the steps (the LDM model check).
  virtual exec::Tensor run_stem_window(exec::Tensor w, const exec::Tensor* branches,
                                       int n_steps, exec::ContractStats* cs,
                                       DeviceStats* stats, size_t* peak_elems = nullptr);

 private:
  exec::Precision precision_;
};

// --- registry -------------------------------------------------------------

struct BackendInfo {
  std::string name;
  DeviceCaps caps;
};

// A parsed "name[+precision]" spec. spec() rebuilds the canonical string
// ("host" stays "host", bf16 specs print the suffix).
struct BackendSpec {
  std::string name = "host";
  exec::Precision precision = exec::Precision::kFp32;
  std::string spec() const;
};

// Splits "blocked+bf16" -> {blocked, kBf16}. Empty spec means the default
// backend ("host"). Throws std::invalid_argument for an unknown precision
// suffix; the NAME is validated later by make_backend (so help/error paths
// can parse specs for unavailable backends).
BackendSpec parse_backend_spec(const std::string& spec);

// Merges a worker-local --backend override with a job's backend spec: the
// override's NAME wins (the worker knows its own hardware), but the JOB's
// precision wins unless the override pins one explicitly with a "+..."
// suffix — precision is part of the job's numeric contract, not a
// hardware choice, and an override must not silently flip a bf16 job to
// fp32 (or vice versa) on one worker of a fleet sharing a reduction.
std::string merge_backend_override(const std::string& job_spec,
                                   const std::string& override_spec);

// Every registered backend, available or not (the CLI's `--backend=help`).
std::vector<BackendInfo> available_backends();

// Constructs a backend from a "name[+precision]" spec; throws
// std::invalid_argument for unknown names/precisions and for backends
// compiled out of this build, with a message that lists what IS available.
std::unique_ptr<DeviceBackend> make_backend(const std::string& spec);

// Human-readable listing of every backend with capability/alignment info.
std::string backend_help();

}  // namespace ltns::device
