// Runtime CPU capability probe: which vector ISA tier the simd backend's
// dispatch selects, and the lanes/isa every CPU-class backend reports in
// its DeviceCaps (the hard-coded simd_lanes guesses are gone).
//
// Detection is cached on first use. The LTNS_FORCE_ISA environment variable
// (portable | avx2 | avx512 | neon) clamps the active tier DOWN for the CI
// dispatch-override matrix: forcing a tier the hardware (or this build's
// architecture) cannot run falls back along avx512 -> avx2 -> portable, so
// the same matrix passes on any runner while exercising every code path the
// machine has. An unrecognized value throws std::invalid_argument — a typo
// in CI must fail loudly, not silently test the wrong tier.
#pragma once

#include <string>

#include "exec/simd_kernels.hpp"

namespace ltns::device {

struct CpuProbe {
  exec::IsaTier detected = exec::IsaTier::kPortable;  // best tier the hardware runs
  exec::IsaTier active = exec::IsaTier::kPortable;    // after LTNS_FORCE_ISA clamping
  bool forced = false;                                // LTNS_FORCE_ISA was set (and valid)
};

// Cached probe (detection + env override resolved once per process).
const CpuProbe& cpu_probe();

// Float lanes of the active tier — the DeviceCaps::simd_lanes source of
// truth for host/blocked/simd (and the cuda scaffolding, which runs these
// same CPU kernels until real hardware lands).
size_t probe_simd_lanes();

// "avx2", "avx512 (forced: portable)", ... for capability descriptions.
std::string probe_isa_label();

}  // namespace ltns::device
