// "simd" backend: explicit-intrinsic vector kernels behind runtime dispatch.
//
// The capability probe (device/cpu_probe) picks the widest ISA tier this
// machine runs — avx512, avx2, or neon — and every kernel call routes
// through exec::cgemm_simd / exec::permute_simd at that tier; on hardware
// with no compiled tier the portable scalar kernels run. LTNS_FORCE_ISA
// clamps the tier down for the CI dispatch-override matrix.
//
// Bitwise contract: at fp32 every tier reproduces exec::cgemm's bits
// exactly (same K panels, same per-element chain — see
// exec/simd_kernels.hpp). Under a +bf16 spec the same tiers run the
// mixed-precision chain, still bitwise identical across tiers and
// backends, ULP-bounded against fp32.
//
// Panel/strip packing into split-complex float planes is counted as
// to-device traffic, same as the blocked backend's B panels: packing IS
// the staging copy an accelerator makes explicit.
#include <memory>

#include "device/backend.hpp"
#include "device/cpu_probe.hpp"
#include "exec/simd_kernels.hpp"
#include "obs/trace.hpp"

namespace ltns::device {

namespace {

class SimdBackend final : public DeviceBackend {
 public:
  explicit SimdBackend(exec::Precision prec) : DeviceBackend(prec) {}

  const char* name() const override { return "simd"; }

  DeviceCaps capabilities() const override {
    DeviceCaps c;
    c.available = true;
    c.unified_memory = true;  // kernels read host tensors in place
    c.alignment = exec::kTensorAlignment;
    c.simd_lanes = probe_simd_lanes();
    c.isa = exec::isa_name(cpu_probe().active);
    c.description = "runtime-dispatched vector kernels, active tier: " + probe_isa_label() +
                    "; bitwise identical to 'host' at fp32";
    return c;
  }

  void gemm(int m, int n, int k, const exec::cfloat* a, const exec::cfloat* b, exec::cfloat* c,
            ThreadPool* pool, DeviceStats* stats) override {
    exec::SimdPackStats pack;
    exec::cgemm_simd(cpu_probe().active, precision(), m, n, k, a, b, c, pool, &pack);
    if (pack.bytes > 0) obs::trace_instant(obs::EventKind::kDeviceUpload, uint64_t(pack.bytes));
    if (stats) {
      stats->gemm_calls += 1;
      stats->bytes_to_device += pack.bytes;  // plane packing IS the staging copy
      stats->ns_to_device += pack.ns;
      stats->uploads += pack.packs;
    }
  }

  exec::Tensor permute(const exec::Tensor& t, const std::vector<int>& new_ixs,
                       DeviceStats* stats) override {
    if (stats) stats->permute_calls += 1;
    return exec::permute_simd(cpu_probe().active, t, new_ixs);
  }
};

}  // namespace

std::unique_ptr<DeviceBackend> make_simd_backend(exec::Precision prec) {
  return std::make_unique<SimdBackend>(prec);
}

}  // namespace ltns::device
