// Device transfer/kernel telemetry (src/device/).
//
// One DeviceStats is kept per worker next to its ExecStats and merged once
// at the end of a run, so recording needs no synchronization. The transfer
// fields follow the bytes/ns-to-device accounting convention of real
// offload runtimes: host-class backends with unified memory legitimately
// report zero transfer bytes (kernels read tensors in place), staged
// backends (packed-panel scratch, a real accelerator) report every copy.
// This header is dependency-free on purpose: both the exec layer and the
// runtime telemetry embed it.
#pragma once

#include <cstdint>

namespace ltns::device {

struct DeviceStats {
  double bytes_to_device = 0;  // host -> device (uploads, panel packing)
  double bytes_to_host = 0;    // device -> host (downloads)
  double ns_to_device = 0;     // wall time spent moving data in
  double ns_to_host = 0;       // wall time spent moving data out
  uint64_t uploads = 0;        // transfer operations, each direction
  uint64_t downloads = 0;
  uint64_t gemm_calls = 0;     // kernel launches
  uint64_t permute_calls = 0;
  uint64_t stem_steps = 0;     // fused stem steps executed on the device

  void merge(const DeviceStats& o) {
    bytes_to_device += o.bytes_to_device;
    bytes_to_host += o.bytes_to_host;
    ns_to_device += o.ns_to_device;
    ns_to_host += o.ns_to_host;
    uploads += o.uploads;
    downloads += o.downloads;
    gemm_calls += o.gemm_calls;
    permute_calls += o.permute_calls;
    stem_steps += o.stem_steps;
  }

  // Per-run delta between two cumulative readings (ExecutorSnapshot::since).
  DeviceStats since(const DeviceStats& begin) const {
    DeviceStats d = *this;
    d.bytes_to_device -= begin.bytes_to_device;
    d.bytes_to_host -= begin.bytes_to_host;
    d.ns_to_device -= begin.ns_to_device;
    d.ns_to_host -= begin.ns_to_host;
    d.uploads -= begin.uploads;
    d.downloads -= begin.downloads;
    d.gemm_calls -= begin.gemm_calls;
    d.permute_calls -= begin.permute_calls;
    d.stem_steps -= begin.stem_steps;
    return d;
  }

  double total_transfer_bytes() const { return bytes_to_device + bytes_to_host; }
  uint64_t kernel_calls() const { return gemm_calls + permute_calls; }
};

}  // namespace ltns::device
