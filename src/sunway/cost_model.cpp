#include "sunway/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace ltns::sunway {

double subtask_seconds_on_cg(const ArchSpec& arch, const SubtaskProfile& p) {
  double t_compute = p.flops / arch.peak_sp_flops_per_cg;
  double eff = arch.dma_efficiency(p.dma_granularity);
  double t_dma = eff > 0 ? p.dma_bytes / (arch.dma_bandwidth * eff) : 0;
  double t_rma = p.rma_bytes / arch.rma_bandwidth;
  // Permutations stream through the LDM ports and do not overlap the GEMM
  // issue slots, so their time adds to compute rather than hiding under it.
  double t_ldm = p.ldm_bytes / arch.ldm_access_bandwidth;
  return std::max({t_compute + t_ldm, t_dma, t_rma});
}

double allreduce_seconds(const ArchSpec& arch, int nodes, double bytes) {
  (void)arch;
  if (nodes <= 1) return 0;
  // Latency-bandwidth tree model with typical HPC interconnect constants.
  const double alpha = 5e-6;   // per-hop latency
  const double beta = 1e-10;   // s/byte
  double hops = std::ceil(std::log2(double(nodes)));
  return hops * (alpha + beta * bytes);
}

namespace {

ScalingPoint point(const ArchSpec& arch, const SubtaskProfile& per_task, double subtasks,
                   int nodes, double allreduce_bytes) {
  ScalingPoint sp;
  sp.nodes = nodes;
  sp.subtasks = subtasks;
  const double cgs = double(nodes) * arch.cgs_per_node;
  const double rounds = std::ceil(subtasks / cgs);
  const double t_task = subtask_seconds_on_cg(arch, per_task);
  sp.seconds = rounds * t_task + allreduce_seconds(arch, nodes, allreduce_bytes);
  sp.sustained_flops = subtasks * per_task.flops / sp.seconds;
  const double ideal = subtasks * t_task / cgs;
  sp.parallel_efficiency = ideal / sp.seconds;
  return sp;
}

}  // namespace

std::vector<ScalingPoint> strong_scaling(const ArchSpec& arch, const SubtaskProfile& per_task,
                                         double total_subtasks, const std::vector<int>& nodes,
                                         double allreduce_bytes) {
  std::vector<ScalingPoint> out;
  for (int n : nodes) out.push_back(point(arch, per_task, total_subtasks, n, allreduce_bytes));
  return out;
}

std::vector<ScalingPoint> weak_scaling(const ArchSpec& arch, const SubtaskProfile& per_task,
                                       double subtasks_per_node, const std::vector<int>& nodes,
                                       double allreduce_bytes) {
  std::vector<ScalingPoint> out;
  for (int n : nodes) {
    auto sp = point(arch, per_task, subtasks_per_node * n, n, allreduce_bytes);
    // Weak-scaling efficiency compares against the single-node time.
    auto base = point(arch, per_task, subtasks_per_node, 1, allreduce_bytes);
    sp.parallel_efficiency = base.seconds / sp.seconds;
    out.push_back(sp);
  }
  return out;
}

ScalingPoint project(const ArchSpec& arch, const SubtaskProfile& per_task, double total_subtasks,
                     int nodes) {
  if (nodes <= 0) nodes = arch.nodes_full_machine;
  return point(arch, per_task, total_subtasks, nodes, 16.0);
}

}  // namespace ltns::sunway
