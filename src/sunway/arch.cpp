#include "sunway/arch.hpp"

#include <algorithm>
#include <cmath>

namespace ltns::sunway {

double ArchSpec::dma_efficiency(double granularity_bytes) const {
  // Piecewise model fit to the paper's two anchor points: "<0.1% of peak"
  // for element-wise strided access (8 B complex floats) and ">50%" at the
  // 512 B basic granularity, saturating for large blocks. A fixed per-
  // transaction latency term dominates small transfers:
  //   eff(g) = g / (g + overhead_bytes)
  // with overhead sized so eff(512) ≈ 0.55 and eff(8) ≈ 0.0009.
  if (granularity_bytes <= 0) return 0;
  const double overhead_bytes = 419.0;  // 512/(512+419) ≈ 0.55
  double eff = granularity_bytes / (granularity_bytes + overhead_bytes);
  // Element-wise access additionally thrashes the DDR burst: extra penalty
  // below 64 B to match the <0.1% observation.
  if (granularity_bytes < 64.0) eff *= granularity_bytes / 64.0 * 0.04;
  return std::min(1.0, eff);
}

}  // namespace ltns::sunway
