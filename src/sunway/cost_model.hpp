// Cost model: turns counted work (flops, DMA bytes, granularity) into
// modeled Sunway time, and reproduces the paper's scaling/projection
// methodology (§6: measure 1024 nodes, project 107,520 nodes; Fig. 11
// strong/weak scaling; abstract: 96.1 s, 308.6 Pflops).
#pragma once

#include <vector>

#include "sunway/arch.hpp"

namespace ltns::sunway {

// Counted work of one slicing subtask executing on one core group.
struct SubtaskProfile {
  double flops = 0;
  double dma_bytes = 0;
  double dma_granularity = 512;  // bytes; drives DMA efficiency
  double rma_bytes = 0;
  // Register<->LDM traffic of the in-LDM permutations (§5.3.1); the paper
  // names this as the remaining gap between its kernels and peak.
  double ldm_bytes = 0;

  double arithmetic_intensity() const { return dma_bytes > 0 ? flops / dma_bytes : 0; }
};

// Modeled execution time of one subtask on one CG: overlap model
// max(compute, DMA, RMA) — the roofline assumption.
double subtask_seconds_on_cg(const ArchSpec& arch, const SubtaskProfile& p);

// One allReduce over `nodes` processes of `bytes` payload (latency-
// bandwidth log-tree model).
double allreduce_seconds(const ArchSpec& arch, int nodes, double bytes);

struct ScalingPoint {
  int nodes = 0;
  double subtasks = 0;
  double seconds = 0;
  double sustained_flops = 0;
  double parallel_efficiency = 0;  // vs. ideal linear scaling
};

// Strong scaling: fixed total subtask count (the paper's 65,536) spread
// over growing node counts; one subtask occupies one CG.
std::vector<ScalingPoint> strong_scaling(const ArchSpec& arch, const SubtaskProfile& per_task,
                                         double total_subtasks, const std::vector<int>& nodes,
                                         double allreduce_bytes = 16.0);

// Weak scaling: fixed subtasks per node (the paper's 16).
std::vector<ScalingPoint> weak_scaling(const ArchSpec& arch, const SubtaskProfile& per_task,
                                       double subtasks_per_node, const std::vector<int>& nodes,
                                       double allreduce_bytes = 16.0);

// Headline projection: all subtasks on `nodes` nodes (defaults to the full
// machine), returning time and sustained flops.
ScalingPoint project(const ArchSpec& arch, const SubtaskProfile& per_task, double total_subtasks,
                     int nodes = 0);

}  // namespace ltns::sunway
