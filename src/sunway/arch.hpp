// Architecture model of the SW26010pro processor and the new Sunway system
// (§2.2), used wherever the paper quotes machine numbers.
//
// This is the substitution layer for the unavailable hardware: every
// throughput-flavored result in the benchmarks is computed from counted
// work (flops, bytes at each storage level) pushed through this spec —
// mirroring how the paper itself projects the 96.1 s / 308.6 Pflops
// headline from 1024-node measurements.
#pragma once

#include <cstdint>

namespace ltns::sunway {

struct ArchSpec {
  // Topology (SW26010pro: 6 core groups of 8x8 CPEs + 1 MPE each).
  int cgs_per_node = 6;
  int cpes_per_cg = 64;
  int mpes_per_cg = 1;

  // Memory hierarchy.
  double ldm_bytes = 256.0 * 1024;         // per CPE local data memory
  double main_mem_bytes = 16e9;            // per CG; paper unites 6 CGs = 96 GB
  double dma_bandwidth = 51.2e9;           // LDM <-> main memory, per CG
  double rma_bandwidth = 800e9;            // CPE <-> CPE within a CG
  double io_bandwidth = 4e9;               // hard disk <-> main memory, per node
  double ldm_access_bandwidth = 4.6e12;    // register <-> LDM aggregate, per CG

  // Compute. Chosen so the roofline ridge sits at the paper's 42.3 flop/B:
  // peak_sp / dma_bandwidth = 42.3.
  double peak_sp_flops_per_cg = 42.3 * 51.2e9;  // ≈ 2.166 Tflops
  double dma_min_efficient_granularity = 512.0; // bytes for >50% DMA efficiency

  // System scale used for the headline projection.
  int nodes_full_machine = 107520;

  int cores_per_node() const { return cgs_per_node * (cpes_per_cg + mpes_per_cg); }
  int64_t cores_full_machine() const {
    return int64_t(nodes_full_machine) * cores_per_node();
  }
  double peak_sp_flops_per_node() const { return peak_sp_flops_per_cg * cgs_per_node; }
  double peak_sp_flops_full_machine() const {
    return peak_sp_flops_per_node() * nodes_full_machine;
  }
  // Roofline ridge point (flop/byte) between DMA and compute.
  double ridge_flop_per_byte() const { return peak_sp_flops_per_cg / dma_bandwidth; }

  // Attainable flops at arithmetic intensity `ai` (flop/byte of DMA traffic)
  // — the roofline model of Fig. 13.
  double roofline_flops(double ai) const {
    double bw_bound = ai * dma_bandwidth;
    return bw_bound < peak_sp_flops_per_cg ? bw_bound : peak_sp_flops_per_cg;
  }

  // DMA bandwidth efficiency as a function of transfer granularity (§5.3.2):
  // tiny strided transfers collapse to <0.1% of peak; ≥512 B sustains >50%.
  double dma_efficiency(double granularity_bytes) const;

  static ArchSpec sw26010pro() { return ArchSpec{}; }
};

}  // namespace ltns::sunway
