// Mixed-precision GEMM: complex<float> operands, complex<double>
// accumulation (the "mixed precision" configuration the paper's Fig. 13
// quotes at arithmetic intensity 2.6 vs 1.22 for pure single precision —
// twice the accumulator traffic per flop).
//
// Long stems chain tens of contractions; single-precision accumulation
// loses ~half a digit per fat GEMM, and the quantum-advantage workloads
// validate cross-entropy from amplitudes of magnitude ~2^-27, so the
// accumulator precision matters at scale even though the memory-bound
// analysis only sees the byte counts.
#pragma once

#include "exec/tensor.hpp"
#include "util/parallel.hpp"

namespace ltns::exec {

// C = A · B, row-major, double accumulation, result rounded to cfloat.
void cgemm_mixed(int m, int n, int k, const cfloat* a, const cfloat* b, cfloat* c,
                 ThreadPool* pool = nullptr);

// Bytes-per-flop bookkeeping for the roofline: mixed precision moves the
// 16-byte accumulator tile instead of 8-byte results.
inline double mixed_bytes_per_elem() { return 16.0; }

}  // namespace ltns::exec
