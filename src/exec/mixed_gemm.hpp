// Mixed-precision GEMM: bfloat16 operands, fp32 accumulation (the paper's
// mixed configuration — Fig. 13 quotes arithmetic intensity 2.6 vs 1.22 for
// pure single precision: half the operand bytes per flop).
//
// Operands are rounded to bf16 (round-to-nearest-even) and the reference
// fp32 accumulation chain runs on the rounded values — see
// exec/simd_kernels.hpp for the chain contract. That makes mixed output
// DETERMINISTIC (bitwise identical across ISA tiers, device backends and
// process counts) while its distance from the fp32 reference is bounded in
// ULPs, not bits: the pinned regression corpus in
// tests/test_kernels_parity.cpp and the e2e --compare-mode=ulp:<N> jobs
// own that tolerance.
#pragma once

#include "exec/tensor.hpp"
#include "util/parallel.hpp"

namespace ltns::exec {

// C = A · B, row-major, bf16-rounded operands, fp32 accumulation, C
// overwritten. This is the portable-tier entry point; the simd backend
// dispatches the same chain through its vector tiers (cgemm_simd with
// Precision::kBf16) to the same bits.
void cgemm_mixed(int m, int n, int k, const cfloat* a, const cfloat* b, cfloat* c,
                 ThreadPool* pool = nullptr);

// Bytes-per-flop bookkeeping for the roofline: bf16 operands halve the
// streamed operand bytes (4 B/elem vs 8 B/elem complex-float).
inline double mixed_bytes_per_elem() { return 4.0; }

}  // namespace ltns::exec
