// Slice runner: the process-level loop over slicing subtasks (§2.1.1).
//
// The 2^|S| subtasks are independent; each computes the same (shrunken)
// contraction tree with its sliced indices fixed, and the results are
// summed — the paper's single allReduce at the end of the program. With
// open output edges the per-subtask results are elementwise-added tensors
// (a batch of correlated amplitudes).
//
// Three executors distribute the subtasks:
//   kInnerPool     — subtasks run serially; the ThreadPool parallelizes the
//                    secondary-slicing subtasks *inside* each one (the CPE
//                    view of a single core group).
//   kStaticPool    — subtasks statically partitioned across the ThreadPool,
//                    one contiguous chunk per worker (the seed behaviour of
//                    a multi-node shard; no rebalancing).
//   kWorkStealing  — the runtime::SliceScheduler: same initial shards, but
//                    idle workers steal half a loaded worker's backlog, so
//                    skewed per-subtask costs no longer serialize the run.
// All three accumulate through runtime::ReductionTree, a fixed tournament
// over task indices, so the summed tensor is bitwise identical across
// executors and worker counts.
#pragma once

#include <cstdint>

#include "exec/fused_executor.hpp"
#include "exec/tree_executor.hpp"
#include "runtime/executor_stats.hpp"
#include "runtime/memory_stats.hpp"
#include "runtime/slice_scheduler.hpp"

namespace ltns::exec {

enum class SliceExecutor {
  kInnerPool,
  kStaticPool,
  kWorkStealing,
};

struct SliceRunOptions {
  // Run only assignments [first_task, first_task + num_tasks); num_tasks = 0
  // means everything from first_task to 2^|S|. Benches and multi-process
  // shards use a subset, exactly like the paper measures 1024 nodes and
  // projects the full machine. The window is clamped to [0, 2^|S|): a
  // first_task past the end runs zero tasks (completed, empty accumulated
  // tensor) and an overflowing num_tasks runs only the remaining range.
  uint64_t first_task = 0;
  uint64_t num_tasks = 0;
  ThreadPool* pool = nullptr;  // kInnerPool / kStaticPool; null -> global
  // When set, each subtask runs through the fused (secondary-slicing)
  // executor over the stem instead of step-by-step.
  const FusedPlan* fused = nullptr;
  SliceExecutor executor = SliceExecutor::kInnerPool;
  runtime::SliceScheduler* scheduler = nullptr;  // kWorkStealing; null -> global
  uint64_t grain = 1;  // tasks per deque pop under work stealing
  // Device backend every subtask's kernels run through (device/backend.hpp);
  // null = the raw host path. Conforming backends are bitwise identical, so
  // the accumulated tensor does not depend on this choice.
  device::DeviceBackend* backend = nullptr;
};

struct SliceRunResult {
  // Sum over the subtasks in tournament order; EMPTY (size 0) when the run
  // was cancelled before every subtask finished (completed == false).
  Tensor accumulated;
  bool completed = false;
  uint64_t tasks_run = 0;
  ExecStats stats;         // merged over subtasks
  double wall_seconds = 0;
  runtime::ExecutorSnapshot executor_stats;  // this run only
  runtime::MemoryStats memory;
  uint64_t reduce_merges = 0;
};

SliceRunResult run_sliced(const tn::ContractionTree& tree, const LeafProvider& leaves,
                          const core::SliceSet& slices, const SliceRunOptions& opt = {});

}  // namespace ltns::exec
