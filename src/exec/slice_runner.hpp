// Slice runner: the process-level loop over slicing subtasks (§2.1.1).
//
// The 2^|S| subtasks are independent; each computes the same (shrunken)
// contraction tree with its sliced indices fixed, and the results are
// summed — the paper's single allReduce at the end of the program. With
// open output edges the per-subtask results are elementwise-added tensors
// (a batch of correlated amplitudes).
#pragma once

#include <cstdint>
#include <optional>

#include "exec/fused_executor.hpp"
#include "exec/tree_executor.hpp"

namespace ltns::exec {

struct SliceRunOptions {
  // Run only assignments [first_task, first_task + num_tasks); num_tasks = 0
  // means all 2^|S|. Benches use a subset and extrapolate, exactly like the
  // paper measures 1024 nodes and projects the full machine.
  uint64_t first_task = 0;
  uint64_t num_tasks = 0;
  ThreadPool* pool = nullptr;
  // When set, each subtask runs through the fused (secondary-slicing)
  // executor over the stem instead of step-by-step.
  const FusedPlan* fused = nullptr;
};

struct SliceRunResult {
  Tensor accumulated;      // sum over executed subtasks
  uint64_t tasks_run = 0;
  ExecStats stats;         // merged over subtasks
  double wall_seconds = 0;
};

SliceRunResult run_sliced(const tn::ContractionTree& tree, const LeafProvider& leaves,
                          const core::SliceSet& slices, const SliceRunOptions& opt = {});

}  // namespace ltns::exec
