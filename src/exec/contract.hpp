// Pairwise tensor contraction via TTGT (Transpose-Transpose-GEMM-Transpose,
// the 2021 Gordon Bell kernel this paper builds on).
//
// contract(A, B): the shared edge ids are summed. A is permuted to
// [keepA..., shared...], B to [shared..., keepB...], one GEMM of shape
// (2^|keepA| × 2^|shared| × 2^|keepB|) produces the output in layout
// [keepA..., keepB...] directly — no output transpose needed for this index
// convention, which is why the executors keep "free A then free B" order.
#pragma once

#include <vector>

#include "exec/gemm.hpp"
#include "exec/permute.hpp"
#include "exec/tensor.hpp"
#include "util/parallel.hpp"

namespace ltns::device {
class DeviceBackend;
struct DeviceStats;
}  // namespace ltns::device

namespace ltns::exec {

struct ContractPlan {
  std::vector<int> shared;      // summed edge ids (A's relative order)
  std::vector<int> a_order;     // permuted A layout: keepA + shared
  std::vector<int> b_order;     // permuted B layout: shared + keepB
  std::vector<int> out_ixs;     // keepA + keepB
  int m = 1, n = 1, k = 1;      // GEMM shape (2^keepA, 2^keepB, 2^shared)
  bool a_identity = false;      // permutation of A is a no-op
  bool b_identity = false;
};

ContractPlan plan_contract(const std::vector<int>& a_ixs, const std::vector<int>& b_ixs);

struct ContractStats {
  double flops = 0;
  double permute_elems = 0;   // elements moved by transposes
  double gemm_seconds = 0;
  double permute_seconds = 0;
};

// Contracts A with B over all shared edges. `pool` parallelizes the GEMM;
// stats (optional) accumulate. When `backend` is set the permute and GEMM
// kernels run through it (and `dstats`, optional, receives its transfer/
// kernel accounting); a null backend is the raw host path, bitwise
// identical to the "host" backend by construction.
Tensor contract(const Tensor& a, const Tensor& b, ThreadPool* pool = nullptr,
                ContractStats* stats = nullptr, device::DeviceBackend* backend = nullptr,
                device::DeviceStats* dstats = nullptr);

// Reference implementation: explicit loops over all index assignments.
// Exponential; for tests on small tensors only.
Tensor contract_naive(const Tensor& a, const Tensor& b);

}  // namespace ltns::exec
