#include "exec/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

namespace ltns::exec {

void cgemm_naive(int m, int n, int k, const cfloat* a, const cfloat* b, cfloat* c) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      cfloat acc{0, 0};
      for (int p = 0; p < k; ++p) acc += a[size_t(i) * k + p] * b[size_t(p) * n + j];
      c[size_t(i) * n + j] = acc;
    }
  }
}

namespace {

// 4x4 register tile over a K-strip. Split-complex accumulation keeps the
// compiler free to vectorize the float math.
inline void micro_4x4(int k, const cfloat* a, int lda, const cfloat* b, int ldb, cfloat* c,
                      int ldc) {
  float cr[4][4] = {}, ci[4][4] = {};
  for (int p = 0; p < k; ++p) {
    float br[4], bi[4];
    for (int j = 0; j < 4; ++j) {
      br[j] = b[size_t(p) * ldb + j].real();
      bi[j] = b[size_t(p) * ldb + j].imag();
    }
    for (int i = 0; i < 4; ++i) {
      const cfloat av = a[size_t(i) * lda + p];
      const float ar = av.real(), ai = av.imag();
      for (int j = 0; j < 4; ++j) {
        cr[i][j] += ar * br[j] - ai * bi[j];
        ci[i][j] += ar * bi[j] + ai * br[j];
      }
    }
  }
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) c[size_t(i) * ldc + j] += cfloat(cr[i][j], ci[i][j]);
}

// Generic edge tile.
inline void micro_edge(int mm, int nn, int k, const cfloat* a, int lda, const cfloat* b, int ldb,
                       cfloat* c, int ldc) {
  for (int i = 0; i < mm; ++i)
    for (int j = 0; j < nn; ++j) {
      cfloat acc{0, 0};
      for (int p = 0; p < k; ++p) acc += a[size_t(i) * lda + p] * b[size_t(p) * ldb + j];
      c[size_t(i) * ldc + j] += acc;
    }
}

constexpr int kKc = 256;  // K-panel so a 4-row A strip + 4-col B strip fit in L1

void cgemm_rows(int m0, int m1, int n, int k, const cfloat* a, const cfloat* b, cfloat* c) {
  for (int i = m0; i < m1; ++i) std::memset(c + size_t(i) * n, 0, size_t(n) * sizeof(cfloat));
  for (int kp = 0; kp < k; kp += kKc) {
    const int kc = std::min(kKc, k - kp);
    int i = m0;
    for (; i + 4 <= m1; i += 4) {
      int j = 0;
      for (; j + 4 <= n; j += 4)
        micro_4x4(kc, a + size_t(i) * k + kp, k, b + size_t(kp) * n + j, n, c + size_t(i) * n + j,
                  n);
      if (j < n)
        micro_edge(4, n - j, kc, a + size_t(i) * k + kp, k, b + size_t(kp) * n + j, n,
                   c + size_t(i) * n + j, n);
    }
    if (i < m1)
      micro_edge(m1 - i, n, kc, a + size_t(i) * k + kp, k, b + size_t(kp) * n, n,
                 c + size_t(i) * n, n);
  }
}

}  // namespace

void cgemm(int m, int n, int k, const cfloat* a, const cfloat* b, cfloat* c, ThreadPool* pool) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    std::memset(c, 0, size_t(m) * n * sizeof(cfloat));
    return;
  }
  // Parallelize across row panels only when the work amortizes the fork.
  const double work = double(m) * n * k;
  if (pool != nullptr && pool->size() > 1 && work > 1 << 16) {
    pool->parallel_for(size_t(m), [&](int, size_t b0, size_t e0) {
      cgemm_rows(int(b0), int(e0), n, k, a, b, c);
    });
  } else {
    cgemm_rows(0, m, n, k, a, b, c);
  }
}

}  // namespace ltns::exec
