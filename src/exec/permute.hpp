// Tensor permutation kernels (§5.1, §5.3.1).
//
// Permutations sit before every fused contraction step and are one of the
// hot spots of the TTGT pipeline. Three strategies, mirroring the paper's
// discussion:
//   * naive      — in-situ index computation per element, O(N·rank) time,
//                  O(1) extra space;
//   * mapped     — a pre-computed map (O(N) space) applied as a gather,
//                  amortized across repeated applications;
//   * reduced    — the paper's recursion-formula map reduction: when the
//                  last m axes are unpermuted, elements move in contiguous
//                  blocks of 2^m, the map shrinks to N / 2^m entries and the
//                  inner copy is a memcpy (map[i+k] = map[i] + k·offset is
//                  the same observation applied to leading unpermuted axes).
#pragma once

#include <cstdint>
#include <vector>

#include "exec/tensor.hpp"

namespace ltns::exec {

struct PermuteStats {
  size_t elements = 0;
  size_t map_entries = 0;   // size of the map actually materialized
  size_t block_elems = 1;   // contiguous copy granularity
};

// out axis j takes in axis perm[j]; returns the permutation or aborts if
// new_ixs is not a permutation of t.ixs().
std::vector<int> permutation_between(const std::vector<int>& from_ixs,
                                     const std::vector<int>& to_ixs);

// Reference implementation (naive).
Tensor permute_naive(const Tensor& t, const std::vector<int>& new_ixs);

// Reusable pre-computed map with §5.3.1 block reduction.
class PermuteMap {
 public:
  PermuteMap(const std::vector<int>& perm, int rank);

  int rank() const { return rank_; }
  size_t map_entries() const { return map_.size(); }
  size_t block_elems() const { return size_t(1) << block_axes_; }
  int block_axes() const { return block_axes_; }
  // Raw map (out block index -> in element offset) for the vectorized
  // gather/blocked-copy apply in simd_kernels.
  const uint32_t* map_data() const { return map_.data(); }

  // out must have 2^rank elements.
  void apply(const cfloat* in, cfloat* out) const;

 private:
  int rank_;
  int block_axes_;            // trailing unpermuted axes, moved as one block
  std::vector<uint32_t> map_; // out block index -> in element offset
};

// Fast path used by the contraction planner: builds (or reuses) the map and
// applies it. Identity permutations are returned as plain copies.
Tensor permute(const Tensor& t, const std::vector<int>& new_ixs, PermuteStats* stats = nullptr);

}  // namespace ltns::exec
