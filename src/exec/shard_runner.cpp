#include "exec/shard_runner.hpp"

#include <csignal>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <thread>

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "device/backend.hpp"
#include "dist/checkpoint.hpp"
#include "dist/elastic.hpp"
#include "dist/shard_merge.hpp"
#include "dist/shard_plan.hpp"
#include "dist/shard_stream.hpp"
#include "obs/trace.hpp"
#include "runtime/slice_scheduler.hpp"
#include "util/timer.hpp"

namespace ltns::exec {

namespace {

int workers_for(const ShardRunOptions& opt) {
  if (opt.workers_per_process > 0) return opt.workers_per_process;
  const int hw = int(std::max(1u, std::thread::hardware_concurrency()));
  return std::max(1, hw / std::max(1, opt.processes));
}

std::string backend_name_for(const ShardRunOptions& opt, int shard_id) {
  if (!opt.backends.empty()) return opt.backends[size_t(shard_id) % opt.backends.size()];
  return opt.backend.empty() ? "host" : opt.backend;
}

// Worker process body: stream the shard window's block partials over the
// shared protocol, then exit. Never returns; exit code 0 = clean, 1 =
// reported error frame.
[[noreturn]] void worker_main(int fd, int shard_id, dist::Shard shard,
                              const tn::ContractionTree& tree, const LeafProvider& leaves,
                              const core::SliceSet& slices, const ShardRunOptions& opt) {
  // A dead coordinator must surface as a write error, not SIGPIPE death.
  std::signal(SIGPIPE, SIG_IGN);
  // The fork inherited the parent's armed tracer, ring buffers and all:
  // drop the parent's events and re-home this process under its own rank so
  // the merged timeline renders one lane per shard.
  if (obs::Tracer::instance().enabled()) obs::Tracer::instance().reset_after_fork(shard_id);
  try {
    // Fresh executor resources: threads do not survive fork, so the
    // parent's (global) pools are unusable husks in this process.
    const int workers = workers_for(opt);
    ThreadPool pool(workers);
    runtime::SliceScheduler sched(workers);
    const std::string backend_name = backend_name_for(opt, shard_id);
    auto backend = device::make_backend(backend_name);
    dist::ShardStreamOptions so;
    so.executor = opt.executor;
    so.grain = opt.grain;
    so.pool = &pool;
    so.scheduler = &sched;
    so.fused = opt.fused;
    so.backend = backend.get();
    so.backend_name = backend_name;
    if (opt.elastic) {
      dist::ElasticWorkerOptions eo;
      eo.stream = so;
      eo.worker_id = shard_id;
      eo.heartbeat_seconds = opt.heartbeat_seconds;
      dist::serve_elastic_shard(fd, tree, leaves, slices, eo);
    } else {
      dist::stream_shard_window(fd, shard_id, shard.first, shard.count, tree, leaves, slices,
                                so);
    }
    ::close(fd);
    std::_Exit(0);
  } catch (const std::exception& e) {
    try {
      dist::ByteWriter w;
      w.put_string(e.what());
      dist::write_frame(fd, dist::FrameType::kError, w);
    } catch (...) {
    }
    std::_Exit(1);
  }
}

struct Child {
  pid_t pid = -1;
  int fd = -1;
};

void append_error(std::string* error, const std::string& msg) {
  if (!error->empty()) *error += "; ";
  *error += msg;
}

}  // namespace

ShardRunResult run_sharded(const tn::ContractionTree& tree, const LeafProvider& leaves,
                           const core::SliceSet& slices, const ShardRunOptions& opt) {
  ShardRunResult res;
  const auto sliced = slices.to_vector();
  if (sliced.size() >= 57) {
    res.error = "too many sliced edges";
    return res;
  }
  const uint64_t total = uint64_t(1) << sliced.size();
  const int processes = std::max(1, opt.processes);
  const auto plan = dist::make_shard_plan(total, processes);

  Timer wall;
  std::vector<Child> kids(size_t(processes), Child{});
  for (int p = 0; p < processes; ++p) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      append_error(&res.error, "socketpair failed");
      break;
    }
    pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      append_error(&res.error, "fork failed");
      break;
    }
    if (pid == 0) {
      // Child: drop every inherited coordinator-side descriptor.
      for (const auto& k : kids)
        if (k.fd >= 0) ::close(k.fd);
      ::close(sv[0]);
      if (opt.fault_shard == p) std::_Exit(17);  // test hook: die unreported
      worker_main(sv[1], p, plan[size_t(p)], tree, leaves, slices, opt);
    }
    ::close(sv[1]);
    kids[size_t(p)] = {pid, sv[0]};
  }

  dist::ShardMerger merger(total);
  res.shards.assign(size_t(processes), {});
  for (int p = 0; p < processes; ++p) res.shards[size_t(p)].shard = p;
  if (opt.elastic) {
    // Elastic: one poll loop leases bounded ranges to whichever worker is
    // idle, revokes and requeues on death or stall, and keeps the
    // tournament bookkeeping range-granular — losing a worker costs a
    // lease of recomputation, not the run.
    dist::ElasticOptions eo;
    eo.lease_size = opt.lease_size;
    eo.heartbeat_seconds = opt.heartbeat_seconds;
    eo.stall_timeout_seconds = opt.stall_timeout_seconds;
    // Fork mode has no listener, so nobody can rejoin — but a fleet where
    // every worker is stalled (wedged, not dead) must still end in an
    // error rather than a hang, and this timeout is what bounds that wait.
    eo.accept_timeout_seconds =
        std::max(60, int(opt.stall_timeout_seconds * 2));
    dist::ElasticCoordinator coord(total, processes, eo);
    if (!opt.metrics_out.empty() && opt.metrics_interval_seconds > 0)
      coord.set_metrics_snapshot(opt.metrics_out, opt.metrics_interval_seconds);
    // Durable run ledger: replay an existing journal into the fresh
    // ledger + merger (resume), then open the write-ahead journal the
    // coordinator spills every completed range into.
    std::unique_ptr<dist::CheckpointWriter> journal;
    bool spill_ok = true;
    if (!opt.spill_dir.empty()) {
      try {
        dist::CheckpointMeta meta;
        meta.total = total;
        meta.home_workers = processes;
        meta.lease_size = coord.ledger().lease_size();
        meta.run_id = opt.spill_run_id;
        journal = dist::open_or_resume_journal(opt.spill_dir, meta, opt.resume,
                                               opt.spill_fsync_seconds, &coord.mutable_ledger(),
                                               &merger);
        coord.set_journal(journal.get());
      } catch (const std::exception& e) {
        // A coordinator that cannot spill must fail the run rather than
        // silently drop its durability guarantee.
        append_error(&res.error, e.what());
        spill_ok = false;
      }
    }
    if (spill_ok) {
      for (int p = 0; p < processes; ++p) {
        if (kids[size_t(p)].fd >= 0) {
          coord.add_worker(kids[size_t(p)].fd, p);
          kids[size_t(p)].fd = -1;  // the coordinator owns it now
        }
      }
      auto err = coord.run(&merger);
      if (!err.empty()) append_error(&res.error, err);
    } else {
      // Closing the sockets EOFs the already-forked workers so the
      // waitpid loop below reaps them instead of hanging.
      for (auto& kid : kids) {
        if (kid.fd >= 0) ::close(kid.fd);
        kid.fd = -1;
      }
    }
    for (const auto& t : coord.telemetry())
      if (t.shard >= 0 && t.shard < processes) res.shards[size_t(t.shard)] = t;
    res.rebalance = coord.ledger().stats();
    if (journal && res.error.empty()) {
      // Clean finish: close the writer, then shrink the journal to its
      // single-span form — a crash-loop supervisor's unconditional --resume
      // replays one record instead of re-parsing every lease ever spilled.
      coord.set_journal(nullptr);
      journal.reset();
      try {
        dist::compact_checkpoint(opt.spill_dir);
      } catch (const std::exception&) {
        // Compaction is an optimization; the full journal still resumes.
      }
    }
  } else {
    // Static: drain every worker's fixed-window frame stream; a worker
    // that dies mid-run closes its socket, so the read loop ends in EOF
    // and reports instead of hanging.
    for (int p = 0; p < processes; ++p) {
      Child& kid = kids[size_t(p)];
      if (kid.fd < 0) continue;
      auto err = dist::drain_shard_stream(kid.fd, &merger, &res.shards[size_t(p)]);
      if (!err.empty()) append_error(&res.error, "shard " + std::to_string(p) + ": " + err);
      ::close(kid.fd);
      kid.fd = -1;
    }
  }

  for (int p = 0; p < processes; ++p) {
    if (kids[size_t(p)].pid < 0) continue;
    int st = 0;
    ::waitpid(kids[size_t(p)].pid, &st, 0);
    if (!WIFEXITED(st) || WEXITSTATUS(st) != 0) {
      // An elastic run absorbs worker deaths by design (the requeue is the
      // feature under test in the chaos job); only report an abnormal exit
      // when it actually cost us the run, and only when the worker didn't
      // already explain itself.
      if (res.error.empty() && !opt.elastic)
        append_error(&res.error, "shard " + std::to_string(p) + " exited abnormally (status " +
                                     std::to_string(st) + ")");
    }
  }

  auto agg = dist::aggregate_telemetry(res.shards);
  res.tasks_run += agg.tasks_run;
  res.reduce_merges += agg.reduce_merges;
  res.stats.merge(agg.stats);
  res.memory.merge(agg.memory);
  res.executor_stats.merge(agg.executor);
  // Surface the lease telemetry through the aggregated snapshot, so the
  // rebalance counters ride every existing telemetry path (API + CLI).
  res.executor_stats.ranges_stolen += res.rebalance.ranges_stolen;
  res.executor_stats.ranges_reissued += res.rebalance.ranges_reissued;
  res.executor_stats.straggler_wait_seconds += res.rebalance.straggler_wait_seconds;
  res.wall_seconds = wall.seconds();
  if (!res.error.empty()) return res;
  if (!merger.complete()) {
    res.error = "reduction incomplete despite clean workers";
    return res;
  }
  res.reduce_merges += merger.merges();
  res.accumulated = merger.take_root();
  res.completed = true;
  return res;
}

}  // namespace ltns::exec
