// Multi-process shard runner: run_sharded(), alongside run_sliced().
//
// Splits the 2^|S| slicing subtasks into one contiguous window per process
// (dist::make_shard_plan), forks one worker process per shard over a
// socketpair, and merges the partial tensors the workers ship back in fixed
// tournament order (dist::ShardMerger) — the process-level layer of the
// paper's headline runs, where nodes each take a task range and the program
// ends in a single allReduce.
//
// Bitwise stability: each worker decomposes its window into tournament-
// aligned blocks and reduces every block with the same ReductionTree a
// single-process run uses, so each shipped partial is bit-identical to the
// corresponding subtree node of the single-process tournament; the
// coordinator finishes the remaining levels under the same merge rules.
// The accumulated tensor is therefore bitwise identical to run_sliced()
// over the full range for ANY process count — asserted by tests/test_dist
// and the CI `distributed` job.
//
// Telemetry: each worker reports a dist::ShardTelemetry (executor snapshot,
// memory traffic, exec stats, wall time); the coordinator keeps the
// per-shard records and aggregates them into the SliceRunResult-shaped
// fields of ShardRunResult.
#pragma once

#include <string>
#include <vector>

#include "dist/lease.hpp"
#include "dist/wire.hpp"
#include "exec/slice_runner.hpp"

namespace ltns::exec {

struct ShardRunOptions {
  int processes = 2;
  // Scheduler/pool width inside each worker process; 0 divides the host's
  // hardware concurrency evenly across processes (at least 1).
  int workers_per_process = 0;
  SliceExecutor executor = SliceExecutor::kWorkStealing;
  uint64_t grain = 1;          // tasks per deque pop under work stealing
  const FusedPlan* fused = nullptr;
  // Elastic mode: instead of one fixed window per process, workers lease
  // bounded task ranges from a coordinator-owned queue (dist/elastic.hpp);
  // a straggler's untouched ranges are stolen by idle peers and a dead
  // worker's leases are revoked and re-issued, so the run survives losing
  // processes — and stays bitwise identical to a single-process run. The
  // static one-shot driver remains the default.
  bool elastic = false;
  uint64_t lease_size = 0;            // tasks per lease; 0 = auto
  double heartbeat_seconds = 0.2;     // worker liveness period
  double stall_timeout_seconds = 30;  // silent-with-leases -> revoke + requeue
  // Durable run ledger (dist/checkpoint.hpp; elastic mode only): journal
  // every completed lease range (with its block payloads) to
  // `<spill_dir>/ledger.journal`, fsync'd every `spill_fsync_seconds`
  // (<= 0 = after every record). With `resume`, an existing journal is
  // replayed first: recorded ranges are fed straight to the merger and
  // only unfinished ranges are re-offered to workers — the accumulated
  // tensor stays bitwise identical to an uninterrupted run. `spill_run_id`
  // fingerprints the job; a journal whose fingerprint disagrees is
  // refused (resuming a different run would merge foreign tensors).
  std::string spill_dir;
  bool resume = false;
  double spill_fsync_seconds = 0;
  std::string spill_run_id;
  // Device backend each worker process constructs after the fork (backends
  // never cross process boundaries, so a NAME travels rather than a
  // pointer). `backends`, when non-empty, assigns per-shard names —
  // backends[shard % backends.size()] — for heterogeneous fleets; every
  // conforming backend is bitwise identical, so mixing them never changes
  // the merged tensor.
  std::string backend = "host";
  std::vector<std::string> backends;
  // Periodic live-metrics snapshot (elastic mode only): the coordinator
  // writes `metrics_out` (ltns.metrics.v1 JSON + .prom twin) every
  // `metrics_interval_seconds` while the run is live, and once more at the
  // end. <= 0 disables the periodic writes.
  std::string metrics_out;
  double metrics_interval_seconds = 0;
  // Test hook: the worker for this shard index exits without reporting, so
  // the failure path (static: clean error; elastic: requeue + completion)
  // can be exercised. -1 = off. The elastic chaos hooks (mid-run SIGKILL,
  // per-task straggler sleep) come from the LTNS_CHAOS_* env instead — see
  // dist::chaos_from_env.
  int fault_shard = -1;
};

struct ShardRunResult {
  // Merged over all shards in tournament order; empty when a shard failed
  // (completed == false, `error` says which and why).
  Tensor accumulated;
  bool completed = false;
  std::string error;
  uint64_t tasks_run = 0;
  ExecStats stats;                           // merged over shards
  double wall_seconds = 0;                   // coordinator wall time
  runtime::ExecutorSnapshot executor_stats;  // aggregated over shards
  runtime::MemoryStats memory;
  uint64_t reduce_merges = 0;                // worker + coordinator merges
  std::vector<dist::ShardTelemetry> shards;  // one record per process
  dist::RebalanceStats rebalance;            // elastic-mode lease telemetry
};

ShardRunResult run_sharded(const tn::ContractionTree& tree, const LeafProvider& leaves,
                           const core::SliceSet& slices, const ShardRunOptions& opt = {});

}  // namespace ltns::exec
