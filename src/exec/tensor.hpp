// DenseTensor for qubit-index tensor networks.
//
// Every dimension has extent 2 (the paper's networks have w(e) = 2 for all
// edges); an index is identified by its network edge id. Layout is
// row-major with ixs[0] slowest-varying, so axis d of a rank-r tensor
// occupies bit (r-1-d) of the linear offset. Elements are complex<float> —
// the paper's single-precision configuration; amplitudes are accumulated in
// complex<double> at the top level.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "util/aligned_alloc.hpp"

namespace ltns::exec {

using cfloat = std::complex<float>;

// Payload alignment: every Tensor's storage starts on a 64-byte boundary so
// blocked/SIMD kernels and device uploads never take an unaligned path.
inline constexpr size_t kTensorAlignment = 64;
static_assert(kTensorAlignment % alignof(cfloat) == 0 &&
                  (kTensorAlignment & (kTensorAlignment - 1)) == 0,
              "tensor alignment must be a power of two multiple of the element alignment");
using AlignedCfloatVec = std::vector<cfloat, util::AlignedAllocator<cfloat, kTensorAlignment>>;

class Tensor {
 public:
  Tensor() = default;
  // Zero-initialized tensor over the given (edge-id) indices.
  explicit Tensor(std::vector<int> ixs);
  // Copies `data` into aligned storage (the single data constructor keeps
  // brace-initialized payloads unambiguous).
  Tensor(std::vector<int> ixs, std::vector<cfloat> data);

  static Tensor scalar(cfloat v) {
    Tensor t(std::vector<int>{});
    t.data_[0] = v;
    return t;
  }

  int rank() const { return int(ixs_.size()); }
  size_t size() const { return data_.size(); }
  const std::vector<int>& ixs() const { return ixs_; }
  const AlignedCfloatVec& data() const { return data_; }
  AlignedCfloatVec& data() { return data_; }
  cfloat* raw() { return data_.data(); }
  const cfloat* raw() const { return data_.data(); }

  // Axis position of edge id `edge`, or -1.
  int axis_of(int edge) const;
  // Bit position (from LSB) of axis d in the linear offset.
  int bit_of_axis(int d) const { return rank() - 1 - d; }

  cfloat at(const std::vector<int>& bits) const;
  void set(const std::vector<int>& bits, cfloat v);

  // Returns the rank-1 sub-tensor with `edge` fixed to `bit`.
  Tensor fixed(int edge, int bit) const;
  // Fixes several edges at once; `bits` holds one bit per entry of `edges`.
  // Edges not present in this tensor are ignored (their bit is irrelevant
  // here; slicing fixes them globally).
  Tensor fixed_all(const std::vector<int>& edges, uint64_t bits) const;

  // Single-pass strided gather: like fixed_all but O(output size) — one
  // contiguous-block copy per stride run. This is the DMA-get primitive of
  // the fused executor (§5.2); `block_elems_out` (optional) receives the
  // contiguous granularity in elements.
  Tensor gather_fixed(const std::vector<int>& edges, uint64_t bits,
                      size_t* block_elems_out = nullptr) const;

  // Releases the payload (used by executors to bound live memory).
  void drop() { data_.clear(); data_.shrink_to_fit(); }

  // Frobenius norm, squared (double accumulation).
  double norm2() const;

 private:
  std::vector<int> ixs_;
  AlignedCfloatVec data_;
};

// Random tensor with unit-normal entries (tests, benchmarks).
Tensor random_tensor(std::vector<int> ixs, uint64_t seed);

// Max |a-b| over elements; tensors must have identical index *order*.
double max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace ltns::exec
