// Step-by-step contraction-tree executor — the baseline thread-level
// strategy (§5.1 "previous works optimize on thread-level step by step").
//
// Executes one slicing subtask: leaf tensors have their sliced indices fixed
// to the bits of the subtask assignment, then the tree is contracted in
// postorder, each step as one TTGT (permute + GEMM) against main memory.
// Instrumentation counts flops and the main-memory traffic of every step —
// the numbers the Fig. 12 / Fig. 13 benches feed into the Sunway model.
#pragma once

#include <functional>
#include <vector>

#include "core/slicing.hpp"
#include "device/stats.hpp"
#include "exec/contract.hpp"
#include "tn/contraction_tree.hpp"

namespace ltns::exec {

struct ExecStats {
  double flops = 0;
  double bytes_main = 0;       // tensor reads+writes against main memory
  double permute_elems = 0;
  double gemm_seconds = 0;
  double permute_seconds = 0;
  double memory_seconds = 0;   // gather/scatter & leaf slicing time
  size_t peak_live_elems = 0;  // memory high-water mark
  device::DeviceStats device;  // backend transfer/kernel telemetry

  void merge(const ExecStats& o);
  // Arithmetic intensity (flop per main-memory byte).
  double arithmetic_intensity() const { return bytes_main > 0 ? flops / bytes_main : 0; }
};

// Leaf tensors are provided per *network vertex id* via this accessor.
using LeafProvider = std::function<const Tensor&(tn::VertId)>;

// Executes the subtask of `tree` in which each sliced edge (order of
// `sliced_edges`) is fixed to the corresponding bit of `assignment`.
// Returns the root tensor (scalar if the network is closed). `backend`
// (optional) routes every permute/GEMM through a device backend — output
// stays bitwise identical for any conforming backend.
Tensor execute_tree(const tn::ContractionTree& tree, const LeafProvider& leaves,
                    const std::vector<int>& sliced_edges, uint64_t assignment,
                    ThreadPool* pool = nullptr, ExecStats* stats = nullptr,
                    device::DeviceBackend* backend = nullptr);

// Executes only the subtree rooted at `node` (used to pre-contract branches
// for the fused executor).
Tensor execute_subtree(const tn::ContractionTree& tree, int node, const LeafProvider& leaves,
                       const std::vector<int>& sliced_edges, uint64_t assignment,
                       ThreadPool* pool = nullptr, ExecStats* stats = nullptr,
                       device::DeviceBackend* backend = nullptr);

}  // namespace ltns::exec
