#include "exec/permute.hpp"

#include <cassert>
#include <cstring>

namespace ltns::exec {

std::vector<int> permutation_between(const std::vector<int>& from_ixs,
                                     const std::vector<int>& to_ixs) {
  assert(from_ixs.size() == to_ixs.size());
  std::vector<int> perm(to_ixs.size());
  for (size_t j = 0; j < to_ixs.size(); ++j) {
    int found = -1;
    for (size_t d = 0; d < from_ixs.size(); ++d)
      if (from_ixs[d] == to_ixs[j]) {
        found = int(d);
        break;
      }
    assert(found >= 0 && "to_ixs is not a permutation of from_ixs");
    perm[j] = found;
  }
  return perm;
}

Tensor permute_naive(const Tensor& t, const std::vector<int>& new_ixs) {
  auto perm = permutation_between(t.ixs(), new_ixs);
  const int r = t.rank();
  Tensor out(new_ixs);
  // srcpos[p] = bit position in the input of the axis feeding output bit p.
  std::vector<int> srcpos(static_cast<size_t>(r), 0);
  for (int j = 0; j < r; ++j) srcpos[size_t(r - 1 - j)] = r - 1 - perm[size_t(j)];
  const size_t n = t.size();
  for (size_t o = 0; o < n; ++o) {
    size_t in = 0;
    for (int p = 0; p < r; ++p) in |= ((o >> p) & 1) << srcpos[size_t(p)];
    out.data()[o] = t.data()[in];
  }
  return out;
}

PermuteMap::PermuteMap(const std::vector<int>& perm, int rank) : rank_(rank) {
  // Trailing axes with perm[j] == j move as one contiguous block — this is
  // the §5.3.1 reduction: the map only addresses the leading axes.
  int m = 0;
  while (m < rank && perm[size_t(rank - 1 - m)] == rank - 1 - m) ++m;
  block_axes_ = m;
  const int lead = rank - m;
  // in-bit position for each *leading* out bit p (block bits excluded).
  std::vector<int> srcpos(static_cast<size_t>(lead), 0);
  for (int j = 0; j < lead; ++j) srcpos[size_t(lead - 1 - j)] = rank - 1 - perm[size_t(j)];
  map_.resize(size_t(1) << lead);
  for (size_t o = 0; o < map_.size(); ++o) {
    size_t in = 0;
    for (int p = 0; p < lead; ++p) in |= ((o >> p) & 1) << srcpos[size_t(p)];
    map_[o] = uint32_t(in);
  }
}

void PermuteMap::apply(const cfloat* in, cfloat* out) const {
  const size_t block = block_elems();
  if (block == 1) {
    for (size_t o = 0; o < map_.size(); ++o) out[o] = in[map_[o]];
    return;
  }
  for (size_t o = 0; o < map_.size(); ++o)
    std::memcpy(out + o * block, in + map_[o], block * sizeof(cfloat));
}

Tensor permute(const Tensor& t, const std::vector<int>& new_ixs, PermuteStats* stats) {
  if (t.ixs() == new_ixs) {
    if (stats) {
      stats->elements = t.size();
      stats->map_entries = 0;
      stats->block_elems = t.size();
    }
    return t;
  }
  auto perm = permutation_between(t.ixs(), new_ixs);
  PermuteMap map(perm, t.rank());
  Tensor out(new_ixs);
  map.apply(t.raw(), out.raw());
  if (stats) {
    stats->elements = t.size();
    stats->map_entries = map.map_entries();
    stats->block_elems = map.block_elems();
  }
  return out;
}

}  // namespace ltns::exec
