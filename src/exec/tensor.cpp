#include "exec/tensor.hpp"

#include <cassert>
#include <cmath>
#include <cstring>

#include "util/rng.hpp"

namespace ltns::exec {

Tensor::Tensor(std::vector<int> ixs)
    : ixs_(std::move(ixs)), data_(size_t(1) << ixs_.size(), cfloat{0, 0}) {
  assert(ixs_.size() < 48);
}

Tensor::Tensor(std::vector<int> ixs, std::vector<cfloat> data)
    : ixs_(std::move(ixs)), data_(data.begin(), data.end()) {
  assert(data_.size() == size_t(1) << ixs_.size());
}

int Tensor::axis_of(int edge) const {
  for (int d = 0; d < rank(); ++d)
    if (ixs_[size_t(d)] == edge) return d;
  return -1;
}

cfloat Tensor::at(const std::vector<int>& bits) const {
  assert(int(bits.size()) == rank());
  size_t off = 0;
  for (int d = 0; d < rank(); ++d) off |= size_t(bits[size_t(d)]) << bit_of_axis(d);
  return data_[off];
}

void Tensor::set(const std::vector<int>& bits, cfloat v) {
  assert(int(bits.size()) == rank());
  size_t off = 0;
  for (int d = 0; d < rank(); ++d) off |= size_t(bits[size_t(d)]) << bit_of_axis(d);
  data_[off] = v;
}

Tensor Tensor::fixed(int edge, int bit) const {
  int d = axis_of(edge);
  assert(d >= 0 && (bit == 0 || bit == 1));
  std::vector<int> nixs = ixs_;
  nixs.erase(nixs.begin() + d);
  Tensor out(std::move(nixs));
  const int pos = bit_of_axis(d);  // bit position of the fixed axis
  const size_t block = size_t(1) << pos;
  const size_t nblocks = out.size() >> pos;
  // Axes above d keep relative order; copy contiguous runs of 2^pos.
  for (size_t hi = 0; hi < nblocks; ++hi) {
    size_t src = (hi << (pos + 1)) | (size_t(bit) << pos);
    std::memcpy(out.data_.data() + hi * block, data_.data() + src, block * sizeof(cfloat));
  }
  return out;
}

Tensor Tensor::fixed_all(const std::vector<int>& edges, uint64_t bits) const {
  Tensor cur = *this;
  for (size_t i = 0; i < edges.size(); ++i) {
    if (cur.axis_of(edges[i]) < 0) continue;
    cur = cur.fixed(edges[i], int((bits >> i) & 1));
  }
  return cur;
}

Tensor Tensor::gather_fixed(const std::vector<int>& edges, uint64_t bits,
                            size_t* block_elems_out) const {
  const int r = rank();
  // Per-axis fixed bit (-1 = kept), plus the fixed part of the src offset.
  std::vector<int> fixed_bit(static_cast<size_t>(r), -1);
  size_t src_base = 0;
  for (size_t i = 0; i < edges.size(); ++i) {
    int d = axis_of(edges[i]);
    if (d < 0) continue;
    fixed_bit[size_t(d)] = int((bits >> i) & 1);
    src_base |= size_t((bits >> i) & 1) << bit_of_axis(d);
  }
  std::vector<int> kept_ixs;
  std::vector<int> kept_pos;  // src bit position per kept axis (out order)
  for (int d = 0; d < r; ++d) {
    if (fixed_bit[size_t(d)] >= 0) continue;
    kept_ixs.push_back(ixs_[size_t(d)]);
    kept_pos.push_back(bit_of_axis(d));
  }
  // Contiguous tail: trailing kept axes occupying the low src bits.
  int tail = 0;
  while (tail < int(kept_pos.size()) && kept_pos[kept_pos.size() - 1 - size_t(tail)] == tail)
    ++tail;
  const size_t block = size_t(1) << tail;
  if (block_elems_out) *block_elems_out = block;

  Tensor out(kept_ixs);
  const int lead = int(kept_pos.size()) - tail;
  const size_t nblocks = out.size() >> tail;
  for (size_t ob = 0; ob < nblocks; ++ob) {
    size_t src = src_base;
    // Leading out bit p (above the tail) feeds kept axis (lead-1-p).
    for (int p = 0; p < lead; ++p)
      src |= ((ob >> p) & 1) << kept_pos[size_t(lead - 1 - p)];
    std::memcpy(out.data_.data() + ob * block, data_.data() + src, block * sizeof(cfloat));
  }
  return out;
}

double Tensor::norm2() const {
  double s = 0;
  for (const cfloat& v : data_) s += double(v.real()) * v.real() + double(v.imag()) * v.imag();
  return s;
}

Tensor random_tensor(std::vector<int> ixs, uint64_t seed) {
  Tensor t(std::move(ixs));
  Rng rng(seed);
  for (auto& v : t.data()) v = cfloat(float(rng.next_normal()), float(rng.next_normal()));
  return t;
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  assert(a.ixs() == b.ixs());
  double m = 0;
  for (size_t i = 0; i < a.size(); ++i) m = std::max(m, double(std::abs(a.data()[i] - b.data()[i])));
  return m;
}

}  // namespace ltns::exec
