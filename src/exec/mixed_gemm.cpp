#include "exec/mixed_gemm.hpp"

#include "exec/simd_kernels.hpp"

namespace ltns::exec {

void cgemm_mixed(int m, int n, int k, const cfloat* a, const cfloat* b, cfloat* c,
                 ThreadPool* pool) {
  cgemm_simd(IsaTier::kPortable, Precision::kBf16, m, n, k, a, b, c, pool);
}

}  // namespace ltns::exec
