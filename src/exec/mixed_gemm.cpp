#include "exec/mixed_gemm.hpp"

#include <complex>
#include <cstring>
#include <vector>

namespace ltns::exec {

namespace {

void rows_mixed(int m0, int m1, int n, int k, const cfloat* a, const cfloat* b, cfloat* c) {
  std::vector<std::complex<double>> acc(size_t(n), {0, 0});
  for (int i = m0; i < m1; ++i) {
    for (int j = 0; j < n; ++j) acc[size_t(j)] = {0, 0};
    for (int p = 0; p < k; ++p) {
      const std::complex<double> av(a[size_t(i) * k + p]);
      const cfloat* brow = b + size_t(p) * n;
      for (int j = 0; j < n; ++j) acc[size_t(j)] += av * std::complex<double>(brow[j]);
    }
    for (int j = 0; j < n; ++j) c[size_t(i) * n + j] = cfloat(acc[size_t(j)]);
  }
}

}  // namespace

void cgemm_mixed(int m, int n, int k, const cfloat* a, const cfloat* b, cfloat* c,
                 ThreadPool* pool) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    std::memset(c, 0, size_t(m) * n * sizeof(cfloat));
    return;
  }
  const double work = double(m) * n * k;
  if (pool != nullptr && pool->size() > 1 && work > 1 << 16) {
    pool->parallel_for(size_t(m), [&](int, size_t b0, size_t e0) {
      rows_mixed(int(b0), int(e0), n, k, a, b, c);
    });
  } else {
    rows_mixed(0, m, n, k, a, b, c);
  }
}

}  // namespace ltns::exec
