// Complex single-precision GEMM: C = A · B, row-major, no transposes
// (operands are pre-permuted by the TTGT pipeline, §5).
//
// The blocked kernel mirrors the paper's 4x4 complex micro-kernel design
// (§5.1): panels of A and B are packed, a 4x4 accumulator tile lives in
// registers, and the K loop runs innermost. For the narrow shapes that
// dominate quantum-circuit contractions (two of m, n, k < 16) GEMM is
// bandwidth-bound — Θ(MNK) ≈ Θ(MN + NK + MK) — which is exactly the regime
// the fused executor (secondary slicing) rescues.
#pragma once

#include <cstdint>

#include "exec/tensor.hpp"
#include "util/parallel.hpp"

namespace ltns::exec {

// Reference triple loop.
void cgemm_naive(int m, int n, int k, const cfloat* a, const cfloat* b, cfloat* c);

// Blocked micro-kernel implementation; `pool` (optional) parallelizes over
// row panels. C is overwritten.
void cgemm(int m, int n, int k, const cfloat* a, const cfloat* b, cfloat* c,
           ThreadPool* pool = nullptr);

// Flop count convention used throughout (complex MAC = 8 real flops).
inline double gemm_flops(double m, double n, double k) { return 8.0 * m * n * k; }

}  // namespace ltns::exec
