// Vectorized kernel tiers (the "simd" device backend's engine).
//
// Runtime CPU dispatch over explicit-intrinsic complex-GEMM microkernels
// (AVX2 / AVX-512 on x86, NEON on aarch64) and a gather/blocked-copy
// permute, plus the fp32/bf16 mixed-precision kernels. The tier is a plain
// argument here — hardware detection and the LTNS_FORCE_ISA override live
// in src/device/cpu_probe.*, so these kernels stay directly testable per
// tier regardless of what the host machine supports.
//
// BIT-EXACTNESS CONTRACT (fp32): for every tier, cgemm_simd produces output
// bitwise identical to exec::cgemm. The whole build runs -ffp-contract=off
// (CMakeLists.txt), so the scalar reference's per-element semantics reduce
// to a fixed chain that the vector kernels reproduce exactly:
//   * K is cut into kKc-wide panels, visited in ascending order;
//   * per element and panel: split float accumulators over p ascending,
//       cr += ar*br - ai*bi;  ci += ar*bi + ai*br;
//     each multiply and add rounding once (no FMA intrinsics here, ever);
//   * after each panel: c.real += cr; c.imag += ci.
// Vectorizing across j columns computes independent per-element chains in
// lanes — it never reassociates one element's chain — so the tile grid and
// lane width are free while the bits stay pinned. Column/row tails that
// don't fill a lane run the same chain in scalar code.
//
// MIXED PRECISION (bf16 operands, fp32 accumulation): operands are rounded
// to bfloat16 (round-to-nearest-even) on load/pack and the identical fp32
// chain runs on the rounded values. That keeps mixed output DETERMINISTIC —
// bitwise identical across tiers, backends and process counts — while its
// distance from the fp32 reference is only ULP-bounded (the pinned corpus
// in tests/test_kernels_parity.cpp and the e2e --compare-mode=ulp:<N>).
#pragma once

#include <cstdint>
#include <vector>

#include "exec/permute.hpp"
#include "exec/tensor.hpp"
#include "util/parallel.hpp"

namespace ltns::exec {

// Vector ISA tier a kernel call targets. kPortable delegates to the scalar
// reference kernels (exec::cgemm / the scalar mixed chain).
enum class IsaTier { kPortable = 0, kAvx2 = 1, kAvx512 = 2, kNeon = 3 };

const char* isa_name(IsaTier t);
// Float lanes the tier's microkernel processes per step (portable reports
// the scalar reference's effective 4-wide 4x4 tile).
size_t isa_lanes(IsaTier t);
// Tiers compiled into this binary for this architecture, portable first.
// (Whether the hardware can RUN them is the cpu_probe's business.)
std::vector<IsaTier> compiled_isa_tiers();

// Operand precision of the GEMM kernels. kBf16 is the paper's mixed mode:
// bfloat16 operands, fp32 accumulation.
enum class Precision { kFp32 = 0, kBf16 = 1 };

const char* precision_name(Precision p);

// Round-to-nearest-even bfloat16 round trip of one float (the value a bf16
// operand contributes to the fp32 chain). NaN payloads may be truncated;
// overflow rounds to infinity, matching hardware bf16 conversion.
inline float bf16_round(float v) {
  uint32_t x;
  __builtin_memcpy(&x, &v, 4);
  x = (x + 0x7fffu + ((x >> 16) & 1u)) & 0xffff0000u;
  __builtin_memcpy(&v, &x, 4);
  return v;
}

// B-panel packing accounting (the staging copy a discrete device would make
// explicit; the "simd" backend reports it as to-device traffic).
struct SimdPackStats {
  double bytes = 0;
  double ns = 0;
  uint64_t packs = 0;
};

// C = A · B, row-major, C overwritten — exec::cgemm's shape and, for
// Precision::kFp32, exec::cgemm's bits. `pool` parallelizes over row panels
// with the reference kernel's exact threshold and chunking. `pack`
// (optional) accumulates B-panel packing traffic across workers.
void cgemm_simd(IsaTier tier, Precision prec, int m, int n, int k, const cfloat* a,
                const cfloat* b, cfloat* c, ThreadPool* pool = nullptr,
                SimdPackStats* pack = nullptr);

// Vectorized PermuteMap application: hardware gather for element-granular
// maps (AVX2/AVX-512), width-specialized block copies otherwise. Pure data
// movement — bitwise identical to PermuteMap::apply on every tier.
void permute_apply_simd(IsaTier tier, const PermuteMap& map, const cfloat* in, cfloat* out);

// exec::permute through the vectorized apply (identity permutations are
// plain copies, exactly like the reference fast path).
Tensor permute_simd(IsaTier tier, const Tensor& t, const std::vector<int>& new_ixs,
                    PermuteStats* stats = nullptr);

}  // namespace ltns::exec
