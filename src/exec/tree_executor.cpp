#include "exec/tree_executor.hpp"

#include <cassert>

#include "util/timer.hpp"

namespace ltns::exec {

void ExecStats::merge(const ExecStats& o) {
  flops += o.flops;
  bytes_main += o.bytes_main;
  permute_elems += o.permute_elems;
  gemm_seconds += o.gemm_seconds;
  permute_seconds += o.permute_seconds;
  memory_seconds += o.memory_seconds;
  peak_live_elems = std::max(peak_live_elems, o.peak_live_elems);
  device.merge(o.device);
}

namespace {

struct Runner {
  const tn::ContractionTree& tree;
  const LeafProvider& leaves;
  const std::vector<int>& sliced;
  uint64_t assignment;
  ThreadPool* pool;
  ExecStats* stats;
  device::DeviceBackend* backend;

  std::vector<Tensor> value;  // per tree node
  size_t live_elems = 0;

  void track(ptrdiff_t delta) {
    live_elems = size_t(ptrdiff_t(live_elems) + delta);
    if (stats) stats->peak_live_elems = std::max(stats->peak_live_elems, live_elems);
  }

  Tensor run(int root) {
    value.assign(size_t(tree.num_nodes()), Tensor{});
    // Postorder restricted to the subtree under `root`.
    std::vector<std::pair<int, int>> st{{root, 0}};
    while (!st.empty()) {
      auto& [id, phase] = st.back();
      const auto& n = tree.node(id);
      if (n.is_leaf()) {
        ScopedSeconds tmem(stats != nullptr ? &stats->memory_seconds : nullptr);
        value[size_t(id)] = leaves(n.leaf_vertex).fixed_all(sliced, assignment);
        tmem.close();
        track(ptrdiff_t(value[size_t(id)].size()));
        st.pop_back();
      } else if (phase == 0) {
        phase = 1;
        st.push_back({n.left, 0});
      } else if (phase == 1) {
        phase = 2;
        st.push_back({n.right, 0});
      } else {
        Tensor& a = value[size_t(n.left)];
        Tensor& b = value[size_t(n.right)];
        ContractStats cs;
        Tensor out = contract(a, b, pool, &cs, backend, stats ? &stats->device : nullptr);
        if (stats) {
          stats->flops += cs.flops;
          stats->permute_elems += cs.permute_elems;
          stats->gemm_seconds += cs.gemm_seconds;
          stats->permute_seconds += cs.permute_seconds;
          // Step-by-step traffic: read both operands, write the result,
          // plus the transpose round-trips.
          stats->bytes_main +=
              8.0 * (double(a.size()) + double(b.size()) + double(out.size())) +
              16.0 * cs.permute_elems;
        }
        track(ptrdiff_t(out.size()));
        track(-ptrdiff_t(a.size()));
        track(-ptrdiff_t(b.size()));
        a.drop();
        b.drop();
        value[size_t(id)] = std::move(out);
        st.pop_back();
      }
    }
    return std::move(value[size_t(root)]);
  }
};

}  // namespace

Tensor execute_tree(const tn::ContractionTree& tree, const LeafProvider& leaves,
                    const std::vector<int>& sliced_edges, uint64_t assignment, ThreadPool* pool,
                    ExecStats* stats, device::DeviceBackend* backend) {
  Runner r{tree, leaves, sliced_edges, assignment, pool, stats, backend, {}, 0};
  return r.run(tree.root());
}

Tensor execute_subtree(const tn::ContractionTree& tree, int node, const LeafProvider& leaves,
                       const std::vector<int>& sliced_edges, uint64_t assignment,
                       ThreadPool* pool, ExecStats* stats, device::DeviceBackend* backend) {
  Runner r{tree, leaves, sliced_edges, assignment, pool, stats, backend, {}, 0};
  return r.run(node);
}

}  // namespace ltns::exec
