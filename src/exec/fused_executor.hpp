// Fused stem executor — "secondary slicing" (§5).
//
// Between main memory and the 256 KB LDM the slice/stack trade-off flips:
// bandwidth is plentiful, so we *stack* instead of slicing at the process
// level. A window of n consecutive stem steps is executed entirely inside
// per-worker LDM scratch: the indices of the stem tensor that do NOT
// participate in the window (equivalently: whose lifetime extends past the
// window — the paper's choice of "longest lifetime") are sliced at thread
// level into 2^|S2| embarrassingly parallel subtasks. Each subtask does one
// strided DMA-get, n small contractions in LDM, and one contiguous DMA-put
// (the put *is* the stacking, so secondary slicing has zero compute
// overhead). This replaces n-1 full-tensor DMA round-trips of the
// step-by-step baseline and lifts the arithmetic intensity past the
// roofline ridge (Fig. 12 / Fig. 13).
//
// §5.3.2: when the DMA-get granularity falls under the efficient minimum
// (512 B), the cooperative mode models the 64-CPE block load + RMA
// redistribution: granularity is restored to 512 B at the cost of counted
// RMA traffic.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/slicing.hpp"
#include "exec/tree_executor.hpp"
#include "tn/stem.hpp"

namespace ltns::exec {

struct DmaStats {
  double bytes_get = 0;
  double bytes_put = 0;
  double rma_bytes = 0;
  double transfers_get = 0;
  double transfers_put = 0;
  double min_granularity = std::numeric_limits<double>::infinity();  // bytes
  // Bandwidth-weighted effective granularity: Σ bytes·g / Σ bytes.
  double granularity_weight = 0;
  void record_get(double bytes, double granularity);
  void record_put(double bytes, double granularity);
  double total_bytes() const { return bytes_get + bytes_put; }
  double effective_granularity() const {
    return total_bytes() > 0 ? granularity_weight / total_bytes() : 0;
  }
  void merge(const DmaStats& o);
};

struct FusedWindow {
  int begin_step = 0;  // stem step range [begin_step, end_step)
  int end_step = 0;
  bool in_ldm = true;  // false: fell back to a main-memory step
  int secondary_count = 0;  // |S2| chosen at plan time
  size_t ldm_peak_elems = 0;
};

struct FusedPlan {
  const tn::Stem* stem = nullptr;
  std::vector<int> process_sliced;  // process-level sliced edges (plan-time)
  // LDM capacity in complex<float> elements: 256 KB / 8 B. The planner
  // checks the SUM of the live operands (w, branch, result) per step, which
  // is what limits the paper to rank-13 operands.
  size_t ldm_elems = 32768;
  bool cooperative_dma = true;
  std::vector<FusedWindow> windows;

  int fused_steps() const;
  double average_fused_length() const;
};

// Plans the windows. `process_sliced` must match what execution will fix.
FusedPlan plan_fused(const tn::Stem& stem, const std::vector<int>& process_sliced,
                     size_t ldm_elems, bool cooperative_dma = true);

struct FusedStats {
  ExecStats exec;
  DmaStats dma;
  uint64_t ldm_subtasks = 0;
  size_t ldm_peak_elems = 0;
};

// Executes the whole stem for one process-level subtask. Branches are
// pre-contracted with the step-by-step executor (their cost is counted into
// `stats->exec` as the paper counts branch pre-conditioning). `backend`
// (optional) runs every kernel — and each secondary subtask's whole fused
// window, batched — on a device backend; output is bitwise identical for
// any conforming backend.
Tensor execute_fused(const FusedPlan& plan, const LeafProvider& leaves, uint64_t assignment,
                     ThreadPool* pool = nullptr, FusedStats* stats = nullptr,
                     device::DeviceBackend* backend = nullptr);

// Step-by-step stem execution (the Fig. 12 baseline): identical work, but
// every step is a full TTGT against main memory.
Tensor execute_stem_stepwise(const tn::Stem& stem, const LeafProvider& leaves,
                             const std::vector<int>& process_sliced, uint64_t assignment,
                             ThreadPool* pool = nullptr, FusedStats* stats = nullptr,
                             device::DeviceBackend* backend = nullptr);

}  // namespace ltns::exec
