#include "exec/fused_executor.hpp"

#include <algorithm>
#include <cassert>
#include <mutex>

#include "device/backend.hpp"
#include "util/timer.hpp"

namespace ltns::exec {

void DmaStats::record_get(double bytes, double granularity) {
  bytes_get += bytes;
  if (granularity > 0) transfers_get += bytes / granularity;
  min_granularity = std::min(min_granularity, granularity);
  granularity_weight += bytes * granularity;
}

void DmaStats::record_put(double bytes, double granularity) {
  bytes_put += bytes;
  if (granularity > 0) transfers_put += bytes / granularity;
  min_granularity = std::min(min_granularity, granularity);
  granularity_weight += bytes * granularity;
}

void DmaStats::merge(const DmaStats& o) {
  bytes_get += o.bytes_get;
  bytes_put += o.bytes_put;
  rma_bytes += o.rma_bytes;
  transfers_get += o.transfers_get;
  transfers_put += o.transfers_put;
  min_granularity = std::min(min_granularity, o.min_granularity);
  granularity_weight += o.granularity_weight;
}

int FusedPlan::fused_steps() const {
  int c = 0;
  for (const auto& w : windows)
    if (w.in_ldm) c += w.end_step - w.begin_step;
  return c;
}

double FusedPlan::average_fused_length() const {
  int steps = 0, wins = 0;
  for (const auto& w : windows)
    if (w.in_ldm) {
      steps += w.end_step - w.begin_step;
      ++wins;
    }
  return wins ? double(steps) / wins : 0.0;
}

namespace {

constexpr double kBytesPerElem = sizeof(cfloat);  // 8

// Index set of a tree node with process-sliced edges removed.
IndexSet unsliced_ixs(const tn::ContractionTree& tree, int node, const IndexSet& sliced) {
  IndexSet s = tree.node(node).ixs;
  s -= sliced;
  return s;
}

}  // namespace

FusedPlan plan_fused(const tn::Stem& stem, const std::vector<int>& process_sliced,
                     size_t ldm_elems, bool cooperative_dma) {
  const tn::ContractionTree& tree = *stem.tree;
  FusedPlan plan;
  plan.stem = &stem;
  plan.process_sliced = process_sliced;
  plan.ldm_elems = ldm_elems;
  plan.cooperative_dma = cooperative_dma;

  IndexSet S(tree.network()->num_edges());
  for (int e : process_sliced) S.insert(e);

  const int n_steps = stem.length() - 1;
  int i = 0;
  while (i < n_steps) {
    IndexSet T = unsliced_ixs(tree, stem.nodes[size_t(i)], S);
    // Union of branch indices over the candidate window; K_T = T ∩ that.
    IndexSet touched(tree.network()->num_edges());
    FusedWindow win;
    win.begin_step = i;
    int j = i;
    size_t peak = 0;
    int s2 = 0;
    while (j < n_steps) {
      IndexSet bj = unsliced_ixs(tree, stem.branches[size_t(j)], S);
      IndexSet touched2 = touched | bj;
      IndexSet keptT = T & touched2;
      int s2_try = T.count() - keptT.count();
      // Walk the window's working sets and find the peak LDM demand.
      IndexSet w = keptT;
      size_t peak_try = 0;
      bool fits = true;
      for (int k = win.begin_step; k <= j; ++k) {
        IndexSet bk = unsliced_ixs(tree, stem.branches[size_t(k)], S);
        IndexSet wn = w ^ bk;
        size_t need = (size_t(1) << w.count()) + (size_t(1) << bk.count()) +
                      (size_t(1) << wn.count());
        peak_try = std::max(peak_try, need);
        if (need > ldm_elems) {
          fits = false;
          break;
        }
        w = wn;
      }
      if (!fits) break;
      touched = touched2;
      peak = peak_try;
      s2 = s2_try;
      ++j;
    }
    if (j == i) {
      // Not even one step fits: main-memory fallback for this step.
      win.end_step = i + 1;
      win.in_ldm = false;
      win.secondary_count = 0;
      win.ldm_peak_elems = 0;
    } else {
      win.end_step = j;
      win.in_ldm = true;
      win.secondary_count = s2;
      win.ldm_peak_elems = peak;
    }
    plan.windows.push_back(win);
    i = win.end_step;
  }
  return plan;
}

namespace {

// Contiguous-run length (in elements) of the kept axes at the tail of T's
// axis order — the DMA-get granularity of a strided sub-tensor load.
size_t tail_block_elems(const Tensor& t, const IndexSet& secondary) {
  size_t run = 0;
  for (int d = t.rank() - 1; d >= 0; --d) {
    if (secondary.contains(t.ixs()[size_t(d)])) break;
    ++run;
  }
  return size_t(1) << run;
}

struct WindowExec {
  const FusedPlan& plan;
  ThreadPool* pool;
  FusedStats* stats;
  device::DeviceBackend* backend;

  // Executes window `win` on current stem tensor `T` with pre-contracted
  // branch tensors; returns the new stem tensor.
  Tensor run(const FusedWindow& win, const Tensor& T, const std::vector<Tensor>& branches) {
    const tn::TensorNetwork& net = *plan.stem->tree->network();

    // Secondary slice set: T's indices untouched by the window's branches.
    IndexSet touched(net.num_edges());
    for (int k = win.begin_step; k < win.end_step; ++k)
      for (int e : branches[size_t(k)].ixs()) touched.insert(e);
    std::vector<int> secondary;   // in T's axis order
    std::vector<int> kept;
    IndexSet secondary_set(net.num_edges());
    for (int e : T.ixs()) {
      if (touched.contains(e)) {
        kept.push_back(e);
      } else {
        secondary.push_back(e);
        secondary_set.insert(e);
      }
    }
    assert(int(secondary.size()) == win.secondary_count);

    // Dry-run the first subtask shape to learn the output layout.
    // Output tensor: secondary axes leading (so each subtask's DMA-put is
    // one contiguous block), then the final working layout.
    const uint64_t n_sub = uint64_t(1) << secondary.size();
    const size_t get_block = tail_block_elems(T, secondary_set);

    // All subtasks share these read-only inputs.
    std::mutex merge_mu;
    Tensor out;               // allocated after first subtask reveals layout
    std::vector<int> w_ixs;   // final working-layout ixs
    bool out_ready = false;

    auto run_subtask = [&](uint64_t s) {
      ExecStats es;
      DmaStats ds;
      ScopedSeconds tmem(&es.memory_seconds);
      Tensor w = T.gather_fixed(secondary, s);
      tmem.close();
      double g = double(get_block) * kBytesPerElem;
      double moved = double(w.size()) * kBytesPerElem;
      if (plan.cooperative_dma && g < 512.0) {
        // §5.3.2: cooperative block load + RMA redistribution.
        ds.rma_bytes += moved;
        g = std::min(512.0, double(T.size()) * kBytesPerElem);
      }
      ds.record_get(moved, g);
      size_t ldm_peak = w.size();

      if (backend != nullptr) {
        // Batched device execution: the whole window's steps run on the
        // backend (one staged upload/download round-trip for non-unified
        // devices). The DMA model still counts each branch get.
        for (int k = win.begin_step; k < win.end_step; ++k) {
          const Tensor& b = branches[size_t(k)];
          ds.record_get(double(b.size()) * kBytesPerElem, double(b.size()) * kBytesPerElem);
        }
        ContractStats cs;
        size_t peak = 0;
        w = backend->run_stem_window(std::move(w), branches.data() + win.begin_step,
                                     win.end_step - win.begin_step, &cs, &es.device, &peak);
        es.flops += cs.flops;
        es.permute_elems += cs.permute_elems;
        es.gemm_seconds += cs.gemm_seconds;
        es.permute_seconds += cs.permute_seconds;
        ldm_peak = std::max(ldm_peak, peak);
      } else {
        for (int k = win.begin_step; k < win.end_step; ++k) {
          const Tensor& b = branches[size_t(k)];
          ds.record_get(double(b.size()) * kBytesPerElem, double(b.size()) * kBytesPerElem);
          ContractStats cs;
          Tensor wn = contract(w, b, nullptr, &cs);  // serial: this IS one CPE
          es.flops += cs.flops;
          es.permute_elems += cs.permute_elems;
          es.gemm_seconds += cs.gemm_seconds;
          es.permute_seconds += cs.permute_seconds;
          ldm_peak = std::max(ldm_peak, w.size() + b.size() + wn.size());
          w = std::move(wn);
        }
      }
      assert(ldm_peak <= plan.ldm_elems || !win.in_ldm);

      {
        std::lock_guard<std::mutex> lk(merge_mu);
        if (!out_ready) {
          w_ixs = w.ixs();
          std::vector<int> out_ixs = secondary;
          out_ixs.insert(out_ixs.end(), w_ixs.begin(), w_ixs.end());
          out = Tensor(out_ixs);
          out_ready = true;
        }
      }
      // Subtask writes its contiguous block (the DMA-put / stacking step).
      // fixed_all assigns bit i of `s` to secondary[i]; in the output layout
      // secondary[0] is the slowest axis, so the block index mirrors s.
      assert(w.ixs() == w_ixs && "subtasks must share the working layout");
      uint64_t block = 0;
      for (size_t i = 0; i < secondary.size(); ++i)
        block |= ((s >> i) & 1) << (secondary.size() - 1 - i);
      ScopedSeconds tput(&es.memory_seconds);
      std::copy(w.data().begin(), w.data().end(), out.data().begin() + size_t(block) * w.size());
      tput.close();
      ds.record_put(double(w.size()) * kBytesPerElem, double(w.size()) * kBytesPerElem);

      if (stats) {
        std::lock_guard<std::mutex> lk(merge_mu);
        stats->exec.merge(es);
        stats->dma.merge(ds);
        stats->ldm_subtasks += 1;
        stats->ldm_peak_elems = std::max(stats->ldm_peak_elems, ldm_peak);
      }
    };

    // The first subtask runs alone to fix the output layout; the rest in
    // parallel on the CPE grid.
    run_subtask(0);
    if (n_sub > 1) {
      if (pool != nullptr) {
        pool->parallel_for_each(size_t(n_sub - 1), [&](size_t idx) { run_subtask(idx + 1); });
      } else {
        for (uint64_t s = 1; s < n_sub; ++s) run_subtask(s);
      }
    }
    return out;
  }
};

}  // namespace

Tensor execute_fused(const FusedPlan& plan, const LeafProvider& leaves, uint64_t assignment,
                     ThreadPool* pool, FusedStats* stats, device::DeviceBackend* backend) {
  const tn::Stem& stem = *plan.stem;
  const tn::ContractionTree& tree = *stem.tree;

  // Pre-contract the branches and the bottom stem tensor.
  ExecStats branch_stats;
  std::vector<Tensor> branches(size_t(stem.length() - 1));
  for (int k = 0; k + 1 < stem.length(); ++k)
    branches[size_t(k)] = execute_subtree(tree, stem.branches[size_t(k)], leaves,
                                          plan.process_sliced, assignment, pool, &branch_stats,
                                          backend);
  Tensor cur = execute_subtree(tree, stem.nodes[0], leaves, plan.process_sliced, assignment,
                               pool, &branch_stats, backend);
  if (stats) stats->exec.merge(branch_stats);

  WindowExec we{plan, pool, stats, backend};
  for (const auto& win : plan.windows) {
    if (win.in_ldm) {
      cur = we.run(win, cur, branches);
    } else {
      // Main-memory fallback step.
      ContractStats cs;
      const Tensor& b = branches[size_t(win.begin_step)];
      Tensor next =
          contract(cur, b, pool, &cs, backend, stats ? &stats->exec.device : nullptr);
      if (stats) {
        stats->exec.flops += cs.flops;
        stats->exec.permute_elems += cs.permute_elems;
        stats->exec.gemm_seconds += cs.gemm_seconds;
        stats->exec.permute_seconds += cs.permute_seconds;
        stats->dma.record_get(double(cur.size() + b.size()) * kBytesPerElem, 512.0);
        stats->dma.record_put(double(next.size()) * kBytesPerElem, 512.0);
      }
      cur = std::move(next);
    }
  }
  return cur;
}

Tensor execute_stem_stepwise(const tn::Stem& stem, const LeafProvider& leaves,
                             const std::vector<int>& process_sliced, uint64_t assignment,
                             ThreadPool* pool, FusedStats* stats,
                             device::DeviceBackend* backend) {
  const tn::ContractionTree& tree = *stem.tree;
  ExecStats branch_stats;
  std::vector<Tensor> branches(size_t(stem.length() - 1));
  for (int k = 0; k + 1 < stem.length(); ++k)
    branches[size_t(k)] = execute_subtree(tree, stem.branches[size_t(k)], leaves, process_sliced,
                                          assignment, pool, &branch_stats, backend);
  Tensor cur = execute_subtree(tree, stem.nodes[0], leaves, process_sliced, assignment, pool,
                               &branch_stats, backend);
  if (stats) stats->exec.merge(branch_stats);

  for (int k = 0; k + 1 < stem.length(); ++k) {
    const Tensor& b = branches[size_t(k)];
    ContractStats cs;
    Tensor next = contract(cur, b, pool, &cs, backend, stats ? &stats->exec.device : nullptr);
    if (stats) {
      stats->exec.flops += cs.flops;
      stats->exec.permute_elems += cs.permute_elems;
      stats->exec.gemm_seconds += cs.gemm_seconds;
      stats->exec.permute_seconds += cs.permute_seconds;
      // Every step round-trips the operands and result through main memory.
      stats->dma.record_get(double(cur.size() + b.size()) * kBytesPerElem, 512.0);
      stats->dma.record_put(double(next.size()) * kBytesPerElem, 512.0);
    }
    cur = std::move(next);
  }
  return cur;
}

}  // namespace ltns::exec
