#include "exec/slice_runner.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "obs/trace.hpp"
#include "runtime/reduction.hpp"
#include "util/timer.hpp"

namespace ltns::exec {

namespace {

// Per-worker accumulation slot; padded so workers never share a cache line.
struct alignas(64) WorkerPartial {
  ExecStats exec;
  runtime::MemoryStats memory;
};

}  // namespace

SliceRunResult run_sliced(const tn::ContractionTree& tree, const LeafProvider& leaves,
                          const core::SliceSet& slices, const SliceRunOptions& opt) {
  auto sliced = slices.to_vector();
  assert(sliced.size() < 57);
  const uint64_t all = uint64_t(1) << sliced.size();
  // Clamp the shard window to [0, 2^|S|): an out-of-range first_task runs
  // nothing (completed, empty tensor) and an overflowing num_tasks runs the
  // remainder of the range — never tasks that don't exist. Multi-process
  // shard plans are computed from 2^|S|, but a hand-written window (CLI,
  // bench, a stale plan) must not silently schedule nonsense.
  const uint64_t first = std::min(opt.first_task, all);
  const uint64_t count = opt.num_tasks == 0 ? all - first : std::min(opt.num_tasks, all - first);

  ThreadPool* pool = opt.pool != nullptr ? opt.pool : &ThreadPool::global();
  runtime::SliceScheduler* sched =
      opt.scheduler != nullptr ? opt.scheduler : &runtime::SliceScheduler::global();

  // Run-local telemetry sink for every executor; under work stealing the
  // scheduler routes its counters here, so concurrent runs sharing a
  // scheduler never mix their numbers.
  runtime::ExecutorStats xstats;

  const int n_workers = opt.executor == SliceExecutor::kWorkStealing ? sched->size()
                        : opt.executor == SliceExecutor::kStaticPool ? pool->size()
                                                                     : 1;
  std::vector<WorkerPartial> partial;
  partial.resize(size_t(n_workers));
  runtime::ReductionTree reduction(first, count, &xstats.reduce);

  // Inner-pool mode keeps the ThreadPool busy *inside* each subtask; the
  // task-distributing executors run each subtask single-threaded instead.
  ThreadPool* inner = opt.executor == SliceExecutor::kInnerPool ? pool : nullptr;

  auto run_task = [&](int worker, uint64_t t) {
    obs::TraceScope tr(obs::EventKind::kSlice, t);
    WorkerPartial& mine = partial[size_t(worker)];
    Tensor r;
    if (opt.fused != nullptr) {
      FusedStats fs;
      r = execute_fused(*opt.fused, leaves, t, inner, &fs, opt.backend);
      mine.exec.merge(fs.exec);
      mine.memory.scratch_bytes_get += fs.dma.bytes_get;
      mine.memory.scratch_bytes_put += fs.dma.bytes_put;
      mine.memory.rma_bytes += fs.dma.rma_bytes;
      mine.memory.ldm_subtasks += fs.ldm_subtasks;
      mine.memory.ldm_peak_elems = std::max(mine.memory.ldm_peak_elems, fs.ldm_peak_elems);
      mine.memory.main_bytes += fs.exec.bytes_main;
      mine.memory.host_peak_elems =
          std::max(mine.memory.host_peak_elems, fs.exec.peak_live_elems);
      xstats.permute.add(fs.exec.permute_seconds);
      xstats.gemm.add(fs.exec.gemm_seconds);
      xstats.memory.add(fs.exec.memory_seconds);
    } else {
      ExecStats es;
      r = execute_tree(tree, leaves, sliced, t, inner, &es, opt.backend);
      mine.exec.merge(es);
      mine.memory.main_bytes += es.bytes_main;
      mine.memory.host_peak_elems = std::max(mine.memory.host_peak_elems, es.peak_live_elems);
      xstats.permute.add(es.permute_seconds);
      xstats.gemm.add(es.gemm_seconds);
      xstats.memory.add(es.memory_seconds);
    }
    reduction.add(t, std::move(r));
  };

  SliceRunResult res;
  Timer wall;
  switch (opt.executor) {
    case SliceExecutor::kInnerPool: {
      xstats.scheduled_delta(count);
      for (uint64_t t = first; t < first + count; ++t) {
        run_task(0, t);
        xstats.finished_delta(1);
      }
      res.tasks_run = count;
      break;
    }
    case SliceExecutor::kStaticPool: {
      xstats.scheduled_delta(count);
      std::vector<double> busy_s(size_t(n_workers), 0.0);
      Timer span;
      pool->parallel_for(count, [&](int w, size_t b, size_t e) {
        Timer busy;
        for (size_t i = b; i < e; ++i) {
          run_task(w, first + i);
          xstats.finished_delta(1);
        }
        busy_s[size_t(w)] = busy.seconds();
      });
      // One utilization sample per worker: chunk busy time over the span of
      // the whole static phase (idle = waiting for the slowest chunk).
      const double span_s = span.seconds();
      for (double b : busy_s) xstats.update_ema_utilization(b, span_s);
      res.tasks_run = count;
      break;
    }
    case SliceExecutor::kWorkStealing: {
      res.tasks_run = sched->run(first, count, run_task, opt.grain, &xstats);
      break;
    }
  }
  res.wall_seconds = wall.seconds();
  if (opt.executor == SliceExecutor::kInnerPool)
    xstats.update_ema_utilization(res.wall_seconds, res.wall_seconds);

  for (const auto& p : partial) {
    res.stats.merge(p.exec);
    res.memory.merge(p.memory);
  }
  res.executor_stats = xstats.snapshot();
  // Device transfer/kernel telemetry rides the snapshot so every existing
  // aggregation path (shard telemetry, API results, CLI) carries it.
  res.executor_stats.device = res.stats.device;
  res.reduce_merges = reduction.merges();
  // A cancelled run never completes its tournament: `accumulated` then stays
  // the default empty tensor and `completed` stays false.
  res.completed = reduction.complete();
  if (res.completed) res.accumulated = reduction.take_root();
  return res;
}

}  // namespace ltns::exec
