#include "exec/slice_runner.hpp"

#include <cassert>

#include "util/timer.hpp"

namespace ltns::exec {

SliceRunResult run_sliced(const tn::ContractionTree& tree, const LeafProvider& leaves,
                          const core::SliceSet& slices, const SliceRunOptions& opt) {
  auto sliced = slices.to_vector();
  assert(sliced.size() < 63);
  const uint64_t all = uint64_t(1) << sliced.size();
  uint64_t first = opt.first_task;
  uint64_t count = opt.num_tasks == 0 ? all : opt.num_tasks;
  assert(first < all && first + count <= all);

  SliceRunResult res;
  Timer wall;
  for (uint64_t t = first; t < first + count; ++t) {
    Tensor r;
    if (opt.fused != nullptr) {
      FusedStats fs;
      r = execute_fused(*opt.fused, leaves, t, opt.pool, &fs);
      res.stats.merge(fs.exec);
    } else {
      ExecStats es;
      r = execute_tree(tree, leaves, sliced, t, opt.pool, &es);
      res.stats.merge(es);
    }
    if (res.tasks_run == 0) {
      res.accumulated = std::move(r);
    } else {
      // The subtasks' outputs share one layout; accumulate elementwise —
      // the paper's single allReduce.
      assert(r.ixs() == res.accumulated.ixs());
      for (size_t i = 0; i < r.size(); ++i) res.accumulated.data()[i] += r.data()[i];
    }
    ++res.tasks_run;
  }
  res.wall_seconds = wall.seconds();
  return res;
}

}  // namespace ltns::exec
