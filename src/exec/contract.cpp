#include "exec/contract.hpp"

#include <algorithm>
#include <cassert>

#include "device/backend.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace ltns::exec {

ContractPlan plan_contract(const std::vector<int>& a_ixs, const std::vector<int>& b_ixs) {
  ContractPlan p;
  auto in_b = [&](int e) { return std::find(b_ixs.begin(), b_ixs.end(), e) != b_ixs.end(); };
  auto in_a = [&](int e) { return std::find(a_ixs.begin(), a_ixs.end(), e) != a_ixs.end(); };

  std::vector<int> keep_a, keep_b;
  for (int e : a_ixs) (in_b(e) ? p.shared : keep_a).push_back(e);
  for (int e : b_ixs)
    if (!in_a(e)) keep_b.push_back(e);

  p.a_order = keep_a;
  p.a_order.insert(p.a_order.end(), p.shared.begin(), p.shared.end());
  p.b_order = p.shared;
  p.b_order.insert(p.b_order.end(), keep_b.begin(), keep_b.end());
  p.out_ixs = keep_a;
  p.out_ixs.insert(p.out_ixs.end(), keep_b.begin(), keep_b.end());
  p.m = 1 << keep_a.size();
  p.n = 1 << keep_b.size();
  p.k = 1 << p.shared.size();
  p.a_identity = (p.a_order == a_ixs);
  p.b_identity = (p.b_order == b_ixs);
  return p;
}

Tensor contract(const Tensor& a, const Tensor& b, ThreadPool* pool, ContractStats* stats,
                device::DeviceBackend* backend, device::DeviceStats* dstats) {
  ContractPlan p = plan_contract(a.ixs(), b.ixs());

  const Tensor* ap = &a;
  const Tensor* bp = &b;
  Tensor a_tmp, b_tmp;
  if (!p.a_identity || !p.b_identity) {
    ScopedSeconds st(stats != nullptr ? &stats->permute_seconds : nullptr);
    obs::TraceScope tr(obs::EventKind::kPermute,
                       (!p.a_identity ? a.size() : 0) + (!p.b_identity ? b.size() : 0));
    if (!p.a_identity) {
      a_tmp = backend != nullptr ? backend->permute(a, p.a_order, dstats) : permute(a, p.a_order);
      ap = &a_tmp;
      if (stats) stats->permute_elems += double(a.size());
    }
    if (!p.b_identity) {
      b_tmp = backend != nullptr ? backend->permute(b, p.b_order, dstats) : permute(b, p.b_order);
      bp = &b_tmp;
      if (stats) stats->permute_elems += double(b.size());
    }
  }

  Tensor out(p.out_ixs);
  {
    ScopedSeconds st(stats != nullptr ? &stats->gemm_seconds : nullptr);
    obs::TraceScope tr(obs::EventKind::kGemm, uint64_t(p.m) * uint64_t(p.n), uint64_t(p.k));
    if (backend != nullptr) {
      backend->gemm(p.m, p.n, p.k, ap->raw(), bp->raw(), out.raw(), pool, dstats);
    } else {
      cgemm(p.m, p.n, p.k, ap->raw(), bp->raw(), out.raw(), pool);
    }
  }
  if (stats) stats->flops += gemm_flops(p.m, p.n, p.k);
  return out;
}

Tensor contract_naive(const Tensor& a, const Tensor& b) {
  ContractPlan p = plan_contract(a.ixs(), b.ixs());
  assert(a.rank() + b.rank() < 26 && "contract_naive is for small tensors");
  Tensor out(p.out_ixs);

  const int ra = a.rank(), rb = b.rank(), ro = out.rank(), rs = int(p.shared.size());
  std::vector<int> abits(static_cast<size_t>(ra), 0), bbits(static_cast<size_t>(rb), 0),
      obits(static_cast<size_t>(ro), 0), sbits(static_cast<size_t>(rs), 0);
  const size_t n_out = out.size();
  const size_t n_sum = size_t(1) << rs;
  for (size_t o = 0; o < n_out; ++o) {
    for (int d = 0; d < ro; ++d) obits[size_t(d)] = int((o >> (ro - 1 - d)) & 1);
    std::complex<double> acc{0, 0};
    for (size_t s = 0; s < n_sum; ++s) {
      for (int d = 0; d < rs; ++d) sbits[size_t(d)] = int((s >> (rs - 1 - d)) & 1);
      auto bit_for = [&](int e) {
        for (int d = 0; d < rs; ++d)
          if (p.shared[size_t(d)] == e) return sbits[size_t(d)];
        for (int d = 0; d < ro; ++d)
          if (out.ixs()[size_t(d)] == e) return obits[size_t(d)];
        assert(false);
        return 0;
      };
      for (int d = 0; d < ra; ++d) abits[size_t(d)] = bit_for(a.ixs()[size_t(d)]);
      for (int d = 0; d < rb; ++d) bbits[size_t(d)] = bit_for(b.ixs()[size_t(d)]);
      acc += std::complex<double>(a.at(abits)) * std::complex<double>(b.at(bbits));
    }
    out.data()[o] = cfloat(acc);
  }
  return out;
}

}  // namespace ltns::exec
