// Vectorized kernel tiers. See the header for the bit-exactness contract;
// the short version: -ffp-contract=off pins the scalar reference to a fixed
// per-element chain (kKc panels ascending, p ascending, one mul+sub / mul+
// add pair per step, panel partial added to C), and every kernel here —
// vector lanes, scalar tails, bf16 mixed — reproduces exactly that chain.
// No FMA intrinsics anywhere: each multiply and add must round once.
#include "exec/simd_kernels.hpp"

#include <algorithm>
#include <cstring>

#include "exec/gemm.hpp"
#include "util/aligned_alloc.hpp"
#include "util/timer.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define LTNS_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define LTNS_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace ltns::exec {

namespace {

constexpr int kKc = 256;  // MUST match exec::cgemm's K panel (reduction order)

// 4-row and 1-row microkernels over pre-packed split-complex planes:
//   ar/ai: row-major [rows][kc] A panel planes, row stride `as`
//   br/bi: row-major [kc][n_full] B panel planes, row stride `bs`
// Each processes one lane-wide column block and adds the panel partial into
// the interleaved C rows.
using Micro4Fn = void (*)(int kc, const float* ar, const float* ai, int as, const float* br,
                          const float* bi, int bs, cfloat* c, int ldc);
using Micro1Fn = void (*)(int kc, const float* ar, const float* ai, const float* br,
                          const float* bi, int bs, cfloat* c);

// --- x86 tiers --------------------------------------------------------------

#ifdef LTNS_SIMD_X86

__attribute__((target("avx2"))) void add_store_avx2(__m256 cr, __m256 ci, cfloat* crow) {
  // Interleave (re, im) lanes back into complex order, then C += partial —
  // component-wise adds, exactly the scalar `c += cfloat(cr, ci)`.
  const __m256 t0 = _mm256_unpacklo_ps(cr, ci);
  const __m256 t1 = _mm256_unpackhi_ps(cr, ci);
  const __m256 lo = _mm256_permute2f128_ps(t0, t1, 0x20);
  const __m256 hi = _mm256_permute2f128_ps(t0, t1, 0x31);
  float* cp = reinterpret_cast<float*>(crow);
  _mm256_storeu_ps(cp, _mm256_add_ps(_mm256_loadu_ps(cp), lo));
  _mm256_storeu_ps(cp + 8, _mm256_add_ps(_mm256_loadu_ps(cp + 8), hi));
}

__attribute__((target("avx2"))) void micro4_avx2(int kc, const float* ar, const float* ai,
                                                 int as, const float* br, const float* bi,
                                                 int bs, cfloat* c, int ldc) {
  __m256 cr[4], ci[4];
  for (int r = 0; r < 4; ++r) cr[r] = ci[r] = _mm256_setzero_ps();
  for (int p = 0; p < kc; ++p) {
    const __m256 brv = _mm256_loadu_ps(br + size_t(p) * bs);
    const __m256 biv = _mm256_loadu_ps(bi + size_t(p) * bs);
    for (int r = 0; r < 4; ++r) {
      const __m256 arv = _mm256_broadcast_ss(ar + size_t(r) * as + p);
      const __m256 aiv = _mm256_broadcast_ss(ai + size_t(r) * as + p);
      cr[r] = _mm256_add_ps(cr[r],
                            _mm256_sub_ps(_mm256_mul_ps(arv, brv), _mm256_mul_ps(aiv, biv)));
      ci[r] = _mm256_add_ps(ci[r],
                            _mm256_add_ps(_mm256_mul_ps(arv, biv), _mm256_mul_ps(aiv, brv)));
    }
  }
  for (int r = 0; r < 4; ++r) add_store_avx2(cr[r], ci[r], c + size_t(r) * ldc);
}

__attribute__((target("avx2"))) void micro1_avx2(int kc, const float* ar, const float* ai,
                                                 const float* br, const float* bi, int bs,
                                                 cfloat* c) {
  __m256 cr = _mm256_setzero_ps(), ci = _mm256_setzero_ps();
  for (int p = 0; p < kc; ++p) {
    const __m256 brv = _mm256_loadu_ps(br + size_t(p) * bs);
    const __m256 biv = _mm256_loadu_ps(bi + size_t(p) * bs);
    const __m256 arv = _mm256_broadcast_ss(ar + p);
    const __m256 aiv = _mm256_broadcast_ss(ai + p);
    cr = _mm256_add_ps(cr, _mm256_sub_ps(_mm256_mul_ps(arv, brv), _mm256_mul_ps(aiv, biv)));
    ci = _mm256_add_ps(ci, _mm256_add_ps(_mm256_mul_ps(arv, biv), _mm256_mul_ps(aiv, brv)));
  }
  add_store_avx2(cr, ci, c);
}

__attribute__((target("avx512f"))) void add_store_avx512(__m512 cr, __m512 ci, cfloat* crow) {
  const __m512i idx_lo =
      _mm512_set_epi32(23, 7, 22, 6, 21, 5, 20, 4, 19, 3, 18, 2, 17, 1, 16, 0);
  const __m512i idx_hi =
      _mm512_set_epi32(31, 15, 30, 14, 29, 13, 28, 12, 27, 11, 26, 10, 25, 9, 24, 8);
  const __m512 lo = _mm512_permutex2var_ps(cr, idx_lo, ci);
  const __m512 hi = _mm512_permutex2var_ps(cr, idx_hi, ci);
  float* cp = reinterpret_cast<float*>(crow);
  _mm512_storeu_ps(cp, _mm512_add_ps(_mm512_loadu_ps(cp), lo));
  _mm512_storeu_ps(cp + 16, _mm512_add_ps(_mm512_loadu_ps(cp + 16), hi));
}

__attribute__((target("avx512f"))) void micro4_avx512(int kc, const float* ar, const float* ai,
                                                      int as, const float* br, const float* bi,
                                                      int bs, cfloat* c, int ldc) {
  __m512 cr[4], ci[4];
  for (int r = 0; r < 4; ++r) cr[r] = ci[r] = _mm512_setzero_ps();
  for (int p = 0; p < kc; ++p) {
    const __m512 brv = _mm512_loadu_ps(br + size_t(p) * bs);
    const __m512 biv = _mm512_loadu_ps(bi + size_t(p) * bs);
    for (int r = 0; r < 4; ++r) {
      const __m512 arv = _mm512_set1_ps(ar[size_t(r) * as + p]);
      const __m512 aiv = _mm512_set1_ps(ai[size_t(r) * as + p]);
      cr[r] = _mm512_add_ps(cr[r],
                            _mm512_sub_ps(_mm512_mul_ps(arv, brv), _mm512_mul_ps(aiv, biv)));
      ci[r] = _mm512_add_ps(ci[r],
                            _mm512_add_ps(_mm512_mul_ps(arv, biv), _mm512_mul_ps(aiv, brv)));
    }
  }
  for (int r = 0; r < 4; ++r) add_store_avx512(cr[r], ci[r], c + size_t(r) * ldc);
}

__attribute__((target("avx512f"))) void micro1_avx512(int kc, const float* ar, const float* ai,
                                                      const float* br, const float* bi, int bs,
                                                      cfloat* c) {
  __m512 cr = _mm512_setzero_ps(), ci = _mm512_setzero_ps();
  for (int p = 0; p < kc; ++p) {
    const __m512 brv = _mm512_loadu_ps(br + size_t(p) * bs);
    const __m512 biv = _mm512_loadu_ps(bi + size_t(p) * bs);
    const __m512 arv = _mm512_set1_ps(ar[p]);
    const __m512 aiv = _mm512_set1_ps(ai[p]);
    cr = _mm512_add_ps(cr, _mm512_sub_ps(_mm512_mul_ps(arv, brv), _mm512_mul_ps(aiv, biv)));
    ci = _mm512_add_ps(ci, _mm512_add_ps(_mm512_mul_ps(arv, biv), _mm512_mul_ps(aiv, brv)));
  }
  add_store_avx512(cr, ci, c);
}

__attribute__((target("avx2"))) void gather_avx2(const uint32_t* map, const cfloat* in,
                                                 cfloat* out, size_t n) {
  const long long* base = reinterpret_cast<const long long*>(in);
  size_t o = 0;
  for (; o + 4 <= n; o += 4) {
    const __m128i idx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(map + o));
    const __m256i v = _mm256_i32gather_epi64(base, idx, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + o), v);
  }
  for (; o < n; ++o) out[o] = in[map[o]];
}

__attribute__((target("avx512f"))) void gather_avx512(const uint32_t* map, const cfloat* in,
                                                      cfloat* out, size_t n) {
  size_t o = 0;
  for (; o + 8 <= n; o += 8) {
    const __m256i idx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(map + o));
    const __m512i v = _mm512_i32gather_epi64(idx, in, 8);
    _mm512_storeu_si512(out + o, v);
  }
  for (; o < n; ++o) out[o] = in[map[o]];
}

#endif  // LTNS_SIMD_X86

// --- NEON tier --------------------------------------------------------------

#ifdef LTNS_SIMD_NEON

void add_store_neon(float32x4_t cr, float32x4_t ci, cfloat* crow) {
  float* cp = reinterpret_cast<float*>(crow);
  float32x4x2_t cv = vld2q_f32(cp);  // deinterleave: val[0] = re, val[1] = im
  cv.val[0] = vaddq_f32(cv.val[0], cr);
  cv.val[1] = vaddq_f32(cv.val[1], ci);
  vst2q_f32(cp, cv);
}

void micro4_neon(int kc, const float* ar, const float* ai, int as, const float* br,
                 const float* bi, int bs, cfloat* c, int ldc) {
  float32x4_t cr[4], ci[4];
  for (int r = 0; r < 4; ++r) cr[r] = ci[r] = vdupq_n_f32(0.f);
  for (int p = 0; p < kc; ++p) {
    const float32x4_t brv = vld1q_f32(br + size_t(p) * bs);
    const float32x4_t biv = vld1q_f32(bi + size_t(p) * bs);
    for (int r = 0; r < 4; ++r) {
      const float32x4_t arv = vdupq_n_f32(ar[size_t(r) * as + p]);
      const float32x4_t aiv = vdupq_n_f32(ai[size_t(r) * as + p]);
      cr[r] = vaddq_f32(cr[r], vsubq_f32(vmulq_f32(arv, brv), vmulq_f32(aiv, biv)));
      ci[r] = vaddq_f32(ci[r], vaddq_f32(vmulq_f32(arv, biv), vmulq_f32(aiv, brv)));
    }
  }
  for (int r = 0; r < 4; ++r) add_store_neon(cr[r], ci[r], c + size_t(r) * ldc);
}

void micro1_neon(int kc, const float* ar, const float* ai, const float* br, const float* bi,
                 int bs, cfloat* c) {
  float32x4_t cr = vdupq_n_f32(0.f), ci = vdupq_n_f32(0.f);
  for (int p = 0; p < kc; ++p) {
    const float32x4_t brv = vld1q_f32(br + size_t(p) * bs);
    const float32x4_t biv = vld1q_f32(bi + size_t(p) * bs);
    const float32x4_t arv = vdupq_n_f32(ar[p]);
    const float32x4_t aiv = vdupq_n_f32(ai[p]);
    cr = vaddq_f32(cr, vsubq_f32(vmulq_f32(arv, brv), vmulq_f32(aiv, biv)));
    ci = vaddq_f32(ci, vaddq_f32(vmulq_f32(arv, biv), vmulq_f32(aiv, brv)));
  }
  add_store_neon(cr, ci, c);
}

#endif  // LTNS_SIMD_NEON

struct TierKernels {
  size_t lanes = 0;
  Micro4Fn micro4 = nullptr;
  Micro1Fn micro1 = nullptr;
};

TierKernels tier_kernels(IsaTier tier) {
  switch (tier) {
#ifdef LTNS_SIMD_X86
    case IsaTier::kAvx2:
      return {8, micro4_avx2, micro1_avx2};
    case IsaTier::kAvx512:
      return {16, micro4_avx512, micro1_avx512};
#endif
#ifdef LTNS_SIMD_NEON
    case IsaTier::kNeon:
      return {4, micro4_neon, micro1_neon};
#endif
    default:
      return {};  // portable: no vector microkernel
  }
}

// Scalar per-element chain over one K panel — identical to micro_4x4's /
// micro_edge's per-element semantics under -ffp-contract=off. Covers lane
// tails and the whole mixed-precision portable tier (`round` = bf16).
template <bool Round>
void scalar_panel(int i0, int i1, int j0, int j1, int kc, const cfloat* a, int lda,
                  const cfloat* b, int ldb, cfloat* c, int ldc) {
  for (int i = i0; i < i1; ++i)
    for (int j = j0; j < j1; ++j) {
      float cr = 0, ci = 0;
      for (int p = 0; p < kc; ++p) {
        const cfloat av = a[size_t(i) * lda + p];
        const cfloat bv = b[size_t(p) * ldb + j];
        float ar = av.real(), ai = av.imag();
        float br = bv.real(), bi = bv.imag();
        if (Round) {
          ar = bf16_round(ar);
          ai = bf16_round(ai);
          br = bf16_round(br);
          bi = bf16_round(bi);
        }
        cr += ar * br - ai * bi;
        ci += ar * bi + ai * br;
      }
      c[size_t(i) * ldc + j] += cfloat(cr, ci);
    }
}

// Reusable aligned float scratch for the packed split-complex planes.
struct PlaneBuf {
  float* p = nullptr;
  size_t cap = 0;
  float* get(size_t need) {
    if (need > cap) {
      release();
      util::AlignedAllocator<float, exec::kTensorAlignment> a;
      p = a.allocate(need);
      cap = need;
    }
    return p;
  }
  void release() {
    if (p != nullptr) {
      util::AlignedAllocator<float, exec::kTensorAlignment> a;
      a.deallocate(p, cap);
    }
    p = nullptr;
    cap = 0;
  }
  ~PlaneBuf() { release(); }
};

// One row chunk through the vector tier: pack the panel's A/B values into
// split-complex planes (rounding through bf16 in mixed mode — packing is
// where operand precision is applied, once per value), run the lane-wide
// microkernels over full column blocks, and finish ragged columns with the
// scalar chain.
void simd_rows(const TierKernels& tk, Precision prec, int m0, int m1, int n, int k,
               const cfloat* a, const cfloat* b, cfloat* c, SimdPackStats* ps) {
  const bool round = prec == Precision::kBf16;
  for (int i = m0; i < m1; ++i) std::memset(c + size_t(i) * n, 0, size_t(n) * sizeof(cfloat));
  const int lanes = int(tk.lanes);
  const int n_full = n - n % lanes;
  const int mc = m1 - m0;
  PlaneBuf buf;
  for (int kp = 0; kp < k; kp += kKc) {
    const int kc = std::min(kKc, k - kp);
    if (n_full > 0) {
      // Plane layout: [ B re | B im | A re | A im ], all 64-byte aligned.
      const size_t bplane = size_t(kc) * size_t(n_full);
      const size_t aplane = size_t(mc) * size_t(kc);
      float* br = buf.get(2 * bplane + 2 * aplane);
      float* bi = br + bplane;
      float* ar = bi + bplane;
      float* ai = ar + aplane;
      Timer t;
      for (int p = 0; p < kc; ++p) {
        const cfloat* brow = b + size_t(kp + p) * n;
        float* dr = br + size_t(p) * n_full;
        float* di = bi + size_t(p) * n_full;
        for (int j = 0; j < n_full; ++j) {
          dr[j] = round ? bf16_round(brow[j].real()) : brow[j].real();
          di[j] = round ? bf16_round(brow[j].imag()) : brow[j].imag();
        }
      }
      for (int i = 0; i < mc; ++i) {
        const cfloat* arow = a + size_t(m0 + i) * k + kp;
        float* dr = ar + size_t(i) * kc;
        float* di = ai + size_t(i) * kc;
        for (int p = 0; p < kc; ++p) {
          dr[p] = round ? bf16_round(arow[p].real()) : arow[p].real();
          di[p] = round ? bf16_round(arow[p].imag()) : arow[p].imag();
        }
      }
      if (ps != nullptr) {
        ps->ns += t.seconds() * 1e9;
        ps->bytes += double(2 * bplane + 2 * aplane) * sizeof(float);
        ps->packs += 1;
      }
      for (int jb = 0; jb < n_full; jb += lanes) {
        int i = 0;
        for (; i + 4 <= mc; i += 4)
          tk.micro4(kc, ar + size_t(i) * kc, ai + size_t(i) * kc, kc, br + jb, bi + jb, n_full,
                    c + size_t(m0 + i) * n + jb, n);
        for (; i < mc; ++i)
          tk.micro1(kc, ar + size_t(i) * kc, ai + size_t(i) * kc, br + jb, bi + jb, n_full,
                    c + size_t(m0 + i) * n + jb);
      }
    }
    if (n_full < n) {
      if (round)
        scalar_panel<true>(m0, m1, n_full, n, kc, a + kp, k, b + size_t(kp) * n, n, c, n);
      else
        scalar_panel<false>(m0, m1, n_full, n, kc, a + kp, k, b + size_t(kp) * n, n, c, n);
    }
  }
}

// Portable mixed-precision rows: the scalar chain with bf16-rounded
// operands — the reference every vector mixed tier must match bitwise.
void mixed_rows_portable(int m0, int m1, int n, int k, const cfloat* a, const cfloat* b,
                         cfloat* c) {
  for (int i = m0; i < m1; ++i) std::memset(c + size_t(i) * n, 0, size_t(n) * sizeof(cfloat));
  for (int kp = 0; kp < k; kp += kKc) {
    const int kc = std::min(kKc, k - kp);
    scalar_panel<true>(m0, m1, 0, n, kc, a + kp, k, b + size_t(kp) * n, n, c, n);
  }
}

}  // namespace

const char* isa_name(IsaTier t) {
  switch (t) {
    case IsaTier::kAvx2:
      return "avx2";
    case IsaTier::kAvx512:
      return "avx512";
    case IsaTier::kNeon:
      return "neon";
    default:
      return "portable";
  }
}

size_t isa_lanes(IsaTier t) {
  const size_t lanes = tier_kernels(t).lanes;
  return lanes != 0 ? lanes : 4;  // portable: the scalar 4x4 tile width
}

std::vector<IsaTier> compiled_isa_tiers() {
  std::vector<IsaTier> tiers{IsaTier::kPortable};
#ifdef LTNS_SIMD_X86
  tiers.push_back(IsaTier::kAvx2);
  tiers.push_back(IsaTier::kAvx512);
#endif
#ifdef LTNS_SIMD_NEON
  tiers.push_back(IsaTier::kNeon);
#endif
  return tiers;
}

const char* precision_name(Precision p) {
  return p == Precision::kBf16 ? "bf16" : "fp32";
}

void cgemm_simd(IsaTier tier, Precision prec, int m, int n, int k, const cfloat* a,
                const cfloat* b, cfloat* c, ThreadPool* pool, SimdPackStats* pack) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    std::memset(c, 0, size_t(m) * n * sizeof(cfloat));
    return;
  }
  const TierKernels tk = tier_kernels(tier);
  // Same parallel split and threshold as exec::cgemm; every element's chain
  // is row-local, so the chunking is bitwise-free either way.
  const double work = double(m) * n * k;
  const bool parallel = pool != nullptr && pool->size() > 1 && work > 1 << 16;
  if (tk.micro4 == nullptr) {  // portable (or a tier not compiled for this arch)
    if (prec == Precision::kFp32) {
      cgemm(m, n, k, a, b, c, pool);
    } else if (parallel) {
      pool->parallel_for(size_t(m), [&](int, size_t b0, size_t e0) {
        mixed_rows_portable(int(b0), int(e0), n, k, a, b, c);
      });
    } else {
      mixed_rows_portable(0, m, n, k, a, b, c);
    }
    return;
  }
  if (parallel) {
    std::vector<SimdPackStats> acc(size_t(pool->size()));
    pool->parallel_for(size_t(m), [&](int w, size_t b0, size_t e0) {
      simd_rows(tk, prec, int(b0), int(e0), n, k, a, b, c, &acc[size_t(w)]);
    });
    if (pack != nullptr)
      for (const auto& x : acc) {
        pack->bytes += x.bytes;
        pack->ns += x.ns;
        pack->packs += x.packs;
      }
  } else {
    simd_rows(tk, prec, 0, m, n, k, a, b, c, pack);
  }
}

void permute_apply_simd(IsaTier tier, const PermuteMap& map, const cfloat* in, cfloat* out) {
  const size_t block = map.block_elems();
  const uint32_t* mp = map.map_data();
  const size_t nmap = map.map_entries();
  if (block == 1) {
    // Element-granular map: hardware gather where the tier has one.
#ifdef LTNS_SIMD_X86
    if (tier == IsaTier::kAvx512) {
      gather_avx512(mp, in, out, nmap);
      return;
    }
    if (tier == IsaTier::kAvx2) {
      gather_avx2(mp, in, out, nmap);
      return;
    }
#endif
    (void)tier;
    for (size_t o = 0; o < nmap; ++o) out[o] = in[mp[o]];
    return;
  }
  // Blocked copies: fixed-size copies compile to straight vector moves; the
  // generic memcpy already saturates bandwidth for larger blocks.
  if (block == 2) {
    for (size_t o = 0; o < nmap; ++o) std::memcpy(out + o * 2, in + mp[o], 2 * sizeof(cfloat));
  } else if (block == 4) {
    for (size_t o = 0; o < nmap; ++o) std::memcpy(out + o * 4, in + mp[o], 4 * sizeof(cfloat));
  } else {
    for (size_t o = 0; o < nmap; ++o)
      std::memcpy(out + o * block, in + mp[o], block * sizeof(cfloat));
  }
}

Tensor permute_simd(IsaTier tier, const Tensor& t, const std::vector<int>& new_ixs,
                    PermuteStats* stats) {
  if (t.ixs() == new_ixs) {
    if (stats) {
      stats->elements = t.size();
      stats->map_entries = 0;
      stats->block_elems = t.size();
    }
    return t;
  }
  auto perm = permutation_between(t.ixs(), new_ixs);
  PermuteMap map(perm, t.rank());
  Tensor out(new_ixs);
  permute_apply_simd(tier, map, t.raw(), out.raw());
  if (stats) {
    stats->elements = t.size();
    stats->map_entries = map.map_entries();
    stats->block_elems = map.block_elems();
  }
  return out;
}

}  // namespace ltns::exec
