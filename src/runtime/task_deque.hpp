// Per-worker work queue of slice-task ranges.
//
// The scheduler keeps tasks as [lo, hi) ranges, not individual items: the
// owner nibbles `grain` tasks at a time off the front, a thief splits the
// back range in half and walks away with the upper part. Splitting on steal
// is the "lazy binary splitting" idiom — a loaded worker sheds half its
// backlog per steal, so a badly skewed static seed rebalances in O(log n)
// steals. The deque is mutex-guarded; contention is one short lock per
// chunk or steal (not per task), and a Chase-Lev deque can drop in behind
// the same interface if it ever shows up in a profile.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>

namespace ltns::runtime {

struct TaskRange {
  uint64_t lo = 0, hi = 0;  // tasks [lo, hi)
  bool empty() const { return lo >= hi; }
  uint64_t size() const { return empty() ? 0 : hi - lo; }
};

class TaskDeque {
 public:
  // Owner seeds (or re-queues) a range; empty ranges are dropped.
  void push(TaskRange r) {
    if (r.empty()) return;
    std::lock_guard<std::mutex> lk(mu_);
    q_.push_back(r);
    remaining_.fetch_add(r.size(), std::memory_order_relaxed);
  }

  // Owner side: take up to `grain` tasks from the front.
  bool pop(uint64_t grain, TaskRange* out) {
    std::lock_guard<std::mutex> lk(mu_);
    if (q_.empty()) return false;
    TaskRange& front = q_.front();
    out->lo = front.lo;
    out->hi = front.lo + std::min(grain < 1 ? uint64_t(1) : grain, front.size());
    front.lo = out->hi;
    if (front.empty()) q_.pop_front();
    remaining_.fetch_sub(out->size(), std::memory_order_relaxed);
    return true;
  }

  // Thief side: split the back range, taking its upper half (the whole
  // range when it is a single task).
  bool steal(TaskRange* out) {
    std::lock_guard<std::mutex> lk(mu_);
    if (q_.empty()) return false;
    TaskRange& back = q_.back();
    uint64_t mid = back.lo + back.size() / 2;
    out->lo = mid;
    out->hi = back.hi;
    back.hi = mid;
    if (back.empty()) q_.pop_back();
    remaining_.fetch_sub(out->size(), std::memory_order_relaxed);
    return true;
  }

  // Racy size hint for victim selection; exact under the lock only.
  uint64_t approx_size() const { return remaining_.load(std::memory_order_relaxed); }

 private:
  mutable std::mutex mu_;
  std::deque<TaskRange> q_;
  std::atomic<uint64_t> remaining_{0};
};

}  // namespace ltns::runtime
