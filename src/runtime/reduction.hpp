// Deterministic tournament reduction of slice-task results.
//
// The 2^|S| subtasks end in one global sum (the paper's single allReduce).
// Summing results in completion order would make the accumulated floats
// depend on scheduling, so the reduction instead follows a fixed binary
// tournament over task indices: leaf p is task first+p, node (level, idx)
// covers positions [idx·2^level, (idx+1)·2^level), and a node merges with
// its sibling as `left += right` (even index on the left) the moment both
// are available. The merge *structure* depends only on [first, count), so
// the root tensor is bitwise identical for any completion order, worker
// count or executor — the property the determinism tests pin down.
//
// Each completed task parks its tensor until the sibling arrives, so at
// most one pending tensor per tournament round per in-flight subtree is
// alive; merges run outside the map lock.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "exec/tensor.hpp"
#include "runtime/executor_stats.hpp"

namespace ltns::runtime {

class ReductionTree {
 public:
  // Reduces tasks [first, first + count). `reduce_timer` (optional)
  // accumulates merge count and seconds.
  ReductionTree(uint64_t first, uint64_t count, PerfEvent* reduce_timer = nullptr);

  // Contributes the result of task `t`; performs every merge that becomes
  // ready. Thread-safe; each task must be added exactly once.
  void add(uint64_t t, exec::Tensor r);

  // True once every task's contribution has been merged into the root.
  bool complete() const;
  uint64_t merges() const { return merges_; }

  // The reduced tensor; only valid when complete().
  exec::Tensor take_root();

 private:
  bool subtree_nonempty(int level, uint64_t idx) const;

  uint64_t first_ = 0;
  uint64_t count_ = 0;
  PerfEvent* reduce_timer_ = nullptr;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, exec::Tensor> pending_;  // key: (level, idx)
  exec::Tensor root_;
  bool root_set_ = false;
  uint64_t merges_ = 0;
};

}  // namespace ltns::runtime
