// Memory-traffic recorder for the slice runtime.
//
// Mirrors the Sunway memory hierarchy the executors model: main-memory
// tensor traffic (step-by-step TTGT round trips), LDM scratch DMA traffic
// (secondary-slicing gets/puts) and RMA redistribution bytes, plus the two
// high-water marks that bound a run's footprint. One MemoryStats is kept
// per worker during a sliced run and merged once at the end, so recording
// needs no synchronization.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace ltns::runtime {

struct MemoryStats {
  double main_bytes = 0;         // tensor reads+writes against main memory
  double scratch_bytes_get = 0;  // LDM DMA-get traffic
  double scratch_bytes_put = 0;  // LDM DMA-put traffic
  double rma_bytes = 0;          // cooperative-DMA redistribution (§5.3.2)
  uint64_t ldm_subtasks = 0;     // secondary-slicing subtasks executed
  size_t ldm_peak_elems = 0;     // high-water LDM scratch, elements
  size_t host_peak_elems = 0;    // high-water live host tensors, elements

  double scratch_bytes() const { return scratch_bytes_get + scratch_bytes_put; }

  void merge(const MemoryStats& o) {
    main_bytes += o.main_bytes;
    scratch_bytes_get += o.scratch_bytes_get;
    scratch_bytes_put += o.scratch_bytes_put;
    rma_bytes += o.rma_bytes;
    ldm_subtasks += o.ldm_subtasks;
    ldm_peak_elems = std::max(ldm_peak_elems, o.ldm_peak_elems);
    host_peak_elems = std::max(host_peak_elems, o.host_peak_elems);
  }
};

}  // namespace ltns::runtime
