// Work-stealing scheduler for slicing subtasks (the runtime tentpole).
//
// The 2^|S| process-level subtasks are independent but far from uniform:
// secondary slicing makes per-subtask cost vary with the window structure,
// so the static-partition ThreadPool leaves workers idle behind the longest
// chunk. The SliceScheduler seeds each worker's TaskDeque with the same
// contiguous shard a static partition would use (shard shape matches the
// paper's per-node task ranges), then lets idle workers steal half of a
// loaded worker's backlog until the range is drained. The `first_task` /
// `num_tasks` window of SliceRunOptions maps directly onto `run`, so a
// multi-process sharding layer can hand each process a shard and reuse the
// same scheduler inside it.
//
// Worker model mirrors ThreadPool: `workers-1` persistent threads plus the
// calling thread participating as worker 0, epoch-dispatched so a scheduler
// can be reused across runs (one run at a time). Telemetry lives in an
// ExecutorStats whose counters are cumulative; diff snapshots for per-run
// numbers. `cancel()` flips a flag that makes workers drain their deques
// without executing, so `run` still terminates with an exact accounting:
// finished + cancelled == scheduled, always.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/executor_stats.hpp"
#include "runtime/task_deque.hpp"

namespace ltns::runtime {

// body(worker_id, task): worker_id in [0, size()), task is the absolute
// slice-task index (assignment bits).
using TaskFn = std::function<void(int, uint64_t)>;

class SliceScheduler {
 public:
  // `workers` = 0 picks hardware_concurrency (at least 1).
  explicit SliceScheduler(int workers = 0);
  ~SliceScheduler();

  SliceScheduler(const SliceScheduler&) = delete;
  SliceScheduler& operator=(const SliceScheduler&) = delete;

  int size() const { return int(threads_.size()) + 1; }  // +1: caller participates

  // Runs body(worker, t) for every t in [first_task, first_task+num_tasks),
  // dynamically chunked by `grain` tasks per deque pop. Blocks until the
  // range is drained; returns the number of tasks actually executed (less
  // than num_tasks only if cancel() fired mid-run). When `stats_sink` is
  // given, this run's telemetry goes there instead of the scheduler's
  // cumulative stats() — callers sharing a scheduler get per-run numbers
  // without racing on the shared counters.
  uint64_t run(uint64_t first_task, uint64_t num_tasks, const TaskFn& body, uint64_t grain = 1,
               ExecutorStats* stats_sink = nullptr);

  // Makes in-flight and future tasks of the current run be discarded; the
  // running run still returns promptly with an exact finished/cancelled
  // split. Cleared on the next run().
  void cancel() { cancel_.store(true, std::memory_order_release); }
  bool cancelled() const { return cancel_.load(std::memory_order_acquire); }

  ExecutorStats& stats() { return stats_; }
  const ExecutorStats& stats() const { return stats_; }

  // Process-wide default scheduler (lazily constructed).
  static SliceScheduler& global();

 private:
  void worker_loop(int id);
  // Work/steal until the current run's range is drained; returns tasks run.
  void participate(int id);
  bool try_steal(int thief, TaskRange* out);
  // Executes (or discards, once cancelled) the tasks of `r`.
  void run_range(int id, TaskRange r);

  std::vector<std::thread> threads_;
  std::vector<TaskDeque> deques_;
  ExecutorStats stats_;

  // Epoch dispatch (one run at a time; run_mu_ serializes callers).
  std::mutex run_mu_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  uint64_t epoch_ = 0;
  int helpers_active_ = 0;
  bool stop_ = false;

  // Current run state.
  const TaskFn* body_ = nullptr;
  ExecutorStats* cur_stats_ = &stats_;  // this run's telemetry sink
  uint64_t grain_ = 1;
  std::atomic<uint64_t> remaining_{0};  // tasks not yet executed or discarded
  std::atomic<uint64_t> executed_{0};
  std::atomic<bool> cancel_{false};
};

}  // namespace ltns::runtime
