#include "runtime/slice_scheduler.hpp"

#include <algorithm>
#include <chrono>

#include "util/timer.hpp"

namespace ltns::runtime {

SliceScheduler::SliceScheduler(int workers) {
  if (workers <= 0) workers = int(std::max(1u, std::thread::hardware_concurrency()));
  deques_ = std::vector<TaskDeque>(size_t(workers));
  threads_.reserve(size_t(workers - 1));
  for (int i = 1; i < workers; ++i) threads_.emplace_back([this, i] { worker_loop(i); });
}

SliceScheduler::~SliceScheduler() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void SliceScheduler::worker_loop(int id) {
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
    }
    participate(id);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--helpers_active_ == 0) cv_done_.notify_one();
    }
  }
}

void SliceScheduler::run_range(int id, TaskRange r) {
  for (uint64_t t = r.lo; t < r.hi; ++t) {
    if (cancelled()) {
      // Drain without executing so the run still terminates exactly.
      cur_stats_->cancelled_delta(r.hi - t);
      remaining_.fetch_sub(r.hi - t, std::memory_order_acq_rel);
      return;
    }
    cur_stats_->running_delta(+1);
    (*body_)(id, t);
    cur_stats_->running_delta(-1);
    cur_stats_->finished_delta(1);
    executed_.fetch_add(1, std::memory_order_relaxed);
    remaining_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

bool SliceScheduler::try_steal(int thief, TaskRange* out) {
  const int nw = size();
  // Scan victims round-robin from the thief's right-hand neighbour; the
  // size hint skips obviously empty deques cheaply.
  for (int d = 1; d < nw; ++d) {
    int victim = (thief + d) % nw;
    if (deques_[size_t(victim)].approx_size() == 0) continue;
    if (deques_[size_t(victim)].steal(out)) return true;
  }
  return false;
}

void SliceScheduler::participate(int id) {
  Timer interval;
  double busy = 0;
  int idle_scans = 0;
  for (;;) {
    TaskRange r;
    if (deques_[size_t(id)].pop(grain_, &r)) {
      idle_scans = 0;
      Timer t;
      run_range(id, r);
      busy += t.seconds();
    } else if (try_steal(id, &r)) {
      idle_scans = 0;
      // Keep only `grain` tasks in hand; park the rest in our own deque so
      // other idle workers can re-steal from it. Only the kept tasks count
      // as stolen — the parked remainder is charged to whoever executes it
      // off this deque, so `stolen` never exceeds `scheduled`.
      if (r.size() > grain_) {
        deques_[size_t(id)].push({r.lo + grain_, r.hi});
        r.hi = r.lo + grain_;
      }
      cur_stats_->stolen_delta(r.size());
      Timer t;
      run_range(id, r);
      busy += t.seconds();
    } else if (remaining_.load(std::memory_order_acquire) == 0) {
      break;
    } else {
      // Out of local and stealable work but tasks are still in flight
      // elsewhere (or a loaded worker is between pops): idle-scan with
      // backoff so a long serial tail doesn't burn the other cores.
      cur_stats_->waiting_delta(+1);
      if (++idle_scans < 16) {
        std::this_thread::yield();
      } else {
        int shift = std::min(idle_scans - 16, 5);  // 50us .. 1.6ms
        std::this_thread::sleep_for(std::chrono::microseconds(50L << shift));
      }
      cur_stats_->waiting_delta(-1);
    }
    if (interval.seconds() > ExecutorStats::tau_seconds) {
      cur_stats_->update_ema_utilization(busy, interval.seconds());
      busy = 0;
      interval.reset();
    }
  }
  if (interval.seconds() > 0) cur_stats_->update_ema_utilization(busy, interval.seconds());
}

uint64_t SliceScheduler::run(uint64_t first_task, uint64_t num_tasks, const TaskFn& body,
                             uint64_t grain, ExecutorStats* stats_sink) {
  if (num_tasks == 0) return 0;
  std::lock_guard<std::mutex> run_lk(run_mu_);

  const int nw = size();
  body_ = &body;
  cur_stats_ = stats_sink != nullptr ? stats_sink : &stats_;
  grain_ = std::max<uint64_t>(1, grain);
  cancel_.store(false, std::memory_order_release);
  executed_.store(0, std::memory_order_relaxed);
  remaining_.store(num_tasks, std::memory_order_release);
  cur_stats_->scheduled_delta(num_tasks);

  // Seed each deque with the shard a static partition would get; stealing
  // erases whatever imbalance the shard boundaries carry.
  const uint64_t per = num_tasks / uint64_t(nw), rem = num_tasks % uint64_t(nw);
  uint64_t lo = first_task;
  for (int w = 0; w < nw; ++w) {
    uint64_t len = per + (uint64_t(w) < rem ? 1 : 0);
    deques_[size_t(w)].push({lo, lo + len});
    lo += len;
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    helpers_active_ = int(threads_.size());
    ++epoch_;
  }
  cv_work_.notify_all();
  participate(0);  // caller is worker 0

  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] { return helpers_active_ == 0; });
  body_ = nullptr;
  cur_stats_ = &stats_;
  return executed_.load(std::memory_order_relaxed);
}

SliceScheduler& SliceScheduler::global() {
  static SliceScheduler sched;
  return sched;
}

}  // namespace ltns::runtime
