#include "runtime/reduction.hpp"

#include <cassert>
#include <utility>

#include "obs/trace.hpp"

namespace ltns::runtime {

namespace {

// (level, idx) -> map key. Levels cap at 64; positions shrink by half per
// level, so idx always fits in the low bits.
uint64_t node_key(int level, uint64_t idx) { return (uint64_t(level) << 57) | idx; }

void merge_into(exec::Tensor& left, const exec::Tensor& right) {
  assert(left.ixs() == right.ixs() && "slice results must share one layout");
  exec::cfloat* a = left.raw();
  const exec::cfloat* b = right.raw();
  for (size_t i = 0; i < left.size(); ++i) a[i] += b[i];
}

}  // namespace

ReductionTree::ReductionTree(uint64_t first, uint64_t count, PerfEvent* reduce_timer)
    : first_(first), count_(count), reduce_timer_(reduce_timer) {
  assert(count < (uint64_t(1) << 57));
  root_set_ = count == 0;  // empty reduction: root is the empty tensor
}

bool ReductionTree::subtree_nonempty(int level, uint64_t idx) const {
  // Node (level, idx) covers positions [idx·2^level, (idx+1)·2^level) ∩ [0, count).
  return level < 64 && (idx << level) < count_;
}

void ReductionTree::add(uint64_t t, exec::Tensor r) {
  assert(t >= first_ && t - first_ < count_);
  int level = 0;
  uint64_t idx = t - first_;
  for (;;) {
    if ((idx == 0 && (level >= 64 || (uint64_t(1) << level) >= count_))) {
      // This node covers the whole range: it is the root.
      std::lock_guard<std::mutex> lk(mu_);
      assert(!root_set_);
      root_ = std::move(r);
      root_set_ = true;
      return;
    }
    if (!subtree_nonempty(level, idx ^ 1)) {
      // Sibling range is empty (ragged right edge): promote unchanged.
      ++level;
      idx >>= 1;
      continue;
    }
    exec::Tensor sibling;
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto it = pending_.find(node_key(level, idx ^ 1));
      if (it == pending_.end()) {
        // First of the pair to finish: park and let the sibling merge.
        pending_.emplace(node_key(level, idx), std::move(r));
        return;
      }
      sibling = std::move(it->second);
      pending_.erase(it);
    }
    // Merge outside the lock; the even-index node is always the left
    // operand, which fixes the float-addition order.
    {
      PerfScope ps(reduce_timer_);
      obs::TraceScope tr(obs::EventKind::kReduce, r.size());
      if (idx & 1) {
        merge_into(sibling, r);
        r = std::move(sibling);
      } else {
        merge_into(r, sibling);
      }
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++merges_;
    }
    ++level;
    idx >>= 1;
  }
}

bool ReductionTree::complete() const {
  std::lock_guard<std::mutex> lk(mu_);
  return root_set_ && pending_.empty();
}

exec::Tensor ReductionTree::take_root() {
  std::lock_guard<std::mutex> lk(mu_);
  assert(root_set_ && pending_.empty() && "reduction incomplete");
  root_set_ = false;
  return std::move(root_);
}

}  // namespace ltns::runtime
