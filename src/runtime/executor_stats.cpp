#include "runtime/executor_stats.hpp"

#include <algorithm>
#include <cmath>

namespace ltns::runtime {

ExecutorSnapshot ExecutorSnapshot::since(const ExecutorSnapshot& begin) const {
  ExecutorSnapshot d = *this;
  d.scheduled -= begin.scheduled;
  d.stolen -= begin.stolen;
  d.finished -= begin.finished;
  d.cancelled -= begin.cancelled;
  d.ranges_stolen -= begin.ranges_stolen;
  d.ranges_reissued -= begin.ranges_reissued;
  d.straggler_wait_seconds -= begin.straggler_wait_seconds;
  d.device = device.since(begin.device);
  d.permute.count -= begin.permute.count;
  d.permute.seconds -= begin.permute.seconds;
  d.gemm.count -= begin.gemm.count;
  d.gemm.seconds -= begin.gemm.seconds;
  d.reduce.count -= begin.reduce.count;
  d.reduce.seconds -= begin.reduce.seconds;
  d.memory.count -= begin.memory.count;
  d.memory.seconds -= begin.memory.seconds;
  return d;  // running/waiting/ema are gauges: keep the end-of-run value
}

void ExecutorSnapshot::merge(const ExecutorSnapshot& o) {
  const uint64_t f = finished + o.finished;
  if (f > 0)
    ema_utilization =
        (ema_utilization * double(finished) + o.ema_utilization * double(o.finished)) / double(f);
  scheduled += o.scheduled;
  stolen += o.stolen;
  finished += o.finished;
  cancelled += o.cancelled;
  ranges_stolen += o.ranges_stolen;
  ranges_reissued += o.ranges_reissued;
  straggler_wait_seconds += o.straggler_wait_seconds;
  device.merge(o.device);
  running += o.running;
  waiting += o.waiting;
  permute.count += o.permute.count;
  permute.seconds += o.permute.seconds;
  gemm.count += o.gemm.count;
  gemm.seconds += o.gemm.seconds;
  reduce.count += o.reduce.count;
  reduce.seconds += o.reduce.seconds;
  memory.count += o.memory.count;
  memory.seconds += o.memory.seconds;
}

void ExecutorStats::update_ema_utilization(double busy, double interval) {
  if (interval <= 0) return;
  const double util = std::clamp(busy / interval, 0.0, 1.0);
  // Seed with the first observation so short runs read true utilization
  // instead of an EMA still warming up from zero.
  bool first = false;
  if (ema_seeded_.compare_exchange_strong(first, true, std::memory_order_relaxed)) {
    ema_util_.store(util, std::memory_order_relaxed);
    return;
  }
  const double alpha = 1.0 - std::exp(-interval / tau_seconds);
  double cur = ema_util_.load(std::memory_order_relaxed);
  double next;
  do {
    next = alpha * util + (1.0 - alpha) * cur;
  } while (!ema_util_.compare_exchange_weak(cur, next, std::memory_order_relaxed));
}

ExecutorSnapshot ExecutorStats::snapshot() const {
  ExecutorSnapshot s;
  s.scheduled = scheduled();
  s.stolen = stolen();
  s.finished = finished();
  s.cancelled = cancelled();
  s.running = running();
  s.waiting = waiting();
  s.ema_utilization = ema_utilization();
  s.permute = {permute.count(), permute.seconds()};
  s.gemm = {gemm.count(), gemm.seconds()};
  s.reduce = {reduce.count(), reduce.seconds()};
  s.memory = {memory.count(), memory.seconds()};
  return s;
}

}  // namespace ltns::runtime
