// Executor telemetry for the slice runtime (src/runtime/).
//
// ExecutorStats is the live instrument panel of a SliceScheduler: task
// lifecycle counters (scheduled / running / waiting / stolen / finished /
// cancelled), an EMA of worker utilization, and per-phase PerfEvent timers
// for the three places a slice subtask spends its time — permutation, GEMM
// and the final reduction. All updates are atomic so workers never contend
// on a lock to report; readers take a consistent-enough Snapshot and diff
// two snapshots to get per-run deltas.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "device/stats.hpp"
#include "util/timer.hpp"

namespace ltns::runtime {

// Accumulating phase timer: entry count + total seconds. `add` is a CAS
// loop on the double (C++17 has no fetch_add for atomic<double>), which is
// fine at per-task update granularity. Prefer timing through PerfScope —
// it cannot leave a phase open across an exception, and debug builds
// assert every scope closed before the event is destroyed.
class PerfEvent {
 public:
  void add(double seconds) { add_count(1, seconds); }
  void add_count(uint64_t n, double seconds) {
    count_.fetch_add(n, std::memory_order_relaxed);
    double cur = seconds_.load(std::memory_order_relaxed);
    while (!seconds_.compare_exchange_weak(cur, cur + seconds, std::memory_order_relaxed)) {
    }
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double seconds() const { return seconds_.load(std::memory_order_relaxed); }

#ifndef NDEBUG
  ~PerfEvent() {
    assert(open_scopes_.load(std::memory_order_relaxed) == 0 &&
           "PerfEvent destroyed with a PerfScope still open");
  }
  void scope_opened() { open_scopes_.fetch_add(1, std::memory_order_relaxed); }
  void scope_closed() { open_scopes_.fetch_sub(1, std::memory_order_relaxed); }
#else
  void scope_opened() {}
  void scope_closed() {}
#endif

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<double> seconds_{0.0};
#ifndef NDEBUG
  std::atomic<int64_t> open_scopes_{0};
#endif
};

// RAII guard over a PerfEvent: books the scope's elapsed time on
// destruction, so an exception or cancellation mid-phase can no longer
// leave a timer started. A null event makes the guard a no-op (the common
// "stats are optional" call-site shape).
class PerfScope {
 public:
  explicit PerfScope(PerfEvent* ev) : ev_(ev) {
    if (ev_ != nullptr) ev_->scope_opened();
  }
  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;
  ~PerfScope() { close(); }
  // Ends the phase early (idempotent).
  void close() {
    if (ev_ == nullptr) return;
    ev_->add(t_.seconds());
    ev_->scope_closed();
    ev_ = nullptr;
  }

 private:
  PerfEvent* ev_;
  Timer t_;
};

struct PerfSnapshot {
  uint64_t count = 0;
  double seconds = 0;
};

// Plain-value snapshot of an ExecutorStats, safe to embed in results.
// Counters are cumulative over the stats object's lifetime; `since` turns
// two snapshots into a per-run delta (gauges keep their end-of-run value).
struct ExecutorSnapshot {
  uint64_t scheduled = 0;
  uint64_t stolen = 0;     // tasks a thief took AND ran directly off a steal
                           // (re-parked remainders count when executed)
  uint64_t finished = 0;
  uint64_t cancelled = 0;  // discarded unexecuted after cancel()
  int running = 0;         // gauge: tasks executing right now
  int waiting = 0;         // gauge: workers idle-scanning for work
  double ema_utilization = 0;  // EMA of busy-fraction across workers, [0, 1]
  // Process-level rebalance counters (elastic shard driver): leases issued
  // off another worker's notional home window, ranges re-issued after a
  // revoke or worker death, and the cumulative time idle workers spent
  // parked waiting on straggler-held ranges. Zero for in-process runs.
  uint64_t ranges_stolen = 0;
  uint64_t ranges_reissued = 0;
  double straggler_wait_seconds = 0;
  // Device-backend transfer/kernel telemetry (bytes/ns to-device, kernel
  // counts). Filled by the slice runner from the run's merged ExecStats;
  // zero when the run used the raw host path.
  device::DeviceStats device;
  PerfSnapshot permute, gemm, reduce, memory;

  ExecutorSnapshot since(const ExecutorSnapshot& begin) const;

  // Folds another run's snapshot into this one: counters, gauges and phase
  // timers add; the utilization EMA becomes a finished-task-weighted
  // average. The multi-process driver uses this to aggregate per-shard
  // telemetry into one cross-process view.
  void merge(const ExecutorSnapshot& o);
};

class ExecutorStats {
 public:
  void scheduled_delta(uint64_t n) { scheduled_.fetch_add(n, std::memory_order_relaxed); }
  void stolen_delta(uint64_t n) { stolen_.fetch_add(n, std::memory_order_relaxed); }
  void finished_delta(uint64_t n) { finished_.fetch_add(n, std::memory_order_relaxed); }
  void cancelled_delta(uint64_t n) { cancelled_.fetch_add(n, std::memory_order_relaxed); }
  void running_delta(int v) { running_.fetch_add(v, std::memory_order_acq_rel); }
  void waiting_delta(int v) { waiting_.fetch_add(v, std::memory_order_acq_rel); }

  uint64_t scheduled() const { return scheduled_.load(std::memory_order_relaxed); }
  uint64_t stolen() const { return stolen_.load(std::memory_order_relaxed); }
  uint64_t finished() const { return finished_.load(std::memory_order_relaxed); }
  uint64_t cancelled() const { return cancelled_.load(std::memory_order_relaxed); }
  int running() const { return running_.load(std::memory_order_relaxed); }
  int waiting() const { return waiting_.load(std::memory_order_relaxed); }

  // Folds one worker's observation of `busy` seconds over `interval`
  // seconds into the utilization EMA with time constant `tau_seconds`.
  void update_ema_utilization(double busy, double interval);
  double ema_utilization() const { return ema_util_.load(std::memory_order_relaxed); }

  ExecutorSnapshot snapshot() const;

  // Per-phase timers; the slice runner feeds permute/gemm/memory from the
  // executors' ExecStats and the ReductionTree feeds `reduce`.
  PerfEvent permute, gemm, reduce, memory;

  static constexpr double tau_seconds = 0.1;

 private:
  std::atomic<uint64_t> scheduled_{0}, stolen_{0}, finished_{0}, cancelled_{0};
  std::atomic<int> running_{0}, waiting_{0};
  std::atomic<double> ema_util_{0.0};
  std::atomic<bool> ema_seeded_{false};
};

}  // namespace ltns::runtime
