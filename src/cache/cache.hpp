// Content-addressed plan & result cache.
//
// Path optimization (src/path/: greedy + partition trials + local tune)
// dominates small-job latency and is recomputed for every identical query
// and every identical service submission. Both caches here are keyed by an
// FNV-1a fingerprint of the job INPUTS — circuit text, output bits, open
// qubits, and every plan knob — hashed with the same dist::fnv1a_hex the
// checkpoint journal's run fingerprint uses. The input key is usable
// BEFORE planning (the journal's run_fingerprint hashes the resolved path
// and so cannot front a plan lookup), and because make_plan is
// deterministic in its inputs, equal input keys imply equal resolved plans
// and — by the bitwise-determinism contract — equal result bytes across
// executors, backends and process counts.
//
// Each cache is a two-tier store: an in-memory LRU of serialized entries in
// front of an optional on-disk directory (`--cache-dir`). Entries are
// ByteWriter payloads behind the same magic/version/endian header
// discipline as result.bin and the journal, plus a CRC — a truncated or
// corrupt entry is dropped (and unlinked) and the value recomputed, never
// trusted. Disk writes are tmp+rename so readers only ever see whole
// entries.
//
// A plan-cache hit rebuilds the ContractionTree from the stored SSA path
// over the caller's freshly lowered network (cheap, deterministic) and
// re-adds the stored sliced edges — src/path/ and the slicers never run,
// and the rebuilt plan is identical to the one that was stored, so a warm
// run's output is byte-identical to the cold run that populated it.
#pragma once

#include <complex>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/telemetry.hpp"
#include "cache/options.hpp"
#include "core/planner.hpp"
#include "tn/tensor_network.hpp"

namespace ltns::cache {

// Entry-file header constants, mirroring result.bin / ledger.journal.
// v2: plan payloads carry the portable plan blob (encode_plan) behind the
// key; batch payloads gain the entry's base bits (covering-batch probes).
// Old entries fail the version check, are dropped and recomputed.
inline constexpr uint32_t kCacheMagic = 0x4C544E43u;  // "LTNC"
inline constexpr uint16_t kCacheVersion = 2;

// Content-addressed keys (16-char FNV-1a hex). `bits` is the '0'/'1'
// output bitstring, `open_qubits` a textual open-qubit list ("" when
// closed) — the same canonical forms dist::run_fingerprint takes.
std::string plan_key(const std::string& circuit_text, const std::string& bits,
                     const std::string& open_qubits, const core::PlanOptions& plan);

// The result key extends the plan key's preimage with the execution knobs
// that select WHICH numbers are computed (fused stem windows and the LDM
// capacity change the kernel schedule, not just its speed). Executor,
// backend and process count are deliberately absent: conforming backends
// are bitwise identical, so one cached result serves them all.
std::string result_key(const std::string& circuit_text, const std::string& bits,
                       const std::string& open_qubits, const core::PlanOptions& plan, bool fused,
                       uint64_t ldm_elems);

// One LRU+disk tier of serialized entries. Shared by both caches; public
// mostly for tests, which exercise eviction order and corruption handling
// directly against it.
class TieredStore {
 public:
  // `kind` tags the entry header (plans and results must never deserialize
  // as each other even if a file is copied across subdirectories);
  // `subdir` is the directory under cache_dir ("" = cache_dir itself).
  TieredStore(const CacheOptions& opt, uint8_t kind, std::string subdir, size_t max_entries);

  // Memory tier first, then disk (a disk hit is promoted into the LRU).
  // False on miss; a corrupt disk entry counts corrupt_dropped, is
  // unlinked (unless read-only) and reported as a miss.
  bool get(const std::string& key, std::vector<uint8_t>* payload);
  // Inserts into the LRU and (unless read-only or diskless) persists via
  // tmp+rename. Re-inserting an existing key refreshes it.
  void put(const std::string& key, std::vector<uint8_t> payload);

  bool enabled() const { return max_entries_ > 0; }
  TierStats stats() const;

 private:
  std::string file_path(const std::string& key) const;
  bool read_disk(const std::string& key, std::vector<uint8_t>* payload);
  void write_disk(const std::string& key, const std::vector<uint8_t>& payload);
  void insert_memory(const std::string& key, std::vector<uint8_t> payload);

  std::string dir_;  // "" = no disk tier
  uint8_t kind_ = 0;
  size_t max_entries_ = 0;
  bool read_only_ = false;
  mutable std::mutex mu_;
  // LRU: most recent at the front; lookup map points into the list.
  std::list<std::pair<std::string, std::vector<uint8_t>>> lru_;
  std::unordered_map<std::string, decltype(lru_)::iterator> index_;
  uint64_t memory_bytes_ = 0;
  TierStats stats_;
};

// Portable form of a resolved plan: SSA path + sliced edges + metrics +
// method — everything EXCEPT the network-pointing derived structures
// (ContractionTree/Stem/SliceSet), which decode_plan rebuilds over the
// caller's network. Because lowering is value-blind (the network structure
// is identical across output bit VALUES at the same open positions), a
// plan encoded against one bitstring decodes against any other with the
// same open set — api::Simulator::prepare_like re-targets plans this way,
// so a query run plans each open-set signature exactly once.
std::vector<uint8_t> encode_plan(const core::Plan& plan);

// Rebuilds the encoded plan over `net` (freshly lowered + simplified).
// False when the payload is corrupt or does not fit `net` — callers
// recompute; never aborts.
bool decode_plan(const std::vector<uint8_t>& payload, const tn::TensorNetwork& net,
                 core::Plan* out);

// Serialized resolved plan: a key preamble plus the encode_plan blob.
// The ContractionTree/Stem/SliceSet are NOT stored — they hold pointers
// into one specific TensorNetwork and are rebuilt deterministically over
// the caller's network on every hit.
class PlanCache {
 public:
  explicit PlanCache(const CacheOptions& opt);

  // Rebuilds the cached plan over `net` (the caller's freshly lowered +
  // simplified network). False on miss; an entry whose path or slice set
  // does not validate against `net` is treated as corrupt and recomputed.
  bool lookup(const std::string& key, const tn::TensorNetwork& net, core::Plan* out);
  void insert(const std::string& key, const core::Plan& plan);

  bool enabled() const { return store_.enabled(); }
  TierStats stats() const { return store_.stats(); }

 private:
  TieredStore store_;
};

// The cached form of one completed amplitude run — everything a repeated
// query (or a duplicate service submission) needs to answer without
// contraction, including the full telemetry tail so a served result is
// indistinguishable from the run that produced it.
struct AmplitudeEntry {
  std::complex<double> amplitude{0, 0};
  int32_t num_slices = 0;
  core::SlicedMetrics slicing;
  uint64_t tasks_run = 0;
  double wall_seconds = 0;
  api::RunTelemetry telemetry;
};

struct BatchEntry {
  std::vector<std::complex<double>> amplitudes;
  std::vector<int> open_qubits;
  // The closed qubits' bit values (full-length; open positions zeroed).
  // Lets find_covering_batch decide whether this batch covers a request.
  std::vector<int> base_bits;
  core::SlicedMetrics slicing;
  api::RunTelemetry telemetry;
};

class ResultCache {
 public:
  explicit ResultCache(const CacheOptions& opt);

  bool lookup_amplitude(const std::string& key, AmplitudeEntry* out);
  void insert_amplitude(const std::string& key, const AmplitudeEntry& e);
  // `scope` fingerprints everything the result key hashes BESIDES the bits
  // and open qubits (circuit + plan + exec knobs) and feeds the in-memory
  // covering-batch index; "" skips indexing. Hits and inserts both index,
  // so a cold process warms the index through its first exact lookups.
  bool lookup_batch(const std::string& key, BatchEntry* out, const std::string& scope = {});
  void insert_batch(const std::string& key, const BatchEntry& e, const std::string& scope = {});

  // Probes the index for a batch in `scope` whose open set is a superset
  // of `open_qubits` and whose base bits agree with `bits` outside it; the
  // caller slices its answer out (query::restrict_amplitudes). An exact
  // match can be returned too — compare out->open_qubits to distinguish;
  // only proper supersets count toward superset_hits().
  bool find_covering_batch(const std::string& scope, const std::vector<int>& bits,
                           const std::vector<int>& open_qubits, BatchEntry* out);
  uint64_t superset_hits() const;

  bool enabled() const { return amps_.enabled(); }
  TierStats stats() const;

 private:
  void index_batch(const std::string& key, const std::string& scope,
                   const std::vector<int>& base_bits, const std::vector<int>& open_qubits);

  // Amplitudes and batches are distinct entry kinds in one keyspace (the
  // key already encodes the open-qubit list, so they cannot collide; the
  // header kind is belt-and-braces).
  TieredStore amps_;
  TieredStore batches_;
  // Covering-batch index: which (base_bits, open_qubits) each known batch
  // key answers, per scope. Process-local (the disk tier has no scan);
  // bounded FIFO, newest matches win.
  struct BatchIndexEntry {
    std::string key, scope;
    std::vector<int> base_bits, open_qubits;
  };
  mutable std::mutex index_mu_;
  std::vector<BatchIndexEntry> batch_index_;
  uint64_t superset_hits_ = 0;
};

// Option coherence for the cache group, shared by validate_options and the
// server front door. Returns the error text, "" when coherent.
std::string validate_cache_options(const CacheOptions& opt);

}  // namespace ltns::cache
