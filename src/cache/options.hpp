// Knobs and counters of the content-addressed plan & result cache.
//
// Split from cache.hpp so option aggregates (api::SimulatorOptions,
// dist::ServerOptions) can embed CacheOptions without pulling the cache
// implementation — cache.hpp includes api/telemetry.hpp, and the API layer
// includes this file, so the dependency must stay one-way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ltns::cache {

// Grouped like ShardingOptions/DurabilityOptions: one sub-struct, mirrored
// one-to-one by the CLI's cache flag group.
struct CacheOptions {
  // Directory of the persistent tier ("" = in-memory tiers only). Shared
  // freely between processes and transports: a solo `amp` run warms the
  // same store a `serve` daemon reads, because keys are content-addressed.
  std::string cache_dir;
  // In-memory LRU capacities, in entries. 0 disables that cache entirely
  // (both tiers) — the disk tier is only reachable through its LRU front.
  size_t plan_cache_entries = 32;
  size_t result_cache_entries = 64;
  // Consult but never write the on-disk store (e.g. a read-only replica
  // warming from a shared volume). The in-memory LRU still fills — it is
  // process-private and vanishes on exit.
  bool read_only = false;

  bool plan_enabled() const { return plan_cache_entries > 0; }
  bool result_enabled() const { return result_cache_entries > 0; }
  bool any_enabled() const { return plan_enabled() || result_enabled(); }
};

// Counters of one tiered store (the plan cache and the result cache each
// own one). memory_* describe the LRU front, disk_* the persistent tier.
struct TierStats {
  uint64_t memory_hits = 0;
  uint64_t disk_hits = 0;        // missed the LRU, found on disk (promoted)
  uint64_t misses = 0;           // missed both tiers
  uint64_t evictions = 0;        // LRU entries displaced by capacity
  uint64_t insertions = 0;
  uint64_t corrupt_dropped = 0;  // bad magic/CRC/shape: unlinked + recomputed
  uint64_t disk_bytes_written = 0;
  // Gauges (current state, not monotone).
  uint64_t memory_entries = 0;
  uint64_t memory_bytes = 0;

  uint64_t hits() const { return memory_hits + disk_hits; }
};

// Snapshot surfaced by Simulator::cache_stats() / the server status probe
// and folded into obs::MetricsRegistry as the ltns_cache_* series.
struct CacheStats {
  TierStats plan;
  TierStats result;
  // Amplitude-query misses answered by slicing a cached batch whose open
  // set covers the request (ResultCache::find_covering_batch). Exported as
  // ltns_cache_superset_hits_total.
  uint64_t superset_hits = 0;

  uint64_t hits() const { return plan.hits() + result.hits(); }
  uint64_t misses() const { return plan.misses + result.misses; }
};

}  // namespace ltns::cache
