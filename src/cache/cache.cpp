#include "cache/cache.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "dist/checkpoint.hpp"
#include "dist/job.hpp"
#include "dist/wire.hpp"
#include "tn/stem.hpp"

namespace ltns::cache {

namespace {

// Entry kinds tagged in the on-disk header. Values are on-disk ABI.
constexpr uint8_t kKindPlan = 1;
constexpr uint8_t kKindAmplitude = 2;
constexpr uint8_t kKindBatch = 3;

// Same shape as the journal's RecordHeader: a cache entry is one record.
struct EntryHeader {
  uint32_t magic;
  uint16_t version;
  uint8_t endian;
  uint8_t kind;
  uint64_t payload_len;
  uint32_t crc;
  uint32_t reserved;
};
static_assert(sizeof(EntryHeader) == 24, "cache entry header layout is on-disk ABI");

// A cache entry larger than this is corruption, not data (the biggest
// honest entry is a batch result: 2^24 amplitudes is 256 MiB).
constexpr uint64_t kMaxEntryPayload = uint64_t(1) << 30;

void mkdir_quiet(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    // A cache that cannot create its directory degrades to memory-only;
    // the first write will fail the same way and be counted there.
  }
}

void put_metrics(dist::ByteWriter& w, const core::SlicedMetrics& m) {
  w.put<double>(m.log2_num_subtasks);
  w.put<double>(m.log2_cost_per_subtask);
  w.put<double>(m.log2_total_cost);
  w.put<double>(m.log2_overhead);
  w.put<double>(m.max_log2size);
  w.put<double>(m.max_union_log2size);
}

core::SlicedMetrics get_metrics(dist::ByteReader& r) {
  core::SlicedMetrics m;
  m.log2_num_subtasks = r.get<double>();
  m.log2_cost_per_subtask = r.get<double>();
  m.log2_total_cost = r.get<double>();
  m.log2_overhead = r.get<double>();
  m.max_log2size = r.get<double>();
  m.max_union_log2size = r.get<double>();
  return m;
}

// Structural validity of a deserialized SSA path over `net`, checked
// BEFORE ContractionTree::build — build asserts on malformed paths, and a
// corrupt cache entry must downgrade to a miss, not abort the process.
bool ssa_path_fits(const tn::SsaPath& path, const tn::TensorNetwork& net, size_t num_slices) {
  const size_t leaves = path.leaf_vertices.size();
  if (int(leaves) != net.num_alive_vertices()) return false;
  if (leaves == 0) return false;
  std::vector<char> seen_vertex(size_t(net.num_vertices()), 0);
  for (tn::VertId v : path.leaf_vertices) {
    if (v < 0 || v >= net.num_vertices() || !net.vertex(v).alive) return false;
    if (seen_vertex[size_t(v)]++) return false;
  }
  if (path.steps.size() != leaves - 1) return false;
  std::vector<char> consumed(leaves + path.steps.size(), 0);
  for (size_t k = 0; k < path.steps.size(); ++k) {
    const auto [l, rr] = path.steps[k];
    const int limit = int(leaves + k);
    if (l < 0 || rr < 0 || l >= limit || rr >= limit || l == rr) return false;
    if (consumed[size_t(l)]++ || consumed[size_t(rr)]++) return false;
  }
  if (num_slices > size_t(net.num_edges())) return false;
  return true;
}

}  // namespace

std::string plan_key(const std::string& circuit_text, const std::string& bits,
                     const std::string& open_qubits, const core::PlanOptions& plan) {
  std::string id = "plan|" + circuit_text + '|' + bits + '|' + open_qubits + '|' +
                   core::plan_options_text(plan);
  return dist::fnv1a_hex(id);
}

std::string result_key(const std::string& circuit_text, const std::string& bits,
                       const std::string& open_qubits, const core::PlanOptions& plan, bool fused,
                       uint64_t ldm_elems) {
  std::string id = "result|" + circuit_text + '|' + bits + '|' + open_qubits + '|' +
                   core::plan_options_text(plan) + '|' + std::to_string(int(fused)) + '|' +
                   std::to_string(ldm_elems);
  return dist::fnv1a_hex(id);
}

std::string validate_cache_options(const CacheOptions& opt) {
  if (opt.read_only && opt.cache_dir.empty())
    return "--cache-readonly requires --cache-dir (the in-memory tiers are always writable)";
  if (!opt.cache_dir.empty() && !opt.any_enabled())
    return "--cache-dir with both caches disabled (--plan-cache=0 --result-cache=0) caches nothing";
  return {};
}

// --- TieredStore -----------------------------------------------------------

TieredStore::TieredStore(const CacheOptions& opt, uint8_t kind, std::string subdir,
                         size_t max_entries)
    : kind_(kind), max_entries_(max_entries), read_only_(opt.read_only) {
  if (!opt.cache_dir.empty() && max_entries > 0) {
    dir_ = opt.cache_dir + "/" + subdir;
    if (!read_only_) {
      mkdir_quiet(opt.cache_dir);
      mkdir_quiet(dir_);
    }
  }
}

std::string TieredStore::file_path(const std::string& key) const {
  return dir_ + "/" + key + ".bin";
}

bool TieredStore::get(const std::string& key, std::vector<uint8_t>* payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (max_entries_ == 0) return false;
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    *payload = it->second->second;
    ++stats_.memory_hits;
    return true;
  }
  if (!dir_.empty() && read_disk(key, payload)) {
    ++stats_.disk_hits;
    insert_memory(key, *payload);  // promote
    return true;
  }
  ++stats_.misses;
  return false;
}

void TieredStore::put(const std::string& key, std::vector<uint8_t> payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (max_entries_ == 0) return;
  ++stats_.insertions;
  if (!dir_.empty() && !read_only_) write_disk(key, payload);
  insert_memory(key, std::move(payload));
}

void TieredStore::insert_memory(const std::string& key, std::vector<uint8_t> payload) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    memory_bytes_ -= it->second->second.size();
    lru_.erase(it->second);
    index_.erase(it);
  }
  memory_bytes_ += payload.size();
  lru_.emplace_front(key, std::move(payload));
  index_[key] = lru_.begin();
  while (lru_.size() > max_entries_) {
    memory_bytes_ -= lru_.back().second.size();
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

bool TieredStore::read_disk(const std::string& key, std::vector<uint8_t>* payload) {
  const std::string path = file_path(key);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;  // plain miss, not damage
  EntryHeader h;
  bool ok = std::fread(&h, sizeof(h), 1, f) == 1 && h.magic == kCacheMagic &&
            h.version == kCacheVersion && h.endian == dist::host_endian() && h.kind == kind_ &&
            h.payload_len <= kMaxEntryPayload;
  if (ok) {
    payload->resize(size_t(h.payload_len));
    ok = payload->empty() || std::fread(payload->data(), 1, payload->size(), f) == payload->size();
    if (ok) ok = dist::crc32_ieee(payload->data(), payload->size()) == h.crc;
  }
  std::fclose(f);
  if (!ok) {
    // Truncated or corrupt: drop it so the recomputed value can replace it
    // (a read-only replica leaves the file for the owner to repair).
    ++stats_.corrupt_dropped;
    if (!read_only_) ::unlink(path.c_str());
    payload->clear();
  }
  return ok;
}

void TieredStore::write_disk(const std::string& key, const std::vector<uint8_t>& payload) {
  // tmp+rename, like result.bin: readers never observe a half entry. No
  // fsync — every entry is recomputable, so durability is best-effort.
  const std::string path = file_path(key);
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return;  // cache write failure is never a run failure
  EntryHeader h{kCacheMagic, kCacheVersion, dist::host_endian(), kind_,
                uint64_t(payload.size()), dist::crc32_ieee(payload.data(), payload.size()), 0};
  bool ok = std::fwrite(&h, sizeof(h), 1, f) == 1 &&
            (payload.empty() || std::fwrite(payload.data(), 1, payload.size(), f) == payload.size());
  ok = std::fclose(f) == 0 && ok;
  if (ok && std::rename(tmp.c_str(), path.c_str()) == 0)
    stats_.disk_bytes_written += sizeof(h) + payload.size();
  else
    ::unlink(tmp.c_str());
}

TierStats TieredStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  TierStats s = stats_;
  s.memory_entries = lru_.size();
  s.memory_bytes = memory_bytes_;
  return s;
}

// --- Plan encoding ---------------------------------------------------------

std::vector<uint8_t> encode_plan(const core::Plan& plan) {
  dist::ByteWriter w;
  w.put<uint64_t>(plan.path.leaf_vertices.size());
  for (tn::VertId v : plan.path.leaf_vertices) w.put<int32_t>(int32_t(v));
  w.put<uint64_t>(plan.path.steps.size());
  for (const auto& [l, r] : plan.path.steps) {
    w.put<int32_t>(int32_t(l));
    w.put<int32_t>(int32_t(r));
  }
  const auto edges = plan.slices.to_vector();
  w.put<uint64_t>(edges.size());
  for (int e : edges) w.put<int32_t>(int32_t(e));
  put_metrics(w, plan.metrics);
  w.put_string(plan.path_method);
  return w.buffer();
}

bool decode_plan(const std::vector<uint8_t>& payload, const tn::TensorNetwork& net,
                 core::Plan* out) {
  // Deserialization and structural validation may fail even behind a good
  // CRC (foreign file, hash collision, network drift): treat every failure
  // as a miss and let the caller recompute — never abort, never return a
  // plan that does not fit `net`.
  try {
    dist::ByteReader r(payload);
    core::Plan plan;
    const auto nleaves = r.get<uint64_t>();
    if (nleaves > uint64_t(net.num_vertices())) return false;
    plan.path.leaf_vertices.reserve(size_t(nleaves));
    for (uint64_t i = 0; i < nleaves; ++i) plan.path.leaf_vertices.push_back(r.get<int32_t>());
    const auto nsteps = r.get<uint64_t>();
    if (nsteps > nleaves) return false;
    plan.path.steps.reserve(size_t(nsteps));
    for (uint64_t i = 0; i < nsteps; ++i) {
      int l = r.get<int32_t>();
      int rr = r.get<int32_t>();
      plan.path.steps.emplace_back(l, rr);
    }
    const auto nslices = r.get<uint64_t>();
    if (nslices > uint64_t(net.num_edges())) return false;
    std::vector<int> edges;
    edges.reserve(size_t(nslices));
    for (uint64_t i = 0; i < nslices; ++i) edges.push_back(r.get<int32_t>());
    plan.metrics = get_metrics(r);
    plan.path_method = r.get_string();

    if (!ssa_path_fits(plan.path, net, edges.size())) return false;
    std::vector<char> seen_edge(size_t(net.num_edges()), 0);
    for (int e : edges) {
      if (e < 0 || e >= net.num_edges() || !net.edge(e).alive) return false;
      if (seen_edge[size_t(e)]++) return false;
    }

    // Rebuild the derived structures over the caller's network — this is
    // the cheap, deterministic back half of make_plan; only src/path/ and
    // the slicers are skipped.
    plan.tree = std::make_shared<tn::ContractionTree>(tn::ContractionTree::build(net, plan.path));
    std::string why;
    if (!plan.tree->validate(&why)) return false;
    plan.stem = tn::extract_stem(*plan.tree);
    plan.slices = core::SliceSet(net);
    for (int e : edges) plan.slices.add(e);
    *out = std::move(plan);
    return true;
  } catch (const std::exception&) {
    return false;  // short payload / bad string length: corrupt entry
  }
}

// --- PlanCache -------------------------------------------------------------

PlanCache::PlanCache(const CacheOptions& opt)
    : store_(opt, kKindPlan, "plan", opt.plan_cache_entries) {}

void PlanCache::insert(const std::string& key, const core::Plan& plan) {
  if (!store_.enabled()) return;
  dist::ByteWriter w;
  w.put_string(key);  // self-identifying: guards collisions and copied files
  const auto blob = encode_plan(plan);
  w.put<uint64_t>(blob.size());
  w.put_bytes(blob.data(), blob.size());
  store_.put(key, w.buffer());
}

bool PlanCache::lookup(const std::string& key, const tn::TensorNetwork& net, core::Plan* out) {
  std::vector<uint8_t> payload;
  if (!store_.get(key, &payload)) return false;
  try {
    dist::ByteReader r(payload);
    if (r.get_string() != key) return false;
    const auto len = r.get<uint64_t>();
    if (len > kMaxEntryPayload) return false;
    std::vector<uint8_t> blob(size_t(len), uint8_t{0});
    r.get_bytes(blob.data(), blob.size());
    return decode_plan(blob, net, out);
  } catch (const std::exception&) {
    return false;  // short payload / bad string length: corrupt entry
  }
}

// --- ResultCache -----------------------------------------------------------

ResultCache::ResultCache(const CacheOptions& opt)
    : amps_(opt, kKindAmplitude, "result", opt.result_cache_entries),
      batches_(opt, kKindBatch, "batch", opt.result_cache_entries) {}

void ResultCache::insert_amplitude(const std::string& key, const AmplitudeEntry& e) {
  if (!amps_.enabled()) return;
  dist::ByteWriter w;
  w.put_string(key);
  w.put<double>(e.amplitude.real());
  w.put<double>(e.amplitude.imag());
  w.put<int32_t>(e.num_slices);
  put_metrics(w, e.slicing);
  w.put<uint64_t>(e.tasks_run);
  w.put<double>(e.wall_seconds);
  dist::put_run_telemetry(w, e.telemetry);
  amps_.put(key, w.buffer());
}

bool ResultCache::lookup_amplitude(const std::string& key, AmplitudeEntry* out) {
  std::vector<uint8_t> payload;
  if (!amps_.get(key, &payload)) return false;
  try {
    dist::ByteReader r(payload);
    if (r.get_string() != key) return false;
    AmplitudeEntry e;
    const double re = r.get<double>();
    const double im = r.get<double>();
    e.amplitude = {re, im};
    e.num_slices = r.get<int32_t>();
    e.slicing = get_metrics(r);
    e.tasks_run = r.get<uint64_t>();
    e.wall_seconds = r.get<double>();
    e.telemetry = dist::get_run_telemetry(r);
    *out = std::move(e);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

void ResultCache::insert_batch(const std::string& key, const BatchEntry& e,
                               const std::string& scope) {
  if (!batches_.enabled()) return;
  dist::ByteWriter w;
  w.put_string(key);
  w.put<uint64_t>(e.amplitudes.size());
  for (const auto& a : e.amplitudes) {
    w.put<double>(a.real());
    w.put<double>(a.imag());
  }
  w.put<uint64_t>(e.open_qubits.size());
  for (int q : e.open_qubits) w.put<int32_t>(int32_t(q));
  put_metrics(w, e.slicing);
  dist::put_run_telemetry(w, e.telemetry);
  w.put<uint64_t>(e.base_bits.size());
  for (int b : e.base_bits) w.put<int32_t>(int32_t(b));
  batches_.put(key, w.buffer());
  if (!scope.empty()) index_batch(key, scope, e.base_bits, e.open_qubits);
}

bool ResultCache::lookup_batch(const std::string& key, BatchEntry* out, const std::string& scope) {
  std::vector<uint8_t> payload;
  if (!batches_.get(key, &payload)) return false;
  try {
    dist::ByteReader r(payload);
    if (r.get_string() != key) return false;
    BatchEntry e;
    const auto n = r.get<uint64_t>();
    if (n > (uint64_t(1) << 24)) return false;  // |open| is capped at 24
    e.amplitudes.reserve(size_t(n));
    for (uint64_t i = 0; i < n; ++i) {
      const double re = r.get<double>();
      const double im = r.get<double>();
      e.amplitudes.emplace_back(re, im);
    }
    const auto nq = r.get<uint64_t>();
    if (nq > 24) return false;
    e.open_qubits.reserve(size_t(nq));
    for (uint64_t i = 0; i < nq; ++i) e.open_qubits.push_back(r.get<int32_t>());
    e.slicing = get_metrics(r);
    e.telemetry = dist::get_run_telemetry(r);
    const auto nb = r.get<uint64_t>();
    if (nb > (uint64_t(1) << 20)) return false;
    e.base_bits.reserve(size_t(nb));
    for (uint64_t i = 0; i < nb; ++i) e.base_bits.push_back(r.get<int32_t>());
    if (!scope.empty()) index_batch(key, scope, e.base_bits, e.open_qubits);
    *out = std::move(e);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

void ResultCache::index_batch(const std::string& key, const std::string& scope,
                              const std::vector<int>& base_bits,
                              const std::vector<int>& open_qubits) {
  if (base_bits.empty() || open_qubits.empty()) return;
  std::lock_guard<std::mutex> lock(index_mu_);
  for (auto& ie : batch_index_) {
    if (ie.key == key) return;  // already known
  }
  // Bounded FIFO, far above any realistic working set; newest kept.
  constexpr size_t kMaxIndexEntries = 4096;
  if (batch_index_.size() >= kMaxIndexEntries) batch_index_.erase(batch_index_.begin());
  batch_index_.push_back({key, scope, base_bits, open_qubits});
}

bool ResultCache::find_covering_batch(const std::string& scope, const std::vector<int>& bits,
                                      const std::vector<int>& open_qubits, BatchEntry* out) {
  if (scope.empty()) return false;
  std::vector<std::pair<std::string, bool>> candidates;  // key, proper superset?
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    // Newest first: a recently inserted batch is most likely still in the
    // LRU (and most likely what the caller just computed a sibling of).
    for (auto it = batch_index_.rbegin(); it != batch_index_.rend(); ++it) {
      const auto& ie = *it;
      if (ie.scope != scope || ie.base_bits.size() != bits.size()) continue;
      if (!std::includes(ie.open_qubits.begin(), ie.open_qubits.end(), open_qubits.begin(),
                         open_qubits.end()))
        continue;
      bool agree = true;
      for (size_t q = 0; q < bits.size() && agree; ++q) {
        if (std::binary_search(ie.open_qubits.begin(), ie.open_qubits.end(), int(q))) continue;
        agree = bits[q] == ie.base_bits[q];
      }
      if (agree) candidates.emplace_back(ie.key, ie.open_qubits != open_qubits);
    }
  }
  for (const auto& [key, proper] : candidates) {
    if (!lookup_batch(key, out)) continue;  // evicted since indexed: next
    if (proper) {
      std::lock_guard<std::mutex> lock(index_mu_);
      ++superset_hits_;
    }
    return true;
  }
  return false;
}

uint64_t ResultCache::superset_hits() const {
  std::lock_guard<std::mutex> lock(index_mu_);
  return superset_hits_;
}

TierStats ResultCache::stats() const {
  TierStats s = amps_.stats();
  const TierStats b = batches_.stats();
  s.memory_hits += b.memory_hits;
  s.disk_hits += b.disk_hits;
  s.misses += b.misses;
  s.evictions += b.evictions;
  s.insertions += b.insertions;
  s.corrupt_dropped += b.corrupt_dropped;
  s.disk_bytes_written += b.disk_bytes_written;
  s.memory_entries += b.memory_entries;
  s.memory_bytes += b.memory_bytes;
  return s;
}

}  // namespace ltns::cache
