#include "sv/statevector.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace ltns::sv {
namespace {

using circuit::Circuit;

TEST(Statevector, InitialState) {
  Statevector sv(3);
  EXPECT_EQ(sv.dim(), 8u);
  EXPECT_EQ(sv.amplitude(0), cd(1, 0));
  EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(Statevector, XFlipsQubit) {
  Circuit c;
  c.num_qubits = 2;
  c.apply(circuit::gate_x(), {0});
  Statevector sv(2);
  sv.run(c);
  // Qubit 0 occupies the high bit: |10>.
  EXPECT_NEAR(std::abs(sv.amplitude(0b10) - cd(1, 0)), 0.0, 1e-12);
}

TEST(Statevector, HadamardMakesUniform) {
  Circuit c;
  c.num_qubits = 1;
  c.apply(circuit::gate_h(), {0});
  Statevector sv(1);
  sv.run(c);
  EXPECT_NEAR(std::abs(sv.amplitude(0)), 1 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(1)), 1 / std::sqrt(2.0), 1e-12);
}

TEST(Statevector, BellState) {
  Circuit c;
  c.num_qubits = 2;
  c.apply(circuit::gate_h(), {0});
  // CNOT(0 -> 1) decomposed as H_t CZ H_t.
  c.apply(circuit::gate_h(), {1});
  c.apply(circuit::gate_cz(), {0, 1});
  c.apply(circuit::gate_h(), {1});
  Statevector sv(2);
  sv.run(c);
  // (|00> + |11>)/sqrt(2).
  EXPECT_NEAR(std::abs(sv.amplitude(0b00)), 1 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(0b11)), 1 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(0b01)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(0b10)), 0.0, 1e-12);
}

TEST(Statevector, CzPhasesOnlyOnes) {
  Circuit c;
  c.num_qubits = 2;
  c.apply(circuit::gate_x(), {0});
  c.apply(circuit::gate_x(), {1});
  c.apply(circuit::gate_cz(), {0, 1});
  Statevector sv(2);
  sv.run(c);
  EXPECT_NEAR(std::abs(sv.amplitude(0b11) - cd(-1, 0)), 0.0, 1e-12);
}

TEST(Statevector, FsimSwapsWithPhase) {
  Circuit c;
  c.num_qubits = 2;
  c.apply(circuit::gate_x(), {1});  // |01>
  c.apply(circuit::gate_fsim(M_PI / 2, 0), {0, 1});
  Statevector sv(2);
  sv.run(c);
  EXPECT_NEAR(std::abs(sv.amplitude(0b10) - cd(0, -1)), 0.0, 1e-12);
}

TEST(Statevector, NormPreservedByRqc) {
  auto c = test::small_rqc(3, 3, 8);
  Statevector sv(c.num_qubits);
  sv.run(c);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-10);
}

TEST(Statevector, AmplitudeBitsMatchesIndex) {
  auto c = test::small_rqc(2, 3, 4);
  Statevector sv(c.num_qubits);
  sv.run(c);
  std::vector<int> bits{1, 0, 1, 1, 0, 0};
  uint64_t idx = 0;
  for (int q = 0; q < 6; ++q) idx |= uint64_t(bits[size_t(q)]) << (5 - q);
  EXPECT_EQ(sv.amplitude_bits(bits), sv.amplitude(idx));
}

TEST(Statevector, GateOrderMattersOnOverlap) {
  // X then CZ != CZ then X on qubit 0 with qubit 1 in |1>.
  Circuit c1, c2;
  c1.num_qubits = c2.num_qubits = 2;
  c1.apply(circuit::gate_x(), {1});
  c1.apply(circuit::gate_x(), {0});
  c1.apply(circuit::gate_cz(), {0, 1});
  c2.num_qubits = 2;
  c2.apply(circuit::gate_x(), {1});
  c2.apply(circuit::gate_cz(), {0, 1});
  c2.apply(circuit::gate_x(), {0});
  Statevector a(2), b(2);
  a.run(c1);
  b.run(c2);
  EXPECT_GT(std::abs(a.amplitude(3) - b.amplitude(3)), 0.1);
}

TEST(Statevector, PorterThomasShape) {
  // RQC amplitudes should be exponentially distributed (Porter–Thomas):
  // mean of 2^n |a|^2 is 1, and a noticeable fraction lies above/below.
  auto c = test::small_rqc(3, 4, 10);
  Statevector sv(c.num_qubits);
  sv.run(c);
  const double dim = double(sv.dim());
  double mean = 0;
  int above = 0;
  for (const auto& a : sv.amplitudes()) {
    double p = std::norm(a) * dim;
    mean += p;
    above += (p > 1.0);
  }
  mean /= dim;
  EXPECT_NEAR(mean, 1.0, 0.05);
  // Exponential distribution: P(p > 1) = 1/e ~ 0.37.
  EXPECT_NEAR(above / dim, 0.37, 0.08);
}

}  // namespace
}  // namespace ltns::sv
