// Randomized end-to-end property sweeps ("fuzz") across the pipeline —
// these are the widest-net invariant checks in the suite:
//
//  * on random tensor networks with random leaf tensors, sliced execution
//    over any random slicing set sums to the unsliced result;
//  * the fused executor equals the step-by-step executor on every stem the
//    path finders produce, under random process slicing and LDM sizes;
//  * every slicer satisfies the memory bound on every (network, target)
//    drawn from the sweep;
//  * Eq. 4 incremental bookkeeping matches a from-scratch evaluation after
//    arbitrary add/remove sequences.
#include <gtest/gtest.h>

#include "core/greedy_slicer.hpp"
#include "core/slice_finder.hpp"
#include "core/slice_refiner.hpp"
#include "exec/fused_executor.hpp"
#include "exec/slice_runner.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace ltns {
namespace {

// A random network with random unit-normal leaf tensors attached.
struct RandomInstance {
  tn::TensorNetwork net;
  std::vector<exec::Tensor> tensors;

  exec::LeafProvider leaves() const {
    return [this](tn::VertId v) -> const exec::Tensor& { return tensors[size_t(v)]; };
  }
};

RandomInstance random_instance(int nv, double deg, uint64_t seed) {
  RandomInstance inst{tn::random_network(nv, deg, seed), {}};
  inst.tensors.resize(size_t(inst.net.num_vertices()));
  for (tn::VertId v : inst.net.alive_vertices()) {
    std::vector<int> ixs = inst.net.vertex(v).edges;
    inst.tensors[size_t(v)] = exec::random_tensor(ixs, seed * 131 + uint64_t(v));
  }
  return inst;
}

class PipelineFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineFuzz, SlicedSumEqualsUnslicedOnRandomNetworks) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  auto inst = random_instance(8 + int(rng.next_below(8)), 2.4, seed);
  auto tree = test::greedy_tree(inst.net, seed);
  auto full = exec::execute_tree(tree, inst.leaves(), {}, 0);

  // Random slicing set of 1..4 edges.
  core::SliceSet S(inst.net);
  auto edges = inst.net.alive_edges();
  int want = 1 + int(rng.next_below(4));
  while (S.size() < want && S.size() < int(edges.size())) {
    int e = edges[rng.next_below(edges.size())];
    if (!S.contains(e)) S.add(e);
  }
  auto rr = exec::run_sliced(tree, inst.leaves(), S);
  ASSERT_EQ(rr.accumulated.ixs(), full.ixs());
  double scale = std::sqrt(full.norm2()) + 1.0;
  for (size_t i = 0; i < full.size(); ++i)
    EXPECT_NEAR(std::abs(rr.accumulated.data()[i] - full.data()[i]) / scale, 0.0, 1e-4)
        << "seed " << seed << " elem " << i;
}

TEST_P(PipelineFuzz, FusedEqualsStepwiseOnRandomNetworks) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  auto inst = random_instance(10 + int(rng.next_below(8)), 2.6, seed ^ 0xABCD);
  auto tree = test::greedy_tree(inst.net, seed);
  auto stem = tn::extract_stem(tree);
  if (stem.length() < 3) GTEST_SKIP() << "degenerate stem";

  size_t ldm = size_t(1) << (7 + rng.next_below(8));
  auto plan = exec::plan_fused(stem, {}, ldm);
  auto fused = exec::execute_fused(plan, inst.leaves(), 0);
  auto step = exec::execute_stem_stepwise(stem, inst.leaves(), {}, 0);
  ASSERT_EQ(fused.size(), step.size());
  double scale = std::sqrt(step.norm2()) + 1.0;
  // Axis orders can differ; compare via labeled access on the fused layout.
  for (size_t i = 0; i < fused.size(); ++i) {
    std::vector<int> bits(size_t(fused.rank()), 0);
    for (int d = 0; d < fused.rank(); ++d)
      bits[size_t(d)] = int((i >> (fused.rank() - 1 - d)) & 1);
    std::vector<int> sbits(size_t(step.rank()), 0);
    for (int d = 0; d < step.rank(); ++d) {
      int ax = fused.axis_of(step.ixs()[size_t(d)]);
      ASSERT_GE(ax, 0);
      sbits[size_t(d)] = bits[size_t(ax)];
    }
    EXPECT_NEAR(std::abs(fused.data()[i] - step.at(sbits)) / scale, 0.0, 1e-4)
        << "seed " << seed;
  }
}

TEST_P(PipelineFuzz, SlicersMeetRandomTargets) {
  const uint64_t seed = GetParam();
  Rng rng(seed ^ 0x5151);
  auto net = tn::random_network(20 + int(rng.next_below(20)), 2.8, seed);
  auto tree = test::greedy_tree(net, seed, 0.5);
  auto stem = tn::extract_stem(tree);
  double target = std::max(2.0, tree.max_log2size() - 1 - double(rng.next_below(4)));

  core::GreedySlicerOptions go;
  go.target_log2size = target;
  auto Sg = core::greedy_slice(tree, go);
  EXPECT_TRUE(core::satisfies_memory_bound(tree, Sg, target));

  core::SliceFinderOptions fo;
  fo.target_log2size = target;
  auto Sf = core::lifetime_slice_finder(stem, fo);
  EXPECT_TRUE(core::satisfies_memory_bound(tree, Sf, target));

  core::SliceRefinerOptions ro;
  ro.target_log2size = target;
  ro.seed = seed;
  ro.moves_per_temperature = 6;
  ro.alpha = 0.7;
  auto Sr = core::refine_slices(stem, Sf, ro);
  EXPECT_TRUE(core::satisfies_memory_bound(tree, Sr, target));
  EXPECT_LE(core::evaluate_slicing(tree, Sr).log2_total_cost,
            core::evaluate_slicing(tree, Sf).log2_total_cost + 1e-9);
}

TEST_P(PipelineFuzz, SliceSetBookkeepingMatchesScratch) {
  const uint64_t seed = GetParam();
  Rng rng(seed ^ 0x77);
  auto net = tn::random_network(15, 2.5, seed);
  auto tree = test::greedy_tree(net, seed);
  auto edges = net.alive_edges();
  core::SliceSet S(net);
  // Random add/remove walk.
  for (int step = 0; step < 40; ++step) {
    int e = edges[rng.next_below(edges.size())];
    if (S.contains(e)) S.remove(e);
    else S.add(e);
    // Rebuild from scratch and compare the evaluation.
    core::SliceSet fresh(net);
    for (int x : S.to_vector()) fresh.add(x);
    EXPECT_EQ(fresh.size(), S.size());
    EXPECT_NEAR(fresh.log2_num_subtasks(), S.log2_num_subtasks(), 1e-12);
    auto a = core::evaluate_slicing(tree, S);
    auto b = core::evaluate_slicing(tree, fresh);
    EXPECT_NEAR(a.log2_total_cost, b.log2_total_cost, 1e-12);
  }
}

TEST_P(PipelineFuzz, StemInvariantUnderEquivalentPaths) {
  // Rebuilding a tree through to_ssa_path must preserve total cost, stem
  // cost and the slicing evaluation of any set.
  const uint64_t seed = GetParam();
  auto net = tn::random_network(18, 2.7, seed);
  auto t1 = test::greedy_tree(net, seed);
  auto t2 = tn::ContractionTree::build(net, tn::to_ssa_path(t1));
  EXPECT_NEAR(t1.total_log2cost(), t2.total_log2cost(), 1e-9);
  core::SliceSet S1(net), S2(net);
  auto edges = net.alive_edges();
  for (size_t i = 0; i < edges.size(); i += 3) {
    S1.add(edges[i]);
    S2.add(edges[i]);
  }
  EXPECT_NEAR(core::evaluate_slicing(t1, S1).log2_total_cost,
              core::evaluate_slicing(t2, S2).log2_total_cost, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz, ::testing::Range(uint64_t(1), uint64_t(17)));

}  // namespace
}  // namespace ltns
