// Property-based parity suite for the vectorized kernel tiers (PR: simd
// device backend).
//
// Two contracts are enforced here:
//   * fp32: every compiled ISA tier and every registered backend reproduces
//     the host kernels BITWISE — memcmp, no tolerance — across fuzzed
//     shapes, lane tails that do not fill a vector register, K extents that
//     straddle the panel width, and deliberately misaligned operands.
//   * bf16 mixed precision: deterministic (bitwise identical across tiers,
//     backends and pool widths), and its distance from the fp32 reference
//     is pinned by a checked-in ULP-regression corpus. A pin mismatch in
//     EITHER direction fails: growing error is a broken kernel, shrinking
//     error is a changed numeric contract that must be re-pinned on purpose.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "device/backend.hpp"
#include "device/cpu_probe.hpp"
#include "exec/gemm.hpp"
#include "exec/mixed_gemm.hpp"
#include "exec/permute.hpp"
#include "exec/simd_kernels.hpp"
#include "exec/tensor.hpp"
#include "test_helpers.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/ulp.hpp"

namespace ltns::exec {
namespace {

using test::bitwise_equal;

// Exact-arithmetic random operands: 16-bit integers scaled by a power of
// two. Every platform computes these identically from the xoshiro bit
// stream (no libm involved), which the pinned ULP corpus depends on.
cfloat exact_uniform(Rng& rng) {
  const uint64_t bits = rng.next_u64();
  const float re = float(int64_t(bits & 0xffff) - 32768) * 0x1.0p-10f;
  const float im = float(int64_t((bits >> 16) & 0xffff) - 32768) * 0x1.0p-10f;
  return {re, im};
}

AlignedCfloatVec random_buf(size_t n, uint64_t seed) {
  Rng rng(seed);
  AlignedCfloatVec b(n);
  for (auto& v : b) v = exact_uniform(rng);
  return b;
}

bool same_bits(const cfloat* a, const cfloat* b, size_t n) {
  return std::memcmp(a, b, n * sizeof(cfloat)) == 0;
}

std::vector<IsaTier> vector_tiers() {
  std::vector<IsaTier> out;
  for (IsaTier t : compiled_isa_tiers())
    if (t != IsaTier::kPortable) out.push_back(t);
  return out;
}

// --- fp32: direct kernel-level parity, every compiled tier ----------------

TEST(KernelsParityFp32, LaneTailsAndPanelEdgesBitwise) {
  uint64_t seed = 1;
  for (IsaTier tier : vector_tiers()) {
    const int lanes = int(isa_lanes(tier));
    for (int m : {1, 3, 4, 5, 11}) {
      for (int n : {1, lanes - 1, lanes, lanes + 1, 2 * lanes + 3, 37}) {
        for (int k : {1, 255, 256, 257, 513}) {
          auto a = random_buf(size_t(m) * k, seed++);
          auto b = random_buf(size_t(k) * n, seed++);
          AlignedCfloatVec want(size_t(m) * n), got(size_t(m) * n);
          cgemm(m, n, k, a.data(), b.data(), want.data());
          cgemm_simd(tier, Precision::kFp32, m, n, k, a.data(), b.data(), got.data());
          ASSERT_TRUE(same_bits(want.data(), got.data(), want.size()))
              << isa_name(tier) << " m=" << m << " n=" << n << " k=" << k;
        }
      }
    }
  }
}

TEST(KernelsParityFp32, FuzzRandomShapesBitwise) {
  Rng rng(0xf00d);
  const auto tiers = vector_tiers();
  if (tiers.empty()) GTEST_SKIP() << "no vector tier compiled for this arch";
  for (int trial = 0; trial < 60; ++trial) {
    const int m = rng.next_int(1, 40);
    const int n = rng.next_int(1, 70);
    const int k = rng.next_int(1, 600);
    const IsaTier tier = tiers[size_t(rng.next_below(tiers.size()))];
    auto a = random_buf(size_t(m) * k, 1000 + uint64_t(trial));
    auto b = random_buf(size_t(k) * n, 2000 + uint64_t(trial));
    AlignedCfloatVec want(size_t(m) * n), got(size_t(m) * n);
    cgemm(m, n, k, a.data(), b.data(), want.data());
    cgemm_simd(tier, Precision::kFp32, m, n, k, a.data(), b.data(), got.data());
    ASSERT_TRUE(same_bits(want.data(), got.data(), want.size()))
        << isa_name(tier) << " trial=" << trial << " m=" << m << " n=" << n << " k=" << k;
  }
}

TEST(KernelsParityFp32, MisalignedOperandsBitwise) {
  // The tiers promise bitwise parity for any validly-sized buffer, aligned
  // or not (all vector loads/stores are unaligned ops). Offset every
  // operand off the 64-byte grid by an odd element count.
  const int m = 13, n = 29, k = 301;
  for (IsaTier tier : vector_tiers()) {
    for (size_t off : {1u, 3u}) {
      auto a = random_buf(size_t(m) * k + off, 77);
      auto b = random_buf(size_t(k) * n + off, 78);
      AlignedCfloatVec want(size_t(m) * n + off), got(size_t(m) * n + off);
      cgemm(m, n, k, a.data() + off, b.data() + off, want.data() + off);
      cgemm_simd(tier, Precision::kFp32, m, n, k, a.data() + off, b.data() + off,
                 got.data() + off);
      ASSERT_TRUE(same_bits(want.data() + off, got.data() + off, size_t(m) * n))
          << isa_name(tier) << " off=" << off;
    }
  }
}

TEST(KernelsParityFp32, ParallelMatchesAcrossPoolWidths) {
  const int m = 120, n = 70, k = 300;
  auto a = random_buf(size_t(m) * k, 91);
  auto b = random_buf(size_t(k) * n, 92);
  AlignedCfloatVec want(size_t(m) * n);
  cgemm(m, n, k, a.data(), b.data(), want.data());
  for (IsaTier tier : vector_tiers()) {
    for (int workers : {1, 2, 3, 5}) {
      ThreadPool pool(workers);
      AlignedCfloatVec got(size_t(m) * n);
      cgemm_simd(tier, Precision::kFp32, m, n, k, a.data(), b.data(), got.data(), &pool);
      ASSERT_TRUE(same_bits(want.data(), got.data(), want.size()))
          << isa_name(tier) << " workers=" << workers;
    }
  }
}

// --- fp32: permute parity --------------------------------------------------

TEST(KernelsParityPermute, FuzzBitwiseAcrossTiersAndBlockSizes) {
  Rng rng(0xbeef);
  for (int trial = 0; trial < 40; ++trial) {
    const int rank = rng.next_int(2, 11);
    std::vector<int> ixs(static_cast<size_t>(rank), 0);
    for (int i = 0; i < rank; ++i) ixs[size_t(i)] = i;
    std::vector<int> new_ixs = ixs;
    for (int i = rank - 1; i > 0; --i)
      std::swap(new_ixs[size_t(i)], new_ixs[size_t(rng.next_int(0, i))]);
    if (new_ixs == ixs) std::swap(new_ixs[0], new_ixs[1]);
    auto t = random_tensor(ixs, 4000 + uint64_t(trial));
    auto want = permute(t, new_ixs);
    for (IsaTier tier : compiled_isa_tiers()) {
      auto got = permute_simd(tier, t, new_ixs);
      ASSERT_TRUE(bitwise_equal(want, got)) << isa_name(tier) << " trial=" << trial;
    }
  }
}

TEST(KernelsParityPermute, ElementGranularGatherPathBitwise) {
  // Moving the LAST axis forces block_elems == 1: the hardware-gather path.
  for (int rank : {3, 6, 10}) {
    std::vector<int> ixs(static_cast<size_t>(rank), 0);
    for (int i = 0; i < rank; ++i) ixs[size_t(i)] = i;
    std::vector<int> new_ixs = ixs;
    std::rotate(new_ixs.begin(), new_ixs.end() - 1, new_ixs.end());
    auto t = random_tensor(ixs, 500 + uint64_t(rank));
    auto want = permute(t, new_ixs);
    for (IsaTier tier : compiled_isa_tiers()) {
      auto got = permute_simd(tier, t, new_ixs);
      ASSERT_TRUE(bitwise_equal(want, got)) << isa_name(tier) << " rank=" << rank;
    }
  }
}

// --- backend-level parity: every registered backend vs host ---------------

TEST(KernelsParityBackends, GemmBitwiseAcrossAllAvailableSpecs) {
  Rng rng(0xabcd);
  for (const auto& info : device::available_backends()) {
    if (!info.caps.available) continue;
    for (const char* suffix : {"", "+fp32", "+bf16"}) {
      const std::string spec = info.name + suffix;
      auto backend = device::make_backend(spec);
      auto host = device::make_backend("host" + std::string(suffix));
      for (int trial = 0; trial < 12; ++trial) {
        const int m = rng.next_int(1, 33);
        const int n = rng.next_int(1, 65);
        const int k = rng.next_int(1, 520);
        auto a = random_buf(size_t(m) * k, 7000 + uint64_t(trial));
        auto b = random_buf(size_t(k) * n, 8000 + uint64_t(trial));
        AlignedCfloatVec want(size_t(m) * n), got(size_t(m) * n);
        host->gemm(m, n, k, a.data(), b.data(), want.data(), nullptr, nullptr);
        backend->gemm(m, n, k, a.data(), b.data(), got.data(), nullptr, nullptr);
        ASSERT_TRUE(same_bits(want.data(), got.data(), want.size()))
            << spec << " m=" << m << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST(KernelsParityBackends, StemWindowBitwiseAcrossAllAvailableSpecs) {
  auto w0 = random_tensor({0, 1, 2, 3, 4, 5, 6, 7}, 61);
  std::vector<Tensor> branches;
  branches.push_back(random_tensor({0, 1, 100, 101}, 62));
  branches.push_back(random_tensor({100, 2, 102, 103}, 63));
  branches.push_back(random_tensor({101, 103, 104, 105}, 64));
  for (const char* suffix : {"", "+bf16"}) {
    exec::ContractStats hcs;
    device::DeviceStats hds;
    auto want = device::make_backend("host" + std::string(suffix))
                    ->run_stem_window(w0, branches.data(), int(branches.size()), &hcs, &hds);
    for (const auto& info : device::available_backends()) {
      if (!info.caps.available) continue;
      const std::string spec = info.name + suffix;
      exec::ContractStats cs;
      device::DeviceStats ds;
      auto got = device::make_backend(spec)->run_stem_window(w0, branches.data(),
                                                             int(branches.size()), &cs, &ds);
      EXPECT_TRUE(bitwise_equal(want, got)) << spec;
      EXPECT_EQ(ds.stem_steps, branches.size()) << spec;
    }
  }
}

// --- bf16 mixed precision: determinism -------------------------------------

TEST(KernelsParityBf16, BitwiseIdenticalAcrossTiers) {
  uint64_t seed = 300;
  for (int trial = 0; trial < 20; ++trial) {
    Rng shape(9000 + uint64_t(trial));
    const int m = shape.next_int(1, 24);
    const int n = shape.next_int(1, 50);
    const int k = shape.next_int(1, 520);
    auto a = random_buf(size_t(m) * k, seed++);
    auto b = random_buf(size_t(k) * n, seed++);
    AlignedCfloatVec want(size_t(m) * n);
    cgemm_mixed(m, n, k, a.data(), b.data(), want.data());  // portable reference
    for (IsaTier tier : vector_tiers()) {
      AlignedCfloatVec got(size_t(m) * n);
      cgemm_simd(tier, Precision::kBf16, m, n, k, a.data(), b.data(), got.data());
      ASSERT_TRUE(same_bits(want.data(), got.data(), want.size()))
          << isa_name(tier) << " m=" << m << " n=" << n << " k=" << k;
    }
  }
}

TEST(KernelsParityBf16, ParallelMatchesSerialEveryTier) {
  const int m = 96, n = 48, k = 320;
  auto a = random_buf(size_t(m) * k, 71);
  auto b = random_buf(size_t(k) * n, 72);
  for (IsaTier tier : compiled_isa_tiers()) {
    AlignedCfloatVec serial(size_t(m) * n), par(size_t(m) * n);
    cgemm_simd(tier, Precision::kBf16, m, n, k, a.data(), b.data(), serial.data());
    ThreadPool pool(4);
    cgemm_simd(tier, Precision::kBf16, m, n, k, a.data(), b.data(), par.data(), &pool);
    ASSERT_TRUE(same_bits(serial.data(), par.data(), serial.size())) << isa_name(tier);
  }
}

// --- bf16 mixed precision: pinned ULP-regression corpus --------------------

// Max scale-relative ULP distance (over both components of every element)
// between the bf16 result and the fp32 reference: |Δ| in units of the
// float spacing at the reference's max |component| — the same comparator
// scripts/compare_amps.py applies in --compare-mode=ulp:<N>.
int64_t corpus_max_ulp(int m, int n, int k, uint64_t seed) {
  auto a = random_buf(size_t(m) * k, seed);
  auto b = random_buf(size_t(k) * n, seed + 1);
  AlignedCfloatVec fp32(size_t(m) * n), bf16(size_t(m) * n);
  cgemm(m, n, k, a.data(), b.data(), fp32.data());
  cgemm_mixed(m, n, k, a.data(), b.data(), bf16.data());
  float scale = 0.f;
  for (const auto& v : fp32) {
    scale = std::max(scale, std::fabs(v.real()));
    scale = std::max(scale, std::fabs(v.imag()));
  }
  int64_t worst = 0;
  for (size_t i = 0; i < fp32.size(); ++i) {
    worst = std::max(worst, util::ulp_distance_at_scale(fp32[i].real(), bf16[i].real(), scale));
    worst = std::max(worst, util::ulp_distance_at_scale(fp32[i].imag(), bf16[i].imag(), scale));
  }
  return worst;
}

struct UlpPin {
  int m, n, k;
  uint64_t seed;
  int64_t max_ulp;  // pinned: measured once, committed, compared EXACTLY
};

// The corpus: inputs are exact-arithmetic (integers scaled by powers of
// two, no libm), the kernels are chain-pinned, so these numbers are
// bit-stable across machines and compilers. If a kernel change moves any
// of them — up OR down — this test fails and the pin must be re-measured
// and re-committed alongside an explanation of the numeric change.
constexpr UlpPin kUlpCorpus[] = {
    {8, 8, 8, 0xc0ffee01, 32332},
    {16, 16, 64, 0xc0ffee02, 31191},
    {7, 13, 300, 0xc0ffee03, 25529},
    {32, 32, 257, 0xc0ffee04, 28091},
    {24, 40, 512, 0xc0ffee05, 19210},
    {5, 63, 96, 0xc0ffee06, 27655},
};

TEST(KernelsParityBf16, PinnedUlpRegressionCorpus) {
  for (const auto& pin : kUlpCorpus) {
    const int64_t measured = corpus_max_ulp(pin.m, pin.n, pin.k, pin.seed);
    EXPECT_EQ(measured, pin.max_ulp)
        << "corpus case m=" << pin.m << " n=" << pin.n << " k=" << pin.k << " seed=" << pin.seed
        << ": measured max ULP " << measured << " != pinned " << pin.max_ulp
        << " (re-pin deliberately if the mixed-precision chain changed)";
  }
}

TEST(KernelsParityBf16, UlpErrorIsBoundedAndNonzero) {
  // Sanity around the pins: bf16 is genuinely lossy (distance > 0) but the
  // fp32 accumulation keeps it around 2^15 scale-relative ULPs (~2^-8
  // relative — one bf16 mantissa step) on these well-scaled inputs.
  for (const auto& pin : kUlpCorpus) {
    const int64_t measured = corpus_max_ulp(pin.m, pin.n, pin.k, pin.seed);
    EXPECT_GT(measured, 0);
    EXPECT_LT(measured, int64_t(1) << 18);
  }
}

// --- dispatch probe --------------------------------------------------------

TEST(KernelsParityProbe, ActiveTierIsCompiledAndLanesAgree) {
  const auto& p = device::cpu_probe();
  const auto tiers = compiled_isa_tiers();
  EXPECT_NE(std::find(tiers.begin(), tiers.end(), p.active), tiers.end());
  EXPECT_EQ(device::probe_simd_lanes(), isa_lanes(p.active));
  EXPECT_FALSE(device::probe_isa_label().empty());
}

}  // namespace
}  // namespace ltns::exec
