#include "util/log2math.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ltns {
namespace {

TEST(Log2Math, AddSmallValues) {
  // 2^3 + 2^3 = 2^4
  EXPECT_NEAR(log2_add(3, 3), 4.0, 1e-12);
  // 2^10 + 2^0 = 1025
  EXPECT_NEAR(log2_add(10, 0), std::log2(1025.0), 1e-12);
}

TEST(Log2Math, AddZeroIdentity) {
  EXPECT_EQ(log2_add(kLog2Zero, 5.0), 5.0);
  EXPECT_EQ(log2_add(5.0, kLog2Zero), 5.0);
  EXPECT_EQ(log2_add(kLog2Zero, kLog2Zero), kLog2Zero);
}

TEST(Log2Math, AddHugeValuesNoOverflow) {
  double r = log2_add(1000.0, 1000.0);
  EXPECT_NEAR(r, 1001.0, 1e-9);
  // Tiny addend disappears gracefully.
  EXPECT_NEAR(log2_add(1000.0, 0.0), 1000.0, 1e-9);
}

TEST(Log2Math, Sub) {
  // 2^4 - 2^3 = 2^3
  EXPECT_NEAR(log2_sub(4, 3), 3.0, 1e-12);
  EXPECT_EQ(log2_sub(3, 3), kLog2Zero);
  EXPECT_EQ(log2_sub(3, 4), kLog2Zero);  // clamped
  EXPECT_EQ(log2_sub(7, kLog2Zero), 7.0);
}

TEST(Log2Math, SumExpMatchesDirect) {
  std::vector<double> vals{1, 2, 3, 4, 5};
  double direct = 2 + 4 + 8 + 16 + 32;
  EXPECT_NEAR(std::exp2(log2_sum_exp(vals)), direct, 1e-9);
}

TEST(Log2Math, AccumulatorMatchesSumExp) {
  Rng rng(7);
  std::vector<double> vals;
  Log2Accumulator acc;
  for (int i = 0; i < 50; ++i) {
    double v = rng.next_double() * 40;
    vals.push_back(v);
    acc.add(v);
  }
  EXPECT_NEAR(acc.value(), log2_sum_exp(vals), 1e-9);
  acc.reset();
  EXPECT_EQ(acc.value(), kLog2Zero);
}

TEST(Log2Math, AdditionIsCommutativeAndAssociative) {
  Rng rng(11);
  for (int t = 0; t < 100; ++t) {
    double a = rng.next_double() * 100, b = rng.next_double() * 100,
           c = rng.next_double() * 100;
    EXPECT_NEAR(log2_add(a, b), log2_add(b, a), 1e-12);
    EXPECT_NEAR(log2_add(log2_add(a, b), c), log2_add(a, log2_add(b, c)), 1e-9);
  }
}

TEST(Log2Math, SubInvertsAdd) {
  // Subtraction in the log domain loses precision when the operands are
  // close (catastrophic cancellation), so only well-separated pairs invert
  // exactly; that is also the only regime the slicing code subtracts in.
  Rng rng(13);
  for (int t = 0; t < 100; ++t) {
    double a = rng.next_double() * 60, b = rng.next_double() * 60;
    if (std::abs(a - b) < 4.0) continue;
    double s = log2_add(std::max(a, b), std::min(a, b));
    EXPECT_NEAR(log2_sub(s, std::min(a, b)), std::max(a, b), 1e-6);
  }
}

}  // namespace
}  // namespace ltns
