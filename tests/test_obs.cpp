// Unit tests for the observability layer (src/obs/): the per-thread
// ring-buffer tracer and its chunk wire format, the Chrome trace-event JSON
// flush, the metrics registry (JSON + Prometheus exposition), and the
// WorkerPulse heartbeat payload.
//
// The Tracer is a process-global singleton; tests share it. Each test that
// records events first calls reset_tracer(), which re-arms the tracer and
// wipes the calling thread's ring plus any ingested foreign chunks. The
// ring capacity of a thread's buffer is fixed at first use, so every test
// here is written against the same small capacity (kTestCapacity).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "dist/lease.hpp"
#include "dist/wire.hpp"
#include "obs/build_info.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/executor_stats.hpp"
#include "runtime/memory_stats.hpp"

namespace ltns::obs {
namespace {

constexpr size_t kTestCapacity = 8;

void reset_tracer(int rank) {
  Tracer& t = Tracer::instance();
  t.enable(rank, kTestCapacity);
  // Also clears the calling thread's ring and all ingested chunks — exactly
  // what a forked worker does to drop inherited parent events.
  t.reset_after_fork(rank);
}

size_t count_occurrences(const std::string& hay, const std::string& needle) {
  size_t n = 0;
  for (size_t pos = hay.find(needle); pos != std::string::npos; pos = hay.find(needle, pos + 1))
    ++n;
  return n;
}

TEST(Tracer, DisabledScopesRecordNothing) {
  reset_tracer(0);
  Tracer::instance().disable();
  const uint64_t before = Tracer::instance().events_recorded();
  {
    TraceScope ts(EventKind::kGemm, 64, 32);
    EXPECT_FALSE(ts.armed());  // never read the clock when tracing is off
  }
  trace_instant(EventKind::kLeaseRequeue, 3, 4);
  EXPECT_EQ(Tracer::instance().events_recorded(), before);
}

TEST(Tracer, ScopeRecordsOneCompleteEvent) {
  reset_tracer(0);
  {
    TraceScope ts(EventKind::kReduce, 1024);
    EXPECT_TRUE(ts.armed());
  }
  EXPECT_EQ(Tracer::instance().events_recorded(), 1u);
  EXPECT_EQ(Tracer::instance().events_dropped(), 0u);
  const std::string json = Tracer::instance().chrome_json();
  EXPECT_NE(json.find("\"name\":\"reduce\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  Tracer::instance().disable();
}

TEST(Tracer, RingWrapKeepsNewestAndCountsDrops) {
  reset_tracer(2);
  Tracer& t = Tracer::instance();
  const uint64_t n = kTestCapacity + 4;
  for (uint64_t i = 0; i < n; ++i) t.record(EventKind::kSlice, 1000 * (i + 1), 10, i);
  EXPECT_EQ(t.events_recorded(), n);
  EXPECT_EQ(t.events_dropped(), n - kTestCapacity);  // oldest 4 overwritten

  const std::string json = t.chrome_json();
  // Only the newest kTestCapacity events survive the wrap.
  EXPECT_EQ(count_occurrences(json, "\"name\":\"slice\""), kTestCapacity);
  EXPECT_NE(json.find("\"events_dropped\":" + std::to_string(n - kTestCapacity)),
            std::string::npos);
  // rank 2 renders as pid 3, named worker-2.
  EXPECT_NE(json.find("\"name\":\"worker-2\""), std::string::npos);
  t.disable();
}

TEST(Tracer, ChromeJsonCarriesSchemaBuildAndInstants) {
  reset_tracer(-1);  // coordinator rank
  Tracer& t = Tracer::instance();
  t.instant(EventKind::kLeaseGrant, 1, 0, 4);
  t.record(EventKind::kDeviceUpload, 50, 25, 4096);
  const std::string json = t.chrome_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"schema\":\"ltns.trace.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"build\":"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"coordinator\""), std::string::npos);
  // Instants carry ph "i" + scope "t"; completes carry a dur.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"device\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"lease\""), std::string::npos);
  t.disable();
}

TEST(Tracer, SerializeIngestRoundTripMergesWorkerChunk) {
  // A "worker" process records three events and serializes its buffers...
  reset_tracer(5);
  Tracer& t = Tracer::instance();
  t.record(EventKind::kGemm, 100, 10, 64, 32);
  t.record(EventKind::kPermute, 200, 20, 4096);
  t.instant(EventKind::kCheckpointAppend, 512);
  const std::vector<uint8_t> chunk = t.serialize();
  ASSERT_GT(chunk.size(), 16u);  // magic + version + rank + thread count

  // ...and the "coordinator" ingests the chunk next to its own (empty) set.
  reset_tracer(-1);
  EXPECT_EQ(t.events_recorded(), 0u);
  t.ingest(chunk);
  EXPECT_EQ(t.events_recorded(), 3u);
  const std::string json = t.chrome_json();
  EXPECT_NE(json.find("\"name\":\"worker-5\""), std::string::npos);  // pid 6
  EXPECT_NE(json.find("\"pid\":6"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"gemm\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"permute\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"journal_append\""), std::string::npos);
  t.disable();
}

TEST(Tracer, IngestRejectsCorruptChunks) {
  reset_tracer(-1);
  Tracer& t = Tracer::instance();
  const std::vector<uint8_t> garbage = {0xde, 0xad, 0xbe, 0xef, 1, 0, 0, 0,
                                        0,    0,    0,    0,    0, 0, 0, 0};
  EXPECT_THROW(t.ingest(garbage), std::runtime_error);
  std::vector<uint8_t> truncated = t.serialize();
  truncated.resize(truncated.size() / 2);
  // A truncated header either fails the magic check or the bounds check.
  EXPECT_THROW(t.ingest(truncated), std::runtime_error);
  EXPECT_EQ(t.events_recorded(), 0u);  // nothing partial was kept
  t.disable();
}

TEST(Tracer, EveryEventKindHasNameAndCategory) {
  for (uint16_t k = 0; k < uint16_t(EventKind::kKindCount); ++k) {
    const EventKindInfo& info = event_kind_info(EventKind(k));
    ASSERT_NE(info.name, nullptr);
    ASSERT_NE(info.category, nullptr);
    EXPECT_GT(std::string(info.name).size(), 0u);
    const std::string cat = info.category;
    EXPECT_TRUE(cat == "slice" || cat == "kernel" || cat == "lease" || cat == "device" ||
                cat == "checkpoint" || cat == "wire" || cat == "query")
        << "kind " << k << " has unknown category " << cat;
  }
}

TEST(Metrics, CountersAccumulateAndGaugesOverwrite) {
  MetricsRegistry reg;
  reg.counter("ltns_test_total", 2, {{"kind", "a"}});
  reg.counter("ltns_test_total", 3, {{"kind", "a"}});
  reg.counter("ltns_test_total", 7, {{"kind", "b"}});  // distinct label set
  reg.gauge("ltns_test_gauge", 1.5);
  reg.gauge("ltns_test_gauge", 2.5);  // overwrite, not add
  ASSERT_EQ(reg.metrics().size(), 3u);
  EXPECT_DOUBLE_EQ(reg.metrics()[0].value, 5.0);
  EXPECT_DOUBLE_EQ(reg.metrics()[1].value, 7.0);
  EXPECT_DOUBLE_EQ(reg.metrics()[2].value, 2.5);
}

TEST(Metrics, JsonAndPrometheusExposition) {
  MetricsRegistry reg;
  reg.counter("ltns_widgets_total", 4, {{"kind", "blue"}});
  reg.gauge("ltns_pressure", 0.75);
  reg.observe("ltns_latency_seconds", {1.0, 10.0, 100.0}, 0.5);
  reg.observe("ltns_latency_seconds", {1.0, 10.0, 100.0}, 5.0);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"schema\":\"ltns.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"build\":"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"ltns_widgets_total\""), std::string::npos);
  EXPECT_NE(json.find("\"labels\":{\"kind\":\"blue\"}"), std::string::npos);
  EXPECT_NE(json.find("\"value\":4"), std::string::npos);
  // Histogram buckets are cumulative in the JSON too.
  EXPECT_NE(json.find("\"sum\":5.5"), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);

  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("# TYPE ltns_widgets_total counter"), std::string::npos);
  EXPECT_NE(prom.find("ltns_widgets_total{kind=\"blue\"} 4"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE ltns_pressure gauge"), std::string::npos);
  EXPECT_NE(prom.find("ltns_pressure 0.75"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE ltns_latency_seconds histogram"), std::string::npos);
  // 0.5 lands in le=1; 5.0 in le=10; +Inf bucket equals the count.
  EXPECT_NE(prom.find("ltns_latency_seconds_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("ltns_latency_seconds_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("ltns_latency_seconds_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("ltns_latency_seconds_count 2"), std::string::npos);
}

TEST(Metrics, WriteFilesEmitsJsonAndPromTwin) {
  MetricsRegistry reg;
  reg.counter("ltns_write_test_total", 1);
  const std::string json_path = ::testing::TempDir() + "ltns_obs_metrics_test.json";
  const std::string prom_path = ::testing::TempDir() + "ltns_obs_metrics_test.prom";
  std::string err;
  ASSERT_TRUE(reg.write_files(json_path, &err)) << err;
  for (const std::string& p : {json_path, prom_path}) {
    std::FILE* f = std::fopen(p.c_str(), "rb");
    ASSERT_NE(f, nullptr) << p;
    std::fseek(f, 0, SEEK_END);
    EXPECT_GT(std::ftell(f), 0) << p;
    std::fclose(f);
    std::remove(p.c_str());
  }
}

TEST(Metrics, FillRunMetricsCoversEverySubsystem) {
  runtime::ExecutorSnapshot s;
  s.scheduled = 16;
  s.finished = 16;
  s.ema_utilization = 0.8;
  s.gemm = {32, 1.5};
  s.device.bytes_to_device = 4096;
  s.device.gemm_calls = 32;
  runtime::MemoryStats mem;
  mem.main_bytes = 1 << 20;
  dist::RebalanceStats reb;
  reb.leases_issued = 16;
  reb.leases_completed = 16;

  MetricsRegistry reg;
  fill_run_metrics(reg, s, mem, reb, /*tasks_run=*/16, /*reduce_merges=*/15,
                   /*wall_seconds=*/2.0);
  const std::string json = reg.to_json();
  // One stable name per subsystem proves the whole span is wired through.
  for (const char* name :
       {"ltns_tasks_finished_total", "ltns_phase_seconds_total", "ltns_device_bytes_total",
        "ltns_memory_bytes_total", "ltns_leases_completed_total", "ltns_run_wall_seconds",
        "ltns_reduce_merges_total", "ltns_kernel_isa_lanes", "ltns_kernel_seconds_total"}) {
    EXPECT_NE(json.find(std::string("\"name\":\"") + name + "\""), std::string::npos) << name;
  }
  // The full unified schema: 47 series (7 runtime + 9 phase + 9 device +
  // 7 memory + 9 rebalance + 6 per-ISA kernel). Growing this number is
  // fine; shrinking it or renaming a series is a schema break
  // (docs/observability.md).
  EXPECT_EQ(reg.metrics().size(), 47u);
}

TEST(BuildInfo, ExposesVersionCompilerAndJson) {
  const BuildInfo& b = build_info();
  EXPECT_GT(std::string(b.version).size(), 0u);
  EXPECT_GT(std::string(b.compiler).size(), 0u);
  const std::string json = build_info_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"version\""), std::string::npos);
  EXPECT_NE(json.find("\"compiler\""), std::string::npos);
}

TEST(WorkerPulse, WireRoundTrip) {
  dist::WorkerPulse p;
  p.ema_utilization = 0.625;
  p.tasks_run = 42;
  p.leases_completed = 7;
  p.device_bytes = 1.5e9;
  p.device_ns = 2.5e8;
  p.wall_seconds = 12.25;

  dist::ByteWriter w;
  dist::put_pulse(w, p);
  dist::ByteReader r(w.buffer());
  const dist::WorkerPulse q = dist::get_pulse(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_DOUBLE_EQ(q.ema_utilization, p.ema_utilization);
  EXPECT_EQ(q.tasks_run, p.tasks_run);
  EXPECT_EQ(q.leases_completed, p.leases_completed);
  EXPECT_DOUBLE_EQ(q.device_bytes, p.device_bytes);
  EXPECT_DOUBLE_EQ(q.device_ns, p.device_ns);
  EXPECT_DOUBLE_EQ(q.wall_seconds, p.wall_seconds);
}

}  // namespace
}  // namespace ltns::obs
