// Lowering and simplification: structural checks plus the key semantic
// invariant — contracting the lowered network reproduces the statevector
// amplitude, before AND after simplification.
#include <gtest/gtest.h>

#include "circuit/lowering.hpp"
#include "exec/tree_executor.hpp"
#include "path/greedy.hpp"
#include "sv/statevector.hpp"
#include "test_helpers.hpp"

namespace ltns::circuit {
namespace {

std::complex<double> contract_all(const LoweredNetwork& ln) {
  auto tree = test::greedy_tree(ln.net);
  auto leaves = [&](tn::VertId v) -> const exec::Tensor& { return ln.tensors[size_t(v)]; };
  auto r = exec::execute_tree(tree, leaves, {}, 0);
  EXPECT_EQ(r.rank(), 0);
  return std::complex<double>(r.data()[0]) * ln.scalar;
}

TEST(Lowering, StructureOfTinyCircuit) {
  Circuit c;
  c.num_qubits = 2;
  c.apply(gate_h(), {0});
  c.apply(gate_cz(), {0, 1});
  auto ln = lower(c);
  // 2 kets + 2 gates + 2 bras = 6 vertices; closed network.
  EXPECT_EQ(ln.net.num_alive_vertices(), 6);
  EXPECT_TRUE(ln.net.open_edges().empty());
  EXPECT_TRUE(ln.net.validate());
  for (auto v : ln.net.alive_vertices())
    EXPECT_EQ(ln.tensors[size_t(v)].rank(), ln.net.vertex_rank(v));
}

TEST(Lowering, OpenQubitsLeaveOpenEdges) {
  Circuit c;
  c.num_qubits = 3;
  c.apply(gate_h(), {0});
  LoweringOptions opt;
  opt.open_qubits = {0, 2};
  auto ln = lower(c, opt);
  EXPECT_EQ(ln.net.open_edges().size(), 2u);
  EXPECT_NE(ln.output_edge[0], tn::kNone);
  EXPECT_EQ(ln.output_edge[1], tn::kNone);
  EXPECT_NE(ln.output_edge[2], tn::kNone);
}

TEST(Lowering, AmplitudeMatchesStatevectorZeroBits) {
  auto c = test::small_rqc(2, 3, 4);
  auto ln = lower(c);
  auto want = sv::simulate_amplitude(c, test::zero_bits(c.num_qubits));
  auto got = contract_all(ln);
  EXPECT_NEAR(std::abs(got - want), 0.0, 1e-4);
}

TEST(Lowering, AmplitudeMatchesStatevectorArbitraryBits) {
  auto c = test::small_rqc(2, 3, 4, 7);
  std::vector<int> bits{1, 0, 1, 1, 0, 1};
  LoweringOptions opt;
  opt.output_bits = bits;
  auto ln = lower(c, opt);
  auto want = sv::simulate_amplitude(c, bits);
  EXPECT_NEAR(std::abs(contract_all(ln) - want), 0.0, 1e-4);
}

TEST(Simplify, RemovesAllLowRankTensors) {
  auto c = test::small_rqc(3, 3, 6);
  auto ln = lower(c);
  auto st = simplify(ln);
  EXPECT_GT(st.absorbed_rank1, 0);
  EXPECT_GT(st.absorbed_rank2, 0);
  for (auto v : ln.net.alive_vertices())
    EXPECT_GE(ln.net.vertex_rank(v), 3) << "rank<=2 tensor survived simplification";
  EXPECT_TRUE(ln.net.validate());
}

TEST(Simplify, ShrinksTheNetworkSubstantially) {
  auto c = test::small_rqc(3, 3, 6);
  auto ln = lower(c);
  int before = ln.net.num_alive_vertices();
  simplify(ln);
  EXPECT_LT(ln.net.num_alive_vertices(), before / 2);
}

TEST(Simplify, PreservesAmplitude) {
  for (uint64_t seed : {1u, 5u, 9u}) {
    auto c = test::small_rqc(2, 3, 5, seed);
    auto ln = lower(c);
    auto before = contract_all(ln);
    simplify(ln);
    auto after = contract_all(ln);
    EXPECT_NEAR(std::abs(before - after), 0.0, 1e-4) << "seed " << seed;
  }
}

TEST(Simplify, PreservesAmplitudeWithOpenQubits) {
  auto c = test::small_rqc(2, 3, 5);
  LoweringOptions opt;
  opt.open_qubits = {2, 4};
  auto ln = lower(c, opt);
  auto tree1 = test::greedy_tree(ln.net);
  auto leaves1 = [&](tn::VertId v) -> const exec::Tensor& { return ln.tensors[size_t(v)]; };
  auto before = exec::execute_tree(tree1, leaves1, {}, 0);

  simplify(ln);
  auto tree2 = test::greedy_tree(ln.net);
  auto leaves2 = [&](tn::VertId v) -> const exec::Tensor& { return ln.tensors[size_t(v)]; };
  auto after = exec::execute_tree(tree2, leaves2, {}, 0);

  ASSERT_EQ(before.rank(), 2);
  ASSERT_EQ(after.rank(), 2);
  // Compare entries via edge-labelled access (axis orders may differ).
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j) {
      std::vector<int> bits_b(2), bits_a(2);
      bits_b[size_t(before.axis_of(ln.output_edge[2]))] = i;
      bits_b[size_t(before.axis_of(ln.output_edge[4]))] = j;
      bits_a[size_t(after.axis_of(ln.output_edge[2]))] = i;
      bits_a[size_t(after.axis_of(ln.output_edge[4]))] = j;
      EXPECT_NEAR(std::abs(std::complex<double>(before.at(bits_b)) -
                           std::complex<double>(after.at(bits_a))),
                  0.0, 1e-4);
    }
}

TEST(Simplify, TinyCircuitCollapsesToScalar) {
  Circuit c;
  c.num_qubits = 1;
  c.apply(gate_h(), {0});
  auto ln = lower(c);
  auto want = sv::simulate_amplitude(c, {0});
  simplify(ln);
  // Everything should fold into the scalar (or a trivial remnant).
  std::complex<double> got = ln.scalar;
  for (auto v : ln.net.alive_vertices()) {
    const auto& t = ln.tensors[size_t(v)];
    if (t.rank() == 0) got *= std::complex<double>(t.data()[0]);
  }
  if (ln.net.num_alive_vertices() == 0) EXPECT_NEAR(std::abs(got - want), 0.0, 1e-6);
}

TEST(Lowering, GateTensorConventionMatchesMatrix) {
  // For H: T[in, out] == H[out][in].
  auto c = Circuit{};
  c.num_qubits = 1;
  c.apply(gate_h(), {0});
  auto ln = lower(c);
  // Vertex 1 is the H gate (0 is the ket).
  const auto& t = ln.tensors[1];
  auto h = gate_h();
  for (int in = 0; in < 2; ++in)
    for (int out = 0; out < 2; ++out)
      EXPECT_NEAR(std::abs(std::complex<double>(t.at({in, out})) - h.matrix[size_t(out * 2 + in)]),
                  0.0, 1e-7);
}

}  // namespace
}  // namespace ltns::circuit
