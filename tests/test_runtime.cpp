// Work-stealing slice runtime tests. The load-bearing invariants:
//   1. the tournament reduction is bitwise deterministic: accumulated
//      amplitudes are identical across executors, worker counts and
//      completion orders;
//   2. the shard API (first_task/num_tasks) partitions losslessly: shard
//      sums equal the full run;
//   3. stats accounting is exact under contention and cancellation:
//      finished + cancelled == scheduled, no task lost or run twice.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <complex>
#include <cstring>
#include <thread>

#include "core/greedy_slicer.hpp"
#include "exec/slice_runner.hpp"
#include "runtime/reduction.hpp"
#include "runtime/slice_scheduler.hpp"
#include "runtime/task_deque.hpp"
#include "test_helpers.hpp"

namespace ltns::runtime {
namespace {

TEST(TaskDeque, PopRespectsGrain) {
  TaskDeque d;
  d.push({0, 10});
  TaskRange r;
  ASSERT_TRUE(d.pop(3, &r));
  EXPECT_EQ(r.lo, 0u);
  EXPECT_EQ(r.hi, 3u);
  ASSERT_TRUE(d.pop(100, &r));
  EXPECT_EQ(r.lo, 3u);
  EXPECT_EQ(r.hi, 10u);
  EXPECT_FALSE(d.pop(1, &r));
  EXPECT_EQ(d.approx_size(), 0u);
}

TEST(TaskDeque, StealTakesUpperHalf) {
  TaskDeque d;
  d.push({0, 8});
  TaskRange stolen;
  ASSERT_TRUE(d.steal(&stolen));
  EXPECT_EQ(stolen.lo, 4u);
  EXPECT_EQ(stolen.hi, 8u);
  TaskRange own;
  ASSERT_TRUE(d.pop(8, &own));
  EXPECT_EQ(own.lo, 0u);
  EXPECT_EQ(own.hi, 4u);
}

TEST(TaskDeque, StealSingleTaskTakesIt) {
  TaskDeque d;
  d.push({5, 6});
  TaskRange r;
  ASSERT_TRUE(d.steal(&r));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_FALSE(d.steal(&r));
}

exec::Tensor scalar_tensor(double v) { return exec::Tensor::scalar(exec::cfloat(float(v), 0)); }

// The reduction must produce the same bits no matter the completion order.
TEST(ReductionTree, OrderIndependentBitwise) {
  const uint64_t n = 13;  // ragged: exercises empty-sibling promotion
  auto value = [](uint64_t t) { return 1.0 / double(t + 3); };

  ReductionTree fwd(0, n);
  for (uint64_t t = 0; t < n; ++t) fwd.add(t, scalar_tensor(value(t)));
  ASSERT_TRUE(fwd.complete());
  auto a = fwd.take_root();

  ReductionTree rev(0, n);
  for (uint64_t t = n; t-- > 0;) rev.add(t, scalar_tensor(value(t)));
  ASSERT_TRUE(rev.complete());
  auto b = rev.take_root();

  ReductionTree shuffled(0, n);
  for (uint64_t t : {7, 2, 12, 0, 9, 4, 11, 1, 6, 10, 3, 8, 5})
    shuffled.add(uint64_t(t), scalar_tensor(value(uint64_t(t))));
  ASSERT_TRUE(shuffled.complete());
  auto c = shuffled.take_root();

  EXPECT_EQ(std::memcmp(a.raw(), b.raw(), sizeof(exec::cfloat)), 0);
  EXPECT_EQ(std::memcmp(a.raw(), c.raw(), sizeof(exec::cfloat)), 0);
  EXPECT_EQ(fwd.merges(), rev.merges());
}

TEST(ReductionTree, ConcurrentAddsMatchSerial) {
  const uint64_t n = 256;
  auto value = [](uint64_t t) { return std::sin(double(t)) * 1e-2; };
  ReductionTree serial(0, n);
  for (uint64_t t = 0; t < n; ++t) serial.add(t, scalar_tensor(value(t)));
  auto expect = serial.take_root();

  for (int trial = 0; trial < 4; ++trial) {
    ReductionTree tree(0, n);
    std::atomic<uint64_t> next{0};
    std::vector<std::thread> threads;
    for (int w = 0; w < 4; ++w)
      threads.emplace_back([&] {
        uint64_t t;
        while ((t = next.fetch_add(1)) < n) tree.add(t, scalar_tensor(value(t)));
      });
    for (auto& th : threads) th.join();
    ASSERT_TRUE(tree.complete());
    auto got = tree.take_root();
    EXPECT_EQ(std::memcmp(expect.raw(), got.raw(), sizeof(exec::cfloat)), 0) << "trial " << trial;
  }
}

TEST(ReductionTree, SingleTaskAndOffsetWindow) {
  ReductionTree one(42, 1);
  one.add(42, scalar_tensor(7));
  ASSERT_TRUE(one.complete());
  EXPECT_EQ(one.take_root().data()[0], exec::cfloat(7, 0));
  EXPECT_EQ(one.merges(), 0u);

  ReductionTree window(100, 5);
  for (uint64_t t = 100; t < 105; ++t) window.add(t, scalar_tensor(1));
  ASSERT_TRUE(window.complete());
  EXPECT_EQ(window.take_root().data()[0], exec::cfloat(5, 0));
}

TEST(SliceScheduler, RunsEveryTaskExactlyOnce) {
  SliceScheduler sched(4);
  const uint64_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  auto begin = sched.stats().snapshot();
  uint64_t executed = sched.run(0, n, [&](int, uint64_t t) { hits[t].fetch_add(1); });
  EXPECT_EQ(executed, n);
  for (uint64_t t = 0; t < n; ++t) ASSERT_EQ(hits[t].load(), 1) << "task " << t;
  auto delta = sched.stats().snapshot().since(begin);
  EXPECT_EQ(delta.scheduled, n);
  EXPECT_EQ(delta.finished, n);
  EXPECT_EQ(delta.cancelled, 0u);
  EXPECT_EQ(delta.running, 0);
  EXPECT_EQ(delta.waiting, 0);
  EXPECT_GE(delta.ema_utilization, 0.0);
  EXPECT_LE(delta.ema_utilization, 1.0);
}

TEST(SliceScheduler, OffsetShardAndReuse) {
  SliceScheduler sched(2);
  std::atomic<uint64_t> sum{0};
  EXPECT_EQ(sched.run(1000, 64, [&](int, uint64_t t) { sum.fetch_add(t); }), 64u);
  EXPECT_EQ(sum.load(), (1000u + 1063u) * 64 / 2);
  // Reuse across runs: counters keep accumulating.
  auto before = sched.stats().snapshot();
  EXPECT_EQ(sched.run(0, 8, [](int, uint64_t) {}), 8u);
  EXPECT_EQ(sched.stats().snapshot().since(before).finished, 8u);
}

TEST(SliceScheduler, StealsFromSkewedShard) {
  SliceScheduler sched(4);
  const uint64_t n = 16;
  // The seed gives worker 0 tasks [0, 4); make exactly those slow so the
  // other workers drain their shards and come stealing.
  auto begin = sched.stats().snapshot();
  sched.run(0, n, [&](int, uint64_t t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(t < 4 ? 40 : 1));
  });
  auto delta = sched.stats().snapshot().since(begin);
  EXPECT_EQ(delta.finished, n);
  EXPECT_GT(delta.stolen, 0u);
  EXPECT_LE(delta.stolen, n);  // kept-tasks accounting never over-counts
}

TEST(SliceScheduler, CancellationDrainsExactly) {
  SliceScheduler sched(2);
  const uint64_t n = 1000;
  auto begin = sched.stats().snapshot();
  std::atomic<uint64_t> ran{0};
  uint64_t executed = sched.run(0, n, [&](int, uint64_t) {
    ran.fetch_add(1);
    sched.cancel();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  auto delta = sched.stats().snapshot().since(begin);
  EXPECT_EQ(executed, ran.load());
  EXPECT_LT(executed, n);  // the drain discarded the bulk of the range
  EXPECT_EQ(delta.finished, executed);
  EXPECT_EQ(delta.finished + delta.cancelled, n);  // nothing lost
  // A later run on the same scheduler starts with a cleared flag.
  EXPECT_EQ(sched.run(0, 4, [](int, uint64_t) {}), 4u);
}

// --- run_sliced integration over the three executors ---------------------

struct SlicedFixture {
  circuit::LoweredNetwork ln;
  std::shared_ptr<tn::ContractionTree> tree;
  core::SliceSet slices;

  exec::LeafProvider leaves() const {
    return [this](tn::VertId v) -> const exec::Tensor& { return ln.tensors[size_t(v)]; };
  }
};

SlicedFixture make_sliced_fixture(int min_slices = 3) {
  SlicedFixture f{test::small_network(3, 4, 6), nullptr, core::SliceSet{}};
  f.tree = std::make_shared<tn::ContractionTree>(test::greedy_tree(f.ln.net));
  core::GreedySlicerOptions go;
  go.target_log2size = std::max(2.0, f.tree->max_log2size() - double(min_slices));
  f.slices = core::greedy_slice(*f.tree, go);
  return f;
}

using test::bitwise_equal;

TEST(RunSliced, BitStableAcrossExecutorsAndWorkerCounts) {
  auto f = make_sliced_fixture();
  ASSERT_GE(f.slices.size(), 2);

  exec::SliceRunOptions serial;
  serial.executor = exec::SliceExecutor::kInnerPool;
  ThreadPool pool1(1);
  serial.pool = &pool1;
  auto ref = run_sliced(*f.tree, f.leaves(), f.slices, serial);
  ASSERT_EQ(ref.tasks_run, uint64_t(1) << f.slices.size());

  ThreadPool pool4(4);
  exec::SliceRunOptions stat;
  stat.executor = exec::SliceExecutor::kStaticPool;
  stat.pool = &pool4;
  auto rs = run_sliced(*f.tree, f.leaves(), f.slices, stat);
  EXPECT_TRUE(bitwise_equal(ref.accumulated, rs.accumulated)) << "static-pool diverged";

  for (int workers : {1, 2, 4}) {
    SliceScheduler sched(workers);
    exec::SliceRunOptions ws;
    ws.executor = exec::SliceExecutor::kWorkStealing;
    ws.scheduler = &sched;
    auto rw = run_sliced(*f.tree, f.leaves(), f.slices, ws);
    EXPECT_EQ(rw.tasks_run, ref.tasks_run);
    EXPECT_TRUE(bitwise_equal(ref.accumulated, rw.accumulated))
        << "work stealing diverged at " << workers << " workers";
  }
}

TEST(RunSliced, FusedBitStableUnderWorkStealing) {
  auto f = make_sliced_fixture();
  auto stem = tn::extract_stem(*f.tree);
  auto plan = exec::plan_fused(stem, f.slices.to_vector(), 1 << 12);

  exec::SliceRunOptions serial;
  serial.executor = exec::SliceExecutor::kInnerPool;
  ThreadPool pool1(1);
  serial.pool = &pool1;
  serial.fused = &plan;
  auto ref = run_sliced(*f.tree, f.leaves(), f.slices, serial);

  SliceScheduler sched(4);
  exec::SliceRunOptions ws;
  ws.executor = exec::SliceExecutor::kWorkStealing;
  ws.scheduler = &sched;
  ws.fused = &plan;
  auto rw = run_sliced(*f.tree, f.leaves(), f.slices, ws);
  EXPECT_TRUE(bitwise_equal(ref.accumulated, rw.accumulated));
  EXPECT_GT(rw.memory.ldm_subtasks, 0u);
  EXPECT_GT(rw.memory.scratch_bytes(), 0.0);
}

TEST(RunSliced, ShardsPartitionTheFullRun) {
  auto f = make_sliced_fixture();
  const uint64_t all = uint64_t(1) << f.slices.size();

  SliceScheduler sched(2);
  exec::SliceRunOptions base;
  base.executor = exec::SliceExecutor::kWorkStealing;
  base.scheduler = &sched;
  auto full = run_sliced(*f.tree, f.leaves(), f.slices, base);

  // Uneven three-way split, like three processes sharding one slice range.
  const uint64_t cuts[4] = {0, all / 3, all / 3 + all / 5 + 1, all};
  std::complex<double> sum{0, 0};
  uint64_t tasks = 0;
  for (int s = 0; s < 3; ++s) {
    exec::SliceRunOptions shard = base;
    shard.first_task = cuts[s];
    shard.num_tasks = cuts[s + 1] - cuts[s];
    auto r = run_sliced(*f.tree, f.leaves(), f.slices, shard);
    EXPECT_EQ(r.tasks_run, shard.num_tasks);
    EXPECT_EQ(r.executor_stats.finished, shard.num_tasks);
    sum += std::complex<double>(r.accumulated.data()[0]);
    tasks += r.tasks_run;
  }
  EXPECT_EQ(tasks, all);
  std::complex<double> whole(full.accumulated.data()[0]);
  EXPECT_NEAR(std::abs(sum - whole), 0.0, 1e-5 * std::max(1.0, std::abs(whole)));
}

// Regression: out-of-range shard windows used to slip past a release-build
// assert and schedule nonexistent tasks; they are clamped to [0, 2^|S|) now.
TEST(RunSliced, WindowClampedToTaskRange) {
  auto f = make_sliced_fixture();
  const uint64_t all = uint64_t(1) << f.slices.size();

  SliceScheduler sched(2);
  exec::SliceRunOptions base;
  base.executor = exec::SliceExecutor::kWorkStealing;
  base.scheduler = &sched;
  auto full = run_sliced(*f.tree, f.leaves(), f.slices, base);
  ASSERT_TRUE(full.completed);

  // first_task past the end: nothing to run, still a completed (empty) run.
  exec::SliceRunOptions past = base;
  past.first_task = all + 5;
  past.num_tasks = 3;
  auto rp = run_sliced(*f.tree, f.leaves(), f.slices, past);
  EXPECT_TRUE(rp.completed);
  EXPECT_EQ(rp.tasks_run, 0u);
  EXPECT_EQ(rp.executor_stats.scheduled, 0u);
  EXPECT_EQ(rp.accumulated.size(), 0u);

  // num_tasks overflowing the range: clamped to the remainder.
  exec::SliceRunOptions over = base;
  over.first_task = all - 2;
  over.num_tasks = 100;
  auto ro = run_sliced(*f.tree, f.leaves(), f.slices, over);
  EXPECT_TRUE(ro.completed);
  EXPECT_EQ(ro.tasks_run, 2u);

  // num_tasks = 0 with a nonzero first_task: everything from first_task on.
  exec::SliceRunOptions tail = base;
  tail.first_task = all / 2;
  tail.num_tasks = 0;
  auto rt = run_sliced(*f.tree, f.leaves(), f.slices, tail);
  EXPECT_TRUE(rt.completed);
  EXPECT_EQ(rt.tasks_run, all - all / 2);

  // The clamped tail plus the head still sum to the full run (the windows
  // partition, so this pins that clamping kept the window semantics).
  exec::SliceRunOptions head = base;
  head.first_task = 0;
  head.num_tasks = all / 2;
  auto rh = run_sliced(*f.tree, f.leaves(), f.slices, head);
  std::complex<double> sum = std::complex<double>(rh.accumulated.data()[0]) +
                             std::complex<double>(rt.accumulated.data()[0]);
  std::complex<double> whole(full.accumulated.data()[0]);
  EXPECT_NEAR(std::abs(sum - whole), 0.0, 1e-5 * std::max(1.0, std::abs(whole)));
}

TEST(RunSliced, StatsInvariantsUnderContention) {
  auto f = make_sliced_fixture();
  const uint64_t all = uint64_t(1) << f.slices.size();
  SliceScheduler sched(8);  // oversubscribed on purpose
  exec::SliceRunOptions ws;
  ws.executor = exec::SliceExecutor::kWorkStealing;
  ws.scheduler = &sched;
  auto r = run_sliced(*f.tree, f.leaves(), f.slices, ws);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.tasks_run, all);
  EXPECT_EQ(r.executor_stats.scheduled, all);
  EXPECT_EQ(r.executor_stats.finished, all);
  EXPECT_EQ(r.executor_stats.cancelled, 0u);
  EXPECT_EQ(r.executor_stats.running, 0);
  EXPECT_EQ(r.executor_stats.waiting, 0);
  // Tournament over n leaves performs exactly n-1 merges.
  EXPECT_EQ(r.reduce_merges, all - 1);
  EXPECT_EQ(r.executor_stats.reduce.count, all - 1);
  EXPECT_GT(r.executor_stats.gemm.count, 0u);
  EXPECT_GT(r.stats.flops, 0.0);
  EXPECT_GT(r.memory.main_bytes, 0.0);
}

}  // namespace
}  // namespace ltns::runtime
