#include "exec/tensor.hpp"

#include <gtest/gtest.h>

namespace ltns::exec {
namespace {

TEST(Tensor, ConstructionZeroInitialized) {
  Tensor t({10, 11, 12});
  EXPECT_EQ(t.rank(), 3);
  EXPECT_EQ(t.size(), 8u);
  for (auto v : t.data()) EXPECT_EQ(v, cfloat(0, 0));
}

TEST(Tensor, ScalarTensor) {
  auto s = Tensor::scalar({2, -1});
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.data()[0], cfloat(2, -1));
}

TEST(Tensor, AxisLookup) {
  Tensor t({5, 9, 2});
  EXPECT_EQ(t.axis_of(5), 0);
  EXPECT_EQ(t.axis_of(9), 1);
  EXPECT_EQ(t.axis_of(2), 2);
  EXPECT_EQ(t.axis_of(77), -1);
  EXPECT_EQ(t.bit_of_axis(0), 2);  // first axis is slowest
  EXPECT_EQ(t.bit_of_axis(2), 0);
}

TEST(Tensor, AtSetRoundTrip) {
  Tensor t({1, 2});
  t.set({0, 1}, {3, 4});
  t.set({1, 0}, {5, 6});
  EXPECT_EQ(t.at({0, 1}), cfloat(3, 4));
  EXPECT_EQ(t.at({1, 0}), cfloat(5, 6));
  EXPECT_EQ(t.at({0, 0}), cfloat(0, 0));
  // Linear layout: axis0 slowest.
  EXPECT_EQ(t.data()[1], cfloat(3, 4));
  EXPECT_EQ(t.data()[2], cfloat(5, 6));
}

TEST(Tensor, FixedSelectsHyperplane) {
  Tensor t({7, 8, 9});
  for (int a = 0; a < 2; ++a)
    for (int b = 0; b < 2; ++b)
      for (int c = 0; c < 2; ++c) t.set({a, b, c}, cfloat(float(a * 4 + b * 2 + c), 0));
  auto f0 = t.fixed(8, 1);  // fix middle axis to 1
  EXPECT_EQ(f0.rank(), 2);
  EXPECT_EQ(f0.ixs(), (std::vector<int>{7, 9}));
  for (int a = 0; a < 2; ++a)
    for (int c = 0; c < 2; ++c) EXPECT_EQ(f0.at({a, c}), t.at({a, 1, c}));
}

TEST(Tensor, FixedFirstAndLastAxes) {
  auto t = random_tensor({1, 2, 3, 4}, 99);
  auto first = t.fixed(1, 1);
  auto last = t.fixed(4, 0);
  for (int b = 0; b < 2; ++b)
    for (int c = 0; c < 2; ++c)
      for (int d = 0; d < 2; ++d) {
        EXPECT_EQ(first.at({b, c, d}), t.at({1, b, c, d}));
      }
  for (int a = 0; a < 2; ++a)
    for (int b = 0; b < 2; ++b)
      for (int c = 0; c < 2; ++c) EXPECT_EQ(last.at({a, b, c}), t.at({a, b, c, 0}));
}

TEST(Tensor, FixedAllMultipleEdges) {
  auto t = random_tensor({1, 2, 3}, 5);
  // Fix edge 3 -> bit0 of assignment, edge 1 -> bit1 (order of the vector).
  auto f = t.fixed_all({3, 1}, 0b01);  // 3 := 1, 1 := 0
  EXPECT_EQ(f.rank(), 1);
  EXPECT_EQ(f.ixs(), (std::vector<int>{2}));
  for (int b = 0; b < 2; ++b) EXPECT_EQ(f.at({b}), t.at({0, b, 1}));
}

TEST(Tensor, FixedAllIgnoresAbsentEdges) {
  auto t = random_tensor({1, 2}, 6);
  auto f = t.fixed_all({42, 2}, 0b10);  // 42 absent, 2 := 1
  EXPECT_EQ(f.rank(), 1);
  for (int a = 0; a < 2; ++a) EXPECT_EQ(f.at({a}), t.at({a, 1}));
}

TEST(Tensor, SliceSumRecomposes) {
  // Summing a tensor's two slices along an axis == contracting that axis
  // with the all-ones vector; here just check both slices partition data.
  auto t = random_tensor({4, 5, 6}, 11);
  auto s0 = t.fixed(5, 0);
  auto s1 = t.fixed(5, 1);
  double total = 0;
  for (size_t i = 0; i < s0.size(); ++i)
    total += std::abs(s0.data()[i]) + std::abs(s1.data()[i]);
  double direct = 0;
  for (auto v : t.data()) direct += std::abs(v);
  EXPECT_NEAR(total, direct, 1e-3);
}

TEST(Tensor, GatherFixedMatchesFixedAll) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    auto t = random_tensor({1, 2, 3, 4, 5, 6}, seed);
    // Mixed scattered/trailing fixed axes, plus an absent edge.
    std::vector<int> edges{2, 5, 42, 6};
    for (uint64_t bits = 0; bits < 16; ++bits) {
      size_t block = 0;
      auto fast = t.gather_fixed(edges, bits, &block);
      auto slow = t.fixed_all(edges, bits);
      ASSERT_EQ(fast.ixs(), slow.ixs());
      EXPECT_EQ(max_abs_diff(fast, slow), 0.0) << "bits " << bits;
      EXPECT_GE(block, 1u);
    }
  }
}

TEST(Tensor, GatherFixedGranularity) {
  auto t = random_tensor({1, 2, 3, 4}, 7);
  size_t block = 0;
  // Fix a leading axis: trailing 3 kept axes stay contiguous.
  t.gather_fixed({1}, 0, &block);
  EXPECT_EQ(block, 8u);
  // Fix the last axis: no contiguous tail.
  t.gather_fixed({4}, 0, &block);
  EXPECT_EQ(block, 1u);
  // Fix nothing that exists: whole tensor is one block.
  t.gather_fixed({99}, 0, &block);
  EXPECT_EQ(block, 16u);
}

TEST(Tensor, Norm2) {
  Tensor t({1});
  t.set({0}, {3, 0});
  t.set({1}, {0, 4});
  EXPECT_DOUBLE_EQ(t.norm2(), 25.0);
}

TEST(Tensor, RandomTensorDeterministic) {
  auto a = random_tensor({1, 2}, 7);
  auto b = random_tensor({1, 2}, 7);
  EXPECT_EQ(max_abs_diff(a, b), 0.0);
}

TEST(Tensor, DropReleasesMemory) {
  auto t = random_tensor({1, 2, 3}, 8);
  t.drop();
  EXPECT_EQ(t.data().size(), 0u);
}

}  // namespace
}  // namespace ltns::exec
