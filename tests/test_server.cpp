// Multi-tenant job-server tests. The load-bearing invariants:
//   1. FairShare is a real stride scheduler: weighted tenants split the
//      fleet in weight proportion, zero-weight tenants run only when no
//      weighted tenant is runnable, and an idle tenant cannot bank virtual
//      time while away (no post-idle monopoly);
//   2. AdmissionControl bounds the queue hard (reject, never buffer) and
//      walks the concurrent-job limit between the utilization watermarks
//      one step at a time, clamped to [min_running, max_running];
//   3. the server itself multiplexes concurrent jobs from different
//      tenants over ONE fleet and each result is bitwise identical to a
//      solo api::Simulator run of the same spec;
//   4. lifecycle edges hold: cancel works on queued AND running jobs
//      (and is idempotent-safe on terminal ones), a submit past max_queued
//      is rejected with a reason, unknown job ids error instead of hanging.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/simulator.hpp"
#include "circuit/io.hpp"
#include "dist/client.hpp"
#include "dist/server.hpp"
#include "dist/service.hpp"
#include "test_helpers.hpp"

namespace ltns::dist {
namespace {

// --- FairShare ------------------------------------------------------------

TEST(FairShare, SplitsWorkInWeightProportion) {
  FairShare fs;
  fs.set_weight("alice", 3);
  fs.set_weight("bob", 1);
  int alice = 0, bob = 0;
  for (int i = 0; i < 400; ++i) {
    auto t = fs.pick({"alice", "bob"});
    ASSERT_FALSE(t.empty());
    (t == "alice" ? alice : bob)++;
    fs.charge(t, 1);
  }
  EXPECT_EQ(alice + bob, 400);
  EXPECT_NEAR(alice, 300, 2);
  EXPECT_NEAR(bob, 100, 2);
}

TEST(FairShare, ZeroWeightTenantIsBackgroundOnly) {
  FairShare fs;
  fs.set_weight("paid", 1);
  fs.set_weight("scavenger", 0);
  // While a weighted tenant is runnable the background tenant NEVER runs,
  // no matter how far ahead the weighted tenant's virtual time is.
  for (int i = 0; i < 50; ++i) {
    auto t = fs.pick({"paid", "scavenger"});
    EXPECT_EQ(t, "paid");
    fs.charge(t, 10);
  }
  // Alone, the background tenant does run (weight 0 charges as weight 1).
  EXPECT_EQ(fs.pick({"scavenger"}), "scavenger");
  fs.charge("scavenger", 5);
  EXPECT_GT(fs.virtual_time("scavenger"), 0.0);
}

TEST(FairShare, TwoBackgroundTenantsRoundRobin) {
  FairShare fs;
  fs.set_weight("bg-a", 0);
  fs.set_weight("bg-b", 0);
  int a = 0, b = 0;
  for (int i = 0; i < 20; ++i) {
    auto t = fs.pick({"bg-a", "bg-b"});
    (t == "bg-a" ? a : b)++;
    fs.charge(t, 1);
  }
  EXPECT_EQ(a, 10);
  EXPECT_EQ(b, 10);
}

TEST(FairShare, IdleTenantCannotBankCredit) {
  FairShare fs;
  fs.set_weight("alice", 1);
  fs.set_weight("bob", 1);
  // Bob works alone for a long stretch; Alice is idle (not runnable).
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(fs.pick({"bob"}), "bob");
    fs.charge("bob", 1);
  }
  // When Alice returns her virtual time clamps UP to the scheduler clock:
  // she gets the next pick (lowest vt) but not a monopoly — the following
  // 20 picks split evenly instead of all going to her.
  int alice = 0, bob = 0;
  for (int i = 0; i < 20; ++i) {
    auto t = fs.pick({"alice", "bob"});
    (t == "alice" ? alice : bob)++;
    fs.charge(t, 1);
  }
  EXPECT_NEAR(alice, 10, 1);
  EXPECT_NEAR(bob, 10, 1);
}

TEST(FairShare, HeavyWeightCannotStarveLightTenant) {
  FairShare fs;
  fs.set_weight("whale", 9);
  fs.set_weight("minnow", 1);
  int minnow = 0, longest_wait = 0, waiting = 0;
  for (int i = 0; i < 200; ++i) {
    auto t = fs.pick({"whale", "minnow"});
    if (t == "minnow") {
      minnow++;
      waiting = 0;
    } else {
      waiting++;
      longest_wait = std::max(longest_wait, waiting);
    }
    fs.charge(t, 1);
  }
  // 10% of the picks, and never more than ~1/share_ratio picks between
  // consecutive grants: the starvation bound of stride scheduling.
  EXPECT_NEAR(minnow, 20, 2);
  EXPECT_LE(longest_wait, 10);
}

TEST(FairShare, TiesBreakLexicographicallyAndEmptyPickReturnsEmpty) {
  FairShare fs;
  EXPECT_EQ(fs.pick({}), "");
  // Fresh (never-charged) tenants tie at virtual time 0.
  EXPECT_EQ(fs.pick({"zeta", "alpha", "mid"}), "alpha");
  // Unknown names are declared weight-1 on first pick.
  EXPECT_DOUBLE_EQ(fs.virtual_time("zeta"), 0.0);
}

// --- AdmissionControl -----------------------------------------------------

TEST(Admission, StartsOptimisticAndAdmitsUpToQueueBound) {
  AdmissionOptions ao;
  ao.max_queued = 3;
  ao.min_running = 1;
  ao.max_running = 4;
  AdmissionControl ac(ao);
  EXPECT_EQ(ac.running_limit(), 4);
  EXPECT_TRUE(ac.admit(0));
  EXPECT_TRUE(ac.admit(2));
  EXPECT_FALSE(ac.admit(3));  // hard bound: reject, never buffer
  EXPECT_FALSE(ac.admit(100));
}

TEST(Admission, WalksLimitBetweenWatermarksOneStepAtATime) {
  AdmissionOptions ao;
  ao.min_running = 1;
  ao.max_running = 4;
  ao.high_watermark = 0.85;
  ao.low_watermark = 0.5;
  AdmissionControl ac(ao);
  // A saturated fleet steps the limit down once per observation...
  ac.observe_utilization(0.95);
  EXPECT_EQ(ac.running_limit(), 3);
  ac.observe_utilization(0.95);
  ac.observe_utilization(0.95);
  ac.observe_utilization(0.95);
  EXPECT_EQ(ac.running_limit(), 1);  // ...clamped at the floor
  // In the comfort band the limit holds.
  ac.observe_utilization(0.7);
  EXPECT_EQ(ac.running_limit(), 1);
  // An idle fleet steps it back up, clamped at the ceiling.
  for (int i = 0; i < 10; ++i) ac.observe_utilization(0.1);
  EXPECT_EQ(ac.running_limit(), 4);
}

TEST(Admission, SanitizesIncoherentOptions) {
  AdmissionOptions ao;
  ao.min_running = 0;   // floor below 1 makes no sense
  ao.max_running = -2;  // ceiling below the floor even less
  AdmissionControl ac(ao);
  EXPECT_GE(ac.options().min_running, 1);
  EXPECT_GE(ac.options().max_running, ac.options().min_running);
  EXPECT_GE(ac.running_limit(), 1);
}

// --- JobServer end-to-end (in-process fleet) ------------------------------

// One server + N fleet-worker threads on an ephemeral port; every test
// must end with finish() (which drains via kShutdown) or cancel every
// running job first — serve() only returns once running jobs settle.
class ServerE2E : public ::testing::Test {
 protected:
  void start(ServerOptions opt, int n_workers) {
    server_ = std::make_unique<JobServer>(0, opt);
    port_ = server_->port();
    server_thread_ = std::thread([this] { serve_err_ = server_->serve(); });
    for (int i = 0; i < n_workers; ++i)
      workers_.emplace_back([this] { serve_worker("127.0.0.1", port_); });
  }

  void finish() {
    auto rep = shutdown_server("127.0.0.1", port_);
    EXPECT_TRUE(rep.ok) << rep.message;
    server_thread_.join();
    for (auto& w : workers_) w.join();
    workers_.clear();
    EXPECT_EQ(serve_err_, "");
  }

  static JobSpec spec_for(const circuit::Circuit& c, const std::string& bits,
                          const std::string& tenant, uint32_t weight) {
    JobSpec s;
    s.tenant = tenant;
    s.weight = weight;
    s.circuit_text = circuit::circuit_to_string(c);
    s.bits = bits;
    s.target_log2size = 4;  // force real slicing so jobs have many tasks
    return s;
  }

  static std::complex<double> solo_amplitude(const circuit::Circuit& c,
                                             const std::string& bits) {
    api::SimulatorOptions opt;
    opt.plan.target_log2size = 4;
    api::Simulator sim(c, opt);
    std::vector<int> b;
    for (char ch : bits) b.push_back(ch == '1');
    auto res = sim.amplitude(b);
    EXPECT_TRUE(res.completed);
    return res.amplitude;
  }

  std::unique_ptr<JobServer> server_;
  uint16_t port_ = 0;
  std::thread server_thread_;
  std::vector<std::thread> workers_;
  std::string serve_err_ = "unset";
};

TEST_F(ServerE2E, ConcurrentTenantsAreByteIdenticalToSoloRuns) {
  ServerOptions so;
  so.admission.max_running = 2;
  start(so, 2);

  auto c1 = test::small_rqc(3, 3, 8, 5);
  auto c2 = test::small_rqc(3, 3, 8, 6);
  auto r1 = submit_job("127.0.0.1", port_, spec_for(c1, "010101010", "alice", 3));
  auto r2 = submit_job("127.0.0.1", port_, spec_for(c2, "101010101", "bob", 1));
  ASSERT_TRUE(r1.ok) << r1.message;
  ASSERT_TRUE(r2.ok) << r2.message;
  EXPECT_NE(r1.job_id, r2.job_id);

  auto rec1 = fetch_result("127.0.0.1", port_, r1.job_id, /*wait=*/true);
  auto rec2 = fetch_result("127.0.0.1", port_, r2.job_id, /*wait=*/true);
  ASSERT_EQ(rec1.state, JobState::kDone) << rec1.error;
  ASSERT_EQ(rec2.state, JobState::kDone) << rec2.error;
  EXPECT_EQ(rec1.tenant, "alice");
  EXPECT_EQ(rec2.tenant, "bob");
  EXPECT_GT(rec1.tasks_run, uint64_t(1)) << "spec should have sliced into many tasks";

  // THE acceptance criterion: sharing the fleet with another tenant's job
  // must not perturb a single bit of either amplitude.
  auto solo1 = solo_amplitude(c1, "010101010");
  auto solo2 = solo_amplitude(c2, "101010101");
  EXPECT_EQ(rec1.amplitude_re, solo1.real());
  EXPECT_EQ(rec1.amplitude_im, solo1.imag());
  EXPECT_EQ(rec2.amplitude_re, solo2.real());
  EXPECT_EQ(rec2.amplitude_im, solo2.imag());

  // The server snapshot knows both tenants and their weights.
  auto status = job_status_json("127.0.0.1", port_, 0);
  EXPECT_NE(status.find("\"alice\""), std::string::npos);
  EXPECT_NE(status.find("\"bob\""), std::string::npos);
  EXPECT_NE(status.find("\"admission\""), std::string::npos);
  finish();
}

TEST_F(ServerE2E, CancelWorksOnQueuedAndRunningJobs) {
  // No workers: job 1 occupies the single running slot forever, job 2
  // stays queued — the two cancel paths are deterministic.
  ServerOptions so;
  so.admission.max_running = 1;
  start(so, 0);

  auto c = test::small_rqc(3, 3, 6, 13);
  auto r1 = submit_job("127.0.0.1", port_, spec_for(c, "000000000", "t", 1));
  auto r2 = submit_job("127.0.0.1", port_, spec_for(c, "000000001", "t", 1));
  ASSERT_TRUE(r1.ok && r2.ok);

  auto s1 = job_status_json("127.0.0.1", port_, r1.job_id);
  auto s2 = job_status_json("127.0.0.1", port_, r2.job_id);
  EXPECT_NE(s1.find("\"running\""), std::string::npos);
  EXPECT_NE(s2.find("\"queued\""), std::string::npos);

  // Cancel the QUEUED job; its slot never opens, so order matters here.
  auto c2rep = cancel_job("127.0.0.1", port_, r2.job_id);
  EXPECT_TRUE(c2rep.ok) << c2rep.message;
  // Cancel the RUNNING job.
  auto c1rep = cancel_job("127.0.0.1", port_, r1.job_id);
  EXPECT_TRUE(c1rep.ok) << c1rep.message;
  // Cancelling a terminal job is refused, not crashed.
  auto again = cancel_job("127.0.0.1", port_, r2.job_id);
  EXPECT_FALSE(again.ok);

  auto rec1 = fetch_result("127.0.0.1", port_, r1.job_id, /*wait=*/false);
  auto rec2 = fetch_result("127.0.0.1", port_, r2.job_id, /*wait=*/false);
  EXPECT_EQ(rec1.state, JobState::kCancelled);
  EXPECT_EQ(rec2.state, JobState::kCancelled);
  finish();
}

TEST_F(ServerE2E, SubmitPastQueueBoundIsRejectedWithReason) {
  ServerOptions so;
  so.admission.max_running = 1;
  so.admission.max_queued = 1;
  start(so, 0);

  auto c = test::small_rqc(3, 3, 6, 14);
  auto r1 = submit_job("127.0.0.1", port_, spec_for(c, "000000000", "t", 1));
  auto r2 = submit_job("127.0.0.1", port_, spec_for(c, "000000001", "t", 1));
  auto r3 = submit_job("127.0.0.1", port_, spec_for(c, "000000010", "t", 1));
  EXPECT_TRUE(r1.ok);   // admitted, starts running
  EXPECT_TRUE(r2.ok);   // admitted, fills the one queue slot
  ASSERT_FALSE(r3.ok);  // REJECTED, not buffered
  EXPECT_NE(r3.message.find("queue full"), std::string::npos) << r3.message;

  // A rejected submit is not a job: the id space has exactly two entries.
  cancel_job("127.0.0.1", port_, r1.job_id);
  cancel_job("127.0.0.1", port_, r2.job_id);
  finish();
}

TEST_F(ServerE2E, BadSpecsAndUnknownIdsErrorCleanly) {
  ServerOptions so;
  start(so, 0);

  JobSpec garbage;
  garbage.circuit_text = "this is not a circuit";
  garbage.bits = "00";
  auto rep = submit_job("127.0.0.1", port_, garbage);
  EXPECT_FALSE(rep.ok);

  EXPECT_THROW(fetch_result("127.0.0.1", port_, 999, /*wait=*/false), std::runtime_error);
  EXPECT_THROW(job_status_json("127.0.0.1", port_, 999), std::runtime_error);
  EXPECT_FALSE(cancel_job("127.0.0.1", port_, 999).ok);
  finish();
}

}  // namespace
}  // namespace ltns::dist
