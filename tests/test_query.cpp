// Batched query engine tests (src/query/). The load-bearing invariants:
//   1. the parser accepts both line and JSON syntaxes, canonicalizes the
//      echo text, and REJECTS malformed files with the offending line
//      number (never skips a bad line);
//   2. the grouper emits a valid cover — every query in exactly one group,
//      its open set a subset of the group's, its bits agreeing with the
//      group base outside it, the merge bound respected — and the cover is
//      a pure function of the query list (every transport derives the same
//      contraction sequence from it);
//   3. exact-mode amplitude answers are BITWISE identical to standalone
//      Simulator::amplitude runs, while grouping still executes fewer
//      contractions than queries;
//   4. the sample stream is byte-reproducible (pinned regression) and
//      matches Simulator::sample_from_batch, which delegates here;
//   5. Pauli expectations agree with a dense statevector computation;
//   6. a cached covering batch answers a subset query with zero
//      contractions, counted as a superset hit;
//   7. the v6 wire payloads (open-qubit jobs, query specs, per-query
//      result records) round-trip losslessly.
#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <complex>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/simulator.hpp"
#include "dist/job.hpp"
#include "query/engine.hpp"
#include "query/eval.hpp"
#include "query/grouper.hpp"
#include "query/query.hpp"
#include "sv/statevector.hpp"
#include "test_helpers.hpp"

namespace ltns::query {
namespace {

using cd = std::complex<double>;

// --- parser ----------------------------------------------------------------

TEST(QueryParse, MixedFileCanonicalForms) {
  const std::string text =
      "# comment line\n"
      "\n"
      "amp 0101\n"
      "batch ?10?\n"
      "sample 8 99 1??0\n"
      "expect ZIIX\n"
      "expect IZZI 1001\n"
      "{\"kind\":\"sample\",\"n\":3,\"seed\":7,\"pattern\":\"00??\"}\n";
  auto p = parse_queries(text, 4);
  ASSERT_TRUE(p.ok()) << p.error;
  ASSERT_EQ(p.queries.size(), 6u);

  const Query& amp = p.queries[0];
  EXPECT_EQ(amp.kind, QueryKind::kAmplitude);
  EXPECT_EQ(amp.id, 1);
  EXPECT_EQ(amp.text, "amp 0101");
  EXPECT_EQ(amp.bits, (std::vector<int>{0, 1, 0, 1}));
  EXPECT_TRUE(amp.open_qubits.empty());

  const Query& batch = p.queries[1];
  EXPECT_EQ(batch.kind, QueryKind::kBatch);
  EXPECT_EQ(batch.text, "batch ?10?");
  EXPECT_EQ(batch.open_qubits, (std::vector<int>{0, 3}));
  EXPECT_EQ(batch.bits, (std::vector<int>{0, 1, 0, 0}));  // open positions zeroed

  const Query& smp = p.queries[2];
  EXPECT_EQ(smp.kind, QueryKind::kSample);
  EXPECT_EQ(smp.num_samples, 8);
  EXPECT_EQ(smp.seed, 99u);
  EXPECT_EQ(smp.open_qubits, (std::vector<int>{1, 2}));
  EXPECT_EQ(smp.text, "sample 8 99 1??0");

  const Query& ex = p.queries[3];
  EXPECT_EQ(ex.kind, QueryKind::kExpectation);
  EXPECT_EQ(ex.paulis, "ZIIX");
  EXPECT_EQ(ex.open_qubits, (std::vector<int>{0, 3}));

  const Query& ex2 = p.queries[4];
  EXPECT_EQ(ex2.open_qubits, (std::vector<int>{1, 2}));
  // Base bits carry the fixed qubits; support positions are forced to 0.
  EXPECT_EQ(ex2.bits, (std::vector<int>{1, 0, 0, 1}));

  // The JSON line walks the same validation path as its token twin.
  const Query& js = p.queries[5];
  EXPECT_EQ(js.kind, QueryKind::kSample);
  EXPECT_EQ(js.num_samples, 3);
  EXPECT_EQ(js.seed, 7u);
  EXPECT_EQ(js.text, "sample 3 7 00??");
}

TEST(QueryParse, RejectsMalformedFilesWithLineNumbers) {
  struct Case {
    const char* text;
    int line;
  };
  const Case cases[] = {
      {"amp 01\n", 1},                      // wrong pattern length
      {"amp 0101\namp 01x1\n", 2},          // bad bit char
      {"amp 0?01\n", 1},                    // '?' not allowed for amp
      {"frob 0101\n", 1},                   // unknown verb
      {"batch 0101\n", 1},                  // batch without '?'
      {"sample 0 7 0??1\n", 1},             // zero sample count
      {"sample 4 x 0??1\n", 1},             // bad seed
      {"amp 0101\n\nexpect IIII\n", 3},     // all-I pauli string
      {"expect ZIQI\n", 1},                 // bad pauli char
      {"{\"kind\":\"amp\"}\n", 1},          // JSON missing pattern
      {"{\"kind\":\"amp\",\"pattern\":\"0101\"\n", 1},  // unterminated JSON
      {"{\"kind\":\"amp\",\"why\":\"x\",\"pattern\":\"0101\"}\n", 1},  // unknown key
  };
  for (const auto& c : cases) {
    auto p = parse_queries(c.text, 4);
    EXPECT_FALSE(p.ok()) << c.text;
    EXPECT_EQ(p.error_line, c.line) << c.text << " -> " << p.error;
    EXPECT_TRUE(p.queries.empty()) << "rejected files must yield no queries";
  }
  // An empty file is an error too, not a silent no-op.
  EXPECT_FALSE(parse_queries("# only comments\n\n", 4).ok());
}

// --- grouper ---------------------------------------------------------------

// Structural validity of any cover: each item in exactly one group, open
// sets covered, bits agreeing with the base outside the group's open set.
void check_cover(const std::vector<PackItem>& items, const std::vector<GroupSpec>& groups,
                 int max_open) {
  std::vector<int> seen(items.size(), 0);
  for (const auto& g : groups) {
    ASSERT_FALSE(g.members.empty());
    EXPECT_TRUE(std::is_sorted(g.open_qubits.begin(), g.open_qubits.end()));
    for (int q : g.open_qubits) EXPECT_EQ(g.base_bits[size_t(q)], 0);
    for (int m : g.members) {
      ++seen[size_t(m)];
      const PackItem& it = items[size_t(m)];
      // The item's own open set is a subset of the group's...
      for (int q : it.open_qubits)
        EXPECT_TRUE(std::find(g.open_qubits.begin(), g.open_qubits.end(), q) !=
                    g.open_qubits.end());
      // ...and its fixed bits agree with the base outside the group's set.
      for (size_t q = 0; q < it.bits.size(); ++q) {
        if (std::find(g.open_qubits.begin(), g.open_qubits.end(), int(q)) !=
            g.open_qubits.end())
          continue;
        EXPECT_EQ(it.bits[q], g.base_bits[q]) << "qubit " << q;
      }
    }
    // Merged groups respect the bound; only a SINGLE oversize item may
    // exceed it (sealed group).
    if (g.members.size() > 1) {
      EXPECT_LE(int(g.open_qubits.size()), max_open);
    }
  }
  for (size_t i = 0; i < items.size(); ++i)
    EXPECT_EQ(seen[i], 1) << "item " << i << " must be in exactly one group";
}

TEST(Grouper, CoverIsValidAndDeterministic) {
  // Pseudo-random items over 12 qubits from a fixed in-test LCG.
  const int nq = 12;
  uint64_t s = 12345;
  auto next = [&] { return s = s * 6364136223846793005ull + 1442695040888963407ull; };
  std::vector<PackItem> items;
  for (int i = 0; i < 40; ++i) {
    PackItem it;
    it.bits.assign(size_t(nq), 0);
    for (int q = 0; q < nq; ++q) it.bits[size_t(q)] = int((next() >> 33) & 1);
    const int n_open = int((next() >> 33) % 4);  // 0..3 open qubits
    while (int(it.open_qubits.size()) < n_open) {
      const int q = int((next() >> 33) % uint64_t(nq));
      if (std::find(it.open_qubits.begin(), it.open_qubits.end(), q) == it.open_qubits.end())
        it.open_qubits.push_back(q);
    }
    std::sort(it.open_qubits.begin(), it.open_qubits.end());
    for (int q : it.open_qubits) it.bits[size_t(q)] = 0;
    items.push_back(std::move(it));
  }
  for (int max_open : {2, 4, 6}) {
    const auto a = pack_items(items, max_open);
    check_cover(items, a, max_open);
    const auto b = pack_items(items, max_open);  // pure function of the input
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].base_bits, b[i].base_bits);
      EXPECT_EQ(a[i].open_qubits, b[i].open_qubits);
      EXPECT_EQ(a[i].members, b[i].members);
    }
  }
}

TEST(Grouper, MergesItemsThatAgreeOutsideTheBound) {
  // 8 bitstrings over 10 qubits differing only on qubits {2, 5, 7}: one
  // shared contraction with 3 open qubits covers all of them.
  std::vector<PackItem> items;
  for (int v = 0; v < 8; ++v) {
    PackItem it;
    it.bits.assign(10, 0);
    it.bits[2] = v & 1;
    it.bits[5] = (v >> 1) & 1;
    it.bits[7] = (v >> 2) & 1;
    items.push_back(std::move(it));
  }
  const auto groups = pack_items(items, 4);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].members.size(), 8u);
  EXPECT_LE(groups[0].open_qubits.size(), 3u);
  check_cover(items, groups, 4);
}

TEST(Grouper, SealsOversizeItemInsteadOfSplitting) {
  PackItem big;
  big.bits.assign(12, 0);
  big.open_qubits = {0, 1, 2, 3, 4, 5, 6, 7};  // 8 > max_open = 4
  const auto groups = pack_items({big}, 4);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].open_qubits, big.open_qubits);  // honored, never split
}

TEST(Grouper, ExactModeDedupsAmpsGroupedModePacksThem) {
  const std::string text =
      "amp 0000\n"
      "amp 0100\n"
      "amp 0000\n"  // duplicate of query 1
      "amp 0001\n";
  auto p = parse_queries(text, 4);
  ASSERT_TRUE(p.ok());

  GrouperOptions exact;
  exact.group_amplitudes = false;
  const auto closed = group_queries(p.queries, exact);
  ASSERT_EQ(closed.size(), 3u);  // 4 queries, 3 distinct bitstrings
  for (const auto& g : closed) EXPECT_TRUE(g.open_qubits.empty());

  GrouperOptions grouped = exact;
  grouped.group_amplitudes = true;
  const auto open = group_queries(p.queries, grouped);
  // The four bitstrings agree outside qubits {1, 3}: one open group.
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(open[0].members.size(), 4u);
}

// --- evaluators ------------------------------------------------------------

TEST(Eval, RestrictAmplitudesSlicesTheRightEntries) {
  // Group open {1, 3} over 4 qubits: amplitudes[k] with k = (b1 << 1) | b3.
  const std::vector<cd> amps = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  std::vector<int> bits = {0, 0, 0, 1};  // fixes qubit 3 = 1
  const auto sub = restrict_amplitudes(amps, {1, 3}, {1}, bits);
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub[0], cd(1, 0));  // b1=0, b3=1 -> k=1
  EXPECT_EQ(sub[1], cd(3, 0));  // b1=1, b3=1 -> k=3
  // Restricting onto the full set is the identity.
  const auto all = restrict_amplitudes(amps, {1, 3}, {1, 3}, {0, 0, 0, 0});
  EXPECT_EQ(all, amps);
}

TEST(Eval, SampleStreamIsPinned) {
  // Byte-reproducibility regression: the platform-stable xoshiro256**
  // stream over a fixed-order CDF must never drift — across runs, hosts,
  // process counts, or refactors. These exact picks are the contract.
  const std::vector<cd> amps = {{0.1, 0}, {0, 0.2}, {-0.3, 0}, {0, -0.4}};
  const auto picks = sample_from_amplitudes(amps, 12, 2023);
  const std::vector<uint64_t> pinned = {3, 3, 2, 3, 2, 2, 2, 3, 2, 3, 3, 3};
  EXPECT_EQ(picks, pinned);
  // And the stream is a pure function of (amplitudes, n, seed).
  EXPECT_EQ(sample_from_amplitudes(amps, 12, 2023), picks);
  EXPECT_NE(sample_from_amplitudes(amps, 12, 2024), picks);
}

// --- engine ----------------------------------------------------------------

api::SimulatorOptions quiet_options() {
  api::SimulatorOptions opt;
  opt.plan.target_log2size = 12;
  return opt;
}

TEST(Engine, ExactAmpAnswersAreBitwiseSoloRuns) {
  const auto circ = test::small_rqc(3, 3, 4, 7);
  const std::string text =
      "amp 000000000\n"
      "amp 010000000\n"
      "amp 000000000\n"  // duplicate: must not cost a second contraction
      "batch 0?0000?00\n"
      "sample 5 11 0?00000?0\n"
      "expect ZIIIIIIIZ\n";
  auto p = parse_queries(text, circ.num_qubits);
  ASSERT_TRUE(p.ok()) << p.error;

  api::Simulator sim(circ, quiet_options());
  Engine engine(sim, EngineOptions{});
  std::vector<QueryResult> results;
  const auto st = engine.run(p.queries, [&](const QueryResult& r) { results.push_back(r); });

  ASSERT_EQ(results.size(), p.queries.size());
  for (const auto& r : results) EXPECT_TRUE(r.error.empty()) << r.error;
  // Streamed in GROUP order (groups in first-member order, members
  // ascending): the duplicate query 3 rides query 1's closed group, so it
  // answers before query 2. A pure function of the query file.
  const std::vector<int> expected_order = {1, 3, 2, 4, 5, 6};
  for (size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i].id, expected_order[i]);
  auto by_id = [&](int id) -> const QueryResult& {
    for (const auto& r : results)
      if (r.id == id) return r;
    static QueryResult none;
    return none;
  };

  // The acceptance invariant: shared contractions beat per-query runs.
  EXPECT_EQ(st.queries, 6u);
  EXPECT_EQ(st.closed_groups, 2u);  // 3 amp queries, 2 distinct bitstrings
  EXPECT_EQ(st.open_groups, 1u);    // batch+sample+expect share one cover
  EXPECT_LT(st.contractions, st.queries);
  EXPECT_EQ(st.errors, 0u);
  EXPECT_EQ(st.samples_drawn, 5u);

  // Bitwise identity: each exact-mode amp answer IS the standalone run's.
  api::Simulator solo(circ, quiet_options());
  for (int id : {1, 2, 3}) {
    const auto ar = solo.amplitude(p.queries[size_t(id - 1)].bits);
    ASSERT_TRUE(ar.completed);
    const cd got = by_id(id).amplitudes.at(0);
    EXPECT_EQ(got.real(), ar.amplitude.real());
    EXPECT_EQ(got.imag(), ar.amplitude.imag());
  }
  // The duplicate amp queries answered from ONE closed contraction agree
  // to the bit with each other.
  EXPECT_EQ(by_id(1).amplitudes[0], by_id(3).amplitudes[0]);
}

TEST(Engine, SampleQueryMatchesSimulatorHelper) {
  const auto circ = test::small_rqc(3, 3, 4, 7);
  auto p = parse_queries("sample 16 555 ?000000?0\n", circ.num_qubits);
  ASSERT_TRUE(p.ok()) << p.error;

  api::Simulator sim(circ, quiet_options());
  Engine engine(sim, EngineOptions{});
  std::vector<QueryResult> results;
  engine.run(p.queries, [&](const QueryResult& r) { results.push_back(r); });
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].error.empty()) << results[0].error;
  ASSERT_EQ(results[0].samples.size(), 16u);

  // Simulator::sample_from_batch delegates to the same evaluator; drawing
  // from the same batch with the same seed must reproduce the stream.
  api::Simulator solo(circ, quiet_options());
  const auto batch = solo.batch_amplitudes(p.queries[0].bits, p.queries[0].open_qubits);
  ASSERT_TRUE(batch.completed);
  const auto picks = api::Simulator::sample_from_batch(batch, 16, 555);
  ASSERT_EQ(picks.size(), 16u);
  for (size_t i = 0; i < picks.size(); ++i) {
    std::string full(size_t(circ.num_qubits), '0');
    for (size_t j = 0; j < p.queries[0].open_qubits.size(); ++j) {
      const uint64_t bit = (picks[i] >> (p.queries[0].open_qubits.size() - 1 - j)) & 1;
      full[size_t(p.queries[0].open_qubits[j])] = bit != 0 ? '1' : '0';
    }
    EXPECT_EQ(results[0].samples[i], full) << "sample " << i;
  }
  // Determinism across engine runs: the stream is part of the contract.
  std::vector<QueryResult> again;
  Engine(sim, EngineOptions{}).run(p.queries, [&](const QueryResult& r) { again.push_back(r); });
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].samples, results[0].samples);
}

TEST(Engine, ExpectationMatchesDenseStatevector) {
  const auto circ = test::small_rqc(3, 3, 4, 7);
  const std::string paulis = "ZIXIIIIIY";  // support {0, 2, 8}
  auto p = parse_queries("expect " + paulis + " 010000000\n", circ.num_qubits);
  ASSERT_TRUE(p.ok()) << p.error;

  api::Simulator sim(circ, quiet_options());
  Engine engine(sim, EngineOptions{});
  std::vector<QueryResult> results;
  engine.run(p.queries, [&](const QueryResult& r) { results.push_back(r); });
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].error.empty()) << results[0].error;

  // Dense reference: conditional state v over the support (support[0] the
  // most significant bit), <P> = v' (Z (x) X (x) Y) v / v'v, built from
  // explicit 2x2 matrices — fully independent of eval.cpp's sparse apply.
  sv::Statevector sv(circ.num_qubits);
  sv.run(circ);
  const auto& support = p.queries[0].open_qubits;
  const size_t dim = size_t(1) << support.size();
  std::vector<cd> v(dim);
  for (size_t k = 0; k < dim; ++k) {
    auto bits = p.queries[0].bits;
    for (size_t i = 0; i < support.size(); ++i)
      bits[size_t(support[i])] = int((k >> (support.size() - 1 - i)) & 1);
    v[k] = sv.amplitude_bits(bits);
  }
  const cd I(0, 1);
  const cd Z[2][2] = {{1, 0}, {0, -1}};
  const cd X[2][2] = {{0, 1}, {1, 0}};
  const cd Y[2][2] = {{0, -I}, {I, 0}};
  auto factor = [&](size_t i) { return i == 0 ? Z : (i == 1 ? X : Y); };
  cd numer(0, 0);
  double denom = 0;
  for (size_t r = 0; r < dim; ++r) {
    denom += std::norm(v[r]);
    for (size_t c = 0; c < dim; ++c) {
      cd elem(1, 0);
      for (size_t i = 0; i < support.size(); ++i) {
        const size_t rb = (r >> (support.size() - 1 - i)) & 1;
        const size_t cb = (c >> (support.size() - 1 - i)) & 1;
        elem *= factor(i)[rb][cb];
      }
      numer += std::conj(v[r]) * elem * v[c];
    }
  }
  ASSERT_GT(denom, 0.0);
  // The engine's amplitudes come from a float contraction; the reference
  // is double statevector — agreement to ~1e-4 is the honest bound.
  EXPECT_NEAR(results[0].expectation, numer.real() / denom, 1e-4);
}

TEST(Engine, BatchWiderThanTheSliceTargetStaysCorrect) {
  // Regression: a batch whose open output (2^4 entries) exceeds the slice
  // target (2^2) must still plan and contract correctly. The slicers used
  // to pick open edges, and the runners' additive merge then scrambled the
  // output; make_plan now clamps the bound to the open width and keeps
  // open edges out of every candidate pool.
  const auto circ = test::small_rqc(3, 3, 4, 7);
  auto p = parse_queries("batch ??0000??0\n", circ.num_qubits);  // open {0,1,6,7}
  ASSERT_TRUE(p.ok()) << p.error;

  api::SimulatorOptions opt;
  opt.plan.target_log2size = 2;  // far below the 4-qubit open output
  api::Simulator sim(circ, opt);
  Engine engine(sim, EngineOptions{});
  std::vector<QueryResult> results;
  const auto st = engine.run(p.queries, [&](const QueryResult& r) { results.push_back(r); });
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].error.empty()) << results[0].error;
  EXPECT_EQ(st.contractions, 1u);

  sv::Statevector sv(circ.num_qubits);
  sv.run(circ);
  const auto& open = p.queries[0].open_qubits;
  ASSERT_EQ(results[0].amplitudes.size(), size_t(1) << open.size());
  for (size_t k = 0; k < results[0].amplitudes.size(); ++k) {
    auto bits = p.queries[0].bits;
    for (size_t i = 0; i < open.size(); ++i)
      bits[size_t(open[i])] = int((k >> (open.size() - 1 - i)) & 1);
    const cd want = sv.amplitude_bits(bits);
    EXPECT_NEAR(results[0].amplitudes[k].real(), want.real(), 1e-4) << "entry " << k;
    EXPECT_NEAR(results[0].amplitudes[k].imag(), want.imag(), 1e-4) << "entry " << k;
  }
}

// Throwaway cache directory (plan/ result/ batch/ one level down).
struct ScopedCacheDir {
  std::string path;
  ScopedCacheDir() {
    char tmpl[] = "/tmp/ltns_query_XXXXXX";
    char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path = p != nullptr ? p : "/tmp/ltns_query_fallback";
  }
  ~ScopedCacheDir() {
    for (const char* sub : {"plan", "result", "batch", ""}) {
      const std::string d = sub[0] != '\0' ? path + "/" + sub : path;
      if (DIR* dp = ::opendir(d.c_str())) {
        while (dirent* e = ::readdir(dp)) {
          const std::string name = e->d_name;
          if (name != "." && name != "..") ::unlink((d + "/" + name).c_str());
        }
        ::closedir(dp);
        ::rmdir(d.c_str());
      }
    }
  }
};

TEST(Engine, CoveringBatchAnswersSubsetWithZeroContractions) {
  const auto circ = test::small_rqc(3, 3, 4, 7);
  ScopedCacheDir dir;
  auto opt = quiet_options();
  opt.cache.cache_dir = dir.path;
  api::Simulator sim(circ, opt);

  // Cold run caches (and indexes) the {1, 6} batch. The covering-batch
  // index lives for the cache's lifetime — the deployment shape is the job
  // server's long-lived cache, where later submits probe earlier batches.
  auto p1 = parse_queries("batch 0?0000?00\n", circ.num_qubits);
  ASSERT_TRUE(p1.ok());
  std::vector<QueryResult> cold;
  {
    const auto st = Engine(sim, EngineOptions{})
                        .run(p1.queries, [&](const QueryResult& r) { cold.push_back(r); });
    EXPECT_EQ(st.contractions, 1u);
    EXPECT_EQ(st.superset_hits, 0u);
  }

  // The {1} slice of the same base: the cached covering batch answers it
  // without any contraction.
  auto p2 = parse_queries("batch 0?0000000\n", circ.num_qubits);
  ASSERT_TRUE(p2.ok());
  std::vector<QueryResult> warm;
  const auto st = Engine(sim, EngineOptions{})
                      .run(p2.queries, [&](const QueryResult& r) { warm.push_back(r); });
  EXPECT_EQ(st.contractions, 0u);
  EXPECT_EQ(st.superset_hits, 1u);
  EXPECT_EQ(sim.cache_stats().superset_hits, 1u);

  // The sliced answers are the covering batch's entries, to the bit.
  ASSERT_EQ(cold.size(), 1u);
  ASSERT_EQ(warm.size(), 1u);
  ASSERT_EQ(warm[0].amplitudes.size(), 2u);
  EXPECT_EQ(warm[0].amplitudes[0], cold[0].amplitudes[0]);  // b1=0 -> b6=0 slice
  EXPECT_EQ(warm[0].amplitudes[1], cold[0].amplitudes[2]);  // b1=1 -> b6=0 slice
}

// --- v6 wire round-trips ---------------------------------------------------

TEST(Wire, QueryResultAndRecordRoundTrip) {
  QueryResult q;
  q.kind = QueryKind::kSample;
  q.id = 3;
  q.text = "sample 2 9 0??0";
  q.error = "";
  q.amplitudes = {{0.5, -0.25}, {-1.0, 2.0}};
  q.samples = {"0110", "0100"};
  q.expectation = -0.75;

  dist::ByteWriter w;
  dist::put_query_result(w, q);
  dist::ByteReader r(w.buffer());
  const auto back = dist::get_query_result(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back.kind, q.kind);
  EXPECT_EQ(back.id, q.id);
  EXPECT_EQ(back.text, q.text);
  EXPECT_EQ(back.amplitudes, q.amplitudes);
  EXPECT_EQ(back.samples, q.samples);
  EXPECT_EQ(back.expectation, q.expectation);

  dist::JobResultRecord rec;
  rec.job_id = 42;
  rec.state = dist::JobState::kDone;
  rec.name = "qjob";
  rec.kind = "query";
  rec.query_results = {q, q};
  dist::ByteWriter w2;
  dist::put_result_record(w2, rec);
  dist::ByteReader r2(w2.buffer());
  const auto rb = dist::get_result_record(r2);
  EXPECT_TRUE(r2.exhausted());
  EXPECT_EQ(rb.kind, "query");
  ASSERT_EQ(rb.query_results.size(), 2u);
  EXPECT_EQ(rb.query_results[1].samples, q.samples);
}

TEST(Wire, JobOpenQubitsAndQuerySpecRoundTrip) {
  dist::Job j;
  j.job_id = 7;
  j.circuit_text = "ltnsqc v1\n";
  j.bits = "0000";
  j.open_qubits = {1, 3};
  dist::ByteWriter w;
  dist::put_job(w, j);
  dist::ByteReader r(w.buffer());
  const auto jb = dist::get_job(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(jb.open_qubits, j.open_qubits);
  EXPECT_EQ(jb.bits, j.bits);

  dist::JobSpec s;
  s.name = "q";
  s.kind = "query";
  s.query_text = "amp 0000\nbatch ?00?\n";
  s.max_open = 5;
  s.amp_mode = "grouped";
  dist::ByteWriter w2;
  dist::put_job_spec(w2, s);
  dist::ByteReader r2(w2.buffer());
  const auto sb = dist::get_job_spec(r2);
  EXPECT_TRUE(r2.exhausted());
  EXPECT_EQ(sb.kind, "query");
  EXPECT_EQ(sb.query_text, s.query_text);
  EXPECT_EQ(sb.max_open, 5);
  EXPECT_EQ(sb.amp_mode, "grouped");
}

}  // namespace
}  // namespace ltns::query
