#include <gtest/gtest.h>

#include "core/lifetime.hpp"
#include "test_helpers.hpp"
#include "tn/stem.hpp"

namespace ltns {
namespace {

using core::StemLifetimes;
using tn::ContractionTree;

TEST(Stem, StructureIsAChainToRoot) {
  auto ln = test::small_network(4, 4, 8);
  auto tree = test::greedy_tree(ln.net);
  auto stem = tn::extract_stem(tree);
  ASSERT_GE(stem.length(), 2);
  EXPECT_EQ(stem.nodes.back(), tree.root());
  EXPECT_EQ(stem.branches.size() + 1, stem.nodes.size());
  for (int i = 0; i + 1 < stem.length(); ++i) {
    const auto& parent = tree.node(stem.nodes[size_t(i) + 1]);
    // nodes[i] and branches[i] are exactly the children of nodes[i+1].
    EXPECT_TRUE((parent.left == stem.nodes[size_t(i)] && parent.right == stem.branches[size_t(i)]) ||
                (parent.right == stem.nodes[size_t(i)] && parent.left == stem.branches[size_t(i)]));
  }
}

TEST(Stem, BottomIsALeaf) {
  auto ln = test::small_network(4, 4, 8);
  auto tree = test::greedy_tree(ln.net);
  auto stem = tn::extract_stem(tree);
  EXPECT_TRUE(tree.node(stem.nodes[0]).is_leaf());
}

TEST(Stem, CapturesDominantCost) {
  // On RQC networks the stem holds the overwhelming majority of the flops
  // (the paper quotes ~99%).
  auto ln = test::small_network(4, 5, 10);
  auto tree = test::greedy_tree(ln.net);
  auto stem = tn::extract_stem(tree);
  EXPECT_GT(stem.cost_fraction(), 0.5);
}

TEST(Stem, SubtreeCostsAccumulate) {
  auto ln = test::small_network(3, 3, 6);
  auto tree = test::greedy_tree(ln.net);
  auto sub = tn::subtree_log2costs(tree);
  EXPECT_NEAR(sub[size_t(tree.root())], tree.total_log2cost(), 1e-9);
  for (int i = 0; i < tree.num_nodes(); ++i) {
    const auto& n = tree.node(i);
    if (n.is_leaf()) {
      EXPECT_EQ(sub[size_t(i)], kLog2Zero);
    } else {
      EXPECT_GE(sub[size_t(i)] + 1e-12, n.log2cost);
    }
  }
}

TEST(StemLifetimes, IntervalsMatchMembership) {
  auto ln = test::small_network(4, 4, 8);
  auto tree = test::greedy_tree(ln.net);
  auto stem = tn::extract_stem(tree);
  auto lt = StemLifetimes::build(stem);
  for (int e = 0; e < ln.net.num_edges(); ++e) {
    const auto& iv = lt.of(e);
    for (int p = 0; p < stem.length(); ++p) {
      bool member = tree.node(stem.nodes[size_t(p)]).ixs.contains(e);
      EXPECT_EQ(member, iv.contains(p)) << "edge " << e << " pos " << p;
    }
  }
}

TEST(StemLifetimes, LifetimesAreContiguous) {
  // Contiguity is asserted inside build(); run it over several seeds.
  for (uint64_t seed : {1u, 3u, 9u, 27u}) {
    auto net = tn::random_network(40, 3.0, seed);
    auto tree = test::greedy_tree(net, seed);
    auto stem = tn::extract_stem(tree);
    auto lt = StemLifetimes::build(stem);
    // Edge at position p of the stem must be alive there.
    for (int p = 0; p < stem.length(); ++p)
      for (int e : lt.edges_at(p))
        EXPECT_TRUE(tree.node(stem.nodes[size_t(p)]).ixs.contains(e));
  }
}

TEST(TreeLifetimes, MatchesDefinitionOne) {
  // Definition 1: lifetime(k) = { T in tree : k in s_T }.
  auto ln = test::small_network(3, 3, 4);
  auto tree = test::greedy_tree(ln.net);
  auto lt = core::tree_lifetimes(tree);
  for (int e = 0; e < ln.net.num_edges(); ++e) {
    std::vector<int> expect;
    for (int i = 0; i < tree.num_nodes(); ++i)
      if (tree.node(i).ixs.contains(e)) expect.push_back(i);
    EXPECT_EQ(lt[size_t(e)], expect);
  }
}

TEST(TreeLifetimes, SlicedEdgeHalvesExactlyItsLifetime) {
  // "After slicing an edge e, the size of tensors on the lifetime of e will
  // be halved while the size of the others will not change."
  auto ln = test::small_network(3, 3, 6);
  auto tree = test::greedy_tree(ln.net);
  auto lt = core::tree_lifetimes(tree);
  // Pick a stem edge with a non-trivial lifetime.
  int edge = -1;
  for (int e = 0; e < ln.net.num_edges(); ++e)
    if (lt[size_t(e)].size() >= 3) {
      edge = e;
      break;
    }
  ASSERT_GE(edge, 0);
  core::SliceSet S(ln.net);
  S.add(edge);
  for (int i = 0; i < tree.num_nodes(); ++i) {
    double before = tree.node(i).log2size;
    double after = core::sliced_node_log2size(tree, i, S.edges());
    bool in_lifetime =
        std::find(lt[size_t(edge)].begin(), lt[size_t(edge)].end(), i) != lt[size_t(edge)].end();
    EXPECT_NEAR(after, in_lifetime ? before - 1.0 : before, 1e-12);
  }
}

TEST(LifetimeInterval, BasicOps) {
  core::LifetimeInterval iv{2, 5};
  EXPECT_TRUE(iv.alive());
  EXPECT_EQ(iv.length(), 4);
  EXPECT_TRUE(iv.contains(2));
  EXPECT_TRUE(iv.contains(5));
  EXPECT_FALSE(iv.contains(6));
  EXPECT_TRUE(iv.contains(core::LifetimeInterval{3, 4}));
  EXPECT_FALSE(iv.contains(core::LifetimeInterval{1, 4}));
  core::LifetimeInterval dead;
  EXPECT_FALSE(dead.alive());
  EXPECT_EQ(dead.length(), 0);
}

}  // namespace
}  // namespace ltns
