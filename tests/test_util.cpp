// RNG, thread pool and timer tests.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace ltns {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(6);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NormalHasReasonableMoments) {
  Rng rng(8);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.next_normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for_each(1000, [&](size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunksPartitionRange) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> chunks;
  pool.parallel_for(100, [&](int, size_t b, size_t e) {
    std::lock_guard<std::mutex> lk(mu);
    chunks.emplace_back(b, e);
  });
  std::sort(chunks.begin(), chunks.end());
  size_t expect = 0;
  for (auto [b, e] : chunks) {
    EXPECT_EQ(b, expect);
    EXPECT_GT(e, b);
    expect = e;
  }
  EXPECT_EQ(expect, 100u);
}

TEST(ThreadPool, WorkerIdsWithinBounds) {
  ThreadPool pool(5);
  std::atomic<bool> ok{true};
  pool.parallel_for(64, [&](int w, size_t, size_t) {
    if (w < 0 || w >= pool.size()) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](int, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<long> sum{0};
    pool.parallel_for_each(100, [&](size_t i) { sum += long(i); });
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(ThreadPool, SingleWorkerStillWorks) {
  ThreadPool pool(1);
  std::vector<int> hits(10, 0);
  pool.parallel_for_each(10, [&](size_t i) { hits[i]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST(Timer, MeasuresNonNegativeTime) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 10000; ++i) x += i;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.millis(), 0.0);
}

TEST(Stopwatch, AccumulatesAcrossStartStop) {
  Stopwatch w;
  w.start();
  w.stop();
  double t1 = w.total_seconds();
  w.start();
  w.stop();
  EXPECT_GE(w.total_seconds(), t1);
  w.clear();
  EXPECT_EQ(w.total_seconds(), 0.0);
}

}  // namespace
}  // namespace ltns
