#include "exec/permute.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "util/rng.hpp"

namespace ltns::exec {
namespace {

// Checks out[new order] == in element-by-element via at().
void expect_permutation_correct(const Tensor& in, const Tensor& out) {
  ASSERT_EQ(in.rank(), out.rank());
  const int r = in.rank();
  std::vector<int> bits(size_t(r), 0);
  for (size_t lin = 0; lin < in.size(); ++lin) {
    std::vector<int> in_bits(size_t(r), 0);
    for (int d = 0; d < r; ++d) in_bits[size_t(d)] = int((lin >> (r - 1 - d)) & 1);
    std::vector<int> out_bits(size_t(r), 0);
    for (int d = 0; d < r; ++d) {
      int edge = out.ixs()[size_t(d)];
      int src_axis = in.axis_of(edge);
      out_bits[size_t(d)] = in_bits[size_t(src_axis)];
    }
    EXPECT_EQ(out.at(out_bits), in.data()[lin]);
  }
  (void)bits;
}

TEST(PermutationBetween, ComputesCorrectMapping) {
  auto perm = permutation_between({4, 5, 6}, {6, 4, 5});
  EXPECT_EQ(perm, (std::vector<int>{2, 0, 1}));
}

TEST(PermuteNaive, SwapTwoAxes) {
  auto t = random_tensor({1, 2}, 3);
  auto p = permute_naive(t, {2, 1});
  expect_permutation_correct(t, p);
}

TEST(PermuteNaive, Rank3AllOrders) {
  auto t = random_tensor({7, 8, 9}, 4);
  std::vector<int> order{7, 8, 9};
  std::sort(order.begin(), order.end());
  do {
    auto p = permute_naive(t, order);
    expect_permutation_correct(t, p);
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(Permute, IdentityIsCopy) {
  auto t = random_tensor({1, 2, 3}, 5);
  PermuteStats st;
  auto p = permute(t, {1, 2, 3}, &st);
  EXPECT_EQ(max_abs_diff(t, p), 0.0);
  EXPECT_EQ(st.map_entries, 0u);
}

TEST(Permute, MatchesNaive) {
  Rng rng(21);
  for (int trial = 0; trial < 30; ++trial) {
    int r = 1 + int(rng.next_below(9));
    std::vector<int> ixs(size_t(r), 0);
    std::iota(ixs.begin(), ixs.end(), 100);
    auto t = random_tensor(ixs, uint64_t(trial));
    auto order = ixs;
    for (size_t i = order.size(); i > 1; --i) std::swap(order[i - 1], order[rng.next_below(i)]);
    auto fast = permute(t, order);
    auto slow = permute_naive(t, order);
    EXPECT_EQ(max_abs_diff(fast, slow), 0.0) << "rank " << r << " trial " << trial;
  }
}

TEST(PermuteMap, ReductionShrinksMapWhenSuffixFixed) {
  // Permute only the first two of six axes: the map should cover 2^2
  // entries, blocks of 2^4 elements (the §5.3.1 reduction).
  std::vector<int> perm{1, 0, 2, 3, 4, 5};
  PermuteMap map(perm, 6);
  EXPECT_EQ(map.block_axes(), 4);
  EXPECT_EQ(map.map_entries(), 4u);
  EXPECT_EQ(map.block_elems(), 16u);
}

TEST(PermuteMap, FullPermutationUsesFullMap) {
  std::vector<int> perm{5, 4, 3, 2, 1, 0};
  PermuteMap map(perm, 6);
  EXPECT_EQ(map.block_axes(), 0);
  EXPECT_EQ(map.map_entries(), 64u);
}

TEST(PermuteMap, ApplyMatchesNaiveWithBlocks) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    int r = 3 + int(rng.next_below(8));
    int keep_tail = 1 + int(rng.next_below(uint64_t(r - 1)));
    std::vector<int> ixs(size_t(r), 0);
    std::iota(ixs.begin(), ixs.end(), 0);
    auto t = random_tensor(ixs, uint64_t(trial) + 100);
    // Shuffle only the leading axes, keep the tail in place.
    std::vector<int> order = ixs;
    for (size_t i = size_t(r - keep_tail); i > 1; --i)
      std::swap(order[i - 1], order[rng.next_below(i)]);
    PermuteStats st;
    auto fast = permute(t, order, &st);
    auto slow = permute_naive(t, order);
    EXPECT_EQ(max_abs_diff(fast, slow), 0.0);
    if (order != ixs) EXPECT_GE(st.block_elems, size_t(1) << keep_tail);
  }
}

TEST(PermuteStats, ReportsElementCount) {
  auto t = random_tensor({0, 1, 2, 3}, 9);
  PermuteStats st;
  permute(t, {3, 2, 1, 0}, &st);
  EXPECT_EQ(st.elements, 16u);
}

TEST(Permute, DoublePermuteIsIdentity) {
  auto t = random_tensor({10, 20, 30, 40, 50}, 12);
  auto p = permute(t, {50, 30, 10, 40, 20});
  auto back = permute(p, {10, 20, 30, 40, 50});
  EXPECT_EQ(max_abs_diff(t, back), 0.0);
}

}  // namespace
}  // namespace ltns::exec
