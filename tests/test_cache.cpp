// Content-addressed plan & result cache tests. The load-bearing invariants:
//   1. keys are pure functions of the job INPUTS: equal inputs agree, any
//      input change (circuit text, bits, open qubits, plan knob, execution
//      knob for result keys) changes the key;
//   2. the tiered store is a real LRU (recency order decides eviction), a
//      disk entry survives "restart" (a fresh store) and is promoted on
//      hit, and a corrupt or truncated entry is DROPPED and recomputed —
//      never trusted, never fatal;
//   3. a plan-cache hit rebuilds the exact stored plan over a freshly
//      lowered network without running src/path/ at all;
//   4. a warm api::Simulator run is bitwise identical to the cold run that
//      populated the cache — through the result tier, and through the plan
//      tier alone (result cache off, different executor);
//   5. read-only mode consults but never writes the on-disk store;
//   6. a duplicate service submission short-circuits to a COMPLETED job
//      with the cached amplitude, without re-executing anything.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <complex>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/simulator.hpp"
#include "cache/cache.hpp"
#include "circuit/io.hpp"
#include "core/planner.hpp"
#include "dist/client.hpp"
#include "dist/server.hpp"
#include "dist/service.hpp"
#include "path/optimizer.hpp"
#include "test_helpers.hpp"

namespace ltns::cache {
namespace {

// Throwaway cache directory. The store nests plan/ result/ batch/ one
// level down, so cleanup walks the known layout (no recursion needed).
struct ScopedCacheDir {
  std::string path;
  ScopedCacheDir() {
    char tmpl[] = "/tmp/ltns_cache_XXXXXX";
    char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path = p != nullptr ? p : "/tmp/ltns_cache_fallback";
  }
  ~ScopedCacheDir() { wipe(); }
  void wipe() {
    for (const char* sub : {"plan", "result", "batch", "store", ""}) {
      const std::string d = sub[0] != '\0' ? path + "/" + sub : path;
      if (DIR* dp = ::opendir(d.c_str())) {
        while (dirent* e = ::readdir(dp)) {
          if (e->d_name[0] == '.') continue;
          ::unlink((d + "/" + e->d_name).c_str());
        }
        ::closedir(dp);
      }
      if (sub[0] != '\0') ::rmdir(d.c_str());
    }
    ::rmdir(path.c_str());
  }
};

bool file_exists(const std::string& p) {
  struct stat st{};
  return ::stat(p.c_str(), &st) == 0;
}

// --- keys -----------------------------------------------------------------

TEST(CacheKeys, DeterministicAndSensitiveToEveryInput) {
  core::PlanOptions po;
  const std::string k = plan_key("circ-v1", "0101", "", po);
  EXPECT_EQ(k.size(), 16u);  // FNV-1a 64 as hex
  EXPECT_EQ(k, plan_key("circ-v1", "0101", "", po));

  EXPECT_NE(k, plan_key("circ-v2", "0101", "", po));
  EXPECT_NE(k, plan_key("circ-v1", "0111", "", po));
  EXPECT_NE(k, plan_key("circ-v1", "0101", "2,5", po));
  core::PlanOptions target = po;
  target.target_log2size = po.target_log2size + 1;
  EXPECT_NE(k, plan_key("circ-v1", "0101", "", target));
  core::PlanOptions seed = po;
  seed.seed = po.seed + 1;
  EXPECT_NE(k, plan_key("circ-v1", "0101", "", seed));
}

TEST(CacheKeys, ResultKeyExtendsPlanKeyWithExecutionKnobs) {
  core::PlanOptions po;
  const std::string r = result_key("circ", "01", "", po, /*fused=*/true, /*ldm=*/32768);
  EXPECT_EQ(r, result_key("circ", "01", "", po, true, 32768));
  // Execution knobs that change WHICH numbers are computed change the key;
  // the plan key must ignore them (one plan serves both stem modes).
  EXPECT_NE(r, result_key("circ", "01", "", po, false, 32768));
  EXPECT_NE(r, result_key("circ", "01", "", po, true, 16384));
  EXPECT_NE(r, plan_key("circ", "01", "", po));
}

// --- TieredStore ----------------------------------------------------------

std::vector<uint8_t> payload_of(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(TieredStore, LruEvictsLeastRecentlyUsed) {
  CacheOptions opt;  // memory-only
  TieredStore store(opt, /*kind=*/7, "store", /*max_entries=*/2);
  store.put("a", payload_of("A"));
  store.put("b", payload_of("B"));

  // Touch "a" so "b" becomes the eviction victim.
  std::vector<uint8_t> got;
  ASSERT_TRUE(store.get("a", &got));
  store.put("c", payload_of("C"));

  EXPECT_TRUE(store.get("a", &got));
  EXPECT_EQ(got, payload_of("A"));
  EXPECT_TRUE(store.get("c", &got));
  EXPECT_FALSE(store.get("b", &got)) << "LRU must evict the least recent key";

  const auto st = store.stats();
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.insertions, 3u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.memory_entries, 2u);
  EXPECT_GT(st.memory_bytes, 0u);
}

TEST(TieredStore, DiskTierSurvivesRestartAndPromotes) {
  ScopedCacheDir dir;
  CacheOptions opt;
  opt.cache_dir = dir.path;
  {
    TieredStore store(opt, 7, "store", 4);
    store.put("key1", payload_of("hello"));
    EXPECT_GT(store.stats().disk_bytes_written, 0u);
  }
  // "Restart": a fresh store with an empty LRU over the same directory.
  TieredStore warm(opt, 7, "store", 4);
  std::vector<uint8_t> got;
  ASSERT_TRUE(warm.get("key1", &got));
  EXPECT_EQ(got, payload_of("hello"));
  auto st = warm.stats();
  EXPECT_EQ(st.disk_hits, 1u);
  EXPECT_EQ(st.memory_hits, 0u);
  // The disk hit was promoted into the LRU: the second get is a memory hit.
  ASSERT_TRUE(warm.get("key1", &got));
  EXPECT_EQ(warm.stats().memory_hits, 1u);
}

TEST(TieredStore, CorruptAndTruncatedEntriesAreDroppedNotTrusted) {
  ScopedCacheDir dir;
  CacheOptions opt;
  opt.cache_dir = dir.path;
  const std::string f = dir.path + "/store/key1.bin";
  {
    TieredStore store(opt, 7, "store", 4);
    store.put("key1", payload_of("precious bytes"));
    ASSERT_TRUE(file_exists(f));
  }
  // Flip one payload byte: the CRC must catch it.
  {
    std::fstream s(f, std::ios::in | std::ios::out | std::ios::binary);
    s.seekp(-3, std::ios::end);
    s.put(char(0x5a));
  }
  {
    TieredStore store(opt, 7, "store", 4);
    std::vector<uint8_t> got;
    EXPECT_FALSE(store.get("key1", &got));
    EXPECT_EQ(store.stats().corrupt_dropped, 1u);
    EXPECT_FALSE(file_exists(f)) << "corrupt entry must be unlinked";
    // Recompute-and-reinsert heals the slot.
    store.put("key1", payload_of("recomputed"));
  }
  // Truncate mid-header: same contract.
  {
    std::ofstream s(f, std::ios::binary | std::ios::trunc);
    s.write("LTNC", 4);
  }
  TieredStore store(opt, 7, "store", 4);
  std::vector<uint8_t> got;
  EXPECT_FALSE(store.get("key1", &got));
  EXPECT_EQ(store.stats().corrupt_dropped, 1u);
  EXPECT_FALSE(file_exists(f));
}

TEST(TieredStore, WrongKindIsRejectedEvenWithMatchingKey) {
  ScopedCacheDir dir;
  CacheOptions opt;
  opt.cache_dir = dir.path;
  {
    TieredStore plans(opt, /*kind=*/1, "store", 4);
    plans.put("key1", payload_of("a plan"));
  }
  // A store of another kind over the same directory must refuse the entry
  // (a plan must never deserialize as a result).
  TieredStore results(opt, /*kind=*/2, "store", 4);
  std::vector<uint8_t> got;
  EXPECT_FALSE(results.get("key1", &got));
  EXPECT_EQ(results.stats().corrupt_dropped, 1u);
}

TEST(TieredStore, ReadOnlyConsultsButNeverWrites) {
  ScopedCacheDir dir;
  CacheOptions writer_opt;
  writer_opt.cache_dir = dir.path;
  {
    TieredStore store(writer_opt, 7, "store", 4);
    store.put("warm", payload_of("from the writable run"));
  }
  CacheOptions ro = writer_opt;
  ro.read_only = true;
  TieredStore store(ro, 7, "store", 4);
  std::vector<uint8_t> got;
  ASSERT_TRUE(store.get("warm", &got)) << "read-only must still consult disk";
  store.put("new-key", payload_of("volatile"));
  EXPECT_FALSE(file_exists(dir.path + "/store/new-key.bin"))
      << "read-only must never write the on-disk store";
  // The process-private LRU still fills.
  EXPECT_TRUE(store.get("new-key", &got));
  EXPECT_EQ(store.stats().disk_bytes_written, 0u);
}

// --- PlanCache ------------------------------------------------------------

TEST(PlanCache, HitRebuildsStoredPlanWithoutRunningThePathOptimizer) {
  ScopedCacheDir dir;
  CacheOptions opt;
  opt.cache_dir = dir.path;

  auto ln = test::small_network(3, 3, 6);
  core::PlanOptions po;
  po.target_log2size = 6;
  const auto plan = core::make_plan(ln.net, po);
  const auto key = plan_key("some-circuit-text", "000000000", "", po);
  {
    PlanCache pc(opt);
    pc.insert(key, plan);
  }

  // "Restart", fresh identical lowering — the hit must not invoke
  // src/path/ (the whole point of the cache) and must reproduce the plan.
  PlanCache warm(opt);
  auto ln2 = test::small_network(3, 3, 6);
  core::Plan out;
  const uint64_t invocations_before = path::find_path_invocations();
  ASSERT_TRUE(warm.lookup(key, ln2.net, &out));
  EXPECT_EQ(path::find_path_invocations(), invocations_before)
      << "a plan-cache hit must not run the path optimizer";

  EXPECT_EQ(out.path.leaf_vertices, plan.path.leaf_vertices);
  EXPECT_EQ(out.path.steps, plan.path.steps);
  EXPECT_EQ(out.path_method, plan.path_method);
  EXPECT_EQ(out.slices.to_vector(), plan.slices.to_vector());
  EXPECT_EQ(out.num_slices(), plan.num_slices());
  EXPECT_EQ(out.metrics.log2_total_cost, plan.metrics.log2_total_cost);
  EXPECT_EQ(out.metrics.max_log2size, plan.metrics.max_log2size);
  ASSERT_NE(out.tree, nullptr);
  EXPECT_EQ(out.tree->total_log2cost(), plan.tree->total_log2cost());
  EXPECT_EQ(out.stem.length(), plan.stem.length());

  EXPECT_FALSE(warm.lookup(plan_key("other-circuit", "000000000", "", po), ln2.net, &out));
}

// --- warm vs cold through the public API ----------------------------------

TEST(SimulatorCache, WarmRunIsBitwiseIdenticalAndSkipsPlanning) {
  ScopedCacheDir dir;
  auto c = test::small_rqc(3, 3, 6, 9);
  api::SimulatorOptions opt;
  opt.plan.target_log2size = 6;
  opt.cache.cache_dir = dir.path;
  std::vector<int> bits = test::zero_bits(c.num_qubits);
  bits[0] = 1;

  std::complex<double> cold;
  {
    api::Simulator sim(c, opt);
    auto res = sim.amplitude(bits);
    ASSERT_TRUE(res.completed) << res.telemetry.error;
    cold = res.amplitude;
    const auto st = sim.cache_stats();
    EXPECT_EQ(st.plan.misses, 1u);
    EXPECT_GE(st.plan.insertions, 1u);
    EXPECT_GE(st.result.insertions, 1u);
  }

  // Full warm run ("new process"): served from the result tier, planner
  // and contraction both skipped, bytes identical.
  {
    api::Simulator sim(c, opt);
    const uint64_t invocations_before = path::find_path_invocations();
    auto res = sim.amplitude(bits);
    ASSERT_TRUE(res.completed) << res.telemetry.error;
    EXPECT_EQ(path::find_path_invocations(), invocations_before);
    EXPECT_EQ(std::memcmp(&res.amplitude, &cold, sizeof(cold)), 0)
        << "warm amplitude must be bitwise identical to the cold run";
    EXPECT_EQ(sim.cache_stats().result.disk_hits, 1u);
  }

  // Plan tier alone (result cache off), different executor: the plan hit
  // skips src/path/, the re-executed contraction still matches bitwise —
  // the determinism contract the cache leans on.
  {
    api::SimulatorOptions plan_only = opt;
    plan_only.cache.result_cache_entries = 0;
    plan_only.executor = exec::SliceExecutor::kStaticPool;
    api::Simulator sim(c, plan_only);
    const uint64_t invocations_before = path::find_path_invocations();
    auto res = sim.amplitude(bits);
    ASSERT_TRUE(res.completed) << res.telemetry.error;
    EXPECT_EQ(path::find_path_invocations(), invocations_before)
        << "plan-cache hit must skip the path optimizer entirely";
    EXPECT_EQ(std::memcmp(&res.amplitude, &cold, sizeof(cold)), 0);
    const auto st = sim.cache_stats();
    EXPECT_EQ(st.plan.disk_hits, 1u);
    EXPECT_EQ(st.result.hits(), 0u);
  }
}

TEST(SimulatorCache, BatchWarmRunIsBitwiseIdentical) {
  ScopedCacheDir dir;
  auto c = test::small_rqc(3, 3, 6, 11);
  api::SimulatorOptions opt;
  opt.plan.target_log2size = 6;
  opt.cache.cache_dir = dir.path;
  std::vector<int> bits = test::zero_bits(c.num_qubits);
  std::vector<int> open = {0, 4};

  std::vector<std::complex<double>> cold;
  {
    api::Simulator sim(c, opt);
    auto res = sim.batch_amplitudes(bits, open);
    ASSERT_TRUE(res.completed) << res.telemetry.error;
    cold = res.amplitudes;
  }
  api::Simulator sim(c, opt);
  auto res = sim.batch_amplitudes(bits, open);
  ASSERT_TRUE(res.completed) << res.telemetry.error;
  ASSERT_EQ(res.amplitudes.size(), cold.size());
  EXPECT_EQ(std::memcmp(res.amplitudes.data(), cold.data(),
                        cold.size() * sizeof(std::complex<double>)),
            0);
  EXPECT_EQ(res.open_qubits, open);
  EXPECT_EQ(sim.cache_stats().result.disk_hits, 1u);
}

TEST(SimulatorCache, ReadOnlyRunNeverPopulatesTheStore) {
  ScopedCacheDir dir;
  auto c = test::small_rqc(3, 3, 6, 13);
  api::SimulatorOptions opt;
  opt.plan.target_log2size = 6;
  opt.cache.cache_dir = dir.path;
  opt.cache.read_only = true;
  ASSERT_EQ(api::validate_options(opt), "");
  api::Simulator sim(c, opt);
  auto res = sim.amplitude(test::zero_bits(c.num_qubits));
  ASSERT_TRUE(res.completed) << res.telemetry.error;
  EXPECT_FALSE(file_exists(dir.path + "/plan"));
  EXPECT_FALSE(file_exists(dir.path + "/result"));

  // Incoherent combinations are refused by the shared gate, not ignored.
  api::SimulatorOptions bad;
  bad.cache.read_only = true;  // read-only with no disk to read
  EXPECT_NE(api::validate_options(bad), "");
  api::SimulatorOptions bad2;
  bad2.cache.cache_dir = dir.path;
  bad2.cache.plan_cache_entries = 0;
  bad2.cache.result_cache_entries = 0;  // a dir that caches nothing
  EXPECT_NE(api::validate_options(bad2), "");
}

}  // namespace
}  // namespace ltns::cache

// --- service duplicate-submit ----------------------------------------------

namespace ltns::dist {
namespace {

TEST(ServerCache, DuplicateSubmitIsServedFromCacheWithoutReexecution) {
  cache::ScopedCacheDir dir;
  ServerOptions so;
  so.cache.cache_dir = dir.path;

  JobServer server(0, so);
  const uint16_t port = server.port();
  std::string serve_err = "unset";
  std::thread server_thread([&] { serve_err = server.serve(); });
  std::thread worker([&] { serve_worker("127.0.0.1", port); });

  JobSpec spec;
  spec.tenant = "alice";
  auto c = test::small_rqc(3, 3, 8, 5);
  spec.circuit_text = circuit::circuit_to_string(c);
  spec.bits = "010101010";
  spec.target_log2size = 4;

  auto r1 = submit_job("127.0.0.1", port, spec);
  ASSERT_TRUE(r1.ok) << r1.message;
  auto rec1 = fetch_result("127.0.0.1", port, r1.job_id, /*wait=*/true);
  ASSERT_EQ(rec1.state, JobState::kDone) << rec1.error;
  EXPECT_GT(rec1.tasks_run, uint64_t(1));

  // The duplicate: a NEW job id, already COMPLETED at submit time, the
  // cached bytes — nothing queued, nothing executed.
  auto r2 = submit_job("127.0.0.1", port, spec);
  ASSERT_TRUE(r2.ok) << r2.message;
  EXPECT_NE(r2.job_id, r1.job_id);
  EXPECT_NE(r2.message.find("served from cache"), std::string::npos) << r2.message;

  auto rec2 = fetch_result("127.0.0.1", port, r2.job_id, /*wait=*/false);
  ASSERT_EQ(rec2.state, JobState::kDone) << rec2.error;
  EXPECT_EQ(rec2.job_id, r2.job_id);
  EXPECT_EQ(rec2.tenant, "alice");
  EXPECT_EQ(rec2.amplitude_re, rec1.amplitude_re);
  EXPECT_EQ(rec2.amplitude_im, rec1.amplitude_im);
  EXPECT_EQ(rec2.num_slices, rec1.num_slices);
  EXPECT_EQ(rec2.tasks_run, rec1.tasks_run);

  // The short-circuit is visible in the server snapshot.
  auto status = job_status_json("127.0.0.1", port, 0);
  EXPECT_NE(status.find("\"served_from_cache_total\":1"), std::string::npos) << status;
  EXPECT_NE(status.find("\"cache\""), std::string::npos) << status;

  // A different spec is NOT served from cache.
  JobSpec other = spec;
  other.bits = "101010101";
  auto r3 = submit_job("127.0.0.1", port, other);
  ASSERT_TRUE(r3.ok) << r3.message;
  EXPECT_EQ(r3.message.find("served from cache"), std::string::npos) << r3.message;
  auto rec3 = fetch_result("127.0.0.1", port, r3.job_id, /*wait=*/true);
  ASSERT_EQ(rec3.state, JobState::kDone) << rec3.error;

  auto rep = shutdown_server("127.0.0.1", port);
  EXPECT_TRUE(rep.ok) << rep.message;
  server_thread.join();
  worker.join();
  EXPECT_EQ(serve_err, "");
}

}  // namespace
}  // namespace ltns::dist
