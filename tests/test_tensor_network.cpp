#include "tn/tensor_network.hpp"

#include <gtest/gtest.h>

namespace ltns::tn {
namespace {

TEST(TensorNetwork, AddVerticesAndEdges) {
  TensorNetwork net;
  VertId a = net.add_vertex("a");
  VertId b = net.add_vertex("b");
  EdgeId e = net.add_edge(a, b);
  EXPECT_EQ(net.num_vertices(), 2);
  EXPECT_EQ(net.num_edges(), 1);
  EXPECT_EQ(net.edge(e).a, a);
  EXPECT_EQ(net.edge(e).b, b);
  EXPECT_TRUE(net.validate());
}

TEST(TensorNetwork, OpenEdges) {
  TensorNetwork net;
  VertId a = net.add_vertex();
  EdgeId e = net.add_edge(a, kNone);
  EXPECT_EQ(net.open_edges(), std::vector<EdgeId>{e});
  VertId b = net.add_vertex();
  net.connect_open_edge(e, b);
  EXPECT_TRUE(net.open_edges().empty());
  EXPECT_EQ(net.edge(e).b, b);
  EXPECT_TRUE(net.validate());
}

TEST(TensorNetwork, CloseOpenEdgeRemovesIncidence) {
  TensorNetwork net;
  VertId a = net.add_vertex();
  EdgeId e = net.add_edge(a, kNone);
  net.add_edge(a, kNone);
  net.close_open_edge(e);
  EXPECT_EQ(net.vertex_rank(a), 1);
  EXPECT_TRUE(net.validate());
}

TEST(TensorNetwork, VertexIndexSetAndSize) {
  TensorNetwork net;
  VertId a = net.add_vertex(), b = net.add_vertex(), c = net.add_vertex();
  EdgeId e0 = net.add_edge(a, b);
  EdgeId e1 = net.add_edge(a, c, 2.0);  // a weight-2 (extent 4) index
  auto s = net.vertex_index_set(a);
  EXPECT_TRUE(s.contains(e0));
  EXPECT_TRUE(s.contains(e1));
  EXPECT_EQ(s.count(), 2);
  EXPECT_DOUBLE_EQ(net.vertex_log2size(a), 3.0);
}

TEST(TensorNetwork, ContractRemovesSharedKeepsRest) {
  //  a --- b --- c  with an extra open edge on b
  TensorNetwork net;
  VertId a = net.add_vertex(), b = net.add_vertex(), c = net.add_vertex();
  EdgeId ab = net.add_edge(a, b);
  EdgeId bc = net.add_edge(b, c);
  EdgeId open = net.add_edge(b, kNone);
  net.contract(a, b);
  EXPECT_FALSE(net.edge(ab).alive);
  EXPECT_TRUE(net.edge(bc).alive);
  EXPECT_TRUE(net.edge(open).alive);
  EXPECT_FALSE(net.vertex(b).alive);
  EXPECT_EQ(net.num_alive_vertices(), 2);
  // bc now connects a and c.
  EXPECT_TRUE((net.edge(bc).a == a && net.edge(bc).b == c) ||
              (net.edge(bc).a == c && net.edge(bc).b == a));
  EXPECT_TRUE(net.validate());
}

TEST(TensorNetwork, ContractParallelEdgesKillsBoth) {
  TensorNetwork net;
  VertId a = net.add_vertex(), b = net.add_vertex();
  EdgeId e0 = net.add_edge(a, b);
  EdgeId e1 = net.add_edge(a, b);
  net.contract(a, b);
  EXPECT_FALSE(net.edge(e0).alive);
  EXPECT_FALSE(net.edge(e1).alive);
  EXPECT_EQ(net.vertex_rank(a), 0);
}

TEST(TensorNetwork, NeighborsDeduplicated) {
  TensorNetwork net;
  VertId a = net.add_vertex(), b = net.add_vertex();
  net.add_edge(a, b);
  net.add_edge(a, b);
  EXPECT_EQ(net.neighbors(a).size(), 1u);
}

TEST(TensorNetwork, PairContractionCostCountsUnionOnce) {
  TensorNetwork net;
  VertId a = net.add_vertex(), b = net.add_vertex(), c = net.add_vertex(), d = net.add_vertex();
  net.add_edge(a, b);
  net.add_edge(a, c);
  net.add_edge(b, d);
  // union of s_a, s_b = 3 unit edges -> cost 2^3
  EXPECT_DOUBLE_EQ(net.pair_contraction_log2cost(a, b), 3.0);
}

TEST(RandomNetwork, ConnectedAndValid) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    auto net = random_network(30, 3.0, seed);
    EXPECT_TRUE(net.validate());
    EXPECT_EQ(net.num_alive_vertices(), 30);
    EXPECT_GE(net.num_alive_edges(), 29);  // at least the spanning tree
    // BFS connectivity.
    std::vector<char> seen(30, 0);
    std::vector<VertId> q{0};
    seen[0] = 1;
    while (!q.empty()) {
      VertId v = q.back();
      q.pop_back();
      for (VertId u : net.neighbors(v))
        if (u != kNone && !seen[size_t(u)]) {
          seen[size_t(u)] = 1;
          q.push_back(u);
        }
    }
    for (char s : seen) EXPECT_TRUE(s);
  }
}

TEST(RandomNetwork, DeterministicPerSeed) {
  auto a = random_network(20, 2.5, 7);
  auto b = random_network(20, 2.5, 7);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).a, b.edge(e).a);
    EXPECT_EQ(a.edge(e).b, b.edge(e).b);
  }
}

}  // namespace
}  // namespace ltns::tn
