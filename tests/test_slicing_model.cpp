// Eq. 2 / Eq. 4 slicing cost model tests, including the brute-force
// cross-check over explicit subtask enumeration.
#include <gtest/gtest.h>

#include "core/slicing.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace ltns::core {
namespace {

TEST(SliceSet, TracksSizeAndSubtasks) {
  auto ln = test::small_network(3, 3, 4);
  SliceSet S(ln.net);
  EXPECT_EQ(S.size(), 0);
  EXPECT_DOUBLE_EQ(S.log2_num_subtasks(), 0.0);
  auto edges = ln.net.alive_edges();
  S.add(edges[0]);
  S.add(edges[1]);
  EXPECT_EQ(S.size(), 2);
  EXPECT_DOUBLE_EQ(S.log2_num_subtasks(), 2.0);
  S.remove(edges[0]);
  EXPECT_EQ(S.size(), 1);
  EXPECT_TRUE(S.contains(edges[1]));
  EXPECT_FALSE(S.contains(edges[0]));
}

TEST(EvaluateSlicing, EmptySetIsFree) {
  auto ln = test::small_network(3, 3, 4);
  auto tree = test::greedy_tree(ln.net);
  SliceSet S(ln.net);
  auto m = evaluate_slicing(tree, S);
  EXPECT_DOUBLE_EQ(m.log2_num_subtasks, 0.0);
  EXPECT_NEAR(m.log2_total_cost, tree.total_log2cost(), 1e-12);
  EXPECT_NEAR(m.log2_overhead, 0.0, 1e-12);
  EXPECT_NEAR(m.overhead(), 1.0, 1e-12);
  EXPECT_NEAR(m.max_log2size, tree.max_log2size(), 1e-12);
}

TEST(EvaluateSlicing, SingleEdgeAcrossWholeTreeHasNoOverhead) {
  // A path graph a-b-c contracted left to right: slicing the edge held to
  // the very end would halve everything it touches. Construct a case where
  // an open edge lives in every intermediate: lifetime = whole tree, so
  // overhead is exactly 1.
  tn::TensorNetwork net;
  auto a = net.add_vertex(), b = net.add_vertex(), c = net.add_vertex();
  net.add_edge(a, b);
  net.add_edge(b, c);
  int open = net.add_edge(a, tn::kNone);
  tn::SsaPath p;
  p.leaf_vertices = {a, b, c};
  p.steps = {{0, 1}, {3, 2}};
  auto tree = tn::ContractionTree::build(net, p);
  SliceSet S(net);
  S.add(open);
  auto m = evaluate_slicing(tree, S);
  EXPECT_NEAR(m.log2_overhead, 0.0, 1e-12) << "lifetime spans every contraction";
}

TEST(EvaluateSlicing, UntouchedEdgeDoublesTotal) {
  // Slicing an edge that appears in NO contraction of interest doubles the
  // whole computation: overhead = 2.
  tn::TensorNetwork net;
  auto a = net.add_vertex(), b = net.add_vertex(), c = net.add_vertex(), d = net.add_vertex();
  net.add_edge(a, b);
  net.add_edge(c, d);
  int cd2 = net.add_edge(c, d);
  tn::SsaPath p;
  p.leaf_vertices = {a, b, c, d};
  p.steps = {{0, 1}, {2, 3}, {4, 5}};
  auto tree = tn::ContractionTree::build(net, p);
  SliceSet S(net);
  // Slice the a-b edge: it is absent from the c-d contraction, which gets
  // recomputed in both subtasks.
  S.add(0);
  auto m = evaluate_slicing(tree, S);
  EXPECT_GT(m.overhead(), 1.0);
  (void)cd2;
}

TEST(EvaluateSlicing, MatchesBruteForce) {
  Rng rng(17);
  for (uint64_t seed : {4u, 8u, 15u, 16u, 23u, 42u}) {
    auto net = tn::random_network(14, 2.6, seed);
    auto tree = test::greedy_tree(net, seed);
    auto edges = net.alive_edges();
    SliceSet S(net);
    for (int k = 0; k < 3 && k < int(edges.size()); ++k) {
      int e;
      do {
        e = edges[rng.next_below(edges.size())];
      } while (S.contains(e));
      S.add(e);
    }
    auto m = evaluate_slicing(tree, S);
    EXPECT_NEAR(m.log2_total_cost, brute_force_sliced_log2cost(tree, S), 1e-9);
  }
}

TEST(EvaluateSlicing, SubtaskCostDecomposition) {
  auto ln = test::small_network(3, 4, 6);
  auto tree = test::greedy_tree(ln.net);
  SliceSet S(ln.net);
  auto edges = ln.net.alive_edges();
  S.add(edges[3]);
  S.add(edges[5]);
  auto m = evaluate_slicing(tree, S);
  EXPECT_NEAR(m.log2_total_cost, m.log2_cost_per_subtask + m.log2_num_subtasks, 1e-12);
  EXPECT_GE(m.log2_overhead, -1e-12) << "slicing can never reduce total flops";
}

TEST(EvaluateSlicing, MoreSlicesNeverReduceTotal) {
  // "More sliced edges tend to lead to higher overhead ... will grow unless
  // the lifetimes of the added edges go across the whole contraction tree."
  auto ln = test::small_network(3, 4, 8);
  auto tree = test::greedy_tree(ln.net);
  SliceSet S(ln.net);
  double prev = evaluate_slicing(tree, S).log2_total_cost;
  for (int e : {0, 4, 9, 13}) {
    if (!ln.net.edge(e).alive) continue;
    S.add(e);
    double cur = evaluate_slicing(tree, S).log2_total_cost;
    EXPECT_GE(cur + 1e-9, prev);
    prev = cur;
  }
}

TEST(MemoryBound, DetectsOversizedNodes) {
  auto ln = test::small_network(4, 4, 8);
  auto tree = test::greedy_tree(ln.net);
  SliceSet S(ln.net);
  EXPECT_FALSE(satisfies_memory_bound(tree, S, tree.max_log2size() - 1));
  EXPECT_TRUE(satisfies_memory_bound(tree, S, tree.max_log2size()));
}

TEST(SlicedNodeSize, OnlyCountsPresentEdges) {
  auto ln = test::small_network(3, 3, 4);
  auto tree = test::greedy_tree(ln.net);
  SliceSet S(ln.net);
  // Find a leaf and slice an edge NOT on it.
  int leaf = -1;
  for (int i = 0; i < tree.num_nodes(); ++i)
    if (tree.node(i).is_leaf()) {
      leaf = i;
      break;
    }
  int absent = -1;
  for (int e : ln.net.alive_edges())
    if (!tree.node(leaf).ixs.contains(e)) {
      absent = e;
      break;
    }
  ASSERT_GE(absent, 0);
  S.add(absent);
  EXPECT_DOUBLE_EQ(sliced_node_log2size(tree, leaf, S.edges()), tree.node(leaf).log2size);
}

}  // namespace
}  // namespace ltns::core
