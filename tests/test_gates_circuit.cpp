#include <gtest/gtest.h>

#include <set>

#include "circuit/circuit.hpp"
#include "circuit/gates.hpp"

namespace ltns::circuit {
namespace {

TEST(Gates, AllUnitary) {
  for (const auto& g : {gate_x(), gate_y(), gate_z(), gate_h(), gate_sqrt_x(), gate_sqrt_y(),
                        gate_sqrt_w(), gate_cz(), gate_fsim(1.2, 0.7), gate_sycamore()}) {
    EXPECT_LT(unitarity_defect(g), 1e-12) << g.name;
  }
}

TEST(Gates, SqrtGatesSquareToTheirBase) {
  auto square = [](const GateDef& g) {
    GateDef r = g;
    const int n = 1 << g.arity;
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) {
        cd acc = 0;
        for (int k = 0; k < n; ++k)
          acc += g.matrix[size_t(i * n + k)] * g.matrix[size_t(k * n + j)];
        r.matrix[size_t(i * n + j)] = acc;
      }
    return r;
  };
  auto close = [](const GateDef& a, const GateDef& b) {
    double d = 0;
    for (size_t i = 0; i < a.matrix.size(); ++i) d = std::max(d, std::abs(a.matrix[i] - b.matrix[i]));
    return d;
  };
  EXPECT_LT(close(square(gate_sqrt_x()), gate_x()), 1e-12);
  EXPECT_LT(close(square(gate_sqrt_y()), gate_y()), 1e-12);
  // sqrt(W)^2 = W = (X+Y)/sqrt(2).
  auto w2 = square(gate_sqrt_w());
  auto x = gate_x(), y = gate_y();
  for (size_t i = 0; i < 4; ++i)
    EXPECT_LT(std::abs(w2.matrix[i] - (x.matrix[i] + y.matrix[i]) / std::sqrt(2.0)), 1e-12);
}

TEST(Gates, FsimSpecialCases) {
  // fSim(0, 0) == identity.
  auto id = gate_fsim(0, 0);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      EXPECT_LT(std::abs(id.matrix[size_t(i * 4 + j)] - (i == j ? cd(1) : cd(0))), 1e-12);
  // fSim(pi/2, 0) == iSWAP^-1-ish: |01> -> -i|10>.
  auto is = gate_fsim(M_PI / 2, 0);
  EXPECT_LT(std::abs(is.matrix[6] - cd(0, -1)), 1e-12);
  EXPECT_LT(std::abs(is.matrix[5]), 1e-12);
}

TEST(Device, GridConstruction) {
  auto d = Device::grid(3, 4);
  EXPECT_EQ(d.num_qubits(), 12);
  // 2*4 vertical + 3*3 horizontal couplers.
  EXPECT_EQ(d.couplers.size(), 8u + 9u);
  for (auto [a, b] : d.couplers) {
    auto [ra, ca] = d.coords[size_t(a)];
    auto [rb, cb] = d.coords[size_t(b)];
    EXPECT_EQ(std::abs(ra - rb) + std::abs(ca - cb), 1) << "couplers join nearest neighbors";
  }
}

TEST(Device, Sycamore53Layout) {
  auto d = Device::sycamore53();
  EXPECT_EQ(d.num_qubits(), 53);
  std::set<std::pair<int, int>> coords(d.coords.begin(), d.coords.end());
  EXPECT_EQ(coords.size(), 53u) << "no duplicate sites";
  EXPECT_EQ(coords.count({0, 6}), 0u) << "the dropped qubit";
  for (auto [a, b] : d.couplers) {
    auto [ra, ca] = d.coords[size_t(a)];
    auto [rb, cb] = d.coords[size_t(b)];
    EXPECT_EQ(std::abs(ra - rb) + std::abs(ca - cb), 1);
  }
  // The diamond is connected with a realistic coupler count (86 for 53q).
  EXPECT_GT(d.couplers.size(), 70u);
}

TEST(Patterns, SequenceIsABCDCDAB) {
  std::vector<int> got;
  for (int c = 0; c < 8; ++c) got.push_back(pattern_for_cycle(c));
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 2, 3, 0, 1}));
  EXPECT_EQ(pattern_for_cycle(8), pattern_for_cycle(0));
}

TEST(Patterns, EveryCouplerInExactlyOnePattern) {
  auto d = Device::grid(4, 4);
  for (auto [a, b] : d.couplers) {
    int count = 0;
    for (int pat = 0; pat < 4; ++pat)
      count += coupler_in_pattern(d.coords[size_t(a)], d.coords[size_t(b)], pat);
    EXPECT_EQ(count, 1);
  }
}

TEST(Rqc, LayerStructure) {
  auto d = Device::grid(3, 3);
  RqcOptions opt;
  opt.cycles = 8;
  auto c = random_quantum_circuit(d, opt);
  EXPECT_EQ(c.num_qubits, 9);
  // 8 cycles x 9 single-qubit + 1 final layer = 81 single-qubit gates.
  int singles = 0, doubles = 0;
  for (const auto& op : c.ops) (op.gate.arity == 1 ? singles : doubles)++;
  EXPECT_EQ(singles, 9 * 9);
  EXPECT_EQ(doubles, c.num_two_qubit_ops());
  EXPECT_GT(doubles, 0);
}

TEST(Rqc, SingleQubitGatesNeverRepeatOnAQubit) {
  auto d = Device::grid(3, 3);
  RqcOptions opt;
  opt.cycles = 12;
  auto c = random_quantum_circuit(d, opt);
  std::vector<std::string> last(9);
  for (const auto& op : c.ops) {
    if (op.gate.arity != 1) continue;
    int q = op.qubits[0];
    EXPECT_NE(op.gate.name, last[size_t(q)]) << "qubit " << q;
    last[size_t(q)] = op.gate.name;
  }
}

TEST(Rqc, TwoQubitGatesFollowThePattern) {
  auto d = Device::grid(4, 4);
  RqcOptions opt;
  opt.cycles = 4;
  auto c = random_quantum_circuit(d, opt);
  int cycle = -1;
  int singles_seen = 0;
  for (const auto& op : c.ops) {
    if (op.gate.arity == 1) {
      if (singles_seen % 16 == 0) ++cycle;
      ++singles_seen;
      continue;
    }
    if (cycle >= opt.cycles) break;  // final layer
    EXPECT_TRUE(coupler_in_pattern(d.coords[size_t(op.qubits[0])],
                                   d.coords[size_t(op.qubits[1])], pattern_for_cycle(cycle)));
  }
}

TEST(Rqc, DeterministicPerSeed) {
  auto d = Device::grid(3, 3);
  RqcOptions opt;
  opt.cycles = 6;
  opt.seed = 5;
  auto a = random_quantum_circuit(d, opt);
  auto b = random_quantum_circuit(d, opt);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].gate.name, b.ops[i].gate.name);
    EXPECT_EQ(a.ops[i].qubits, b.ops[i].qubits);
  }
}

TEST(Rqc, DifferentSeedsDiffer) {
  auto d = Device::grid(3, 3);
  RqcOptions a, b;
  a.seed = 1;
  b.seed = 2;
  auto ca = random_quantum_circuit(d, a);
  auto cb = random_quantum_circuit(d, b);
  bool differ = false;
  for (size_t i = 0; i < std::min(ca.ops.size(), cb.ops.size()); ++i)
    differ = differ || ca.ops[i].gate.name != cb.ops[i].gate.name;
  EXPECT_TRUE(differ);
}

TEST(Rqc, SycamoreM20HasExpectedScale) {
  auto d = Device::sycamore53();
  RqcOptions opt;
  opt.cycles = 20;
  auto c = random_quantum_circuit(d, opt);
  EXPECT_EQ(c.num_qubits, 53);
  EXPECT_EQ(c.ops.size() - size_t(c.num_two_qubit_ops()), size_t(53 * 21));
  // Roughly a quarter of couplers fire each cycle.
  EXPECT_GT(c.num_two_qubit_ops(), 300);
  EXPECT_LT(c.num_two_qubit_ops(), 600);
}

}  // namespace
}  // namespace ltns::circuit
