#include "util/index_set.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ltns {
namespace {

TEST(IndexSet, EmptyOnConstruction) {
  IndexSet s(200);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0);
  for (int i = 0; i < 200; ++i) EXPECT_FALSE(s.contains(i));
}

TEST(IndexSet, InsertEraseContains) {
  IndexSet s(130);
  s.insert(0);
  s.insert(63);
  s.insert(64);
  s.insert(129);
  EXPECT_EQ(s.count(), 4);
  EXPECT_TRUE(s.contains(63));
  EXPECT_TRUE(s.contains(64));
  s.erase(63);
  EXPECT_FALSE(s.contains(63));
  EXPECT_EQ(s.count(), 3);
}

TEST(IndexSet, OfInitializerList) {
  auto s = IndexSet::of(100, {3, 1, 4, 15, 92});
  EXPECT_EQ(s.count(), 5);
  EXPECT_TRUE(s.contains(92));
  EXPECT_FALSE(s.contains(2));
}

TEST(IndexSet, SetAlgebra) {
  auto a = IndexSet::of(128, {1, 2, 3, 64, 65});
  auto b = IndexSet::of(128, {3, 4, 65, 66});
  EXPECT_EQ((a | b).count(), 7);
  EXPECT_EQ((a & b).count(), 2);
  EXPECT_EQ((a ^ b).count(), 5);
  EXPECT_EQ((a - b).count(), 3);
  EXPECT_TRUE((a & b).subset_of(a));
  EXPECT_TRUE((a & b).subset_of(b));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_EQ(a.intersection_count(b), 2);
}

TEST(IndexSet, XorIsSymmetricDifference) {
  auto a = IndexSet::of(64, {0, 1, 2});
  auto b = IndexSet::of(64, {2, 3});
  auto x = a ^ b;
  EXPECT_TRUE(x.contains(0));
  EXPECT_TRUE(x.contains(1));
  EXPECT_FALSE(x.contains(2));
  EXPECT_TRUE(x.contains(3));
}

TEST(IndexSet, DisjointDoesNotIntersect) {
  auto a = IndexSet::of(256, {10, 70, 200});
  auto b = IndexSet::of(256, {11, 71, 201});
  EXPECT_FALSE(a.intersects(b));
  EXPECT_EQ(a.intersection_count(b), 0);
}

TEST(IndexSet, ForEachVisitsInOrder) {
  auto s = IndexSet::of(200, {5, 64, 63, 199, 0});
  std::vector<int> seen;
  s.for_each([&](int id) { seen.push_back(id); });
  EXPECT_EQ(seen, (std::vector<int>{0, 5, 63, 64, 199}));
  EXPECT_EQ(s.to_vector(), seen);
}

TEST(IndexSet, ForEachIntersection) {
  auto a = IndexSet::of(128, {1, 5, 64, 100});
  auto b = IndexSet::of(128, {5, 100, 101});
  std::vector<int> seen;
  a.for_each_intersection(b, [&](int id) { seen.push_back(id); });
  EXPECT_EQ(seen, (std::vector<int>{5, 100}));
}

TEST(IndexSet, EqualityAndClear) {
  auto a = IndexSet::of(64, {1, 2});
  auto b = IndexSet::of(64, {1, 2});
  EXPECT_EQ(a, b);
  b.insert(3);
  EXPECT_NE(a, b);
  b.clear();
  EXPECT_TRUE(b.empty());
}

// Property sweep: algebra identities on random sets.
class IndexSetProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexSetProperty, AlgebraIdentities) {
  Rng rng(GetParam());
  const int universe = 1 + int(rng.next_below(300));
  IndexSet a(universe), b(universe);
  for (int i = 0; i < universe; ++i) {
    if (rng.next_double() < 0.3) a.insert(i);
    if (rng.next_double() < 0.3) b.insert(i);
  }
  // |A∪B| + |A∩B| == |A| + |B|
  EXPECT_EQ((a | b).count() + (a & b).count(), a.count() + b.count());
  // A^B == (A∪B) − (A∩B)
  EXPECT_EQ(a ^ b, (a | b) - (a & b));
  // De Morgan-ish difference identity: A − B == A − (A∩B)
  EXPECT_EQ(a - b, a - (a & b));
  // Subset relations
  EXPECT_TRUE((a - b).subset_of(a));
  EXPECT_TRUE((a & b).subset_of(a | b));
  EXPECT_EQ(a.intersection_count(b), (a & b).count());
}

INSTANTIATE_TEST_SUITE_P(RandomSets, IndexSetProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace ltns
