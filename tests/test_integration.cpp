// End-to-end pipeline tests: Simulator (plan + slice + execute, fused and
// step-by-step) against the statevector simulator.
#include <gtest/gtest.h>

#include <map>

#include "api/simulator.hpp"
#include "sv/statevector.hpp"
#include "test_helpers.hpp"

namespace ltns::api {
namespace {

SimulatorOptions fast_options(double target_log2size = 8, bool fused = true) {
  SimulatorOptions opt;
  opt.plan.path.greedy_trials = 6;
  opt.plan.path.partition_trials = 2;
  opt.plan.target_log2size = target_log2size;
  opt.plan.refiner.moves_per_temperature = 8;
  opt.plan.refiner.alpha = 0.8;
  opt.fused = fused;
  return opt;
}

class AmplitudeVsStatevector
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool /*fused*/>> {};

TEST_P(AmplitudeVsStatevector, Matches) {
  auto [seed, fused] = GetParam();
  auto c = test::small_rqc(3, 3, 6, seed);
  Simulator sim(c, fast_options(8, fused));
  std::vector<int> bits(size_t(c.num_qubits), 0);
  // A nontrivial bitstring derived from the seed.
  for (int q = 0; q < c.num_qubits; ++q) bits[size_t(q)] = int((seed >> (q % 8)) & 1);
  auto res = sim.amplitude(bits);
  auto want = sv::simulate_amplitude(c, bits);
  EXPECT_NEAR(std::abs(res.amplitude - want), 0.0, 1e-4)
      << "seed " << seed << " fused " << fused;
  EXPECT_GE(res.num_slices, 0);
  EXPECT_GT(res.telemetry.stats.flops, 0.0);
}

INSTANTIATE_TEST_SUITE_P(SeedsAndModes, AmplitudeVsStatevector,
                         ::testing::Combine(::testing::Values(uint64_t(1), uint64_t(2),
                                                              uint64_t(3), uint64_t(4)),
                                            ::testing::Bool()));

TEST(Simulator, SlicingActuallyHappensAtTightTargets) {
  auto c = test::small_rqc(3, 4, 8);
  Simulator sim(c, fast_options(6));
  auto res = sim.amplitude(test::zero_bits(c.num_qubits));
  EXPECT_GT(res.num_slices, 0) << "target 2^6 must force slicing on a 12q m=8 RQC";
  auto want = sv::simulate_amplitude(c, test::zero_bits(c.num_qubits));
  EXPECT_NEAR(std::abs(res.amplitude - want), 0.0, 1e-4);
}

TEST(Simulator, BatchAmplitudesMatchStatevector) {
  auto c = test::small_rqc(2, 4, 6);
  Simulator sim(c, fast_options(8));
  std::vector<int> bits = test::zero_bits(c.num_qubits);
  std::vector<int> open{1, 5, 6};
  auto batch = sim.batch_amplitudes(bits, open);
  ASSERT_EQ(batch.amplitudes.size(), 8u);

  sv::Statevector sv(c.num_qubits);
  sv.run(c);
  for (uint64_t k = 0; k < 8; ++k) {
    auto full_bits = bits;
    for (size_t i = 0; i < open.size(); ++i)
      full_bits[size_t(open[i])] = int((k >> (open.size() - 1 - i)) & 1);
    EXPECT_NEAR(std::abs(batch.amplitudes[k] - sv.amplitude_bits(full_bits)), 0.0, 1e-4)
        << "k=" << k;
  }
}

TEST(Simulator, BatchNormalizationIsSane) {
  // Sum of |amp|^2 over a batch is a partial probability: within (0, 1].
  auto c = test::small_rqc(3, 3, 6);
  Simulator sim(c, fast_options(8));
  auto batch = sim.batch_amplitudes(test::zero_bits(c.num_qubits), {0, 4, 8});
  double p = 0;
  for (auto a : batch.amplitudes) p += std::norm(a);
  EXPECT_GT(p, 0.0);
  EXPECT_LE(p, 1.0 + 1e-6);
}

TEST(Simulator, SampleFromBatchFollowsWeights) {
  BatchResult batch;
  batch.amplitudes = {std::complex<double>(std::sqrt(0.9), 0),
                      std::complex<double>(std::sqrt(0.1), 0)};
  auto samples = Simulator::sample_from_batch(batch, 5000, 7);
  std::map<uint64_t, int> hist;
  for (auto s : samples) hist[s]++;
  EXPECT_NEAR(hist[0] / 5000.0, 0.9, 0.03);
  EXPECT_NEAR(hist[1] / 5000.0, 0.1, 0.03);
}

TEST(Simulator, FusedAndStepwiseAgree) {
  auto c = test::small_rqc(3, 3, 8, 11);
  Simulator fused(c, fast_options(7, true));
  Simulator step(c, fast_options(7, false));
  auto bits = test::zero_bits(c.num_qubits);
  auto a = fused.amplitude(bits);
  auto b = step.amplitude(bits);
  EXPECT_NEAR(std::abs(a.amplitude - b.amplitude), 0.0, 1e-5);
}

TEST(Simulator, WorksOnNonGridDevice) {
  auto dev = circuit::Device::sycamore53();
  // Truncate: take the first 12 qubits' induced subdevice for an exact check.
  circuit::Device sub;
  for (int q = 0; q < 12; ++q) sub.coords.push_back(dev.coords[size_t(q)]);
  for (auto [a, b] : dev.couplers)
    if (a < 12 && b < 12) sub.couplers.emplace_back(a, b);
  circuit::RqcOptions ro;
  ro.cycles = 6;
  auto c = circuit::random_quantum_circuit(sub, ro);
  Simulator sim(c, fast_options(8));
  auto res = sim.amplitude(test::zero_bits(c.num_qubits));
  auto want = sv::simulate_amplitude(c, test::zero_bits(c.num_qubits));
  EXPECT_NEAR(std::abs(res.amplitude - want), 0.0, 1e-4);
}

TEST(Simulator, PorterThomasOverManyBitstrings) {
  // Cross-check several amplitudes at once — catches index-convention bugs
  // that a single amplitude can miss.
  auto c = test::small_rqc(3, 3, 6, 21);
  Simulator sim(c, fast_options(8));
  sv::Statevector sv(c.num_qubits);
  sv.run(c);
  for (uint64_t k : {uint64_t(0), uint64_t(5), uint64_t(129), uint64_t(511)}) {
    std::vector<int> bits(size_t(c.num_qubits));
    for (int q = 0; q < c.num_qubits; ++q) bits[size_t(q)] = int((k >> (c.num_qubits - 1 - q)) & 1);
    auto res = sim.amplitude(bits);
    EXPECT_NEAR(std::abs(res.amplitude - sv.amplitude(k)), 0.0, 1e-4) << "k=" << k;
  }
}

}  // namespace
}  // namespace ltns::api
