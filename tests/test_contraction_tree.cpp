#include "tn/contraction_tree.hpp"

#include <gtest/gtest.h>

#include "path/greedy.hpp"
#include "test_helpers.hpp"
#include "tn/tensor_network.hpp"
#include "util/rng.hpp"

namespace ltns::tn {
namespace {

// Triangle network: 3 vertices pairwise connected.
TensorNetwork triangle() {
  TensorNetwork net;
  VertId a = net.add_vertex(), b = net.add_vertex(), c = net.add_vertex();
  net.add_edge(a, b);
  net.add_edge(b, c);
  net.add_edge(a, c);
  return net;
}

SsaPath triangle_path() {
  SsaPath p;
  p.leaf_vertices = {0, 1, 2};
  p.steps = {{0, 1}, {3, 2}};
  return p;
}

TEST(ContractionTree, TriangleCosts) {
  auto net = triangle();
  auto tree = ContractionTree::build(net, triangle_path());
  EXPECT_TRUE(tree.validate());
  EXPECT_EQ(tree.num_leaves(), 3);
  EXPECT_EQ(tree.num_nodes(), 5);
  // Step 1: union of s_0, s_1 = 3 edges -> 2^3.
  // Step 2: (0,1) has edges {bc, ac}; union with s_2 = {bc, ac} -> 2^2.
  EXPECT_NEAR(std::exp2(tree.total_log2cost()), 8 + 4, 1e-9);
  // Biggest intermediate: the rank-2 tensor (0,1).
  EXPECT_DOUBLE_EQ(tree.max_log2size(), 2.0);
  // Root is a scalar.
  EXPECT_DOUBLE_EQ(tree.node(tree.root()).log2size, 0.0);
}

TEST(ContractionTree, XorRuleOnTriangle) {
  auto net = triangle();
  auto tree = ContractionTree::build(net, triangle_path());
  const auto& mid = tree.node(3);
  EXPECT_EQ(mid.ixs.count(), 2);     // edges to c
  EXPECT_EQ(mid.union_ixs.count(), 3);
}

TEST(ContractionTree, OpenEdgesSurviveToRoot) {
  TensorNetwork net;
  VertId a = net.add_vertex(), b = net.add_vertex();
  net.add_edge(a, b);
  EdgeId open = net.add_edge(a, kNone);
  SsaPath p;
  p.leaf_vertices = {a, b};
  p.steps = {{0, 1}};
  auto tree = ContractionTree::build(net, p);
  EXPECT_TRUE(tree.validate());
  EXPECT_TRUE(tree.node(tree.root()).ixs.contains(open));
  EXPECT_DOUBLE_EQ(tree.node(tree.root()).log2size, 1.0);
}

TEST(ContractionTree, WeightedEdgesCountWeight) {
  TensorNetwork net;
  VertId a = net.add_vertex(), b = net.add_vertex();
  net.add_edge(a, b, 3.0);  // extent 8
  SsaPath p;
  p.leaf_vertices = {a, b};
  p.steps = {{0, 1}};
  auto tree = ContractionTree::build(net, p);
  EXPECT_DOUBLE_EQ(tree.total_log2cost(), 3.0);
  EXPECT_DOUBLE_EQ(tree.max_log2size(), 3.0);
}

TEST(ContractionTree, PostorderChildrenFirst) {
  auto net = test::small_network(3, 3, 4);
  auto tree = test::greedy_tree(net.net);
  auto order = tree.postorder();
  std::vector<char> seen(size_t(tree.num_nodes()), 0);
  for (int id : order) {
    const auto& n = tree.node(id);
    if (!n.is_leaf()) {
      EXPECT_TRUE(seen[size_t(n.left)]);
      EXPECT_TRUE(seen[size_t(n.right)]);
    }
    seen[size_t(id)] = 1;
  }
}

TEST(ContractionTree, RoundTripThroughSsaPath) {
  auto net = test::small_network(3, 3, 4);
  auto tree = test::greedy_tree(net.net);
  auto path2 = to_ssa_path(tree);
  auto tree2 = ContractionTree::build(net.net, path2);
  EXPECT_TRUE(tree2.validate());
  EXPECT_NEAR(tree2.total_log2cost(), tree.total_log2cost(), 1e-9);
  EXPECT_NEAR(tree2.max_log2size(), tree.max_log2size(), 1e-9);
}

// Equivalent paths (reordered independent steps) have identical cost.
TEST(ContractionTree, EquivalenceClassInvariance) {
  TensorNetwork net;
  // Two disjoint pairs joined at the end: (a-b) (c-d), then join.
  VertId a = net.add_vertex(), b = net.add_vertex(), c = net.add_vertex(), d = net.add_vertex();
  net.add_edge(a, b);
  net.add_edge(c, d);
  net.add_edge(b, c);
  SsaPath p1;
  p1.leaf_vertices = {a, b, c, d};
  p1.steps = {{0, 1}, {2, 3}, {4, 5}};
  SsaPath p2;
  p2.leaf_vertices = {a, b, c, d};
  p2.steps = {{2, 3}, {0, 1}, {5, 4}};
  auto t1 = ContractionTree::build(net, p1);
  auto t2 = ContractionTree::build(net, p2);
  EXPECT_NEAR(t1.total_log2cost(), t2.total_log2cost(), 1e-12);
}

class TreeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TreeProperty, RandomNetworksBuildValidTrees) {
  auto net = random_network(5 + int(GetParam() % 40), 2.8, GetParam());
  auto tree = test::greedy_tree(net, GetParam());
  std::string why;
  EXPECT_TRUE(tree.validate(&why)) << why;
  EXPECT_EQ(tree.num_leaves(), net.num_alive_vertices());
  EXPECT_EQ(tree.num_nodes(), 2 * tree.num_leaves() - 1);
  // Cost at least the size of every contraction output.
  EXPECT_GE(tree.total_log2cost() + 1e-9, tree.max_log2size());
}

INSTANTIATE_TEST_SUITE_P(Random, TreeProperty, ::testing::Range(uint64_t(1), uint64_t(13)));

}  // namespace
}  // namespace ltns::tn
