#include <gtest/gtest.h>

#include "path/community.hpp"
#include "path/greedy.hpp"
#include "path/local_tune.hpp"
#include "path/optimizer.hpp"
#include "path/partition.hpp"
#include "test_helpers.hpp"

namespace ltns::path {
namespace {

void expect_valid_path(const tn::TensorNetwork& net, const tn::SsaPath& p) {
  auto tree = tn::ContractionTree::build(net, p);
  std::string why;
  EXPECT_TRUE(tree.validate(&why)) << why;
}

TEST(GreedyPath, ValidOnRqcNetwork) {
  auto ln = test::small_network(4, 4, 8);
  expect_valid_path(ln.net, greedy_path(ln.net));
}

TEST(GreedyPath, ValidOnRandomNetworks) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    auto net = tn::random_network(8 + int(seed) * 5, 2.7, seed);
    GreedyOptions g;
    g.seed = seed;
    expect_valid_path(net, greedy_path(net, g));
  }
}

TEST(GreedyPath, DeterministicAtZeroTemperature) {
  auto ln = test::small_network(4, 4, 6);
  auto p1 = greedy_path(ln.net);
  auto p2 = greedy_path(ln.net);
  EXPECT_EQ(p1.steps, p2.steps);
}

TEST(GreedyPath, TemperatureExploresDifferentPaths) {
  auto ln = test::small_network(4, 4, 8);
  GreedyOptions a;
  a.temperature = 1.0;
  a.seed = 1;
  GreedyOptions b;
  b.temperature = 1.0;
  b.seed = 2;
  EXPECT_NE(greedy_path(ln.net, a).steps, greedy_path(ln.net, b).steps);
}

TEST(GreedyPath, HandlesDisconnectedNetworks) {
  tn::TensorNetwork net;
  auto a = net.add_vertex(), b = net.add_vertex();
  auto c = net.add_vertex(), d = net.add_vertex();
  net.add_edge(a, b);
  net.add_edge(c, d);
  expect_valid_path(net, greedy_path(net));
}

TEST(GreedyPath, SingleVertexNetwork) {
  tn::TensorNetwork net;
  net.add_vertex();
  auto p = greedy_path(net);
  EXPECT_EQ(p.leaf_vertices.size(), 1u);
  EXPECT_TRUE(p.steps.empty());
}

TEST(PartitionPath, ValidAndReasonable) {
  auto ln = test::small_network(4, 5, 10);
  PartitionOptions opt;
  auto p = partition_path(ln.net, opt);
  expect_valid_path(ln.net, p);
  // Should not be catastrophically worse than greedy on a planar RQC.
  auto tg = tn::ContractionTree::build(ln.net, greedy_path(ln.net));
  auto tp = tn::ContractionTree::build(ln.net, p);
  EXPECT_LT(tp.total_log2cost(), tg.total_log2cost() + 20.0);
}

TEST(PartitionPath, ValidOnRandomNetworks) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    auto net = tn::random_network(40, 3.0, seed);
    PartitionOptions opt;
    opt.seed = seed;
    expect_valid_path(net, partition_path(net, opt));
  }
}

TEST(CommunityPath, ValidOnSmallNetworks) {
  auto ln = test::small_network(3, 4, 6);
  expect_valid_path(ln.net, community_path(ln.net));
}

TEST(CommunityLabels, CoverAliveVertices) {
  auto ln = test::small_network(3, 4, 6);
  auto labels = label_propagation_communities(ln.net);
  for (auto v : ln.net.alive_vertices()) EXPECT_NE(labels[size_t(v)], tn::kNone);
}

TEST(OptimalOrder, MatchesExhaustiveOnTriangle) {
  tn::TensorNetwork net;
  auto a = net.add_vertex(), b = net.add_vertex(), c = net.add_vertex();
  net.add_edge(a, b);
  net.add_edge(b, c);
  net.add_edge(a, c);
  std::vector<IndexSet> leaves{net.vertex_index_set(a), net.vertex_index_set(b),
                               net.vertex_index_set(c)};
  double cost;
  auto steps = optimal_order(net, leaves, &cost);
  EXPECT_EQ(steps.size(), 2u);
  // All contraction orders of a triangle cost the same: 2^3 + 2^2.
  EXPECT_NEAR(std::exp2(cost), 12.0, 1e-9);
}

TEST(OptimalOrder, BeatsWorstOrderOnAChain) {
  // Chain a-b-c-d with a fat middle edge: contracting ends first is bad.
  tn::TensorNetwork net;
  auto a = net.add_vertex(), b = net.add_vertex(), c = net.add_vertex(), d = net.add_vertex();
  net.add_edge(a, b);
  net.add_edge(b, c, 6.0);
  net.add_edge(c, d);
  std::vector<IndexSet> leaves;
  for (auto v : {a, b, c, d}) leaves.push_back(net.vertex_index_set(v));
  double best;
  optimal_order(net, leaves, &best);
  // Worst order contracts a with d first (outer product with the fat edge
  // alive on both sides).
  tn::SsaPath bad;
  bad.leaf_vertices = {a, b, c, d};
  bad.steps = {{0, 3}, {4, 1}, {5, 2}};
  auto bad_tree = tn::ContractionTree::build(net, bad);
  EXPECT_LT(best, bad_tree.total_log2cost());
}

TEST(LocalTune, NeverIncreasesCost) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    auto net = tn::random_network(30, 2.8, seed);
    auto tree = test::greedy_tree(net, seed, 1.0);
    auto r = local_tune(tree);
    EXPECT_LE(r.log2cost_after, r.log2cost_before + 1e-9);
    expect_valid_path(net, r.path);
  }
}

TEST(LocalTune, ImprovesABadTree) {
  // A deliberately shuffled (high temperature) greedy tree should leave
  // room for subtree improvement on at least one seed.
  int improved = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    auto ln = test::small_network(4, 4, 8, seed);
    auto tree = test::greedy_tree(ln.net, seed, 4.0);
    auto r = local_tune(tree);
    improved += r.improved_subtrees;
  }
  EXPECT_GT(improved, 0);
}

TEST(Optimizer, PicksBestAcrossFamilies) {
  auto ln = test::small_network(4, 4, 8);
  OptimizerOptions opt;
  opt.greedy_trials = 8;
  opt.partition_trials = 4;
  auto r = find_path(ln.net, opt);
  expect_valid_path(ln.net, r.path);
  EXPECT_GT(r.trials_run, 0);
  EXPECT_FALSE(r.method.empty());
  // Best-of-N is at least as good as the deterministic greedy alone.
  auto tg = tn::ContractionTree::build(ln.net, greedy_path(ln.net));
  EXPECT_LE(r.log2cost, tg.total_log2cost() + 1e-9);
}

class OptimizerSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptimizerSweep, ValidPlansOnVaryingCircuits) {
  auto ln = test::small_network(3 + int(GetParam() % 2), 4, 6 + int(GetParam() % 5), GetParam());
  OptimizerOptions opt;
  opt.greedy_trials = 4;
  opt.partition_trials = 2;
  opt.seed = GetParam();
  auto r = find_path(ln.net, opt);
  expect_valid_path(ln.net, r.path);
  EXPECT_GE(r.log2size, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerSweep, ::testing::Range(uint64_t(1), uint64_t(9)));

}  // namespace
}  // namespace ltns::path
