#include <gtest/gtest.h>

#include "exec/contract.hpp"
#include "exec/gemm.hpp"
#include "util/rng.hpp"

namespace ltns::exec {
namespace {

std::vector<cfloat> random_matrix(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  std::vector<cfloat> m(size_t(rows) * cols);
  for (auto& v : m) v = cfloat(float(rng.next_normal()), float(rng.next_normal()));
  return m;
}

double max_diff(const std::vector<cfloat>& a, const std::vector<cfloat>& b) {
  double d = 0;
  for (size_t i = 0; i < a.size(); ++i) d = std::max(d, double(std::abs(a[i] - b[i])));
  return d;
}

class GemmShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, BlockedMatchesNaive) {
  auto [m, n, k] = GetParam();
  auto a = random_matrix(m, k, 1);
  auto b = random_matrix(k, n, 2);
  std::vector<cfloat> c1(size_t(m) * n), c2(size_t(m) * n);
  cgemm_naive(m, n, k, a.data(), b.data(), c1.data());
  cgemm(m, n, k, a.data(), b.data(), c2.data());
  EXPECT_LT(max_diff(c1, c2), 1e-3 * std::sqrt(double(k)));
}

INSTANTIATE_TEST_SUITE_P(
    SquareNarrowAndEdge, GemmShapes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{4, 4, 4}, std::tuple{16, 16, 16},
                      std::tuple{64, 64, 64}, std::tuple{128, 32, 64},
                      // the paper's narrow regime: two of m,n,k < 16
                      std::tuple{256, 2, 4}, std::tuple{2, 256, 4}, std::tuple{4, 2, 256},
                      std::tuple{1024, 4, 2}, std::tuple{3, 5, 7}, std::tuple{17, 33, 65},
                      std::tuple{100, 1, 100}));

TEST(Gemm, ParallelMatchesSerial) {
  ThreadPool pool(4);
  const int m = 96, n = 40, k = 70;
  auto a = random_matrix(m, k, 3);
  auto b = random_matrix(k, n, 4);
  std::vector<cfloat> c1(size_t(m) * n), c2(size_t(m) * n);
  cgemm(m, n, k, a.data(), b.data(), c1.data(), nullptr);
  cgemm(m, n, k, a.data(), b.data(), c2.data(), &pool);
  EXPECT_LT(max_diff(c1, c2), 1e-4);
}

TEST(Gemm, IdentityMultiplication) {
  const int n = 8;
  std::vector<cfloat> eye(size_t(n) * n, cfloat{0, 0});
  for (int i = 0; i < n; ++i) eye[size_t(i) * n + i] = {1, 0};
  auto b = random_matrix(n, n, 5);
  std::vector<cfloat> c(size_t(n) * n);
  cgemm(n, n, n, eye.data(), b.data(), c.data());
  EXPECT_LT(max_diff(b, c), 1e-6);
}

TEST(Gemm, FlopsConvention) { EXPECT_DOUBLE_EQ(gemm_flops(2, 3, 4), 8.0 * 24); }

TEST(PlanContract, SplitsIndicesCorrectly) {
  auto p = plan_contract({1, 2, 3}, {3, 4});
  EXPECT_EQ(p.shared, (std::vector<int>{3}));
  EXPECT_EQ(p.out_ixs, (std::vector<int>{1, 2, 4}));
  EXPECT_EQ(p.m, 4);
  EXPECT_EQ(p.n, 2);
  EXPECT_EQ(p.k, 2);
  EXPECT_TRUE(p.a_identity);  // keepA+shared == {1,2,3}
  EXPECT_TRUE(p.b_identity);  // shared+keepB == {3,4}
}

TEST(PlanContract, DetectsNeededPermutations) {
  auto p = plan_contract({3, 1, 2}, {4, 3});
  EXPECT_FALSE(p.a_identity);
  EXPECT_FALSE(p.b_identity);
  EXPECT_EQ(p.a_order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(p.b_order, (std::vector<int>{3, 4}));
}

TEST(Contract, MatrixVectorAsTensors) {
  // M[i,j] * v[j] = (Mv)[i]
  Tensor m({1, 2});
  m.set({0, 0}, {1, 0});
  m.set({0, 1}, {2, 0});
  m.set({1, 0}, {3, 0});
  m.set({1, 1}, {4, 0});
  Tensor v({2});
  v.set({0}, {1, 0});
  v.set({1}, {1, 0});
  auto r = contract(m, v);
  EXPECT_EQ(r.ixs(), std::vector<int>{1});
  EXPECT_EQ(r.at({0}), cfloat(3, 0));
  EXPECT_EQ(r.at({1}), cfloat(7, 0));
}

TEST(Contract, OuterProduct) {
  auto a = random_tensor({1}, 6);
  auto b = random_tensor({2}, 7);
  auto r = contract(a, b);
  EXPECT_EQ(r.rank(), 2);
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j)
      EXPECT_NEAR(std::abs(r.at({i, j}) - a.at({i}) * b.at({j})), 0.0, 1e-5);
}

TEST(Contract, FullInnerProductToScalar) {
  auto a = random_tensor({1, 2}, 8);
  auto b = random_tensor({1, 2}, 9);
  auto r = contract(a, b);
  EXPECT_EQ(r.rank(), 0);
  std::complex<double> want{0, 0};
  for (size_t i = 0; i < a.size(); ++i)
    want += std::complex<double>(a.data()[i]) * std::complex<double>(b.data()[i]);
  EXPECT_NEAR(std::abs(std::complex<double>(r.data()[0]) - want), 0.0, 1e-4);
}

TEST(Contract, MatchesNaiveOnRandomShapes) {
  Rng rng(41);
  for (int trial = 0; trial < 25; ++trial) {
    int ra = 1 + int(rng.next_below(5));
    int rb = 1 + int(rng.next_below(5));
    int nshared = int(rng.next_below(uint64_t(std::min(ra, rb)) + 1));
    std::vector<int> a_ixs, b_ixs;
    int next = 0;
    for (int i = 0; i < nshared; ++i) {
      a_ixs.push_back(next);
      b_ixs.push_back(next);
      ++next;
    }
    while (int(a_ixs.size()) < ra) a_ixs.push_back(next++);
    while (int(b_ixs.size()) < rb) b_ixs.push_back(next++);
    // Shuffle axis orders.
    Rng sh{uint64_t(trial)};
    for (size_t i = a_ixs.size(); i > 1; --i) std::swap(a_ixs[i - 1], a_ixs[sh.next_below(i)]);
    for (size_t i = b_ixs.size(); i > 1; --i) std::swap(b_ixs[i - 1], b_ixs[sh.next_below(i)]);
    auto a = random_tensor(a_ixs, uint64_t(trial) * 2 + 1);
    auto b = random_tensor(b_ixs, uint64_t(trial) * 2 + 2);
    auto fast = contract(a, b);
    auto slow = contract_naive(a, b);
    ASSERT_EQ(fast.ixs(), slow.ixs());
    EXPECT_LT(max_abs_diff(fast, slow), 1e-3) << "trial " << trial;
  }
}

TEST(Contract, StatsAccumulate) {
  ContractStats st;
  auto a = random_tensor({3, 1, 2}, 10);
  auto b = random_tensor({4, 3}, 11);
  contract(a, b, nullptr, &st);
  EXPECT_GT(st.flops, 0.0);
  EXPECT_GT(st.permute_elems, 0.0);  // both operands needed permutes
}

TEST(Contract, AssociativityOnAChain) {
  // (A·B)·C == A·(B·C) for a chain A[1,2] B[2,3] C[3,4].
  auto a = random_tensor({1, 2}, 12);
  auto b = random_tensor({2, 3}, 13);
  auto c = random_tensor({3, 4}, 14);
  auto left = contract(contract(a, b), c);
  auto right = contract(a, contract(b, c));
  ASSERT_EQ(left.ixs(), right.ixs());
  EXPECT_LT(max_abs_diff(left, right), 1e-4);
}

}  // namespace
}  // namespace ltns::exec
