// Instrumentation plumbing: ExecStats/DmaStats merging, arithmetic
// intensity accounting, and the counters the Fig. 12/13 benches rely on.
#include <gtest/gtest.h>

#include "exec/fused_executor.hpp"
#include "exec/slice_runner.hpp"
#include "exec/tree_executor.hpp"
#include "runtime/executor_stats.hpp"
#include "test_helpers.hpp"

namespace ltns::exec {
namespace {

TEST(ExecStats, MergeAccumulates) {
  ExecStats a, b;
  a.flops = 10;
  a.bytes_main = 100;
  a.peak_live_elems = 5;
  b.flops = 3;
  b.bytes_main = 7;
  b.peak_live_elems = 9;
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.flops, 13);
  EXPECT_DOUBLE_EQ(a.bytes_main, 107);
  EXPECT_EQ(a.peak_live_elems, 9u);  // high-water mark, not a sum
}

TEST(ExecStats, ArithmeticIntensity) {
  ExecStats s;
  s.flops = 100;
  s.bytes_main = 25;
  EXPECT_DOUBLE_EQ(s.arithmetic_intensity(), 4.0);
  ExecStats zero;
  EXPECT_DOUBLE_EQ(zero.arithmetic_intensity(), 0.0);
}

TEST(DmaStats, RecordAndMerge) {
  DmaStats a;
  a.record_get(1024, 512);
  a.record_put(2048, 1024);
  EXPECT_DOUBLE_EQ(a.total_bytes(), 3072);
  EXPECT_DOUBLE_EQ(a.transfers_get, 2);
  EXPECT_DOUBLE_EQ(a.transfers_put, 2);
  EXPECT_DOUBLE_EQ(a.min_granularity, 512);
  // Bandwidth-weighted effective granularity: (1024*512 + 2048*1024)/3072.
  EXPECT_NEAR(a.effective_granularity(), (1024.0 * 512 + 2048.0 * 1024) / 3072.0, 1e-9);

  DmaStats b;
  b.record_get(512, 64);
  b.rma_bytes = 100;
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total_bytes(), 3584);
  EXPECT_DOUBLE_EQ(a.min_granularity, 64);
  EXPECT_DOUBLE_EQ(a.rma_bytes, 100);
}

TEST(Instrumentation, FlopsMatchTreeCostModel) {
  // Counted GEMM flops of an unsliced execution must equal 8 * 2^Eq.1-cost
  // (each contraction is one M x K x N GEMM with 8 flops per MAC).
  auto ln = test::small_network(3, 3, 5);
  auto tree = test::greedy_tree(ln.net);
  auto leaves = [&](tn::VertId v) -> const Tensor& { return ln.tensors[size_t(v)]; };
  ExecStats st;
  execute_tree(tree, leaves, {}, 0, nullptr, &st);
  EXPECT_NEAR(st.flops, 8.0 * std::exp2(tree.total_log2cost()), 1e-3 * st.flops);
}

TEST(Instrumentation, SlicedFlopsMatchEq4) {
  // Summed over all subtasks, counted flops must equal 8 * 2^Eq.4-total.
  auto ln = test::small_network(3, 3, 6);
  auto tree = test::greedy_tree(ln.net);
  core::SliceSet S(ln.net);
  auto stem = tn::extract_stem(tree);
  auto lt = core::StemLifetimes::build(stem);
  for (int e : ln.net.alive_edges()) {
    if (lt.of(e).alive() && lt.of(e).length() >= 2) {
      S.add(e);
      if (S.size() == 2) break;
    }
  }
  ASSERT_EQ(S.size(), 2);
  auto leaves = [&](tn::VertId v) -> const Tensor& { return ln.tensors[size_t(v)]; };
  auto rr = run_sliced(tree, leaves, S);
  auto m = core::evaluate_slicing(tree, S);
  EXPECT_NEAR(rr.stats.flops, 8.0 * std::exp2(m.log2_total_cost), 1e-3 * rr.stats.flops);
}

TEST(Instrumentation, PeakLiveElemsBoundsBiggestIntermediate) {
  auto ln = test::small_network(3, 4, 6);
  auto tree = test::greedy_tree(ln.net);
  auto leaves = [&](tn::VertId v) -> const Tensor& { return ln.tensors[size_t(v)]; };
  ExecStats st;
  execute_tree(tree, leaves, {}, 0, nullptr, &st);
  EXPECT_GE(double(st.peak_live_elems), std::exp2(tree.max_log2size()));
}

// --- ExecutorSnapshot / DeviceStats aggregation edge cases -----------------

runtime::ExecutorSnapshot sample_snapshot(uint64_t scale) {
  runtime::ExecutorSnapshot s;
  s.scheduled = 10 * scale;
  s.stolen = 2 * scale;
  s.finished = 8 * scale;
  s.cancelled = scale;
  s.running = int(scale);
  s.waiting = int(2 * scale);
  s.ema_utilization = 0.5;
  s.ranges_stolen = 3 * scale;
  s.ranges_reissued = scale;
  s.straggler_wait_seconds = 0.25 * double(scale);
  s.device.bytes_to_device = 1000.0 * double(scale);
  s.device.bytes_to_host = 100.0 * double(scale);
  s.device.ns_to_device = 5000.0 * double(scale);
  s.device.uploads = 4 * scale;
  s.device.gemm_calls = 6 * scale;
  s.permute = {3 * scale, 0.1 * double(scale)};
  s.gemm = {4 * scale, 0.2 * double(scale)};
  s.reduce = {2 * scale, 0.05 * double(scale)};
  s.memory = {scale, 0.01 * double(scale)};
  return s;
}

TEST(ExecutorSnapshot, SinceOfSelfIsZeroDelta) {
  auto s = sample_snapshot(3);
  auto d = s.since(s);
  EXPECT_EQ(d.scheduled, 0u);
  EXPECT_EQ(d.stolen, 0u);
  EXPECT_EQ(d.finished, 0u);
  EXPECT_EQ(d.cancelled, 0u);
  EXPECT_EQ(d.ranges_stolen, 0u);
  EXPECT_EQ(d.ranges_reissued, 0u);
  EXPECT_DOUBLE_EQ(d.straggler_wait_seconds, 0.0);
  EXPECT_DOUBLE_EQ(d.device.bytes_to_device, 0.0);
  EXPECT_EQ(d.device.gemm_calls, 0u);
  EXPECT_EQ(d.gemm.count, 0u);
  EXPECT_DOUBLE_EQ(d.gemm.seconds, 0.0);
  // Gauges keep their end-of-run value rather than subtracting.
  EXPECT_EQ(d.running, s.running);
  EXPECT_EQ(d.waiting, s.waiting);
  EXPECT_DOUBLE_EQ(d.ema_utilization, s.ema_utilization);
}

TEST(ExecutorSnapshot, SinceEmptyBaselineIsIdentity) {
  // Diffing against a default-constructed (empty) begin snapshot must
  // reproduce the end snapshot exactly — no counter may wrap.
  auto s = sample_snapshot(5);
  runtime::ExecutorSnapshot empty;
  auto d = s.since(empty);
  EXPECT_EQ(d.scheduled, s.scheduled);
  EXPECT_EQ(d.finished, s.finished);
  EXPECT_EQ(d.device.uploads, s.device.uploads);
  EXPECT_DOUBLE_EQ(d.permute.seconds, s.permute.seconds);
  EXPECT_EQ(d.reduce.count, s.reduce.count);
}

TEST(ExecutorSnapshot, SinceIsWraparoundFreeOnMonotoneCounters) {
  // begin <= end componentwise (counters are cumulative): every delta
  // stays small and non-wrapped even near a large baseline.
  auto begin = sample_snapshot(1000000);
  auto end = begin;
  end.scheduled += 7;
  end.finished += 5;
  end.device.gemm_calls += 11;
  end.gemm.count += 5;
  end.gemm.seconds += 0.5;
  auto d = end.since(begin);
  EXPECT_EQ(d.scheduled, 7u);
  EXPECT_EQ(d.finished, 5u);
  EXPECT_EQ(d.device.gemm_calls, 11u);
  EXPECT_EQ(d.gemm.count, 5u);
  EXPECT_NEAR(d.gemm.seconds, 0.5, 1e-9);
  EXPECT_LT(d.scheduled, uint64_t(1) << 32);  // would be huge if wrapped
}

TEST(ExecutorSnapshot, MergeEmptyIsIdentityBothWays) {
  auto s = sample_snapshot(2);
  runtime::ExecutorSnapshot empty;

  auto a = s;
  a.merge(empty);  // x + 0 = x, including the finished-weighted EMA
  EXPECT_EQ(a.scheduled, s.scheduled);
  EXPECT_EQ(a.finished, s.finished);
  EXPECT_DOUBLE_EQ(a.ema_utilization, s.ema_utilization);
  EXPECT_DOUBLE_EQ(a.device.bytes_to_device, s.device.bytes_to_device);
  EXPECT_EQ(a.gemm.count, s.gemm.count);

  runtime::ExecutorSnapshot b;
  b.merge(s);  // 0 + x = x
  EXPECT_EQ(b.scheduled, s.scheduled);
  EXPECT_DOUBLE_EQ(b.ema_utilization, s.ema_utilization);
  EXPECT_EQ(b.reduce.count, s.reduce.count);
}

TEST(ExecutorSnapshot, MergeOfTwoEmptiesStaysEmpty) {
  // finished == 0 on both sides must not divide by zero or invent an EMA.
  runtime::ExecutorSnapshot a, b;
  a.merge(b);
  EXPECT_EQ(a.scheduled, 0u);
  EXPECT_DOUBLE_EQ(a.ema_utilization, 0.0);
  EXPECT_DOUBLE_EQ(a.straggler_wait_seconds, 0.0);
}

TEST(ExecutorSnapshot, MergeIsCommutativeOnCountersAndEma) {
  auto x = sample_snapshot(2);
  x.ema_utilization = 0.9;
  auto y = sample_snapshot(7);
  y.ema_utilization = 0.3;

  auto xy = x;
  xy.merge(y);
  auto yx = y;
  yx.merge(x);
  EXPECT_EQ(xy.scheduled, yx.scheduled);
  EXPECT_EQ(xy.stolen, yx.stolen);
  EXPECT_EQ(xy.finished, yx.finished);
  EXPECT_EQ(xy.ranges_stolen, yx.ranges_stolen);
  EXPECT_EQ(xy.device.uploads, yx.device.uploads);
  EXPECT_DOUBLE_EQ(xy.device.bytes_to_host, yx.device.bytes_to_host);
  EXPECT_EQ(xy.permute.count, yx.permute.count);
  EXPECT_DOUBLE_EQ(xy.permute.seconds, yx.permute.seconds);
  // The EMA is a finished-task-weighted average, so order cannot matter.
  EXPECT_NEAR(xy.ema_utilization, yx.ema_utilization, 1e-12);
  const double expect_ema = (0.9 * double(x.finished) + 0.3 * double(y.finished)) /
                            double(x.finished + y.finished);
  EXPECT_NEAR(xy.ema_utilization, expect_ema, 1e-12);
}

TEST(DeviceStats, SinceAndMergeEdgeCases) {
  device::DeviceStats a;
  a.bytes_to_device = 500;
  a.ns_to_device = 1000;
  a.uploads = 2;
  a.gemm_calls = 3;
  // since(self) == zero; since(empty) == identity.
  auto z = a.since(a);
  EXPECT_DOUBLE_EQ(z.bytes_to_device, 0.0);
  EXPECT_EQ(z.uploads, 0u);
  device::DeviceStats empty;
  auto id = a.since(empty);
  EXPECT_DOUBLE_EQ(id.bytes_to_device, a.bytes_to_device);
  EXPECT_EQ(id.gemm_calls, a.gemm_calls);
  // merge with empty is identity; merge is commutative.
  device::DeviceStats b;
  b.bytes_to_host = 70;
  b.downloads = 1;
  b.permute_calls = 4;
  auto ab = a;
  ab.merge(b);
  auto ba = b;
  ba.merge(a);
  EXPECT_DOUBLE_EQ(ab.total_transfer_bytes(), ba.total_transfer_bytes());
  EXPECT_EQ(ab.kernel_calls(), ba.kernel_calls());
  EXPECT_EQ(ab.kernel_calls(), 7u);
  auto ae = a;
  ae.merge(empty);
  EXPECT_DOUBLE_EQ(ae.bytes_to_device, a.bytes_to_device);
  EXPECT_EQ(ae.uploads, a.uploads);
}

TEST(PerfScope, BooksOnceAndClosesIdempotently) {
  runtime::PerfEvent ev;
  {
    runtime::PerfScope ps(&ev);
    ps.close();
    ps.close();  // second close must not double-book
  }
  EXPECT_EQ(ev.count(), 1u);
  {
    runtime::PerfScope ps(&ev);  // destructor closes
  }
  EXPECT_EQ(ev.count(), 2u);
  { runtime::PerfScope none(nullptr); }  // null event: no-op guard
  EXPECT_EQ(ev.count(), 2u);
}

TEST(Instrumentation, FusedCountsAllWindows) {
  auto ln = test::small_network(3, 4, 8);
  auto tree = test::greedy_tree(ln.net);
  auto stem = tn::extract_stem(tree);
  auto plan = exec::plan_fused(stem, {}, 32768);
  auto leaves = [&](tn::VertId v) -> const Tensor& { return ln.tensors[size_t(v)]; };
  FusedStats st;
  execute_fused(plan, leaves, 0, nullptr, &st);
  uint64_t expected = 0;
  for (const auto& w : plan.windows)
    if (w.in_ldm) expected += uint64_t(1) << w.secondary_count;
  EXPECT_EQ(st.ldm_subtasks, expected);
  EXPECT_GT(st.dma.bytes_get, 0.0);
  EXPECT_GT(st.dma.bytes_put, 0.0);
}

}  // namespace
}  // namespace ltns::exec
